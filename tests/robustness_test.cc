// Property and stress tests: the DMI executor must never crash, corrupt the
// application, or return anything but a structured status — no matter what
// command stream it receives or how unstable the UI is.
#include <gtest/gtest.h>

#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/gui/instability.h"
#include "src/ripper/ripper.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace {

const topo::NavGraph& WordGraph() {
  static const topo::NavGraph* graph = [] {
    apps::WordSim scratch;
    ripper::RipperConfig config;
    config.blocklist = {"Account", "Feedback"};
    ripper::GuiRipper rip(scratch, config);
    return new topo::NavGraph(rip.Rip());
  }();
  return *graph;
}

dmi::ModelingOptions Options() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  return options;
}

// ----- fuzzed visit command streams -------------------------------------------------

class VisitFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisitFuzz, RandomCommandStreamsNeverCrashAndAlwaysReport) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  support::Rng rng(GetParam());
  const int max_id = session.catalog().forest().max_id();

  for (int round = 0; round < 40; ++round) {
    std::vector<dmi::VisitCommand> commands;
    const int n = 1 + static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < n; ++k) {
      dmi::VisitCommand cmd;
      switch (rng.NextBelow(4)) {
        case 0:
          cmd.kind = dmi::VisitCommand::Kind::kAccess;
          cmd.target_id = static_cast<int>(rng.NextInRange(-5, max_id + 50));
          if (rng.Bernoulli(0.3)) {
            cmd.entry_ref_ids.push_back(static_cast<int>(rng.NextInRange(0, max_id)));
          }
          cmd.enforced = rng.Bernoulli(0.2);
          break;
        case 1:
          cmd.kind = dmi::VisitCommand::Kind::kAccessInput;
          cmd.target_id = static_cast<int>(rng.NextInRange(1, max_id));
          cmd.text = "fuzz " + std::to_string(rng.Next() % 1000);
          break;
        case 2:
          cmd.kind = dmi::VisitCommand::Kind::kShortcut;
          cmd.shortcut_key = rng.Bernoulli(0.5) ? "ENTER" : "ESC";
          break;
        default:
          cmd.kind = dmi::VisitCommand::Kind::kAccess;
          cmd.target_id = static_cast<int>(rng.NextInRange(1, max_id));
          break;
      }
      commands.push_back(std::move(cmd));
    }
    dmi::VisitReport report = session.VisitParsed(std::move(commands));
    // Every command must carry a terminal status or a filter mark.
    for (const auto& cr : report.commands) {
      if (!cr.filtered) {
        (void)cr.status.ToString();
      }
    }
    // The application must stay drivable (invariant: one open main window or
    // dialogs above it, never zero).
    ASSERT_GE(app.OpenWindows().size(), 1u);
    // Random ids may hit external-jump leaves ("Account"); the app flags the
    // state and every further command errors structurally until reset — the
    // recoverability invariant.
    if (app.in_external_state()) {
      dmi::VisitCommand probe;
      probe.kind = dmi::VisitCommand::Kind::kShortcut;
      probe.shortcut_key = "ENTER";
      dmi::VisitReport blocked = session.VisitParsed({probe});
      EXPECT_FALSE(blocked.overall.ok());
      app.ResetUiState();
      ASSERT_FALSE(app.in_external_state());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisitFuzz, ::testing::Values(1, 7, 42, 1337, 9999));

// ----- fuzzed raw JSON ------------------------------------------------------------

class JsonFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzz, MutatedJsonNeverCrashesTheParserOrExecutor) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  support::Rng rng(GetParam());
  const std::string base =
      R"([{"id": "42"}, {"id": "7", "entry_ref_id": ["3"]}, {"shortcut_key": "ENTER"}])";
  for (int round = 0; round < 60; ++round) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextInRange(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.NextInRange(32, 126)));
          break;
      }
    }
    dmi::VisitReport report = session.Visit(mutated);
    (void)report.overall.ToString();  // must always be a structured status
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(11, 23, 31));

// ----- instability sweep: the executor's guarantees under hazards ------------------

struct HazardCase {
  const char* name;
  gsim::InstabilityConfig config;
};

class HazardSweep : public ::testing::TestWithParam<int> {};

TEST_P(HazardSweep, BoldTaskSurvivesOrFailsStructurally) {
  static const HazardCase kCases[] = {
      {"none", gsim::InstabilityConfig::None()},
      {"typical", gsim::InstabilityConfig::Typical()},
      {"harsh", gsim::InstabilityConfig::Harsh()},
  };
  const HazardCase& hazard = kCases[GetParam()];
  int successes = 0;
  constexpr int kTrials = 15;
  for (int trial = 0; trial < kTrials; ++trial) {
    apps::WordSim app;
    gsim::InstabilityInjector injector(hazard.config, 1000 + trial);
    app.SetInstability(&injector);
    dmi::DmiSession session(app, WordGraph(), Options());
    app.SetSelection(0, 1);
    auto bold = session.ResolveTargetByNames({"Font", "Bold"});
    ASSERT_TRUE(bold.ok());
    dmi::VisitCommand cmd;
    cmd.target_id = bold->id;
    cmd.entry_ref_ids = bold->entry_ref_ids;
    dmi::VisitReport report = session.VisitParsed({cmd});
    if (report.overall.ok() && app.paragraphs()[0].fmt.bold) {
      ++successes;
    } else if (!report.overall.ok()) {
      // A failure must be structured, never silent.
      EXPECT_FALSE(report.overall.message().empty());
    }
  }
  // Even under harsh instability the robust executor lands most attempts.
  EXPECT_GE(successes, kTrials * 2 / 3) << hazard.name;
  if (std::string(hazard.name) == "none") {
    EXPECT_EQ(successes, kTrials);
  }
}

INSTANTIATE_TEST_SUITE_P(Hazards, HazardSweep, ::testing::Range(0, 3));

// ----- deep navigation property ------------------------------------------------------

TEST(NavigationProperty, ExecutorReachesSampledLeavesFromColdState) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  const topo::Forest& forest = session.catalog().forest();
  support::Rng rng(77);
  std::vector<int> leaves;
  for (int id : forest.AllIds()) {
    if (forest.IsLeaf(id) && forest.LocateById(id)->tree < 0) {
      leaves.push_back(id);
    }
  }
  ASSERT_GT(leaves.size(), 500u);
  int executed = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int id = leaves[rng.NextBelow(leaves.size())];
    app.ResetUiState();
    app.SetSelection(0, 0);  // many commands need a selection
    dmi::VisitCommand cmd;
    cmd.target_id = id;
    dmi::VisitReport report = session.VisitParsed({cmd});
    // Some leaves are dialog OK/Cancel buttons whose dialog is not open —
    // those legitimately report structured errors. Everything else must
    // navigate from the cold state (backward match -> forward clicks).
    if (report.overall.ok()) {
      ++executed;
    } else {
      EXPECT_FALSE(report.overall.message().empty());
    }
  }
  EXPECT_GE(executed, 24);  // the overwhelming majority reachable cold
}

}  // namespace
