// Property and stress tests: the DMI executor must never crash, corrupt the
// application, or return anything but a structured status — no matter what
// command stream it receives or how unstable the UI is.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/agent/dmi_agent.h"
#include "src/agent/sim_llm.h"
#include "src/agent/task_runner.h"
#include "src/apps/word_sim.h"
#include "src/dmi/policy.h"
#include "src/dmi/session.h"
#include "src/gui/control.h"
#include "src/gui/instability.h"
#include "src/json/json.h"
#include "src/ripper/ripper.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/strings.h"
#include "src/workload/tasks.h"

namespace {

const topo::NavGraph& WordGraph() {
  static const topo::NavGraph* graph = [] {
    apps::WordSim scratch;
    ripper::RipperConfig config;
    config.blocklist = {"Account", "Feedback"};
    ripper::GuiRipper rip(scratch, config);
    return new topo::NavGraph(rip.Rip());
  }();
  return *graph;
}

dmi::ModelingOptions Options() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  return options;
}

// ----- fuzzed visit command streams -------------------------------------------------

class VisitFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisitFuzz, RandomCommandStreamsNeverCrashAndAlwaysReport) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  support::Rng rng(GetParam());
  const int max_id = session.catalog().forest().max_id();

  for (int round = 0; round < 40; ++round) {
    std::vector<dmi::VisitCommand> commands;
    const int n = 1 + static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < n; ++k) {
      dmi::VisitCommand cmd;
      switch (rng.NextBelow(4)) {
        case 0:
          cmd.kind = dmi::VisitCommand::Kind::kAccess;
          cmd.target_id = static_cast<int>(rng.NextInRange(-5, max_id + 50));
          if (rng.Bernoulli(0.3)) {
            cmd.entry_ref_ids.push_back(static_cast<int>(rng.NextInRange(0, max_id)));
          }
          cmd.enforced = rng.Bernoulli(0.2);
          break;
        case 1:
          cmd.kind = dmi::VisitCommand::Kind::kAccessInput;
          cmd.target_id = static_cast<int>(rng.NextInRange(1, max_id));
          cmd.text = "fuzz " + std::to_string(rng.Next() % 1000);
          break;
        case 2:
          cmd.kind = dmi::VisitCommand::Kind::kShortcut;
          cmd.shortcut_key = rng.Bernoulli(0.5) ? "ENTER" : "ESC";
          break;
        default:
          cmd.kind = dmi::VisitCommand::Kind::kAccess;
          cmd.target_id = static_cast<int>(rng.NextInRange(1, max_id));
          break;
      }
      commands.push_back(std::move(cmd));
    }
    dmi::VisitReport report = session.VisitParsed(std::move(commands));
    // Every command must carry a terminal status or a filter mark.
    for (const auto& cr : report.commands) {
      if (!cr.filtered) {
        (void)cr.status.ToString();
      }
    }
    // The application must stay drivable (invariant: one open main window or
    // dialogs above it, never zero).
    ASSERT_GE(app.OpenWindows().size(), 1u);
    // Random ids may hit external-jump leaves ("Account"); the app flags the
    // state and every further command errors structurally until reset — the
    // recoverability invariant.
    if (app.in_external_state()) {
      dmi::VisitCommand probe;
      probe.kind = dmi::VisitCommand::Kind::kShortcut;
      probe.shortcut_key = "ENTER";
      dmi::VisitReport blocked = session.VisitParsed({probe});
      EXPECT_FALSE(blocked.overall.ok());
      app.ResetUiState();
      ASSERT_FALSE(app.in_external_state());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisitFuzz, ::testing::Values(1, 7, 42, 1337, 9999));

// ----- fuzzed raw JSON ------------------------------------------------------------

class JsonFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzz, MutatedJsonNeverCrashesTheParserOrExecutor) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  support::Rng rng(GetParam());
  const std::string base =
      R"([{"id": "42"}, {"id": "7", "entry_ref_id": ["3"]}, {"shortcut_key": "ENTER"}])";
  for (int round = 0; round < 60; ++round) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextInRange(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.NextInRange(32, 126)));
          break;
      }
    }
    dmi::VisitReport report = session.Visit(mutated);
    (void)report.overall.ToString();  // must always be a structured status
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(11, 23, 31));

// ----- instability sweep: the executor's guarantees under hazards ------------------

struct HazardCase {
  const char* name;
  gsim::InstabilityConfig config;
};

class HazardSweep : public ::testing::TestWithParam<int> {};

TEST_P(HazardSweep, BoldTaskSurvivesOrFailsStructurally) {
  static const HazardCase kCases[] = {
      {"none", gsim::InstabilityConfig::None()},
      {"typical", gsim::InstabilityConfig::Typical()},
      {"harsh", gsim::InstabilityConfig::Harsh()},
  };
  const HazardCase& hazard = kCases[GetParam()];
  int successes = 0;
  constexpr int kTrials = 15;
  for (int trial = 0; trial < kTrials; ++trial) {
    apps::WordSim app;
    gsim::InstabilityInjector injector(hazard.config, 1000 + trial);
    app.SetInstability(&injector);
    dmi::DmiSession session(app, WordGraph(), Options());
    app.SetSelection(0, 1);
    auto bold = session.ResolveTargetByNames({"Font", "Bold"});
    ASSERT_TRUE(bold.ok());
    dmi::VisitCommand cmd;
    cmd.target_id = bold->id;
    cmd.entry_ref_ids = bold->entry_ref_ids;
    dmi::VisitReport report = session.VisitParsed({cmd});
    if (report.overall.ok() && app.paragraphs()[0].fmt.bold) {
      ++successes;
    } else if (!report.overall.ok()) {
      // A failure must be structured, never silent.
      EXPECT_FALSE(report.overall.message().empty());
    }
  }
  // Even under harsh instability the robust executor lands most attempts.
  EXPECT_GE(successes, kTrials * 2 / 3) << hazard.name;
  if (std::string(hazard.name) == "none") {
    EXPECT_EQ(successes, kTrials);
  }
}

INSTANTIATE_TEST_SUITE_P(Hazards, HazardSweep, ::testing::Range(0, 3));

// ----- deep navigation property ------------------------------------------------------

TEST(NavigationProperty, ExecutorReachesSampledLeavesFromColdState) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  const topo::Forest& forest = session.catalog().forest();
  support::Rng rng(77);
  std::vector<int> leaves;
  for (int id : forest.AllIds()) {
    if (forest.IsLeaf(id) && forest.LocateById(id)->tree < 0) {
      leaves.push_back(id);
    }
  }
  ASSERT_GT(leaves.size(), 500u);
  int executed = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int id = leaves[rng.NextBelow(leaves.size())];
    app.ResetUiState();
    app.SetSelection(0, 0);  // many commands need a selection
    dmi::VisitCommand cmd;
    cmd.target_id = id;
    dmi::VisitReport report = session.VisitParsed({cmd});
    // Some leaves are dialog OK/Cancel buttons whose dialog is not open —
    // those legitimately report structured errors. Everything else must
    // navigate from the cold state (backward match -> forward clicks).
    if (report.overall.ok()) {
      ++executed;
    } else {
      EXPECT_FALSE(report.overall.message().empty());
    }
  }
  EXPECT_GE(executed, 24);  // the overwhelming majority reachable cold
}

// ----- golden byte-stability: Render()/ToString() on seed scenarios ---------------
//
// The structured-error redesign (ErrorDetail payloads, RenderJson) must not
// move a single byte of the legacy Render()/ToString() surfaces — agents
// parse these strings. The literals below were captured from the seed
// scenarios; any drift is a contract break, not a test to "update".

gsim::Control* FindByTrueName(gsim::Application& app, const std::string& name) {
  gsim::Control* found = nullptr;
  app.main_window().root().WalkStatic([&](gsim::Control& c) {
    if (found == nullptr && c.TrueName() == name) {
      found = &c;
    }
  });
  return found;
}

void ExpectJsonRoundTrip(const dmi::VisitReport& report) {
  const std::string rendered = report.RenderJson();
  support::Result<jsonv::Value> parsed = jsonv::Parse(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), rendered);
}

TEST(GoldenRender, PlainAccessResolvedByNames) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  app.SetSelection(0, 1);
  auto bold = session.ResolveTargetByNames({"Font", "Bold"});
  ASSERT_TRUE(bold.ok());
  ASSERT_EQ(bold->id, 485);  // id assignment is part of the seed contract
  dmi::VisitCommand cmd;
  cmd.target_id = bold->id;
  cmd.entry_ref_ids = bold->entry_ref_ids;
  dmi::VisitReport report = session.VisitParsed({cmd});
  EXPECT_EQ(report.Render(), "access(id=485) -> OK\n");
  EXPECT_EQ(report.overall.ToString(), "OK");
  ExpectJsonRoundTrip(report);
}

TEST(GoldenRender, BareShortcut) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  dmi::VisitCommand sc;
  sc.kind = dmi::VisitCommand::Kind::kShortcut;
  sc.shortcut_key = "ENTER";
  dmi::VisitReport report = session.VisitParsed({sc});
  EXPECT_EQ(report.Render(), "shortcut(ENTER) -> OK\n");
  EXPECT_EQ(report.overall.ToString(), "OK");
}

TEST(GoldenRender, UnknownIdKeepsItsMessage) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  const int bad = session.catalog().forest().max_id() + 17;
  ASSERT_EQ(bad, 4217);
  dmi::VisitCommand cmd;
  cmd.target_id = bad;
  dmi::VisitReport report = session.VisitParsed({cmd});
  EXPECT_EQ(report.Render(),
            "access(id=4217) -> NOT_FOUND: no control with id 4217 in the "
            "navigation topology\n");
  EXPECT_EQ(report.overall.ToString(),
            "NOT_FOUND: no control with id 4217 in the navigation topology");
}

TEST(GoldenRender, NavigationNodesStayFiltered) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  auto font = session.ResolveTargetByNames({"Font"});
  ASSERT_TRUE(font.ok());
  ASSERT_EQ(font->id, 27);
  dmi::VisitCommand cmd;
  cmd.target_id = font->id;
  dmi::VisitCommand sc;
  sc.kind = dmi::VisitCommand::Kind::kShortcut;
  sc.shortcut_key = "ENTER";
  dmi::VisitReport report = session.VisitParsed({cmd, sc});
  EXPECT_EQ(report.Render(),
            "access(id=27) -> filtered (navigation node; DMI handles navigation)\n"
            "shortcut(ENTER) -> filtered (navigation node; DMI handles navigation)\n");
  EXPECT_EQ(report.overall.ToString(), "OK");
  EXPECT_EQ(report.filtered_count, 2u);
  ExpectJsonRoundTrip(report);
}

// ----- regression: a failed command never replays a later shortcut ----------------

TEST(ShortcutReplay, ExecutorSkipsTheShortcutAfterAFailure) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  const int bad = session.catalog().forest().max_id() + 17;
  dmi::VisitCommand cmd;
  cmd.target_id = bad;
  dmi::VisitCommand sc;
  sc.kind = dmi::VisitCommand::Kind::kShortcut;
  sc.shortcut_key = "ENTER";
  const uint64_t before = app.stats().key_chords;
  dmi::VisitReport report = session.VisitParsed({cmd, sc});
  // Byte-stable rendering of the abort (golden), and no key chord sent.
  EXPECT_EQ(report.Render(),
            "access(id=4217) -> NOT_FOUND: no control with id 4217 in the "
            "navigation topology\n"
            "shortcut(ENTER) -> FAILED_PRECONDITION: skipped: an earlier "
            "command failed\n");
  EXPECT_EQ(report.overall.ToString(),
            "NOT_FOUND: no control with id 4217 in the navigation topology");
  EXPECT_EQ(app.stats().key_chords - before, 0u);
  // The skip is typed: FAILED_PRECONDITION with a non-retryable ErrorDetail.
  ASSERT_EQ(report.commands.size(), 2u);
  const support::Status& skipped = report.commands[1].status;
  EXPECT_EQ(skipped.code(), support::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(skipped.has_detail());
  EXPECT_FALSE(skipped.detail().retryable);
  ExpectJsonRoundTrip(report);
}

agentsim::LlmProfile PerfectProfile() {
  agentsim::LlmProfile p = agentsim::LlmProfile::Gpt5Medium();
  p.ambiguous_fail_gui = p.ambiguous_fail_dmi = 0;
  p.subtle_fail_gui = p.subtle_fail_dmi = 0;
  p.visual_semantic_gui = p.visual_semantic_dmi = 0;
  p.semantic_error_gui = p.semantic_error_dmi = 0;
  p.grounding_error = 0;
  p.drag_hard_fail = 0;
  p.text_select_offbyone = 0;
  p.nav_plan_error = 0;
  p.nav_slip = 0;
  p.topology_fail = 0;
  p.dmi_residual_mechanism = 0;
  p.drag_read_sigma = 0;
  return p;
}

TEST(ShortcutReplay, AgentRetryResumesAfterTheExecutedPrefix) {
  // Turn 1 issues [Bold + ENTER, Italic]; Italic is disabled so the batch
  // fails after the shortcut already ran. The agent's re-plan must resume
  // from the failure point — before the resume fix it replayed the whole
  // batch and the ENTER fired twice.
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), Options());
  app.SetSelection(0, 1);
  gsim::Control* italic = FindByTrueName(app, "Italic");
  ASSERT_NE(italic, nullptr);
  italic->SetEnabled(false);

  workload::Task task;
  task.id = "regress-resume";
  task.app = workload::AppKind::kWord;
  task.description = "bold the selection, confirm, italicize";
  workload::DmiStep step;
  step.kind = workload::DmiStep::Kind::kVisitBatch;
  workload::VisitTarget bold;
  bold.name_chain = {"Font", "Bold"};
  bold.shortcut_after = "ENTER";
  workload::VisitTarget it;
  it.name_chain = {"Font", "Italic"};
  step.targets = {bold, it};
  task.dmi_plan = {step};
  task.verify = [](gsim::Application&) { return false; };

  agentsim::SimLlm llm(PerfectProfile(), 3);
  agentsim::DmiAgent agent(agentsim::DmiAgentConfig{});
  const uint64_t before = app.stats().key_chords;
  agentsim::RunResult rr = agent.Run(task, session, llm);
  EXPECT_FALSE(rr.success);
  EXPECT_FALSE(rr.final_status.ok());
  ASSERT_TRUE(rr.final_status.has_detail());
  EXPECT_FALSE(rr.final_status.detail().retryable);  // disabled control
  // The ENTER after Bold executed exactly once across both attempts.
  EXPECT_EQ(app.stats().key_chords - before, 1u);
}

// ----- fault-domain isolation (DESIGN.md §11) -------------------------------------

TEST(FaultDomains, FreezeWindowGatesCallsUntilItLapses) {
  gsim::InstabilityConfig cfg;
  cfg.freeze_rate = 1.0;
  cfg.freeze_ticks = 5;
  gsim::InstabilityInjector injector(cfg, 42);
  EXPECT_TRUE(injector.CallHitsFreeze(10));  // triggering call times out too
  EXPECT_EQ(injector.freeze_until_tick(), 15u);
  EXPECT_TRUE(injector.CallHitsFreeze(12));  // inside the window: no new draw
  EXPECT_EQ(injector.freeze_until_tick(), 15u);

  gsim::InstabilityInjector calm(gsim::InstabilityConfig::None(), 42);
  for (uint64_t tick = 0; tick < 50; ++tick) {
    EXPECT_FALSE(calm.CallHitsFreeze(tick));
  }
  EXPECT_EQ(calm.freeze_until_tick(), 0u);
}

TEST(FaultDomains, FrozenAppTimesOutClicksWithRetryableDetail) {
  apps::WordSim app;
  gsim::InstabilityConfig cfg;
  cfg.freeze_rate = 1.0;
  cfg.freeze_ticks = 3;
  gsim::InstabilityInjector injector(cfg, 7);
  app.SetInstability(&injector);
  gsim::Control* bold = FindByTrueName(app, "Bold");
  ASSERT_NE(bold, nullptr);
  support::Status s = app.Click(*bold);
  EXPECT_EQ(s.code(), support::StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("not responding"), std::string::npos);
  ASSERT_TRUE(s.has_detail());
  EXPECT_TRUE(s.detail().retryable);
  EXPECT_TRUE(support::IsRetryable(s));
}

TEST(FaultDomains, StaleReferenceBumpsTheUiGeneration) {
  apps::WordSim app;
  gsim::InstabilityConfig cfg;
  cfg.stale_ref_rate = 1.0;
  gsim::InstabilityInjector injector(cfg, 11);
  app.SetInstability(&injector);
  gsim::Control* bold = FindByTrueName(app, "Bold");
  ASSERT_NE(bold, nullptr);
  const uint64_t generation = app.ui_generation();
  support::Status s = app.Click(*bold);
  EXPECT_EQ(s.code(), support::StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("stale"), std::string::npos);
  ASSERT_TRUE(s.has_detail());
  EXPECT_TRUE(s.detail().retryable);
  // The bump is what invalidates captured ids — the re-locate trigger.
  EXPECT_EQ(app.ui_generation(), generation + 1);
}

TEST(FaultDomains, TransientPatternFailureNamesTheRequiredPattern) {
  apps::WordSim app;
  gsim::InstabilityConfig cfg;
  cfg.pattern_fail_rate = 1.0;
  cfg.pattern_fail_ticks = 3;
  gsim::InstabilityInjector injector(cfg, 13);
  app.SetInstability(&injector);
  gsim::Control* bold = FindByTrueName(app, "Bold");
  ASSERT_NE(bold, nullptr);
  support::Status s = app.Click(*bold);
  EXPECT_EQ(s.code(), support::StatusCode::kUnavailable);
  ASSERT_TRUE(s.has_detail());
  EXPECT_TRUE(s.detail().retryable);
  EXPECT_EQ(s.detail().required_pattern, "TogglePattern");  // Bold toggles
  EXPECT_EQ(s.detail().control_name, "Bold");
  // The failure window has per-control state: the same control stays
  // unavailable for pattern_fail_ticks from the opening draw.
  EXPECT_TRUE(injector.PatternTransientlyUnavailable(*bold, app.current_tick()));
  EXPECT_TRUE(
      injector.PatternTransientlyUnavailable(*bold, app.current_tick() + 1));
}

TEST(FaultDomains, EventDropsAreRateGated) {
  gsim::InstabilityConfig cfg;
  cfg.event_drop_rate = 1.0;
  gsim::InstabilityInjector always(cfg, 5);
  EXPECT_TRUE(always.DropsWindowEvent());
  gsim::InstabilityInjector never(gsim::InstabilityConfig::None(), 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.DropsWindowEvent());
  }
}

TEST(FaultDomains, DisabledDomainsConsumeNoRandomness) {
  // The byte-stability contract: under None/Typical/Harsh the new fault
  // domains must not draw from the RNG, so interleaving their probes leaves
  // the legacy decision stream untouched.
  apps::WordSim app;
  gsim::Control* bold = FindByTrueName(app, "Bold");
  ASSERT_NE(bold, nullptr);
  const gsim::InstabilityConfig harsh = gsim::InstabilityConfig::Harsh();
  gsim::InstabilityInjector plain(harsh, 99);
  gsim::InstabilityInjector probed(harsh, 99);
  for (uint64_t i = 0; i < 100; ++i) {
    (void)probed.ElementReferenceStale(*bold);
    (void)probed.PatternTransientlyUnavailable(*bold, i);
    (void)probed.DropsWindowEvent();
    (void)probed.CallHitsFreeze(i);
    EXPECT_EQ(plain.ClickSilentlyFails(*bold), probed.ClickSilentlyFails(*bold));
    EXPECT_EQ(plain.PopupRevealDelay(*bold), probed.PopupRevealDelay(*bold));
  }
}

TEST(FaultDomains, HostileDrawsAreSeedDeterministic) {
  apps::WordSim app;
  gsim::Control* bold = FindByTrueName(app, "Bold");
  ASSERT_NE(bold, nullptr);
  const gsim::InstabilityConfig hostile = gsim::InstabilityConfig::Hostile();
  gsim::InstabilityInjector a(hostile, 4242);
  gsim::InstabilityInjector b(hostile, 4242);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ElementReferenceStale(*bold), b.ElementReferenceStale(*bold));
    EXPECT_EQ(a.PatternTransientlyUnavailable(*bold, i),
              b.PatternTransientlyUnavailable(*bold, i));
    EXPECT_EQ(a.DropsWindowEvent(), b.DropsWindowEvent());
    EXPECT_EQ(a.CallHitsFreeze(i), b.CallHitsFreeze(i));
    EXPECT_EQ(a.ClickSilentlyFails(*bold), b.ClickSilentlyFails(*bold));
  }
  EXPECT_EQ(a.freeze_until_tick(), b.freeze_until_tick());
}

// ----- hostile end-to-end: the acceptance gate of DESIGN.md §11 -------------------

// The runner models all three apps once; share it across the suite tests in
// this binary (each gtest_discover_tests entry is its own process).
agentsim::TaskRunner& Runner() {
  static agentsim::TaskRunner* runner = new agentsim::TaskRunner();
  return *runner;
}

TEST(HostileSuite, FullSuiteCompletesWithStructuredFailures) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.seed = 21;
  config.repeats = 1;
  config.ApplyPolicy(dmi::Policy::Hostile());
  const auto tasks = workload::BuildOsworldWSuite();
  agentsim::SuiteResult result = Runner().RunSuite(tasks, config);
  EXPECT_EQ(result.TotalRuns(), static_cast<int>(tasks.size()));
  for (const auto& record : result.records) {
    for (const auto& run : record.runs) {
      if (run.success) {
        EXPECT_TRUE(run.final_status.ok()) << record.task_id;
        continue;
      }
      // Every failure is a typed status with a populated ErrorDetail — the
      // structured-error API's end-to-end guarantee.
      EXPECT_FALSE(run.final_status.ok()) << record.task_id;
      EXPECT_TRUE(run.final_status.has_detail()) << record.task_id << ": "
          << run.final_status.ToString();
      EXPECT_FALSE(run.final_status.message().empty()) << record.task_id;
    }
  }
  // Hostile is survivable: the retry machinery keeps most tasks landing.
  EXPECT_GT(result.SuccessRate(), 0.4);
}

TEST(HostileSuite, SerialParallelAndPooledUnpooledRunsAgree) {
  // Determinism under injection: trial seeds are derived from (task, trial),
  // injectors and retry RNGs from the trial seed, so worker count and app
  // pooling must not move a single field of any run.
  std::vector<workload::Task> tasks;
  const auto suite = workload::BuildOsworldWSuite();
  for (size_t i = 0; i < suite.size(); i += 3) {
    tasks.push_back(suite[i]);  // every third task: all three apps, 9 tasks
  }
  agentsim::RunConfig base;
  base.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  base.seed = 77;
  base.repeats = 2;
  base.ApplyPolicy(dmi::Policy::Hostile());
  base.workers = 1;
  base.pool_apps = true;

  agentsim::RunConfig parallel = base;
  parallel.workers = 4;
  agentsim::RunConfig unpooled = base;
  unpooled.pool_apps = false;

  const agentsim::SuiteResult serial_r = Runner().RunSuite(tasks, base);
  const agentsim::SuiteResult parallel_r = Runner().RunSuite(tasks, parallel);
  const agentsim::SuiteResult unpooled_r = Runner().RunSuite(tasks, unpooled);

  auto expect_same = [](const agentsim::SuiteResult& a,
                        const agentsim::SuiteResult& b, const char* label) {
    ASSERT_EQ(a.records.size(), b.records.size()) << label;
    for (size_t t = 0; t < a.records.size(); ++t) {
      ASSERT_EQ(a.records[t].runs.size(), b.records[t].runs.size()) << label;
      for (size_t r = 0; r < a.records[t].runs.size(); ++r) {
        const agentsim::RunResult& x = a.records[t].runs[r];
        const agentsim::RunResult& y = b.records[t].runs[r];
        const std::string where =
            std::string(label) + ": " + a.records[t].task_id + " run " +
            std::to_string(r);
        EXPECT_EQ(x.success, y.success) << where;
        EXPECT_EQ(x.llm_calls, y.llm_calls) << where;
        EXPECT_EQ(x.core_calls, y.core_calls) << where;
        EXPECT_EQ(x.sim_time_s, y.sim_time_s) << where;
        EXPECT_EQ(x.ui_actions, y.ui_actions) << where;
        EXPECT_EQ(x.cause, y.cause) << where;
        EXPECT_EQ(x.final_status, y.final_status) << where;  // code + message
      }
    }
  };
  expect_same(serial_r, parallel_r, "serial==parallel");
  expect_same(serial_r, unpooled_r, "pooled==unpooled");
}

}  // namespace
