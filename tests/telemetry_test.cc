// Causal fleet telemetry (DESIGN.md §13): run-scoped trace propagation,
// labeled metrics, and the per-run flight recorder.
//
// The contracts pinned here:
//   - Drain() returns causal order: a cross-thread child sorts after its
//     parent even at identical timestamps (the bug the old (start, tid,
//     depth) order had).
//   - TraceContext crosses ThreadPool submission; batch flushes link every
//     member span; run scopes stamp run ids on every span beneath them.
//   - Labeled counters are independent instruments with deterministic
//     snapshot order; the unlabeled fast path and the legacy export shapes
//     stay byte-identical (golden strings).
//   - Fleet-mode counters reconcile exactly against the SuiteResult under
//     Harsh and Hostile policies (workers=4, batch=16).
//   - The flight recorder is a bounded ring with eviction-surviving seq
//     numbers, and a failed hostile run carries its history end to end.
#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/agent/task_runner.h"
#include "src/dmi/policy.h"
#include "src/json/json.h"
#include "src/support/flight_recorder.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/support/trace_export.h"

namespace {

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    support::TraceRecorder::Global().Discard();
    support::TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    support::TraceRecorder::Global().SetEnabled(false);
    support::TraceRecorder::Global().Discard();
  }
};

// ----- causal sort (the Drain() ordering fix) --------------------------------

support::TraceEvent MakeEvent(const char* name, uint64_t span, uint64_t parent,
                              uint64_t start_us, uint32_t tid, int depth = 0) {
  support::TraceEvent e;
  e.name = name;
  e.category = "test";
  e.span_id = span;
  e.parent_span_id = parent;
  e.start_us = start_us;
  e.tid = tid;
  e.depth = depth;
  return e;
}

TEST(CausalSortTest, CrossThreadChildSortsAfterParentAtSameTimestamp) {
  // Worker (tid 2) opened its span the same microsecond the submitter
  // (tid 1) opened the parent. Thread-local depth says both are roots —
  // only the explicit parent id can order them.
  std::vector<support::TraceEvent> events;
  events.push_back(MakeEvent("child", 12, 11, 100, 2, 0));
  events.push_back(MakeEvent("grandchild", 13, 12, 100, 2, 1));
  events.push_back(MakeEvent("parent", 11, 0, 100, 1, 0));
  support::SortTraceEventsCausally(events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "parent");
  EXPECT_EQ(events[1].name, "child");
  EXPECT_EQ(events[2].name, "grandchild");
}

TEST(CausalSortTest, EarlierTimestampStillWinsOverCausalDepth) {
  std::vector<support::TraceEvent> events;
  events.push_back(MakeEvent("late_root", 20, 0, 200, 1, 0));
  events.push_back(MakeEvent("early_leaf", 22, 21, 50, 2, 0));
  events.push_back(MakeEvent("early_root", 21, 0, 50, 1, 0));
  support::SortTraceEventsCausally(events);
  EXPECT_EQ(events[0].name, "early_root");
  EXPECT_EQ(events[1].name, "early_leaf");
  EXPECT_EQ(events[2].name, "late_root");
}

TEST(CausalSortTest, AbsentParentFallsBackToRecordedThreadDepth) {
  // The parent span is still open at drain time (not in `events`): fall
  // back to the thread-local depth, keeping the old deterministic order.
  std::vector<support::TraceEvent> events;
  events.push_back(MakeEvent("deep", 31, 99, 10, 1, 2));
  events.push_back(MakeEvent("shallow", 32, 98, 10, 1, 1));
  support::SortTraceEventsCausally(events);
  EXPECT_EQ(events[0].name, "shallow");
  EXPECT_EQ(events[1].name, "deep");
}

TEST(CausalSortTest, ParentCycleDoesNotHangOrThrow) {
  // Corrupt input (can't happen from the recorder, but the sort must not
  // infinitely recurse): two events claiming each other as parent.
  std::vector<support::TraceEvent> events;
  events.push_back(MakeEvent("a", 41, 42, 10, 1, 0));
  events.push_back(MakeEvent("b", 42, 41, 10, 1, 1));
  support::SortTraceEventsCausally(events);
  ASSERT_EQ(events.size(), 2u);  // completed with a deterministic order:
  // the cycle is detected mid-walk, so "b" falls back to its recorded thread
  // depth (1) and "a" resolves one deeper (2).
  EXPECT_EQ(events[0].name, "b");
  EXPECT_EQ(events[1].name, "a");
}

// ----- context propagation ---------------------------------------------------

TEST_F(TraceFixture, SpansRecordLogicalParentAndRunId) {
  const uint64_t run_id = support::AllocateTraceRunId();
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    support::TraceContextScope run_scope(support::TraceContext{run_id, 0});
    support::TraceSpan outer("outer", "test");
    outer_id = outer.span_id();
    {
      support::TraceSpan inner("inner", "test");
      inner_id = inner.span_id();
    }
  }
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].span_id, outer_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_EQ(events[0].run_id, run_id);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent_span_id, outer_id);
  EXPECT_EQ(events[1].run_id, run_id);
}

TEST_F(TraceFixture, PoolWorkerSpanParentsToSubmittingSpan) {
  const uint64_t run_id = support::AllocateTraceRunId();
  uint64_t submit_id = 0;
  {
    support::TraceContextScope run_scope(support::TraceContext{run_id, 0});
    support::TraceSpan submit("submit_site", "test");
    submit_id = submit.span_id();
    support::ThreadPool pool(2);
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 4; ++i) {
      pending.push_back(pool.Submit([] {
        support::TraceSpan work("worker_work", "test");
      }));
    }
    for (auto& f : pending) {
      f.get();
    }
  }
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  int pool_tasks = 0;
  int worker_work = 0;
  std::map<uint64_t, const support::TraceEvent*> by_span;
  for (const support::TraceEvent& e : events) {
    by_span[e.span_id] = &e;
  }
  for (const support::TraceEvent& e : events) {
    if (e.name == "pool.task") {
      ++pool_tasks;
      // The worker-side wrapper parents to the submitter's span, across the
      // thread boundary, and inherits the run id.
      EXPECT_EQ(e.parent_span_id, submit_id);
      EXPECT_EQ(e.run_id, run_id);
    } else if (e.name == "worker_work") {
      ++worker_work;
      ASSERT_NE(e.parent_span_id, 0u);
      auto it = by_span.find(e.parent_span_id);
      ASSERT_NE(it, by_span.end());
      EXPECT_EQ(it->second->name, "pool.task");
      EXPECT_EQ(e.run_id, run_id);
    }
  }
  EXPECT_EQ(pool_tasks, 4);
  EXPECT_EQ(worker_work, 4);
}

TEST_F(TraceFixture, RunIdsAllocateEvenWhenTracingDisabled) {
  support::TraceRecorder::Global().SetEnabled(false);
  const uint64_t a = support::AllocateTraceRunId();
  const uint64_t b = support::AllocateTraceRunId();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(b, a + 1);
  // But the thread context stays empty: disabled means one relaxed load.
  EXPECT_TRUE(support::CurrentTraceContext().empty());
}

// ----- export byte-identity (golden) ----------------------------------------

TEST(TraceExportGoldenTest, ZeroContextEventRendersLegacyShape) {
  // A span emitted with no causal context (the pre-§13 shape) must render
  // byte-identically to the legacy exporter output: no span/parent/run/links
  // keys anywhere.
  support::TraceEvent e;
  e.name = "rip.capture";
  e.category = "rip";
  e.start_us = 10;
  e.dur_us = 5;
  e.tid = 1;
  e.depth = 0;
  e.args = {{"context", "default"}};
  EXPECT_EQ(support::ChromeTraceJson({e}).Dump(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"args\":{\"context\":"
            "\"default\",\"depth\":0},\"cat\":\"rip\",\"dur\":5,\"name\":"
            "\"rip.capture\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10}]}");
}

TEST(TraceExportGoldenTest, CausalEventEmitsContextArgsAndFlowEvents) {
  support::TraceEvent parent = MakeEvent("submit_site", 11, 0, 10, 1);
  parent.category = "test";
  support::TraceEvent child = MakeEvent("pool.task", 12, 11, 20, 2);
  child.run_id = 7;
  child.links = {11};
  auto doc = jsonv::Parse(support::ChromeTraceJson({parent, child}).Dump());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const jsonv::Value* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int complete = 0, flow_start = 0, flow_end = 0;
  for (const jsonv::Value& e : events->as_array()) {
    const std::string ph = e.GetString("ph");
    if (ph == "X") {
      ++complete;
      if (e.GetString("name") == "pool.task") {
        const jsonv::Value* args = e.Find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->GetInt("span"), 12);
        EXPECT_EQ(args->GetInt("parent"), 11);
        EXPECT_EQ(args->GetInt("run"), 7);
      }
    } else if (ph == "s") {
      ++flow_start;
      EXPECT_EQ(e.GetString("cat"), "flow");
    } else if (ph == "f") {
      ++flow_end;
      EXPECT_EQ(e.GetString("bp"), "e");
    }
  }
  EXPECT_EQ(complete, 2);
  // One cross-thread parent edge ("submit") + one span link ("link").
  EXPECT_EQ(flow_start, 2);
  EXPECT_EQ(flow_end, 2);
}

// ----- labeled metrics -------------------------------------------------------

TEST(LabeledMetricsTest, LabelOrderDoesNotSplitInstruments) {
  support::MetricsRegistry& registry = support::MetricsRegistry::Global();
  support::Counter& a =
      registry.GetCounter("test.labeled", {{"app", "Word"}, {"policy", "harsh"}});
  support::Counter& b =
      registry.GetCounter("test.labeled", {{"policy", "harsh"}, {"app", "Word"}});
  EXPECT_EQ(&a, &b);  // labels are key-sorted before keying the instrument
  support::Counter& other = registry.GetCounter("test.labeled", {{"app", "Excel"}});
  EXPECT_NE(&a, &other);
  support::Counter& unlabeled = registry.GetCounter("test.labeled");
  EXPECT_NE(&a, &unlabeled);  // the bare name is its own instrument
}

TEST(LabeledMetricsTest, SnapshotOrderIsDeterministicAndQueryable) {
  support::MetricsRegistry& registry = support::MetricsRegistry::Global();
  registry.ResetAllForTest();
  support::CountMetric("test.z", {{"app", "B"}}, 2);
  support::CountMetric("test.z", {{"app", "A"}}, 3);
  support::CountMetric("test.a", {{"k", "v"}, {"a", "b"}}, 5);
  const support::MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> keys;
  for (const support::CounterSnapshot& c : snapshot.labeled_counters) {
    if (c.value == 0) {
      continue;  // instruments registered by sibling tests, zeroed by reset
    }
    keys.push_back(support::MetricsRegistry::EncodeLabeledName(c.name, c.labels));
  }
  // Sorted by encoded name (labels themselves key-sorted): deterministic
  // across runs and insertion orders.
  EXPECT_EQ(keys, (std::vector<std::string>{"test.a{a=b,k=v}", "test.z{app=A}",
                                            "test.z{app=B}"}));
  EXPECT_EQ(snapshot.LabeledCounterValue("test.z", {{"app", "A"}}), 3u);
  EXPECT_EQ(snapshot.LabeledCounterValue("test.a", {{"a", "b"}, {"k", "v"}}), 5u);
  EXPECT_EQ(snapshot.LabeledCounterValue("test.z", {{"app", "missing"}}), 0u);
}

TEST(LabeledMetricsTest, UnlabeledExportStaysByteIdentical) {
  // The legacy export shape is a compatibility contract: when no labeled
  // counters exist, MetricsJson must render byte-for-byte what it always
  // rendered (no "labeled_counters" key, same member order).
  support::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"agent.runs", 3, {}});
  snapshot.counters.push_back({"agent.successes", 2, {}});
  EXPECT_EQ(support::MetricsJson(snapshot).Dump(),
            "{\"counters\":{\"agent.runs\":3,\"agent.successes\":2},\"derived\":"
            "{\"agent_success_rate\":1},\"histograms\":{}}");
}

TEST(LabeledMetricsTest, LabeledExportAppearsOnlyWhenPresent) {
  support::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"agent.runs", 3, {}});
  snapshot.labeled_counters.push_back(
      {"agent.runs", 2, {{"app", "WordSim"}, {"policy", "harsh"}}});
  auto doc = jsonv::Parse(support::MetricsJson(snapshot).Dump());
  ASSERT_TRUE(doc.ok());
  const jsonv::Value* labeled = doc->Find("labeled_counters");
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->GetInt("agent.runs{app=WordSim,policy=harsh}"), 2);
}

// ----- fleet-mode reconciliation (counters vs SuiteResult) -------------------

struct SuiteTally {
  int runs = 0;
  int successes = 0;
  int failures = 0;
  uint64_t llm_calls = 0;
  uint64_t prompt_tokens = 0;
};

SuiteTally Tally(const agentsim::SuiteResult& result) {
  SuiteTally t;
  for (const auto& record : result.records) {
    for (const auto& run : record.runs) {
      ++t.runs;
      run.success ? ++t.successes : ++t.failures;
      t.llm_calls += static_cast<uint64_t>(run.llm_calls);
      t.prompt_tokens += run.prompt_tokens;
    }
  }
  return t;
}

uint64_t SumLabeled(const support::MetricsSnapshot& snapshot, const std::string& name) {
  uint64_t sum = 0;
  for (const support::CounterSnapshot& c : snapshot.labeled_counters) {
    if (c.name == name) {
      sum += c.value;
    }
  }
  return sum;
}

class FleetTelemetryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FleetTelemetryTest, LabeledCountersReconcileExactlyWithSuiteResult) {
  support::MetricsRegistry& registry = support::MetricsRegistry::Global();
  registry.ResetAllForTest();

  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.seed = 33;
  config.repeats = 2;
  config.workers = 4;
  config.batch.enabled = true;
  config.batch.max_batch_size = 16;
  const std::string preset = GetParam();
  config.ApplyPolicy(preset == "harsh" ? dmi::Policy::Harsh() : dmi::Policy::Hostile());
  ASSERT_EQ(config.policy_label, preset);

  agentsim::TaskRunner runner;
  const agentsim::SuiteResult result =
      runner.RunSuite(workload::BuildOsworldWSuite(), config);
  const SuiteTally tally = Tally(result);
  ASSERT_GT(tally.runs, 0);
  ASSERT_GT(tally.failures, 0) << "policy " << preset
                               << " should produce at least one failure";

  const support::MetricsSnapshot snapshot = registry.Snapshot();
  // Unlabeled totals: exact across 4 workers.
  EXPECT_EQ(snapshot.CounterValue("agent.runs"), static_cast<uint64_t>(tally.runs));
  EXPECT_EQ(snapshot.CounterValue("agent.successes"),
            static_cast<uint64_t>(tally.successes));
  EXPECT_EQ(snapshot.CounterValue("agent.failures"),
            static_cast<uint64_t>(tally.failures));
  EXPECT_EQ(snapshot.CounterValue("agent.llm_calls"), tally.llm_calls);
  EXPECT_EQ(snapshot.CounterValue("agent.prompt_tokens"), tally.prompt_tokens);
  // Label dimensions: the per-app slices sum back to the exact totals (the
  // "total + per-label" pattern drops nothing).
  EXPECT_EQ(SumLabeled(snapshot, "agent.runs"), static_cast<uint64_t>(tally.runs));
  EXPECT_EQ(SumLabeled(snapshot, "agent.llm_calls"), tally.llm_calls);
  EXPECT_EQ(SumLabeled(snapshot, "agent.prompt_tokens"), tally.prompt_tokens);
  EXPECT_EQ(SumLabeled(snapshot, "agent.failure"),
            static_cast<uint64_t>(tally.failures));
  // Every labeled agent.* instrument carries the policy label.
  for (const support::CounterSnapshot& c : snapshot.labeled_counters) {
    if (c.name.rfind("agent.", 0) != 0 || c.value == 0) {
      continue;  // zero-valued: registered by sibling tests, reset above
    }
    bool has_policy = false;
    for (const auto& kv : c.labels) {
      has_policy = has_policy || (kv.first == "policy" && kv.second == preset);
    }
    EXPECT_TRUE(has_policy) << c.name;
  }
  // Batch calls were labeled by app and sum to the scheduler's exact total.
  EXPECT_EQ(SumLabeled(snapshot, "batch.calls"), runner.batch_stats().calls);
}

TEST_P(FleetTelemetryTest, DrainIsCompleteAndCausalUnderFleetMode) {
  support::TraceRecorder::Global().Discard();
  support::TraceRecorder::Global().SetEnabled(true);

  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.seed = 33;
  config.repeats = 2;
  config.workers = 4;
  config.batch.enabled = true;
  config.batch.max_batch_size = 16;
  const std::string preset = GetParam();
  config.ApplyPolicy(preset == "harsh" ? dmi::Policy::Harsh() : dmi::Policy::Hostile());

  agentsim::TaskRunner runner;
  const agentsim::SuiteResult result =
      runner.RunSuite(workload::BuildOsworldWSuite(), config);
  support::TraceRecorder::Global().SetEnabled(false);
  const std::vector<support::TraceEvent> events =
      support::TraceRecorder::Global().Drain();

  // Every run produced exactly one agent.run span, carrying its RunResult's
  // run id — the trace and the report correlate one-to-one.
  std::set<uint64_t> result_run_ids;
  for (const auto& record : result.records) {
    for (const auto& run : record.runs) {
      ASSERT_NE(run.run_id, 0u);
      result_run_ids.insert(run.run_id);
    }
  }
  std::set<uint64_t> span_run_ids;
  std::map<uint64_t, size_t> index_of;
  size_t batch_flushes = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    index_of[events[i].span_id] = i;
  }
  for (const support::TraceEvent& e : events) {
    if (e.name == "agent.run") {
      EXPECT_NE(e.run_id, 0u);
      span_run_ids.insert(e.run_id);
    }
    if (e.name == "batch.flush") {
      ++batch_flushes;
      EXPECT_FALSE(e.links.empty());  // links to every member call's span
    }
    // Causal order: every resolvable parent drains before its child.
    if (e.parent_span_id != 0) {
      auto parent = index_of.find(e.parent_span_id);
      if (parent != index_of.end()) {
        EXPECT_LT(parent->second, index_of[e.span_id]) << e.name;
      }
    }
  }
  EXPECT_EQ(span_run_ids, result_run_ids);
  EXPECT_EQ(batch_flushes, static_cast<size_t>(runner.batch_stats().batches));
  support::TraceRecorder::Global().Discard();
}

INSTANTIATE_TEST_SUITE_P(Policies, FleetTelemetryTest,
                         ::testing::Values("harsh", "hostile"));

// ----- flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldestAndSeqSurvives) {
  support::FlightRecorder recorder(/*run_id=*/42, /*capacity=*/4);
  for (int i = 1; i <= 10; ++i) {
    recorder.RecordNote("note " + std::to_string(i));
  }
  EXPECT_EQ(recorder.TotalRecorded(), 10u);
  EXPECT_EQ(recorder.DroppedCount(), 6u);
  const std::vector<support::FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7u);  // oldest retained
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(events.back().what, "note 10");
}

TEST(FlightRecorderTest, CapacityZeroClampsToOne) {
  support::FlightRecorder recorder(/*run_id=*/1, /*capacity=*/0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.RecordNote("a");
  recorder.RecordNote("b");
  ASSERT_EQ(recorder.Events().size(), 1u);
  EXPECT_EQ(recorder.Events()[0].what, "b");
}

TEST(FlightRecorderTest, CommandEventsCarryStatusAndErrorDetail) {
  support::FlightRecorder recorder(/*run_id=*/7, /*capacity=*/16);
  support::ErrorDetail detail;
  detail.control_id = 123;
  detail.control_name = "Save";
  detail.retryable = true;
  detail.attempts = 3;
  detail.backoff_ticks = 9;
  recorder.RecordRetry("access(id=123)", 3, 9);
  recorder.RecordCommand("access(id=123)",
                         support::UnavailableError("control is not responding")
                             .WithDetail(std::move(detail)));
  recorder.RecordLlmCall(900, 120);
  recorder.RecordBatch(5);

  const std::vector<support::FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, "retry");
  EXPECT_EQ(events[0].attempts, 3);
  EXPECT_EQ(events[0].backoff_ticks, 9u);
  EXPECT_EQ(events[1].kind, "command");
  ASSERT_NE(events[1].detail, nullptr);
  EXPECT_EQ(events[1].detail->control_name, "Save");
  EXPECT_EQ(events[2].kind, "llm_call");
  EXPECT_EQ(events[2].tokens, 900);
  EXPECT_EQ(events[2].aux_tokens, 120);
  EXPECT_EQ(events[3].kind, "batch");
  EXPECT_EQ(events[3].batch_id, 5u);

  // The JSON rendering carries the same ErrorDetail shape as the suite
  // report's final_status (both land in --report-json).
  auto doc = jsonv::Parse(support::FlightRecorderJson(recorder).Dump());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetInt("run_id"), 7);
  EXPECT_EQ(doc->GetInt("total_recorded"), 4);
  const jsonv::Value* rendered = doc->Find("events");
  ASSERT_NE(rendered, nullptr);
  ASSERT_EQ(rendered->as_array().size(), 4u);
  const jsonv::Value& cmd = rendered->as_array()[1];
  EXPECT_EQ(cmd.GetString("kind"), "command");
  const jsonv::Value* ed = cmd.Find("error_detail");
  ASSERT_NE(ed, nullptr);
  EXPECT_EQ(ed->GetString("control_name"), "Save");
  EXPECT_EQ(ed->GetInt("attempts"), 3);
  EXPECT_EQ(ed->GetInt("backoff_ticks"), 9);
}

TEST(FlightRecorderTest, HostileFleetRunAttachesHistoryToFailedResults) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.seed = 21;
  config.repeats = 2;
  config.workers = 4;
  config.batch.enabled = true;
  config.batch.max_batch_size = 16;
  config.ApplyPolicy(dmi::Policy::Hostile());

  agentsim::TaskRunner runner;
  const agentsim::SuiteResult result =
      runner.RunSuite(workload::BuildOsworldWSuite(), config);
  int failed = 0;
  for (const auto& record : result.records) {
    for (const auto& run : record.runs) {
      ASSERT_NE(run.flight, nullptr) << record.task_id;
      ASSERT_NE(run.run_id, 0u);
      EXPECT_EQ(run.flight->run_id(), run.run_id);
      EXPECT_GT(run.flight->TotalRecorded(), 0u) << record.task_id;
      const std::vector<support::FlightEvent> events = run.flight->Events();
      // Fleet mode: every run's LLM calls rode a batch, and membership was
      // recorded next to the call.
      EXPECT_NE(std::find_if(events.begin(), events.end(),
                             [](const support::FlightEvent& e) {
                               return e.kind == "llm_call";
                             }),
                events.end())
          << record.task_id;
      EXPECT_NE(std::find_if(events.begin(), events.end(),
                             [](const support::FlightEvent& e) {
                               return e.kind == "batch";
                             }),
                events.end())
          << record.task_id;
      if (!run.success) {
        ++failed;
        // The terminal note pins the failure cause into the ring.
        EXPECT_EQ(events.back().kind, "note");
        EXPECT_EQ(events.back().what.rfind("run failed: ", 0), 0u) << events.back().what;
      }
    }
  }
  EXPECT_GT(failed, 0) << "hostile should fail at least one run";
}

TEST(FlightRecorderTest, DisabledByConfigLeavesResultsLight) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.repeats = 1;
  config.flight_recorder_events = 0;  // off
  agentsim::TaskRunner runner;
  std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  tasks.resize(3);
  const agentsim::SuiteResult result = runner.RunSuite(tasks, config);
  for (const auto& record : result.records) {
    for (const auto& run : record.runs) {
      EXPECT_EQ(run.flight, nullptr);
      EXPECT_NE(run.run_id, 0u);  // run ids still allocate for correlation
    }
  }
}

}  // namespace
