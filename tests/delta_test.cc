// Delta ripping + live model versioning (DESIGN.md §15): mutation-injection
// byte-identity (a delta-ripped model must be indistinguishable from a
// from-scratch rip of the updated build), checksum-table stability, the
// registry's Refresh/Prune swap semantics, the FromParts lazy-index parity,
// and the workers=4 zero-downtime concurrent swap.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/agent/task_runner.h"
#include "src/apps/office_common.h"
#include "src/apps/word_sim.h"
#include "src/dmi/model_artifact.h"
#include "src/dmi/model_registry.h"
#include "src/dmi/policy.h"
#include "src/ripper/delta.h"
#include "src/ripper/ripper.h"
#include "src/support/binio.h"
#include "src/support/flight_recorder.h"
#include "src/workload/tasks.h"

namespace {

using agentsim::InterfaceMode;
using agentsim::RunConfig;
using agentsim::SuiteResult;
using agentsim::TaskRunner;

dmi::ModelingOptions WordOptions() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  options.prune.manual_exclude_names = {"Styles Gallery"};
  return options;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Wipe leftovers from earlier invocations: a stale artifact would turn the
  // compile tier under test into a cold load.
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// First static-tree match by true name (children + owned popups — enough to
// reach ribbon panels and menu popups; dialogs go through FindDialog).
gsim::Control* FindControl(gsim::Control& root, const std::string& name,
                           std::optional<uia::ControlType> type = std::nullopt) {
  gsim::Control* found = nullptr;
  root.WalkStatic([&](gsim::Control& c) {
    if (found == nullptr && c.TrueName() == name && (!type || c.Type() == *type)) {
      found = &c;
    }
  });
  return found;
}

// ----- mutation classes -----------------------------------------------------
//
// Each mutator runs on a freshly constructed WordSim *before* any fresh-state
// capture (the pool/ripper capture later), modeling an app update shipping a
// changed build. All anchors live in partitions no workload task touches, so
// the concurrent-swap test can reuse them as behaviorally compatible updates.

using Mutator = std::function<void(gsim::Application&)>;

void RenameMenuEntry(gsim::Application& app) {
  gsim::Control* c = FindControl(app.main_window().root(), "Manage Sources");
  ASSERT_NE(c, nullptr);
  c->RenameTo("Manage Sources (Legacy)");
}

void AddOptionsDialog(gsim::Application& app) {
  gsim::Control* file_menu = FindControl(app.main_window().root(), "File Menu");
  ASSERT_NE(file_menu, nullptr);
  apps::AddDialogLauncher(*file_menu, "Word Options", "word_options_dialog");
  std::unique_ptr<gsim::Window> dialog = apps::MakeDialog("Word Options", "app.apply_options");
  apps::AddToggle(dialog->root(), "Dark Mode", "opt.dark_mode");
  app.RegisterDialog("word_options_dialog", std::move(dialog));
}

void RetitleTab(gsim::Application& app) {
  gsim::Control* tab =
      FindControl(app.main_window().root(), "Review", uia::ControlType::kTabItem);
  ASSERT_NE(tab, nullptr);
  tab->RenameTo("Review Tools");
}

void DeleteMacrosGroup(gsim::Application& app) {
  gsim::Control* group = FindControl(app.main_window().root(), "Macros");
  ASSERT_NE(group, nullptr);
  ASSERT_NE(group->parent_control(), nullptr);
  group->parent_control()->RemoveChild(group);  // returned unique_ptr dropped: destroyed
}

Mutator Combined() {
  return [](gsim::Application& app) {
    RenameMenuEntry(app);
    AddOptionsDialog(app);
    RetitleTab(app);
    DeleteMacrosGroup(app);
  };
}

std::function<std::unique_ptr<gsim::Application>()> FactoryFor(const Mutator& mutate) {
  return [mutate]() -> std::unique_ptr<gsim::Application> {
    auto app = std::make_unique<apps::WordSim>();
    if (mutate) {
      mutate(*app);
    }
    return app;
  };
}

// ----- baseline + scratch pipelines -----------------------------------------

struct Baseline {
  std::shared_ptr<const topo::NavGraph> graph;
  ripper::ChecksumTable checksums;
  std::shared_ptr<const dmi::CompiledModel> model;
};

Baseline BuildBaseline(const dmi::ModelingOptions& options) {
  Baseline b;
  apps::WordSim app;
  b.checksums = ripper::ComputeSubtreeChecksums(app);
  ripper::GuiRipper rip(app, options.ripper_config);
  // Canonical layout, matching the runner's offline pipeline and the delta
  // contract (DeltaRip emits canonicalized graphs).
  b.graph = std::make_shared<topo::NavGraph>(rip.Rip(options.contexts).Canonicalized());
  b.model = dmi::CompiledModel::Compile(*b.graph, options, &rip.stats(), &b.checksums);
  return b;
}

std::string ArtifactBytesOf(const dmi::CompiledModel& model, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  dmi::ArtifactMeta meta{"WordSim", "2"};
  EXPECT_TRUE(dmi::SaveModelArtifact(model, meta, path).ok());
  auto bytes = support::ReadFileBytes(path);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::string();
}

// The correctness bar: delta rip + incremental recompile of the mutated build
// must be byte-identical — serialized topology AND artifact bytes — to a
// from-scratch rip+compile of the same build.
void ExpectDeltaMatchesScratch(const Mutator& mutate, const std::string& tag,
                               ripper::DeltaRipResult* delta_out = nullptr,
                               dmi::CompiledModel::RecompileCounters* counters_out = nullptr) {
  const dmi::ModelingOptions options = WordOptions();
  const Baseline baseline = BuildBaseline(options);

  ripper::DeltaRipOptions delta_options;
  delta_options.config = options.ripper_config;
  delta_options.extra_contexts = options.contexts;
  delta_options.app_factory = FactoryFor(mutate);
  support::Result<ripper::DeltaRipResult> delta =
      ripper::DeltaRip(delta_options, *baseline.graph, baseline.checksums);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_FALSE(delta->full_fallback) << tag << ": delta path fell back to a full rip";
  EXPECT_GT(delta->nodes_reused, 0u) << tag;
  EXPECT_GT(delta->partitions_total, 0u) << tag;

  dmi::CompiledModel::RecompileCounters counters;
  const std::shared_ptr<const dmi::CompiledModel> delta_model =
      dmi::CompiledModel::RecompileDelta(*baseline.model, delta->graph, options, &delta->stats,
                                         &delta->checksums, &counters);

  // From-scratch reference over an identically mutated instance. The delta's
  // own RipStats are injected into the reference compile so the artifact's
  // stats section (the honest counters of the work actually spent) matches —
  // everything else must agree because the pipelines agree.
  std::unique_ptr<gsim::Application> scratch_app = FactoryFor(mutate)();
  const ripper::ChecksumTable scratch_checksums = ripper::ComputeSubtreeChecksums(*scratch_app);
  ripper::GuiRipper scratch_rip(*scratch_app, options.ripper_config);
  const topo::NavGraph scratch_graph = scratch_rip.Rip(options.contexts).Canonicalized();
  const std::shared_ptr<const dmi::CompiledModel> scratch_model =
      dmi::CompiledModel::Compile(scratch_graph, options, &delta->stats, &delta->checksums);

  // The fresh checksum table the delta emits must equal the one a scratch
  // walk computes (it becomes the next baseline).
  ASSERT_EQ(delta->checksums.size(), scratch_checksums.size()) << tag;
  for (size_t i = 0; i < scratch_checksums.size(); ++i) {
    EXPECT_EQ(delta->checksums[i].key, scratch_checksums[i].key) << tag;
    EXPECT_EQ(delta->checksums[i].checksum, scratch_checksums[i].checksum)
        << tag << ": " << scratch_checksums[i].key;
  }

  EXPECT_EQ(delta->graph.node_count(), scratch_graph.node_count()) << tag;
  EXPECT_EQ(delta->graph.edge_count(), scratch_graph.edge_count()) << tag;
  EXPECT_EQ(delta_model->catalog().FullText(), scratch_model->catalog().FullText()) << tag;
  EXPECT_EQ(delta_model->static_prompt(), scratch_model->static_prompt()) << tag;
  EXPECT_EQ(ArtifactBytesOf(*delta_model, tag + "_delta.dmim"),
            ArtifactBytesOf(*scratch_model, tag + "_scratch.dmim"))
      << tag << ": artifact bytes diverged";

  if (delta_out != nullptr) {
    *delta_out = std::move(*delta);
  }
  if (counters_out != nullptr) {
    *counters_out = counters;
  }
}

bool Contains(const std::vector<std::string>& v, const std::string& key) {
  return std::find(v.begin(), v.end(), key) != v.end();
}

// ----- mutation-injection suite ---------------------------------------------

TEST(DeltaRip, RenameMenuEntryIsByteIdentical) {
  ripper::DeltaRipResult delta;
  dmi::CompiledModel::RecompileCounters counters;
  ExpectDeltaMatchesScratch(RenameMenuEntry, "rename", &delta, &counters);
  // The rename lives in the References ribbon partition; nothing else moved.
  EXPECT_EQ(delta.diff.changed, std::vector<std::string>{"main:Ribbon Tabs/References"});
  EXPECT_TRUE(delta.diff.added.empty());
  EXPECT_TRUE(delta.diff.removed.empty());
  // Node-count-preserving mutation: forest ids stay stable, so the recompile
  // carries memoized shared-subtree serializations over.
  EXPECT_GT(counters.subtrees_total, 0u);
  EXPECT_GT(counters.subtrees_reused, 0u);
}

TEST(DeltaRip, AddDialogIsByteIdentical) {
  ripper::DeltaRipResult delta;
  ExpectDeltaMatchesScratch(AddOptionsDialog, "add_dialog", &delta);
  // The launcher lands in the File menu partition; the dialog itself is a new
  // satellite.
  EXPECT_TRUE(Contains(delta.diff.changed, "main:File")) << "changed: " << delta.diff.changed.size();
  EXPECT_TRUE(Contains(delta.diff.added, "dialog:Word Options"));
  EXPECT_TRUE(delta.diff.removed.empty());
}

TEST(DeltaRip, RetitleTabIsByteIdentical) {
  ripper::DeltaRipResult delta;
  ExpectDeltaMatchesScratch(RetitleTab, "retitle_tab", &delta);
  // A tab retitle renames the partition key itself: old key out, new key in.
  EXPECT_TRUE(Contains(delta.diff.added, "main:Ribbon Tabs/Review Tools"));
  EXPECT_TRUE(Contains(delta.diff.removed, "main:Ribbon Tabs/Review"));
}

TEST(DeltaRip, DeleteSubtreeIsByteIdentical) {
  ripper::DeltaRipResult delta;
  ExpectDeltaMatchesScratch(DeleteMacrosGroup, "delete_subtree", &delta);
  EXPECT_EQ(delta.diff.changed, std::vector<std::string>{"main:Ribbon Tabs/View"});
  EXPECT_TRUE(delta.diff.added.empty());
  EXPECT_TRUE(delta.diff.removed.empty());
}

TEST(DeltaRip, CombinedMutationsAreByteIdentical) {
  ripper::DeltaRipResult delta;
  ExpectDeltaMatchesScratch(Combined(), "combined", &delta);
  EXPECT_FALSE(delta.diff.Empty());
  EXPECT_GT(delta.nodes_reripped, 0u);
}

TEST(DeltaRip, EmptyBaselineTableFallsBackToFullRip) {
  const dmi::ModelingOptions options = WordOptions();
  const Baseline baseline = BuildBaseline(options);
  ripper::DeltaRipOptions delta_options;
  delta_options.config = options.ripper_config;
  delta_options.extra_contexts = options.contexts;
  delta_options.app_factory = FactoryFor(RenameMenuEntry);
  // A v1 artifact loads with an empty checksum table: no baseline to diff
  // against, so the delta path degrades to a full rip instead of erroring.
  support::Result<ripper::DeltaRipResult> delta =
      ripper::DeltaRip(delta_options, *baseline.graph, ripper::ChecksumTable{});
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(delta->full_fallback);
  EXPECT_EQ(delta->nodes_reused, 0u);

  std::unique_ptr<gsim::Application> scratch_app = FactoryFor(RenameMenuEntry)();
  ripper::GuiRipper scratch_rip(*scratch_app, options.ripper_config);
  const topo::NavGraph scratch_graph = scratch_rip.Rip(options.contexts).Canonicalized();
  EXPECT_EQ(delta->graph.node_count(), scratch_graph.node_count());
  EXPECT_EQ(delta->graph.edge_count(), scratch_graph.edge_count());
}

TEST(DeltaRip, ChecksumTableIsInstanceStable) {
  apps::WordSim a;
  apps::WordSim b;
  const ripper::ChecksumTable ta = ripper::ComputeSubtreeChecksums(a);
  const ripper::ChecksumTable tb = ripper::ComputeSubtreeChecksums(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    // Runtime ids differ between the instances; the structural digest must
    // not see them.
    EXPECT_EQ(ta[i].checksum, tb[i].checksum) << ta[i].key;
  }
  apps::WordSim c;
  RenameMenuEntry(c);
  const ripper::ChecksumTable tc = ripper::ComputeSubtreeChecksums(c);
  EXPECT_FALSE(ripper::DiffChecksumTables(ta, tc).Empty());
}

// ----- FromParts lazy index parity ------------------------------------------

TEST(NavGraphLazyIndex, LoadedAndCompiledFindNodeAgree) {
  const dmi::ModelingOptions options = WordOptions();
  const Baseline baseline = BuildBaseline(options);
  const std::string path = ::testing::TempDir() + "/lazy_index.dmim";
  ASSERT_TRUE(dmi::SaveModelArtifact(*baseline.model, dmi::ArtifactMeta{"WordSim", "1"}, path).ok());
  auto loaded = dmi::LoadModelArtifact(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The loaded DAG was built through FromParts (index skipped at parse time);
  // its lazily built index must answer exactly like the compiled graph's
  // eagerly built one, for every id and for misses.
  const topo::NavGraph& compiled = baseline.model->dag();
  const topo::NavGraph& cold = loaded->model->dag();
  ASSERT_EQ(cold.node_count(), compiled.node_count());
  for (size_t i = 0; i < compiled.node_count(); ++i) {
    const std::string& id = compiled.node(static_cast<int>(i)).control_id;
    EXPECT_EQ(cold.FindNode(id), compiled.FindNode(id)) << id;
  }
  EXPECT_EQ(cold.FindNode("no|such|node"), -1);
  EXPECT_EQ(compiled.FindNode("no|such|node"), -1);
}

// ----- registry refresh + prune ---------------------------------------------

TEST(ModelRegistrySwap, RefreshPublishesAtomicallyAndPruneReclaims) {
  const dmi::ModelingOptions options = WordOptions();
  Baseline baseline = BuildBaseline(options);
  dmi::ModelRegistry registry(TempDirFor("delta_registry"));
  support::FlightRecorder recorder(/*run_id=*/77, /*capacity=*/32);
  registry.SetFlightRecorder(&recorder);

  auto v1 = registry.Acquire("WordSim", "1", options,
                             [&] { return support::Result<std::shared_ptr<const dmi::CompiledModel>>(
                                       baseline.model); });
  ASSERT_TRUE(v1.ok());
  std::shared_ptr<const dmi::CompiledModel> old_model = *v1;
  const std::string old_prompt = old_model->static_prompt();

  auto remodel = [&](const std::shared_ptr<const dmi::CompiledModel>& reg_baseline)
      -> support::Result<dmi::ModelRegistry::Remodeled> {
    EXPECT_EQ(reg_baseline.get(), baseline.model.get());
    ripper::DeltaRipOptions delta_options;
    delta_options.config = options.ripper_config;
    delta_options.extra_contexts = options.contexts;
    delta_options.app_factory = FactoryFor(RenameMenuEntry);
    auto delta = ripper::DeltaRip(delta_options, *baseline.graph, reg_baseline->subtree_checksums());
    if (!delta.ok()) {
      return delta.status();
    }
    auto model = dmi::CompiledModel::RecompileDelta(*reg_baseline, delta->graph, options,
                                                    &delta->stats, &delta->checksums);
    return dmi::ModelRegistry::Remodeled{std::move(model), delta->nodes_reused};
  };
  auto v2 = registry.Refresh("WordSim", "1", "2", options, remodel);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_NE((*v2)->static_prompt(), old_prompt);

  dmi::ModelRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.delta_rips, 1u);
  EXPECT_GT(stats.delta_nodes_reused, 0u);
  // Save-through: the new version's artifact is on disk.
  EXPECT_TRUE(std::filesystem::exists(registry.ArtifactPath("WordSim", "2")));
  // Swap breadcrumb in the wired flight recorder.
  bool noted = false;
  for (const support::FlightEvent& event : recorder.Events()) {
    noted = noted || (event.kind == "note" && event.what.find("model swapped") != std::string::npos);
  }
  EXPECT_TRUE(noted);

  // Idempotent: refreshing onto an already-published version memo-hits.
  auto again = registry.Refresh("WordSim", "1", "2", options, remodel);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), v2->get());
  EXPECT_EQ(registry.stats().delta_rips, 1u);

  // Zero-downtime: the old version's model is untouched while held...
  EXPECT_EQ(old_model->static_prompt(), old_prompt);
  v1->reset();
  baseline.model.reset();  // the test's own baseline ref; old_model remains
  EXPECT_EQ(registry.Prune("WordSim"), 0u);  // old_model still holds v1
  old_model.reset();
  EXPECT_EQ(registry.Prune("WordSim"), 1u);  // now unreferenced and superseded
  EXPECT_EQ(registry.stats().pruned, 1u);
  // The latest version survives pruning.
  v2->reset();
  EXPECT_EQ(registry.Prune("WordSim"), 0u);
  // ...and the pruned version is still cold-loadable from its artifact.
  auto reload = registry.Acquire("WordSim", "1", options, [&] {
    return support::Result<std::shared_ptr<const dmi::CompiledModel>>(
        support::InvalidArgumentError("must load, not compile"));
  });
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ((*reload)->static_prompt(), old_prompt);
}

// ----- zero-downtime concurrent swap ----------------------------------------

std::vector<workload::Task> WordTasks() {
  std::vector<workload::Task> tasks;
  for (workload::Task& task : workload::BuildOsworldWSuite()) {
    if (task.app == workload::AppKind::kWord) {
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

RunConfig SwapConfig() {
  RunConfig config;
  config.mode = InterfaceMode::kGuiPlusDmi;
  config.ApplyPolicy(dmi::Policy::Harsh());
  config.workers = 4;
  config.repeats = 2;
  config.batch.enabled = true;
  return config;
}

TEST(ConcurrentSwap, InFlightRunsFinishOnOldModelNewLeasesSeeNewBuild) {
  const std::vector<workload::Task> suite = WordTasks();
  ASSERT_GT(suite.size(), 4u);
  const RunConfig config = SwapConfig();

  // Reference: the same suite with no mid-flight swap. The swap mutation
  // below renames a control no task touches, so the robust result fields
  // must be unaffected by whether a run resolved the old or the new model.
  TaskRunner reference_runner;
  const SuiteResult reference = reference_runner.RunSuite(suite, config);

  TaskRunner runner;
  runner.SetModelDir(TempDirFor("delta_swap_store"), "1");
  support::FlightRecorder recorder(/*run_id=*/99, /*capacity=*/32);
  runner.mutable_model_registry()->SetFlightRecorder(&recorder);
  // Force the v1 model build, then grab its shared_ptr the way an in-flight
  // session would hold it.
  (void)runner.CoreTopologyTokens(workload::AppKind::kWord);
  auto held = runner.mutable_model_registry()->Acquire(
      "WordSim", "1", TaskRunner::DefaultModelingOptions(workload::AppKind::kWord), [] {
        return support::Result<std::shared_ptr<const dmi::CompiledModel>>(
            support::InvalidArgumentError("memo hit expected"));
      });
  ASSERT_TRUE(held.ok());
  const std::shared_ptr<const dmi::CompiledModel> old_model = *held;
  const std::string old_prompt = old_model->static_prompt();

  SuiteResult swapped;
  std::thread suite_thread([&] { swapped = runner.RunSuite(suite, config); });
  // Land the version swap mid-suite (timing is best-effort; every interleave
  // — before, during, after — must produce the same robust result).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  support::Status refreshed =
      runner.RefreshModel(workload::AppKind::kWord, "2", FactoryFor(RenameMenuEntry));
  suite_thread.join();
  ASSERT_TRUE(refreshed.ok()) << refreshed.ToString();

  // Zero-downtime: the old model stayed fully usable across the swap.
  EXPECT_EQ(old_model->static_prompt(), old_prompt);
  const dmi::ModelRegistry::Stats stats = runner.model_registry()->stats();
  EXPECT_EQ(stats.delta_rips, 1u);
  EXPECT_GT(stats.delta_nodes_reused, 0u);

  // New leases construct the updated build (the pool factory was swapped).
  workload::AppPool::Lease lease = runner.app_pool().Acquire(suite.front());
  ASSERT_TRUE(static_cast<bool>(lease));
  EXPECT_NE(FindControl(lease->main_window().root(), "Manage Sources (Legacy)"), nullptr);
  EXPECT_EQ(FindControl(lease->main_window().root(), "Manage Sources"), nullptr);
  lease.Release();

  // And new model resolutions see version 2.
  EXPECT_NE(runner.CoreTopologyTokens(workload::AppKind::kWord), 0u);

  // Robust suite fields are deterministic across the swap: every (task,
  // trial) is independently seeded and the mutation is behaviorally
  // compatible, so success and failure shape match the unswapped reference.
  EXPECT_EQ(swapped.TotalRuns(), reference.TotalRuns());
  EXPECT_EQ(swapped.SuccessRate(), reference.SuccessRate());
  EXPECT_EQ(swapped.SolvedTasks(), reference.SolvedTasks());
  EXPECT_EQ(swapped.FailureDistribution(), reference.FailureDistribution());
}

}  // namespace
