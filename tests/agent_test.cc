#include <gtest/gtest.h>

#include "src/agent/failure.h"
#include "src/agent/task_runner.h"
#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace {

using namespace agentsim;

LlmProfile PerfectProfile() {
  LlmProfile p = LlmProfile::Gpt5Medium();
  p.ambiguous_fail_gui = p.ambiguous_fail_dmi = 0;
  p.subtle_fail_gui = p.subtle_fail_dmi = 0;
  p.visual_semantic_gui = p.visual_semantic_dmi = 0;
  p.semantic_error_gui = p.semantic_error_dmi = 0;
  p.grounding_error = 0;
  p.drag_hard_fail = 0;
  p.text_select_offbyone = 0;
  p.nav_plan_error = 0;
  p.nav_slip = 0;
  p.topology_fail = 0;
  p.dmi_residual_mechanism = 0;
  p.drag_read_sigma = 0;
  return p;
}

// The runner models all three apps once; share it across tests in this
// binary (each gtest_discover_tests entry is its own process).
TaskRunner& Runner() {
  static TaskRunner* runner = new TaskRunner();
  return *runner;
}

// ----- failure taxonomy -----------------------------------------------------------

TEST(FailureTest, PolicyMechanismPartition) {
  for (int i = 1; i <= static_cast<int>(FailureCause::kDeadlineExceeded); ++i) {
    auto cause = static_cast<FailureCause>(i);
    EXPECT_NE(IsPolicyFailure(cause), IsMechanismFailure(cause))
        << FailureCauseName(cause);
  }
  EXPECT_FALSE(IsPolicyFailure(FailureCause::kNone));
  EXPECT_FALSE(IsMechanismFailure(FailureCause::kNone));
}

// ----- determinism ------------------------------------------------------------------

TEST(RunnerTest, SameSeedSameOutcome) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = LlmProfile::Gpt5Medium();
  RunResult a = Runner().RunOnce(tasks[0], cfg, 12345);
  RunResult b = Runner().RunOnce(tasks[0], cfg, 12345);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.llm_calls, b.llm_calls);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
  EXPECT_EQ(a.cause, b.cause);
}

// The residual-mechanism early exit charges a fixed call/token budget whose
// arithmetic is now spelled with named constants; this golden pins the
// pre-refactor numbers so the naming stays byte-stable: 5 calls (framework
// overhead + 2 core), 500 output tokens, and per-call prompt = session
// prompt + 200 task-overhead tokens.
TEST(RunnerTest, ResidualMechanismAccountingGolden) {
  auto tasks = workload::BuildOsworldWSuite();
  ASSERT_EQ(tasks[0].app, workload::AppKind::kWord);
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = PerfectProfile();
  cfg.profile.dmi_residual_mechanism = 1.0;  // always take the residual branch
  // No injected hazards: the reference session below sees a pristine screen,
  // so the run's screen listing must match it token for token.
  cfg.instability = gsim::InstabilityConfig::None();
  const RunResult r = Runner().RunOnce(tasks[0], cfg, 42);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.cause == FailureCause::kNavigationError ||
              r.cause == FailureCause::kCompositeInteractionError);
  EXPECT_EQ(r.llm_calls, kFrameworkOverheadSteps + 2);
  EXPECT_EQ(r.core_calls, 2);
  EXPECT_EQ(r.output_tokens, 500u);
  // Reference prompt size from an identically-modeled session on a fresh app
  // (same pipeline the runner compiles its shared model with).
  dmi::ModelingOptions options =
      TaskRunner::DefaultModelingOptions(workload::AppKind::kWord);
  apps::WordSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  const topo::NavGraph graph = rip.Rip(options.contexts).Canonicalized();
  apps::WordSim app;
  dmi::DmiSession session(app, graph, options);
  EXPECT_EQ(r.prompt_tokens, 5u * (session.PromptTokens() + 200u));
}

TEST(RunnerTest, ParallelSuiteMatchesSerialElementwise) {
  // RunSuite's worker count must not change any run: seeds are a pure
  // function of (suite seed, task id, trial), and every run owns its app.
  auto all = workload::BuildOsworldWSuite();
  // A slice keeps this test quick while covering all three apps.
  std::vector<workload::Task> tasks;
  for (size_t i = 0; i < all.size(); i += 4) {
    tasks.push_back(all[i]);
  }
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = LlmProfile::Gpt5Medium();
  cfg.repeats = 2;
  cfg.workers = 1;
  SuiteResult serial = Runner().RunSuite(tasks, cfg);
  cfg.workers = 4;
  SuiteResult parallel = Runner().RunSuite(tasks, cfg);

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].task_id, parallel.records[i].task_id);
    ASSERT_EQ(serial.records[i].runs.size(), parallel.records[i].runs.size());
    for (size_t t = 0; t < serial.records[i].runs.size(); ++t) {
      const RunResult& a = serial.records[i].runs[t];
      const RunResult& b = parallel.records[i].runs[t];
      EXPECT_EQ(a.success, b.success) << tasks[i].id << " trial " << t;
      EXPECT_EQ(a.llm_calls, b.llm_calls) << tasks[i].id << " trial " << t;
      EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << tasks[i].id << " trial " << t;
      EXPECT_EQ(a.prompt_tokens, b.prompt_tokens) << tasks[i].id << " trial " << t;
      EXPECT_EQ(a.cause, b.cause) << tasks[i].id << " trial " << t;
    }
  }
}

TEST(RunnerTest, TracingOnKeepsSuitesIdenticalAndCountersMatchAggregates) {
  auto all = workload::BuildOsworldWSuite();
  std::vector<workload::Task> tasks;
  for (size_t i = 0; i < all.size(); i += 6) {
    tasks.push_back(all[i]);
  }
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = LlmProfile::Gpt5Medium();
  cfg.repeats = 2;

  // Tracing on for both suites: span recording must not perturb outcomes.
  support::TraceRecorder::Global().Discard();
  support::TraceRecorder::Global().SetEnabled(true);
  const support::MetricsSnapshot before = support::MetricsRegistry::Global().Snapshot();
  cfg.workers = 1;
  SuiteResult serial = Runner().RunSuite(tasks, cfg);
  const support::MetricsSnapshot after = support::MetricsRegistry::Global().Snapshot();
  cfg.workers = 4;
  SuiteResult parallel = Runner().RunSuite(tasks, cfg);
  support::TraceRecorder::Global().SetEnabled(false);
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i) {
    ASSERT_EQ(serial.records[i].runs.size(), parallel.records[i].runs.size());
    for (size_t t = 0; t < serial.records[i].runs.size(); ++t) {
      const RunResult& a = serial.records[i].runs[t];
      const RunResult& b = parallel.records[i].runs[t];
      EXPECT_EQ(a.success, b.success) << tasks[i].id << " trial " << t;
      EXPECT_EQ(a.llm_calls, b.llm_calls) << tasks[i].id << " trial " << t;
      EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << tasks[i].id << " trial " << t;
      EXPECT_EQ(a.cause, b.cause) << tasks[i].id << " trial " << t;
    }
  }

  // Counter deltas across the serial suite equal the SuiteResult aggregates:
  // the registry is fed per-run in RunOnce, so sums are order-independent.
  auto delta = [&before, &after](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  const auto total_runs = static_cast<uint64_t>(serial.TotalRuns());
  const auto failed_runs = static_cast<uint64_t>(serial.FailedRuns());
  EXPECT_EQ(delta("agent.runs"), total_runs);
  EXPECT_EQ(delta("agent.failures"), failed_runs);
  EXPECT_EQ(delta("agent.successes"), total_runs - failed_runs);
  uint64_t llm_calls = 0;
  uint64_t ui_actions = 0;
  for (const TaskRecord& r : serial.records) {
    for (const RunResult& run : r.runs) {
      llm_calls += static_cast<uint64_t>(run.llm_calls);
      ui_actions += run.ui_actions;
    }
  }
  EXPECT_EQ(delta("agent.llm_calls"), llm_calls);
  EXPECT_EQ(delta("agent.ui_actions"), ui_actions);

  // Both suites were traced: one agent.run span per run, one suite span each.
  size_t run_spans = 0;
  size_t suite_spans = 0;
  for (const support::TraceEvent& e : events) {
    if (e.name == "agent.run") {
      ++run_spans;
    } else if (e.name == "agent.suite") {
      ++suite_spans;
    }
  }
  EXPECT_EQ(run_spans, static_cast<size_t>(serial.TotalRuns() + parallel.TotalRuns()));
  EXPECT_EQ(suite_spans, 2u);
}

// ----- perfect-policy ground truth ----------------------------------------------------
// Both ground-truth plans must succeed through their interface when the
// policy makes no mistakes and the UI is stable: the plans are correct.

class PerfectSweep : public ::testing::TestWithParam<int> {};

TEST_P(PerfectSweep, EveryTaskSolvableThroughBothInterfaces) {
  auto tasks = workload::BuildOsworldWSuite();
  const workload::Task& task = tasks[static_cast<size_t>(GetParam())];
  for (InterfaceMode mode : {InterfaceMode::kGuiOnly, InterfaceMode::kGuiPlusDmi}) {
    RunConfig cfg;
    cfg.mode = mode;
    cfg.profile = PerfectProfile();
    cfg.instability = gsim::InstabilityConfig::None();
    RunResult r = Runner().RunOnce(task, cfg, 7);
    EXPECT_TRUE(r.success) << task.id << " via " << InterfaceModeName(mode) << ": "
                           << FailureCauseName(r.cause);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, PerfectSweep, ::testing::Range(0, 27));

// ----- framework accounting --------------------------------------------------------

TEST(RunnerTest, DmiStepsIncludeFrameworkOverhead) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = PerfectProfile();
  cfg.instability = gsim::InstabilityConfig::None();
  // P1 is a pure one-visit task: 3 framework steps + 1 core call = 4.
  for (const auto& t : tasks) {
    if (t.id == "P1") {
      RunResult r = Runner().RunOnce(t, cfg, 3);
      ASSERT_TRUE(r.success);
      EXPECT_EQ(r.core_calls, 1);
      EXPECT_EQ(r.llm_calls, kFrameworkOverheadSteps + 1);
    }
  }
}

TEST(RunnerTest, GuiNeedsMoreCallsThanDmiOnNavigationTask) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.profile = PerfectProfile();
  cfg.instability = gsim::InstabilityConfig::None();
  for (const auto& t : tasks) {
    if (t.id != "P1") {
      continue;
    }
    cfg.mode = InterfaceMode::kGuiOnly;
    RunResult gui = Runner().RunOnce(t, cfg, 3);
    cfg.mode = InterfaceMode::kGuiPlusDmi;
    RunResult dmi = Runner().RunOnce(t, cfg, 3);
    ASSERT_TRUE(gui.success);
    ASSERT_TRUE(dmi.success);
    // The GUI path must click through Design -> Format Background -> ... with
    // visibility-limited action sequences; DMI plans globally in one call.
    EXPECT_GT(gui.llm_calls, dmi.llm_calls);
  }
}

// ----- suite-level behaviour ---------------------------------------------------------

TEST(RunnerTest, SuiteAggregatesConsistent) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = LlmProfile::Gpt5Medium();
  cfg.repeats = 1;
  SuiteResult r = Runner().RunSuite(tasks, cfg);
  EXPECT_EQ(r.TotalRuns(), 27);
  EXPECT_GE(r.SuccessRate(), 0.0);
  EXPECT_LE(r.SuccessRate(), 1.0);
  int fail_total = 0;
  for (const auto& [cause, n] : r.FailureDistribution()) {
    EXPECT_NE(cause, FailureCause::kNone);
    fail_total += n;
  }
  EXPECT_EQ(fail_total, r.FailedRuns());
}

TEST(RunnerTest, DmiBeatsGuiOnSuite) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.profile = LlmProfile::Gpt5Medium();
  cfg.repeats = 2;
  cfg.mode = InterfaceMode::kGuiOnly;
  SuiteResult gui = Runner().RunSuite(tasks, cfg);
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  SuiteResult dmi = Runner().RunSuite(tasks, cfg);
  // The headline directional claims (Table 3).
  EXPECT_GT(dmi.SuccessRate(), gui.SuccessRate());
  EXPECT_LT(dmi.AvgStepsSuccessful(), gui.AvgStepsSuccessful());
  EXPECT_GT(dmi.OneShotShare(), 0.4);
  // Failure mix shifts from mechanism to policy (Figure 6).
  int dmi_policy = 0;
  int dmi_mech = 0;
  for (const auto& [cause, n] : dmi.FailureDistribution()) {
    (IsPolicyFailure(cause) ? dmi_policy : dmi_mech) += n;
  }
  int gui_policy = 0;
  int gui_mech = 0;
  for (const auto& [cause, n] : gui.FailureDistribution()) {
    (IsPolicyFailure(cause) ? gui_policy : gui_mech) += n;
  }
  if (dmi_policy + dmi_mech > 0 && gui_policy + gui_mech > 0) {
    const double dmi_policy_share =
        static_cast<double>(dmi_policy) / (dmi_policy + dmi_mech);
    const double gui_policy_share =
        static_cast<double>(gui_policy) / (gui_policy + gui_mech);
    EXPECT_GT(dmi_policy_share, gui_policy_share);
  }
}

TEST(RunnerTest, ModelingStatsMatchPaperShape) {
  // §5.2: raw graphs in the thousands, pruned cores far smaller.
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    const dmi::ModelingStats& s = Runner().modeling_stats(kind);
    EXPECT_GT(s.raw.nodes, 2000u) << workload::AppKindName(kind);
    EXPECT_LT(s.core_nodes, s.forest_nodes / 2) << workload::AppKindName(kind);
    EXPECT_GT(s.core_tokens, 1000u);
    EXPECT_LT(s.core_tokens, 40000u);
    // Automated modeling < 3 hours of simulated wall time (§5.2).
    EXPECT_LT(Runner().rip_stats(kind).simulated_ms, 3.0 * 3600.0 * 1000.0);
  }
}

TEST(RunnerTest, StepCapEnforced) {
  auto tasks = workload::BuildOsworldWSuite();
  LlmProfile hopeless = LlmProfile::Gpt5Medium();
  hopeless.nav_plan_error = 1.0;  // every call mis-plans: no progress
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiOnly;
  cfg.profile = hopeless;
  RunResult r = Runner().RunOnce(tasks[0], cfg, 5);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.llm_calls, 30);
  EXPECT_EQ(r.cause, FailureCause::kStepBudgetExhausted);
}

TEST(RunnerTest, IntersectionNormalizationHelpers) {
  auto tasks = workload::BuildOsworldWSuite();
  RunConfig cfg;
  cfg.mode = InterfaceMode::kGuiPlusDmi;
  cfg.profile = PerfectProfile();
  cfg.instability = gsim::InstabilityConfig::None();
  cfg.repeats = 1;
  SuiteResult r = Runner().RunSuite(tasks, cfg);
  std::set<std::string> solved = r.SolvedTasks();
  EXPECT_EQ(solved.size(), 27u);  // perfect profile solves everything
  EXPECT_GT(r.AvgStepsOnTasks(solved), 0.0);
  EXPECT_EQ(r.AvgStepsOnTasks({}), 0.0);
}

}  // namespace
