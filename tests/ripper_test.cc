#include <gtest/gtest.h>

#include <memory>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/gui/application.h"
#include "src/ripper/identifier.h"
#include "src/ripper/ripper.h"
#include "src/topology/transform.h"
#include "src/topology/validate.h"
#include "src/uia/tree.h"

namespace {

// ----- identifier synthesis --------------------------------------------------------

TEST(IdentifierTest, PrefersAutomationId) {
  uia::SnapshotEntry entry;
  entry.automation_id = "btnSave";
  entry.name = "Save";
  entry.type = uia::ControlType::kButton;
  entry.ancestor_path = "App/Toolbar";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "btnSave|Button|App/Toolbar");
}

TEST(IdentifierTest, FallsBackToNameThenUnnamed) {
  uia::SnapshotEntry entry;
  entry.name = "Save";
  entry.type = uia::ControlType::kButton;
  entry.ancestor_path = "App";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "Save|Button|App");
  entry.name = "";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "[Unnamed]|Button|App");
}

TEST(IdentifierTest, ParseRoundTrip) {
  auto parsed = ripper::ParseControlId("Blue|ListItem|Color Palette");
  EXPECT_EQ(parsed.primary_id, "Blue");
  EXPECT_EQ(parsed.control_type, "ListItem");
  EXPECT_EQ(parsed.ancestor_path, "Color Palette");
}

TEST(IdentifierTest, ParseDegenerateForms) {
  EXPECT_EQ(ripper::ParseControlId("justname").primary_id, "justname");
  EXPECT_EQ(ripper::ParseControlId("a|b").control_type, "b");
}

TEST(IdentifierTest, ParsePrimaryContainingSeparator) {
  // A control named "A|B": the type field anchors the split.
  auto parsed = ripper::ParseControlId("A|B|Button|App");
  EXPECT_EQ(parsed.primary_id, "A|B");
  EXPECT_EQ(parsed.control_type, "Button");
  EXPECT_EQ(parsed.ancestor_path, "App");
}

TEST(IdentifierTest, ParseAncestorContainingSeparator) {
  // An ancestor named "Weird|Name": the valid type pair sits left of the
  // stray separator.
  auto parsed = ripper::ParseControlId("Save|Button|App/Weird|Name");
  EXPECT_EQ(parsed.primary_id, "Save");
  EXPECT_EQ(parsed.control_type, "Button");
  EXPECT_EQ(parsed.ancestor_path, "App/Weird|Name");
}

TEST(IdentifierTest, ParseNoValidTypeFallsBackToLastTwoSeparators) {
  auto parsed = ripper::ParseControlId("a|b|c|d");
  EXPECT_EQ(parsed.primary_id, "a|b");
  EXPECT_EQ(parsed.control_type, "c");
  EXPECT_EQ(parsed.ancestor_path, "d");
}

TEST(IdentifierTest, SynthesizeParseRoundTripWithPathologicalName) {
  uia::SnapshotEntry entry;
  entry.name = "We|ird";
  entry.type = uia::ControlType::kButton;
  entry.ancestor_path = "App/Toolbar";
  const std::string id = ripper::SynthesizeControlId(entry);
  EXPECT_EQ(id, "We|ird|Button|App/Toolbar");
  auto parsed = ripper::ParseControlId(id);
  EXPECT_EQ(parsed.primary_id, "We|ird");
  EXPECT_EQ(parsed.control_type, "Button");
  EXPECT_EQ(parsed.ancestor_path, "App/Toolbar");
}

// ----- ripping a small controlled app ----------------------------------------------

class SmallApp : public gsim::Application {
 public:
  SmallApp() : gsim::Application("SmallApp") {
    gsim::Control& root = main_window().root();
    shared_ = RegisterSharedSubtree(
        std::make_unique<gsim::Control>("Shared Panel", uia::ControlType::kList));
    shared_->NewChild("Cell One", uia::ControlType::kListItem)->SetCommand("pick");
    shared_->NewChild("Cell Two", uia::ControlType::kListItem)->SetCommand("pick");

    gsim::Control* bar = root.NewChild("Bar", uia::ControlType::kToolBar);
    gsim::Control* m1 = bar->NewChild("Host A", uia::ControlType::kMenuItem);
    m1->SetSharedPopup(shared_);
    gsim::Control* m2 = bar->NewChild("Host B", uia::ControlType::kMenuItem);
    m2->SetSharedPopup(shared_);

    gsim::Control* menu = bar->NewChild("Plain Menu", uia::ControlType::kMenuItem);
    auto popup = std::make_unique<gsim::Control>("Plain Popup", uia::ControlType::kMenu);
    popup->NewChild("Leaf Action", uia::ControlType::kButton)->SetCommand("x");
    menu->SetPopup(std::move(popup));

    root.NewChild("Trap", uia::ControlType::kHyperlink)
        ->SetClickEffect(gsim::ClickEffect::kExternal);
  }

  gsim::Control* shared_;
};

TEST(RipperTest, DiscoversMergeNodeViaSharedPopup) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  // The shared panel root must be a single node with two in-edges.
  int panel = graph.FindNode("Shared Panel|List|");
  ASSERT_GE(panel, 0) << "shared panel not found as a floating surface";
  EXPECT_EQ(graph.InDegrees()[static_cast<size_t>(panel)], 2);
  // Its cells exist once.
  EXPECT_GE(graph.FindNode("Cell One|ListItem|Shared Panel"), 0);
}

TEST(RipperTest, DiscoversOwnedMenuContents) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  bool found_leaf = false;
  for (size_t i = 0; i < graph.node_count(); ++i) {
    if (graph.node(static_cast<int>(i)).name == "Leaf Action") {
      found_leaf = true;
    }
  }
  EXPECT_TRUE(found_leaf);
}

TEST(RipperTest, BlocklistPreventsExternalRecoveries) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  (void)r.Rip();
  EXPECT_EQ(r.stats().external_recoveries, 0u);
}

TEST(RipperTest, MissingBlocklistCostsRecoveries) {
  SmallApp app;
  ripper::GuiRipper r(app, ripper::RipperConfig{});
  (void)r.Rip();
  EXPECT_GE(r.stats().external_recoveries, 1u);
}

TEST(RipperTest, GraphValidatesThroughPipeline) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  auto dag = topo::Decycle(graph).dag;
  topo::Forest forest = topo::SelectiveExternalize(dag, 0);
  auto report = topo::ValidateForest(dag, forest);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

// ----- context-aware exploration -----------------------------------------------------

TEST(RipperTest, ContextRevealsContextualControls) {
  apps::PpointSim app;
  ripper::RipperConfig config;
  config.blocklist = {"Account"};
  config.max_depth = 4;  // keep this test fast
  ripper::GuiRipper r(app, config);

  // Without the image context, the Picture Format tab is invisible.
  topo::NavGraph without = r.Rip();
  bool tab_without = false;
  for (size_t i = 0; i < without.node_count(); ++i) {
    tab_without |= without.node(static_cast<int>(i)).name == "Picture Format";
  }
  EXPECT_FALSE(tab_without);

  apps::PpointSim app2;
  ripper::GuiRipper r2(app2, config);
  ripper::RipContext image_context;
  image_context.name = "image-selected";
  image_context.setup = [](gsim::Application& a) {
    auto& pp = static_cast<apps::PpointSim&>(a);
    pp.SetCurrentSlide(2);
    gsim::Control* image = nullptr;
    pp.main_window().root().WalkStatic([&](gsim::Control& c) {
      if (image == nullptr && c.Type() == uia::ControlType::kImage && !c.IsOffscreen()) {
        image = &c;
      }
    });
    if (image != nullptr) {
      (void)a.Click(*image);
    }
  };
  topo::NavGraph with = r2.Rip({image_context});
  bool tab_with = false;
  for (size_t i = 0; i < with.node_count(); ++i) {
    tab_with |= with.node(static_cast<int>(i)).name == "Picture Format";
  }
  EXPECT_TRUE(tab_with);
  EXPECT_EQ(r2.stats().contexts, 2u);
}

// ----- determinism: index caching and parallel context ripping ----------------------

namespace determinism {

ripper::RipContext ImageContext() {
  ripper::RipContext context;
  context.name = "image-selected";
  context.setup = [](gsim::Application& a) {
    auto& pp = static_cast<apps::PpointSim&>(a);
    pp.SetCurrentSlide(2);
    gsim::Control* image = nullptr;
    pp.main_window().root().WalkStatic([&](gsim::Control& c) {
      if (image == nullptr && c.Type() == uia::ControlType::kImage && !c.IsOffscreen()) {
        image = &c;
      }
    });
    if (image != nullptr) {
      (void)a.Click(*image);
    }
  };
  return context;
}

// Rips one app family with the index on and off; the graphs must be
// byte-identical (node order, ids, edges — everything).
template <typename App>
void ExpectCachedMatchesUncached(const std::vector<ripper::RipContext>& contexts,
                                 int max_depth) {
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  config.max_depth = max_depth;

  config.use_visible_index = true;
  App cached_app;
  ripper::GuiRipper cached(cached_app, config);
  const std::string cached_json = cached.Rip(contexts).ToJson().Dump();

  config.use_visible_index = false;
  App uncached_app;
  ripper::GuiRipper uncached(uncached_app, config);
  const std::string uncached_json = uncached.Rip(contexts).ToJson().Dump();

  EXPECT_EQ(cached_json, uncached_json);
  // Logical rip metrics must be unchanged by caching too.
  EXPECT_EQ(cached.stats().clicks, uncached.stats().clicks);
  EXPECT_EQ(cached.stats().captures, uncached.stats().captures);
  EXPECT_EQ(cached.stats().explored, uncached.stats().explored);
  EXPECT_DOUBLE_EQ(cached.stats().simulated_ms, uncached.stats().simulated_ms);
  // And the cache must actually have been exercised.
  EXPECT_GT(cached.stats().capture_cache_hits, 0u);
  EXPECT_EQ(uncached.stats().capture_cache_hits, 0u);
}

}  // namespace determinism

TEST(RipperDeterminismTest, CachedMatchesUncachedWord) {
  determinism::ExpectCachedMatchesUncached<apps::WordSim>({}, 4);
}

TEST(RipperDeterminismTest, CachedMatchesUncachedExcel) {
  determinism::ExpectCachedMatchesUncached<apps::ExcelSim>({}, 4);
}

TEST(RipperDeterminismTest, CachedMatchesUncachedPpointWithContext) {
  determinism::ExpectCachedMatchesUncached<apps::PpointSim>({determinism::ImageContext()},
                                                            4);
}

TEST(RipperDeterminismTest, ParallelContextsMatchSerial) {
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  config.max_depth = 4;

  ripper::ParallelRipOptions serial_options;
  serial_options.app_factory = [] { return std::make_unique<apps::PpointSim>(); };
  serial_options.pool = nullptr;
  ripper::RipResult serial =
      ripper::RipAppContexts(config, {determinism::ImageContext()}, serial_options);

  support::ThreadPool pool(3);
  ripper::ParallelRipOptions parallel_options = serial_options;
  parallel_options.pool = &pool;
  ripper::RipResult parallel =
      ripper::RipAppContexts(config, {determinism::ImageContext()}, parallel_options);

  EXPECT_EQ(serial.graph.ToJson().Dump(), parallel.graph.ToJson().Dump());
  EXPECT_EQ(serial.stats.clicks, parallel.stats.clicks);
  EXPECT_EQ(serial.stats.captures, parallel.stats.captures);
  EXPECT_EQ(serial.stats.explored, parallel.stats.explored);
  // The contextual tab reached through the image context must be present.
  bool tab = false;
  for (size_t i = 0; i < parallel.graph.node_count(); ++i) {
    tab |= parallel.graph.node(static_cast<int>(i)).name == "Picture Format";
  }
  EXPECT_TRUE(tab);
}

TEST(RipperDeterminismTest, SingleContextParallelMatchesClassicRipCanonicalized) {
  // With no extra contexts there is no shared-exploration divergence, so the
  // independent-context rip equals the classic Rip() up to node ordering.
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  config.max_depth = 4;

  apps::WordSim app;
  ripper::GuiRipper classic(app, config);
  const std::string classic_json = classic.Rip().Canonicalized().ToJson().Dump();

  ripper::ParallelRipOptions options;
  options.app_factory = [] { return std::make_unique<apps::WordSim>(); };
  ripper::RipResult independent = ripper::RipAppContexts(config, {}, options);

  EXPECT_EQ(classic_json, independent.graph.ToJson().Dump());
}

// ----- full-app rip (Word) -----------------------------------------------------------

TEST(RipperTest, WordRipReachesPaperScale) {
  apps::WordSim app;
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  // §5.2: raw modeled graphs exceed 4K controls.
  EXPECT_GT(graph.node_count(), 4000u) << graph.node_count();
  topo::GraphStats stats = graph.ComputeStats();
  EXPECT_GT(stats.merge_nodes, 0u);
  // Word's UI has cycles (the Text Effects pane pair).
  auto decycled = topo::Decycle(graph);
  EXPECT_GT(decycled.removed_back_edges, 0u);
  // And the full pipeline validates.
  topo::Forest forest =
      topo::SelectiveExternalize(decycled.dag, topo::kDefaultExternalizeThreshold);
  auto report = topo::ValidateForest(decycled.dag, forest);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

}  // namespace
