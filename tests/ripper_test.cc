#include <gtest/gtest.h>

#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/gui/application.h"
#include "src/ripper/identifier.h"
#include "src/ripper/ripper.h"
#include "src/topology/transform.h"
#include "src/topology/validate.h"
#include "src/uia/tree.h"

namespace {

// ----- identifier synthesis --------------------------------------------------------

TEST(IdentifierTest, PrefersAutomationId) {
  uia::SnapshotEntry entry;
  entry.automation_id = "btnSave";
  entry.name = "Save";
  entry.type = uia::ControlType::kButton;
  entry.ancestor_path = "App/Toolbar";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "btnSave|Button|App/Toolbar");
}

TEST(IdentifierTest, FallsBackToNameThenUnnamed) {
  uia::SnapshotEntry entry;
  entry.name = "Save";
  entry.type = uia::ControlType::kButton;
  entry.ancestor_path = "App";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "Save|Button|App");
  entry.name = "";
  EXPECT_EQ(ripper::SynthesizeControlId(entry), "[Unnamed]|Button|App");
}

TEST(IdentifierTest, ParseRoundTrip) {
  auto parsed = ripper::ParseControlId("Blue|ListItem|Color Palette");
  EXPECT_EQ(parsed.primary_id, "Blue");
  EXPECT_EQ(parsed.control_type, "ListItem");
  EXPECT_EQ(parsed.ancestor_path, "Color Palette");
}

TEST(IdentifierTest, ParseDegenerateForms) {
  EXPECT_EQ(ripper::ParseControlId("justname").primary_id, "justname");
  EXPECT_EQ(ripper::ParseControlId("a|b").control_type, "b");
}

// ----- ripping a small controlled app ----------------------------------------------

class SmallApp : public gsim::Application {
 public:
  SmallApp() : gsim::Application("SmallApp") {
    gsim::Control& root = main_window().root();
    shared_ = RegisterSharedSubtree(
        std::make_unique<gsim::Control>("Shared Panel", uia::ControlType::kList));
    shared_->NewChild("Cell One", uia::ControlType::kListItem)->SetCommand("pick");
    shared_->NewChild("Cell Two", uia::ControlType::kListItem)->SetCommand("pick");

    gsim::Control* bar = root.NewChild("Bar", uia::ControlType::kToolBar);
    gsim::Control* m1 = bar->NewChild("Host A", uia::ControlType::kMenuItem);
    m1->SetSharedPopup(shared_);
    gsim::Control* m2 = bar->NewChild("Host B", uia::ControlType::kMenuItem);
    m2->SetSharedPopup(shared_);

    gsim::Control* menu = bar->NewChild("Plain Menu", uia::ControlType::kMenuItem);
    auto popup = std::make_unique<gsim::Control>("Plain Popup", uia::ControlType::kMenu);
    popup->NewChild("Leaf Action", uia::ControlType::kButton)->SetCommand("x");
    menu->SetPopup(std::move(popup));

    root.NewChild("Trap", uia::ControlType::kHyperlink)
        ->SetClickEffect(gsim::ClickEffect::kExternal);
  }

  gsim::Control* shared_;
};

TEST(RipperTest, DiscoversMergeNodeViaSharedPopup) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  // The shared panel root must be a single node with two in-edges.
  int panel = graph.FindNode("Shared Panel|List|");
  ASSERT_GE(panel, 0) << "shared panel not found as a floating surface";
  EXPECT_EQ(graph.InDegrees()[static_cast<size_t>(panel)], 2);
  // Its cells exist once.
  EXPECT_GE(graph.FindNode("Cell One|ListItem|Shared Panel"), 0);
}

TEST(RipperTest, DiscoversOwnedMenuContents) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  bool found_leaf = false;
  for (size_t i = 0; i < graph.node_count(); ++i) {
    if (graph.node(static_cast<int>(i)).name == "Leaf Action") {
      found_leaf = true;
    }
  }
  EXPECT_TRUE(found_leaf);
}

TEST(RipperTest, BlocklistPreventsExternalRecoveries) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  (void)r.Rip();
  EXPECT_EQ(r.stats().external_recoveries, 0u);
}

TEST(RipperTest, MissingBlocklistCostsRecoveries) {
  SmallApp app;
  ripper::GuiRipper r(app, ripper::RipperConfig{});
  (void)r.Rip();
  EXPECT_GE(r.stats().external_recoveries, 1u);
}

TEST(RipperTest, GraphValidatesThroughPipeline) {
  SmallApp app;
  ripper::RipperConfig config;
  config.blocklist = {"Trap"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  auto dag = topo::Decycle(graph).dag;
  topo::Forest forest = topo::SelectiveExternalize(dag, 0);
  auto report = topo::ValidateForest(dag, forest);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

// ----- context-aware exploration -----------------------------------------------------

TEST(RipperTest, ContextRevealsContextualControls) {
  apps::PpointSim app;
  ripper::RipperConfig config;
  config.blocklist = {"Account"};
  config.max_depth = 4;  // keep this test fast
  ripper::GuiRipper r(app, config);

  // Without the image context, the Picture Format tab is invisible.
  topo::NavGraph without = r.Rip();
  bool tab_without = false;
  for (size_t i = 0; i < without.node_count(); ++i) {
    tab_without |= without.node(static_cast<int>(i)).name == "Picture Format";
  }
  EXPECT_FALSE(tab_without);

  apps::PpointSim app2;
  ripper::GuiRipper r2(app2, config);
  ripper::RipContext image_context;
  image_context.name = "image-selected";
  image_context.setup = [](gsim::Application& a) {
    auto& pp = static_cast<apps::PpointSim&>(a);
    pp.SetCurrentSlide(2);
    gsim::Control* image = nullptr;
    pp.main_window().root().WalkStatic([&](gsim::Control& c) {
      if (image == nullptr && c.Type() == uia::ControlType::kImage && !c.IsOffscreen()) {
        image = &c;
      }
    });
    if (image != nullptr) {
      (void)a.Click(*image);
    }
  };
  topo::NavGraph with = r2.Rip({image_context});
  bool tab_with = false;
  for (size_t i = 0; i < with.node_count(); ++i) {
    tab_with |= with.node(static_cast<int>(i)).name == "Picture Format";
  }
  EXPECT_TRUE(tab_with);
  EXPECT_EQ(r2.stats().contexts, 2u);
}

// ----- full-app rip (Word) -----------------------------------------------------------

TEST(RipperTest, WordRipReachesPaperScale) {
  apps::WordSim app;
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  ripper::GuiRipper r(app, config);
  topo::NavGraph graph = r.Rip();
  // §5.2: raw modeled graphs exceed 4K controls.
  EXPECT_GT(graph.node_count(), 4000u) << graph.node_count();
  topo::GraphStats stats = graph.ComputeStats();
  EXPECT_GT(stats.merge_nodes, 0u);
  // Word's UI has cycles (the Text Effects pane pair).
  auto decycled = topo::Decycle(graph);
  EXPECT_GT(decycled.removed_back_edges, 0u);
  // And the full pipeline validates.
  topo::Forest forest =
      topo::SelectiveExternalize(decycled.dag, topo::kDefaultExternalizeThreshold);
  auto report = topo::ValidateForest(decycled.dag, forest);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
}

}  // namespace
