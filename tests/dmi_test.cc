#include <gtest/gtest.h>

#include <limits>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/command.h"
#include "src/dmi/session.h"
#include "src/gui/instability.h"
#include "src/support/strings.h"
#include "src/text/tokens.h"
#include "src/uia/tree.h"

namespace {

dmi::ModelingOptions DefaultOptions() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  return options;
}

// The PowerPoint image context (§4.1 context-aware exploration): selects the
// image on slide 3 so the Picture Format tab becomes explorable.
ripper::RipContext PpointImageContext() {
  ripper::RipContext context;
  context.name = "image-selected";
  context.setup = [](gsim::Application& a) {
    auto& pp = static_cast<apps::PpointSim&>(a);
    pp.SetCurrentSlide(2);
    gsim::Control* image = nullptr;
    pp.main_window().root().WalkStatic([&](gsim::Control& c) {
      if (image == nullptr && c.Type() == uia::ControlType::kImage && !c.IsOffscreen()) {
        image = &c;
      }
    });
    if (image != nullptr) {
      (void)a.Click(*image);
    }
  };
  return context;
}

// ----- command parsing ----------------------------------------------------------

TEST(CommandTest, ParsesAllFourKinds) {
  auto cmds = dmi::ParseVisitCommands(
      R"([{"id": "19"},
          {"id": 7, "entry_ref_id": ["14", 15]},
          {"id": "3", "text": "hello"},
          {"shortcut_key": "ENTER"}])");
  ASSERT_TRUE(cmds.ok()) << cmds.status().ToString();
  ASSERT_EQ(cmds->size(), 4u);
  EXPECT_EQ((*cmds)[0].kind, dmi::VisitCommand::Kind::kAccess);
  EXPECT_EQ((*cmds)[0].target_id, 19);
  EXPECT_EQ((*cmds)[1].entry_ref_ids, (std::vector<int>{14, 15}));
  EXPECT_EQ((*cmds)[2].kind, dmi::VisitCommand::Kind::kAccessInput);
  EXPECT_EQ((*cmds)[2].text, "hello");
  EXPECT_EQ((*cmds)[3].kind, dmi::VisitCommand::Kind::kShortcut);
}

TEST(CommandTest, FurtherQueryExclusive) {
  EXPECT_TRUE(dmi::ParseVisitCommands(R"([{"further_query": -1}])").ok());
  auto mixed = dmi::ParseVisitCommands(R"([{"further_query": -1}, {"id": "3"}])");
  EXPECT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), support::StatusCode::kInvalidArgument);
}

TEST(CommandTest, ToleratesSingleObject) {
  auto cmds = dmi::ParseVisitCommands(R"({"id": "5"})");
  ASSERT_TRUE(cmds.ok());
  EXPECT_EQ(cmds->size(), 1u);
}

TEST(CommandTest, RejectsMalformed) {
  EXPECT_FALSE(dmi::ParseVisitCommands("").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands("[]").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands("[3]").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands(R"([{"id": "abc"}])").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands(R"([{"bogus": 1}])").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands(R"([{"shortcut_key": ""}])").ok());
  EXPECT_FALSE(dmi::ParseVisitCommands(R"([{"id": "1", "entry_ref_id": "7"}])").ok());
}

// The pre-index name resolver: scans every tree of the forest for references
// per candidate instead of using the precomputed reverse-reference index.
// Kept verbatim as the behavioral reference — ResolveTargetByNames must return
// identical results after the index swap.
support::Result<dmi::ResolvedTarget> LegacyResolve(const desc::TopologyCatalog& catalog,
                                                   const std::vector<std::string>& names) {
  if (names.empty()) {
    return support::InvalidArgumentError("empty name chain");
  }
  const topo::Forest& forest = catalog.forest();
  const topo::NavGraph& dag = catalog.dag();

  auto refs_to = [&forest](int subtree) {
    std::vector<int> refs;
    auto scan = [&](const topo::Tree& tree) {
      for (const topo::TreeNode& n : tree.nodes) {
        if (n.is_reference && n.ref_subtree == subtree) {
          refs.push_back(n.id);
        }
      }
    };
    scan(forest.main());
    for (const topo::Tree& t : forest.shared()) {
      scan(t);
    }
    return refs;
  };

  auto chain_for = [&](int ref) -> std::vector<int> {
    std::vector<int> chain = {ref};
    int cursor = ref;
    for (int hop = 0; hop < 16; ++hop) {
      auto loc = forest.LocateById(cursor);
      if (!loc.ok() || loc->tree < 0) {
        return chain;
      }
      std::vector<int> outer = refs_to(loc->tree);
      if (outer.empty()) {
        return {};
      }
      chain.push_back(outer[0]);
      cursor = outer[0];
    }
    return {};
  };

  auto matches = [&](const std::vector<int>& path) {
    size_t want = 0;
    for (int node : path) {
      if (want < names.size() && dag.node(node).name == names[want]) {
        ++want;
      }
    }
    return want == names.size();
  };

  dmi::ResolvedTarget best;
  int best_path_len = std::numeric_limits<int>::max();
  for (int id : forest.AllIds()) {
    const topo::TreeNode* node = forest.FindById(id);
    if (node->is_reference) {
      continue;
    }
    if (dag.node(node->graph_index).name != names.back()) {
      continue;
    }
    auto loc = forest.LocateById(id);
    std::vector<std::vector<int>> ref_options;
    if (loc->tree < 0) {
      ref_options.push_back({});
    } else {
      for (int ref : refs_to(loc->tree)) {
        std::vector<int> chain = chain_for(ref);
        if (!chain.empty()) {
          ref_options.push_back(std::move(chain));
        }
      }
    }
    for (const std::vector<int>& refs : ref_options) {
      auto path = forest.ResolvePath(id, refs);
      if (!path.ok() || !matches(*path)) {
        continue;
      }
      if (static_cast<int>(path->size()) < best_path_len) {
        best_path_len = static_cast<int>(path->size());
        best.id = id;
        best.entry_ref_ids = refs;
      }
    }
  }
  if (best.id < 0) {
    return support::NotFoundError("no control matches the name chain ending in '" +
                                  names.back() + "'");
  }
  return best;
}

// Asserts the indexed resolver agrees with the legacy scan on every chain.
void ExpectResolveParity(dmi::DmiSession& session,
                         const std::vector<std::vector<std::string>>& chains) {
  for (const std::vector<std::string>& chain : chains) {
    auto indexed = session.ResolveTargetByNames(chain);
    auto legacy = LegacyResolve(session.catalog(), chain);
    ASSERT_EQ(indexed.ok(), legacy.ok()) << "chain ending in '" << chain.back() << "'";
    if (indexed.ok()) {
      EXPECT_EQ(indexed->id, legacy->id) << "chain ending in '" << chain.back() << "'";
      EXPECT_EQ(indexed->entry_ref_ids, legacy->entry_ref_ids)
          << "chain ending in '" << chain.back() << "'";
    }
  }
}

// Models a *scratch* instance (ripping clicks everything, mutating app
// state), then binds the session to a fresh instance via the portable graph —
// exactly the paper's "model is version-specific but reusable across
// machines" deployment (§5.2).
template <typename App>
std::pair<App*, dmi::DmiSession*> ModelWithScratch(const dmi::ModelingOptions& options) {
  App scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  App* live = new App();
  auto* session = new dmi::DmiSession(*live, std::move(graph), options);
  return {live, session};
}

// ----- session modeling ------------------------------------------------------------

class PpointSession : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dmi::ModelingOptions options = DefaultOptions();
    options.contexts = {PpointImageContext()};
    std::tie(app_, session_) = ModelWithScratch<apps::PpointSim>(options);
  }
  static void TearDownTestSuite() {
    delete session_;
    delete app_;
    session_ = nullptr;
    app_ = nullptr;
  }

  void SetUp() override {
    app_->ResetUiState();
    session_->screen().Refresh();
  }

  static apps::PpointSim* app_;
  static dmi::DmiSession* session_;
};

apps::PpointSim* PpointSession::app_ = nullptr;
dmi::DmiSession* PpointSession::session_ = nullptr;

TEST_F(PpointSession, ModelingStatsMatchPaperShape) {
  const dmi::ModelingStats& stats = session_->stats();
  EXPECT_GT(stats.raw.nodes, 4000u);          // §5.2: >4K controls
  EXPECT_GT(stats.raw.merge_nodes, 0u);       // shared palette
  EXPECT_GT(stats.back_edges_removed, 0u);    // pane cycle
  EXPECT_GT(stats.shared_subtrees, 0u);
  EXPECT_GT(stats.references, 1u);
  EXPECT_LT(stats.core_nodes, stats.forest_nodes);  // pruning bites
  EXPECT_LT(stats.core_tokens, stats.full_tokens);
}

TEST_F(PpointSession, Task1SingleVisitCall) {
  // The paper's Table 1 Task 1 as ONE declarative call:
  // visit(["Solid fill", "Blue", "Apply to All"]).
  auto solid = session_->ResolveTargetByNames({"Format Background Pane", "Solid fill"});
  ASSERT_TRUE(solid.ok()) << solid.status().ToString();
  auto blue = session_->ResolveTargetByNames({"Fill Color", "Blue"});
  ASSERT_TRUE(blue.ok()) << blue.status().ToString();
  auto apply = session_->ResolveTargetByNames({"Format Background Pane", "Apply to All"});
  ASSERT_TRUE(apply.ok()) << apply.status().ToString();

  std::string json = support::Format(
      R"([{"id": "%d"}, {"id": "%d", "entry_ref_id": [%s]}, {"id": "%d"}])", solid->id,
      blue->id,
      support::Join([&] {
        std::vector<std::string> refs;
        for (int r : blue->entry_ref_ids) {
          refs.push_back(std::to_string(r));
        }
        return refs;
      }(), ",").c_str(),
      apply->id);
  dmi::VisitReport report = session_->Visit(json);
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  for (const auto& slide : app_->slides()) {
    EXPECT_EQ(slide.background_color, "Blue");
    EXPECT_TRUE(slide.background_solid);
  }
}

TEST_F(PpointSession, NonLeafCommandsAreFiltered) {
  // The LLM (incorrectly) emits the navigation chain too: Design tab,
  // Format Background button — non-leaf nodes that must be filtered out.
  auto design = session_->ResolveTargetByNames({"Design"});
  auto fmt_bg = session_->ResolveTargetByNames({"Format Background"});
  auto solid = session_->ResolveTargetByNames({"Solid fill"});
  ASSERT_TRUE(design.ok());
  ASSERT_TRUE(fmt_bg.ok());
  ASSERT_TRUE(solid.ok());
  std::string json = support::Format(R"([{"id":"%d"},{"id":"%d"},{"id":"%d"}])", design->id,
                                     fmt_bg->id, solid->id);
  dmi::VisitReport report = session_->Visit(json);
  EXPECT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(report.filtered_count, 2u);
  EXPECT_TRUE(report.commands[0].filtered);
  EXPECT_TRUE(report.commands[1].filtered);
  EXPECT_FALSE(report.commands[2].filtered);
  EXPECT_TRUE(app_->slides()[0].background_solid);
}

TEST_F(PpointSession, ShortcutAfterFilteredCommandIsDropped) {
  auto design = session_->ResolveTargetByNames({"Design"});
  ASSERT_TRUE(design.ok());
  std::string json = support::Format(
      R"([{"id":"%d"},{"shortcut_key":"ENTER"}])", design->id);
  dmi::VisitReport report = session_->Visit(json);
  EXPECT_EQ(report.filtered_count, 2u);
  EXPECT_EQ(report.ui_actions, 0u);
}

TEST_F(PpointSession, SharedTargetWithoutRefGivesStructuredError) {
  auto blue = session_->ResolveTargetByNames({"Fill Color", "Blue"});
  ASSERT_TRUE(blue.ok());
  ASSERT_FALSE(blue->entry_ref_ids.empty());
  std::string json = support::Format(R"([{"id":"%d"}])", blue->id);
  dmi::VisitReport report = session_->Visit(json);
  EXPECT_FALSE(report.overall.ok());
  EXPECT_EQ(report.overall.code(), support::StatusCode::kFailedPrecondition);
  EXPECT_NE(report.overall.message().find("entry_ref_id"), std::string::npos);
}

TEST_F(PpointSession, FurtherQueryGlobalAndBranch) {
  dmi::VisitReport global = session_->Visit(R"([{"further_query": -1}])");
  ASSERT_TRUE(global.was_further_query);
  EXPECT_GT(global.further_query_text.size(), session_->catalog().CoreText().size());

  // Branch query on a menu host that the core elided content under.
  auto themes = session_->ResolveTargetByNames({"Themes Gallery"});
  ASSERT_TRUE(themes.ok());
  dmi::VisitReport branch =
      session_->Visit(support::Format(R"([{"further_query": "%d"}])", themes->id));
  ASSERT_TRUE(branch.was_further_query);
  EXPECT_NE(branch.further_query_text.find("Theme 42"), std::string::npos);
}

TEST_F(PpointSession, StateDeclarationScrollbar) {
  // The paper's Table 1 Task 2: set_scrollbar_pos(80%).
  session_->screen().Refresh();
  std::string label = session_->screen().LabelOf(*app_->slide_view_control());
  ASSERT_FALSE(label.empty());
  auto status = session_->interaction().SetScrollbarPos(label, -1.0, 80.0);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_DOUBLE_EQ(status->vertical_percent, 80.0);
  EXPECT_DOUBLE_EQ(app_->view_scroll_percent(), 80.0);
}

TEST_F(PpointSession, InteractionRejectsWrongPattern) {
  session_->screen().Refresh();
  // The status bar text has no ScrollPattern.
  gsim::Control* text = nullptr;
  for (const auto& lc : session_->screen().labeled()) {
    if (lc.control->Type() == uia::ControlType::kText) {
      text = lc.control;
      break;
    }
  }
  ASSERT_NE(text, nullptr);
  auto status =
      session_->interaction().SetScrollbarPos(session_->screen().LabelOf(*text), -1, 50);
  EXPECT_EQ(status.status().code(), support::StatusCode::kFailedPrecondition);
}

TEST_F(PpointSession, PromptContextContainsAllSections) {
  std::string prompt = session_->BuildPromptContext();
  EXPECT_NE(prompt.find("# DMI usage"), std::string::npos);
  EXPECT_NE(prompt.find("## Main tree"), std::string::npos);
  EXPECT_NE(prompt.find("# Current screen"), std::string::npos);
  EXPECT_GT(session_->PromptTokens(), 1000u);
}

TEST_F(PpointSession, PromptCacheByteIdenticalAndInvalidatesOnMutation) {
  // Cold build equals the cache-bypassing reference, and the streaming
  // segment-summed token count equals the reference tokenizer's piece count.
  const std::string first = session_->BuildPromptContext();
  EXPECT_EQ(first, session_->BuildPromptContextUncached());
  EXPECT_EQ(session_->PromptTokens(), textutil::TokenizePieces(first).size());
  // Warm turn: no UI mutation, the cached bytes come back unchanged.
  EXPECT_EQ(session_->BuildPromptContext(), first);
  // Mutating the UI bumps the generation; the next build must reflect the
  // new screen and again match the uncached reference.
  auto target = session_->ResolveTargetByNames({"Transition Gallery", "Transition 9"});
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  ASSERT_TRUE(
      session_->Visit(support::Format(R"([{"id":"%d"}])", target->id)).overall.ok());
  const std::string after = session_->BuildPromptContext();
  EXPECT_NE(after, first);
  EXPECT_EQ(after, session_->BuildPromptContextUncached());
  EXPECT_EQ(session_->PromptTokens(), textutil::TokenizePieces(after).size());
}

TEST_F(PpointSession, CountOnlyPromptTokensMatchesMaterializedPath) {
  // Bump the UI generation so the cache is cold, then take the count-only
  // path FIRST: it must produce the exact token count of the assembled
  // prompt without ever materializing the dynamic segment.
  gsim::Control* bold =
      static_cast<gsim::Control*>(uia::FindByName(app_->main_window().root(), "Bold"));
  ASSERT_NE(bold, nullptr);
  bold->set_toggled(!bold->toggled());
  const size_t count_only = session_->PromptTokens();
  EXPECT_EQ(session_->PromptCacheBytes(), 0u);  // nothing was materialized
  const std::string reference = session_->BuildPromptContextUncached();
  EXPECT_EQ(count_only, textutil::TokenizePieces(reference).size());
  // Materializing afterwards agrees byte- and count-wise, and the static
  // segment is served straight off the shared model.
  const dmi::PromptView view = session_->Prompt();
  EXPECT_EQ(view.tokens, count_only);
  EXPECT_EQ(view.Assemble(), reference);
  EXPECT_EQ(view.static_text, &session_->model().static_prompt());
  EXPECT_EQ(session_->PromptCacheBytes(), view.dynamic_text->size());
  bold->set_toggled(!bold->toggled());  // restore
}

TEST_F(PpointSession, PromptCacheInvalidatesOnStateSetters) {
  const std::string before = session_->BuildPromptContext();
  // A toggle flip reaches the prompt through the screen listing's [on]
  // markers; the setter must bump the generation so the cache rebuilds.
  gsim::Control* bold =
      static_cast<gsim::Control*>(uia::FindByName(app_->main_window().root(), "Bold"));
  ASSERT_NE(bold, nullptr);
  const uint64_t gen = app_->ui_generation();
  bold->set_toggled(!bold->toggled());
  EXPECT_GT(app_->ui_generation(), gen);
  const std::string after = session_->BuildPromptContext();
  EXPECT_NE(after, before);
  EXPECT_EQ(after, session_->BuildPromptContextUncached());
  // Setting the same value again is a no-op: no generation bump, cache holds.
  const uint64_t gen2 = app_->ui_generation();
  bold->set_toggled(bold->toggled());
  EXPECT_EQ(app_->ui_generation(), gen2);
  EXPECT_EQ(session_->BuildPromptContext(), after);
  bold->set_toggled(!bold->toggled());  // restore
}

TEST_F(PpointSession, ResolveTargetMatchesLegacyScan) {
  std::vector<std::vector<std::string>> chains = {
      {"Format Background Pane", "Solid fill"},
      {"Fill Color", "Blue"},
      {"Format Background Pane", "Apply to All"},
      {"Transition Gallery", "Transition 9"},
      {"Themes Gallery"},
      {"No Such Control Anywhere"},
  };
  // Broad sweep: every 17th forest node's name as a single-element chain.
  const topo::Forest& forest = session_->catalog().forest();
  std::vector<int> ids = forest.AllIds();
  for (size_t i = 0; i < ids.size(); i += 17) {
    const topo::TreeNode* n = forest.FindById(ids[i]);
    if (!n->is_reference) {
      chains.push_back({session_->catalog().dag().node(n->graph_index).name});
    }
  }
  ExpectResolveParity(*session_, chains);
}

TEST_F(PpointSession, VisitNavigatesAcrossTabs) {
  // Target on the Transitions tab while Home is active.
  auto target = session_->ResolveTargetByNames({"Transition Gallery", "Transition 9"});
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  dmi::VisitReport report =
      session_->Visit(support::Format(R"([{"id":"%d"}])", target->id));
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(app_->slides()[app_->current_slide()].transition, "Transition 9");
}

TEST_F(PpointSession, UnknownIdStructuredError) {
  dmi::VisitReport report = session_->Visit(R"([{"id": "999999"}])");
  EXPECT_FALSE(report.overall.ok());
  EXPECT_EQ(report.overall.code(), support::StatusCode::kNotFound);
}

// ----- Word session: F&R dialog + window-close priority ----------------------------

class WordSession : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::tie(app_, session_) = ModelWithScratch<apps::WordSim>(DefaultOptions());
  }
  static void TearDownTestSuite() {
    delete session_;
    delete app_;
    session_ = nullptr;
    app_ = nullptr;
  }
  void SetUp() override {
    app_->ResetUiState();
    session_->screen().Refresh();
  }

  static apps::WordSim* app_;
  static dmi::DmiSession* session_;
};

apps::WordSim* WordSession::app_ = nullptr;
dmi::DmiSession* WordSession::session_ = nullptr;

dmi::VisitCommand Access(const dmi::ResolvedTarget& target, const std::string& text = "") {
  dmi::VisitCommand cmd;
  cmd.kind = text.empty() ? dmi::VisitCommand::Kind::kAccess
                          : dmi::VisitCommand::Kind::kAccessInput;
  cmd.target_id = target.id;
  cmd.entry_ref_ids = target.entry_ref_ids;
  cmd.text = text;
  return cmd;
}

TEST_F(WordSession, AccessAndInputThenReplaceAll) {
  app_->SetSelection(0, 0);
  auto find_edit = session_->ResolveTargetByNames({"Find and Replace", "Find what"});
  ASSERT_TRUE(find_edit.ok()) << find_edit.status().ToString();
  auto repl_edit = session_->ResolveTargetByNames({"Find and Replace", "Replace with"});
  ASSERT_TRUE(repl_edit.ok());
  auto repl_all = session_->ResolveTargetByNames({"Find and Replace", "Replace All"});
  ASSERT_TRUE(repl_all.ok());
  dmi::VisitReport report = session_->VisitParsed({Access(*find_edit, "committee"),
                                                   Access(*repl_edit, "board"),
                                                   Access(*repl_all)});
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_GT(app_->replace_count(), 0);
}

TEST_F(WordSession, PathDependentColorViaDmi) {
  app_->SetSelection(1, 2);
  auto underline_red =
      session_->ResolveTargetByNames({"Underline Color", "Standard Red"});
  ASSERT_TRUE(underline_red.ok()) << underline_red.status().ToString();
  std::vector<std::string> refs;
  for (int r : underline_red->entry_ref_ids) {
    refs.push_back(std::to_string(r));
  }
  dmi::VisitReport report = session_->Visit(
      support::Format(R"([{"id":"%d","entry_ref_id":[%s]}])", underline_red->id,
                      support::Join(refs, ",").c_str()));
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(app_->paragraphs()[1].fmt.underline_color, "Standard Red");
  EXPECT_EQ(app_->paragraphs()[1].fmt.color, "Black");  // font color untouched
}

TEST_F(WordSession, ForeignDialogClosedWithOkPriority) {
  // Open the Symbol dialog manually, then visit a ribbon target: the
  // executor must close the dialog (OK > Close > Cancel) and proceed.
  gsim::Control* insert = static_cast<gsim::Control*>(
      uia::FindByName(app_->main_window().root(), "Insert"));
  ASSERT_TRUE(app_->Click(*insert).ok());
  gsim::Control* symbol = static_cast<gsim::Control*>(
      uia::FindByName(app_->main_window().root(), "Symbol"));
  ASSERT_TRUE(app_->Click(*symbol).ok());
  gsim::Control* more = static_cast<gsim::Control*>(
      uia::FindByName(app_->main_window().root(), "More Symbols..."));
  ASSERT_TRUE(app_->Click(*more).ok());
  ASSERT_EQ(app_->OpenWindows().size(), 2u);

  app_->SetSelection(0, 0);
  auto bold = session_->ResolveTargetByNames({"Font", "Bold"});
  ASSERT_TRUE(bold.ok());
  dmi::VisitReport report =
      session_->Visit(support::Format(R"([{"id":"%d"}])", bold->id));
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(app_->OpenWindows().size(), 1u);  // dialog got closed
  EXPECT_TRUE(app_->paragraphs()[0].fmt.bold);
  // The report should mention the close action (structured feedback).
  EXPECT_NE(report.Render().find("closed window"), std::string::npos);
}

TEST_F(WordSession, SelectParagraphsThenFormat) {
  session_->screen().Refresh();
  std::string doc_label = session_->screen().LabelOf(*app_->document_control());
  ASSERT_FALSE(doc_label.empty());
  auto sel = session_->interaction().SelectParagraphs(doc_label, 3, 5);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_NE(sel->selected_text.find("Paragraph 4"), std::string::npos);
  auto italic = session_->ResolveTargetByNames({"Font", "Italic"});
  ASSERT_TRUE(italic.ok());
  dmi::VisitReport report =
      session_->Visit(support::Format(R"([{"id":"%d"}])", italic->id));
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_TRUE(app_->paragraphs()[4].fmt.italic);
  EXPECT_FALSE(app_->paragraphs()[0].fmt.italic);
}

TEST_F(WordSession, GetTextsActiveOnDocument) {
  session_->screen().Refresh();
  std::string doc_label = session_->screen().LabelOf(*app_->document_control());
  auto text = session_->interaction().GetTextsActive(doc_label);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Paragraph 1"), std::string::npos);
}

TEST_F(WordSession, ResolveTargetMatchesLegacyScan) {
  std::vector<std::vector<std::string>> chains = {
      {"Find and Replace", "Find what"},
      {"Find and Replace", "Replace All"},
      {"Underline Color", "Standard Red"},
      {"Font", "Bold"},
      {"Bullets", "Bullet Style 3"},
      {"Entirely Missing Name"},
  };
  const topo::Forest& forest = session_->catalog().forest();
  std::vector<int> ids = forest.AllIds();
  for (size_t i = 0; i < ids.size(); i += 19) {
    const topo::TreeNode* n = forest.FindById(ids[i]);
    if (!n->is_reference) {
      chains.push_back({session_->catalog().dag().node(n->graph_index).name});
    }
  }
  ExpectResolveParity(*session_, chains);
}

TEST_F(WordSession, FuzzyMatcherSurvivesNameVariations) {
  // Enable name decoration online (the model was built without it).
  gsim::InstabilityConfig cfg;
  cfg.name_variation_rate = 1.0;  // every control decorated
  gsim::InstabilityInjector injector(cfg, 99);
  app_->SetInstability(&injector);
  app_->SetSelection(0, 0);
  auto bold = session_->ResolveTargetByNames({"Font", "Bold"});
  ASSERT_TRUE(bold.ok());
  dmi::VisitReport report =
      session_->Visit(support::Format(R"([{"id":"%d"}])", bold->id));
  app_->SetInstability(nullptr);
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_TRUE(app_->paragraphs()[0].fmt.bold);
}

TEST_F(WordSession, RetryHandlesSlowLoadingPopups) {
  gsim::InstabilityConfig cfg;
  cfg.slow_load_rate = 1.0;
  cfg.slow_load_ticks = 2;
  gsim::InstabilityInjector injector(cfg, 7);
  app_->SetInstability(&injector);
  auto item = session_->ResolveTargetByNames({"Bullets", "Bullet Style 3"});
  ASSERT_TRUE(item.ok()) << item.status().ToString();
  app_->SetSelection(0, 0);
  dmi::VisitReport report =
      session_->Visit(support::Format(R"([{"id":"%d"}])", item->id));
  app_->SetInstability(nullptr);
  ASSERT_TRUE(report.overall.ok()) << report.Render();
}

// ----- Excel session: grid + Name Box description ------------------------------------

class ExcelSession : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::tie(app_, session_) = ModelWithScratch<apps::ExcelSim>(DefaultOptions());
  }
  static void TearDownTestSuite() {
    delete session_;
    delete app_;
    session_ = nullptr;
    app_ = nullptr;
  }
  void SetUp() override {
    app_->ResetUiState();
    session_->screen().Refresh();
  }

  static apps::ExcelSim* app_;
  static dmi::DmiSession* session_;
};

apps::ExcelSim* ExcelSession::app_ = nullptr;
dmi::DmiSession* ExcelSession::session_ = nullptr;

TEST_F(ExcelSession, NameBoxJumpViaVisitWithShortcut) {
  auto name_box = session_->ResolveTargetByNames({"Name Box"});
  ASSERT_TRUE(name_box.ok());
  dmi::VisitReport report = session_->Visit(support::Format(
      R"([{"id":"%d","text":"C7"},{"shortcut_key":"ENTER"}])", name_box->id));
  ASSERT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(app_->active_row(), 6);
  EXPECT_EQ(app_->active_col(), 2);
}

TEST_F(ExcelSession, PassiveGetTextsCarriesCellData) {
  std::string payload = session_->interaction().GetTextsPassive();
  EXPECT_NE(payload.find("Region"), std::string::npos);
  EXPECT_NE(payload.find("empty"), std::string::npos);  // coalesced empties
}

TEST_F(ExcelSession, SelectControlsMultiCell) {
  session_->screen().Refresh();
  std::string a2 = session_->screen().LabelOf(*app_->CellControl(1, 0));
  std::string c4 = session_->screen().LabelOf(*app_->CellControl(3, 2));
  ASSERT_FALSE(a2.empty());
  ASSERT_FALSE(c4.empty());
  ASSERT_TRUE(session_->interaction().SelectControls({a2, c4}).ok());
  int r0, c0, r1, c1;
  ASSERT_TRUE(app_->SelectionBounds(&r0, &c0, &r1, &c1));
  EXPECT_EQ(r0, 1);
  EXPECT_EQ(c1, 2);
}

TEST_F(ExcelSession, SelectControlsConservativeOnBadTarget) {
  session_->screen().Refresh();
  std::string a2 = session_->screen().LabelOf(*app_->CellControl(1, 0));
  // The grid itself is not a SelectionItem: whole call must refuse.
  std::string grid = session_->screen().LabelOf(*app_->grid_control());
  auto status = session_->interaction().SelectControls({a2, grid});
  EXPECT_EQ(status.code(), support::StatusCode::kFailedPrecondition);
  int r0, c0, r1, c1;
  // Nothing was selected by the failed call beyond prior state.
  app_->ResetUiState();
  (void)r0;
  (void)c0;
  (void)r1;
  (void)c1;
}

TEST_F(ExcelSession, ScrollGridRevealsDeepRows) {
  session_->screen().Refresh();
  std::string grid_label = session_->screen().LabelOf(*app_->grid_control());
  auto status = session_->interaction().SetScrollbarPos(grid_label, -1, 90.0);
  ASSERT_TRUE(status.ok());
  session_->screen().Refresh();
  EXPECT_FALSE(app_->CellControl(120, 0)->IsOffscreen());
  // get_texts active on a deep cell after scroll.
  app_->SetCellValue(120, 0, "deep");
  std::string label = session_->screen().LabelOf(*app_->CellControl(120, 0));
  ASSERT_FALSE(label.empty());
  auto text = session_->interaction().GetTextsActive(label);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "deep");
}

TEST_F(ExcelSession, ResolveTargetMatchesLegacyScan) {
  std::vector<std::vector<std::string>> chains = {
      {"Sort and Filter"},
      {"Filter"},
      {"Name Box"},
      {"Unknown Excel Widget"},
  };
  const topo::Forest& forest = session_->catalog().forest();
  std::vector<int> ids = forest.AllIds();
  for (size_t i = 0; i < ids.size(); i += 23) {
    const topo::TreeNode* n = forest.FindById(ids[i]);
    if (!n->is_reference) {
      chains.push_back({session_->catalog().dag().node(n->graph_index).name});
    }
  }
  ExpectResolveParity(*session_, chains);
}

TEST_F(ExcelSession, ToggleStateDeclarativeIdempotent) {
  session_->screen().Refresh();
  // Find the Filter toggle via the Sort and Filter menu first (make visible).
  auto sort_menu = session_->ResolveTargetByNames({"Sort and Filter"});
  ASSERT_TRUE(sort_menu.ok());
  // Open the menu by clicking (navigation node: use direct app click).
  gsim::Control* menu = static_cast<gsim::Control*>(
      uia::FindByName(app_->main_window().root(), "Sort and Filter"));
  ASSERT_TRUE(app_->Click(*menu).ok());
  session_->screen().Refresh();
  gsim::Control* filter = static_cast<gsim::Control*>(
      uia::FindByName(app_->main_window().root(), "Filter"));
  ASSERT_NE(filter, nullptr);
  std::string label = session_->screen().LabelOf(*filter);
  ASSERT_FALSE(label.empty());
  ASSERT_TRUE(session_->interaction().SetToggleState(label, true).ok());
  EXPECT_TRUE(app_->filter_enabled());
  // Declarative: setting the same state again is a no-op, not a flip.
  ASSERT_TRUE(session_->interaction().SetToggleState(label, true).ok());
  EXPECT_TRUE(app_->filter_enabled());
  ASSERT_TRUE(session_->interaction().SetToggleState(label, false).ok());
  EXPECT_FALSE(app_->filter_enabled());
}

}  // namespace
