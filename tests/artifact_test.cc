// Binary model artifacts + registry (DESIGN.md §14): byte-identity of the
// cold-load path, typed rejection of every corruption mode, registry
// memoization / save-through / concurrent acquire, and the legacy-JSON
// conversion path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/word_sim.h"
#include "src/dmi/model_artifact.h"
#include "src/dmi/model_registry.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/binio.h"

namespace {

dmi::ModelingOptions WordOptions() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  options.prune.manual_exclude_names = {"Styles Gallery"};
  return options;
}

// One WordSim rip+compile shared by every test in this file (the tests
// exercise the artifact layer, not the pipeline).
const std::shared_ptr<const dmi::CompiledModel>& WordModel() {
  static const std::shared_ptr<const dmi::CompiledModel> model = [] {
    apps::WordSim app;
    dmi::ModelingOptions options = WordOptions();
    ripper::GuiRipper rip(app, options.ripper_config);
    const topo::NavGraph graph = rip.Rip(options.contexts);
    return dmi::CompiledModel::Compile(graph, options, &rip.stats());
  }();
  return model;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Saves the shared model once and hands out the artifact bytes for the
// corruption tests to mutate.
const std::string& WordArtifactBytes() {
  static const std::string bytes = [] {
    const std::string path = TempPath("word_identity.dmim");
    dmi::ArtifactMeta meta{"WordSim", "1"};
    EXPECT_TRUE(dmi::SaveModelArtifact(*WordModel(), meta, path).ok());
    auto read = support::ReadFileBytes(path);
    EXPECT_TRUE(read.ok());
    return *read;
  }();
  return bytes;
}

support::Status LoadBytesAs(const std::string& bytes, const std::string& name,
                            std::shared_ptr<const dmi::CompiledModel>* out = nullptr) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(support::WriteFileBytes(path, bytes).ok());
  auto loaded = dmi::LoadModelArtifact(path, WordOptions());
  if (loaded.ok() && out != nullptr) {
    *out = loaded->model;
  }
  return loaded.ok() ? support::Status::Ok() : loaded.status();
}

// ----- byte identity --------------------------------------------------------

TEST(ArtifactRoundTrip, ByteIdenticalModel) {
  const auto& compiled = WordModel();
  std::shared_ptr<const dmi::CompiledModel> loaded;
  ASSERT_TRUE(LoadBytesAs(WordArtifactBytes(), "word_roundtrip.dmim", &loaded).ok());

  // The static prompt segment and every memoized serialization must be
  // byte-identical — a loaded model must be indistinguishable to an agent.
  EXPECT_EQ(loaded->static_prompt(), compiled->static_prompt());
  EXPECT_EQ(loaded->static_prompt_tokens(), compiled->static_prompt_tokens());
  EXPECT_EQ(loaded->usage_hint_tokens(), compiled->usage_hint_tokens());
  EXPECT_EQ(loaded->catalog().CoreText(), compiled->catalog().CoreText());
  EXPECT_EQ(loaded->catalog().CoreTokens(), compiled->catalog().CoreTokens());
  EXPECT_EQ(loaded->catalog().FullTokens(), compiled->catalog().FullTokens());
  // FullText stays lazy on load; it composes from the seeded subtree texts
  // and must reproduce the compiled model's bytes.
  EXPECT_EQ(loaded->catalog().FullText(), compiled->catalog().FullText());
  ASSERT_EQ(loaded->catalog().forest().shared().size(),
            compiled->catalog().forest().shared().size());
  for (size_t s = 0; s < compiled->catalog().forest().shared().size(); ++s) {
    EXPECT_EQ(loaded->catalog().SubtreeText(static_cast<int>(s)),
              compiled->catalog().SubtreeText(static_cast<int>(s)));
  }

  // Structure and stats.
  EXPECT_EQ(loaded->dag().node_count(), compiled->dag().node_count());
  EXPECT_EQ(loaded->stats().forest_nodes, compiled->stats().forest_nodes);
  EXPECT_EQ(loaded->stats().core_tokens, compiled->stats().core_tokens);
  EXPECT_EQ(loaded->stats().raw.nodes, compiled->stats().raw.nodes);
  EXPECT_EQ(loaded->stats().rip.clicks, compiled->stats().rip.clicks);
  EXPECT_EQ(loaded->stats().rip.simulated_ms, compiled->stats().rip.simulated_ms);

  // Compile-time options travel with the artifact.
  EXPECT_EQ(loaded->options().prune.manual_exclude_names,
            compiled->options().prune.manual_exclude_names);
  EXPECT_EQ(loaded->options().externalize_threshold,
            compiled->options().externalize_threshold);
}

TEST(ArtifactRoundTrip, LoadedModelServesSessions) {
  const auto& compiled = WordModel();
  std::shared_ptr<const dmi::CompiledModel> loaded;
  ASSERT_TRUE(LoadBytesAs(WordArtifactBytes(), "word_session.dmim", &loaded).ok());

  // Name resolution answers identically.
  const std::vector<std::string> chain = {"Font", "Bold"};
  auto from_compiled = compiled->ResolveTargetByNames(chain);
  auto from_loaded = loaded->ResolveTargetByNames(chain);
  ASSERT_TRUE(from_compiled.ok());
  ASSERT_TRUE(from_loaded.ok());
  EXPECT_EQ(from_loaded->id, from_compiled->id);
  EXPECT_EQ(from_loaded->entry_ref_ids, from_compiled->entry_ref_ids);

  // A live session attached to the loaded model counts the same prompt.
  apps::WordSim app_a;
  apps::WordSim app_b;
  dmi::DmiSession session_a(app_a, compiled);
  dmi::DmiSession session_b(app_b, loaded);
  EXPECT_EQ(session_b.PromptTokens(), session_a.PromptTokens());
}

TEST(ArtifactRoundTrip, InspectReportsSections) {
  const std::string path = TempPath("word_inspect.dmim");
  ASSERT_TRUE(support::WriteFileBytes(path, WordArtifactBytes()).ok());
  auto info = dmi::InspectModelArtifact(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, dmi::kArtifactFormatVersion);
  EXPECT_EQ(info->meta.app_kind, "WordSim");
  EXPECT_EQ(info->meta.app_version, "1");
  EXPECT_TRUE(info->checksum_ok);
  std::vector<std::string> names;
  uint64_t section_bytes = 0;
  for (const auto& section : info->sections) {
    names.push_back(section.name);
    section_bytes += section.bytes;
  }
  EXPECT_EQ(names, (std::vector<std::string>{"dag", "forest", "catalog", "prompt", "stats",
                                             "options", "checksums"}));
  // Section frames are 20 bytes each; bodies account for the whole payload.
  EXPECT_EQ(section_bytes + names.size() * 20, info->payload_bytes);
}

TEST(ArtifactRoundTrip, SaveCreatesMissingStoreDirectory) {
  // Model stores usually don't exist yet (fresh `dmi_run --model-dir`,
  // `dmi_modeler --out cache/...`): save must create the parent directories.
  const std::string path = TempPath("fresh_store/nested/word.dmim");
  dmi::ArtifactMeta meta{"WordSim", "1"};
  ASSERT_TRUE(dmi::SaveModelArtifact(*WordModel(), meta, path).ok());
  auto loaded = dmi::LoadModelArtifact(path, WordOptions(), &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model->static_prompt(), WordModel()->static_prompt());
}

// ----- corruption taxonomy --------------------------------------------------
// Every corrupt artifact is a distinct typed error, never a crash and never
// a silently wrong model.

TEST(ArtifactCorruption, MissingFileIsNotFound) {
  auto loaded = dmi::LoadModelArtifact(TempPath("nope.dmim"), WordOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST(ArtifactCorruption, TruncatedFileIsInvalidArgument) {
  const std::string& good = WordArtifactBytes();
  // Mid-header and mid-payload truncations both reject as truncated.
  for (size_t keep : {size_t{6}, size_t{20}, good.size() / 2, good.size() - 1}) {
    support::Status st = LoadBytesAs(good.substr(0, keep), "word_trunc.dmim");
    ASSERT_FALSE(st.ok()) << "keep=" << keep;
    EXPECT_EQ(st.code(), support::StatusCode::kInvalidArgument) << st.ToString();
  }
}

TEST(ArtifactCorruption, BadMagicIsInvalidArgument) {
  std::string bytes = WordArtifactBytes();
  bytes[0] = 'X';
  support::Status st = LoadBytesAs(bytes, "word_magic.dmim");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), support::StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("not a DMI model artifact"), std::string::npos);
  EXPECT_EQ(st.detail().required_pattern, "magic=DMIMODL");
}

TEST(ArtifactCorruption, ForeignEndiannessIsFailedPrecondition) {
  std::string bytes = WordArtifactBytes();
  // The byte sequence a byte-swapped producer would have left on disk (the
  // reverse of whatever this host wrote for 0x01020304).
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  support::Status st = LoadBytesAs(bytes, "word_endian.dmim");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), support::StatusCode::kFailedPrecondition);
}

TEST(ArtifactCorruption, UnsupportedVersionIsUnimplemented) {
  std::string bytes = WordArtifactBytes();
  bytes[12] = 99;  // format version lives right after the endian tag
  support::Status st = LoadBytesAs(bytes, "word_version.dmim");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), support::StatusCode::kUnimplemented);
}

TEST(ArtifactCorruption, FlippedPayloadByteIsChecksumMismatch) {
  std::string bytes = WordArtifactBytes();
  bytes[bytes.size() / 2] ^= 0x40;
  support::Status st = LoadBytesAs(bytes, "word_checksum.dmim");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), support::StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("checksum mismatch"), std::string::npos);
}

TEST(ArtifactCorruption, TrailingGarbageIsInvalidArgument) {
  std::string bytes = WordArtifactBytes();
  bytes += "extra";
  support::Status st = LoadBytesAs(bytes, "word_trailing.dmim");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), support::StatusCode::kInvalidArgument);
}

TEST(ArtifactCorruption, WrongIdentityIsFailedPrecondition) {
  const std::string path = TempPath("word_identity_check.dmim");
  ASSERT_TRUE(support::WriteFileBytes(path, WordArtifactBytes()).ok());
  dmi::ArtifactMeta expect{"ExcelSim", "1"};
  auto loaded = dmi::LoadModelArtifact(path, WordOptions(), &expect);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kFailedPrecondition);
}

TEST(ArtifactCorruption, InspectFlagsBadChecksumWithoutFailing) {
  std::string bytes = WordArtifactBytes();
  bytes[bytes.size() - 1] ^= 0x01;
  const std::string path = TempPath("word_inspect_bad.dmim");
  ASSERT_TRUE(support::WriteFileBytes(path, bytes).ok());
  auto info = dmi::InspectModelArtifact(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->checksum_ok);
}

// ----- registry -------------------------------------------------------------

TEST(RegistryTest, CompileSaveThroughThenColdLoad) {
  const std::string dir = TempPath("registry_store_a");
  (void)std::remove((dir + "/WordSim-1.dmim").c_str());
  std::filesystem::create_directories(dir);

  dmi::ModelRegistry first(dir);
  int compile_calls = 0;
  auto compile = [&]() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
    ++compile_calls;
    return WordModel();
  };
  auto a = first.Acquire("WordSim", "1", WordOptions(), compile);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(compile_calls, 1);
  EXPECT_EQ(first.stats().compiles, 1u);
  EXPECT_EQ(first.stats().save_throughs, 1u);

  // Memo hit: same pointer, no second compile.
  auto b = first.Acquire("WordSim", "1", WordOptions(), compile);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(compile_calls, 1);
  EXPECT_EQ(first.stats().memo_hits, 1u);

  // A fresh registry (≈ a fresh process) cold-loads the saved artifact.
  dmi::ModelRegistry second(dir);
  auto c = second.Acquire("WordSim", "1", WordOptions(), compile);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(compile_calls, 1);
  EXPECT_EQ(second.stats().artifact_loads, 1u);
  EXPECT_EQ((*c)->static_prompt(), WordModel()->static_prompt());
}

TEST(RegistryTest, CorruptArtifactFallsBackAndHeals) {
  const std::string dir = TempPath("registry_store_b");
  std::filesystem::create_directories(dir);
  std::string bytes = WordArtifactBytes();
  bytes[bytes.size() / 3] ^= 0x10;
  ASSERT_TRUE(support::WriteFileBytes(dir + "/WordSim-1.dmim", bytes).ok());

  dmi::ModelRegistry registry(dir);
  auto got = registry.Acquire(
      "WordSim", "1", WordOptions(),
      []() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
        return WordModel();
      });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(registry.stats().load_errors, 1u);
  EXPECT_EQ(registry.stats().compiles, 1u);
  // The save-through replaced the corrupt artifact: the store is healthy
  // again for the next process.
  EXPECT_EQ(registry.stats().save_throughs, 1u);
  auto healed = dmi::LoadModelArtifact(dir + "/WordSim-1.dmim", WordOptions());
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST(RegistryTest, CorruptArtifactWarningLoggedOncePerKey) {
  const std::string dir = TempPath("registry_store_logmemo");
  std::filesystem::create_directories(dir);
  std::string bytes = WordArtifactBytes();
  bytes[bytes.size() / 3] ^= 0x10;
  ASSERT_TRUE(support::WriteFileBytes(dir + "/WordSim-1.dmim", bytes).ok());

  // Failing compile fallback ≈ broken pipeline behind a corrupt store: the
  // memo never populates, so every Acquire re-reads and re-rejects the same
  // artifact. Each rejection counts, but only the first may log — a serving
  // daemon admits thousands of sessions against one registry and must not
  // emit one warning line per session for the same broken artifact.
  auto broken_compile = []() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
    return support::UnavailableError("pipeline down");
  };
  dmi::ModelRegistry registry(dir);
  EXPECT_FALSE(registry.Acquire("WordSim", "1", WordOptions(), broken_compile).ok());
  EXPECT_FALSE(registry.Acquire("WordSim", "1", WordOptions(), broken_compile).ok());
  EXPECT_EQ(registry.stats().load_errors, 2u);
  EXPECT_EQ(registry.stats().load_errors_logged, 1u);

  // A different version of the same kind is a different brokenness: it gets
  // its own (single) warning.
  ASSERT_TRUE(support::WriteFileBytes(dir + "/WordSim-2.dmim", bytes).ok());
  EXPECT_FALSE(registry.Acquire("WordSim", "2", WordOptions(), broken_compile).ok());
  EXPECT_EQ(registry.stats().load_errors, 3u);
  EXPECT_EQ(registry.stats().load_errors_logged, 2u);
}

TEST(RegistryTest, ConcurrentAcquireSharesOneModel) {
  const std::string dir = TempPath("registry_store_c");
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(support::WriteFileBytes(dir + "/WordSim-1.dmim", WordArtifactBytes()).ok());

  dmi::ModelRegistry registry(dir);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const dmi::CompiledModel>> models(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto got = registry.Acquire(
          "WordSim", "1", WordOptions(),
          []() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
            return WordModel();
          });
      if (got.ok()) {
        models[static_cast<size_t>(t)] = *got;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_NE(models[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[static_cast<size_t>(t)].get(), models[0].get());
  }
  // Exactly one thread resolved from disk; everyone else memo-hit.
  EXPECT_EQ(registry.stats().artifact_loads, 1u);
  EXPECT_EQ(registry.stats().compiles, 0u);
  EXPECT_EQ(registry.stats().memo_hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(RegistryTest, NoStoreDegradesToMemo) {
  dmi::ModelRegistry registry;
  EXPECT_EQ(registry.ArtifactPath("WordSim", "1"), "");
  int compile_calls = 0;
  auto compile = [&]() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
    ++compile_calls;
    return WordModel();
  };
  ASSERT_TRUE(registry.Acquire("WordSim", "1", WordOptions(), compile).ok());
  ASSERT_TRUE(registry.Acquire("WordSim", "1", WordOptions(), compile).ok());
  EXPECT_EQ(compile_calls, 1);
  EXPECT_EQ(registry.stats().save_throughs, 0u);
}

// ----- legacy JSON compatibility --------------------------------------------

TEST(LegacyJsonTest, ConvertedGraphCompilesToEquivalentModel) {
  apps::WordSim app;
  dmi::ModelingOptions options = WordOptions();
  ripper::GuiRipper rip(app, options.ripper_config);
  const topo::NavGraph graph = rip.Rip(options.contexts);

  // Legacy path: raw-graph JSON dump, reload, recompile.
  const std::string json_path = TempPath("word_legacy.json");
  ASSERT_TRUE(dmi::DmiSession::SaveModel(graph, json_path).ok());
  auto reloaded = dmi::DmiSession::LoadModel(json_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  auto from_json = dmi::CompiledModel::Compile(*reloaded, options);

  // Binary path over the same graph.
  auto compiled = dmi::CompiledModel::Compile(graph, options);
  const std::string bin_path = TempPath("word_legacy.dmim");
  ASSERT_TRUE(dmi::SaveModelArtifact(*compiled, {"WordSim", "1"}, bin_path).ok());
  auto from_artifact = dmi::LoadModelArtifact(bin_path, options);
  ASSERT_TRUE(from_artifact.ok());

  // Both loads describe the same application identically.
  EXPECT_EQ(from_json->static_prompt(), from_artifact->model->static_prompt());
  EXPECT_EQ(from_json->catalog().FullText(), from_artifact->model->catalog().FullText());
  EXPECT_EQ(from_json->stats().forest_nodes, from_artifact->model->stats().forest_nodes);
}

TEST(LegacyJsonTest, LoadModelRejectsGarbageAndMissing) {
  auto missing = dmi::DmiSession::LoadModel(TempPath("no_such_model.json"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), support::StatusCode::kNotFound);

  const std::string path = TempPath("garbage_model.json");
  ASSERT_TRUE(support::WriteFileBytes(path, "{not json").ok());
  EXPECT_FALSE(dmi::DmiSession::LoadModel(path).ok());
}

// ----- part-level validation ------------------------------------------------

TEST(FromPartsTest, NavGraphRejectsMisalignedParts) {
  std::vector<topo::NodeInfo> nodes(2);
  nodes[0].control_id = "a";
  nodes[1].control_id = "b";
  // Adjacency shorter than the node list.
  auto misaligned = topo::NavGraph::FromParts(nodes, {{1}});
  ASSERT_FALSE(misaligned.ok());
  EXPECT_EQ(misaligned.status().code(), support::StatusCode::kInvalidArgument);
  // Edge target out of range.
  auto bad_edge = topo::NavGraph::FromParts(nodes, {{5}, {}});
  ASSERT_FALSE(bad_edge.ok());
  // Duplicate control id.
  nodes[1].control_id = "a";
  auto dup = topo::NavGraph::FromParts(nodes, {{}, {}});
  ASSERT_FALSE(dup.ok());
}

TEST(FromPartsTest, ForestRejectsInconsistentTables) {
  topo::ForestParts parts;
  parts.main.nodes.resize(1);
  parts.main.nodes[0].id = 0;
  parts.max_id = 0;
  // loc_by_id must span max_id + 1 entries.
  auto bad = topo::Forest::FromParts(parts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), support::StatusCode::kInvalidArgument);
}

// ----- binio ----------------------------------------------------------------

TEST(BinioTest, TypedErrorsNamePath) {
  auto missing = support::ReadFileBytes(TempPath("binio_missing.bin"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), support::StatusCode::kNotFound);
  EXPECT_NE(missing.status().detail().control_id.find("binio_missing.bin"),
            std::string::npos);

  auto unwritable = support::WriteFileBytes(TempPath("no_such_dir/out.bin"), "x");
  ASSERT_FALSE(unwritable.ok());
  EXPECT_EQ(unwritable.code(), support::StatusCode::kInvalidArgument);

  const std::string path = TempPath("binio_roundtrip.bin");
  const std::string payload("ab\0cd\xff", 6);
  ASSERT_TRUE(support::WriteFileBytes(path, payload).ok());
  auto read = support::ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

}  // namespace
