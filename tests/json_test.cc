#include <gtest/gtest.h>

#include "src/json/json.h"

namespace {

using jsonv::Parse;
using jsonv::Value;

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("a\nb\t\"c\"\\d")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\nb\t\"c\"\\d");
}

TEST(JsonParseTest, UnicodeEscape) {
  auto v = Parse(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\xC3\xA9");
}

TEST(JsonParseTest, Arrays) {
  auto v = Parse("[1, 2, [3, 4], []]");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->as_array().size(), 4u);
  EXPECT_EQ(v->as_array()[2].as_array()[1].as_int(), 4);
  EXPECT_TRUE(v->as_array()[3].as_array().empty());
}

TEST(JsonParseTest, Objects) {
  auto v = Parse(R"({"id": "42", "entry_ref_id": ["7"], "nested": {"x": 1}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("id"), "42");
  EXPECT_EQ(v->Find("entry_ref_id")->as_array()[0].as_string(), "7");
  EXPECT_EQ(v->Find("nested")->GetInt("x"), 1);
}

TEST(JsonParseTest, VisitCommandShape) {
  // The exact command shapes from paper §3.4.
  auto v = Parse(R"([{"id": "19"},
                     {"id": "7", "entry_ref_id": ["14"]},
                     {"id": "3", "text": "hello"},
                     {"shortcut_key": "ENTER"},
                     {"further_query": -1}])");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->as_array().size(), 5u);
  EXPECT_EQ(v->as_array()[3].GetString("shortcut_key"), "ENTER");
  EXPECT_EQ(v->as_array()[4].GetInt("further_query"), -1);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = Parse(" \n\t{ \"a\" : [ 1 , 2 ] } \n");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->as_array().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());   // trailing garbage
  EXPECT_FALSE(Parse("-").ok());
  EXPECT_FALSE(Parse("\"bad\\q\"").ok());
}

TEST(JsonParseTest, ErrorMessagesCarryOffset) {
  auto r = Parse("[1, x]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"uote"})";
  auto v = Parse(doc);
  ASSERT_TRUE(v.ok());
  auto v2 = Parse(v->Dump());
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v == *v2);
}

TEST(JsonDumpTest, PrettyRoundTrip) {
  auto v = Parse(R"({"x": [1, {"y": "z"}]})");
  ASSERT_TRUE(v.ok());
  auto v2 = Parse(v->DumpPretty());
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v == *v2);
}

TEST(JsonDumpTest, ControlCharactersEscaped) {
  Value v(std::string("a\x01") + "b");
  EXPECT_EQ(v.Dump(), "\"a\\u0001b\"");
}

TEST(JsonDumpTest, DoubleShortestForm) {
  EXPECT_EQ(Value(0.5).Dump(), "0.5");
  EXPECT_EQ(Value(100.0).Dump(), "100");
}

TEST(JsonValueTest, TypedGettersWithFallbacks) {
  auto v = Parse(R"({"s": "x", "i": 3, "d": 2.5, "b": true})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("s"), "x");
  EXPECT_EQ(v->GetString("missing", "fb"), "fb");
  EXPECT_EQ(v->GetInt("i"), 3);
  EXPECT_EQ(v->GetInt("s", -1), -1);  // wrong type -> fallback
  EXPECT_DOUBLE_EQ(v->GetDouble("d"), 2.5);
  EXPECT_DOUBLE_EQ(v->GetDouble("i"), 3.0);  // int promotes
  EXPECT_TRUE(v->GetBool("b"));
  EXPECT_FALSE(v->GetBool("missing"));
}

TEST(JsonValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(1) == Value(1.0));
  EXPECT_FALSE(Value(1) == Value(1.5));
}

TEST(JsonValueTest, FindOnNonObjectReturnsNull) {
  Value v(3);
  EXPECT_EQ(v.Find("x"), nullptr);
}

TEST(JsonParseTest, LargeIntPreserved) {
  auto v = Parse("123456789012345");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int(), 123456789012345LL);
}

}  // namespace
