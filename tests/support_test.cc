#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace {

using support::Rng;
using support::Status;
using support::StatusCode;

// ----- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = support::NotFoundError("no control named 'Blue'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no control named 'Blue'");
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    names.insert(support::StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  support::Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  support::Result<int> r(support::InvalidArgumentError("bad id"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  support::Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
}

// ----- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kTrials;
  double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng a(31);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

// ----- strings ----------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  auto parts = support::Split("a/b/c", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = support::Split("a//b/", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyString) {
  auto parts = support::Split("", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"Home", "Font", "Font Color"};
  EXPECT_EQ(support::Join(pieces, "/"), "Home/Font/Font Color");
  EXPECT_EQ(support::Split(support::Join(pieces, "/"), '/'), pieces);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(support::Trim("  x y \t\n"), "x y");
  EXPECT_EQ(support::Trim(""), "");
  EXPECT_EQ(support::Trim("   "), "");
}

TEST(StringsTest, CasePredicates) {
  EXPECT_TRUE(support::StartsWith("font.bold", "font."));
  EXPECT_FALSE(support::StartsWith("font", "font."));
  EXPECT_TRUE(support::EndsWith("Apply to All", "All"));
  EXPECT_TRUE(support::ContainsIgnoreCase("Apply To All", "to all"));
  EXPECT_FALSE(support::ContainsIgnoreCase("Apply", "applyx"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(support::ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(support::ReplaceAll("no hits", "zz", "x"), "no hits");
  EXPECT_EQ(support::ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringsTest, Truncate) {
  EXPECT_EQ(support::Truncate("hello world", 8), "hello...");
  EXPECT_EQ(support::Truncate("short", 10), "short");
  EXPECT_EQ(support::Truncate("abcdef", 2), "ab");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(support::Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(support::Format("%.2f", 1.005), "1.00");
}

// ----- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedWorkAndReturnsResults) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  support::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  support::ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    support::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&done] { ++done; });
    }
  }  // destructor must wait for all 32
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(support::ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
