#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/json/json.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/retry.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/support/trace_export.h"

namespace {

using support::Rng;
using support::Status;
using support::StatusCode;

// ----- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = support::NotFoundError("no control named 'Blue'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no control named 'Blue'");
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    names.insert(support::StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  support::Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  support::Result<int> r(support::InvalidArgumentError("bad id"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  support::Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
}

// ----- ErrorDetail / typed retry decisions -----------------------------------

TEST(StatusTest, WithDetailAttachesPayloadWithoutChangingToString) {
  support::ErrorDetail d;
  d.control_id = "42";
  d.control_name = "Bold";
  d.required_pattern = "TogglePattern";
  d.retryable = true;
  d.attempts = 3;
  d.backoff_ticks = 7;
  Status plain = support::UnavailableError("control 'Bold' busy");
  Status detailed = support::UnavailableError("control 'Bold' busy").WithDetail(d);
  // ToString is part of the LLM-feedback stability contract: byte-identical
  // whether or not a detail payload rides along.
  EXPECT_EQ(plain.ToString(), detailed.ToString());
  EXPECT_FALSE(plain.has_detail());
  ASSERT_TRUE(detailed.has_detail());
  EXPECT_EQ(detailed.detail(), d);
  // Equality is over (code, message) only.
  EXPECT_EQ(plain, detailed);
}

TEST(StatusTest, DetailSurvivesStatusCopies) {
  support::ErrorDetail d;
  d.control_name = "OK";
  d.retryable = true;
  Status s = support::NotFoundError("gone").WithDetail(d);
  Status copy = s;
  ASSERT_TRUE(copy.has_detail());
  EXPECT_EQ(copy.detail().control_name, "OK");
  EXPECT_TRUE(copy.detail().retryable);
}

TEST(StatusTest, IsRetryableUsesDetailThenFallsBackToCode) {
  EXPECT_FALSE(support::IsRetryable(Status::Ok()));
  // No detail: only kUnavailable is transient by definition.
  EXPECT_TRUE(support::IsRetryable(support::UnavailableError("busy")));
  EXPECT_FALSE(support::IsRetryable(support::NotFoundError("gone")));
  // A detail payload overrides the code-class default in both directions.
  support::ErrorDetail retryable;
  retryable.retryable = true;
  EXPECT_TRUE(support::IsRetryable(support::NotFoundError("gone").WithDetail(retryable)));
  support::ErrorDetail terminal;
  terminal.retryable = false;
  EXPECT_FALSE(
      support::IsRetryable(support::UnavailableError("busy").WithDetail(terminal)));
}

// ----- RetryPolicy / Deadline ------------------------------------------------

TEST(RetryPolicyTest, NoneAndUnsetNeverRetry) {
  support::RetryPolicy none = support::RetryPolicy::None();
  // `attempt` is 1-based: after the first (and only) attempt, no retry.
  EXPECT_FALSE(none.ShouldRetry(1));
  support::RetryPolicy unset;
  EXPECT_TRUE(unset.unset());
  EXPECT_FALSE(support::RetryPolicy::FixedTicks(3).unset());
}

TEST(RetryPolicyTest, FixedTicksReproducesTheLegacyLoop) {
  // FixedTicks(retries) = 1 initial attempt + `retries` retries, each after
  // exactly one tick of backoff — the legacy executor loop.
  support::RetryPolicy p = support::RetryPolicy::FixedTicks(3);
  EXPECT_EQ(p.max_attempts, 4);
  int retries = 0;
  int attempt = 1;
  while (p.ShouldRetry(attempt)) {
    ++attempt;
    ++retries;
  }
  EXPECT_EQ(retries, 3);
  support::Rng rng(1);
  const uint64_t before = rng.Next();
  support::Rng replay(1);
  EXPECT_EQ(replay.Next(), before);  // sanity: same seed, same stream
  support::Rng jrng(99);
  for (int r = 1; r <= 3; ++r) {
    EXPECT_EQ(p.BackoffTicks(r, jrng), 1u);
  }
  // Jitter-free schedules must not consume randomness.
  support::Rng jrng2(99);
  EXPECT_EQ(jrng.Next(), jrng2.Next());
}

TEST(RetryPolicyTest, ExponentialBackoffGrowsAndCaps) {
  support::RetryPolicy p =
      support::RetryPolicy::ExponentialJitter(6, 1, 2.0, 8, /*jitter=*/0.0);
  support::Rng rng(5);
  EXPECT_EQ(p.BackoffTicks(1, rng), 1u);
  EXPECT_EQ(p.BackoffTicks(2, rng), 2u);
  EXPECT_EQ(p.BackoffTicks(3, rng), 4u);
  EXPECT_EQ(p.BackoffTicks(4, rng), 8u);
  EXPECT_EQ(p.BackoffTicks(5, rng), 8u);  // capped
}

TEST(RetryPolicyTest, JitterStaysBoundedAndIsSeedDeterministic) {
  support::RetryPolicy p =
      support::RetryPolicy::ExponentialJitter(8, 2, 2.0, 32, /*jitter=*/0.25);
  support::Rng a(123);
  support::Rng b(123);
  for (int r = 1; r <= 7; ++r) {
    const uint64_t base = std::min<uint64_t>(32, 2ULL << (r - 1));
    const uint64_t ticks_a = p.BackoffTicks(r, a);
    const uint64_t ticks_b = p.BackoffTicks(r, b);
    EXPECT_EQ(ticks_a, ticks_b) << "retry " << r;  // same seed, same schedule
    EXPECT_GE(ticks_a, 1u);
    EXPECT_LE(ticks_a, 32u);
    // Within +-25% of the exponential base (after clamping).
    EXPECT_GE(static_cast<double>(ticks_a), 0.74 * static_cast<double>(base) - 1.0);
    EXPECT_LE(static_cast<double>(ticks_a), 1.26 * static_cast<double>(base) + 1.0);
  }
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  support::Deadline d = support::Deadline::Unlimited();
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.Expired(0));
  EXPECT_FALSE(d.Expired(~0ULL));
}

TEST(DeadlineTest, TickBudgetExpiresExactlyAtTheBoundary) {
  support::Deadline d = support::Deadline::AtTicks(100, 50);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.Expired(100));
  EXPECT_FALSE(d.Expired(149));
  EXPECT_TRUE(d.Expired(150));
  EXPECT_TRUE(d.Expired(1000));
  EXPECT_EQ(d.RemainingTicks(100), 50u);
  EXPECT_EQ(d.RemainingTicks(149), 1u);
  EXPECT_EQ(d.RemainingTicks(150), 0u);
  EXPECT_EQ(d.RemainingTicks(9999), 0u);
}

// ----- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kTrials;
  double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng a(31);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

// ----- strings ----------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  auto parts = support::Split("a/b/c", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = support::Split("a//b/", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyString) {
  auto parts = support::Split("", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"Home", "Font", "Font Color"};
  EXPECT_EQ(support::Join(pieces, "/"), "Home/Font/Font Color");
  EXPECT_EQ(support::Split(support::Join(pieces, "/"), '/'), pieces);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(support::Trim("  x y \t\n"), "x y");
  EXPECT_EQ(support::Trim(""), "");
  EXPECT_EQ(support::Trim("   "), "");
}

TEST(StringsTest, CasePredicates) {
  EXPECT_TRUE(support::StartsWith("font.bold", "font."));
  EXPECT_FALSE(support::StartsWith("font", "font."));
  EXPECT_TRUE(support::EndsWith("Apply to All", "All"));
  EXPECT_TRUE(support::ContainsIgnoreCase("Apply To All", "to all"));
  EXPECT_FALSE(support::ContainsIgnoreCase("Apply", "applyx"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(support::ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(support::ReplaceAll("no hits", "zz", "x"), "no hits");
  EXPECT_EQ(support::ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringsTest, Truncate) {
  EXPECT_EQ(support::Truncate("hello world", 8), "hello...");
  EXPECT_EQ(support::Truncate("short", 10), "short");
  EXPECT_EQ(support::Truncate("abcdef", 2), "ab");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(support::Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(support::Format("%.2f", 1.005), "1.00");
}

// ----- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedWorkAndReturnsResults) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  support::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  support::ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    support::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&done] { ++done; });
    }
  }  // destructor must wait for all 32
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(support::ThreadPool::DefaultThreads(), 1u);
}

// ----- tracing ---------------------------------------------------------------

// Re-arms the recorder for one test and restores the disabled default.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    support::TraceRecorder::Global().Discard();
    support::TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    support::TraceRecorder::Global().SetEnabled(false);
    support::TraceRecorder::Global().Discard();
  }
};

TEST_F(TraceTest, NestedSpansDrainParentBeforeChildWithDepths) {
  {
    support::TraceSpan outer("outer", "test");
    outer.AddArg("task", "W3");
    outer.AddArg("seed", int64_t{7});
    {
      support::TraceSpan inner("inner", "test");
      { support::TraceSpan innermost("innermost", "test"); }
    }
  }
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 3u);
  // Emission order is LIFO (innermost closes first); Drain normalizes to
  // parent-before-child.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "innermost");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[0].category, "test");
  // The parent fully covers its children on the monotonic timeline.
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us, events[2].start_us + events[2].dur_us);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "task");
  EXPECT_EQ(events[0].args[0].second, "W3");
  EXPECT_EQ(events[0].args[1].second, "7");
  // Drain emptied the recorder.
  EXPECT_EQ(support::TraceRecorder::Global().Drain().size(), 0u);
}

TEST_F(TraceTest, DrainCollectsEverySpanFromPoolWorkers) {
  constexpr int kTasks = 48;
  {
    support::ThreadPool pool(4);
    std::vector<std::future<void>> pending;
    for (int i = 0; i < kTasks; ++i) {
      pending.push_back(pool.Submit([] {
        support::TraceSpan span("worker_span", "test");
        span.AddArg("nested", int64_t{1});
        support::TraceSpan child("worker_child", "test");
      }));
    }
    for (auto& f : pending) {
      f.get();
    }
  }  // pool joined: worker thread buffers retire into the recorder
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  int spans = 0;
  int children = 0;
  for (const support::TraceEvent& e : events) {
    if (e.name == "worker_span") {
      ++spans;
    } else if (e.name == "worker_child") {
      ++children;
    }
  }
  EXPECT_EQ(spans, kTasks);
  EXPECT_EQ(children, kTasks);
}

TEST(TraceDisabledTest, DisabledSpansRecordNothing) {
  support::TraceRecorder::Global().SetEnabled(false);
  support::TraceRecorder::Global().Discard();
  {
    support::TraceSpan span("invisible", "test");
    EXPECT_FALSE(span.armed());
    span.AddArg("ignored", "value");  // must not allocate into the span
    DMI_TRACE_SPAN("macro_invisible", "test");
  }
  EXPECT_EQ(support::TraceRecorder::Global().ApproxEventCount(), 0u);
  EXPECT_EQ(support::TraceRecorder::Global().Drain().size(), 0u);
}

TEST(TraceDisabledTest, EnableStateIsCapturedAtSpanOpen) {
  support::TraceRecorder::Global().Discard();
  support::TraceRecorder::Global().SetEnabled(false);
  {
    support::TraceSpan span("opened_disabled", "test");
    // Toggling mid-span must not tear the span: it stays disarmed.
    support::TraceRecorder::Global().SetEnabled(true);
    EXPECT_FALSE(span.armed());
  }
  support::TraceRecorder::Global().SetEnabled(false);
  EXPECT_EQ(support::TraceRecorder::Global().Drain().size(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonRoundTripsThroughParser) {
  {
    support::TraceSpan span("export_me", "rip");
    span.AddArg("context", "default");
  }
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 1u);

  auto doc = jsonv::Parse(support::ChromeTraceJson(events).Dump());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("displayTimeUnit"), "ms");
  const jsonv::Value* trace_events = doc->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->as_array().size(), 1u);
  const jsonv::Value& e = trace_events->as_array()[0];
  EXPECT_EQ(e.GetString("name"), "export_me");
  EXPECT_EQ(e.GetString("cat"), "rip");
  EXPECT_EQ(e.GetString("ph"), "X");
  EXPECT_EQ(e.GetInt("ts"), static_cast<int64_t>(events[0].start_us));
  EXPECT_EQ(e.GetInt("dur"), static_cast<int64_t>(events[0].dur_us));
  const jsonv::Value* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetString("context"), "default");

  // The JSONL exporter renders the same events one JSON object per line.
  const std::string jsonl = support::TraceJsonl(events);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  auto line = jsonv::Parse(jsonl.substr(0, jsonl.size() - 1));
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->GetString("name"), "export_me");
}

// ----- metrics ---------------------------------------------------------------

TEST(MetricsTest, CountersSumExactlyAcrossThreads) {
  support::Counter& counter =
      support::MetricsRegistry::Global().GetCounter("test.threaded_counter");
  const uint64_t before = counter.Value();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  {
    support::ThreadPool pool(kThreads);
    std::vector<std::future<void>> pending;
    for (int t = 0; t < kThreads; ++t) {
      pending.push_back(pool.Submit([&counter] {
        for (int i = 0; i < kIncrements; ++i) {
          counter.Increment();
        }
      }));
    }
    for (auto& f : pending) {
      f.get();
    }
  }
  EXPECT_EQ(counter.Value() - before, static_cast<uint64_t>(kThreads) * kIncrements);
  // Same instrument object on every lookup.
  EXPECT_EQ(&support::MetricsRegistry::Global().GetCounter("test.threaded_counter"),
            &counter);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  support::Histogram& h =
      support::MetricsRegistry::Global().GetHistogram("test.bounds", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  h.Observe(0.5);  // <= 1.0
  h.Observe(1.0);  // <= 1.0 (boundary lands in the lower bucket)
  h.Observe(1.5);  // <= 2.0
  h.Observe(2.0);  // <= 2.0
  h.Observe(4.0);  // <= 4.0
  h.Observe(9.0);  // overflow
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(MetricsTest, SnapshotCarriesValuesAndQuantiles) {
  support::MetricsRegistry& registry = support::MetricsRegistry::Global();
  registry.GetCounter("test.snapshot_counter").Increment(41);
  registry.GetCounter("test.snapshot_counter").Increment();
  support::Histogram& h = registry.GetHistogram("test.snapshot_histo", {1.0, 10.0, 100.0});
  for (int i = 0; i < 9; ++i) {
    h.Observe(0.5);  // nine observations in the first bucket
  }
  h.Observe(50.0);  // one in the third

  support::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.snapshot_counter"), 42u);
  EXPECT_EQ(snapshot.CounterValue("test.snapshot_absent"), 0u);
  const support::HistogramSnapshot* hs = snapshot.FindHistogram("test.snapshot_histo");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 10u);
  EXPECT_DOUBLE_EQ(hs->QuantileUpperBound(0.5), 1.0);    // median in bucket <=1
  EXPECT_DOUBLE_EQ(hs->QuantileUpperBound(0.95), 100.0);  // tail in bucket <=100
  EXPECT_NEAR(hs->Mean(), (9 * 0.5 + 50.0) / 10.0, 1e-9);

  // The exporter renders counters, histograms and derived sections.
  auto doc = jsonv::Parse(support::MetricsJson(snapshot).Dump());
  ASSERT_TRUE(doc.ok());
  const jsonv::Value* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetInt("test.snapshot_counter"), 42);
  const jsonv::Value* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const jsonv::Value* rendered = histograms->Find("test.snapshot_histo");
  ASSERT_NE(rendered, nullptr);
  EXPECT_EQ(rendered->GetInt("count"), 10);
}

TEST(MetricsTest, DerivedRatesAppearWhenTheirCountersExist) {
  support::MetricsRegistry& registry = support::MetricsRegistry::Global();
  registry.GetCounter("visible_index.capture_hits").Increment(30);
  registry.GetCounter("visible_index.rebuilds").Increment(10);
  auto doc = jsonv::Parse(support::MetricsJson(registry.Snapshot()).Dump());
  ASSERT_TRUE(doc.ok());
  const jsonv::Value* derived = doc->Find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_NEAR(derived->GetDouble("capture_cache_hit_rate"), 0.75, 1e-9);
}

// ----- logging ---------------------------------------------------------------

TEST(LoggingTest, DisabledLevelSkipsArgumentEvaluation) {
  const support::LogLevel saved = support::GetLogLevel();
  support::SetLogLevel(support::LogLevel::kWarning);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  DMI_LOG(kDebug) << expensive();
  DMI_LOG_IF(kInfo, true) << expensive();
  EXPECT_EQ(evaluations, 0) << "disabled levels must not evaluate stream operands";
  DMI_LOG_IF(kError, false) << expensive();
  EXPECT_EQ(evaluations, 0) << "a false condition must not evaluate stream operands";
  DMI_LOG_IF(kError, true) << expensive();
  EXPECT_EQ(evaluations, 1);
  support::SetLogLevel(saved);
}

TEST(LoggingTest, LevelGateMatchesConfiguredLevel) {
  const support::LogLevel saved = support::GetLogLevel();
  support::SetLogLevel(support::LogLevel::kInfo);
  EXPECT_FALSE(support::LogEnabled(support::LogLevel::kDebug));
  EXPECT_TRUE(support::LogEnabled(support::LogLevel::kInfo));
  EXPECT_TRUE(support::LogEnabled(support::LogLevel::kError));
  EXPECT_EQ(support::GetLogLevel(), support::LogLevel::kInfo);
  support::SetLogLevel(saved);
}

}  // namespace
