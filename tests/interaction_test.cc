#include <gtest/gtest.h>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/interaction.h"
#include "src/gui/screen.h"
#include "src/uia/tree.h"

namespace {

// Label of a control by true name (refreshes the screen first).
std::string LabelOf(gsim::ScreenView& screen, const std::string& name) {
  screen.Refresh();
  for (const auto& lc : screen.labeled()) {
    if (lc.control->TrueName() == name) {
      return lc.label;
    }
  }
  return "";
}

class WordInteraction : public ::testing::Test {
 protected:
  WordInteraction() : screen_(app_), ix_(app_, screen_) { screen_.Refresh(); }
  apps::WordSim app_;
  gsim::ScreenView screen_;
  dmi::InteractionInterfaces ix_;
};

TEST_F(WordInteraction, SelectLinesMatchesParagraphUnits) {
  // In WordSim one paragraph renders as one line, so select_lines and
  // select_paragraphs agree (documented in word_sim.cc).
  auto lines = ix_.SelectLines(LabelOf(screen_, "Document"), 2, 4);
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  EXPECT_EQ(app_.selection_start(), 2);
  EXPECT_EQ(app_.selection_end(), 4);
  EXPECT_NE(lines->selected_text.find("Paragraph 3"), std::string::npos);
}

TEST_F(WordInteraction, SelectLinesRejectsBadRange) {
  auto lines = ix_.SelectLines(LabelOf(screen_, "Document"), 10, 5);
  EXPECT_EQ(lines.status().code(), support::StatusCode::kInvalidArgument);
  auto lines2 = ix_.SelectLines(LabelOf(screen_, "Document"), 0, 5000);
  EXPECT_FALSE(lines2.ok());
}

TEST_F(WordInteraction, SetExpandedOpensAndClosesMenus) {
  const std::string label = LabelOf(screen_, "Bullets");
  ASSERT_FALSE(label.empty());
  ASSERT_TRUE(ix_.SetExpanded(label, true).ok());
  gsim::Control* host = static_cast<gsim::Control*>(
      uia::FindByName(app_.main_window().root(), "Bullets"));
  EXPECT_TRUE(host->popup_open());
  // Refreshing reassigned labels; re-resolve before collapsing.
  ASSERT_TRUE(ix_.SetExpanded(LabelOf(screen_, "Bullets"), false).ok());
  EXPECT_FALSE(host->popup_open());
}

TEST_F(WordInteraction, SetExpandedRejectsNonExpandable) {
  const std::string label = LabelOf(screen_, "Bold");
  EXPECT_EQ(ix_.SetExpanded(label, true).code(),
            support::StatusCode::kFailedPrecondition);
}

TEST_F(WordInteraction, UnknownLabelIsStructuredNotFound) {
  EXPECT_EQ(ix_.SetToggleState("ZZZZ", true).code(), support::StatusCode::kNotFound);
  EXPECT_EQ(ix_.SetTexts("ZZZZ", "x").code(), support::StatusCode::kNotFound);
  EXPECT_EQ(ix_.GetTextsActive("ZZZZ").status().code(), support::StatusCode::kNotFound);
  EXPECT_EQ(ix_.SelectControls({"ZZZZ"}).code(), support::StatusCode::kNotFound);
}

class ExcelInteraction : public ::testing::Test {
 protected:
  ExcelInteraction() : screen_(app_), ix_(app_, screen_) { screen_.Refresh(); }
  apps::ExcelSim app_;
  gsim::ScreenView screen_;
  dmi::InteractionInterfaces ix_;
};

TEST_F(ExcelInteraction, SetTextsOnNameBoxIsDeclarative) {
  // set_texts needs no focus dance; value lands directly.
  const std::string label = LabelOf(screen_, "Name Box");
  ASSERT_TRUE(ix_.SetTexts(label, "D9").ok());
  EXPECT_EQ(app_.name_box()->text_value(), "D9");
  // Idempotent on the same target state.
  ASSERT_TRUE(ix_.SetTexts(LabelOf(screen_, "Name Box"), "D9").ok());
  // The Name Box still requires ENTER to commit the jump (app semantics).
  EXPECT_EQ(app_.active_row(), 0);
}

TEST_F(ExcelInteraction, SetTextsRejectsNonValueControls) {
  const std::string label = LabelOf(screen_, "Sheet Grid");
  EXPECT_EQ(ix_.SetTexts(label, "x").code(), support::StatusCode::kFailedPrecondition);
}

TEST_F(ExcelInteraction, GetTextsActiveValueFallbackOnEdit) {
  // Edits have no TextPattern; get_texts falls back to ValuePattern (§3.5).
  app_.name_box()->set_text_value("B2");
  auto text = ix_.GetTextsActive(LabelOf(screen_, "Name Box"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "B2");
}

TEST_F(ExcelInteraction, SelectionPatternReportsGridSelection) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(2, 1)).ok());
  auto* sel_item = uia::PatternCast<uia::SelectionItemPattern>(*app_.CellControl(4, 3));
  ASSERT_NE(sel_item, nullptr);
  ASSERT_TRUE(sel_item->AddToSelection().ok());

  auto* selection = uia::PatternCast<uia::SelectionPattern>(*app_.grid_control());
  ASSERT_NE(selection, nullptr);
  EXPECT_TRUE(selection->CanSelectMultiple());
  std::vector<uia::Element*> selected = selection->GetSelection();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->Name(), "B3");
  EXPECT_EQ(selected[1]->Name(), "D5");
}

TEST_F(ExcelInteraction, TabStripSelectionIsExclusive) {
  gsim::Control* tabs = static_cast<gsim::Control*>(
      uia::FindByName(app_.main_window().root(), "Ribbon Tabs"));
  ASSERT_NE(tabs, nullptr);
  auto* selection = uia::PatternCast<uia::SelectionPattern>(*tabs);
  ASSERT_NE(selection, nullptr);
  EXPECT_FALSE(selection->CanSelectMultiple());
  std::vector<uia::Element*> selected = selection->GetSelection();
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0]->Name(), "Home");
}

TEST_F(ExcelInteraction, PassiveRespectsItemLimit) {
  dmi::InteractionConfig config;
  config.passive_item_limit = 3;
  dmi::InteractionInterfaces limited(app_, screen_, config);
  screen_.Refresh();
  const std::string payload = limited.GetTextsPassive();
  // Exactly 3 item lines plus (possibly) the empty-coalescing summary.
  int item_lines = 0;
  for (size_t pos = 0; pos < payload.size();) {
    size_t nl = payload.find('\n', pos);
    std::string line = payload.substr(pos, nl - pos);
    if (line.find('=') != std::string::npos) {
      ++item_lines;
    }
    pos = nl + 1;
  }
  EXPECT_EQ(item_lines, 3);
}

// ----- screen rendering edges -----------------------------------------------------

TEST(ScreenRenderTest, ListingTruncatesAtMaxEntries) {
  apps::ExcelSim app;
  gsim::ScreenView screen(app);
  screen.Refresh();
  const std::string listing = screen.RenderListing(5);
  EXPECT_NE(listing.find("more controls"), std::string::npos);
  int lines = 0;
  for (char ch : listing) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 6);  // 5 entries + the truncation marker
}

TEST(ScreenRenderTest, WindowDismissButtonLookup) {
  apps::WordSim app;
  gsim::Window* dialog = app.FindDialog("symbol_dialog");
  ASSERT_NE(dialog, nullptr);
  // Symbol dialog has OK and Cancel, no plain Close: dispose picks OK.
  EXPECT_EQ(dialog->FindButton(gsim::CloseDisposition::kDismiss), nullptr);
  ASSERT_NE(dialog->FindDisposeButton(), nullptr);
  EXPECT_EQ(dialog->FindDisposeButton()->TrueName(), "OK");
}


// ----- RangeValuePattern / set_range_value ------------------------------------------

TEST(RangeValueTest, SliderAcceptsDeclarativeValue) {
  apps::PpointSim app;
  gsim::ScreenView screen(app);
  dmi::InteractionInterfaces ix(app, screen);
  // The Transparency slider lives in the Format Background advanced pane;
  // open the pane imperatively for this unit test.
  gsim::Control* design = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Design"));
  ASSERT_TRUE(app.Click(*design).ok());
  gsim::Control* fmt_bg = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Format Background"));
  ASSERT_TRUE(app.Click(*fmt_bg).ok());
  gsim::Control* more = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "More Fill Options"));
  ASSERT_TRUE(app.Click(*more).ok());
  screen.Refresh();
  std::string label;
  for (const auto& lc : screen.labeled()) {
    if (lc.control->TrueName() == "Transparency") {
      label = lc.label;
    }
  }
  ASSERT_FALSE(label.empty());
  ASSERT_TRUE(ix.SetRangeValue(label, 40.0).ok());
  gsim::Control* slider = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Transparency"));
  EXPECT_DOUBLE_EQ(slider->range_value(), 40.0);
  // Out-of-range values produce a structured error, not a clamp.
  screen.Refresh();
  for (const auto& lc : screen.labeled()) {
    if (lc.control->TrueName() == "Transparency") {
      label = lc.label;
    }
  }
  EXPECT_EQ(ix.SetRangeValue(label, 250.0).code(), support::StatusCode::kInvalidArgument);
}

TEST(RangeValueTest, NonRangeControlRejected) {
  apps::WordSim app;
  gsim::ScreenView screen(app);
  dmi::InteractionInterfaces ix(app, screen);
  screen.Refresh();
  std::string label;
  for (const auto& lc : screen.labeled()) {
    if (lc.control->TrueName() == "Bold") {
      label = lc.label;
    }
  }
  EXPECT_EQ(ix.SetRangeValue(label, 10).code(), support::StatusCode::kFailedPrecondition);
}

TEST(RangeValueTest, PatternBoundsAndDisabled) {
  apps::WordSim app;
  gsim::Control* spinner = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Indent Left"));
  // The spinner lives on the Layout tab; it exists statically regardless.
  if (spinner == nullptr) {
    app.main_window().root().WalkStatic([&](gsim::Control& c) {
      if (spinner == nullptr && c.TrueName() == "Indent Left") {
        spinner = &c;
      }
    });
  }
  ASSERT_NE(spinner, nullptr);
  auto* range = uia::PatternCast<uia::RangeValuePattern>(*spinner);
  ASSERT_NE(range, nullptr);
  EXPECT_DOUBLE_EQ(range->Minimum(), 0.0);
  EXPECT_DOUBLE_EQ(range->Maximum(), 100.0);
  ASSERT_TRUE(range->SetValue(12.5).ok());
  EXPECT_DOUBLE_EQ(range->Value(), 12.5);
  spinner->SetEnabled(false);
  EXPECT_EQ(range->SetValue(1.0).code(), support::StatusCode::kFailedPrecondition);
}

}  // namespace
