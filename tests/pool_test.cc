// Tests for the amortized run-startup machinery (DESIGN.md §10): the
// reset-based application pool's reset-equivalence contract, injector
// clearing on lease return, concurrent sharing of the immutable
// CompiledModel, and the pooled == unpooled suite-result guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/agent/task_runner.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/metrics.h"
#include "src/uia/tree.h"
#include "src/workload/app_pool.h"
#include "src/workload/tasks.h"

namespace {

using namespace agentsim;

gsim::Control* Find(gsim::Application& app, const std::string& name) {
  auto* ctrl = static_cast<gsim::Control*>(uia::FindByName(app.main_window().root(), name));
  EXPECT_NE(ctrl, nullptr) << "control not found: " << name;
  return ctrl;
}

gsim::Control* FindInTop(gsim::Application& app, const std::string& name) {
  auto* ctrl = static_cast<gsim::Control*>(uia::FindByName(app.TopWindow()->root(), name));
  EXPECT_NE(ctrl, nullptr) << "control not found in top window: " << name;
  return ctrl;
}

support::Status ClickByName(gsim::Application& app, const std::string& name) {
  gsim::Control* ctrl = Find(app, name);
  if (ctrl == nullptr) {
    return support::Status(support::StatusCode::kNotFound, name);
  }
  return app.Click(*ctrl);
}

// ----- reset-equivalence checksums -------------------------------------------------

// The UIA-tree checksum excludes runtime ids and the UI generation, so two
// independently constructed instances of the same app checksum identically —
// the property the pool's verification leans on.
TEST(ResetEquivalenceTest, FreshChecksumsAreInstanceIndependent) {
  {
    apps::WordSim a, b;
    EXPECT_EQ(a.UiaStateChecksum(), b.UiaStateChecksum());
  }
  {
    apps::ExcelSim a, b;
    EXPECT_EQ(a.UiaStateChecksum(), b.UiaStateChecksum());
  }
  {
    apps::PpointSim a, b;
    EXPECT_EQ(a.UiaStateChecksum(), b.UiaStateChecksum());
  }
}

TEST(ResetEquivalenceTest, WordResetMatchesFreshAfterMutations) {
  apps::WordSim fresh;
  const uint64_t want = fresh.UiaStateChecksum();

  apps::WordSim app;
  app.CaptureFreshState();
  ASSERT_EQ(app.UiaStateChecksum(), want);

  // Document edits + ribbon state.
  app.SetSelection(0, 2);
  ASSERT_TRUE(ClickByName(app, "Bold").ok());
  ASSERT_TRUE(ClickByName(app, "Design").ok());
  ASSERT_TRUE(ClickByName(app, "Page Color").ok());
  ASSERT_TRUE(ClickByName(app, "Gold").ok());
  // Scrolled state.
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(*app.document_control());
  ASSERT_NE(scroll, nullptr);
  ASSERT_TRUE(scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, 80.0).ok());
  // Dialog-open state with typed content (Replace lives on the Home tab).
  ASSERT_TRUE(ClickByName(app, "Home").ok());
  ASSERT_TRUE(ClickByName(app, "Replace").ok());
  ASSERT_EQ(app.TopWindow()->title(), "Find and Replace");
  gsim::Control* find_what = FindInTop(app, "Find what");
  ASSERT_NE(find_what, nullptr);
  ASSERT_TRUE(app.Click(*find_what).ok());
  ASSERT_TRUE(app.TypeText("profit").ok());

  EXPECT_NE(app.UiaStateChecksum(), want);
  app.ResetToFreshState();
  EXPECT_EQ(app.UiaStateChecksum(), want);
  // Reset is idempotent.
  app.ResetToFreshState();
  EXPECT_EQ(app.UiaStateChecksum(), want);
}

TEST(ResetEquivalenceTest, ExcelResetMatchesFreshAfterMutations) {
  apps::ExcelSim fresh;
  const uint64_t want = fresh.UiaStateChecksum();

  apps::ExcelSim app;
  app.CaptureFreshState();
  ASSERT_EQ(app.UiaStateChecksum(), want);

  // Select, commit a new cell value, and scroll the grid viewport.
  ASSERT_TRUE(app.Click(*app.CellControl(20, 4)).ok());
  ASSERT_TRUE(app.Click(*app.formula_bar()).ok());
  ASSERT_TRUE(app.TypeText("hello").ok());
  ASSERT_TRUE(app.PressKey("ENTER").ok());
  ASSERT_NE(app.find_cell(20, 4), nullptr);
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(*app.grid_control());
  ASSERT_NE(scroll, nullptr);
  ASSERT_TRUE(scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, 80.0).ok());

  EXPECT_NE(app.UiaStateChecksum(), want);
  app.ResetToFreshState();
  EXPECT_EQ(app.UiaStateChecksum(), want);
  EXPECT_EQ(app.find_cell(20, 4), nullptr);
}

TEST(ResetEquivalenceTest, PpointResetMatchesFreshAfterMutations) {
  apps::PpointSim fresh;
  const uint64_t want = fresh.UiaStateChecksum();

  apps::PpointSim app;
  app.CaptureFreshState();
  ASSERT_EQ(app.UiaStateChecksum(), want);

  // Switch slides and select the image shape — reveals the Picture Format
  // context tab.
  ASSERT_TRUE(ClickByName(app, "Slide 3").ok());
  ASSERT_TRUE(ClickByName(app, "Image: Quarterly chart screenshot").ok());
  EXPECT_GE(app.selected_shape(), 0);
  // Open the Format Background pane and recolor every slide.
  ASSERT_TRUE(ClickByName(app, "Design").ok());
  ASSERT_TRUE(ClickByName(app, "Format Background").ok());
  ASSERT_TRUE(ClickByName(app, "Fill Color").ok());
  ASSERT_TRUE(ClickByName(app, "Blue").ok());
  ASSERT_TRUE(ClickByName(app, "Apply to All").ok());

  EXPECT_NE(app.UiaStateChecksum(), want);
  app.ResetToFreshState();
  EXPECT_EQ(app.UiaStateChecksum(), want);
  for (const auto& slide : app.slides()) {
    EXPECT_NE(slide.background_color, "Blue");
  }
}

// ----- the pool itself -------------------------------------------------------------

workload::Task BenchTask(workload::AppKind kind) {
  workload::Task task;
  task.id = "pool-test";
  task.app = kind;
  switch (kind) {
    case workload::AppKind::kWord:
      task.make_app = [] { return std::make_unique<apps::WordSim>(); };
      break;
    case workload::AppKind::kExcel:
      task.make_app = [] { return std::make_unique<apps::ExcelSim>(); };
      break;
    case workload::AppKind::kPpoint:
      task.make_app = [] { return std::make_unique<apps::PpointSim>(); };
      break;
  }
  return task;
}

TEST(AppPoolTest, ReuseSurvivesVerifiedResetCycles) {
  workload::AppPool::Options options;
  options.verify_reset = true;  // force on even in release builds
  workload::AppPool pool(options);
  const workload::Task task = BenchTask(workload::AppKind::kWord);

  gsim::Application* first = nullptr;
  for (int cycle = 0; cycle < 3; ++cycle) {
    workload::AppPool::Lease lease = pool.Acquire(task);
    ASSERT_TRUE(lease);
    if (first == nullptr) {
      first = lease.get();
    } else {
      // A verification failure would discard the instance; surviving reuse
      // of the same pointer proves every reset checksum matched.
      EXPECT_EQ(lease.get(), first) << "pooled instance was discarded on cycle " << cycle;
    }
    auto& word = static_cast<apps::WordSim&>(*lease);
    gsim::Control* bold = Find(word, "Bold");
    ASSERT_NE(bold, nullptr);
    word.SetSelection(0, 1);
    ASSERT_TRUE(word.Click(*bold).ok());
  }
  EXPECT_EQ(pool.IdleCount(workload::AppKind::kWord), 1u);
}

TEST(AppPoolTest, UnpooledLeaseIsThrowaway) {
  workload::AppPool pool;
  const workload::Task task = BenchTask(workload::AppKind::kExcel);
  {
    workload::AppPool::Lease lease = pool.Acquire(task, /*pooled=*/false);
    ASSERT_TRUE(lease);
  }
  EXPECT_EQ(pool.IdleCount(workload::AppKind::kExcel), 0u);
}

// Acquire-time verification (DESIGN.md §11): an idle instance whose state was
// mutated while shelved is caught at lease time, discarded, and acquisition
// degrades to a fresh construction — it never hands out a corrupted app.
TEST(AppPoolTest, AcquireVerifyDiscardsAShelvedInstanceMutatedBehindItsBack) {
  workload::AppPool::Options options;
  options.verify_reset = true;
  options.verify_acquire = true;
  workload::AppPool pool(options);
  const workload::Task task = BenchTask(workload::AppKind::kWord);

  gsim::Application* raw = nullptr;
  {
    workload::AppPool::Lease lease = pool.Acquire(task);
    ASSERT_TRUE(lease);
    raw = lease.get();
  }  // release shelves the (reset-verified) instance
  ASSERT_EQ(pool.IdleCount(workload::AppKind::kWord), 1u);

  // Corrupt the shelved instance through the retained pointer — the exact
  // hazard acquire-time verification defends against.
  const uint64_t before = raw->UiaStateChecksum();
  gsim::Control* bold = Find(static_cast<apps::WordSim&>(*raw), "Bold");
  ASSERT_NE(bold, nullptr);
  bold->SetEnabled(false);
  ASSERT_NE(raw->UiaStateChecksum(), before);  // the mutation is visible

  const uint64_t discards_before =
      support::MetricsRegistry::Global().Snapshot().CounterValue(
          "app_pool.acquire_discards");
  workload::AppPool::Lease lease = pool.Acquire(task);
  ASSERT_TRUE(lease);
  // The corrupted instance was discarded and a fresh one constructed (the
  // allocator may reuse the address, so assert on state, not identity).
  gsim::Control* fresh_bold = Find(static_cast<apps::WordSim&>(*lease), "Bold");
  ASSERT_NE(fresh_bold, nullptr);
  EXPECT_TRUE(fresh_bold->IsEnabled());
  const uint64_t discards_after =
      support::MetricsRegistry::Global().Snapshot().CounterValue(
          "app_pool.acquire_discards");
  EXPECT_EQ(discards_after - discards_before, 1u);
  EXPECT_EQ(pool.IdleCount(workload::AppKind::kWord), 0u);  // shelf emptied
}

// ----- injector clearing -----------------------------------------------------------

void ExpectSameResult(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.llm_calls, b.llm_calls) << what;
  EXPECT_EQ(a.core_calls, b.core_calls) << what;
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << what;
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens) << what;
  EXPECT_EQ(a.output_tokens, b.output_tokens) << what;
  EXPECT_EQ(a.ui_actions, b.ui_actions) << what;
  EXPECT_EQ(a.cause, b.cause) << what;
}

// A run on a pooled instance that previously hosted a high-instability run
// must behave exactly like a run on a fresh instance: the lease return
// detaches the injector and the factory reset erases every trace of it.
TEST(AppPoolTest, PooledRunAfterHighInstabilityMatchesFresh) {
  const std::vector<workload::Task> suite = workload::BuildOsworldWSuite();
  for (InterfaceMode mode : {InterfaceMode::kGuiOnly, InterfaceMode::kGuiPlusDmi}) {
    TaskRunner pooled_runner;
    RunConfig noisy;
    noisy.mode = mode;
    noisy.instability = gsim::InstabilityConfig::Harsh();
    pooled_runner.RunOnce(suite[0], noisy, /*seed=*/999);

    RunConfig calm;
    calm.mode = mode;
    const RunResult pooled = pooled_runner.RunOnce(suite[0], calm, /*seed=*/1234);

    TaskRunner fresh_runner;
    RunConfig calm_unpooled = calm;
    calm_unpooled.pool_apps = false;
    const RunResult fresh = fresh_runner.RunOnce(suite[0], calm_unpooled, /*seed=*/1234);
    ExpectSameResult(pooled, fresh,
                     std::string("mode=") + InterfaceModeName(mode));
  }
}

// ----- concurrent CompiledModel sharing --------------------------------------------

TEST(CompiledModelTest, ConcurrentThinSessionsAgree) {
  dmi::ModelingOptions options = TaskRunner::DefaultModelingOptions(workload::AppKind::kWord);
  apps::WordSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  const topo::NavGraph graph = rip.Rip(options.contexts);
  std::shared_ptr<const dmi::CompiledModel> model = dmi::CompiledModel::Compile(graph, options);

  apps::WordSim reference_app;
  dmi::DmiSession reference(reference_app, model);
  const std::string want = reference.BuildPromptContextUncached();

  constexpr int kThreads = 8;
  std::vector<std::string> prompts(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      apps::WordSim app;
      dmi::DmiSession session(app, model);
      prompts[static_cast<size_t>(i)] = session.BuildPromptContextUncached();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(prompts[static_cast<size_t>(i)], want) << "thread " << i;
  }
}

// ----- pooled == unpooled suite results --------------------------------------------

void ExpectSameSuite(const SuiteResult& a, const SuiteResult& b, const std::string& what) {
  ASSERT_EQ(a.records.size(), b.records.size()) << what;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].task_id, b.records[i].task_id) << what;
    ASSERT_EQ(a.records[i].runs.size(), b.records[i].runs.size()) << what;
    for (size_t r = 0; r < a.records[i].runs.size(); ++r) {
      ExpectSameResult(a.records[i].runs[r], b.records[i].runs[r],
                       what + " task " + a.records[i].task_id);
    }
  }
}

// The pool must be invisible in the results: for every interface mode, a
// pooled suite equals an unpooled one field-for-field, serial or parallel.
TEST(SuiteEquivalenceTest, PooledMatchesUnpooledAcrossModesAndWorkers) {
  const std::vector<workload::Task> suite = workload::BuildOsworldWSuite();
  for (InterfaceMode mode :
       {InterfaceMode::kGuiOnly, InterfaceMode::kGuiOnlyForest, InterfaceMode::kGuiPlusDmi}) {
    RunConfig base;
    base.mode = mode;
    base.repeats = 1;
    TaskRunner reference_runner;
    const SuiteResult reference = reference_runner.RunSuite(suite, base);

    for (bool pooled : {true, false}) {
      for (int workers : {1, 4}) {
        if (pooled && workers == 1) {
          continue;  // that is the reference configuration itself
        }
        RunConfig config = base;
        config.pool_apps = pooled;
        config.workers = workers;
        TaskRunner runner;
        const SuiteResult result = runner.RunSuite(suite, config);
        ExpectSameSuite(result, reference,
                        std::string(InterfaceModeName(mode)) + " pooled=" +
                            (pooled ? "1" : "0") + " workers=" + std::to_string(workers));
      }
    }
  }
}

}  // namespace
