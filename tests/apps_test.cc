#include <gtest/gtest.h>

#include "src/apps/excel_sim.h"
#include "src/apps/office_common.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/uia/tree.h"

#include <cstdlib>

namespace {

// Counts all controls in the app: static window trees (popups included even
// when closed) plus registered shared subtrees — i.e. the modeled node
// universe the paper reports (>4K per app, §5.2).
size_t TotalControlCount(gsim::Application& app, const std::vector<gsim::Window*>& dialogs,
                         const std::vector<gsim::Control*>& shared) {
  size_t n = 0;
  auto count_static = [&n](gsim::Control& root) {
    root.WalkStatic([&n](gsim::Control&) { ++n; });
  };
  count_static(app.main_window().root());
  for (gsim::Window* d : dialogs) {
    count_static(d->root());
  }
  for (gsim::Control* s : shared) {
    count_static(*s);
  }
  return n;
}

template <typename App>
size_t AppControlCount(App& app, const std::vector<std::string>& dialog_ids) {
  std::vector<gsim::Window*> dialogs;
  for (const auto& id : dialog_ids) {
    gsim::Window* d = app.FindDialog(id);
    if (d != nullptr) {
      dialogs.push_back(d);
    }
  }
  size_t n = 0;
  app.main_window().root().WalkStatic([&n](gsim::Control&) { ++n; });
  for (gsim::Window* d : dialogs) {
    d->root().WalkStatic([&n](gsim::Control&) { ++n; });
  }
  return n;
}

// ----- scale ---------------------------------------------------------------------

TEST(WordSimTest, ExceedsFourThousandControls) {
  apps::WordSim app;
  size_t n = AppControlCount(app, {"font_dialog", "text_effects_dialog", "find_replace_dialog",
                                   "insert_table_dialog", "symbol_dialog", "more_colors_dialog",
                                   "paragraph_dialog", "page_setup_dialog", "page_borders_dialog",
                                   "chart_dialog", "smartart_dialog", "watermark_dialog"});
  EXPECT_GT(n, 4000u) << "WordSim too small: " << n;
}

TEST(ExcelSimTest, ExceedsFourThousandControls) {
  apps::ExcelSim app;
  size_t n = AppControlCount(app, {"sort_dialog", "more_colors_dialog", "cf_new_rule_dialog"});
  EXPECT_GT(n, 4000u) << "ExcelSim too small: " << n;
}

TEST(PpointSimTest, ExceedsFourThousandControls) {
  apps::PpointSim app;
  size_t n = AppControlCount(app, {"symbol_dialog", "more_colors_dialog", "slide_size_dialog",
                                   "header_footer_dialog", "smartart_dialog", "chart_dialog"});
  EXPECT_GT(n, 4000u) << "PpointSim too small: " << n;
}

// ----- shared palette / path-dependent semantics (Word) ---------------------------

class WordFixture : public ::testing::Test {
 protected:
  apps::WordSim app_;

  gsim::Control* Find(const std::string& name) {
    return static_cast<gsim::Control*>(uia::FindByName(app_.main_window().root(), name));
  }

  // Clicks through: host (e.g. "Font Color") -> palette cell `color`.
  void PickColor(const std::string& host_name, const std::string& color) {
    gsim::Control* host = Find(host_name);
    ASSERT_NE(host, nullptr) << host_name;
    ASSERT_TRUE(app_.Click(*host).ok());
    gsim::Control* cell = Find(color);
    ASSERT_NE(cell, nullptr) << color;
    ASSERT_TRUE(app_.Click(*cell).ok());
  }
};

TEST_F(WordFixture, FontColorPathSetsFontColor) {
  app_.SetSelection(0, 2);
  PickColor("Font Color", "Blue");
  EXPECT_EQ(app_.paragraphs()[0].fmt.color, "Blue");
  EXPECT_EQ(app_.paragraphs()[2].fmt.color, "Blue");
  EXPECT_EQ(app_.paragraphs()[3].fmt.color, "Black");
  EXPECT_EQ(app_.paragraphs()[0].fmt.underline_color, "Black");  // untouched
}

TEST_F(WordFixture, UnderlineColorPathSetsUnderlineColor) {
  app_.SetSelection(1, 1);
  // Underline Color lives inside the Underline split-button menu.
  gsim::Control* underline = Find("Underline");
  ASSERT_NE(underline, nullptr);
  ASSERT_TRUE(app_.Click(*underline).ok());
  PickColor("Underline Color", "Standard Red");
  EXPECT_EQ(app_.paragraphs()[1].fmt.underline_color, "Standard Red");
  EXPECT_TRUE(app_.paragraphs()[1].fmt.underline);
  EXPECT_EQ(app_.paragraphs()[1].fmt.color, "Black");  // same palette, other path
}

TEST_F(WordFixture, PageColorPathSetsPageColor) {
  // Page Color is on the Design tab; same shared palette again.
  gsim::Control* design = Find("Design");
  ASSERT_NE(design, nullptr);
  ASSERT_TRUE(app_.Click(*design).ok());
  PickColor("Page Color", "Gold");
  EXPECT_EQ(app_.page_color(), "Gold");
}

TEST_F(WordFixture, NoSelectionGivesStructuredError) {
  gsim::Control* font_color = Find("Font Color");
  ASSERT_TRUE(app_.Click(*font_color).ok());
  gsim::Control* blue = Find("Blue");
  support::Status s = app_.Click(*blue);
  EXPECT_EQ(s.code(), support::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("selected"), std::string::npos);
}

TEST_F(WordFixture, BoldToggleAppliesToSelection) {
  app_.SetSelection(0, 0);
  gsim::Control* bold = Find("Bold");
  ASSERT_TRUE(app_.Click(*bold).ok());
  EXPECT_TRUE(app_.paragraphs()[0].fmt.bold);
  ASSERT_TRUE(app_.Click(*bold).ok());
  EXPECT_FALSE(app_.paragraphs()[0].fmt.bold);
}

TEST_F(WordFixture, TableGridInsert) {
  gsim::Control* insert = Find("Insert");
  ASSERT_TRUE(app_.Click(*insert).ok());
  gsim::Control* table = Find("Table");
  ASSERT_TRUE(app_.Click(*table).ok());
  gsim::Control* cell = Find("Table 3 x 4");
  ASSERT_NE(cell, nullptr);
  ASSERT_TRUE(app_.Click(*cell).ok());
  EXPECT_EQ(app_.table_rows(), 3);
  EXPECT_EQ(app_.table_cols(), 4);
}

TEST_F(WordFixture, FindReplaceAll) {
  gsim::Control* replace = Find("Replace");
  ASSERT_NE(replace, nullptr);
  ASSERT_TRUE(app_.Click(*replace).ok());
  ASSERT_EQ(app_.TopWindow()->title(), "Find and Replace");
  gsim::Control* find_edit =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Find what"));
  ASSERT_NE(find_edit, nullptr);
  ASSERT_TRUE(app_.Click(*find_edit).ok());
  ASSERT_TRUE(app_.TypeText("revenue").ok());
  gsim::Control* repl_edit =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Replace with"));
  ASSERT_TRUE(app_.Click(*repl_edit).ok());
  ASSERT_TRUE(app_.TypeText("income").ok());
  gsim::Control* all =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Replace All"));
  ASSERT_TRUE(app_.Click(*all).ok());
  EXPECT_GT(app_.replace_count(), 0);
  bool any = false;
  for (const auto& p : app_.paragraphs()) {
    EXPECT_EQ(p.text.find("revenue"), std::string::npos);
    any |= p.text.find("income") != std::string::npos;
  }
  EXPECT_TRUE(any);
}

TEST_F(WordFixture, FindReplaceSubscriptGotcha) {
  gsim::Control* replace = Find("Replace");
  ASSERT_TRUE(app_.Click(*replace).ok());
  gsim::Control* find_edit =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Find what"));
  ASSERT_TRUE(app_.Click(*find_edit).ok());
  ASSERT_TRUE(app_.TypeText("milestone").ok());
  gsim::Control* more =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "More Options"));
  ASSERT_TRUE(app_.Click(*more).ok());
  gsim::Control* sub =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Subscript"));
  ASSERT_NE(sub, nullptr);
  ASSERT_TRUE(app_.Click(*sub).ok());
  gsim::Control* all =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Replace All"));
  ASSERT_TRUE(app_.Click(*all).ok());
  // The subscript criterion applied to matched paragraphs, not the selection.
  bool any_subscript = false;
  for (const auto& p : app_.paragraphs()) {
    any_subscript |= p.fmt.subscript;
  }
  EXPECT_TRUE(any_subscript);
}

TEST_F(WordFixture, TextEffectsPaneCycle) {
  // Font dialog -> Text Effects -> Outline Options -> Back (cycle).
  gsim::Control* launcher = Find("Font Settings");
  ASSERT_TRUE(app_.Click(*launcher).ok());
  gsim::Control* te =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "Text Effects..."));
  ASSERT_TRUE(app_.Click(*te).ok());
  ASSERT_EQ(app_.TopWindow()->title(), "Format Text Effects");
  gsim::Control* fwd = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "Outline Options"));
  ASSERT_NE(fwd, nullptr);
  gsim::Control* back_target = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "No Text Fill"));
  ASSERT_FALSE(back_target->IsOffscreen());
  ASSERT_TRUE(app_.Click(*fwd).ok());
  EXPECT_TRUE(back_target->IsOffscreen());  // pane switched away
  gsim::Control* back = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "Back to Fill Options"));
  ASSERT_NE(back, nullptr);
  ASSERT_TRUE(app_.Click(*back).ok());
  EXPECT_FALSE(back_target->IsOffscreen());  // cycle closed
}

TEST_F(WordFixture, DocumentTextPattern) {
  auto* text = uia::PatternCast<uia::TextPattern>(*app_.document_control());
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->UnitCount(uia::TextUnit::kParagraph), 50);
  EXPECT_NE(text->GetUnitText(uia::TextUnit::kLine, 0).find("Paragraph 1"), std::string::npos);
  ASSERT_TRUE(text->SelectRange(uia::TextUnit::kParagraph, 2, 4).ok());
  EXPECT_EQ(app_.selection_start(), 2);
  EXPECT_EQ(app_.selection_end(), 4);
  EXPECT_FALSE(text->SelectRange(uia::TextUnit::kParagraph, 48, 200).ok());
}

TEST_F(WordFixture, DocumentScrollPattern) {
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(*app_.document_control());
  ASSERT_NE(scroll, nullptr);
  EXPECT_FALSE(scroll->HorizontallyScrollable());
  ASSERT_TRUE(scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, 80.0).ok());
  EXPECT_DOUBLE_EQ(app_.scroll_percent(), 80.0);
  // Imperative increments accumulate.
  ASSERT_TRUE(scroll->ScrollIncrement(0.0, 10.0).ok());
  EXPECT_DOUBLE_EQ(app_.scroll_percent(), 90.0);
  ASSERT_TRUE(scroll->ScrollIncrement(0.0, 50.0).ok());
  EXPECT_DOUBLE_EQ(app_.scroll_percent(), 100.0);  // clamped
}

// ----- Excel ------------------------------------------------------------------------

class ExcelFixture : public ::testing::Test {
 protected:
  apps::ExcelSim app_;

  gsim::Control* Find(const std::string& name) {
    return static_cast<gsim::Control*>(uia::FindByName(app_.main_window().root(), name));
  }
};

TEST_F(ExcelFixture, RefParsing) {
  int r, c;
  ASSERT_TRUE(apps::ExcelSim::ParseRef("A1", &r, &c));
  EXPECT_EQ(r, 0);
  EXPECT_EQ(c, 0);
  ASSERT_TRUE(apps::ExcelSim::ParseRef("C7", &r, &c));
  EXPECT_EQ(r, 6);
  EXPECT_EQ(c, 2);
  EXPECT_FALSE(apps::ExcelSim::ParseRef("7C", &r, &c));
  EXPECT_FALSE(apps::ExcelSim::ParseRef("", &r, &c));
  EXPECT_FALSE(apps::ExcelSim::ParseRef("A0", &r, &c));
  EXPECT_FALSE(apps::ExcelSim::ParseRef("ZZ999", &r, &c));
  EXPECT_EQ(apps::ExcelSim::MakeRef(6, 2), "C7");
}

TEST_F(ExcelFixture, SeededDataPresent) {
  ASSERT_NE(app_.find_cell(0, 0), nullptr);
  EXPECT_EQ(app_.find_cell(0, 0)->value, "Region");
  EXPECT_TRUE(app_.find_cell(0, 0)->bold);
  EXPECT_NE(app_.find_cell(1, 1), nullptr);
}

TEST_F(ExcelFixture, CellClickSelectsAndUpdatesNameBox) {
  gsim::Control* b2 = app_.CellControl(1, 1);
  ASSERT_NE(b2, nullptr);
  ASSERT_TRUE(app_.Click(*b2).ok());
  EXPECT_EQ(app_.active_row(), 1);
  EXPECT_EQ(app_.active_col(), 1);
  EXPECT_EQ(app_.name_box()->text_value(), "B2");
}

TEST_F(ExcelFixture, FormulaBarCommitOnEnter) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(20, 4)).ok());
  ASSERT_TRUE(app_.Click(*app_.formula_bar()).ok());
  ASSERT_TRUE(app_.TypeText("hello").ok());
  // Not committed until ENTER.
  EXPECT_EQ(app_.find_cell(20, 4), nullptr);
  ASSERT_TRUE(app_.PressKey("ENTER").ok());
  ASSERT_NE(app_.find_cell(20, 4), nullptr);
  EXPECT_EQ(app_.find_cell(20, 4)->value, "hello");
}

TEST_F(ExcelFixture, NameBoxJumpRequiresEnter) {
  ASSERT_TRUE(app_.Click(*app_.name_box()).ok());
  ASSERT_TRUE(app_.TypeText("C7").ok());
  EXPECT_EQ(app_.active_row(), 0);  // no jump yet: ENTER missing
  ASSERT_TRUE(app_.PressKey("ENTER").ok());
  EXPECT_EQ(app_.active_row(), 6);
  EXPECT_EQ(app_.active_col(), 2);
}

TEST_F(ExcelFixture, NameBoxRejectsGarbage) {
  ASSERT_TRUE(app_.Click(*app_.name_box()).ok());
  ASSERT_TRUE(app_.TypeText("not-a-ref").ok());
  EXPECT_EQ(app_.PressKey("ENTER").code(), support::StatusCode::kInvalidArgument);
}

TEST_F(ExcelFixture, FormulaEvaluation) {
  app_.SetCellValue(30, 0, "10");
  app_.SetCellValue(31, 0, "20");
  app_.SetCellValue(32, 0, "30");
  app_.SetCellValue(33, 0, "=SUM(A31:A33)");
  EXPECT_EQ(app_.find_cell(33, 0)->value, "60");
  app_.SetCellValue(34, 0, "=AVERAGE(A31:A33)");
  EXPECT_EQ(app_.find_cell(34, 0)->value, "20");
  app_.SetCellValue(35, 0, "=MAX(A31:A33)");
  EXPECT_EQ(app_.find_cell(35, 0)->value, "30");
  app_.SetCellValue(36, 0, "=COUNT(A31:A35)");
  EXPECT_EQ(app_.find_cell(36, 0)->value, "5");
}

TEST_F(ExcelFixture, ConditionalFormattingAppliesToBlanks) {
  // Select a region that includes blank cells, apply "Greater Than 0".
  ASSERT_TRUE(app_.Click(*app_.CellControl(1, 1)).ok());
  auto* sel = uia::PatternCast<uia::SelectionItemPattern>(*app_.CellControl(5, 3));
  ASSERT_NE(sel, nullptr);
  ASSERT_TRUE(sel->AddToSelection().ok());
  gsim::Control* home_cf = Find("Conditional Formatting");
  ASSERT_NE(home_cf, nullptr);
  ASSERT_TRUE(app_.Click(*home_cf).ok());
  gsim::Control* hcr = Find("Highlight Cells Rules");
  ASSERT_TRUE(app_.Click(*hcr).ok());
  gsim::Control* gt = Find("Greater Than...");
  ASSERT_TRUE(app_.Click(*gt).ok());
  ASSERT_EQ(app_.TopWindow()->title(), "Greater Than");
  gsim::Control* value_edit = static_cast<gsim::Control*>(uia::FindAll(
      app_.TopWindow()->root(),
      [](uia::Element& e) { return e.AutomationId() == "cf_value"; })[0]);
  ASSERT_TRUE(app_.Click(*value_edit).ok());
  ASSERT_TRUE(app_.TypeText("100").ok());
  gsim::Control* ok =
      static_cast<gsim::Control*>(uia::FindByName(app_.TopWindow()->root(), "OK"));
  ASSERT_TRUE(app_.Click(*ok).ok());
  ASSERT_EQ(app_.cf_rules().size(), 1u);
  const apps::CfRule& rule = app_.cf_rules()[0];
  EXPECT_EQ(rule.kind, "GreaterThan");
  EXPECT_DOUBLE_EQ(rule.threshold, 100.0);
  // The rule region is the full bounding box: includes the blank D2 cell.
  EXPECT_EQ(rule.row0, 1);
  EXPECT_EQ(rule.col0, 1);
  EXPECT_EQ(rule.row1, 5);
  EXPECT_EQ(rule.col1, 3);
}

TEST_F(ExcelFixture, SortAscendingByActiveColumn) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(1, 1)).ok());  // column B (Q1)
  gsim::Control* sort_menu = Find("Sort and Filter");
  ASSERT_TRUE(app_.Click(*sort_menu).ok());
  gsim::Control* asc = Find("Sort A to Z");
  ASSERT_TRUE(app_.Click(*asc).ok());
  EXPECT_TRUE(app_.sorted_ascending());
  double prev = -1e18;
  for (int r = 1; r <= 12; ++r) {
    double v = std::atof(app_.find_cell(r, 1)->value.c_str());
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_F(ExcelFixture, ViewportFollowsScroll) {
  EXPECT_FALSE(app_.CellControl(0, 0)->IsOffscreen());
  EXPECT_TRUE(app_.CellControl(100, 0)->IsOffscreen());
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(*app_.grid_control());
  ASSERT_NE(scroll, nullptr);
  ASSERT_TRUE(scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, 80.0).ok());
  EXPECT_TRUE(app_.CellControl(0, 0)->IsOffscreen());
  EXPECT_FALSE(app_.CellControl(105, 0)->IsOffscreen());
}

TEST_F(ExcelFixture, GridPatternGeometry) {
  auto* grid = uia::PatternCast<uia::GridPattern>(*app_.grid_control());
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->RowCount(), apps::ExcelSim::kRows);
  EXPECT_EQ(grid->ColumnCount(), apps::ExcelSim::kCols);
  EXPECT_EQ(grid->GetItem(6, 2)->Name(), "C7");
  EXPECT_EQ(grid->GetItem(-1, 0), nullptr);
}

TEST_F(ExcelFixture, FillVsFontColorPaths) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(2, 2)).ok());
  gsim::Control* fill = Find("Fill Color");
  ASSERT_TRUE(app_.Click(*fill).ok());
  gsim::Control* gold = Find("Gold");
  ASSERT_TRUE(app_.Click(*gold).ok());
  EXPECT_EQ(app_.find_cell(2, 2)->fill_color, "Gold");
  EXPECT_EQ(app_.find_cell(2, 2)->font_color, "Black");
}

// ----- PowerPoint -------------------------------------------------------------------

class PpointFixture : public ::testing::Test {
 protected:
  apps::PpointSim app_;

  gsim::Control* Find(const std::string& name) {
    return static_cast<gsim::Control*>(uia::FindByName(app_.main_window().root(), name));
  }
};

TEST_F(PpointFixture, Task1BackgroundBlueAllSlides) {
  // The paper's Table 1 Task 1, done imperatively: Design -> Format
  // Background -> Solid fill -> Fill Color -> Blue -> Apply to All.
  ASSERT_TRUE(app_.Click(*Find("Design")).ok());
  ASSERT_TRUE(app_.Click(*Find("Format Background")).ok());
  ASSERT_TRUE(app_.Click(*Find("Solid fill")).ok());
  ASSERT_TRUE(app_.Click(*Find("Fill Color")).ok());
  ASSERT_TRUE(app_.Click(*Find("Blue")).ok());
  ASSERT_TRUE(app_.Click(*Find("Apply to All")).ok());
  for (const auto& slide : app_.slides()) {
    EXPECT_EQ(slide.background_color, "Blue");
    EXPECT_TRUE(slide.background_solid);
  }
}

TEST_F(PpointFixture, BackgroundPanePersistsAcrossClicks) {
  ASSERT_TRUE(app_.Click(*Find("Design")).ok());
  ASSERT_TRUE(app_.Click(*Find("Format Background")).ok());
  gsim::Control* apply_all = Find("Apply to All");
  ASSERT_NE(apply_all, nullptr);
  // Picking a color (which closes the transient palette) keeps the pane open.
  ASSERT_TRUE(app_.Click(*Find("Fill Color")).ok());
  ASSERT_TRUE(app_.Click(*Find("Blue")).ok());
  EXPECT_TRUE(app_.IsAttached(*apply_all));
  // Close Pane dismisses it.
  ASSERT_TRUE(app_.Click(*Find("Close Pane")).ok());
  EXPECT_FALSE(app_.IsAttached(*apply_all));
}

TEST_F(PpointFixture, BackgroundPaneCycle) {
  ASSERT_TRUE(app_.Click(*Find("Design")).ok());
  ASSERT_TRUE(app_.Click(*Find("Format Background")).ok());
  gsim::Control* solid = Find("Solid fill");
  ASSERT_FALSE(solid->IsOffscreen());
  ASSERT_TRUE(app_.Click(*Find("More Fill Options")).ok());
  EXPECT_TRUE(solid->IsOffscreen());
  ASSERT_TRUE(app_.Click(*Find("Back to Fill Options")).ok());
  EXPECT_FALSE(solid->IsOffscreen());
}

TEST_F(PpointFixture, ThumbnailSwitchesSlide) {
  gsim::Control* t5 = Find("Slide 5");
  ASSERT_NE(t5, nullptr);
  ASSERT_TRUE(app_.Click(*t5).ok());
  EXPECT_EQ(app_.current_slide(), 4);
  // Canvas visibility follows.
  EXPECT_FALSE(Find("Slide 5 Canvas")->IsOffscreen());
  EXPECT_TRUE(Find("Slide 1 Canvas")->IsOffscreen());
}

TEST_F(PpointFixture, PictureFormatTabIsContextual) {
  EXPECT_TRUE(app_.picture_format_tab()->IsOffscreen());
  // Go to slide 3 and select its image.
  ASSERT_TRUE(app_.Click(*Find("Slide 3")).ok());
  gsim::Control* image = static_cast<gsim::Control*>(uia::FindAll(
      app_.main_window().root(), [](uia::Element& e) {
        return e.Type() == uia::ControlType::kImage && !e.IsOffscreen();
      })[0]);
  ASSERT_TRUE(app_.Click(*image).ok());
  EXPECT_FALSE(app_.picture_format_tab()->IsOffscreen());
  // Selecting a non-image shape hides it again.
  gsim::Control* title = static_cast<gsim::Control*>(
      uia::FindByName(app_.main_window().root(), "Title: Slide 3 Title"));
  ASSERT_NE(title, nullptr);
  ASSERT_TRUE(app_.Click(*title).ok());
  EXPECT_TRUE(app_.picture_format_tab()->IsOffscreen());
}

TEST_F(PpointFixture, SlideViewScroll) {
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(*app_.slide_view_control());
  ASSERT_NE(scroll, nullptr);
  ASSERT_TRUE(scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, 80.0).ok());
  EXPECT_DOUBLE_EQ(app_.view_scroll_percent(), 80.0);
}

TEST_F(PpointFixture, TransitionApplyAndApplyAll) {
  ASSERT_TRUE(app_.Click(*Find("Transitions")).ok());
  ASSERT_TRUE(app_.Click(*Find("Transition Gallery")).ok());
  gsim::Control* t7 = Find("Transition 7");
  ASSERT_NE(t7, nullptr);
  ASSERT_TRUE(app_.Click(*t7).ok());
  EXPECT_EQ(app_.slides()[0].transition, "Transition 7");
  EXPECT_EQ(app_.slides()[1].transition, "None");
  ASSERT_TRUE(app_.Click(*Find("Apply To All Slides")).ok());
  EXPECT_EQ(app_.slides()[11].transition, "Transition 7");
}

TEST_F(PpointFixture, ThemeApply) {
  ASSERT_TRUE(app_.Click(*Find("Design")).ok());
  ASSERT_TRUE(app_.Click(*Find("Themes Gallery")).ok());
  gsim::Control* theme = Find("Theme 12");
  ASSERT_NE(theme, nullptr);
  ASSERT_TRUE(app_.Click(*theme).ok());
  EXPECT_EQ(app_.theme(), "Theme 12");
}

TEST_F(PpointFixture, PictureCommandNeedsSelection) {
  // Drive a pic.* command without any selected picture: structured error.
  ASSERT_TRUE(app_.Click(*Find("Slide 3")).ok());
  gsim::Control* image = static_cast<gsim::Control*>(uia::FindAll(
      app_.main_window().root(), [](uia::Element& e) {
        return e.Type() == uia::ControlType::kImage && !e.IsOffscreen();
      })[0]);
  ASSERT_TRUE(app_.Click(*image).ok());
  ASSERT_TRUE(app_.Click(*app_.picture_format_tab()).ok());
  ASSERT_TRUE(app_.Click(*Find("Corrections")).ok());
  gsim::Control* preset = Find("Correction Preset 3");
  ASSERT_NE(preset, nullptr);
  ASSERT_TRUE(app_.Click(*preset).ok());
  EXPECT_TRUE(app_.HasEffect("pic.correction:Correction Preset 3"));
}


// ----- broader semantic-command coverage -------------------------------------------

TEST_F(WordFixture, AlignmentAndLineSpacing) {
  app_.SetSelection(0, 1);
  gsim::Control* center = Find("Center");
  ASSERT_TRUE(app_.Click(*center).ok());
  EXPECT_EQ(app_.paragraphs()[0].alignment, "Center");
  EXPECT_EQ(app_.paragraphs()[2].alignment, "Left");
  gsim::Control* spacing = Find("Line and Paragraph Spacing");
  ASSERT_TRUE(app_.Click(*spacing).ok());
  gsim::Control* two = Find("2.0");
  ASSERT_NE(two, nullptr);
  ASSERT_TRUE(app_.Click(*two).ok());
  EXPECT_DOUBLE_EQ(app_.paragraphs()[1].line_spacing, 2.0);
}

TEST_F(WordFixture, FontFamilyAndSizeFromCombos) {
  app_.SetSelection(2, 2);
  gsim::Control* family = Find("Font Family");
  ASSERT_TRUE(app_.Click(*family).ok());
  gsim::Control* georgia = Find("Georgia");
  ASSERT_NE(georgia, nullptr);
  ASSERT_TRUE(app_.Click(*georgia).ok());
  EXPECT_EQ(app_.paragraphs()[2].fmt.font, "Georgia");
  gsim::Control* size = Find("Font Size");
  ASSERT_TRUE(app_.Click(*size).ok());
  gsim::Control* s24 = Find("24");
  ASSERT_NE(s24, nullptr);
  ASSERT_TRUE(app_.Click(*s24).ok());
  EXPECT_EQ(app_.paragraphs()[2].fmt.size, 24);
}

TEST_F(WordFixture, OrientationRoundTrip) {
  gsim::Control* layout = Find("Layout");
  ASSERT_TRUE(app_.Click(*layout).ok());
  gsim::Control* orient = Find("Orientation");
  ASSERT_TRUE(app_.Click(*orient).ok());
  ASSERT_TRUE(app_.Click(*Find("Landscape")).ok());
  EXPECT_EQ(app_.page_orientation(), "Landscape");
  ASSERT_TRUE(app_.Click(*orient).ok());
  ASSERT_TRUE(app_.Click(*Find("Portrait")).ok());
  EXPECT_EQ(app_.page_orientation(), "Portrait");
}

TEST_F(WordFixture, InsertTableDialogUsesTypedDimensions) {
  gsim::Control* insert = Find("Insert");
  ASSERT_TRUE(app_.Click(*insert).ok());
  gsim::Control* table = Find("Table");
  ASSERT_TRUE(app_.Click(*table).ok());
  gsim::Control* dlg = Find("Insert Table...");
  ASSERT_TRUE(app_.Click(*dlg).ok());
  ASSERT_EQ(app_.TopWindow()->title(), "Insert Table");
  gsim::Control* rows = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "Number of rows"));
  ASSERT_TRUE(app_.Click(*rows).ok());
  ASSERT_TRUE(app_.TypeText("6").ok());
  gsim::Control* cols = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "Number of columns"));
  ASSERT_TRUE(app_.Click(*cols).ok());
  ASSERT_TRUE(app_.TypeText("2").ok());
  gsim::Control* ok = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "OK"));
  ASSERT_TRUE(app_.Click(*ok).ok());
  EXPECT_EQ(app_.table_rows(), 6);
  EXPECT_EQ(app_.table_cols(), 2);
}

TEST_F(WordFixture, ClearFormattingResetsSelection) {
  app_.SetSelection(0, 0);
  ASSERT_TRUE(app_.Click(*Find("Bold")).ok());
  ASSERT_TRUE(app_.Click(*Find("Italic")).ok());
  EXPECT_TRUE(app_.paragraphs()[0].fmt.bold);
  ASSERT_TRUE(app_.Click(*Find("Clear All Formatting")).ok());
  EXPECT_FALSE(app_.paragraphs()[0].fmt.bold);
  EXPECT_FALSE(app_.paragraphs()[0].fmt.italic);
  EXPECT_EQ(app_.paragraphs()[0].fmt.color, "Black");
}

TEST_F(WordFixture, HighlightUsesOwnPaletteNotShared) {
  app_.SetSelection(3, 3);
  gsim::Control* highlight = Find("Text Highlight Color");
  ASSERT_TRUE(app_.Click(*highlight).ok());
  gsim::Control* yellow = Find("Yellow Highlight");
  ASSERT_NE(yellow, nullptr);
  ASSERT_TRUE(app_.Click(*yellow).ok());
  EXPECT_EQ(app_.paragraphs()[3].fmt.highlight, "Yellow Highlight");
  EXPECT_EQ(app_.paragraphs()[3].fmt.color, "Black");
}

TEST_F(ExcelFixture, AutoSumOverNumericRun) {
  // Seeded B2:B13 are numeric; put the cursor at B14 and AutoSum.
  app_.SetActiveCell(13, 1);
  gsim::Control* autosum = Find("AutoSum");
  ASSERT_TRUE(app_.Click(*autosum).ok());
  gsim::Control* sum = Find("Sum");
  ASSERT_NE(sum, nullptr);
  ASSERT_TRUE(app_.Click(*sum).ok());
  const apps::ExcelCell* cell = app_.find_cell(13, 1);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->formula, "=SUM(B2:B13)");
}

TEST_F(ExcelFixture, AutoSumWithoutNumbersAboveErrors) {
  app_.SetActiveCell(100, 8);  // empty region
  gsim::Control* autosum = Find("AutoSum");
  ASSERT_TRUE(app_.Click(*autosum).ok());
  gsim::Control* sum = Find("Sum");
  support::Status s = app_.Click(*sum);
  EXPECT_EQ(s.code(), support::StatusCode::kFailedPrecondition);
}

TEST_F(ExcelFixture, NumberFormatAppliesToSelection) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(1, 1)).ok());
  auto* sel = uia::PatternCast<uia::SelectionItemPattern>(*app_.CellControl(3, 1));
  ASSERT_TRUE(sel->AddToSelection().ok());
  gsim::Control* numfmt = Find("Number Format");
  ASSERT_TRUE(app_.Click(*numfmt).ok());
  gsim::Control* currency = Find("Currency");
  ASSERT_TRUE(app_.Click(*currency).ok());
  EXPECT_EQ(app_.find_cell(2, 1)->number_format, "Currency");
  EXPECT_EQ(app_.find_cell(4, 1)->number_format, "General");
}

TEST_F(ExcelFixture, SortDescendingToo) {
  ASSERT_TRUE(app_.Click(*app_.CellControl(1, 1)).ok());
  gsim::Control* menu = Find("Sort and Filter");
  ASSERT_TRUE(app_.Click(*menu).ok());
  ASSERT_TRUE(app_.Click(*Find("Sort Z to A")).ok());
  double prev = 1e18;
  for (int r = 1; r <= 12; ++r) {
    double v = std::atof(app_.find_cell(r, 1)->value.c_str());
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST_F(ExcelFixture, ClearAllRules) {
  // Apply a quick rule then clear every rule from the sheet.
  ASSERT_TRUE(app_.Click(*app_.CellControl(1, 1)).ok());
  gsim::Control* cf = Find("Conditional Formatting");
  ASSERT_TRUE(app_.Click(*cf).ok());
  gsim::Control* hcr = Find("Highlight Cells Rules");
  ASSERT_TRUE(app_.Click(*hcr).ok());
  ASSERT_TRUE(app_.Click(*Find("Greater Than...")).ok());
  gsim::Control* ok = static_cast<gsim::Control*>(
      uia::FindByName(app_.TopWindow()->root(), "OK"));
  ASSERT_TRUE(app_.Click(*ok).ok());
  ASSERT_EQ(app_.cf_rules().size(), 1u);
  ASSERT_TRUE(app_.Click(*cf).ok());
  gsim::Control* clear = Find("Clear Rules");
  ASSERT_TRUE(app_.Click(*clear).ok());
  ASSERT_TRUE(app_.Click(*Find("Clear Rules from Entire Sheet")).ok());
  EXPECT_TRUE(app_.cf_rules().empty());
}

TEST_F(PpointFixture, LayoutAppliesToCurrentSlideOnly) {
  ASSERT_TRUE(app_.Click(*Find("Slide 4")).ok());
  gsim::Control* layout = Find("Layout");
  ASSERT_TRUE(app_.Click(*layout).ok());
  ASSERT_TRUE(app_.Click(*Find("Layout Preset 7")).ok());
  EXPECT_EQ(app_.slides()[3].layout, "Layout Preset 7");
  EXPECT_EQ(app_.slides()[0].layout, "Title and Content");
}

TEST_F(PpointFixture, ShapeInsertLandsOnCurrentSlide) {
  ASSERT_TRUE(app_.Click(*Find("Slide 2")).ok());
  const size_t before = app_.slides()[1].shapes.size();
  gsim::Control* shapes = Find("Shapes");
  ASSERT_TRUE(app_.Click(*shapes).ok());
  ASSERT_TRUE(app_.Click(*Find("Shape 5")).ok());
  EXPECT_EQ(app_.slides()[1].shapes.size(), before + 1);
  EXPECT_TRUE(app_.HasEffect("shape.insert:Shape 5"));
}

TEST_F(PpointFixture, FontColorOnSelectedShapeViaPalette) {
  gsim::Control* title = static_cast<gsim::Control*>(
      uia::FindByName(app_.main_window().root(), "Title: Slide 1 Title"));
  ASSERT_NE(title, nullptr);
  ASSERT_TRUE(app_.Click(*title).ok());
  gsim::Control* font_color = Find("Font Color");
  ASSERT_TRUE(app_.Click(*font_color).ok());
  ASSERT_TRUE(app_.Click(*Find("Teal")).ok());
  EXPECT_EQ(app_.slides()[0].shapes[0].font_color, "Teal");
}

TEST_F(PpointFixture, BackgroundResetRestoresDefault) {
  ASSERT_TRUE(app_.Click(*Find("Design")).ok());
  ASSERT_TRUE(app_.Click(*Find("Format Background")).ok());
  ASSERT_TRUE(app_.Click(*Find("Solid fill")).ok());
  ASSERT_TRUE(app_.Click(*Find("Fill Color")).ok());
  ASSERT_TRUE(app_.Click(*Find("Green")).ok());
  EXPECT_EQ(app_.slides()[0].background_color, "Green");
  ASSERT_TRUE(app_.Click(*Find("Reset Background")).ok());
  EXPECT_EQ(app_.slides()[0].background_color, "White");
  EXPECT_FALSE(app_.slides()[0].background_solid);
}

}  // namespace
