// The serving layer (DESIGN.md §16): versioned wire schema, the unified
// ServiceConfig surface, SessionManager admission control / tenant quotas /
// graceful drain, field-identity of served sessions with direct runs, and
// the stdio frame loop end to end.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/agent/service_adapter.h"
#include "src/dmi/service_config.h"
#include "src/serve/daemon.h"
#include "src/serve/report_schema.h"
#include "src/serve/session_manager.h"
#include "src/serve/wire.h"
#include "src/support/metrics.h"

namespace {

using serve::Request;
using serve::Response;
using serve::SessionManager;

// Deterministic, hazard-free serving config: every run is a pure function of
// (task, seed), so served sessions can be compared field-by-field.
dmi::ServiceConfig QuietConfig() {
  dmi::ServiceConfig config;
  config.policy = "none";
  config.instability = "none";
  return config;
}

const workload::Task& TaskById(const std::vector<workload::Task>& tasks,
                               const std::string& id) {
  for (const workload::Task& task : tasks) {
    if (task.id == id) {
      return task;
    }
  }
  ADD_FAILURE() << "no task " << id;
  static workload::Task missing;
  return missing;
}

// Latch that parks SessionManager workers at the before-run hook so tests
// can fill the queue deterministically.
class WorkerGate {
 public:
  void Install(SessionManager& manager) {
    manager.SetBeforeRunHookForTest([this](const Request&) {
      std::unique_lock<std::mutex> lock(mu_);
      ++held_;
      held_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    });
  }

  void WaitHeld(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    held_cv_.wait(lock, [&] { return held_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable held_cv_;
  std::condition_variable release_cv_;
  int held_ = 0;
  bool released_ = false;
};

// Collects completion callbacks and lets tests block until N arrived.
class ResponseSink {
 public:
  SessionManager::Callback Callback() {
    return [this](Response response) {
      std::lock_guard<std::mutex> lock(mu_);
      responses_.push_back(std::move(response));
      cv_.notify_all();
    };
  }

  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return responses_.size() >= n; });
  }

  std::vector<Response> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Response> responses_;
};

Request MakeRequest(uint64_t id, const std::string& tenant, const std::string& task,
                    uint64_t seed) {
  Request request;
  request.request_id = id;
  request.tenant = tenant;
  request.task_id = task;
  request.seed = seed;
  return request;
}

// ----- wire framing ---------------------------------------------------------

TEST(WireTest, FrameRoundTripAndPartials) {
  std::string buffer;
  serve::AppendFrame(buffer, "hello");
  serve::AppendFrame(buffer, "");
  serve::AppendFrame(buffer, std::string(1000, 'x'));

  size_t offset = 0;
  auto first = serve::DecodeFrame(buffer, &offset);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, "hello");
  auto second = serve::DecodeFrame(buffer, &offset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(**second, "");
  auto third = serve::DecodeFrame(buffer, &offset);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*third)->size(), 1000u);
  EXPECT_EQ(offset, buffer.size());

  // Nothing left: a clean "no frame yet".
  auto empty = serve::DecodeFrame(buffer, &offset);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());

  // A partial frame (header only, or truncated payload) is also "not yet".
  std::string partial;
  serve::AppendFrame(partial, "payload");
  for (size_t cut = 0; cut < partial.size(); ++cut) {
    size_t at = 0;
    auto got = serve::DecodeFrame(std::string_view(partial).substr(0, cut), &at);
    ASSERT_TRUE(got.ok()) << cut;
    EXPECT_FALSE(got->has_value()) << cut;
    EXPECT_EQ(at, 0u) << cut;
  }
}

TEST(WireTest, OversizedFrameRejected) {
  // Hand-build a header claiming a payload over the 64 MiB cap.
  const uint32_t huge = serve::kMaxFramePayload + 1;
  std::string buffer;
  buffer.push_back(static_cast<char>(huge & 0xff));
  buffer.push_back(static_cast<char>((huge >> 8) & 0xff));
  buffer.push_back(static_cast<char>((huge >> 16) & 0xff));
  buffer.push_back(static_cast<char>((huge >> 24) & 0xff));
  size_t offset = 0;
  auto got = serve::DecodeFrame(buffer, &offset);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), support::StatusCode::kInvalidArgument);
}

TEST(WireTest, FileFramingRoundTrip) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(serve::WriteFrame(f, "first").ok());
  ASSERT_TRUE(serve::WriteFrame(f, "second").ok());
  std::rewind(f);
  auto first = serve::ReadFrame(f);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(**first, "first");
  auto second = serve::ReadFrame(f);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(**second, "second");
  auto eof = serve::ReadFrame(f);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
  std::fclose(f);

  // A truncated stream is transport damage, not EOF.
  std::FILE* cut = std::tmpfile();
  ASSERT_NE(cut, nullptr);
  const char header[4] = {100, 0, 0, 0};
  std::fwrite(header, 1, 4, cut);
  std::fwrite("short", 1, 5, cut);
  std::rewind(cut);
  auto bad = serve::ReadFrame(cut);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), support::StatusCode::kInvalidArgument);
  std::fclose(cut);
}

// ----- request schema -------------------------------------------------------

TEST(RequestSchemaTest, RoundTripAndTypedRejections) {
  Request request = MakeRequest(7, "acme", "W3", 42);
  auto parsed = serve::ParseRequest(serve::RequestJson(request).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 7u);
  EXPECT_EQ(parsed->tenant, "acme");
  EXPECT_EQ(parsed->task_id, "W3");
  EXPECT_EQ(parsed->seed, 42u);

  auto garbage = serve::ParseRequest("not json");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), support::StatusCode::kInvalidArgument);

  // Versioning: consumers reject schemas they do not understand.
  auto future = serve::ParseRequest(R"({"schema_version":2,"task":"W3"})");
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), support::StatusCode::kInvalidArgument);
  auto unversioned = serve::ParseRequest(R"({"task":"W3"})");
  EXPECT_FALSE(unversioned.ok());

  auto taskless = serve::ParseRequest(R"({"schema_version":1,"tenant":"acme"})");
  ASSERT_FALSE(taskless.ok());
  EXPECT_EQ(taskless.status().code(), support::StatusCode::kInvalidArgument);
}

// ----- ServiceConfig --------------------------------------------------------

TEST(ServiceConfigTest, DefaultsValidateAndFlagsApply) {
  dmi::ServiceConfig config;
  EXPECT_TRUE(config.Validate().ok());

  support::Status error = support::Status::Ok();
  EXPECT_TRUE(config.ApplyFlag("--mode", "gui", &error));
  EXPECT_TRUE(error.ok());
  EXPECT_TRUE(config.ApplyFlag("--batch", "8", &error));
  EXPECT_TRUE(error.ok());
  EXPECT_TRUE(config.ApplyFlag("--tenant-tokens", "100000", &error));
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(config.mode, "gui");
  EXPECT_EQ(config.batch_size, 8);
  EXPECT_EQ(config.tenant_token_budget, 100000);
  EXPECT_TRUE(config.Validate().ok());

  // Not a ServiceConfig flag: the binary tries its local vocabulary next.
  EXPECT_FALSE(config.ApplyFlag("--task", "W3", &error));

  // Recognized flag, malformed value: typed error, no exit.
  EXPECT_TRUE(config.ApplyFlag("--seed", "banana", &error));
  EXPECT_EQ(error.code(), support::StatusCode::kInvalidArgument);
}

TEST(ServiceConfigTest, ValidateNamesOffendingField) {
  dmi::ServiceConfig config;
  config.mode = "vr";
  auto bad_mode = config.Validate();
  ASSERT_FALSE(bad_mode.ok());
  EXPECT_NE(bad_mode.message().find("mode"), std::string::npos);

  config = dmi::ServiceConfig();
  config.policy = "merciless";
  EXPECT_FALSE(config.Validate().ok());

  config = dmi::ServiceConfig();
  config.max_in_flight = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = dmi::ServiceConfig();
  config.tenant_token_budget = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ServiceConfigTest, AdapterProjectsLegacyRunConfig) {
  dmi::ServiceConfig config;
  config.mode = "forest";
  config.model = "mini";
  config.policy = "harsh";
  config.seed = 9;
  config.repeats = 2;
  config.step_cap = 12;
  config.workers = 3;
  config.batch_size = 4;
  config.pool_apps = false;
  ASSERT_TRUE(config.Validate().ok());

  agentsim::RunConfig run = agentsim::RunConfigFromService(config);
  EXPECT_EQ(run.mode, agentsim::InterfaceMode::kGuiOnlyForest);
  EXPECT_EQ(run.profile.model, agentsim::LlmProfile::Gpt5MiniMedium().model);
  EXPECT_EQ(run.seed, 9u);
  EXPECT_EQ(run.repeats, 2);
  EXPECT_EQ(run.step_cap, 12);
  EXPECT_EQ(run.workers, 3);
  EXPECT_FALSE(run.pool_apps);
  EXPECT_TRUE(run.batch.enabled);
  EXPECT_EQ(run.batch.max_batch_size, 4u);
  // --policy harsh adopted the full preset...
  EXPECT_EQ(run.policy_label, dmi::Policy::Harsh().name);
  EXPECT_EQ(run.run_deadline_ticks, dmi::Policy::Harsh().run_deadline_ticks);

  // ...and --instability afterwards overrides just the hazard level.
  config.instability = "none";
  agentsim::RunConfig overridden = agentsim::RunConfigFromService(config);
  EXPECT_EQ(overridden.policy_label, dmi::Policy::Harsh().name);
  EXPECT_DOUBLE_EQ(overridden.instability.click_fail_rate, 0.0);
  EXPECT_DOUBLE_EQ(overridden.instability.name_variation_rate, 0.0);
}

// ----- schema golden --------------------------------------------------------

// Pins the suite-report shape (field names, ordering, formatting) to the
// byte level. If this test breaks, the wire schema changed: bump
// serve::kSchemaVersion and document the migration in DESIGN.md §16 —
// never silently fork the shape.
TEST(ReportSchemaTest, SuiteReportGoldenBytes) {
  agentsim::RunConfig config;
  config.seed = 5;
  config.repeats = 1;
  config.policy_label = "typical";
  config.workers = 2;
  config.batch.enabled = true;
  config.batch.max_batch_size = 8;

  agentsim::SuiteResult result;
  agentsim::TaskRecord record;
  record.task_id = "W3";
  agentsim::RunResult ok_run;
  ok_run.success = true;
  ok_run.llm_calls = 6;
  ok_run.core_calls = 3;
  ok_run.sim_time_s = 21.5;
  ok_run.prompt_tokens = 1200;
  ok_run.output_tokens = 90;
  ok_run.ui_actions = 4;
  ok_run.run_id = 11;
  record.runs.push_back(ok_run);
  agentsim::RunResult failed_run;
  failed_run.success = false;
  failed_run.llm_calls = 2;
  failed_run.sim_time_s = 8.25;
  failed_run.run_id = 12;
  failed_run.cause = agentsim::FailureCause::kNavigationError;
  support::ErrorDetail detail;
  detail.control_id = "n17";
  detail.control_name = "Bold";
  detail.retryable = true;
  detail.attempts = 2;
  detail.backoff_ticks = 3;
  failed_run.final_status =
      support::UnavailableError("control occluded").WithDetail(std::move(detail));
  record.runs.push_back(failed_run);
  result.records.push_back(record);

  agentsim::BatchScheduler::Stats batch;
  batch.calls = 12;
  batch.batches = 3;

  const std::string got = serve::SuiteReportJson(config, result, &batch).DumpPretty();
  const std::string want = R"GOLD({
  "fleet_batching": {
    "amortized_call_latency_s": 0,
    "amortized_speedup": 0,
    "batches": 3,
    "calls": 12,
    "max_batch_size": 8,
    "prefix_tokens_saved": 0,
    "tokens_per_sec": 0,
    "workers": 2
  },
  "mode": "GUI-only",
  "model": "GPT-5",
  "policy": "typical",
  "repeats": 1,
  "schema_version": 1,
  "seed": 5,
  "success_rate": 0.5,
  "tasks": [
    {
      "runs": [
        {
          "cause": "none",
          "core_calls": 3,
          "final_status": {
            "code": "OK",
            "message": ""
          },
          "llm_calls": 6,
          "output_tokens": 90,
          "prompt_tokens": 1200,
          "run_id": 11,
          "sim_time_s": 21.5,
          "success": true,
          "ui_actions": 4
        },
        {
          "cause": "control localization / navigation error",
          "core_calls": 0,
          "final_status": {
            "code": "UNAVAILABLE",
            "error_detail": {
              "attempts": 2,
              "backoff_ticks": 3,
              "control_id": "n17",
              "control_name": "Bold",
              "required_pattern": "",
              "retryable": true
            },
            "message": "control occluded"
          },
          "llm_calls": 2,
          "output_tokens": 0,
          "prompt_tokens": 0,
          "run_id": 12,
          "sim_time_s": 8.25,
          "success": false,
          "ui_actions": 0
        }
      ],
      "task": "W3"
    }
  ]
})GOLD";
  EXPECT_EQ(got, want);
}

// Both front ends stamp the same schema version.
TEST(ReportSchemaTest, ResponseCarriesSchemaVersion) {
  Response response;
  response.request_id = 3;
  response.tenant = "acme";
  response.task_id = "W3";
  response.status = support::Status::Ok();
  const jsonv::Value doc = serve::ResponseJson(response);
  EXPECT_EQ(doc.GetInt("schema_version", -1), serve::kSchemaVersion);
}

// ----- admission control ----------------------------------------------------

TEST(AdmissionTest, QueueFullRejectsTyped) {
  support::MetricsRegistry::Global().ResetAllForTest();
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 2;
  config.queue_capacity = 2;
  SessionManager manager(config);
  WorkerGate gate;
  gate.Install(manager);
  ResponseSink sink;

  // Fill the running slots first (deterministic: wait for both workers to
  // park at the gate), then the queue.
  ASSERT_TRUE(manager.Submit(MakeRequest(1, "", "W3", 1), sink.Callback()).ok());
  ASSERT_TRUE(manager.Submit(MakeRequest(2, "", "W3", 2), sink.Callback()).ok());
  gate.WaitHeld(2);
  ASSERT_TRUE(manager.Submit(MakeRequest(3, "", "W3", 3), sink.Callback()).ok());
  ASSERT_TRUE(manager.Submit(MakeRequest(4, "", "W3", 4), sink.Callback()).ok());
  EXPECT_EQ(manager.Outstanding(), 4u);

  const support::Status rejected =
      manager.Submit(MakeRequest(5, "", "W3", 5), sink.Callback());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), support::StatusCode::kResourceExhausted);

  // Unknown tasks are a different typed error, and never occupy capacity.
  const support::Status unknown =
      manager.Submit(MakeRequest(6, "", "NOPE", 1), sink.Callback());
  EXPECT_EQ(unknown.code(), support::StatusCode::kNotFound);

  gate.Release();
  sink.WaitFor(4);
  manager.Shutdown();

  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.peak_outstanding, 4u);

  // The labeled counters tell the same story as the typed statuses.
  const support::MetricsSnapshot snap = support::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.LabeledCounterValue(
                "session.rejected", {{"reason", "queue_full"}, {"tenant", "default"}}),
            1u);
  EXPECT_EQ(snap.LabeledCounterValue("session.admitted", {{"tenant", "default"}}), 4u);
}

TEST(AdmissionTest, TenantConcurrentQuotaIsPerTenant) {
  support::MetricsRegistry::Global().ResetAllForTest();
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 2;
  config.queue_capacity = 8;
  SessionManager::Options options = SessionManager::OptionsFromConfig(config);
  options.tenant_quotas["acme"] = serve::TenantQuota{1, 0};
  SessionManager manager(config, options);
  WorkerGate gate;
  gate.Install(manager);
  ResponseSink sink;

  ASSERT_TRUE(manager.Submit(MakeRequest(1, "acme", "W3", 1), sink.Callback()).ok());

  // acme is at its concurrency cap while the first session is in flight.
  const support::Status capped =
      manager.Submit(MakeRequest(2, "acme", "W3", 2), sink.Callback());
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.code(), support::StatusCode::kResourceExhausted);

  // Another tenant is unaffected: quotas are per-tenant, not global.
  ASSERT_TRUE(manager.Submit(MakeRequest(3, "globex", "E2", 1), sink.Callback()).ok());

  gate.Release();
  sink.WaitFor(2);
  manager.Shutdown();

  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_tenant_concurrent, 1u);

  const support::MetricsSnapshot snap = support::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.LabeledCounterValue(
                "session.rejected", {{"reason", "tenant_concurrent"}, {"tenant", "acme"}}),
            1u);
  EXPECT_EQ(snap.LabeledCounterValue("session.admitted", {{"tenant", "acme"}}), 1u);
  EXPECT_EQ(snap.LabeledCounterValue("session.admitted", {{"tenant", "globex"}}), 1u);
  // The per-tenant token meters reconcile with the manager's accounting.
  EXPECT_EQ(snap.LabeledCounterValue("session.tokens", {{"tenant", "acme"}}) +
                snap.LabeledCounterValue("session.tokens", {{"tenant", "globex"}}),
            static_cast<uint64_t>(stats.tokens_served));
}

TEST(AdmissionTest, TenantTokenBudgetClosesAdmission) {
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 1;
  config.tenant_token_budget = 1;  // post-paid: first session crosses the line
  SessionManager manager(config);

  Response first = manager.Run(MakeRequest(1, "acme", "W3", 1));
  ASSERT_TRUE(first.status.ok());
  EXPECT_GT(first.result.prompt_tokens + first.result.output_tokens, 0u);

  Response second = manager.Run(MakeRequest(2, "acme", "W3", 2));
  ASSERT_FALSE(second.status.ok());
  EXPECT_EQ(second.status.code(), support::StatusCode::kResourceExhausted);

  // A fresh tenant still has budget.
  Response other = manager.Run(MakeRequest(3, "globex", "W3", 1));
  EXPECT_TRUE(other.status.ok());

  manager.Shutdown();
  EXPECT_EQ(manager.stats().rejected_tenant_tokens, 1u);
}

// ----- drain ----------------------------------------------------------------

TEST(DrainTest, GracefulShutdownFinishesInFlightCancelsQueued) {
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 1;
  config.queue_capacity = 8;
  SessionManager manager(config);
  WorkerGate gate;
  gate.Install(manager);
  ResponseSink sink;

  ASSERT_TRUE(manager.Submit(MakeRequest(1, "", "W3", 1), sink.Callback()).ok());
  gate.WaitHeld(1);
  ASSERT_TRUE(manager.Submit(MakeRequest(2, "", "E2", 1), sink.Callback()).ok());
  ASSERT_TRUE(manager.Submit(MakeRequest(3, "", "P1", 1), sink.Callback()).ok());

  // Shutdown from another thread: it cancels the queued sessions immediately,
  // then blocks on the in-flight one (parked at the gate).
  std::thread drainer([&] { manager.Shutdown(); });
  sink.WaitFor(2);  // both cancellations delivered while #1 still runs
  for (const Response& response : sink.Take()) {
    EXPECT_EQ(response.status.code(), support::StatusCode::kCancelled);
    EXPECT_NE(response.request_id, 1u);
  }

  // Intake is closed while draining.
  const support::Status late = manager.Submit(MakeRequest(4, "", "W3", 1), sink.Callback());
  EXPECT_EQ(late.code(), support::StatusCode::kUnavailable);

  gate.Release();
  drainer.join();
  sink.WaitFor(3);

  int delivered_ok = 0;
  for (const Response& response : sink.Take()) {
    if (response.request_id == 1) {
      // The in-flight session ran to a verdict and answered normally.
      EXPECT_TRUE(response.status.ok());
      ++delivered_ok;
    }
  }
  EXPECT_EQ(delivered_ok, 1);

  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.rejected_draining, 1u);
}

// ----- equivalence ----------------------------------------------------------

// Sessions served concurrently over the shared substrate (one model per
// kind, pooled apps) are field-identical to direct, isolated TaskRunner
// runs — serving changes scheduling, never results.
TEST(ServeEquivalenceTest, ConcurrentSessionsMatchDirectRunsAcrossKinds) {
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 4;
  config.queue_capacity = 64;
  SessionManager manager(config);
  manager.PrewarmModels();
  ResponseSink sink;

  const std::vector<std::string> task_ids = {"W3", "E2", "P1"};  // 3 app kinds
  constexpr uint64_t kSeeds = 3;
  uint64_t id = 0;
  for (const std::string& task_id : task_ids) {
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ASSERT_TRUE(
          manager.Submit(MakeRequest(++id, "t" + std::to_string(seed), task_id, seed),
                         sink.Callback())
              .ok());
    }
  }
  sink.WaitFor(task_ids.size() * kSeeds);

  // Request ids were assigned task-major, seed-minor above; rebuild the
  // (task, seed) key per response so completion order doesn't matter.
  agentsim::TaskRunner direct;
  const std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  id = 0;
  std::map<uint64_t, std::pair<std::string, uint64_t>> key_by_id;
  for (const std::string& task_id : task_ids) {
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      key_by_id[++id] = {task_id, seed};
    }
  }
  for (const Response& response : sink.Take()) {
    ASSERT_TRUE(response.status.ok());
    const auto& [task_id, seed] = key_by_id.at(response.request_id);
    const agentsim::RunResult expect =
        direct.RunOnce(TaskById(tasks, task_id), manager.run_config(), seed);
    const agentsim::RunResult& got = response.result;
    EXPECT_EQ(got.success, expect.success) << task_id << "/" << seed;
    EXPECT_EQ(got.llm_calls, expect.llm_calls) << task_id << "/" << seed;
    EXPECT_EQ(got.core_calls, expect.core_calls) << task_id << "/" << seed;
    EXPECT_DOUBLE_EQ(got.sim_time_s, expect.sim_time_s) << task_id << "/" << seed;
    EXPECT_EQ(got.prompt_tokens, expect.prompt_tokens) << task_id << "/" << seed;
    EXPECT_EQ(got.output_tokens, expect.output_tokens) << task_id << "/" << seed;
    EXPECT_EQ(got.ui_actions, expect.ui_actions) << task_id << "/" << seed;
    EXPECT_EQ(got.cause, expect.cause) << task_id << "/" << seed;
  }
  manager.Shutdown();
}

// ----- frame loop end to end ------------------------------------------------

TEST(ServeLoopTest, ServesFramesOverStdioStreams) {
  dmi::ServiceConfig config = QuietConfig();
  config.max_in_flight = 2;
  SessionManager manager(config);

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  ASSERT_TRUE(
      serve::WriteFrame(in, serve::RequestJson(MakeRequest(1, "acme", "W3", 1)).Dump())
          .ok());
  ASSERT_TRUE(
      serve::WriteFrame(in, serve::RequestJson(MakeRequest(2, "acme", "E2", 2)).Dump())
          .ok());
  ASSERT_TRUE(serve::WriteFrame(in, "{malformed").ok());
  ASSERT_TRUE(
      serve::WriteFrame(in, serve::RequestJson(MakeRequest(3, "acme", "NOPE", 1)).Dump())
          .ok());
  std::rewind(in);

  auto served = serve::ServeLoop(in, out, manager);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->frames_read, 4u);
  EXPECT_EQ(served->parse_errors, 1u);
  EXPECT_EQ(served->rejected, 1u);
  EXPECT_EQ(served->responses_written, 4u);

  std::rewind(out);
  std::map<uint64_t, jsonv::Value> by_id;
  int error_frames = 0;
  for (;;) {
    auto frame = serve::ReadFrame(out);
    ASSERT_TRUE(frame.ok());
    if (!frame->has_value()) {
      break;
    }
    auto doc = jsonv::Parse(**frame);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->GetInt("schema_version", -1), serve::kSchemaVersion);
    const uint64_t rid = static_cast<uint64_t>(doc->GetInt("request_id", 0));
    if (rid == 0) {
      ++error_frames;  // the malformed frame answers with request_id 0
    } else {
      by_id.emplace(rid, std::move(*doc));
    }
  }
  EXPECT_EQ(error_frames, 1);
  ASSERT_EQ(by_id.size(), 3u);
  for (const uint64_t rid : {uint64_t{1}, uint64_t{2}}) {
    const jsonv::Value& doc = by_id.at(rid);
    ASSERT_NE(doc.Find("status"), nullptr) << rid;
    EXPECT_EQ(doc.Find("status")->GetString("code", ""), "OK") << rid;
    ASSERT_NE(doc.Find("run"), nullptr) << rid;
    EXPECT_GE(doc.Find("run")->GetInt("llm_calls", -1), 0) << rid;
  }
  EXPECT_EQ(by_id.at(3).Find("status")->GetString("code", ""), "NOT_FOUND");

  std::fclose(in);
  std::fclose(out);
  manager.Shutdown();
}

}  // namespace
