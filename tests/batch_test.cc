// Fleet-scale inference batching + shared prompt-prefix cache (DESIGN.md §12).
//
// Three properties under test:
//  1. The continuous-batching latency model: amortized per-call cost strictly
//     decreasing in batch size, prefix-prefill savings accounted exactly,
//     partial batches drained by FlushAll, concurrent Submit safe (tsan).
//  2. The shared static prompt segment: N concurrent sessions of one
//     CompiledModel serve the very same bytes (pointer identity), and the
//     per-session resident cache shrinks to the dynamic segment.
//  3. Observational batching: enabling the scheduler — at any batch size, any
//     worker count, and under the Harsh/Hostile robustness presets — leaves
//     every SuiteResult field byte-identical to the unbatched reference.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/agent/batch_scheduler.h"
#include "src/agent/task_runner.h"
#include "src/apps/word_sim.h"
#include "src/dmi/policy.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/text/tokens.h"
#include "src/workload/tasks.h"

namespace {

using namespace agentsim;

constexpr size_t kPrefixTokens = 12000;
constexpr size_t kUniqueTokens = 650;
constexpr size_t kOutputTokens = 140;

BatchScheduler::Stats RunUniformStream(size_t max_batch_size, size_t calls) {
  BatchScheduler scheduler;
  BatchOptions options;
  options.enabled = true;
  options.max_batch_size = max_batch_size;
  scheduler.Reset(options);
  const LlmProfile profile = LlmProfile::Gpt5Medium();
  const int key = 0;
  for (size_t i = 0; i < calls; ++i) {
    scheduler.Submit(profile, &key, kPrefixTokens, kUniqueTokens, kOutputTokens);
  }
  scheduler.FlushAll();
  return scheduler.stats();
}

// ----- the latency model -----------------------------------------------------------

TEST(BatchSchedulerTest, AmortizedLatencyStrictlyDecreasingInBatchSize) {
  double last_amortized = 0;
  double last_tput = 0;
  bool first = true;
  for (size_t b : {1, 4, 16}) {
    const BatchScheduler::Stats stats = RunUniformStream(b, /*calls=*/16);
    ASSERT_EQ(stats.calls, 16u);
    ASSERT_EQ(stats.batches, 16u / b);
    const double amortized = stats.AmortizedCallLatencyS();
    EXPECT_GT(amortized, 0.0);
    if (!first) {
      EXPECT_LT(amortized, last_amortized) << "batch " << b;
      EXPECT_GT(stats.TokensPerSec(), last_tput) << "batch " << b;
    }
    first = false;
    last_amortized = amortized;
    last_tput = stats.TokensPerSec();
  }
  // Serial cost is batch-size independent (same call stream), and batching
  // must beat it by construction once the batch holds more than one call.
  const BatchScheduler::Stats batched = RunUniformStream(16, 16);
  EXPECT_GT(batched.AmortizedSpeedup(), 1.0);
  EXPECT_LT(batched.batched_latency_s, batched.serial_latency_s);
}

TEST(BatchSchedulerTest, WallTimeModelMatchesClosedForm) {
  const LlmProfile profile = LlmProfile::Gpt5Medium();
  const double expected = profile.batch_overhead_s + profile.reasoning_latency_s +
                          static_cast<double>(kPrefixTokens + 4 * kUniqueTokens) /
                              profile.input_tok_per_s +
                          static_cast<double>(kOutputTokens) / profile.output_tok_per_s;
  EXPECT_DOUBLE_EQ(BatchScheduler::BatchWallTimeS(profile, 4, kPrefixTokens,
                                                  4 * kUniqueTokens, kOutputTokens),
                   expected);
  const double serial = profile.reasoning_latency_s +
                        static_cast<double>(kPrefixTokens + kUniqueTokens) /
                            profile.input_tok_per_s +
                        static_cast<double>(kOutputTokens) / profile.output_tok_per_s;
  EXPECT_DOUBLE_EQ(
      BatchScheduler::SerialCallTimeS(profile, kPrefixTokens + kUniqueTokens, kOutputTokens),
      serial);
}

TEST(BatchSchedulerTest, PrefixSavingsAccountedExactly) {
  const BatchScheduler::Stats stats = RunUniformStream(/*max_batch_size=*/8, /*calls=*/8);
  ASSERT_EQ(stats.batches, 1u);
  // One batch of 8: the shared prefix is prefilled once and saved 7 times.
  EXPECT_EQ(stats.prefix_tokens, kPrefixTokens);
  EXPECT_EQ(stats.prefix_tokens_saved, kPrefixTokens * 7);
  EXPECT_EQ(stats.unique_prompt_tokens, kUniqueTokens * 8);
  EXPECT_EQ(stats.output_tokens, kOutputTokens * 8);
}

TEST(BatchSchedulerTest, FlushAllDrainsPartialBatches) {
  BatchScheduler scheduler;
  BatchOptions options;
  options.enabled = true;
  options.max_batch_size = 16;
  scheduler.Reset(options);
  const LlmProfile profile = LlmProfile::Gpt5Medium();
  const int key = 0;
  for (int i = 0; i < 5; ++i) {
    scheduler.Submit(profile, &key, kPrefixTokens, kUniqueTokens, kOutputTokens);
  }
  // Below the flush threshold: nothing costed yet.
  EXPECT_EQ(scheduler.stats().batches, 0u);
  EXPECT_EQ(scheduler.stats().calls, 0u);
  scheduler.FlushAll();
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.calls, 5u);
  EXPECT_EQ(stats.prefix_tokens_saved, kPrefixTokens * 4);
  // Drained: a second flush is a no-op.
  scheduler.FlushAll();
  EXPECT_EQ(scheduler.stats().batches, 1u);
}

TEST(BatchSchedulerTest, DistinctPrefixKeysNeverShareABatch) {
  BatchScheduler scheduler;
  BatchOptions options;
  options.enabled = true;
  options.max_batch_size = 4;
  scheduler.Reset(options);
  const LlmProfile profile = LlmProfile::Gpt5Medium();
  const int key_a = 0;
  const int key_b = 0;
  for (int i = 0; i < 2; ++i) {
    scheduler.Submit(profile, &key_a, kPrefixTokens, kUniqueTokens, kOutputTokens);
    scheduler.Submit(profile, &key_b, kPrefixTokens, kUniqueTokens, kOutputTokens);
    // Prefix-less (framework) calls batch under the null key.
    scheduler.Submit(profile, nullptr, 0, 500, 80);
  }
  scheduler.FlushAll();
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.calls, 6u);
  EXPECT_EQ(stats.batches, 3u);  // one partial batch per key
  // Each keyed batch saved one prefix; the null-key batch saved nothing.
  EXPECT_EQ(stats.prefix_tokens_saved, kPrefixTokens * 2);
}

TEST(BatchSchedulerTest, ConcurrentSubmitIsThreadSafe) {
  BatchScheduler scheduler;
  BatchOptions options;
  options.enabled = true;
  options.max_batch_size = 16;
  scheduler.Reset(options);
  const LlmProfile profile = LlmProfile::Gpt5Medium();
  static const int keys[4] = {0, 0, 0, 0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        scheduler.Submit(profile, &keys[t % 4], kPrefixTokens, kUniqueTokens,
                         kOutputTokens);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  scheduler.FlushAll();
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.calls, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, stats.calls / 16);
  EXPECT_EQ(stats.unique_prompt_tokens, kUniqueTokens * kThreads * kPerThread);
}

// ----- shared static prompt segment ------------------------------------------------

TEST(SharedPrefixTest, StaticSegmentPointerIdenticalAcrossConcurrentSessions) {
  dmi::ModelingOptions options =
      TaskRunner::DefaultModelingOptions(workload::AppKind::kWord);
  apps::WordSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  std::shared_ptr<const dmi::CompiledModel> model =
      dmi::CompiledModel::Compile(rip.Rip(options.contexts), options);

  apps::WordSim reference_app;
  dmi::DmiSession reference(reference_app, model);
  const std::string want = reference.BuildPromptContextUncached();

  constexpr int kThreads = 8;
  std::vector<const std::string*> statics(kThreads, nullptr);
  std::vector<std::string> assembled(kThreads);
  std::vector<size_t> resident(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      apps::WordSim app;
      dmi::DmiSession session(app, model);
      const dmi::PromptView view = session.Prompt();
      statics[static_cast<size_t>(i)] = view.static_text;
      assembled[static_cast<size_t>(i)] = view.Assemble();
      resident[static_cast<size_t>(i)] = session.PromptCacheBytes();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    // Pointer identity — the static bytes exist once, on the model.
    EXPECT_EQ(statics[static_cast<size_t>(i)], &model->static_prompt()) << i;
    // Byte identity — assembling the shared view reproduces the reference.
    EXPECT_EQ(assembled[static_cast<size_t>(i)], want) << i;
    // Residency — per-session cache holds only the dynamic segment.
    EXPECT_LT(resident[static_cast<size_t>(i)], model->static_prompt().size()) << i;
    EXPECT_EQ(resident[static_cast<size_t>(i)],
              want.size() - model->static_prompt().size())
        << i;
  }
  // The compile-time token count is exact, not an estimate.
  EXPECT_EQ(model->static_prompt_tokens(), textutil::CountTokens(model->static_prompt()));
  EXPECT_GT(model->static_prompt_tokens(), 1000u);
}

// ----- observational batching: suites are field-identical --------------------------

void ExpectSameResult(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.llm_calls, b.llm_calls) << what;
  EXPECT_EQ(a.core_calls, b.core_calls) << what;
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << what;
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens) << what;
  EXPECT_EQ(a.output_tokens, b.output_tokens) << what;
  EXPECT_EQ(a.ui_actions, b.ui_actions) << what;
  EXPECT_EQ(a.cause, b.cause) << what;
}

void ExpectSameSuite(const SuiteResult& a, const SuiteResult& b, const std::string& what) {
  ASSERT_EQ(a.records.size(), b.records.size()) << what;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].task_id, b.records[i].task_id) << what;
    ASSERT_EQ(a.records[i].runs.size(), b.records[i].runs.size()) << what;
    for (size_t r = 0; r < a.records[i].runs.size(); ++r) {
      ExpectSameResult(a.records[i].runs[r], b.records[i].runs[r],
                       what + " task " + a.records[i].task_id);
    }
  }
}

TEST(SuiteEquivalenceTest, BatchedMatchesUnbatchedAtEveryBatchSize) {
  const std::vector<workload::Task> suite = workload::BuildOsworldWSuite();
  for (InterfaceMode mode : {InterfaceMode::kGuiOnly, InterfaceMode::kGuiPlusDmi}) {
    RunConfig base;
    base.mode = mode;
    base.repeats = 1;
    TaskRunner reference_runner;
    const SuiteResult reference = reference_runner.RunSuite(suite, base);

    for (size_t batch_size : {1, 4, 16}) {
      TaskRunner runner;
      RunConfig cfg = base;
      cfg.workers = 4;  // the concurrent fleet mode
      cfg.batch.enabled = true;
      cfg.batch.max_batch_size = batch_size;
      const SuiteResult batched = runner.RunSuite(suite, cfg);
      ExpectSameSuite(batched, reference,
                      std::string(InterfaceModeName(mode)) + " batch=" +
                          std::to_string(batch_size));
      // The scheduler really saw the fleet's calls.
      const BatchScheduler::Stats stats = runner.batch_stats();
      EXPECT_GT(stats.calls, 0u) << batch_size;
      EXPECT_GT(stats.batches, 0u) << batch_size;
      if (mode == InterfaceMode::kGuiPlusDmi && batch_size > 1) {
        EXPECT_GT(stats.prefix_tokens_saved, 0u) << batch_size;
        EXPECT_GT(stats.AmortizedSpeedup(), 1.0) << batch_size;
      }
    }
  }
}

TEST(SuiteEquivalenceTest, BatchedMatchesUnbatchedUnderHarshAndHostilePolicies) {
  const std::vector<workload::Task> suite = workload::BuildOsworldWSuite();
  const struct {
    const char* label;
    dmi::Policy policy;
  } presets[] = {{"harsh", dmi::Policy::Harsh()}, {"hostile", dmi::Policy::Hostile()}};
  for (const auto& preset : presets) {
    RunConfig base;
    base.mode = InterfaceMode::kGuiPlusDmi;
    base.repeats = 1;
    base.ApplyPolicy(preset.policy);
    TaskRunner reference_runner;
    const SuiteResult reference = reference_runner.RunSuite(suite, base);

    TaskRunner runner;
    RunConfig cfg = base;
    cfg.workers = 4;
    cfg.batch.enabled = true;
    cfg.batch.max_batch_size = 16;
    const SuiteResult batched = runner.RunSuite(suite, cfg);
    ExpectSameSuite(batched, reference, std::string("policy ") + preset.label);
    EXPECT_GT(runner.batch_stats().calls, 0u);
  }
}

}  // namespace
