#include <gtest/gtest.h>

#include <set>

#include "src/support/rng.h"
#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"
#include "src/topology/validate.h"

namespace {

using topo::Decycle;
using topo::Forest;
using topo::NavGraph;
using topo::NodeInfo;
using topo::SelectiveExternalize;

NodeInfo Node(const std::string& name,
              uia::ControlType type = uia::ControlType::kButton) {
  NodeInfo info;
  info.control_id = name + "|" + std::string(uia::ControlTypeName(type)) + "|test";
  info.name = name;
  info.type = type;
  return info;
}

// A -> B -> C chain plus root.
NavGraph ChainGraph() {
  NavGraph g;
  int a = g.AddNode(Node("A"));
  int b = g.AddNode(Node("B"));
  int c = g.AddNode(Node("C"));
  g.AddEdge(NavGraph::kRootIndex, a);
  g.AddEdge(NavGraph::kRootIndex + 0, a);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  return g;
}

// The paper's Figure 4 shape: two branches merging into a node with a
// substructure: root -> {A, B}; A -> M; B -> M; M -> {X, Y}.
NavGraph DiamondGraph() {
  NavGraph g;
  int a = g.AddNode(Node("A"));
  int b = g.AddNode(Node("B"));
  int m = g.AddNode(Node("M"));
  int x = g.AddNode(Node("X"));
  int y = g.AddNode(Node("Y"));
  g.AddEdge(NavGraph::kRootIndex, a);
  g.AddEdge(NavGraph::kRootIndex, b);
  g.AddEdge(a, m);
  g.AddEdge(b, m);
  g.AddEdge(m, x);
  g.AddEdge(m, y);
  return g;
}

// ----- NavGraph basics -----------------------------------------------------------

TEST(NavGraphTest, RootAlwaysPresent) {
  NavGraph g;
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.node(0).name, "[Root]");
}

TEST(NavGraphTest, AddNodeDeduplicatesById) {
  NavGraph g;
  int a1 = g.AddNode(Node("A"));
  int a2 = g.AddNode(Node("A"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(NavGraphTest, AddEdgeDeduplicatesAndDropsSelfLoops) {
  NavGraph g;
  int a = g.AddNode(Node("A"));
  g.AddEdge(0, a);
  g.AddEdge(0, a);
  g.AddEdge(a, a);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(NavGraphTest, StatsOnDiamond) {
  NavGraph g = DiamondGraph();
  topo::GraphStats stats = g.ComputeStats();
  EXPECT_EQ(stats.nodes, 6u);
  EXPECT_EQ(stats.edges, 6u);
  EXPECT_EQ(stats.merge_nodes, 1u);
  EXPECT_EQ(stats.max_depth, 3);
}

TEST(NavGraphTest, JsonRoundTrip) {
  NavGraph g = DiamondGraph();
  auto parsed = NavGraph::FromJson(g.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->node_count(), g.node_count());
  EXPECT_EQ(parsed->edge_count(), g.edge_count());
  EXPECT_EQ(parsed->node(3).name, g.node(3).name);
}

TEST(NavGraphTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(NavGraph::FromJson(jsonv::Value(3)).ok());
  auto bad = jsonv::Parse(R"({"nodes": [], "edges": [[0, 99]]})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(NavGraph::FromJson(*bad).ok());
}

// ----- Decycle -----------------------------------------------------------------

TEST(DecycleTest, AcyclicGraphUnchanged) {
  NavGraph g = DiamondGraph();
  auto result = Decycle(g);
  EXPECT_EQ(result.removed_back_edges, 0u);
  EXPECT_EQ(result.dag.node_count(), g.node_count());
  EXPECT_EQ(result.dag.edge_count(), g.edge_count());
}

TEST(DecycleTest, RemovesSimpleCycle) {
  NavGraph g = ChainGraph();
  g.AddEdge(g.FindNode(Node("C").control_id), g.FindNode(Node("A").control_id));
  auto result = Decycle(g);
  EXPECT_EQ(result.removed_back_edges, 1u);
  EXPECT_EQ(result.dag.edge_count(), 3u);
}

TEST(DecycleTest, RemovesTwoCycle) {
  NavGraph g;
  int a = g.AddNode(Node("A"));
  int b = g.AddNode(Node("B"));
  g.AddEdge(0, a);
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  auto result = Decycle(g);
  EXPECT_EQ(result.removed_back_edges, 1u);
}

TEST(DecycleTest, DropsUnreachableNodes) {
  NavGraph g = ChainGraph();
  g.AddNode(Node("Island"));
  auto result = Decycle(g);
  EXPECT_EQ(result.unreachable_dropped, 1u);
  EXPECT_EQ(result.dag.FindNode(Node("Island").control_id), -1);
}

TEST(DecycleTest, PreservesReachabilityOnRandomGraphs) {
  support::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    NavGraph g;
    std::vector<int> ids;
    for (int i = 0; i < 30; ++i) {
      ids.push_back(g.AddNode(Node("N" + std::to_string(trial) + "_" + std::to_string(i))));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      int parent = i == 0 ? 0 : ids[rng.NextBelow(i)];
      g.AddEdge(parent, ids[i]);
    }
    for (int e = 0; e < 40; ++e) {
      int from = ids[rng.NextBelow(ids.size())];
      int to = ids[rng.NextBelow(ids.size())];
      g.AddEdge(from, to);
    }
    auto result = Decycle(g);
    EXPECT_EQ(result.unreachable_dropped, 0u);
    auto reach = result.dag.Reachable();
    for (size_t i = 0; i < result.dag.node_count(); ++i) {
      EXPECT_TRUE(reach[i]) << "node " << i << " unreachable after decycle";
    }
    Forest f = SelectiveExternalize(result.dag, 8);
    EXPECT_GT(f.total_nodes(), 0u);
  }
}

// ----- NaiveCloneCount -----------------------------------------------------------

TEST(NaiveCloneTest, TreeCountsExactNodes) {
  EXPECT_EQ(topo::NaiveCloneCount(ChainGraph()), 4u);
}

TEST(NaiveCloneTest, DiamondDuplicatesSubstructure) {
  // f(M)=3; f(A)=f(B)=4; f(root)=1+4+4=9.
  EXPECT_EQ(topo::NaiveCloneCount(DiamondGraph()), 9u);
}

TEST(NaiveCloneTest, LayeredDiamondsExplodeExponentially) {
  NavGraph g;
  int prev = 0;
  for (int layer = 0; layer < 40; ++layer) {
    int a = g.AddNode(Node("A" + std::to_string(layer)));
    int b = g.AddNode(Node("B" + std::to_string(layer)));
    int join = g.AddNode(Node("J" + std::to_string(layer)));
    g.AddEdge(prev, a);
    g.AddEdge(prev, b);
    g.AddEdge(a, join);
    g.AddEdge(b, join);
    prev = join;
  }
  EXPECT_GT(topo::NaiveCloneCount(g), 1ULL << 40);
}

// ----- SelectiveExternalize -------------------------------------------------------

TEST(ExternalizeTest, ChainStaysSingleTree) {
  Forest f = SelectiveExternalize(ChainGraph(), 8);
  EXPECT_TRUE(f.shared().empty());
  EXPECT_EQ(f.total_nodes(), 4u);
  EXPECT_EQ(f.reference_count(), 0u);
}

TEST(ExternalizeTest, ThresholdZeroExternalizesEveryMergeNode) {
  Forest f = SelectiveExternalize(DiamondGraph(), 0);
  ASSERT_EQ(f.shared().size(), 1u);
  EXPECT_EQ(f.main().nodes.size(), 5u);      // root, A, ref, B, ref
  EXPECT_EQ(f.shared()[0].nodes.size(), 3u); // M, X, Y
  EXPECT_EQ(f.reference_count(), 2u);
}

TEST(ExternalizeTest, HugeThresholdReproducesNaiveClone) {
  Forest f = SelectiveExternalize(DiamondGraph(), 1ULL << 40);
  EXPECT_TRUE(f.shared().empty());
  EXPECT_EQ(f.total_nodes(), topo::NaiveCloneCount(DiamondGraph()));
}

TEST(ExternalizeTest, IdsAreConsecutiveFromOne) {
  Forest f = SelectiveExternalize(DiamondGraph(), 0);
  std::vector<int> ids = f.AllIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int>(i) + 1);
  }
  EXPECT_EQ(f.max_id(), static_cast<int>(f.total_nodes()));
}

TEST(ExternalizeTest, MainTreePathResolution) {
  NavGraph g = ChainGraph();
  Forest f = SelectiveExternalize(g, 8);
  int c_id = -1;
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (!n->is_reference && g.node(n->graph_index).name == "C") {
      c_id = id;
    }
  }
  ASSERT_GT(c_id, 0);
  auto path = f.ResolvePath(c_id, {});
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ(g.node((*path)[0]).name, "A");
  EXPECT_EQ(g.node((*path)[2]).name, "C");
}

TEST(ExternalizeTest, SharedTargetRequiresEntryRef) {
  NavGraph g = DiamondGraph();
  Forest f = SelectiveExternalize(g, 0);
  int x_id = -1;
  std::vector<int> ref_ids;
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (n->is_reference) {
      ref_ids.push_back(id);
    } else if (g.node(n->graph_index).name == "X") {
      x_id = id;
    }
  }
  ASSERT_GT(x_id, 0);
  ASSERT_EQ(ref_ids.size(), 2u);
  auto no_ref = f.ResolvePath(x_id, {});
  ASSERT_FALSE(no_ref.ok());
  EXPECT_EQ(no_ref.status().code(), support::StatusCode::kFailedPrecondition);
  std::set<std::string> first_hops;
  for (int ref : ref_ids) {
    auto path = f.ResolvePath(x_id, {ref});
    ASSERT_TRUE(path.ok()) << path.status().ToString();
    ASSERT_EQ(path->size(), 3u);  // A-or-B, M, X
    EXPECT_EQ(g.node(path->back()).name, "X");
    first_hops.insert(g.node((*path)[0]).name);
  }
  EXPECT_EQ(first_hops.size(), 2u);  // the two entry paths differ (A vs B)
}

TEST(ExternalizeTest, ReferenceNodeIsNotAValidTarget) {
  Forest f = SelectiveExternalize(DiamondGraph(), 0);
  bool tested = false;
  for (int id : f.AllIds()) {
    if (f.FindById(id)->is_reference) {
      auto path = f.ResolvePath(id, {});
      EXPECT_FALSE(path.ok());
      EXPECT_EQ(path.status().code(), support::StatusCode::kInvalidArgument);
      tested = true;
      break;
    }
  }
  EXPECT_TRUE(tested);
}

TEST(ExternalizeTest, LeafnessReflectsTopology) {
  NavGraph g = DiamondGraph();
  Forest f = SelectiveExternalize(g, 0);
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (n->is_reference) {
      EXPECT_FALSE(f.IsLeaf(id));
    } else {
      const std::string& name = g.node(n->graph_index).name;
      if (name == "X" || name == "Y") {
        EXPECT_TRUE(f.IsLeaf(id));
      } else {
        EXPECT_FALSE(f.IsLeaf(id)) << name;
      }
    }
  }
}

TEST(ExternalizeTest, UnknownIdGivesNotFound) {
  Forest f = SelectiveExternalize(ChainGraph(), 8);
  auto path = f.ResolvePath(9999, {});
  EXPECT_EQ(path.status().code(), support::StatusCode::kNotFound);
}

TEST(ExternalizeTest, DepthOfNodes) {
  NavGraph g = ChainGraph();
  Forest f = SelectiveExternalize(g, 8);
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    const std::string& name = g.node(n->graph_index).name;
    if (name == "C") {
      EXPECT_EQ(f.DepthOf(id), 3);
    }
    if (name == "[Root]") {
      EXPECT_EQ(f.DepthOf(id), 0);
    }
  }
}

// Threshold sweep as a parameterized property suite: for any threshold the
// forest must be complete and path-unambiguous.
class ThresholdSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThresholdSweep, RandomDagsValidateClean) {
  support::Rng rng(1234 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    NavGraph g;
    std::vector<int> ids;
    for (int i = 0; i < 60; ++i) {
      ids.push_back(
          g.AddNode(Node("T" + std::to_string(trial) + "_" + std::to_string(i))));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      int parent = i == 0 ? 0 : ids[rng.NextBelow(i)];
      g.AddEdge(parent, ids[i]);
    }
    for (int e = 0; e < 35; ++e) {
      size_t i = rng.NextBelow(ids.size() - 1);
      size_t j = i + 1 + rng.NextBelow(ids.size() - i - 1);
      g.AddEdge(ids[i], ids[j]);
    }
    auto dag = Decycle(g).dag;
    Forest f = SelectiveExternalize(dag, GetParam());
    topo::ValidationReport report = topo::ValidateForest(dag, f);
    EXPECT_TRUE(report.ok) << "threshold " << GetParam() << ": "
                           << (report.problems.empty() ? "" : report.problems[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0, 2, 8, 24, 128, 4096));

// Note: forest size is NOT strictly monotone in the threshold — externalizing
// a tiny merge node (subtree + one ref per in-edge) can cost slightly more
// than cloning it. The real invariants: the forest never exceeds the naive
// clone count, reaches it exactly at a huge threshold, and stays within a
// small constant of the DAG size at practical thresholds (linear growth).
TEST(ExternalizeTest, SizeBoundsAcrossThresholds) {
  support::Rng rng(777);
  NavGraph g;
  std::vector<int> ids;
  for (int i = 0; i < 80; ++i) {
    ids.push_back(g.AddNode(Node("S" + std::to_string(i))));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    int parent = i == 0 ? 0 : ids[rng.NextBelow(i)];
    g.AddEdge(parent, ids[i]);
  }
  for (int e = 0; e < 60; ++e) {
    size_t i = rng.NextBelow(ids.size() - 1);
    size_t j = i + 1 + rng.NextBelow(ids.size() - i - 1);
    g.AddEdge(ids[i], ids[j]);
  }
  auto dag = Decycle(g).dag;
  const uint64_t naive = topo::NaiveCloneCount(dag);
  for (uint64_t threshold : {0ULL, 2ULL, 8ULL, 32ULL, 128ULL}) {
    size_t total = SelectiveExternalize(dag, threshold).total_nodes();
    EXPECT_LE(total, naive) << "threshold " << threshold;
    EXPECT_GE(total, dag.node_count()) << "threshold " << threshold;
    // Linear growth at practical thresholds (paper §3.2 "ensures linear
    // node growth"): stays within a small constant of the DAG size.
    if (threshold <= 32) {
      EXPECT_LE(total, 8 * dag.node_count()) << "threshold " << threshold;
    }
  }
  EXPECT_EQ(SelectiveExternalize(dag, naive + 1).total_nodes(), naive);
}

TEST(ValidateTest, CompletenessCatchesMissingNodes) {
  NavGraph g = DiamondGraph();
  Forest f = SelectiveExternalize(ChainGraph(), 8);  // forest of the wrong graph
  topo::ValidationReport report = topo::ValidateCompleteness(g, f);
  EXPECT_FALSE(report.ok);
}


TEST(ExternalizeTest, NestedReferenceChainsResolveWithBacktracking) {
  // Two levels of shared subtrees: root -> {A, B} -> S1; S1 -> {C, D} -> S2;
  // S2 -> target. Resolving the target needs a chain of two refs, and the
  // provided set may contain refs that lead nowhere — backtracking must pick
  // a viable combination.
  NavGraph g;
  int a = g.AddNode(Node("A"));
  int b = g.AddNode(Node("B"));
  int s1 = g.AddNode(Node("S1"));
  int c = g.AddNode(Node("C"));
  int d = g.AddNode(Node("D"));
  int s2 = g.AddNode(Node("S2"));
  int target = g.AddNode(Node("Target"));
  g.AddEdge(0, a);
  g.AddEdge(0, b);
  g.AddEdge(a, s1);
  g.AddEdge(b, s1);
  g.AddEdge(s1, c);
  g.AddEdge(s1, d);
  g.AddEdge(c, s2);
  g.AddEdge(d, s2);
  g.AddEdge(s2, target);
  Forest f = SelectiveExternalize(g, 0);
  ASSERT_EQ(f.shared().size(), 2u);

  int target_id = -1;
  std::vector<int> all_refs;
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (n->is_reference) {
      all_refs.push_back(id);
    } else if (g.node(n->graph_index).name == "Target") {
      target_id = id;
    }
  }
  ASSERT_GT(target_id, 0);
  ASSERT_EQ(all_refs.size(), 4u);  // two refs per subtree
  // With the full ref set, resolution succeeds and yields a valid walk of
  // length 5: hop, S1, hop, S2, Target.
  auto path = f.ResolvePath(target_id, all_refs);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->size(), 5u);
  EXPECT_EQ(g.node(path->back()).name, "Target");
  // With only an S2-level ref the chain cannot reach the main tree.
  for (int ref : all_refs) {
    const topo::TreeNode* n = f.FindById(ref);
    auto loc = f.LocateById(ref);
    if (loc->tree >= 0) {  // a ref living inside S1
      auto partial = f.ResolvePath(target_id, {ref});
      EXPECT_FALSE(partial.ok());
      (void)n;
      break;
    }
  }
}

TEST(ExternalizeTest, ReverseReferenceIndexMatchesScan) {
  // The precomputed reverse-reference index must agree with a brute scan over
  // every tree (main first, then shared, nodes in order) — both the flat
  // AllReferences() view and the per-subtree RefsTo() buckets.
  support::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    NavGraph g;
    std::vector<int> ids;
    for (int i = 0; i < 120; ++i) {
      ids.push_back(g.AddNode(Node("R" + std::to_string(trial) + "_" + std::to_string(i))));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      g.AddEdge(i == 0 ? 0 : ids[rng.NextBelow(i)], ids[i]);
    }
    for (int e = 0; e < 60; ++e) {
      size_t i = rng.NextBelow(ids.size() - 1);
      size_t j = i + 1 + rng.NextBelow(ids.size() - i - 1);
      g.AddEdge(ids[i], ids[j]);
    }
    Forest f = SelectiveExternalize(Decycle(g).dag, 0);

    std::vector<std::pair<int, int>> scanned;  // (ref_id, subtree)
    auto scan = [&scanned](const topo::Tree& tree) {
      for (const topo::TreeNode& n : tree.nodes) {
        if (n.is_reference) {
          scanned.emplace_back(n.id, n.ref_subtree);
        }
      }
    };
    scan(f.main());
    for (const topo::Tree& t : f.shared()) {
      scan(t);
    }

    ASSERT_EQ(f.AllReferences().size(), scanned.size());
    ASSERT_EQ(f.reference_count(), scanned.size());
    for (size_t i = 0; i < scanned.size(); ++i) {
      EXPECT_EQ(f.AllReferences()[i].ref_id, scanned[i].first);
      EXPECT_EQ(f.AllReferences()[i].subtree, scanned[i].second);
    }
    for (size_t s = 0; s < f.shared().size(); ++s) {
      std::vector<int> expected;
      for (const auto& [ref_id, subtree] : scanned) {
        if (subtree == static_cast<int>(s)) {
          expected.push_back(ref_id);
        }
      }
      EXPECT_EQ(f.RefsTo(static_cast<int>(s)), expected) << "subtree " << s;
    }
    // Out-of-range queries are safely empty.
    EXPECT_TRUE(f.RefsTo(-1).empty());
    EXPECT_TRUE(f.RefsTo(static_cast<int>(f.shared().size())).empty());
  }
}

TEST(ExternalizeTest, ResolvePathBacktracksAcrossRefsIntoSameSubtree) {
  // M is shared with three references: two from the main tree (via A and B)
  // and one from inside another shared subtree P. When the provided entry set
  // lists the dead-end ref (inside P, with no way to climb out of P) first,
  // resolution must backtrack onto a main-tree ref rather than fail.
  NavGraph g;
  int a = g.AddNode(Node("A"));
  int b = g.AddNode(Node("B"));
  int c = g.AddNode(Node("C"));
  int d = g.AddNode(Node("D"));
  int m = g.AddNode(Node("M"));
  int p = g.AddNode(Node("P"));
  int x = g.AddNode(Node("X"));
  g.AddEdge(0, a);
  g.AddEdge(0, b);
  g.AddEdge(0, c);
  g.AddEdge(0, d);
  g.AddEdge(a, m);
  g.AddEdge(b, m);
  g.AddEdge(c, p);
  g.AddEdge(d, p);
  g.AddEdge(p, m);
  g.AddEdge(m, x);
  Forest f = SelectiveExternalize(g, 0);
  ASSERT_EQ(f.shared().size(), 2u);

  int target_id = -1;
  int subtree_m = -1;
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (!n->is_reference && g.node(n->graph_index).name == "X") {
      target_id = id;
      subtree_m = f.LocateById(id)->tree;
    }
  }
  ASSERT_GT(target_id, 0);
  ASSERT_GE(subtree_m, 0);

  const std::vector<int>& refs_m = f.RefsTo(subtree_m);
  ASSERT_EQ(refs_m.size(), 3u);  // A-hosted, B-hosted, P-hosted
  int dead_end_ref = -1;
  int main_ref = -1;
  for (int ref : refs_m) {
    if (f.LocateById(ref)->tree >= 0) {
      dead_end_ref = ref;  // lives inside P's subtree
    } else if (main_ref < 0) {
      main_ref = ref;
    }
  }
  ASSERT_GT(dead_end_ref, 0);
  ASSERT_GT(main_ref, 0);

  // Dead-end ref alone: cannot climb out of P without a P-level ref.
  EXPECT_FALSE(f.ResolvePath(target_id, {dead_end_ref}).ok());
  // Dead-end first, viable main-tree ref second: backtracking succeeds and
  // the path stays entirely inside the main tree + M.
  auto path = f.ResolvePath(target_id, {dead_end_ref, main_ref});
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->size(), 3u);  // host, M, X
  EXPECT_EQ(g.node(path->back()).name, "X");
  // Dead-end plus a P-level entry ref: the nested chain through P also works
  // and is longer (host, P, M, X).
  const std::vector<int>& refs_p =
      f.RefsTo(f.LocateById(dead_end_ref)->tree);
  ASSERT_FALSE(refs_p.empty());
  auto nested = f.ResolvePath(target_id, {dead_end_ref, refs_p[0]});
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(nested->size(), 4u);
  EXPECT_EQ(g.node(nested->back()).name, "X");
}

TEST(NaiveCloneTest, SaturatesInsteadOfOverflowing) {
  // 80 stacked diamonds: 2^80 >> uint64; the counter must saturate cleanly.
  NavGraph g;
  int prev = 0;
  for (int layer = 0; layer < 80; ++layer) {
    int a = g.AddNode(Node("A" + std::to_string(layer)));
    int b = g.AddNode(Node("B" + std::to_string(layer)));
    int j = g.AddNode(Node("J" + std::to_string(layer)));
    g.AddEdge(prev, a);
    g.AddEdge(prev, b);
    g.AddEdge(a, j);
    g.AddEdge(b, j);
    prev = j;
  }
  EXPECT_EQ(topo::NaiveCloneCount(g), topo::kCloneCountSaturated);
}

}  // namespace
