#include <gtest/gtest.h>

#include "src/text/similarity.h"
#include "src/text/tokens.h"

namespace {

// ----- tokens ------------------------------------------------------------------

TEST(TokensTest, EmptyIsZero) { EXPECT_EQ(textutil::CountTokens(""), 0u); }

TEST(TokensTest, ShortWordsOneTokenEach) {
  EXPECT_EQ(textutil::CountTokens("bold"), 1u);
  EXPECT_EQ(textutil::CountTokens("font color"), 2u);
}

TEST(TokensTest, LongWordsSplit) {
  // "internationalization" = 20 chars -> 5 chunks of 4.
  EXPECT_EQ(textutil::CountTokens("internationalization"), 5u);
}

TEST(TokensTest, DigitsGroupInThrees) {
  EXPECT_EQ(textutil::CountTokens("123456"), 2u);
  EXPECT_EQ(textutil::CountTokens("1234567"), 3u);
}

TEST(TokensTest, PunctuationCounts) {
  EXPECT_EQ(textutil::CountTokens("a,b"), 3u);
  EXPECT_EQ(textutil::CountTokens("(x)"), 3u);
}

TEST(TokensTest, RepeatedSeparatorRunsCompress) {
  EXPECT_EQ(textutil::CountTokens("----"), 1u);
  EXPECT_EQ(textutil::CountTokens("--------"), 2u);
}

TEST(TokensTest, WhitespaceIsFree) {
  EXPECT_EQ(textutil::CountTokens("  a   b  "), textutil::CountTokens("a b"));
}

TEST(TokensTest, ControlDescriptionAveragesNearPaperEstimate) {
  // Paper §5.4: ~15 tokens per serialized control. A representative
  // serialized control line should land in a plausible band around that.
  const std::string line =
      "Font Color(SplitButton)(Opens the color palette for text color)_214"
      "[Blue_87,Dark Red_88]";
  size_t tokens = textutil::CountTokens(line);
  EXPECT_GE(tokens, 10u);
  EXPECT_LE(tokens, 40u);
}

TEST(TokensTest, StreamingCountMatchesPieces) {
  // CountTokens is a single streaming pass; TokenizePieces is the reference
  // implementation. They must agree on every input shape.
  const char* samples[] = {
      "",
      "bold",
      "Font Color(SplitButton)(Opens the color palette)_214[Blue_87,Dark Red_88]",
      "# Navigation topology\n## Main tree\n[Root](Window)_1[File(MenuItem)_2]",
      "  leading   and   trailing   whitespace  ",
      "digits 123456789 mixed with words and --- separator runs....",
      "internationalization antidisestablishmentarianism a b c",
      "@ref->S0_42,@ref->S1_77\n## Entry map (ref_id->subtree:root_id)\n42->S0:9\n",
  };
  for (const char* s : samples) {
    EXPECT_EQ(textutil::CountTokens(s), textutil::TokenizePieces(s).size()) << s;
  }
}

TEST(TokensTest, CountTokensAppendSumsSegmentsAtWhitespace) {
  // Segment sums equal the concatenated count when split points fall on
  // whitespace — the contract prompt assembly relies on (static segments end
  // with '\n').
  const std::string head = "# DMI usage\nPrefer DMI. visit([...]) accesses ids.\n";
  const std::string mid = "# Navigation topology\n## Main tree\nRoot(Window)_1\n";
  const std::string tail = "\n# Current screen\nA1 Bold (Button)\nA2 Italic (Button)\n";
  size_t total = 0;
  size_t h = textutil::CountTokensAppend(head, &total);
  size_t m = textutil::CountTokensAppend(mid, &total);
  size_t t = textutil::CountTokensAppend(tail, &total);
  EXPECT_EQ(h, textutil::CountTokens(head));
  EXPECT_EQ(m, textutil::CountTokens(mid));
  EXPECT_EQ(t, textutil::CountTokens(tail));
  EXPECT_EQ(total, h + m + t);
  EXPECT_EQ(total, textutil::CountTokens(head + mid + tail));
}

TEST(TokensTest, TruncateToTokensNoCutWhenUnderBudget) {
  EXPECT_EQ(textutil::TruncateToTokens("a b c", 10), "a b c");
}

TEST(TokensTest, TruncateToTokensCutsAtBoundary) {
  std::string out = textutil::TruncateToTokens("alpha beta gamma delta", 2);
  EXPECT_EQ(out, std::string("alpha beta") + "…");
}

TEST(TokensTest, TruncateToZero) {
  EXPECT_EQ(textutil::TruncateToTokens("anything", 0), "");
}

TEST(TokensTest, TruncatedTextTokenCountWithinBudget) {
  const std::string text =
      "The quick brown fox jumps over the lazy dog repeatedly and often";
  for (size_t budget : {1u, 3u, 5u, 8u}) {
    std::string cut = textutil::TruncateToTokens(text, budget);
    // Remove the ellipsis marker before recounting.
    if (cut.size() >= 3 && cut.substr(cut.size() - 3) == "…") {
      cut = cut.substr(0, cut.size() - 3);
    }
    EXPECT_LE(textutil::CountTokens(cut), budget);
  }
}

// ----- similarity ----------------------------------------------------------------

TEST(SimilarityTest, EditDistanceBasics) {
  EXPECT_EQ(textutil::EditDistance("", ""), 0u);
  EXPECT_EQ(textutil::EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(textutil::EditDistance("abc", "abd"), 1u);
  EXPECT_EQ(textutil::EditDistance("abc", ""), 3u);
  EXPECT_EQ(textutil::EditDistance("kitten", "sitting"), 3u);
}

TEST(SimilarityTest, EditDistanceSymmetric) {
  EXPECT_EQ(textutil::EditDistance("Bold", "Bold (Ctrl+B)"),
            textutil::EditDistance("Bold (Ctrl+B)", "Bold"));
}

TEST(SimilarityTest, NameSimilarityIdentical) {
  EXPECT_DOUBLE_EQ(textutil::NameSimilarity("Apply to All", "Apply to All"), 1.0);
  EXPECT_DOUBLE_EQ(textutil::NameSimilarity("", ""), 1.0);
}

TEST(SimilarityTest, NameSimilarityBounds) {
  double s = textutil::NameSimilarity("Font Color", "Underline Color");
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(SimilarityTest, TokenSetIgnoresDecoration) {
  // The exact hazard the fuzzy matcher must survive: decorated names.
  EXPECT_GT(textutil::TokenSetRatio("Bold", "Bold (Ctrl+B)"), 0.3);
  EXPECT_DOUBLE_EQ(textutil::TokenSetRatio("Apply to All", "all apply TO"), 1.0);
}

TEST(SimilarityTest, TokenSetDisjoint) {
  EXPECT_DOUBLE_EQ(textutil::TokenSetRatio("alpha", "beta"), 0.0);
}

TEST(SimilarityTest, FuzzyScoreAcceptsTypicalVariations) {
  // Every decoration variant the instability injector produces must stay
  // above the matcher threshold (0.72) against the true name.
  const std::string base = "Apply to All";
  for (const std::string& variant :
       {base + "...", base + " ", base + " (Ctrl+K)", base + " control"}) {
    EXPECT_GT(textutil::FuzzyScore(base, variant), 0.72) << variant;
  }
}

TEST(SimilarityTest, FuzzyScoreRejectsDifferentControls) {
  EXPECT_LT(textutil::FuzzyScore("Font Color", "Page Color"), 0.72);
  EXPECT_LT(textutil::FuzzyScore("OK", "Cancel"), 0.5);
}

}  // namespace
