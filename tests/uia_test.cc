#include <gtest/gtest.h>

#include "src/gui/application.h"
#include "src/gui/control.h"
#include "src/uia/control_type.h"
#include "src/uia/tree.h"

namespace {

// ----- control types / patterns ----------------------------------------------

TEST(ControlTypeTest, FortyOneTypesWithUniqueNames) {
  std::set<std::string> names;
  for (int i = 0; i < uia::kNumControlTypes; ++i) {
    names.insert(std::string(uia::ControlTypeName(static_cast<uia::ControlType>(i))));
  }
  EXPECT_EQ(names.size(), 41u);
}

TEST(ControlTypeTest, RoundTripByName) {
  for (int i = 0; i < uia::kNumControlTypes; ++i) {
    auto t = static_cast<uia::ControlType>(i);
    auto parsed = uia::ControlTypeFromName(uia::ControlTypeName(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(uia::ControlTypeFromName("NotAType").has_value());
}

TEST(ControlTypeTest, ThirtyFourPatternsWithUniqueNames) {
  std::set<std::string> names;
  for (int i = 0; i < uia::kNumPatterns; ++i) {
    names.insert(std::string(uia::PatternName(static_cast<uia::PatternId>(i))));
  }
  EXPECT_EQ(names.size(), 34u);
}

TEST(ControlTypeTest, KeyTypesMatchPaperList) {
  // §4.2: full descriptions are attached for Menu, TabItem, ComboBox, Group,
  // Button (and kin).
  EXPECT_TRUE(uia::IsKeyControlType(uia::ControlType::kMenu));
  EXPECT_TRUE(uia::IsKeyControlType(uia::ControlType::kTabItem));
  EXPECT_TRUE(uia::IsKeyControlType(uia::ControlType::kComboBox));
  EXPECT_TRUE(uia::IsKeyControlType(uia::ControlType::kGroup));
  EXPECT_TRUE(uia::IsKeyControlType(uia::ControlType::kButton));
  EXPECT_FALSE(uia::IsKeyControlType(uia::ControlType::kText));
  EXPECT_FALSE(uia::IsKeyControlType(uia::ControlType::kDataItem));
}

// ----- tree walking (over a small gsim app) ------------------------------------

class TreeFixture : public ::testing::Test {
 protected:
  TreeFixture() : app_("TestApp") {
    gsim::Control& root = app_.main_window().root();
    gsim::Control* bar = root.NewChild("Bar", uia::ControlType::kToolBar);
    bar->NewChild("Alpha", uia::ControlType::kButton)->SetCommand("a");
    gsim::Control* menu_host = bar->NewChild("Menu Host", uia::ControlType::kMenuItem);
    auto popup = std::make_unique<gsim::Control>("Popup", uia::ControlType::kMenu);
    popup->NewChild("Hidden Item", uia::ControlType::kButton)->SetCommand("h");
    menu_host->SetPopup(std::move(popup));
    root.NewChild("Beta", uia::ControlType::kText);
  }

  gsim::Application app_;
};

TEST_F(TreeFixture, CountNodesExcludesClosedPopups) {
  // root + Bar + Alpha + MenuHost + Beta = 5 (popup closed).
  EXPECT_EQ(uia::CountNodes(app_.main_window().root()), 5u);
}

TEST_F(TreeFixture, CountNodesIncludesOpenPopups) {
  gsim::Control* host =
      static_cast<gsim::Control*>(uia::FindByName(app_.main_window().root(), "Menu Host"));
  ASSERT_NE(host, nullptr);
  ASSERT_TRUE(app_.Click(*host).ok());
  EXPECT_EQ(uia::CountNodes(app_.main_window().root()), 7u);
}

TEST_F(TreeFixture, FindByNameAndRuntimeId) {
  uia::Element* alpha = uia::FindByName(app_.main_window().root(), "Alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->Name(), "Alpha");
  EXPECT_EQ(uia::FindByRuntimeId(app_.main_window().root(), alpha->RuntimeId()), alpha);
  EXPECT_EQ(uia::FindByName(app_.main_window().root(), "Nope"), nullptr);
}

TEST_F(TreeFixture, MaxDepth) {
  EXPECT_EQ(uia::MaxDepth(app_.main_window().root()), 3);
}

TEST_F(TreeFixture, AncestorPath) {
  uia::Element* alpha = uia::FindByName(app_.main_window().root(), "Alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(uia::AncestorPath(*alpha), "TestApp/Bar");
}

TEST_F(TreeFixture, WalkPrunesSubtree) {
  size_t visited = 0;
  uia::Walk(app_.main_window().root(), [&](uia::Element& e, int) {
    ++visited;
    return e.Name() != "Bar";  // prune below Bar
  });
  EXPECT_EQ(visited, 3u);  // root, Bar, Beta
}

TEST_F(TreeFixture, SnapshotDiffFindsNewlyRevealed) {
  uia::Snapshot before = uia::Capture(app_.main_window().root());
  gsim::Control* host =
      static_cast<gsim::Control*>(uia::FindByName(app_.main_window().root(), "Menu Host"));
  ASSERT_TRUE(app_.Click(*host).ok());
  uia::Snapshot after = uia::Capture(app_.main_window().root());
  auto fresh = uia::NewEntries(before, after);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].name, "Popup");
  EXPECT_EQ(fresh[1].name, "Hidden Item");
}

TEST_F(TreeFixture, FindAllByPredicate) {
  auto buttons = uia::FindAll(app_.main_window().root(), [](uia::Element& e) {
    return e.Type() == uia::ControlType::kButton;
  });
  EXPECT_EQ(buttons.size(), 1u);  // popup closed, so "Hidden Item" not reachable
}

// ----- pattern adapters ----------------------------------------------------------

TEST(PatternTest, InvokeAdapterClicksThroughApplication) {
  gsim::Application app("A");
  gsim::Control* b = app.main_window().root().NewChild("B", uia::ControlType::kButton);
  b->SetCommand("x");
  app.main_window().root().PropagateContext(&app.main_window(), &app);
  auto* invoke = uia::PatternCast<uia::InvokePattern>(*b);
  ASSERT_NE(invoke, nullptr);
  EXPECT_TRUE(invoke->Invoke().ok());
  EXPECT_EQ(app.stats().clicks, 1u);
}

TEST(PatternTest, UnsupportedPatternReturnsNull) {
  gsim::Application app("A");
  gsim::Control* t = app.main_window().root().NewChild("T", uia::ControlType::kText);
  EXPECT_EQ(t->GetPattern(uia::PatternId::kScroll), nullptr);
  EXPECT_EQ(t->GetPattern(uia::PatternId::kToggle), nullptr);
}

TEST(PatternTest, ToggleAdapterFlipsState) {
  gsim::Application app("A");
  gsim::Control* cb = app.main_window().root().NewChild("CB", uia::ControlType::kCheckBox);
  cb->SetClickEffect(gsim::ClickEffect::kToggle);
  app.main_window().root().PropagateContext(&app.main_window(), &app);
  auto* toggle = uia::PatternCast<uia::TogglePattern>(*cb);
  ASSERT_NE(toggle, nullptr);
  EXPECT_EQ(toggle->State(), uia::ToggleState::kOff);
  ASSERT_TRUE(toggle->Toggle().ok());
  EXPECT_EQ(toggle->State(), uia::ToggleState::kOn);
}

TEST(PatternTest, ExpandCollapseOnPopupHost) {
  gsim::Application app("A");
  gsim::Control* host = app.main_window().root().NewChild("M", uia::ControlType::kMenuItem);
  host->SetPopup(std::make_unique<gsim::Control>("P", uia::ControlType::kMenu));
  app.main_window().root().PropagateContext(&app.main_window(), &app);
  auto* ec = uia::PatternCast<uia::ExpandCollapsePattern>(*host);
  ASSERT_NE(ec, nullptr);
  EXPECT_EQ(ec->State(), uia::ExpandCollapseState::kCollapsed);
  ASSERT_TRUE(ec->Expand().ok());
  EXPECT_EQ(ec->State(), uia::ExpandCollapseState::kExpanded);
  ASSERT_TRUE(ec->Collapse().ok());
  EXPECT_EQ(ec->State(), uia::ExpandCollapseState::kCollapsed);
}

TEST(PatternTest, ValueAdapterOnEdit) {
  gsim::Application app("A");
  gsim::Control* e = app.main_window().root().NewChild("E", uia::ControlType::kEdit);
  app.main_window().root().PropagateContext(&app.main_window(), &app);
  auto* value = uia::PatternCast<uia::ValuePattern>(*e);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->GetValue(), "");
  ASSERT_TRUE(value->SetValue("42").ok());
  EXPECT_EQ(value->GetValue(), "42");
}

TEST(PatternTest, DisabledEditRejectsSetValue) {
  gsim::Application app("A");
  gsim::Control* e = app.main_window().root().NewChild("E", uia::ControlType::kEdit);
  e->SetEnabled(false);
  app.main_window().root().PropagateContext(&app.main_window(), &app);
  auto* value = uia::PatternCast<uia::ValuePattern>(*e);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->SetValue("x").code(), support::StatusCode::kFailedPrecondition);
}

}  // namespace
