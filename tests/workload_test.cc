#include <gtest/gtest.h>

#include <set>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/workload/tasks.h"

namespace {

using workload::AppKind;
using workload::BuildOsworldWSuite;
using workload::Task;

TEST(SuiteTest, TwentySevenTasksNinePerApp) {
  auto suite = BuildOsworldWSuite();
  EXPECT_EQ(suite.size(), 27u);
  EXPECT_EQ(workload::TasksForApp(suite, AppKind::kWord).size(), 9u);
  EXPECT_EQ(workload::TasksForApp(suite, AppKind::kExcel).size(), 9u);
  EXPECT_EQ(workload::TasksForApp(suite, AppKind::kPpoint).size(), 9u);
}

TEST(SuiteTest, UniqueIdsAndCompleteDefinitions) {
  auto suite = BuildOsworldWSuite();
  std::set<std::string> ids;
  for (const Task& t : suite) {
    EXPECT_TRUE(ids.insert(t.id).second) << "duplicate id " << t.id;
    EXPECT_FALSE(t.description.empty()) << t.id;
    EXPECT_FALSE(t.dmi_plan.empty()) << t.id;
    EXPECT_FALSE(t.gui_plan.empty()) << t.id;
    EXPECT_TRUE(static_cast<bool>(t.verify)) << t.id;
    EXPECT_TRUE(static_cast<bool>(t.make_app)) << t.id;
  }
}

TEST(SuiteTest, FlagMixMatchesDesign) {
  auto suite = BuildOsworldWSuite();
  int ambiguous = 0;
  int subtle = 0;
  int visual = 0;
  for (const Task& t : suite) {
    ambiguous += t.ambiguous ? 1 : 0;
    subtle += t.subtle_semantics ? 1 : 0;
    visual += t.visual_heavy ? 1 : 0;
  }
  EXPECT_EQ(ambiguous, 3);
  EXPECT_EQ(subtle, 3);
  EXPECT_EQ(visual, 4);
}

TEST(SuiteTest, FreshAppsFailVerification) {
  // No task may be satisfied by a pristine application.
  for (const Task& t : BuildOsworldWSuite()) {
    auto app = t.make_app();
    EXPECT_FALSE(t.verify(*app)) << t.id << " verifies on a fresh app";
  }
}

TEST(SuiteTest, MakeAppMatchesAppKind) {
  for (const Task& t : BuildOsworldWSuite()) {
    auto app = t.make_app();
    switch (t.app) {
      case AppKind::kWord:
        EXPECT_NE(dynamic_cast<apps::WordSim*>(app.get()), nullptr) << t.id;
        break;
      case AppKind::kExcel:
        EXPECT_NE(dynamic_cast<apps::ExcelSim*>(app.get()), nullptr) << t.id;
        break;
      case AppKind::kPpoint:
        EXPECT_NE(dynamic_cast<apps::PpointSim*>(app.get()), nullptr) << t.id;
        break;
    }
  }
}

TEST(SuiteTest, GuiPlansContainFunctionalActions) {
  for (const Task& t : BuildOsworldWSuite()) {
    bool any_functional = false;
    for (const auto& a : t.gui_plan) {
      any_functional |= a.functional;
      // Drag/selection composites are implicitly functional via their kind.
      any_functional |= a.kind == workload::GuiAction::Kind::kDragScroll ||
                        a.kind == workload::GuiAction::Kind::kSelectText ||
                        a.kind == workload::GuiAction::Kind::kSelectCells;
    }
    EXPECT_TRUE(any_functional) << t.id;
  }
}

// Property: the GUI plan, executed perfectly (no errors, no instability),
// must satisfy the verifier — the ground truth is actually correct. This is
// checked end-to-end through the agents in agent_test.cc; here we validate
// the plan structure is executable order-wise (clicks before types, etc.).
TEST(SuiteTest, TypeActionsFollowClickOnEdit) {
  for (const Task& t : BuildOsworldWSuite()) {
    for (size_t i = 0; i < t.gui_plan.size(); ++i) {
      if (t.gui_plan[i].kind == workload::GuiAction::Kind::kType) {
        ASSERT_GT(i, 0u) << t.id << ": Type cannot be the first action";
        EXPECT_EQ(t.gui_plan[i - 1].kind, workload::GuiAction::Kind::kClick)
            << t.id << ": Type must follow the focusing click";
      }
    }
  }
}

TEST(SuiteTest, AppKindNames) {
  EXPECT_STREQ(workload::AppKindName(AppKind::kWord), "WordSim");
  EXPECT_STREQ(workload::AppKindName(AppKind::kExcel), "ExcelSim");
  EXPECT_STREQ(workload::AppKindName(AppKind::kPpoint), "PpointSim");
}

}  // namespace
