#include <gtest/gtest.h>

#include "src/gui/application.h"
#include "src/gui/input.h"
#include "src/gui/instability.h"
#include "src/gui/screen.h"
#include "src/gui/window.h"
#include "src/uia/tree.h"

#include <algorithm>

namespace {

// A small app with menus, a dialog, tabs, and an external trap — enough to
// exercise every click effect.
class MiniApp : public gsim::Application {
 public:
  MiniApp() : gsim::Application("MiniApp") {
    gsim::Control& root = main_window().root();

    gsim::Control* tabs = root.NewChild("Tabs", uia::ControlType::kTab);
    tab_a_ = tabs->NewChild("Tab A", uia::ControlType::kTabItem);
    tab_a_->SetClickEffect(gsim::ClickEffect::kSwitchTab);
    gsim::Control* panel_a =
        tab_a_->SetPopup(std::make_unique<gsim::Control>("Panel A", uia::ControlType::kPane));
    tab_a_->SetClickEffect(gsim::ClickEffect::kSwitchTab);
    tab_a_->set_selected(true);
    tab_a_->SetPopupOpen(true);
    tab_b_ = tabs->NewChild("Tab B", uia::ControlType::kTabItem);
    tab_b_->SetClickEffect(gsim::ClickEffect::kSwitchTab);
    gsim::Control* panel_b =
        tab_b_->SetPopup(std::make_unique<gsim::Control>("Panel B", uia::ControlType::kPane));
    tab_b_->SetClickEffect(gsim::ClickEffect::kSwitchTab);

    menu_host_ = panel_a->NewChild("Menu", uia::ControlType::kMenuItem);
    auto popup = std::make_unique<gsim::Control>("Menu Popup", uia::ControlType::kMenu);
    action_item_ = popup->NewChild("Do Thing", uia::ControlType::kButton);
    action_item_->SetCommand("do.thing");
    submenu_host_ = popup->NewChild("Submenu", uia::ControlType::kMenuItem);
    auto subpopup = std::make_unique<gsim::Control>("Sub Popup", uia::ControlType::kMenu);
    sub_item_ = subpopup->NewChild("Deep Thing", uia::ControlType::kButton);
    sub_item_->SetCommand("deep.thing");
    submenu_host_->SetPopup(std::move(subpopup));
    menu_host_->SetPopup(std::move(popup));

    launcher_ = panel_b->NewChild("Open Dialog", uia::ControlType::kButton);
    launcher_->SetDialogId("dlg");

    external_ = panel_a->NewChild("Web Link", uia::ControlType::kHyperlink);
    external_->SetClickEffect(gsim::ClickEffect::kExternal);

    edit_ = panel_a->NewChild("Name Field", uia::ControlType::kEdit);

    auto dialog = std::make_unique<gsim::Window>("Dialog", /*modal=*/true);
    dlg_ok_ = dialog->root().NewChild("OK", uia::ControlType::kButton);
    dlg_ok_->SetCloseDisposition(gsim::CloseDisposition::kCommit);
    dlg_ok_->SetCommand("dlg.commit");
    dlg_ok_->SetClickEffect(gsim::ClickEffect::kCloseWindow);
    dlg_cancel_ = dialog->root().NewChild("Cancel", uia::ControlType::kButton);
    dlg_cancel_->SetCloseDisposition(gsim::CloseDisposition::kCancel);
    dialog->root().NewChild("Some Option", uia::ControlType::kCheckBox)
        ->SetClickEffect(gsim::ClickEffect::kToggle);
    RegisterDialog("dlg", std::move(dialog));
  }

  support::Status ExecuteCommand(gsim::Control& source, const std::string& command) override {
    (void)source;
    commands.push_back(command);
    return support::Status::Ok();
  }

  std::vector<std::string> commands;
  gsim::Control* tab_a_;
  gsim::Control* tab_b_;
  gsim::Control* menu_host_;
  gsim::Control* action_item_;
  gsim::Control* submenu_host_;
  gsim::Control* sub_item_;
  gsim::Control* launcher_;
  gsim::Control* external_;
  gsim::Control* edit_;
  gsim::Control* dlg_ok_;
  gsim::Control* dlg_cancel_;
};

TEST(GuiClickTest, MenuRevealsAndCommandCloses) {
  MiniApp app;
  EXPECT_FALSE(app.IsAttached(*app.action_item_));
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  EXPECT_TRUE(app.IsAttached(*app.action_item_));
  ASSERT_TRUE(app.Click(*app.action_item_).ok());
  EXPECT_EQ(app.commands, std::vector<std::string>{"do.thing"});
  // Invoking a functional item dismisses the menu.
  EXPECT_FALSE(app.IsAttached(*app.action_item_));
}

TEST(GuiClickTest, NestedMenusOpenAndCollapseTogether) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  ASSERT_TRUE(app.Click(*app.submenu_host_).ok());
  EXPECT_TRUE(app.IsAttached(*app.sub_item_));
  // Clicking something outside the chain closes both levels.
  ASSERT_TRUE(app.Click(*app.edit_).ok());
  EXPECT_FALSE(app.IsAttached(*app.sub_item_));
  EXPECT_FALSE(app.IsAttached(*app.action_item_));
}

TEST(GuiClickTest, ClickOnHiddenControlFails) {
  MiniApp app;
  support::Status s = app.Click(*app.action_item_);
  EXPECT_EQ(s.code(), support::StatusCode::kNotFound);
}

TEST(GuiClickTest, DisabledControlFailsWithStructuredError) {
  MiniApp app;
  app.menu_host_->SetEnabled(false);
  support::Status s = app.Click(*app.menu_host_);
  EXPECT_EQ(s.code(), support::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("disabled"), std::string::npos);
}

TEST(GuiClickTest, TabSwitchIsExclusive) {
  MiniApp app;
  EXPECT_TRUE(app.IsAttached(*app.menu_host_));   // panel A visible
  EXPECT_FALSE(app.IsAttached(*app.launcher_));   // panel B hidden
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  EXPECT_FALSE(app.IsAttached(*app.menu_host_));
  EXPECT_TRUE(app.IsAttached(*app.launcher_));
  EXPECT_TRUE(app.tab_b_->selected());
  EXPECT_FALSE(app.tab_a_->selected());
}

TEST(GuiClickTest, DialogOpensAndStacksOnTop) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_EQ(app.OpenWindows().size(), 2u);
  EXPECT_EQ(app.TopWindow()->title(), "Dialog");
  EXPECT_TRUE(app.TopWindow()->modal());
}

TEST(GuiClickTest, OkCommitsCommandAndClosesDialog) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_TRUE(app.Click(*app.dlg_ok_).ok());
  EXPECT_EQ(app.OpenWindows().size(), 1u);
  EXPECT_EQ(app.commands, std::vector<std::string>{"dlg.commit"});
}

TEST(GuiClickTest, CancelClosesWithoutCommand) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_TRUE(app.Click(*app.dlg_cancel_).ok());
  EXPECT_EQ(app.OpenWindows().size(), 1u);
  EXPECT_TRUE(app.commands.empty());
}

TEST(GuiClickTest, EscClosesMenuThenDialog) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  ASSERT_TRUE(app.PressKey("ESC").ok());
  EXPECT_FALSE(app.IsAttached(*app.action_item_));
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_TRUE(app.PressKey("ESC").ok());
  EXPECT_EQ(app.OpenWindows().size(), 1u);
}

TEST(GuiClickTest, ExternalStateBlocksEverythingUntilReset) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.external_).ok());
  EXPECT_TRUE(app.in_external_state());
  EXPECT_EQ(app.Click(*app.menu_host_).code(), support::StatusCode::kFailedPrecondition);
  EXPECT_EQ(app.PressKey("ESC").code(), support::StatusCode::kFailedPrecondition);
  app.ResetUiState();
  EXPECT_FALSE(app.in_external_state());
  EXPECT_TRUE(app.Click(*app.menu_host_).ok());
}

TEST(GuiClickTest, ResetUiStateClosesEverything) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  ASSERT_TRUE(app.Click(*app.submenu_host_).ok());
  app.ResetUiState();
  EXPECT_FALSE(app.IsAttached(*app.action_item_));
  EXPECT_EQ(app.OpenWindows().size(), 1u);
}

TEST(GuiClickTest, TypeTextRequiresFocus) {
  MiniApp app;
  EXPECT_EQ(app.TypeText("x").code(), support::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(app.Click(*app.edit_).ok());  // focuses the edit
  ASSERT_TRUE(app.TypeText("hello").ok());
  EXPECT_EQ(app.edit_->text_value(), "hello");
}

TEST(GuiClickTest, WindowDisposeButtonPriority) {
  MiniApp app;
  gsim::Window* dlg = app.FindDialog("dlg");
  ASSERT_NE(dlg, nullptr);
  // OK (commit) outranks Cancel.
  EXPECT_EQ(dlg->FindDisposeButton()->TrueName(), "OK");
}

TEST(GuiClickTest, ToggleFlipsAndStats) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  uia::Element* cb = uia::FindByName(app.TopWindow()->root(), "Some Option");
  ASSERT_NE(cb, nullptr);
  gsim::Control* cbc = static_cast<gsim::Control*>(cb);
  ASSERT_TRUE(app.Click(*cbc).ok());
  EXPECT_TRUE(cbc->toggled());
  ASSERT_TRUE(app.Click(*cbc).ok());
  EXPECT_FALSE(cbc->toggled());
  EXPECT_GE(app.stats().clicks, 4u);
}

// ----- screen labeling / input driver -------------------------------------------

TEST(ScreenTest, IndexToLabelSequence) {
  EXPECT_EQ(gsim::IndexToLabel(0), "A");
  EXPECT_EQ(gsim::IndexToLabel(25), "Z");
  EXPECT_EQ(gsim::IndexToLabel(26), "AA");
  EXPECT_EQ(gsim::IndexToLabel(27), "AB");
  EXPECT_EQ(gsim::IndexToLabel(26 + 26 * 26), "AAA");
}

TEST(ScreenTest, LabelsOnlyVisibleControls) {
  MiniApp app;
  gsim::ScreenView screen(app);
  screen.Refresh();
  const size_t visible_before = screen.VisibleCount();
  EXPECT_EQ(screen.LabelOf(*app.action_item_), "");  // hidden in closed menu
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  screen.Refresh();
  EXPECT_GT(screen.VisibleCount(), visible_before);
  EXPECT_NE(screen.LabelOf(*app.action_item_), "");
}

TEST(ScreenTest, FindByLabelRoundTrip) {
  MiniApp app;
  gsim::ScreenView screen(app);
  screen.Refresh();
  for (const auto& lc : screen.labeled()) {
    EXPECT_EQ(screen.FindByLabel(lc.label), lc.control);
  }
  EXPECT_EQ(screen.FindByLabel("ZZZ"), nullptr);
}

TEST(ScreenTest, ListingShowsStates) {
  MiniApp app;
  app.menu_host_->SetEnabled(false);
  gsim::ScreenView screen(app);
  screen.Refresh();
  std::string listing = screen.RenderListing();
  EXPECT_NE(listing.find("Menu (MenuItem) [disabled]"), std::string::npos);
  EXPECT_NE(listing.find("Tab A (TabItem) [selected]"), std::string::npos);
}

TEST(InputTest, ClickAtHitsLaidOutControl) {
  MiniApp app;
  gsim::ScreenView screen(app);
  screen.Refresh();
  gsim::InputDriver input(app, screen, nullptr);
  ASSERT_TRUE(input.ClickAt(app.menu_host_->rect().Center()).ok());
  EXPECT_TRUE(app.IsAttached(*app.action_item_));
}

TEST(InputTest, CoordinateNoiseCanMissTarget) {
  MiniApp app;
  gsim::InstabilityConfig cfg;
  cfg.misclick_sigma_px = 60.0;  // huge noise: nearly always lands elsewhere
  gsim::InstabilityInjector injector(cfg, 1);
  gsim::ScreenView screen(app);
  screen.Refresh();
  gsim::InputDriver input(app, screen, &injector);
  int miss = 0;
  for (int i = 0; i < 40; ++i) {
    app.ResetUiState();
    screen.Refresh();
    (void)input.ClickControlByCoordinates(*app.menu_host_);
    if (!app.menu_host_->popup_open()) {
      ++miss;
    }
  }
  EXPECT_GT(miss, 5);  // noisy grounding misses a meaningful fraction
}

TEST(InstabilityTest, NameDecorationDeterministicPerControl) {
  MiniApp app;
  gsim::InstabilityConfig cfg;
  cfg.name_variation_rate = 1.0;  // decorate everything
  gsim::InstabilityInjector injector(cfg, 77);
  app.SetInstability(&injector);
  const std::string n1 = app.menu_host_->Name();
  const std::string n2 = app.menu_host_->Name();
  EXPECT_EQ(n1, n2);
  EXPECT_NE(n1, app.menu_host_->TrueName());
}

TEST(InstabilityTest, ZeroRatesAreNoOps) {
  MiniApp app;
  gsim::InstabilityInjector injector(gsim::InstabilityConfig::None(), 5);
  app.SetInstability(&injector);
  EXPECT_EQ(app.menu_host_->Name(), app.menu_host_->TrueName());
  EXPECT_FALSE(injector.ClickSilentlyFails(*app.menu_host_));
  EXPECT_EQ(injector.PopupRevealDelay(*app.menu_host_), 0u);
  gsim::Point p{10, 20};
  gsim::Point q = injector.PerturbPoint(p);
  EXPECT_EQ(p.x, q.x);
  EXPECT_EQ(p.y, q.y);
}

TEST(InstabilityTest, SlowLoadDelaysPopupVisibility) {
  MiniApp app;
  gsim::InstabilityConfig cfg;
  cfg.slow_load_rate = 1.0;
  cfg.slow_load_ticks = 1;
  gsim::InstabilityInjector injector(cfg, 3);
  app.SetInstability(&injector);
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());
  // Popup attached but still offscreen (loading).
  EXPECT_TRUE(app.menu_host_->popup_open());
  EXPECT_TRUE(app.action_item_->IsOffscreen());
  app.Tick();
  app.Tick();
  EXPECT_FALSE(app.action_item_->IsOffscreen());
}

TEST(InstabilityTest, SilentClickFailureLeavesStateUnchanged) {
  MiniApp app;
  gsim::InstabilityConfig cfg;
  cfg.click_fail_rate = 1.0;
  gsim::InstabilityInjector injector(cfg, 9);
  app.SetInstability(&injector);
  ASSERT_TRUE(app.Click(*app.menu_host_).ok());  // click "succeeds"...
  EXPECT_FALSE(app.menu_host_->popup_open());    // ...but nothing happened
}

TEST(GuiClickTest, RevealExistingOpensAncestorChain) {
  MiniApp app;
  gsim::Control* back = app.tab_a_->popup()->NewChild("Back", uia::ControlType::kButton);
  back->SetRevealTarget(app.sub_item_);
  ASSERT_TRUE(app.Click(*back).ok());
  EXPECT_TRUE(app.IsAttached(*app.sub_item_));
}


TEST(GuiClickTest, ClosePaneEffectClosesPersistentPane) {
  MiniApp app;
  // Graft a persistent pane with a Close Pane button onto panel A.
  gsim::Control* host = app.tab_a_->popup()->NewChild("Pane Host", uia::ControlType::kButton);
  host->SetPopupPersistent(true);
  gsim::Control* pane =
      host->SetPopup(std::make_unique<gsim::Control>("Side Pane", uia::ControlType::kPane));
  gsim::Control* content = pane->NewChild("Pane Content", uia::ControlType::kText);
  gsim::Control* close = pane->NewChild("Close Pane", uia::ControlType::kButton);
  close->SetClickEffect(gsim::ClickEffect::kClosePane);

  ASSERT_TRUE(app.Click(*host).ok());
  EXPECT_TRUE(app.IsAttached(*content));
  // Unrelated clicks do NOT close a persistent pane.
  ASSERT_TRUE(app.Click(*app.edit_).ok());
  EXPECT_TRUE(app.IsAttached(*content));
  // The Close Pane button does.
  ASSERT_TRUE(app.Click(*close).ok());
  EXPECT_FALSE(app.IsAttached(*content));
}

TEST(GuiClickTest, ClosePaneOutsideAnyPaneFails) {
  MiniApp app;
  gsim::Control* stray = app.tab_a_->popup()->NewChild("Stray Close", uia::ControlType::kButton);
  stray->SetClickEffect(gsim::ClickEffect::kClosePane);
  EXPECT_EQ(app.Click(*stray).code(), support::StatusCode::kFailedPrecondition);
}

TEST(GuiClickTest, FloatingSharedPopupHasHostIndependentAncestry) {
  MiniApp app;
  gsim::Control* shared = app.RegisterSharedSubtree(
      std::make_unique<gsim::Control>("Float Panel", uia::ControlType::kList));
  gsim::Control* cell = shared->NewChild("Float Cell", uia::ControlType::kListItem);
  gsim::Control* host_a = app.tab_a_->popup()->NewChild("Host A", uia::ControlType::kMenuItem);
  host_a->SetSharedPopup(shared);
  ASSERT_TRUE(app.Click(*host_a).ok());
  // Public ancestry stops at the floating root; internal parent still climbs.
  EXPECT_EQ(uia::AncestorPath(*cell), "Float Panel");
  EXPECT_EQ(shared->Parent(), nullptr);
  EXPECT_NE(shared->parent_control(), nullptr);
  // The app-facing ancestor chain still carries the hosting path.
  std::vector<std::string> chain = app.OpenAncestorNames(*cell);
  EXPECT_NE(std::find(chain.begin(), chain.end(), "Host A"), chain.end());
}

TEST(GuiClickTest, ModalDialogBlocksLowerWindowClicks) {
  MiniApp app;
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_EQ(app.TopWindow()->title(), "Dialog");
  support::Status s = app.Click(*app.tab_a_);
  EXPECT_EQ(s.code(), support::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("modal"), std::string::npos);
}

TEST(GuiClickTest, RenameToChangesAccessibleName) {
  MiniApp app;
  app.action_item_->RenameTo("Renamed Thing");
  EXPECT_EQ(app.action_item_->TrueName(), "Renamed Thing");
  EXPECT_EQ(app.action_item_->Name(), "Renamed Thing");
}


TEST(GuiClickTest, WindowListenersFireOnDialogOpenClose) {
  MiniApp app;
  std::vector<std::pair<std::string, bool>> events;
  app.AddWindowListener([&](gsim::Window& w, bool opened) {
    events.emplace_back(w.title(), opened);
  });
  ASSERT_TRUE(app.Click(*app.tab_b_).ok());
  ASSERT_TRUE(app.Click(*app.launcher_).ok());
  ASSERT_TRUE(app.Click(*app.dlg_cancel_).ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::string, bool>{"Dialog", true}));
  EXPECT_EQ(events[1], (std::pair<std::string, bool>{"Dialog", false}));
}

}  // namespace
