#include <gtest/gtest.h>

#include <cstdio>

#include "src/agent/dmi_agent.h"
#include "src/agent/task_runner.h"
#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/uia/tree.h"

namespace {

dmi::ModelingOptions WordOptions() {
  return agentsim::TaskRunner::DefaultModelingOptions(workload::AppKind::kWord);
}

// One modeled Word graph shared within a test process.
const topo::NavGraph& WordGraph() {
  static const topo::NavGraph* graph = [] {
    apps::WordSim scratch;
    ripper::GuiRipper rip(scratch, WordOptions().ripper_config);
    return new topo::NavGraph(rip.Rip());
  }();
  return *graph;
}

// ----- model persistence (§5.2: reusable across machines) ------------------------

TEST(PersistenceTest, SaveLoadRoundTripPreservesTopology) {
  const std::string path = ::testing::TempDir() + "/wordsim_model.json";
  ASSERT_TRUE(dmi::DmiSession::SaveModel(WordGraph(), path).ok());
  auto loaded = dmi::DmiSession::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->node_count(), WordGraph().node_count());
  EXPECT_EQ(loaded->edge_count(), WordGraph().edge_count());
  std::remove(path.c_str());
}

TEST(PersistenceTest, SessionFromLoadedModelDrivesTheApp) {
  const std::string path = ::testing::TempDir() + "/wordsim_model2.json";
  ASSERT_TRUE(dmi::DmiSession::SaveModel(WordGraph(), path).ok());
  auto loaded = dmi::DmiSession::LoadModel(path);
  ASSERT_TRUE(loaded.ok());

  apps::WordSim app;
  dmi::DmiSession session(app, std::move(*loaded), WordOptions());
  app.SetSelection(0, 0);
  auto bold = session.ResolveTargetByNames({"Font", "Bold"});
  ASSERT_TRUE(bold.ok());
  dmi::VisitCommand cmd;
  cmd.target_id = bold->id;
  cmd.entry_ref_ids = bold->entry_ref_ids;
  ASSERT_TRUE(session.VisitParsed({cmd}).overall.ok());
  EXPECT_TRUE(app.paragraphs()[0].fmt.bold);
  std::remove(path.c_str());
}

TEST(PersistenceTest, SaveSurfacesFlushFailure) {
  // /dev/full accepts the open and buffers the write, then fails on flush:
  // a small graph fits in the stdio buffer, so the error can only surface at
  // fclose — the exact path a silently-ignored fclose return would lose.
  std::FILE* probe = std::fopen("/dev/full", "wb");
  if (probe == nullptr) {
    GTEST_SKIP() << "/dev/full not available";
  }
  (void)std::fclose(probe);
  const topo::NavGraph tiny;  // root-only: serializes well under BUFSIZ
  const support::Status s = dmi::DmiSession::SaveModel(tiny, "/dev/full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), support::StatusCode::kInternal) << s.ToString();
  // A large graph takes the short-write path instead; both must fail.
  EXPECT_FALSE(dmi::DmiSession::SaveModel(WordGraph(), "/dev/full").ok());
}

TEST(PersistenceTest, LoadErrorsAreStructured) {
  EXPECT_EQ(dmi::DmiSession::LoadModel("/nonexistent/m.json").status().code(),
            support::StatusCode::kNotFound);
  const std::string path = ::testing::TempDir() + "/garbage.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("{not json", f);
  std::fclose(f);
  EXPECT_FALSE(dmi::DmiSession::LoadModel(path).ok());
  std::remove(path.c_str());
}

// ----- §6 dynamic rename: the topology hazard no offline model captures ----------

TEST(DynamicRenameTest, SpecialFindTextRenamesButton) {
  apps::WordSim app;
  gsim::Control* replace = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Replace"));
  ASSERT_TRUE(app.Click(*replace).ok());
  gsim::Control* find_edit = static_cast<gsim::Control*>(
      uia::FindByName(app.TopWindow()->root(), "Find what"));
  ASSERT_TRUE(app.Click(*find_edit).ok());
  ASSERT_TRUE(app.TypeText("+2").ok());
  EXPECT_EQ(uia::FindByName(app.TopWindow()->root(), "Find Next"), nullptr);
  EXPECT_NE(uia::FindByName(app.TopWindow()->root(), "Go To"), nullptr);
  // And it reverts when the text is ordinary again.
  ASSERT_TRUE(app.TypeText("hello").ok());
  EXPECT_NE(uia::FindByName(app.TopWindow()->root(), "Find Next"), nullptr);
}

TEST(DynamicRenameTest, VisitOnRenamedControlGivesStructuredMiss) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  auto find_next = session.ResolveTargetByNames({"Find and Replace", "Find Next"});
  ASSERT_TRUE(find_next.ok());
  auto find_edit = session.ResolveTargetByNames({"Find and Replace", "Find what"});
  ASSERT_TRUE(find_edit.ok());

  // Type the special "+1" (renames the button), then declare Find Next.
  dmi::VisitCommand type_cmd;
  type_cmd.kind = dmi::VisitCommand::Kind::kAccessInput;
  type_cmd.target_id = find_edit->id;
  type_cmd.entry_ref_ids = find_edit->entry_ref_ids;
  type_cmd.text = "+1";
  dmi::VisitCommand click_cmd;
  click_cmd.target_id = find_next->id;
  click_cmd.entry_ref_ids = find_next->entry_ref_ids;
  dmi::VisitReport report = session.VisitParsed({type_cmd, click_cmd});
  // The model says "Find Next"; the live UI says "Go To": fuzzy matching
  // cannot bridge a full rename, so the executor surfaces a structured miss
  // the LLM can react to (paper §6 "(In)accurate navigation topology").
  EXPECT_FALSE(report.overall.ok());
  EXPECT_EQ(report.overall.code(), support::StatusCode::kNotFound);
  EXPECT_NE(report.overall.message().find("Find Next"), std::string::npos);
}

// ----- observability through the session -------------------------------------------

TEST(ObservabilityTest, VisitEmitsNestedSpansAndFastPathCounters) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  app.SetSelection(0, 0);
  auto bold = session.ResolveTargetByNames({"Font", "Bold"});
  ASSERT_TRUE(bold.ok());

  support::TraceRecorder::Global().Discard();
  support::TraceRecorder::Global().SetEnabled(true);
  const support::MetricsSnapshot before = support::MetricsRegistry::Global().Snapshot();
  dmi::VisitCommand cmd;
  cmd.target_id = bold->id;
  cmd.entry_ref_ids = bold->entry_ref_ids;
  dmi::VisitReport report = session.VisitParsed({cmd});
  const support::MetricsSnapshot after = support::MetricsRegistry::Global().Snapshot();
  support::TraceRecorder::Global().SetEnabled(false);
  std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
  ASSERT_TRUE(report.overall.ok()) << report.Render();

  // One visit.execute span covering a nested visit.navigate on the same thread.
  const support::TraceEvent* execute = nullptr;
  const support::TraceEvent* navigate = nullptr;
  for (const support::TraceEvent& e : events) {
    if (e.name == "visit.execute" && execute == nullptr) {
      execute = &e;
    } else if (e.name == "visit.navigate" && navigate == nullptr) {
      navigate = &e;
    }
  }
  ASSERT_NE(execute, nullptr);
  ASSERT_NE(navigate, nullptr);
  EXPECT_EQ(execute->category, "visit");
  EXPECT_EQ(execute->tid, navigate->tid);
  EXPECT_LT(execute->depth, navigate->depth);
  EXPECT_LE(execute->start_us, navigate->start_us);
  EXPECT_GE(execute->start_us + execute->dur_us, navigate->start_us + navigate->dur_us);

  // The visit fed the registry: one call, its commands, and a located control
  // (fast path or fallback, depending on the session's index configuration).
  auto delta = [&before, &after](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("visit.calls"), 1u);
  EXPECT_GE(delta("visit.commands"), 1u);
  EXPECT_GE(delta("visit.locate_fast_path") + delta("visit.locate_fallback_walks"), 1u);
  const support::HistogramSnapshot* execute_ms = after.FindHistogram("visit.execute_ms");
  ASSERT_NE(execute_ms, nullptr);
  EXPECT_GE(execute_ms->count, 1u);
}

// ----- enforced access through the JSON surface -----------------------------------

TEST(EnforcedTest, JsonEnforcedBypassesFilter) {
  auto cmds = dmi::ParseVisitCommands(R"([{"id": "7", "enforced": true}])");
  ASSERT_TRUE(cmds.ok());
  EXPECT_TRUE((*cmds)[0].enforced);
  EXPECT_NE((*cmds)[0].ToString().find("enforced"), std::string::npos);
  auto plain = dmi::ParseVisitCommands(R"([{"id": "7"}])");
  EXPECT_FALSE((*plain)[0].enforced);
}

TEST(EnforcedTest, EnforcedNavigationNodeExecutes) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  // "Underline" is a navigation node (its menu has children).
  auto underline = session.ResolveTargetByNames({"Font", "Underline"});
  ASSERT_TRUE(underline.ok());
  dmi::VisitCommand cmd;
  cmd.target_id = underline->id;
  cmd.enforced = true;
  dmi::VisitReport report = session.VisitParsed({cmd});
  EXPECT_TRUE(report.overall.ok()) << report.Render();
  EXPECT_EQ(report.filtered_count, 0u);
  // The menu actually opened.
  gsim::Control* host = static_cast<gsim::Control*>(
      uia::FindByName(app.main_window().root(), "Underline"));
  EXPECT_TRUE(host->popup_open());
}

// ----- GUI fallback (the §6 slow path) ----------------------------------------------

TEST(FallbackTest, DmiAgentRunsGuiFallbackSlice) {
  // A synthetic task whose DMI plan is entirely a GUI fallback over its
  // imperative plan: toggle Bold via raw clicks.
  workload::Task task;
  task.id = "FB1";
  task.app = workload::AppKind::kWord;
  task.description = "fallback: bold the selection imperatively";
  workload::GuiAction click;
  click.kind = workload::GuiAction::Kind::kClick;
  click.target = "Bold";
  click.functional = true;
  task.gui_plan = {click};
  workload::DmiStep fb;
  fb.kind = workload::DmiStep::Kind::kGuiFallback;
  fb.gui_fallback_begin = 0;
  fb.gui_fallback_end = 1;
  task.dmi_plan = {fb};
  task.verify = [](gsim::Application& a) {
    return static_cast<apps::WordSim&>(a).paragraphs()[0].fmt.bold;
  };
  task.make_app = [] { return std::make_unique<apps::WordSim>(); };

  apps::WordSim app;
  app.SetSelection(0, 0);
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  agentsim::LlmProfile perfect = agentsim::LlmProfile::Gpt5Medium();
  perfect.nav_slip = 0;
  perfect.semantic_error_dmi = 0;
  perfect.dmi_residual_mechanism = 0;
  perfect.topology_fail = 0;
  agentsim::SimLlm llm(perfect, 11);
  agentsim::DmiAgent agent(agentsim::DmiAgentConfig{});
  agentsim::RunResult r = agent.Run(task, session, llm);
  EXPECT_TRUE(r.success) << agentsim::FailureCauseName(r.cause);
  EXPECT_GE(r.ui_actions, 1u);
}

// ----- name resolution properties ---------------------------------------------------

TEST(ResolutionTest, ResolvedPathsAreValidForSampledLeaves) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  const topo::Forest& forest = session.catalog().forest();
  const topo::NavGraph& dag = session.catalog().dag();
  int checked = 0;
  for (int id : forest.AllIds()) {
    if (checked >= 200) {
      break;
    }
    if (!forest.IsLeaf(id)) {
      continue;
    }
    const topo::TreeNode* node = forest.FindById(id);
    const std::string& name = dag.node(node->graph_index).name;
    if (name.empty()) {
      continue;
    }
    auto resolved = session.ResolveTargetByNames({name});
    // The single-name chain must resolve to SOME control with that name
    // (possibly a shorter path than this particular id).
    ASSERT_TRUE(resolved.ok()) << name;
    auto path = forest.ResolvePath(resolved->id, resolved->entry_ref_ids);
    ASSERT_TRUE(path.ok()) << name;
    EXPECT_EQ(dag.node(path->back()).name, name);
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

TEST(ResolutionTest, UnknownChainGivesNotFound) {
  apps::WordSim app;
  dmi::DmiSession session(app, WordGraph(), WordOptions());
  EXPECT_EQ(session.ResolveTargetByNames({"No Such Control Anywhere"}).status().code(),
            support::StatusCode::kNotFound);
  EXPECT_EQ(session.ResolveTargetByNames({}).status().code(),
            support::StatusCode::kInvalidArgument);
}

}  // namespace
