#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/describe/augment.h"
#include "src/describe/catalog.h"
#include "src/describe/serialize.h"
#include "src/text/tokens.h"
#include "src/topology/transform.h"

namespace {

topo::NodeInfo Node(const std::string& name, uia::ControlType type,
                    const std::string& desc = "") {
  topo::NodeInfo info;
  info.control_id = name + "|" + std::string(uia::ControlTypeName(type)) + "|t";
  info.name = name;
  info.type = type;
  info.description = desc;
  return info;
}

// root -> Menu(Host) -> [Leaf1, Leaf2]; root -> Gallery -> 40 items.
topo::NavGraph SmallGraph() {
  topo::NavGraph g;
  int host = g.AddNode(Node("Host", uia::ControlType::kMenuItem, "opens the host menu"));
  g.AddEdge(0, host);
  int l1 = g.AddNode(Node("Leaf One", uia::ControlType::kButton, "does one"));
  int l2 = g.AddNode(Node("Leaf Two", uia::ControlType::kText));
  g.AddEdge(host, l1);
  g.AddEdge(host, l2);
  int gal = g.AddNode(Node("Gallery", uia::ControlType::kComboBox));
  g.AddEdge(0, gal);
  for (int i = 0; i < 40; ++i) {
    int item = g.AddNode(Node("Item " + std::to_string(i), uia::ControlType::kListItem));
    g.AddEdge(gal, item);
  }
  return g;
}

// Diamond for shared-subtree serialization.
topo::NavGraph SharedGraph() {
  topo::NavGraph g;
  int a = g.AddNode(Node("Host A", uia::ControlType::kMenuItem));
  int b = g.AddNode(Node("Host B", uia::ControlType::kMenuItem));
  int m = g.AddNode(Node("Palette", uia::ControlType::kList));
  int x = g.AddNode(Node("Blue", uia::ControlType::kListItem));
  g.AddEdge(0, a);
  g.AddEdge(0, b);
  g.AddEdge(a, m);
  g.AddEdge(b, m);
  g.AddEdge(m, x);
  return g;
}

TEST(SerializeTest, SchemaShape) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  std::string text = desc::SerializeTree(g, f, -1, desc::DescribeOptions{});
  // name(type)(description)_id[children]
  EXPECT_NE(text.find("Host(MenuItem)(opens the host menu)_"), std::string::npos);
  EXPECT_NE(text.find("Leaf One(Button)(does one)_"), std::string::npos);
  // Plain text leaf: no type annotation.
  EXPECT_NE(text.find("Leaf Two_"), std::string::npos);
  EXPECT_EQ(text.find("Leaf Two(Text)"), std::string::npos);
  // Nesting brackets present.
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find(']'), std::string::npos);
}

TEST(SerializeTest, DescriptionsTruncateToTokenBudget) {
  topo::NavGraph g;
  std::string long_desc;
  for (int i = 0; i < 100; ++i) {
    long_desc += "verbose accessibility documentation segment ";
  }
  int n = g.AddNode(Node("Wordy", uia::ControlType::kButton, long_desc));
  g.AddEdge(0, n);
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::DescribeOptions opts;
  opts.max_description_tokens = 6;
  std::string text = desc::SerializeTree(g, f, -1, opts);
  EXPECT_LT(text.size(), 200u);
  EXPECT_NE(text.find("…"), std::string::npos);
}

TEST(SerializeTest, DescriptionsCanBeDisabled) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::DescribeOptions opts;
  opts.include_descriptions = false;
  std::string text = desc::SerializeTree(g, f, -1, opts);
  EXPECT_EQ(text.find("opens the host menu"), std::string::npos);
}

TEST(SerializeTest, ForestCarriesSharedSubtreesAndEntryMap) {
  topo::NavGraph g = SharedGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  ASSERT_EQ(f.shared().size(), 1u);
  std::string text = desc::SerializeForest(g, f, desc::DescribeOptions{});
  EXPECT_NE(text.find("## Main tree"), std::string::npos);
  EXPECT_NE(text.find("## Shared subtree S0"), std::string::npos);
  EXPECT_NE(text.find("## Entry map"), std::string::npos);
  EXPECT_NE(text.find("@ref->S0_"), std::string::npos);
  EXPECT_NE(text.find("->S0:"), std::string::npos);
}

TEST(SerializeTest, KeepSetElidesWithMarker) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  // Keep only the root and Host (drop everything else).
  desc::IdSet keep(f.max_id());
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    const std::string& name = g.node(n->graph_index).name;
    if (name == "[Root]" || name == "Host" || name == "Gallery") {
      keep.insert(id);
    }
  }
  std::string text = desc::SerializeTree(g, f, -1, desc::DescribeOptions{}, &keep);
  EXPECT_NE(text.find("+2 more"), std::string::npos);   // Host's two leaves
  EXPECT_NE(text.find("+40 more"), std::string::npos);  // gallery items
  EXPECT_EQ(text.find("Item 3"), std::string::npos);
}

// ----- catalog / query-on-demand ---------------------------------------------------

TEST(CatalogTest, CoreElidesLargeEnumerations) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::PruneOptions prune;
  prune.enumeration_limit = 24;
  desc::TopologyCatalog catalog(&g, std::move(f), prune, desc::DescribeOptions{});
  EXPECT_EQ(catalog.core_stats().elided_enumerations, 1u);
  EXPECT_EQ(catalog.CoreText().find("Item 7"), std::string::npos);
  // But the gallery node itself remains reachable.
  EXPECT_NE(catalog.CoreText().find("Gallery"), std::string::npos);
  EXPECT_LT(catalog.CoreTokens(), catalog.FullTokens());
}

TEST(CatalogTest, CoreDepthLimit) {
  // Deep chain: only max_depth levels survive in the core.
  topo::NavGraph g;
  int prev = 0;
  for (int i = 0; i < 12; ++i) {
    int n = g.AddNode(Node("Level " + std::to_string(i), uia::ControlType::kMenuItem));
    g.AddEdge(prev, n);
    prev = n;
  }
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::PruneOptions prune;
  prune.max_depth = 6;
  desc::TopologyCatalog catalog(&g, std::move(f), prune, desc::DescribeOptions{});
  EXPECT_NE(catalog.CoreText().find("Level 4"), std::string::npos);
  EXPECT_EQ(catalog.CoreText().find("Level 9"), std::string::npos);
}

TEST(CatalogTest, ManualExcludePrunesSubtree) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::PruneOptions prune;
  prune.manual_exclude_names = {"Host"};
  desc::TopologyCatalog catalog(&g, std::move(f), prune, desc::DescribeOptions{});
  EXPECT_EQ(catalog.CoreText().find("Leaf One"), std::string::npos);
  EXPECT_NE(catalog.CoreText().find("Host"), std::string::npos);
}

TEST(CatalogTest, ExpandBranchReturnsElidedContent) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  // Find the gallery's id.
  int gallery_id = -1;
  for (int id : catalog.forest().AllIds()) {
    const topo::TreeNode* n = catalog.forest().FindById(id);
    if (!n->is_reference && g.node(n->graph_index).name == "Gallery") {
      gallery_id = id;
    }
  }
  ASSERT_GT(gallery_id, 0);
  auto branch = catalog.ExpandBranch(gallery_id);
  ASSERT_TRUE(branch.ok());
  EXPECT_NE(branch->find("Item 17"), std::string::npos);
  EXPECT_FALSE(catalog.ExpandBranch(99999).ok());
}

TEST(CatalogTest, FullTextIsGlobalQuery) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  EXPECT_NE(catalog.FullText().find("Item 33"), std::string::npos);
}

TEST(CatalogTest, PerControlTokenCostNearPaperEstimate) {
  // §5.4: each control contributes ~15 tokens on average. Check the full
  // serialization of a realistic mixed graph lands in a sane band (5-30).
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  size_t total = f.total_nodes();
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  double per_control = static_cast<double>(catalog.FullTokens()) / static_cast<double>(total);
  EXPECT_GT(per_control, 3.0);
  EXPECT_LT(per_control, 30.0);
}


TEST(SerializeTest, WantsDescriptionRules) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  for (int id : f.AllIds()) {
    const topo::TreeNode* n = f.FindById(id);
    if (n->is_reference) {
      continue;
    }
    const topo::NodeInfo& info = g.node(n->graph_index);
    const bool wants = desc::WantsDescription(g, f, *n);
    if (!n->children.empty()) {
      EXPECT_TRUE(wants) << info.name << " (navigation nodes always get one)";
    } else if (uia::IsKeyControlType(info.type)) {
      EXPECT_TRUE(wants) << info.name;
    } else {
      EXPECT_FALSE(wants) << info.name;
    }
  }
}

TEST(SerializeTest, EntryMapRespectsKeepSet) {
  topo::NavGraph g = SharedGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  // Keep everything except the reference nodes: the entry map must be empty.
  desc::IdSet keep(f.max_id());
  for (int id : f.AllIds()) {
    if (!f.FindById(id)->is_reference) {
      keep.insert(id);
    }
  }
  std::string text = desc::SerializeForest(g, f, desc::DescribeOptions{}, &keep);
  EXPECT_EQ(text.find("## Entry map"), std::string::npos);
}

TEST(IdSetTest, InsertContainsSizeAndAutoGrow) {
  desc::IdSet set(70);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(1));
  set.insert(1);
  set.insert(63);
  set.insert(64);  // second word
  set.insert(70);
  EXPECT_TRUE(set.contains(1));
  EXPECT_TRUE(set.contains(63));
  EXPECT_TRUE(set.contains(64));
  EXPECT_TRUE(set.contains(70));
  EXPECT_FALSE(set.contains(2));
  EXPECT_FALSE(set.contains(65));
  EXPECT_EQ(set.size(), 4u);
  // Duplicate inserts are idempotent; negative ids are ignored.
  set.insert(1);
  set.insert(-5);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_FALSE(set.contains(-5));
  // Inserting beyond the constructed capacity grows the bitset.
  set.insert(500);
  EXPECT_TRUE(set.contains(500));
  EXPECT_FALSE(set.contains(499));
  // Queries beyond capacity are safely false.
  EXPECT_FALSE(set.contains(100000));
}

TEST(CatalogTest, CachedFullTextByteIdenticalToUncached) {
  topo::NavGraph g = SharedGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  const std::string uncached = catalog.FullTextUncached();
  // First call builds, second serves the cache; both byte-identical to the
  // cache-bypassing reference.
  EXPECT_EQ(catalog.FullText(), uncached);
  EXPECT_EQ(catalog.FullText(), uncached);
  // Cached token counts equal the reference tokenizer's piece count.
  EXPECT_EQ(catalog.FullTokens(), textutil::TokenizePieces(uncached).size());
  EXPECT_EQ(catalog.CoreTokens(), textutil::TokenizePieces(catalog.CoreText()).size());
  // The memoized subtree serialization matches a fresh SerializeTree.
  ASSERT_FALSE(catalog.forest().shared().empty());
  EXPECT_EQ(catalog.SubtreeText(0),
            desc::SerializeTree(catalog.dag(), catalog.forest(), 0,
                                desc::DescribeOptions{}));
}

TEST(SerializeTest, EntryMapSuppressedWhenSubtreeSectionPruned) {
  // Regression: a keep-set that keeps the reference nodes but prunes the
  // shared subtree's root must not emit an entry pointing at a section that
  // was never serialized.
  topo::NavGraph g = SharedGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  ASSERT_EQ(f.shared().size(), 1u);
  const int subtree_root_id = f.shared()[0].nodes[0].id;
  desc::IdSet keep(f.max_id());
  for (int id : f.AllIds()) {
    if (id != subtree_root_id) {
      keep.insert(id);  // keeps both references, drops the subtree root
    }
  }
  std::string text = desc::SerializeForest(g, f, desc::DescribeOptions{}, &keep);
  EXPECT_EQ(text.find("## Shared subtree S0"), std::string::npos);
  EXPECT_EQ(text.find("## Entry map"), std::string::npos)
      << "entry map must not reference a pruned subtree section:\n" << text;
  // With the root kept, both the section and its entries come back.
  keep.insert(subtree_root_id);
  text = desc::SerializeForest(g, f, desc::DescribeOptions{}, &keep);
  EXPECT_NE(text.find("## Shared subtree S0"), std::string::npos);
  EXPECT_NE(text.find("## Entry map"), std::string::npos);
}

TEST(CatalogTest, ConcurrentQueriesReturnIdenticalResults) {
  // The catalog's lazy caches are the only concurrently-accessed describe
  // state: hammer them from several threads and check every thread observes
  // the same bytes (run under TSan via tools/run_tsan_tests.sh).
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  const std::string expected_full = catalog.FullTextUncached();
  const size_t expected_tokens = textutil::TokenizePieces(expected_full).size();
  const std::vector<int> ids = catalog.forest().AllIds();

  constexpr int kThreads = 8;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        if (catalog.FullText() != expected_full ||
            catalog.FullTokens() != expected_tokens ||
            catalog.CoreTokens() == 0) {
          ++failures[t];
        }
        const int id = ids[static_cast<size_t>((t * 31 + round) % ids.size())];
        auto branch = catalog.ExpandBranch(id);
        if (!branch.ok() || branch->empty()) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

TEST(CatalogTest, ExpandBranchOnReferenceServesMemoizedSubtree) {
  topo::NavGraph g = SharedGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 0);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  int ref_id = -1;
  for (int id : catalog.forest().AllIds()) {
    if (catalog.forest().FindById(id)->is_reference) {
      ref_id = id;
      break;
    }
  }
  ASSERT_GT(ref_id, 0);
  auto expanded = catalog.ExpandBranch(ref_id);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(*expanded,
            "## Shared subtree S0\n" + catalog.SubtreeText(0));
  EXPECT_NE(expanded->find("Palette"), std::string::npos);
}

TEST(CatalogTest, InCoreMatchesSerializedContent) {
  topo::NavGraph g = SmallGraph();
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  desc::TopologyCatalog catalog(&g, std::move(f), desc::PruneOptions{},
                                desc::DescribeOptions{});
  for (int id : catalog.forest().AllIds()) {
    const std::string marker = "_" + std::to_string(id) + "[";
    const std::string marker2 = "_" + std::to_string(id) + ",";
    const std::string marker3 = "_" + std::to_string(id) + "]";
    const std::string& core = catalog.CoreText();
    const bool serialized = core.find(marker) != std::string::npos ||
                            core.find(marker2) != std::string::npos ||
                            core.find(marker3) != std::string::npos ||
                            core.rfind("_" + std::to_string(id)) == core.size() - 1 -
                                std::to_string(id).size();
    if (catalog.InCore(id)) {
      EXPECT_TRUE(serialized) << "core id " << id << " missing from core text";
    }
  }
}


// ----- description augmentation (§5.7 future work) ----------------------------------

TEST(AugmentTest, RulesFillOnlyMissingDescriptions) {
  topo::NavGraph g;
  int host = g.AddNode(Node("Menu Host", uia::ControlType::kMenuItem, "app-provided"));
  g.AddEdge(0, host);
  int edit = g.AddNode(Node("Name Box", uia::ControlType::kEdit));
  g.AddEdge(host, edit);
  int ok = g.AddNode(Node("OK", uia::ControlType::kButton));
  g.AddEdge(host, ok);
  int cb = g.AddNode(Node("Verbose", uia::ControlType::kCheckBox));
  g.AddEdge(host, cb);
  int plain = g.AddNode(Node("Just Text", uia::ControlType::kText));
  g.AddEdge(host, plain);

  desc::AugmentStats stats = desc::AugmentDescriptions(g, desc::BuiltinAugmentRules());
  EXPECT_EQ(stats.skipped_existing, 1u);  // the host keeps its app metadata
  EXPECT_EQ(g.node(host).description, "app-provided");
  EXPECT_NE(g.node(edit).description.find("ENTER"), std::string::npos);
  EXPECT_NE(g.node(ok).description.find("commits"), std::string::npos);
  EXPECT_NE(g.node(cb).description.find("Checkbox"), std::string::npos);
  EXPECT_TRUE(g.node(plain).description.empty());  // no rule matched
  EXPECT_EQ(stats.augmented, 3u);
}

TEST(AugmentTest, CancelAndCloseSemantics) {
  topo::NavGraph g;
  int cancel = g.AddNode(Node("Cancel", uia::ControlType::kButton));
  g.AddEdge(0, cancel);
  int close = g.AddNode(Node("Close", uia::ControlType::kButton));
  g.AddEdge(0, close);
  desc::AugmentDescriptions(g, desc::BuiltinAugmentRules());
  EXPECT_NE(g.node(cancel).description.find("discards"), std::string::npos);
  EXPECT_NE(g.node(close).description.find("closes"), std::string::npos);
}

TEST(AugmentTest, AugmentedDescriptionsReachTheSerializedTopology) {
  topo::NavGraph g;
  int edit = g.AddNode(Node("Value Field", uia::ControlType::kEdit));
  g.AddEdge(0, edit);
  desc::AugmentDescriptions(g, desc::BuiltinAugmentRules());
  topo::Forest f = topo::SelectiveExternalize(g, 8);
  // Leaf edits are not key types; force descriptions by marking navigation…
  // the rule-based text still reaches serialization when the node is a
  // non-leaf or key type. Check via a ComboBox (key type).
  topo::NavGraph g2;
  int combo = g2.AddNode(Node("Font Picker", uia::ControlType::kComboBox));
  g2.AddEdge(0, combo);
  desc::AugmentDescriptions(g2, desc::BuiltinAugmentRules());
  topo::Forest f2 = topo::SelectiveExternalize(g2, 8);
  std::string text = desc::SerializeTree(g2, f2, -1, desc::DescribeOptions{});
  EXPECT_NE(text.find("ENTER"), std::string::npos);
  (void)f;
}

}  // namespace
