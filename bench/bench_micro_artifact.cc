// Microbenchmark: binary model artifacts — compile once, cold-load
// everywhere (DESIGN.md §14).
//
// Three ways a fresh process can obtain a CompiledModel, per app kind:
//   recompile    in-memory pipeline over an already-ripped graph (the
//                lower bound a process that somehow kept the graph could
//                hit — no real cold start does)
//   json_reload  the persisted path an artifact replaces: parse the legacy
//                JSON graph dump, rebuild the NavGraph, run the full
//                pipeline
//   cold_load    read + checksum + index fixup of the binary artifact
//
// Gate: cold_load must be at least 10x faster than json_reload — the
// persisted-model path a fresh process previously had to take — for every
// app kind, and the loaded model must be byte-identical to the compiled
// one. The ratio against the in-memory recompile is reported as an
// informational column. Each timing is the minimum over its iterations
// (standard microbench practice: the min is the least noise-contaminated
// estimate of the true cost). Results land in the "micro_artifact" section
// of BENCH_perf.json; tools/check_bench_regression.py holds the floors from
// bench/BENCH_baseline.json.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/model_artifact.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/binio.h"
#include "src/workload/tasks.h"

namespace {

std::unique_ptr<gsim::Application> MakeApp(workload::AppKind kind) {
  switch (kind) {
    case workload::AppKind::kWord:
      return std::make_unique<apps::WordSim>();
    case workload::AppKind::kExcel:
      return std::make_unique<apps::ExcelSim>();
    case workload::AppKind::kPpoint:
      return std::make_unique<apps::PpointSim>();
  }
  return nullptr;
}

struct ArtifactPerf {
  std::string app;
  double recompile_ms = 0;
  double json_reload_ms = 0;
  double cold_load_ms = 0;
  double cold_load_speedup = 0;   // json_reload_ms / cold_load_ms (gated)
  double vs_recompile_speedup = 0;  // recompile_ms / cold_load_ms (informational)
  double artifact_bytes = 0;
  bool identical = false;
};

ArtifactPerf BenchArtifact(workload::AppKind kind) {
  ArtifactPerf perf;
  perf.app = workload::AppKindName(kind);

  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  std::unique_ptr<gsim::Application> scratch = MakeApp(kind);
  ripper::GuiRipper rip(*scratch, options.ripper_config);
  const topo::NavGraph graph = rip.Rip();

  std::shared_ptr<const dmi::CompiledModel> compiled =
      dmi::CompiledModel::Compile(graph, options, &rip.stats());

  const std::string artifact_path = std::string("bench_artifact_") + perf.app + ".dmim";
  const std::string json_path = std::string("bench_artifact_") + perf.app + ".json";
  dmi::ArtifactMeta meta{perf.app, "bench"};
  if (!dmi::SaveModelArtifact(*compiled, meta, artifact_path).ok() ||
      !dmi::DmiSession::SaveModel(graph, json_path).ok()) {
    std::abort();
  }
  {
    auto bytes = support::ReadFileBytes(artifact_path);
    perf.artifact_bytes = bytes.ok() ? static_cast<double>(bytes->size()) : 0;
  }

  // Correctness first: the loaded model must be indistinguishable from the
  // compiled one — same static prompt bytes, same serializations, same
  // token counts.
  {
    auto loaded = dmi::LoadModelArtifact(artifact_path, options, &meta);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
      std::abort();
    }
    const dmi::CompiledModel& l = *loaded->model;
    perf.identical = l.static_prompt() == compiled->static_prompt() &&
                     l.static_prompt_tokens() == compiled->static_prompt_tokens() &&
                     l.catalog().FullText() == compiled->catalog().FullText() &&
                     l.catalog().CoreTokens() == compiled->catalog().CoreTokens() &&
                     l.catalog().FullTokens() == compiled->catalog().FullTokens();
  }

  constexpr int kCompileIters = 20;
  constexpr int kJsonIters = 10;
  constexpr int kLoadIters = 100;

  // Minimum single-iteration time: on a shared machine the mean absorbs
  // scheduler noise on both sides of the ratio.
  auto min_iter_ms = [](int iters, auto&& body) {
    double best = 1e18;
    for (int i = 0; i < iters; ++i) {
      bench::WallTimer t;
      body();
      best = std::min(best, t.ElapsedMs());
    }
    return best;
  };

  perf.recompile_ms = min_iter_ms(kCompileIters, [&] {
    auto model = dmi::CompiledModel::Compile(graph, options);
    if (model->stats().core_tokens == 0) {
      std::abort();
    }
  });
  // json_reload and cold_load alternate within each round so both sides of
  // the gated ratio sample the same machine-speed window (a frequency dip
  // during only one phase would skew the ratio, not just the absolutes).
  for (int round = 0; round < kJsonIters; ++round) {
    perf.json_reload_ms = std::min(perf.json_reload_ms > 0 ? perf.json_reload_ms : 1e18,
                                   min_iter_ms(1, [&] {
                                     auto reloaded = dmi::DmiSession::LoadModel(json_path);
                                     if (!reloaded.ok()) {
                                       std::abort();
                                     }
                                     auto model = dmi::CompiledModel::Compile(*reloaded, options);
                                     if (model->stats().core_tokens == 0) {
                                       std::abort();
                                     }
                                   }));
    perf.cold_load_ms = std::min(perf.cold_load_ms > 0 ? perf.cold_load_ms : 1e18,
                                 min_iter_ms(kLoadIters / kJsonIters, [&] {
                                   auto loaded = dmi::LoadModelArtifact(artifact_path, options);
                                   if (!loaded.ok() || loaded->model->static_prompt_tokens() == 0) {
                                     std::abort();
                                   }
                                 }));
  }
  perf.cold_load_speedup =
      perf.cold_load_ms > 0 ? perf.json_reload_ms / perf.cold_load_ms : 1e9;
  perf.vs_recompile_speedup =
      perf.cold_load_ms > 0 ? perf.recompile_ms / perf.cold_load_ms : 1e9;
  std::remove(artifact_path.c_str());
  std::remove(json_path.c_str());
  return perf;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: binary model artifacts, cold-load vs recompile");
  bench::PerfRecorder recorder;

  const workload::AppKind kKinds[] = {workload::AppKind::kWord, workload::AppKind::kExcel,
                                      workload::AppKind::kPpoint};

  std::printf("  %-10s | %10s %10s %10s | %8s %8s | %9s %9s\n", "app", "recompile",
              "json-load", "cold-load", "vs-json", "vs-comp", "artifact", "identical");
  std::printf("  %-10s | %10s %10s %10s | %8s %8s | %9s %9s\n", "", "(ms)", "(ms)", "(ms)",
              "(x)", "(x)", "(KB)", "");
  bench::PrintRule();

  bool gate_ok = true;
  bool match_ok = true;
  jsonv::Array rows;
  for (workload::AppKind kind : kKinds) {
    ArtifactPerf p = BenchArtifact(kind);
    gate_ok = gate_ok && p.cold_load_speedup >= 10.0;
    match_ok = match_ok && p.identical;
    std::printf("  %-10s | %10.3f %10.3f %10.4f | %7.1fx %7.1fx | %9.0f %9s\n",
                p.app.c_str(), p.recompile_ms, p.json_reload_ms, p.cold_load_ms,
                p.cold_load_speedup, p.vs_recompile_speedup, p.artifact_bytes / 1024.0,
                p.identical ? "yes" : "NO");
    jsonv::Object row;
    row["app"] = p.app;
    row["recompile_ms"] = jsonv::Value(p.recompile_ms);
    row["json_reload_ms"] = jsonv::Value(p.json_reload_ms);
    row["cold_load_ms"] = jsonv::Value(p.cold_load_ms);
    row["cold_load_speedup"] = jsonv::Value(p.cold_load_speedup);
    row["vs_recompile_speedup"] = jsonv::Value(p.vs_recompile_speedup);
    row["artifact_bytes"] = jsonv::Value(p.artifact_bytes);
    row["identical"] = jsonv::Value(p.identical);
    rows.push_back(jsonv::Value(std::move(row)));
  }

  jsonv::Object section;
  section["artifact"] = jsonv::Value(std::move(rows));
  section["cold_load_speedup_gate"] = jsonv::Value(10.0);
  section["gate_passed"] = jsonv::Value(gate_ok && match_ok);
  recorder.Set("micro_artifact", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\nloaded model == compiled model outputs: %s\n", match_ok ? "PASS" : "FAIL");
  std::printf(">=10x cold-load vs persisted JSON reload gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return (gate_ok && match_ok) ? 0 : 1;
}
