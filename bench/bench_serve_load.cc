// bench_serve_load: closed-loop load generator for the dmi_serve stack
// (DESIGN.md §16).
//
// Simulates O(10k) synthetic users hammering one serve::SessionManager:
// every user is a closed loop (submit -> wait for the verdict -> submit the
// next request from the completion callback), users arrive by a seeded
// Poisson process, and the request mix rotates across every task in the
// OSWorld-W suite (all three app kinds) and a pool of tenants. All sessions
// run over the shared substrate — one CompiledModel per kind, pooled app
// instances, the fleet batch scheduler — with real wall-clock timing.
//
// Reported per scenario: sessions/sec throughput, exact p50/p99 end-to-end
// latency, peak concurrent (queued + running) sessions, failure counts, and
// how many failed sessions carried their flight recorder. The section is
// folded into BENCH_perf.json as "serve_load" and gated by
// tools/check_bench_regression.py: throughput against a floor, p99 against a
// ceiling — the harness's first latency-ceiling gate.
//
// Usage:
//   bench_serve_load [--users N] [--requests N] [--max-in-flight N] [--smoke]
//
// --smoke shrinks the load to a seconds-scale sanity pass and skips the
// BENCH_perf.json write, so a ctest run can exercise the path without
// polluting the perf gate's inputs.
#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/dmi/service_config.h"
#include "src/serve/session_manager.h"
#include "src/support/rng.h"
#include "src/workload/tasks.h"

namespace {

struct LoadResult {
  uint64_t sessions = 0;
  double wall_ms = 0.0;
  double throughput_sps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t peak_outstanding = 0;
  uint64_t failed_runs = 0;
  uint64_t failed_with_flight = 0;
  int64_t tokens_served = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

// One closed-loop scenario: `users` loops of `requests_per_user` sessions
// each, all in flight against one SessionManager.
LoadResult RunClosedLoop(serve::SessionManager& manager, int users,
                         int requests_per_user, const std::vector<std::string>& task_ids,
                         int tenants) {
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<double> latencies;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t failed_with_flight = 0;
  const uint64_t total =
      static_cast<uint64_t>(users) * static_cast<uint64_t>(requests_per_user);
  latencies.reserve(total);

  // Per-user state for the closed loop. The completion callback submits the
  // user's next request re-entrantly, so a user never has two sessions in
  // the system at once — concurrency equals active users.
  struct User {
    int remaining = 0;
    uint64_t next_seed = 0;
    size_t task_index = 0;
    std::string tenant;
  };
  std::vector<User> fleet(static_cast<size_t>(users));
  for (int u = 0; u < users; ++u) {
    fleet[static_cast<size_t>(u)].remaining = requests_per_user;
    fleet[static_cast<size_t>(u)].next_seed = static_cast<uint64_t>(u) * 7919ULL + 1;
    fleet[static_cast<size_t>(u)].task_index = static_cast<size_t>(u) % task_ids.size();
    fleet[static_cast<size_t>(u)].tenant =
        "tenant" + std::to_string(u % std::max(tenants, 1));
  }

  // The submit loop (shared by the arrival pass and the callbacks).
  std::function<void(int)> submit_for = [&](int u) {
    User& user = fleet[static_cast<size_t>(u)];
    serve::Request request;
    request.request_id = static_cast<uint64_t>(u) + 1;
    request.tenant = user.tenant;
    request.task_id = task_ids[user.task_index];
    request.seed = user.next_seed;
    user.task_index = (user.task_index + task_ids.size() / 3 + 1) % task_ids.size();
    user.next_seed = user.next_seed * 6364136223846793005ULL + 1442695040888963407ULL;
    --user.remaining;
    const support::Status admitted =
        manager.Submit(std::move(request), [&, u](serve::Response response) {
          bool more = false;
          {
            std::lock_guard<std::mutex> lock(mu);
            ++completed;
            latencies.push_back(response.total_ms);
            if (response.status.ok() && !response.result.success) {
              ++failed;
              if (response.result.flight != nullptr) {
                ++failed_with_flight;
              }
            }
            more = fleet[static_cast<size_t>(u)].remaining > 0;
          }
          if (more) {
            submit_for(u);
          } else {
            done_cv.notify_all();
          }
        });
    if (!admitted.ok()) {
      // Sized never to reject; a rejection here is a bench bug worth seeing.
      std::fprintf(stderr, "unexpected rejection: %s\n",
                   admitted.ToString().c_str());
      std::lock_guard<std::mutex> lock(mu);
      ++completed;
      done_cv.notify_all();
    }
  };

  // Poisson arrivals: seeded exponential inter-arrival draws fix the order
  // in which users enter the system (the virtual timeline mixes tenants and
  // app kinds the way independent arrivals would).
  support::Rng rng(42);
  std::vector<std::pair<double, int>> arrivals;
  arrivals.reserve(static_cast<size_t>(users));
  double clock = 0.0;
  for (int u = 0; u < users; ++u) {
    clock += -std::log(1.0 - rng.NextDouble());
    arrivals.emplace_back(clock, u);
  }
  rng.Shuffle(arrivals);  // arrival index decoupled from user index
  std::sort(arrivals.begin(), arrivals.end());

  bench::WallTimer timer;
  for (const auto& [when, u] : arrivals) {
    (void)when;
    submit_for(u);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return completed >= total; });
  }

  LoadResult result;
  result.wall_ms = timer.ElapsedMs();
  result.sessions = total;
  result.throughput_sps =
      result.wall_ms > 0 ? 1000.0 * static_cast<double>(total) / result.wall_ms : 0.0;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  const serve::SessionManager::Stats stats = manager.stats();
  result.peak_outstanding = stats.peak_outstanding;
  result.failed_runs = failed;
  result.failed_with_flight = failed_with_flight;
  result.tokens_served = stats.tokens_served;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int users = 10000;
  int requests_per_user = 2;
  int max_in_flight =
      std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() { return i + 1 < argc ? std::atoi(argv[++i]) : 0; };
    if (arg == "--users") {
      users = next();
    } else if (arg == "--requests") {
      requests_per_user = next();
    } else if (arg == "--max-in-flight") {
      max_in_flight = next();
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }
  if (smoke) {
    users = std::min(users, 200);
    requests_per_user = std::min(requests_per_user, 2);
  }
  if (max_in_flight <= 0) {
    max_in_flight = 4;
  }

  bench::PrintHeader("dmi_serve closed-loop load (multi-tenant serving daemon)");
  std::printf("users=%d, requests/user=%d, max_in_flight=%d%s\n", users,
              requests_per_user, max_in_flight, smoke ? " [smoke]" : "");

  dmi::ServiceConfig config;
  config.policy = "none";
  config.instability = "none";
  config.batch_size = 8;  // exercise the fleet batch scheduler under load
  config.max_in_flight = max_in_flight;
  config.queue_capacity = users * requests_per_user + max_in_flight;
  const support::Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "config: %s\n", valid.ToString().c_str());
    return 1;
  }

  std::vector<std::string> task_ids;
  for (const workload::Task& task : workload::BuildOsworldWSuite()) {
    task_ids.push_back(task.id);
  }

  serve::SessionManager manager(config);
  manager.PrewarmModels();  // model compile/load out of the timed window

  const LoadResult load =
      RunClosedLoop(manager, users, requests_per_user, task_ids, /*tenants=*/16);
  manager.Shutdown();

  bench::PrintRule();
  std::printf("%llu sessions in %.0f ms  ->  %.0f sessions/s\n",
              static_cast<unsigned long long>(load.sessions), load.wall_ms,
              load.throughput_sps);
  std::printf("latency: p50 %.2f ms, p99 %.2f ms (end-to-end, incl. queue)\n",
              load.p50_ms, load.p99_ms);
  std::printf("peak concurrent sessions: %llu (target >= 1000)%s\n",
              static_cast<unsigned long long>(load.peak_outstanding),
              !smoke && load.peak_outstanding < 1000 ? "  [BELOW TARGET]" : "");
  std::printf("failed runs: %llu (%llu with flight recorder attached)\n",
              static_cast<unsigned long long>(load.failed_runs),
              static_cast<unsigned long long>(load.failed_with_flight));
  std::printf("tokens served: %lld\n", static_cast<long long>(load.tokens_served));

  const agentsim::BatchScheduler::Stats batch = manager.runner().batch_stats();
  std::printf("fleet batching: %llu calls in %llu batches, amortized speedup %.2fx\n",
              static_cast<unsigned long long>(batch.calls),
              static_cast<unsigned long long>(batch.batches), batch.AmortizedSpeedup());

  if (!smoke) {
    jsonv::Object row;
    row["scenario"] = std::string("closed_loop");
    row["users"] = users;
    row["requests_per_user"] = requests_per_user;
    row["max_in_flight"] = max_in_flight;
    row["sessions"] = static_cast<int64_t>(load.sessions);
    row["wall_ms"] = load.wall_ms;
    row["throughput_sps"] = load.throughput_sps;
    row["p50_ms"] = load.p50_ms;
    row["p99_ms"] = load.p99_ms;
    row["peak_outstanding"] = static_cast<int64_t>(load.peak_outstanding);
    row["failed_runs"] = static_cast<int64_t>(load.failed_runs);
    row["failed_with_flight"] = static_cast<int64_t>(load.failed_with_flight);
    row["tokens_served"] = load.tokens_served;
    jsonv::Array rows;
    rows.push_back(jsonv::Value(std::move(row)));
    jsonv::Object section;
    section["load"] = jsonv::Value(std::move(rows));

    bench::PerfRecorder perf;
    perf.Set("serve_load", jsonv::Value(std::move(section)));
    // session.* / batch.* / app_pool.* labeled telemetry rides along in the
    // shared metrics section.
    perf.SetMetricsSnapshot();
    perf.Write();
  }
  return 0;
}
