// Microbenchmark: fleet-scale inference batching and the shared
// prompt-prefix cache (DESIGN.md §12).
//
// Two gates, both deterministic (pure arithmetic over real model token
// counts — no wall clock, so the committed floors are machine-independent):
//
//  1. Batching economics. Real WordSim prompt segments are pushed through
//     BatchScheduler at max batch sizes {1, 4, 16, 64}. The amortized
//     per-call latency must be strictly decreasing in batch size and the
//     speedup/throughput must clear the committed floors: a batch of B
//     prefills the shared static prefix once and decodes concurrently, so
//     per-call cost approaches 1/B of serial.
//
//  2. Shared-prefix residency. N = 8 concurrent sessions of one compiled
//     model must share the static prompt segment by pointer identity (one
//     copy per app kind, byte-identical through every session), and the
//     per-session resident prompt-cache bytes must shrink to the dynamic
//     segment only. resident_reduction = legacy private residency (N full
//     copies) over shared residency (one static copy + N dynamic segments).
//
// Results land in the "micro_batch" section of BENCH_perf.json; floors live
// in bench/BENCH_baseline.json (checked by tools/check_bench_regression.py).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/agent/batch_scheduler.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

std::unique_ptr<gsim::Application> MakeApp(const std::string& name) {
  if (name == "WordSim") {
    return std::make_unique<apps::WordSim>();
  }
  if (name == "ExcelSim") {
    return std::make_unique<apps::ExcelSim>();
  }
  return std::make_unique<apps::PpointSim>();
}

std::shared_ptr<const dmi::CompiledModel> CompileModel(const std::string& name) {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  std::unique_ptr<gsim::Application> scratch = MakeApp(name);
  ripper::GuiRipper rip(*scratch, options.ripper_config);
  return dmi::CompiledModel::Compile(rip.Rip(), options);
}

struct BatchRow {
  size_t batch_size = 0;
  double amortized_call_s = 0;
  double serial_call_s = 0;
  double speedup = 0;
  double tokens_per_sec = 0;
  uint64_t prefix_tokens_saved = 0;
};

struct MemoryRow {
  std::string app;
  size_t sessions = 0;
  size_t static_bytes = 0;        // shared: resident once per app kind
  size_t dynamic_bytes = 0;       // private: resident per session
  size_t shared_resident_bytes = 0;
  size_t legacy_resident_bytes = 0;  // N private copies of the full prompt
  double resident_reduction = 0;
  bool static_shared = false;  // pointer + byte identity across all sessions
};

// One simulated DMI core call: the shared static prefix plus this session's
// dynamic segment and task framing, emitting a typical plan.
constexpr size_t kTaskOverheadTokens = 200;
constexpr size_t kPlanOutputTokens = 140;

BatchRow BenchBatchSize(const agentsim::LlmProfile& profile, const void* prefix_key,
                        size_t prefix_tokens, size_t unique_tokens, size_t batch_size) {
  agentsim::BatchScheduler scheduler;
  agentsim::BatchOptions options;
  options.enabled = true;
  options.max_batch_size = batch_size;
  scheduler.Reset(options);
  // Submit exactly 64 calls regardless of batch size so every row amortizes
  // the same call stream (64 is divisible by every gate size).
  constexpr size_t kCalls = 64;
  for (size_t i = 0; i < kCalls; ++i) {
    scheduler.Submit(profile, prefix_key, prefix_tokens, unique_tokens,
                     kPlanOutputTokens);
  }
  scheduler.FlushAll();
  const agentsim::BatchScheduler::Stats stats = scheduler.stats();
  BatchRow row;
  row.batch_size = batch_size;
  row.amortized_call_s = stats.AmortizedCallLatencyS();
  row.serial_call_s = stats.serial_latency_s / static_cast<double>(stats.calls);
  row.speedup = stats.AmortizedSpeedup();
  row.tokens_per_sec = stats.TokensPerSec();
  row.prefix_tokens_saved = stats.prefix_tokens_saved;
  return row;
}

MemoryRow BenchResidency(const std::string& name) {
  MemoryRow row;
  row.app = name;
  row.sessions = 8;

  std::shared_ptr<const dmi::CompiledModel> model = CompileModel(name);
  std::vector<std::unique_ptr<gsim::Application>> apps;
  std::vector<std::unique_ptr<dmi::DmiSession>> sessions;
  for (size_t i = 0; i < row.sessions; ++i) {
    apps.push_back(MakeApp(name));
    sessions.push_back(std::make_unique<dmi::DmiSession>(*apps.back(), model));
  }

  const std::string& shared_static = model->static_prompt();
  row.static_bytes = shared_static.size();
  row.static_shared = true;
  const std::string reference = sessions[0]->BuildPromptContextUncached();
  for (auto& session : sessions) {
    const dmi::PromptView view = session->Prompt();
    // Pointer identity: every session serves the *same* static bytes, not a
    // private copy. Byte identity: assembling the view reproduces the
    // uncached reference exactly.
    row.static_shared = row.static_shared && view.static_text == &shared_static &&
                        view.Assemble() == reference;
    row.dynamic_bytes = session->PromptCacheBytes();
  }
  row.shared_resident_bytes = row.static_bytes + row.sessions * row.dynamic_bytes;
  row.legacy_resident_bytes = row.sessions * (row.static_bytes + row.dynamic_bytes);
  row.resident_reduction =
      row.shared_resident_bytes > 0
          ? static_cast<double>(row.legacy_resident_bytes) /
                static_cast<double>(row.shared_resident_bytes)
          : 0.0;
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: fleet batching + shared prompt-prefix cache");
  bench::PerfRecorder recorder;

  // ----- gate 1: continuous-batching economics -------------------------------
  const agentsim::LlmProfile profile = agentsim::LlmProfile::Gpt5Medium();
  std::shared_ptr<const dmi::CompiledModel> word = CompileModel("WordSim");
  std::unique_ptr<gsim::Application> word_app = MakeApp("WordSim");
  dmi::DmiSession word_session(*word_app, word);
  const size_t prefix_tokens = word->static_prompt_tokens();
  const size_t unique_tokens =
      word_session.PromptTokens() - prefix_tokens + kTaskOverheadTokens;

  std::printf("\n  prompt: %zu shared prefix tokens + %zu unique tokens/call "
              "(WordSim, %s %s)\n\n",
              prefix_tokens, unique_tokens, profile.model.c_str(),
              profile.reasoning.c_str());
  std::printf("  %-6s | %12s %12s %8s | %10s %14s\n", "batch", "amortized", "serial",
              "speedup", "tok/s", "prefix saved");
  std::printf("  %-6s | %12s %12s %8s | %10s %14s\n", "", "(s/call)", "(s/call)", "(x)",
              "", "(tokens)");
  bench::PrintRule();

  const size_t kBatchSizes[] = {1, 4, 16, 64};
  bool economics_ok = true;
  std::vector<BatchRow> batch_rows;
  for (size_t b : kBatchSizes) {
    BatchRow row = BenchBatchSize(profile, word.get(), prefix_tokens, unique_tokens, b);
    if (!batch_rows.empty()) {
      // The tentpole property: amortized per-call latency strictly decreasing
      // (and throughput strictly increasing) in batch size.
      economics_ok = economics_ok &&
                     row.amortized_call_s < batch_rows.back().amortized_call_s &&
                     row.tokens_per_sec > batch_rows.back().tokens_per_sec;
    }
    std::printf("  %-6zu | %12.2f %12.2f %7.2fx | %10.0f %14llu\n", row.batch_size,
                row.amortized_call_s, row.serial_call_s, row.speedup, row.tokens_per_sec,
                static_cast<unsigned long long>(row.prefix_tokens_saved));
    batch_rows.push_back(row);
  }

  // ----- gate 2: shared-prefix residency -------------------------------------
  std::printf("\n  %-10s %8s | %10s %10s | %12s %12s %9s | %7s\n", "app", "sessions",
              "static", "dynamic", "shared-res", "legacy-res", "reduction", "shared");
  std::printf("  %-10s %8s | %10s %10s | %12s %12s %9s | %7s\n", "", "", "(bytes)",
              "(bytes/s.)", "(bytes)", "(bytes)", "(x)", "");
  bench::PrintRule();

  const char* kApps[] = {"WordSim", "ExcelSim", "PpointSim"};
  bool residency_ok = true;
  std::vector<MemoryRow> memory_rows;
  for (const char* name : kApps) {
    MemoryRow row = BenchResidency(name);
    residency_ok = residency_ok && row.static_shared && row.resident_reduction > 1.0;
    std::printf("  %-10s %8zu | %10zu %10zu | %12zu %12zu %8.2fx | %7s\n",
                row.app.c_str(), row.sessions, row.static_bytes, row.dynamic_bytes,
                row.shared_resident_bytes, row.legacy_resident_bytes,
                row.resident_reduction, row.static_shared ? "yes" : "NO");
    memory_rows.push_back(row);
  }

  // ----- record --------------------------------------------------------------
  jsonv::Array batches;
  for (const BatchRow& row : batch_rows) {
    jsonv::Object o;
    o["batch_size"] = jsonv::Value(static_cast<int64_t>(row.batch_size));
    o["amortized_call_s"] = jsonv::Value(row.amortized_call_s);
    o["serial_call_s"] = jsonv::Value(row.serial_call_s);
    o["amortized_speedup"] = jsonv::Value(row.speedup);
    o["tokens_per_sec"] = jsonv::Value(row.tokens_per_sec);
    o["prefix_tokens_saved"] = jsonv::Value(static_cast<int64_t>(row.prefix_tokens_saved));
    batches.push_back(jsonv::Value(std::move(o)));
  }
  jsonv::Array residency;
  for (const MemoryRow& row : memory_rows) {
    jsonv::Object o;
    o["app"] = row.app;
    o["sessions"] = jsonv::Value(static_cast<int64_t>(row.sessions));
    o["static_prompt_bytes"] = jsonv::Value(static_cast<int64_t>(row.static_bytes));
    o["dynamic_bytes_per_session"] = jsonv::Value(static_cast<int64_t>(row.dynamic_bytes));
    o["shared_resident_bytes"] = jsonv::Value(static_cast<int64_t>(row.shared_resident_bytes));
    o["legacy_resident_bytes"] = jsonv::Value(static_cast<int64_t>(row.legacy_resident_bytes));
    o["resident_reduction"] = jsonv::Value(row.resident_reduction);
    o["static_shared"] = jsonv::Value(row.static_shared);
    residency.push_back(jsonv::Value(std::move(o)));
  }
  jsonv::Object section;
  section["batching"] = jsonv::Value(std::move(batches));
  section["residency"] = jsonv::Value(std::move(residency));
  section["gate_passed"] = jsonv::Value(economics_ok && residency_ok);
  recorder.Set("micro_batch", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\namortized latency strictly decreasing with batch size: %s\n",
              economics_ok ? "PASS" : "FAIL");
  std::printf("static prompt shared across sessions (pointer + bytes): %s\n",
              residency_ok ? "PASS" : "FAIL");
  return (economics_ok && residency_ok) ? 0 : 1;
}
