// Figure 5a reproduction: success-rate bars per setting (ASCII rendering).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

int main() {
  bench::PrintHeader("Figure 5a: success rate by interface and model");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  for (const bench::Setting& s : bench::Table3Settings()) {
    agentsim::RunConfig config;
    config.mode = s.mode;
    config.profile = s.profile;
    config.repeats = 3;
    agentsim::SuiteResult r = runner.RunSuite(tasks, config);
    const double sr = 100.0 * r.SuccessRate();
    std::string bar(static_cast<size_t>(sr / 2.0), '#');
    std::printf("  %-10s %-11s %-18s %5.1f%% |%s\n", s.label, s.knowledge,
                (s.profile.model + " " + s.profile.reasoning).c_str(), sr, bar.c_str());
  }
  std::printf("\nshape check: the GUI+DMI bar dominates within every model tier.\n");
  return 0;
}
