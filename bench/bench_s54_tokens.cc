// §5.4 reproduction: token overhead.
//
// Paper: >80% of DMI's extra context comes from the navigation forest; a
// serialized control costs ~15 tokens on average (o200k_base); core topologies
// add ~30K (Excel) / ~15K (Word) / ~15K (PowerPoint) tokens; yet DMI's total
// tokens per task end up LOWER than the baseline in the core setting because
// it needs far fewer rounds.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/text/tokens.h"

int main() {
  bench::PrintHeader("Section 5.4: context-token overhead");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  std::printf("Per-control and per-app topology token costs:\n");
  std::printf("  %-10s %10s %10s %12s %14s\n", "app", "core-ctrl", "core-tok",
              "tok/control", "full-topology");
  bench::PrintRule();
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    const dmi::ModelingStats& s = runner.modeling_stats(kind);
    std::printf("  %-10s %10zu %10zu %12.1f %14zu\n", workload::AppKindName(kind),
                s.core_nodes, s.core_tokens,
                static_cast<double>(s.core_tokens) / static_cast<double>(s.core_nodes),
                s.full_tokens);
  }
  std::printf("  (paper: ~15 tokens/control; cores ~30K/15K/15K tokens)\n");

  // Per-task total tokens, baseline vs DMI (successful runs, GPT-5 medium).
  agentsim::RunConfig gui;
  gui.mode = agentsim::InterfaceMode::kGuiOnly;
  gui.profile = agentsim::LlmProfile::Gpt5Medium();
  gui.repeats = 3;
  agentsim::RunConfig dmi = gui;
  dmi.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  agentsim::SuiteResult r_gui = runner.RunSuite(tasks, gui);
  agentsim::SuiteResult r_dmi = runner.RunSuite(tasks, dmi);

  std::printf("\nPer-task token totals, successful runs (GPT-5 medium):\n");
  bench::PrintRule();
  std::printf("  %-10s prompt=%8.0f total=%8.0f per-call=%6.0f steps=%5.2f\n", "GUI-only",
              r_gui.AvgPromptTokensSuccessful(), r_gui.AvgTotalTokensSuccessful(),
              r_gui.AvgPromptTokensSuccessful() / r_gui.AvgStepsSuccessful(),
              r_gui.AvgStepsSuccessful());
  std::printf("  %-10s prompt=%8.0f total=%8.0f per-call=%6.0f steps=%5.2f\n", "GUI+DMI",
              r_dmi.AvgPromptTokensSuccessful(), r_dmi.AvgTotalTokensSuccessful(),
              r_dmi.AvgPromptTokensSuccessful() / r_dmi.AvgStepsSuccessful(),
              r_dmi.AvgStepsSuccessful());

  const bool lower = r_dmi.AvgTotalTokensSuccessful() < 2.0 * r_gui.AvgTotalTokensSuccessful();
  std::printf("\nshape check: DMI's per-call prompt is larger (it carries the forest), but\n"
              "fewer rounds keep total usage comparable-to-lower (paper: lower): %s\n",
              lower ? "holds" : "VIOLATED");
  return 0;
}
