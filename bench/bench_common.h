// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure from the paper's evaluation (see DESIGN.md §3) and
// prints the paper's reported numbers next to ours for comparison.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/agent/task_runner.h"
#include "src/json/json.h"
#include "src/support/metrics.h"
#include "src/support/trace_export.h"

namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// The three evaluated settings of Table 3 (§5.3).
struct Setting {
  const char* label;
  agentsim::InterfaceMode mode;
  agentsim::LlmProfile profile;
  const char* knowledge;  // "/" or "Nav.forest"
};

inline std::vector<Setting> Table3Settings() {
  using agentsim::InterfaceMode;
  using agentsim::LlmProfile;
  return {
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5Medium(), "/"},
      {"GUI-only", InterfaceMode::kGuiOnlyForest, LlmProfile::Gpt5Medium(), "Nav.forest"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5Medium(), "Nav.forest"},
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5Minimal(), "/"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5Minimal(), "Nav.forest"},
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5MiniMedium(), "/"},
      {"GUI-only", InterfaceMode::kGuiOnlyForest, LlmProfile::Gpt5MiniMedium(),
       "Nav.forest"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5MiniMedium(), "Nav.forest"},
  };
}

// Real (not simulated) wall-clock stopwatch for the perf benches.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Collects named perf sections and merges them into a machine-readable
// BENCH_perf.json next to the bench binaries' working directory. Each bench
// owns its sections; re-running a bench overwrites only its own sections, so
// the file accumulates the whole harness's perf picture across runs.
class PerfRecorder {
 public:
  explicit PerfRecorder(std::string path = "BENCH_perf.json") : path_(std::move(path)) {}

  void Set(const std::string& section, jsonv::Value value) {
    sections_[section] = std::move(value);
  }

  // Convenience: record a suite-level row (wall clock + rip counters).
  static jsonv::Value RipStatsJson(const ripper::RipStats& stats) {
    jsonv::Object o;
    o["clicks"] = jsonv::Value(static_cast<int64_t>(stats.clicks));
    o["captures"] = jsonv::Value(static_cast<int64_t>(stats.captures));
    o["capture_rebuilds"] = jsonv::Value(static_cast<int64_t>(stats.capture_rebuilds));
    o["capture_cache_hits"] = jsonv::Value(static_cast<int64_t>(stats.capture_cache_hits));
    o["capture_hit_rate"] = jsonv::Value(stats.CaptureHitRate());
    o["indexed_lookups"] = jsonv::Value(static_cast<int64_t>(stats.indexed_lookups));
    o["explored"] = jsonv::Value(static_cast<int64_t>(stats.explored));
    o["simulated_ms"] = jsonv::Value(stats.simulated_ms);
    return jsonv::Value(std::move(o));
  }

  // Folds the process-wide metrics registry (counters, histograms, derived
  // rates like the capture-cache hit rate and visit fast-path rate) into the
  // "metrics" section. Call after the workload so the registry is populated.
  void SetMetricsSnapshot() {
    Set("metrics", support::MetricsJson(support::MetricsRegistry::Global().Snapshot()));
  }

  // Loads the existing file (if parseable), overlays this run's sections,
  // and writes the result back. Returns false if the file was unwritable.
  bool Write() const {
    jsonv::Object merged;
    {
      std::ifstream in(path_);
      if (in.good()) {
        std::stringstream buffer;
        buffer << in.rdbuf();
        auto existing = jsonv::Parse(buffer.str());
        if (existing.ok() && existing->is_object()) {
          merged = existing->as_object();
        }
      }
    }
    for (const auto& [section, value] : sections_) {
      merged[section] = value;
    }
    std::ofstream out(path_);
    if (!out.good()) {
      return false;
    }
    out << jsonv::Value(std::move(merged)).DumpPretty() << "\n";
    std::printf("\n[perf] wrote %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  jsonv::Object sections_;
};

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
