// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure from the paper's evaluation (see DESIGN.md §3) and
// prints the paper's reported numbers next to ours for comparison.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/agent/task_runner.h"

namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// The three evaluated settings of Table 3 (§5.3).
struct Setting {
  const char* label;
  agentsim::InterfaceMode mode;
  agentsim::LlmProfile profile;
  const char* knowledge;  // "/" or "Nav.forest"
};

inline std::vector<Setting> Table3Settings() {
  using agentsim::InterfaceMode;
  using agentsim::LlmProfile;
  return {
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5Medium(), "/"},
      {"GUI-only", InterfaceMode::kGuiOnlyForest, LlmProfile::Gpt5Medium(), "Nav.forest"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5Medium(), "Nav.forest"},
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5Minimal(), "/"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5Minimal(), "Nav.forest"},
      {"GUI-only", InterfaceMode::kGuiOnly, LlmProfile::Gpt5MiniMedium(), "/"},
      {"GUI-only", InterfaceMode::kGuiOnlyForest, LlmProfile::Gpt5MiniMedium(),
       "Nav.forest"},
      {"GUI+DMI", InterfaceMode::kGuiPlusDmi, LlmProfile::Gpt5MiniMedium(), "Nav.forest"},
  };
}

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
