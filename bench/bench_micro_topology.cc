// Micro-benchmarks (google-benchmark) for the hot offline-phase algorithms:
// decycling, selective externalization, serialization, path resolution, and
// the visit executor's end-to-end latency on a modeled application.
#include <benchmark/benchmark.h>

#include "src/apps/ppoint_sim.h"
#include "src/describe/catalog.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/support/rng.h"
#include "src/topology/transform.h"

namespace {

topo::NavGraph RandomGraph(int nodes, int extra_edges, uint64_t seed) {
  support::Rng rng(seed);
  topo::NavGraph g;
  std::vector<int> ids;
  for (int i = 0; i < nodes; ++i) {
    topo::NodeInfo info;
    info.control_id = "N" + std::to_string(i) + "|Button|bench";
    info.name = "Node " + std::to_string(i);
    info.type = uia::ControlType::kButton;
    ids.push_back(g.AddNode(info));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    g.AddEdge(i == 0 ? 0 : ids[rng.NextBelow(i)], ids[i]);
  }
  for (int e = 0; e < extra_edges; ++e) {
    size_t i = rng.NextBelow(ids.size() - 1);
    size_t j = i + 1 + rng.NextBelow(ids.size() - i - 1);
    g.AddEdge(ids[i], ids[j]);
  }
  return g;
}

void BM_Decycle(benchmark::State& state) {
  topo::NavGraph g = RandomGraph(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) / 2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::Decycle(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Decycle)->Range(256, 8192)->Complexity();

void BM_SelectiveExternalize(benchmark::State& state) {
  topo::NavGraph g = RandomGraph(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) / 2, 42);
  auto dag = topo::Decycle(g).dag;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo::SelectiveExternalize(dag, topo::kDefaultExternalizeThreshold));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectiveExternalize)->Range(256, 8192)->Complexity();

void BM_SerializeForest(benchmark::State& state) {
  topo::NavGraph g = RandomGraph(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) / 2, 42);
  auto dag = topo::Decycle(g).dag;
  topo::Forest f = topo::SelectiveExternalize(dag, topo::kDefaultExternalizeThreshold);
  for (auto _ : state) {
    benchmark::DoNotOptimize(desc::SerializeForest(dag, f, desc::DescribeOptions{}));
  }
}
BENCHMARK(BM_SerializeForest)->Range(256, 8192);

void BM_ResolvePath(benchmark::State& state) {
  topo::NavGraph g = RandomGraph(4096, 2048, 42);
  auto dag = topo::Decycle(g).dag;
  topo::Forest f = topo::SelectiveExternalize(dag, topo::kDefaultExternalizeThreshold);
  std::vector<int> leaf_ids;
  for (int id : f.AllIds()) {
    if (f.IsLeaf(id) && f.LocateById(id)->tree < 0) {
      leaf_ids.push_back(id);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ResolvePath(leaf_ids[i++ % leaf_ids.size()], {}));
  }
}
BENCHMARK(BM_ResolvePath);

// End-to-end visit latency (executor only, no LLM): the paper's Task 1 as a
// single declarative call against the live PpointSim.
void BM_VisitTask1(benchmark::State& state) {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  apps::PpointSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip();
  apps::PpointSim app;
  dmi::DmiSession session(app, std::move(graph), options);
  auto solid = session.ResolveTargetByNames({"Format Background Pane", "Solid fill"});
  auto blue = session.ResolveTargetByNames({"Fill Color", "Blue"});
  auto apply = session.ResolveTargetByNames({"Format Background Pane", "Apply to All"});
  for (auto _ : state) {
    app.ResetUiState();
    auto cmd = [](const dmi::ResolvedTarget& t) {
      dmi::VisitCommand c;
      c.target_id = t.id;
      c.entry_ref_ids = t.entry_ref_ids;
      return c;
    };
    benchmark::DoNotOptimize(
        session.VisitParsed({cmd(*solid), cmd(*blue), cmd(*apply)}));
  }
}
BENCHMARK(BM_VisitTask1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
