// Design-choice ablation: the externalization cost threshold (§3.2).
//
// Sweeps the selective-externalization threshold over the three ripped UNGs
// and reports the trade-off the cost-based algorithm balances: total forest
// size (context cost) vs the number of ids the LLM must declare per access
// (output-path length: 1 target id + entry refs).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/ripper/ripper.h"
#include "src/topology/transform.h"
#include "src/topology/validate.h"

int main() {
  bench::PrintHeader("Ablation: externalization threshold sweep (context vs declared ids)");

  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    dmi::ModelingOptions options = agentsim::TaskRunner::DefaultModelingOptions(kind);
    std::unique_ptr<gsim::Application> scratch;
    switch (kind) {
      case workload::AppKind::kWord:
        scratch = std::make_unique<apps::WordSim>();
        break;
      case workload::AppKind::kExcel:
        scratch = std::make_unique<apps::ExcelSim>();
        break;
      case workload::AppKind::kPpoint:
        scratch = std::make_unique<apps::PpointSim>();
        break;
    }
    ripper::GuiRipper rip(*scratch, options.ripper_config);
    topo::NavGraph graph = rip.Rip(options.contexts);
    auto dag = topo::Decycle(graph).dag;
    const uint64_t naive = topo::NaiveCloneCount(dag);

    std::printf("\n%s (DAG %zu nodes, naive clone %llu nodes):\n",
                workload::AppKindName(kind), dag.node_count(),
                static_cast<unsigned long long>(naive));
    std::printf("  %10s %9s %8s %6s %12s %7s\n", "threshold", "forest", "shared",
                "refs", "avg ids/acc", "paths");
    bench::PrintRule();
    for (uint64_t threshold : {0ULL, 2ULL, 8ULL, 24ULL, 128ULL, 4096ULL, 1000000ULL}) {
      topo::Forest forest = topo::SelectiveExternalize(dag, threshold);
      auto report = topo::ValidateForest(dag, forest);
      size_t refs_needed = 0;
      size_t targets = 0;
      for (int id : forest.AllIds()) {
        const topo::TreeNode* n = forest.FindById(id);
        if (n->is_reference || !n->children.empty()) {
          continue;
        }
        refs_needed += forest.LocateById(id)->tree >= 0 ? 1 : 0;
        ++targets;
      }
      std::printf("  %10llu %9zu %8zu %6zu %12.3f %7s\n",
                  static_cast<unsigned long long>(threshold), forest.total_nodes(),
                  forest.shared().size(), forest.reference_count(),
                  targets == 0 ? 0.0
                               : 1.0 + static_cast<double>(refs_needed) /
                                           static_cast<double>(targets),
                  report.ok ? "unique" : "BROKEN");
    }
  }
  std::printf("\nshape check: low thresholds externalize aggressively (more refs, smaller\n"
              "forest); huge thresholds converge to naive cloning. The default (24)\n"
              "keeps the forest near the DAG size with ~1 entry ref per shared access.\n");
  return 0;
}
