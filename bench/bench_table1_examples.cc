// Table 1 reproduction: imperative GUI action chains vs declarative DMI calls
// on the paper's two running examples.
//
//   Task 1: make the background blue on all slides.
//     GUI:  click(Design) -> click(Format Background) -> click(Solid fill)
//           -> click(Fill Color) -> click(Blue) -> click(Apply to All)
//     DMI:  visit(["Solid fill", "Blue", "Apply to All"])   (one call)
//   Task 2: show the area close to the end.
//     GUI:  iterative drag-and-drop on the scrollbar
//     DMI:  set_scrollbar_pos(80%)
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/ppoint_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/uia/tree.h"

int main() {
  bench::PrintHeader("Table 1: imperative GUI vs declarative DMI (task examples)");

  // ----- Task 1, imperative ---------------------------------------------------
  apps::PpointSim gui_app;
  const char* chain[] = {"Design",     "Format Background", "Solid fill",
                         "Fill Color", "Blue",              "Apply to All"};
  int gui_actions = 0;
  for (const char* name : chain) {
    auto* c = static_cast<gsim::Control*>(
        uia::FindByName(gui_app.main_window().root(), name));
    if (c == nullptr || !gui_app.Click(*c).ok()) {
      std::printf("GUI chain broke at '%s'\n", name);
      return 1;
    }
    ++gui_actions;
  }
  bool gui_ok = true;
  for (const auto& s : gui_app.slides()) {
    gui_ok &= s.background_color == "Blue" && s.background_solid;
  }

  // ----- Task 1, declarative ----------------------------------------------------
  dmi::ModelingOptions options =
      agentsim::TaskRunner::DefaultModelingOptions(workload::AppKind::kPpoint);
  apps::PpointSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  apps::PpointSim dmi_app;
  dmi::DmiSession session(dmi_app, std::move(graph), options);

  auto solid = session.ResolveTargetByNames({"Format Background Pane", "Solid fill"});
  auto blue = session.ResolveTargetByNames({"Fill Color", "Blue"});
  auto apply = session.ResolveTargetByNames({"Format Background Pane", "Apply to All"});
  if (!solid.ok() || !blue.ok() || !apply.ok()) {
    std::printf("DMI resolution failed\n");
    return 1;
  }
  auto cmd = [](const dmi::ResolvedTarget& t) {
    dmi::VisitCommand c;
    c.kind = dmi::VisitCommand::Kind::kAccess;
    c.target_id = t.id;
    c.entry_ref_ids = t.entry_ref_ids;
    return c;
  };
  dmi::VisitReport report = session.VisitParsed({cmd(*solid), cmd(*blue), cmd(*apply)});
  bool dmi_ok = report.overall.ok();
  for (const auto& s : dmi_app.slides()) {
    dmi_ok &= s.background_color == "Blue" && s.background_solid;
  }

  std::printf("Task 1 (background blue on all slides)\n");
  std::printf("  %-24s %-18s %-10s\n", "interface", "LLM-emitted steps", "verified");
  bench::PrintRule();
  std::printf("  %-24s %-18d %-10s   (paper: 6 clicks)\n", "imperative GUI", gui_actions,
              gui_ok ? "yes" : "NO");
  std::printf("  %-24s %-18s %-10s   (paper: 1 visit call, 3 ids)\n", "declarative DMI",
              "1 call / 3 ids", dmi_ok ? "yes" : "NO");

  // ----- Task 2 -------------------------------------------------------------------
  // Imperative: drag-observe iterations with misperception noise, averaged
  // over 50 seeds (each iteration is one LLM observe-act round trip).
  double total_iterations = 0;
  double final_pos = 0;
  constexpr int kSeeds = 50;
  for (int seed = 0; seed < kSeeds; ++seed) {
    apps::PpointSim trial_app;
    gsim::ScreenView trial_screen(trial_app);
    trial_screen.Refresh();
    gsim::InputDriver trial_input(trial_app, trial_screen, nullptr);
    support::Rng rng(static_cast<uint64_t>(seed) + 7);
    auto* sp = uia::PatternCast<uia::ScrollPattern>(*trial_app.slide_view_control());
    int it = 0;
    while (std::abs(sp->VerticalPercent() - 80.0) > 8.0 && it < 10) {
      // Misperceive the current position, drag by the perceived delta, and
      // overshoot/undershoot the drag amount itself.
      const double perceived = rng.Gaussian(sp->VerticalPercent(), 9.0);
      const double delta = (80.0 - perceived) * rng.Gaussian(1.0, 0.25);
      (void)trial_input.DragScrollThumb(*trial_app.slide_view_control(), true, delta);
      ++it;
    }
    total_iterations += it;
    final_pos += trial_app.view_scroll_percent();
  }
  const double iterations = total_iterations / kSeeds;
  apps::PpointSim gui_app2;
  {
    gsim::ScreenView s2(gui_app2);
    s2.Refresh();
    auto* sp = uia::PatternCast<uia::ScrollPattern>(*gui_app2.slide_view_control());
    (void)sp->SetScrollPercent(uia::ScrollPattern::kNoScroll, final_pos / kSeeds);
  }

  // Declarative: one state declaration.
  apps::PpointSim dmi_app2;
  gsim::ScreenView screen2(dmi_app2);
  screen2.Refresh();
  dmi::InteractionInterfaces ix(dmi_app2, screen2);
  auto status = ix.SetScrollbarPos(screen2.LabelOf(*dmi_app2.slide_view_control()), -1, 80.0);

  std::printf("\nTask 2 (show the area close to the end)\n");
  std::printf("  %-24s %-18s %-10s\n", "interface", "interactions", "result");
  bench::PrintRule();
  std::printf("  %-24s %-18.1f v=%.0f%%      (paper: iterative drag and drop)\n",
              "imperative GUI", iterations, gui_app2.view_scroll_percent());
  std::printf("  %-24s %-18d v=%.0f%%      (paper: set_scrollbar_pos(80%%))\n",
              "declarative DMI", 1, dmi_app2.view_scroll_percent());
  std::printf("\nshape check: DMI uses 1 declarative call per task; GUI needs %d clicks "
              "and %.1f drag-observe iterations on average.\n", gui_actions, iterations);
  return (gui_ok && dmi_ok && status.ok()) ? 0 : 1;
}
