// §5.2 reproduction: offline UI-navigation modeling cost.
//
// Paper: raw modeled graphs exceed 4K controls per app; core topologies are
// Excel ~2K, Word ~1K, PowerPoint ~1K controls; automated modeling takes
// < 3 hours per application; blocklist misses would cost expensive restarts.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/word_sim.h"
#include "src/ripper/ripper.h"

int main() {
  bench::PrintHeader("Section 5.2: offline phase — UI navigation modeling cost");
  agentsim::TaskRunner runner;

  std::printf("  %-10s %8s %8s %7s %7s %8s %7s %6s %9s %10s\n", "app", "raw", "edges",
              "merges", "cycles", "forest", "shared", "refs", "core", "core-tok");
  bench::PrintRule();
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    const dmi::ModelingStats& s = runner.modeling_stats(kind);
    std::printf("  %-10s %8zu %8zu %7zu %7zu %8zu %7zu %6zu %9zu %10zu\n",
                workload::AppKindName(kind), s.raw.nodes, s.raw.edges, s.raw.merge_nodes,
                s.back_edges_removed, s.forest_nodes, s.shared_subtrees, s.references,
                s.core_nodes, s.core_tokens);
  }
  std::printf("  (paper: raw >4K controls/app; cores Excel~2K, Word~1K, PPoint~1K)\n");

  std::printf("\nModeling cost (simulated UIA latencies: 120ms/click, 80ms/capture):\n");
  std::printf("  %-10s %9s %9s %9s %10s %9s %12s\n", "app", "clicks", "captures",
              "explored", "contexts", "cache-hit", "wall-time");
  bench::PrintRule();
  bench::PerfRecorder recorder;
  jsonv::Object rip_section;
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    const ripper::RipStats& s = runner.rip_stats(kind);
    std::printf("  %-10s %9llu %9llu %9llu %10llu %8.1f%% %9.1f min\n",
                workload::AppKindName(kind),
                static_cast<unsigned long long>(s.clicks),
                static_cast<unsigned long long>(s.captures),
                static_cast<unsigned long long>(s.explored),
                static_cast<unsigned long long>(s.contexts), 100.0 * s.CaptureHitRate(),
                s.simulated_ms / 60000.0);
    rip_section[workload::AppKindName(kind)] = bench::PerfRecorder::RipStatsJson(s);
  }
  recorder.Set("s52_modeling_rip", jsonv::Value(std::move(rip_section)));
  recorder.Write();
  std::printf("  (paper: automated modeling < 3 hours per application)\n");

  // Blocklist value: rip WordSim without the blocklist and count recoveries.
  std::printf("\nAccess blocklist ablation (WordSim):\n");
  bench::PrintRule();
  {
    apps::WordSim scratch;
    ripper::RipperConfig with;
    with.blocklist = {"Account", "Feedback"};
    ripper::GuiRipper rip_with(scratch, with);
    (void)rip_with.Rip();
    apps::WordSim scratch2;
    ripper::GuiRipper rip_without(scratch2, ripper::RipperConfig{});
    (void)rip_without.Rip();
    std::printf("  with blocklist:    %3llu external recoveries, %8.1f min simulated\n",
                static_cast<unsigned long long>(rip_with.stats().external_recoveries),
                rip_with.stats().simulated_ms / 60000.0);
    std::printf("  without blocklist: %3llu external recoveries, %8.1f min simulated\n",
                static_cast<unsigned long long>(rip_without.stats().external_recoveries),
                rip_without.stats().simulated_ms / 60000.0);
  }
  std::printf("\nshape check: raw graphs in the thousands with merge nodes and cycles;\n"
              "cores an order of magnitude smaller; modeling well under 3 hours.\n");
  return 0;
}
