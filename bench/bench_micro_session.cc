// Microbenchmark: amortized run startup (DESIGN.md §10).
//
// "cold" = the pre-split code path: every run re-runs the full modeling
// pipeline (decycle, selective externalization, catalog build, token
// counting) inside the DmiSession constructor. "warm" = the split path: the
// immutable CompiledModel is compiled once per app and every run attaches a
// thin session (visit executor + screen refresh) in O(dynamic state).
//
// The second table times the per-run application setup: constructing a fresh
// >4,000-control app per run versus leasing a pooled instance that is
// factory-reset between runs (workload::AppPool).
//
// Gates: warm session attach must be at least 5x faster than cold session
// construction for every app, and the warm session's assembled prompt must be
// byte-identical to the cold session's. Results land in the "micro_session"
// section of BENCH_perf.json; tools/check_bench_regression.py holds the
// floors from bench/BENCH_baseline.json.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/workload/app_pool.h"
#include "src/workload/tasks.h"

namespace {

std::unique_ptr<gsim::Application> MakeApp(workload::AppKind kind) {
  switch (kind) {
    case workload::AppKind::kWord:
      return std::make_unique<apps::WordSim>();
    case workload::AppKind::kExcel:
      return std::make_unique<apps::ExcelSim>();
    case workload::AppKind::kPpoint:
      return std::make_unique<apps::PpointSim>();
  }
  return nullptr;
}

const char* KindName(workload::AppKind kind) {
  switch (kind) {
    case workload::AppKind::kWord:
      return "WordSim";
    case workload::AppKind::kExcel:
      return "ExcelSim";
    case workload::AppKind::kPpoint:
      return "PpointSim";
  }
  return "?";
}

struct SessionPerf {
  std::string app;
  double cold_session_ms = 0;
  double warm_session_ms = 0;
  double warm_session_speedup = 0;
  bool identical = false;
};

struct PoolPerf {
  std::string app;
  double fresh_setup_ms = 0;
  double pooled_setup_ms = 0;
  double pooled_setup_speedup = 0;
};

SessionPerf BenchSessions(workload::AppKind kind) {
  SessionPerf perf;
  perf.app = KindName(kind);

  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  std::unique_ptr<gsim::Application> scratch = MakeApp(kind);
  ripper::GuiRipper rip(*scratch, options.ripper_config);
  const topo::NavGraph graph = rip.Rip();

  std::unique_ptr<gsim::Application> app = MakeApp(kind);
  std::shared_ptr<const dmi::CompiledModel> model = dmi::CompiledModel::Compile(graph, options);

  // Correctness first: a warm thin session must produce the same prompt
  // context, stats, and resolution surface as a cold full-pipeline session.
  {
    dmi::DmiSession cold(*app, graph, options);
    dmi::DmiSession warm(*app, model);
    perf.identical = cold.BuildPromptContextUncached() == warm.BuildPromptContextUncached() &&
                     cold.stats().core_tokens == warm.stats().core_tokens &&
                     cold.stats().full_tokens == warm.stats().full_tokens;
  }

  constexpr int kColdIters = 10;   // full modeling pipeline per construction
  constexpr int kWarmIters = 400;  // thin attach to the shared CompiledModel

  {
    bench::WallTimer t;
    for (int i = 0; i < kColdIters; ++i) {
      dmi::DmiSession session(*app, graph, options);
      if (session.stats().core_tokens == 0) {
        std::abort();
      }
    }
    perf.cold_session_ms = t.ElapsedMs() / kColdIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kWarmIters; ++i) {
      dmi::DmiSession session(*app, model);
      if (session.stats().core_tokens == 0) {
        std::abort();
      }
    }
    perf.warm_session_ms = t.ElapsedMs() / kWarmIters;
  }
  perf.warm_session_speedup =
      perf.warm_session_ms > 0 ? perf.cold_session_ms / perf.warm_session_ms : 1e9;
  return perf;
}

PoolPerf BenchPool(workload::AppKind kind) {
  PoolPerf perf;
  perf.app = KindName(kind);

  workload::Task task;
  task.id = "bench";
  task.app = kind;
  task.make_app = [kind] { return MakeApp(kind); };

  constexpr int kIters = 30;

  {
    workload::AppPool pool;
    bench::WallTimer t;
    for (int i = 0; i < kIters; ++i) {
      workload::AppPool::Lease lease = pool.Acquire(task, /*pooled=*/false);
      if (!lease) {
        std::abort();
      }
    }
    perf.fresh_setup_ms = t.ElapsedMs() / kIters;
  }
  {
    workload::AppPool pool;
    // Prime the pool so the loop times the steady state (reuse + reset), not
    // the one-time construction.
    { workload::AppPool::Lease lease = pool.Acquire(task); }
    bench::WallTimer t;
    for (int i = 0; i < kIters; ++i) {
      workload::AppPool::Lease lease = pool.Acquire(task);
      if (!lease) {
        std::abort();
      }
    }
    perf.pooled_setup_ms = t.ElapsedMs() / kIters;
  }
  perf.pooled_setup_speedup =
      perf.pooled_setup_ms > 0 ? perf.fresh_setup_ms / perf.pooled_setup_ms : 1e9;
  return perf;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: run startup, cold vs shared CompiledModel + app pool");
  bench::PerfRecorder recorder;

  const workload::AppKind kKinds[] = {workload::AppKind::kWord, workload::AppKind::kExcel,
                                      workload::AppKind::kPpoint};

  std::printf("  %-10s | %10s %10s %8s | %9s\n", "app", "cold-sess", "warm-sess", "speedup",
              "identical");
  std::printf("  %-10s | %10s %10s %8s | %9s\n", "", "(ms)", "(ms)", "(x)", "");
  bench::PrintRule();

  bool gate_ok = true;
  bool match_ok = true;
  jsonv::Array session_rows;
  for (workload::AppKind kind : kKinds) {
    SessionPerf p = BenchSessions(kind);
    gate_ok = gate_ok && p.warm_session_speedup >= 5.0;
    match_ok = match_ok && p.identical;
    std::printf("  %-10s | %10.4f %10.5f %7.0fx | %9s\n", p.app.c_str(), p.cold_session_ms,
                p.warm_session_ms, p.warm_session_speedup, p.identical ? "yes" : "NO");
    jsonv::Object row;
    row["app"] = p.app;
    row["cold_session_ms"] = jsonv::Value(p.cold_session_ms);
    row["warm_session_ms"] = jsonv::Value(p.warm_session_ms);
    row["warm_session_speedup"] = jsonv::Value(p.warm_session_speedup);
    row["identical"] = jsonv::Value(p.identical);
    session_rows.push_back(jsonv::Value(std::move(row)));
  }

  std::printf("\n  %-10s | %10s %10s %8s\n", "app", "fresh", "pooled", "speedup");
  std::printf("  %-10s | %10s %10s %8s\n", "", "(ms)", "(ms)", "(x)");
  bench::PrintRule();

  jsonv::Array pool_rows;
  for (workload::AppKind kind : kKinds) {
    PoolPerf p = BenchPool(kind);
    std::printf("  %-10s | %10.4f %10.4f %7.1fx\n", p.app.c_str(), p.fresh_setup_ms,
                p.pooled_setup_ms, p.pooled_setup_speedup);
    jsonv::Object row;
    row["app"] = p.app;
    row["fresh_setup_ms"] = jsonv::Value(p.fresh_setup_ms);
    row["pooled_setup_ms"] = jsonv::Value(p.pooled_setup_ms);
    row["pooled_setup_speedup"] = jsonv::Value(p.pooled_setup_speedup);
    pool_rows.push_back(jsonv::Value(std::move(row)));
  }

  jsonv::Object section;
  section["sessions"] = jsonv::Value(std::move(session_rows));
  section["pool"] = jsonv::Value(std::move(pool_rows));
  section["warm_speedup_gate"] = jsonv::Value(5.0);
  section["gate_passed"] = jsonv::Value(gate_ok && match_ok);
  recorder.Set("micro_session", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\nwarm session == cold session outputs: %s\n", match_ok ? "PASS" : "FAIL");
  std::printf(">=5x warm session attach gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return (gate_ok && match_ok) ? 0 : 1;
}
