// Figure 4 reproduction: navigation topology representations.
//
// Graph (imperative navigation), naive full-clone tree (unique paths but node
// explosion), and the cost-based forest (unique paths, linear size). Shown on
// the paper's schematic shape, a layered-diamond stress case, and all three
// ripped application UNGs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/ripper/ripper.h"
#include "src/topology/transform.h"
#include "src/topology/validate.h"

namespace {

topo::NodeInfo Node(const std::string& name) {
  topo::NodeInfo info;
  info.control_id = name + "|Button|fig4";
  info.name = name;
  info.type = uia::ControlType::kButton;
  return info;
}

// Figure 4's schematic: two navigation branches merging into a shared
// substructure with further children.
topo::NavGraph Figure4Graph() {
  topo::NavGraph g;
  int n1 = g.AddNode(Node("1"));
  int n4 = g.AddNode(Node("4"));
  int n5 = g.AddNode(Node("5"));
  int n6 = g.AddNode(Node("6"));
  int n7 = g.AddNode(Node("7"));
  int n9 = g.AddNode(Node("9"));
  int n12 = g.AddNode(Node("12"));
  int n13 = g.AddNode(Node("13"));
  g.AddEdge(0, n1);
  g.AddEdge(n1, n4);
  g.AddEdge(n1, n5);
  g.AddEdge(n4, n6);
  g.AddEdge(n5, n7);
  g.AddEdge(n4, n7);      // merge
  g.AddEdge(n6, n9);
  g.AddEdge(n7, n9);      // merge with substructure below
  g.AddEdge(n9, n12);
  g.AddEdge(n9, n13);
  return g;
}

void Report(const char* name, const topo::NavGraph& graph) {
  auto decycled = topo::Decycle(graph);
  const uint64_t naive = topo::NaiveCloneCount(decycled.dag);
  topo::Forest forest =
      topo::SelectiveExternalize(decycled.dag, topo::kDefaultExternalizeThreshold);
  auto report = topo::ValidateForest(decycled.dag, forest);

  // Average declared-path length (ids the LLM must emit = 1 target
  // + refs; navigation length handled by the executor).
  size_t total_refs = 0;
  size_t targets = 0;
  for (int id : forest.AllIds()) {
    const topo::TreeNode* n = forest.FindById(id);
    if (n->is_reference || !n->children.empty()) {
      continue;
    }
    auto loc = forest.LocateById(id);
    total_refs += loc->tree >= 0 ? 1 : 0;
    ++targets;
  }
  const double avg_ids = targets == 0
                             ? 0.0
                             : 1.0 + static_cast<double>(total_refs) /
                                         static_cast<double>(targets);

  std::printf("  %-12s %9zu %9zu %14llu %9zu %7zu %7zu %8.2f %9s\n", name,
              graph.node_count(), graph.edge_count(),
              static_cast<unsigned long long>(naive), forest.total_nodes(),
              forest.shared().size(), forest.reference_count(), avg_ids,
              report.ok ? "unique" : "BROKEN");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 4: graph vs naive clone tree vs cost-based forest\n"
      "(declared ids per access = target id + entry refs; paper: tree needs one id\n"
      " but explodes; forest needs <=2 ids with linear size)");
  std::printf("  %-12s %9s %9s %14s %9s %7s %7s %8s %9s\n", "topology", "nodes",
              "edges", "naive-clone", "forest", "shared", "refs", "ids/acc", "paths");
  bench::PrintRule();

  Report("figure4", Figure4Graph());

  // Layered diamonds: exponential naive blow-up, linear forest.
  {
    topo::NavGraph g;
    int prev = 0;
    for (int layer = 0; layer < 30; ++layer) {
      int a = g.AddNode(Node("A" + std::to_string(layer)));
      int b = g.AddNode(Node("B" + std::to_string(layer)));
      int j = g.AddNode(Node("J" + std::to_string(layer)));
      g.AddEdge(prev, a);
      g.AddEdge(prev, b);
      g.AddEdge(a, j);
      g.AddEdge(b, j);
      prev = j;
    }
    Report("diamonds30", g);
  }

  // The three ripped application UNGs.
  agentsim::TaskRunner runner;
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    // Re-rip via the runner's cached model path for consistent construction.
    (void)runner.modeling_stats(kind);
  }
  for (auto kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                    workload::AppKind::kPpoint}) {
    dmi::ModelingOptions options = agentsim::TaskRunner::DefaultModelingOptions(kind);
    std::unique_ptr<gsim::Application> scratch;
    switch (kind) {
      case workload::AppKind::kWord:
        scratch = std::make_unique<apps::WordSim>();
        break;
      case workload::AppKind::kExcel:
        scratch = std::make_unique<apps::ExcelSim>();
        break;
      case workload::AppKind::kPpoint:
        scratch = std::make_unique<apps::PpointSim>();
        break;
    }
    ripper::GuiRipper rip(*scratch, options.ripper_config);
    topo::NavGraph graph = rip.Rip(options.contexts);
    Report(workload::AppKindName(kind), graph);
  }

  std::printf("\nshape check: the forest column stays within ~1.1x of the graph while\n"
              "naive cloning multiplies nodes; every access path is unique.\n");
  return 0;
}
