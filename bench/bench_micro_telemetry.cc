// Microbenchmark: causal-telemetry cost contracts (DESIGN.md §8, §13).
//
// Two gates:
//
//  1. Disabled-tracing cost. With the recorder off, a TraceSpan open/close
//     pair must stay at one relaxed atomic load — no allocation, no clock
//     read, no thread-local buffer touch. The gate measures span pairs per
//     second (disabled_span_mops, millions/s) and requires that the
//     disabled run records exactly zero events. This is the contract that
//     lets DMI_TRACE_SPAN sit permanently on hot paths (ripper capture,
//     prompt assembly, visit navigation) without a build-time switch.
//
//  2. Enabled-tracing overhead. The same fleet-mode suite slice (2 workers,
//     batching, typical policy) runs traced and untraced, best-of-N wall
//     clock each, interleaved to share thermal/cache state. traced_speedup =
//     untraced / traced must stay near 1.0: span recording (thread-local
//     buffers, microsecond stamps, causal-context bookkeeping) and labeled
//     counters must not tax the suite measurably. The contract is <=5%
//     overhead on a quiet machine; the committed floor (0.8) sits below to
//     absorb CI noise while still catching a hot-path regression (a lock or
//     allocation on the span path shows up as 2-10x, not 5%).
//
// Results land in the "micro_telemetry" section of BENCH_perf.json; floors
// live in bench/BENCH_baseline.json (checked by
// tools/check_bench_regression.py).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/dmi/policy.h"
#include "src/support/trace.h"

namespace {

// Gate 1: span pairs per microsecond with the recorder off. The `sink`
// accumulation stops the compiler from collapsing the loop (armed() reads
// the per-span capture of the enable flag).
double MeasureDisabledSpanMops(size_t iters) {
  support::TraceRecorder::Global().SetEnabled(false);
  support::TraceRecorder::Global().Discard();
  uint64_t sink = 0;
  bench::WallTimer timer;
  for (size_t i = 0; i < iters; ++i) {
    support::TraceSpan span("bench.disabled", "bench");
    sink += span.armed() ? 1 : 0;
  }
  const double ms = timer.ElapsedMs();
  if (sink != 0 || support::TraceRecorder::Global().Drain().size() != 0) {
    return 0.0;  // contract broken: disabled spans recorded something
  }
  return ms > 0.0 ? static_cast<double>(iters) / (ms * 1000.0) : 0.0;
}

// One fleet-mode suite slice: every telemetry surface lights up — pool
// submission contexts, run scopes, batch flush links, labeled counters,
// per-run flight recorders.
double RunSuiteMs(const std::vector<workload::Task>& tasks, bool traced) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  config.repeats = 2;
  config.seed = 7;
  config.workers = 2;
  config.batch.enabled = true;
  config.batch.max_batch_size = 8;
  config.ApplyPolicy(dmi::Policy::Typical());
  support::TraceRecorder::Global().Discard();
  support::TraceRecorder::Global().SetEnabled(traced);
  agentsim::TaskRunner runner;
  bench::WallTimer timer;
  agentsim::SuiteResult result = runner.RunSuite(tasks, config);
  const double ms = timer.ElapsedMs();
  support::TraceRecorder::Global().SetEnabled(false);
  support::TraceRecorder::Global().Discard();
  return result.records.empty() ? 0.0 : ms;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: causal telemetry cost contracts");
  bench::PerfRecorder recorder;

  // ----- gate 1: disabled-tracing cost ---------------------------------------
  constexpr size_t kSpanIters = 4000000;
  MeasureDisabledSpanMops(kSpanIters / 8);  // warm-up
  const double disabled_span_mops = MeasureDisabledSpanMops(kSpanIters);
  std::printf("\n  disabled span open/close: %.1f M pairs/s (%zu iters, 0 events)\n",
              disabled_span_mops, kSpanIters);
  const bool disabled_ok = disabled_span_mops > 5.0;

  // ----- gate 2: enabled-tracing overhead ------------------------------------
  std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  constexpr int kRounds = 3;
  double untraced_ms = 0.0;
  double traced_ms = 0.0;
  RunSuiteMs(tasks, false);  // warm-up (model compile caches, allocator)
  for (int round = 0; round < kRounds; ++round) {
    const double off = RunSuiteMs(tasks, false);
    const double on = RunSuiteMs(tasks, true);
    untraced_ms = (round == 0) ? off : std::min(untraced_ms, off);
    traced_ms = (round == 0) ? on : std::min(traced_ms, on);
  }
  const double traced_speedup = traced_ms > 0.0 ? untraced_ms / traced_ms : 0.0;
  const double overhead_pct = traced_speedup > 0.0 ? (1.0 / traced_speedup - 1.0) * 100.0
                                                   : 100.0;
  std::printf("  fleet suite slice: untraced %.1f ms, traced %.1f ms "
              "(best of %d) -> overhead %.1f%%\n",
              untraced_ms, traced_ms, kRounds, overhead_pct);
  const bool traced_ok = traced_speedup > 0.8;

  // ----- record --------------------------------------------------------------
  jsonv::Array rows;
  {
    jsonv::Object o;
    o["case"] = jsonv::Value("disabled_span");
    o["iters"] = jsonv::Value(static_cast<int64_t>(kSpanIters));
    o["disabled_span_mops"] = jsonv::Value(disabled_span_mops);
    rows.push_back(jsonv::Value(std::move(o)));
  }
  {
    jsonv::Object o;
    o["case"] = jsonv::Value("suite_traced");
    o["untraced_ms"] = jsonv::Value(untraced_ms);
    o["traced_ms"] = jsonv::Value(traced_ms);
    o["traced_speedup"] = jsonv::Value(traced_speedup);
    o["overhead_pct"] = jsonv::Value(overhead_pct);
    rows.push_back(jsonv::Value(std::move(o)));
  }
  jsonv::Object section;
  section["tracing"] = jsonv::Value(std::move(rows));
  section["gate_passed"] = jsonv::Value(disabled_ok && traced_ok);
  recorder.Set("micro_telemetry", jsonv::Value(std::move(section)));
  recorder.Write();

  std::printf("\ndisabled span cost contract (>5 M pairs/s, 0 events): %s\n",
              disabled_ok ? "PASS" : "FAIL");
  std::printf("enabled tracing overhead contract (speedup > 0.8): %s\n",
              traced_ok ? "PASS" : "FAIL");
  return (disabled_ok && traced_ok) ? 0 : 1;
}
