// Microbenchmark: capture and id-lookup costs before/after the VisibleIndex
// (the rip-pipeline hot path), plus end-to-end rip wall-clock cached vs
// uncached and serial vs pooled multi-context ripping.
//
// "legacy" = the pre-index code path: a full accessibility-tree walk with
// per-element ancestor-path re-synthesis for every capture, and a full walk
// for every FindVisibleById. "indexed" = the generation-stamped VisibleIndex
// (cold = first access after invalidation, warm = unchanged generation).
//
// Gate: warm indexed lookup must be at least 5x faster than a legacy find —
// the bench prints PASS/FAIL and exits nonzero on FAIL so the harness can
// catch perf regressions. Results land in BENCH_perf.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/ripper/identifier.h"
#include "src/ripper/ripper.h"
#include "src/ripper/visible_index.h"
#include "src/support/thread_pool.h"
#include "src/uia/tree.h"

namespace {

std::unique_ptr<gsim::Application> MakeApp(const std::string& name) {
  if (name == "WordSim") {
    return std::make_unique<apps::WordSim>();
  }
  if (name == "ExcelSim") {
    return std::make_unique<apps::ExcelSim>();
  }
  return std::make_unique<apps::PpointSim>();
}

// The pre-index CaptureVisible: full walk, per-element id synthesis.
std::vector<ripper::VisibleEntry> LegacyCapture(gsim::Application& app) {
  std::vector<ripper::VisibleEntry> out;
  uia::Walk(app.AccessibilityRoot(), [&](uia::Element& e, int) {
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() == 0) {
      return true;
    }
    out.push_back(
        ripper::VisibleEntry{ripper::SynthesizeControlId(e), static_cast<gsim::Control*>(&e)});
    return true;
  });
  return out;
}

// The pre-index FindVisibleById: full walk until the id matches.
gsim::Control* LegacyFind(gsim::Application& app, const std::string& control_id) {
  gsim::Control* found = nullptr;
  uia::Walk(app.AccessibilityRoot(), [&](uia::Element& e, int) {
    if (found != nullptr || e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() != 0 && ripper::SynthesizeControlId(e) == control_id) {
      found = static_cast<gsim::Control*>(&e);
      return false;
    }
    return true;
  });
  return found;
}

struct AppPerf {
  std::string app;
  size_t visible = 0;
  double legacy_capture_ms = 0;
  double cold_capture_ms = 0;
  double warm_capture_ms = 0;
  double legacy_find_ms = 0;
  double warm_find_ms = 0;
  double find_speedup = 0;
  bool entries_match = false;
};

AppPerf BenchApp(const std::string& name) {
  AppPerf perf;
  perf.app = name;
  std::unique_ptr<gsim::Application> app = MakeApp(name);
  ripper::VisibleIndex index(*app);

  // Correctness first: the indexed capture must reproduce the legacy capture
  // entry-for-entry (same order, same id strings).
  std::vector<ripper::VisibleEntry> legacy = LegacyCapture(*app);
  const std::vector<ripper::VisibleEntry>& indexed = index.Visible();
  perf.visible = legacy.size();
  perf.entries_match = legacy.size() == indexed.size();
  for (size_t i = 0; perf.entries_match && i < legacy.size(); ++i) {
    perf.entries_match =
        legacy[i].control_id == indexed[i].control_id && legacy[i].control == indexed[i].control;
  }
  // Worst-case legacy lookup: the last element in pre-order.
  const std::string target = legacy.back().control_id;

  constexpr int kSlowIters = 40;    // full-walk operations
  constexpr int kFastIters = 4000;  // hash-probe operations

  {
    bench::WallTimer t;
    for (int i = 0; i < kSlowIters; ++i) {
      std::vector<ripper::VisibleEntry> captured = LegacyCapture(*app);
      if (captured.size() != perf.visible) {
        std::abort();
      }
    }
    perf.legacy_capture_ms = t.ElapsedMs() / kSlowIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kSlowIters; ++i) {
      index.Invalidate();  // force a rebuild without mutating app state
      (void)index.Visible();
    }
    perf.cold_capture_ms = t.ElapsedMs() / kSlowIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kFastIters; ++i) {
      (void)index.Visible();
    }
    perf.warm_capture_ms = t.ElapsedMs() / kFastIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kSlowIters; ++i) {
      if (LegacyFind(*app, target) == nullptr) {
        std::abort();
      }
    }
    perf.legacy_find_ms = t.ElapsedMs() / kSlowIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kFastIters; ++i) {
      if (index.FindById(target) == nullptr) {
        std::abort();
      }
    }
    perf.warm_find_ms = t.ElapsedMs() / kFastIters;
  }
  perf.find_speedup = perf.warm_find_ms > 0 ? perf.legacy_find_ms / perf.warm_find_ms : 1e9;
  return perf;
}

struct RipPerf {
  std::string app;
  double uncached_ms = 0;
  double cached_ms = 0;
  double hit_rate = 0;
  size_t nodes = 0;
  bool identical = false;
};

RipPerf BenchRip(const std::string& name) {
  RipPerf perf;
  perf.app = name;
  ripper::RipperConfig config;
  config.blocklist = {"Account", "Feedback"};
  // Keep the end-to-end comparison quick: the full-depth rips run in the
  // test suite; wall-clock ratios are stable at moderate depth.
  config.max_depth = name == "WordSim" ? 4 : 6;

  topo::NavGraph cached_graph;
  topo::NavGraph uncached_graph;
  {
    config.use_visible_index = false;
    std::unique_ptr<gsim::Application> app = MakeApp(name);
    ripper::GuiRipper ripper(*app, config);
    bench::WallTimer t;
    uncached_graph = ripper.Rip();
    perf.uncached_ms = t.ElapsedMs();
  }
  {
    config.use_visible_index = true;
    std::unique_ptr<gsim::Application> app = MakeApp(name);
    ripper::GuiRipper ripper(*app, config);
    bench::WallTimer t;
    cached_graph = ripper.Rip();
    perf.cached_ms = t.ElapsedMs();
    perf.hit_rate = ripper.stats().CaptureHitRate();
  }
  perf.nodes = cached_graph.node_count();
  perf.identical = cached_graph.ToJson().Dump() == uncached_graph.ToJson().Dump();
  return perf;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: capture & lookup, legacy walk vs VisibleIndex");
  bench::PerfRecorder recorder;

  const char* kApps[] = {"WordSim", "ExcelSim", "PpointSim"};

  std::printf("  %-10s %8s | %12s %12s %12s | %12s %12s %9s\n", "app", "visible",
              "legacy-cap", "cold-cap", "warm-cap", "legacy-find", "warm-find", "speedup");
  std::printf("  %-10s %8s | %12s %12s %12s | %12s %12s %9s\n", "", "", "(ms)", "(ms)",
              "(ms)", "(ms)", "(ms)", "(x)");
  bench::PrintRule();

  bool gate_ok = true;
  bool match_ok = true;
  jsonv::Array micro_rows;
  for (const char* name : kApps) {
    AppPerf p = BenchApp(name);
    gate_ok = gate_ok && p.find_speedup >= 5.0;
    match_ok = match_ok && p.entries_match;
    std::printf("  %-10s %8zu | %12.4f %12.4f %12.4f | %12.4f %12.5f %9.0f\n",
                p.app.c_str(), p.visible, p.legacy_capture_ms, p.cold_capture_ms,
                p.warm_capture_ms, p.legacy_find_ms, p.warm_find_ms, p.find_speedup);
    jsonv::Object row;
    row["app"] = p.app;
    row["visible"] = jsonv::Value(static_cast<int64_t>(p.visible));
    row["legacy_capture_ms"] = jsonv::Value(p.legacy_capture_ms);
    row["cold_capture_ms"] = jsonv::Value(p.cold_capture_ms);
    row["warm_capture_ms"] = jsonv::Value(p.warm_capture_ms);
    row["legacy_find_ms"] = jsonv::Value(p.legacy_find_ms);
    row["warm_find_ms"] = jsonv::Value(p.warm_find_ms);
    row["warm_find_speedup"] = jsonv::Value(p.find_speedup);
    row["entries_match"] = jsonv::Value(p.entries_match);
    micro_rows.push_back(jsonv::Value(std::move(row)));
  }

  std::printf("\nEnd-to-end rip, uncached vs cached (same graph required):\n");
  std::printf("  %-10s %8s | %12s %12s %8s %9s %10s\n", "app", "nodes", "uncached(ms)",
              "cached(ms)", "speedup", "hit-rate", "identical");
  bench::PrintRule();
  jsonv::Array rip_rows;
  bool rip_ok = true;
  for (const char* name : kApps) {
    RipPerf p = BenchRip(name);
    rip_ok = rip_ok && p.identical;
    std::printf("  %-10s %8zu | %12.1f %12.1f %7.2fx %8.1f%% %10s\n", p.app.c_str(),
                p.nodes, p.uncached_ms, p.cached_ms,
                p.cached_ms > 0 ? p.uncached_ms / p.cached_ms : 0.0, 100.0 * p.hit_rate,
                p.identical ? "yes" : "NO");
    jsonv::Object row;
    row["app"] = p.app;
    row["nodes"] = jsonv::Value(static_cast<int64_t>(p.nodes));
    row["uncached_ms"] = jsonv::Value(p.uncached_ms);
    row["cached_ms"] = jsonv::Value(p.cached_ms);
    row["capture_hit_rate"] = jsonv::Value(p.hit_rate);
    row["identical_graph"] = jsonv::Value(p.identical);
    rip_rows.push_back(jsonv::Value(std::move(row)));
  }

  jsonv::Object section;
  section["lookup"] = jsonv::Value(std::move(micro_rows));
  section["rip_end_to_end"] = jsonv::Value(std::move(rip_rows));
  section["warm_find_speedup_gate"] = jsonv::Value(5.0);
  section["gate_passed"] = jsonv::Value(gate_ok && match_ok && rip_ok);
  recorder.Set("micro_capture", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\ncapture equivalence: %s\n", match_ok ? "PASS" : "FAIL");
  std::printf("cached == uncached graphs: %s\n", rip_ok ? "PASS" : "FAIL");
  std::printf(">=5x warm FindVisibleById gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return (gate_ok && match_ok && rip_ok) ? 0 : 1;
}
