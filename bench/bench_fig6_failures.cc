// Figure 6 reproduction: failure-cause distribution (policy vs mechanism).
//
// Paper (GPT-5 medium): with GUI+DMI ~81% of failures are policy-level
// (ambiguous tasks 42.9%, control-semantics misreads 28.6%, weak visual
// semantics 14.3%, subtle semantics 9.5%, topology 4.8%); the GUI-only
// baseline is dominated by mechanism failures (navigation 14/45,
// composite interaction 7/45, plus overlapping policy errors).
#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Distribution(const char* label, const agentsim::SuiteResult& r) {
  auto dist = r.FailureDistribution();
  int policy = 0;
  int mechanism = 0;
  for (const auto& [cause, n] : dist) {
    if (agentsim::IsPolicyFailure(cause)) {
      policy += n;
    } else {
      mechanism += n;
    }
  }
  const int total = policy + mechanism;
  std::printf("\n%s: %d failures over %d runs\n", label, total, r.TotalRuns());
  bench::PrintRule();
  for (const auto& [cause, n] : dist) {
    std::printf("  [%9s] %-45s %3d  (%4.1f%%)\n",
                agentsim::IsPolicyFailure(cause) ? "policy" : "mechanism",
                std::string(agentsim::FailureCauseName(cause)).c_str(), n,
                total > 0 ? 100.0 * n / total : 0.0);
  }
  if (total > 0) {
    std::printf("  policy: %.1f%%   mechanism: %.1f%%\n", 100.0 * policy / total,
                100.0 * mechanism / total);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 6: failure-cause distribution (GPT-5 medium)");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  agentsim::RunConfig config;
  config.profile = agentsim::LlmProfile::Gpt5Medium();
  config.repeats = 3;

  config.mode = agentsim::InterfaceMode::kGuiOnly;
  agentsim::SuiteResult gui = runner.RunSuite(tasks, config);
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  agentsim::SuiteResult dmi = runner.RunSuite(tasks, config);

  Distribution("GUI-only baseline (paper: mechanism-dominated)", gui);
  Distribution("GUI+DMI (paper: ~81% policy, ~19% mechanism)", dmi);

  std::printf("\nshape check: DMI removes most mechanism failures (navigation, composite\n"
              "interaction, grounding), re-centering errors at the policy level.\n");
  return 0;
}
