// Design-choice ablation: DMI's robustness machinery (§3.4).
//
// Toggles the executor's three robustness mechanisms — non-leaf filtering,
// fuzzy control matching, failure retries — on/off and sweeps instability
// levels, measuring the GUI+DMI success rate (GPT-5 medium). Shows what each
// mechanism buys under real-world UI hazards.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  bench::PrintHeader("Ablation: DMI robustness mechanisms under instability");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  struct Variant {
    const char* label;
    bool filter, fuzzy, retry;
  };
  const Variant variants[] = {
      {"full DMI (all on)", true, true, true},
      {"no non-leaf filter", false, true, true},
      {"no fuzzy matching", true, false, true},
      {"no retries", true, true, false},
      {"all off", false, false, false},
  };
  struct Level {
    const char* label;
    gsim::InstabilityConfig config;
  };
  const Level levels[] = {
      {"none", gsim::InstabilityConfig::None()},
      {"typical", gsim::InstabilityConfig::Typical()},
      {"harsh", gsim::InstabilityConfig::Harsh()},
  };

  std::printf("  %-22s %10s %10s %10s\n", "executor variant", "none", "typical", "harsh");
  bench::PrintRule();
  for (const Variant& v : variants) {
    std::printf("  %-22s", v.label);
    for (const Level& level : levels) {
      agentsim::RunConfig config;
      config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
      config.profile = agentsim::LlmProfile::Gpt5Medium();
      config.repeats = 2;
      config.instability = level.config;
      config.visit.enable_nonleaf_filter = v.filter;
      config.visit.enable_fuzzy_match = v.fuzzy;
      config.visit.enable_retry = v.retry;
      agentsim::SuiteResult r = runner.RunSuite(tasks, config);
      double actions = 0;
      int n = 0;
      for (const auto& rec : r.records) {
        for (const auto& run : rec.runs) {
          if (run.success) {
            actions += static_cast<double>(run.ui_actions);
            ++n;
          }
        }
      }
      std::printf(" %5.1f%%/%4.1f", 100.0 * r.SuccessRate(), n ? actions / n : 0.0);
    }
    std::printf("\n");
  }
  std::printf("  (cells: success rate / avg executed UI actions per successful run)\n");
  std::printf("\nshape check: fuzzy matching carries most of the SR robustness under\n"
              "name-variation hazards; retries absorb slow loads; the non-leaf filter\n"
              "mostly prevents wasted actions from slipped navigation commands (compare\n"
              "the action column) and guards against stray state disruption.\n");
  return 0;
}
