// Fault-domain ablation: the robustness layer under escalating hazards
// (DESIGN.md §11).
//
// Sweeps the dmi::Policy presets None -> Typical -> Harsh -> Hostile. Each
// preset pairs an instability level with the retry/deadline posture
// calibrated for it: Hostile adds the new fault domains (stale element
// references, transient pattern failures, dropped window events, app-freeze
// windows) plus a per-run tick deadline, and leans on exponential backoff
// with jitter to survive them. Reports the GUI+DMI success rate per preset
// alongside the robust.* counters the layer emits, and records the
// deterministic success rates into BENCH_perf.json for the regression floor
// (tools/check_bench_regression.py).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/dmi/policy.h"

int main() {
  bench::PrintHeader("Ablation: fault domains vs. the robustness layer");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  struct Level {
    const char* label;
    dmi::Policy policy;
  };
  const Level levels[] = {
      {"none", dmi::Policy::None()},
      {"typical", dmi::Policy::Typical()},
      {"harsh", dmi::Policy::Harsh()},
      {"hostile", dmi::Policy::Hostile()},
  };

  std::printf("  %-10s %8s %8s %10s %10s %10s %10s\n", "preset", "SR", "steps",
              "clk-retry", "ix-retry", "ddl-skip", "faults");
  bench::PrintRule();

  jsonv::Array rows;
  for (const Level& level : levels) {
    const auto before = support::MetricsRegistry::Global().Snapshot();
    agentsim::RunConfig config;
    config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
    config.profile = agentsim::LlmProfile::Gpt5Medium();
    config.repeats = 2;
    config.ApplyPolicy(level.policy);
    agentsim::SuiteResult r = runner.RunSuite(tasks, config);
    const auto after = support::MetricsRegistry::Global().Snapshot();
    auto delta = [&](const char* name) {
      return after.CounterValue(name) - before.CounterValue(name);
    };
    const uint64_t click_retries = delta("robust.click_retries");
    const uint64_t ix_retries = delta("robust.interaction_retries");
    const uint64_t ddl_skips = delta("robust.deadline_skipped_commands");
    const uint64_t faults = delta("robust.fault_stale_ref") + delta("robust.fault_pattern") +
                            delta("robust.fault_event_drop") + delta("robust.fault_freeze");
    std::printf("  %-10s %7.1f%% %8.2f %10llu %10llu %10llu %10llu\n", level.label,
                100.0 * r.SuccessRate(), r.AvgStepsSuccessful(),
                static_cast<unsigned long long>(click_retries),
                static_cast<unsigned long long>(ix_retries),
                static_cast<unsigned long long>(ddl_skips),
                static_cast<unsigned long long>(faults));

    jsonv::Object row;
    row["level"] = level.label;
    row["success_rate"] = r.SuccessRate();
    row["click_retries"] = static_cast<int64_t>(click_retries);
    row["interaction_retries"] = static_cast<int64_t>(ix_retries);
    row["deadline_skipped_commands"] = static_cast<int64_t>(ddl_skips);
    row["faults_injected"] = static_cast<int64_t>(faults);
    rows.push_back(jsonv::Value(std::move(row)));
  }
  std::printf(
      "  (SR is exact for a fixed seed; the injected fault domains only fire\n"
      "   at the hostile preset, where retries + the per-run deadline keep the\n"
      "   suite degrading gracefully instead of crashing or hanging)\n");

  bench::PerfRecorder perf;
  jsonv::Object section;
  section["levels"] = jsonv::Value(std::move(rows));
  perf.Set("ablation_faults", jsonv::Value(std::move(section)));
  perf.Write();
  return 0;
}
