// Microbenchmark: describe/query-path costs before/after the catalog and
// prompt caches.
//
// "uncached" = the pre-cache code path: a fresh forest serialization for
// every further_query(-1), a fresh prompt assembly + full token re-count for
// every turn. "warm" = the cached paths: call_once-memoized FullText /
// FullTokens on the immutable catalog, and the generation-stamped prompt
// cache on DmiSession (valid while no UI mutation bumped the generation).
//
// Gates: warm FullText and warm PromptTokens must each be at least 5x faster
// than their uncached equivalents, and every cached output must be
// byte-identical to the uncached reference. The bench prints PASS/FAIL and
// exits nonzero on FAIL so the harness catches perf regressions. Results land
// in the "micro_describe" section of BENCH_perf.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"
#include "src/text/tokens.h"

namespace {

std::unique_ptr<gsim::Application> MakeApp(const std::string& name) {
  if (name == "WordSim") {
    return std::make_unique<apps::WordSim>();
  }
  if (name == "ExcelSim") {
    return std::make_unique<apps::ExcelSim>();
  }
  return std::make_unique<apps::PpointSim>();
}

struct DescribePerf {
  std::string app;
  size_t forest_nodes = 0;
  size_t full_tokens = 0;
  double uncached_full_ms = 0;
  double warm_full_ms = 0;
  double full_speedup = 0;
  double uncached_prompt_ms = 0;
  double warm_prompt_ms = 0;
  double prompt_speedup = 0;
  bool identical = false;
};

DescribePerf BenchApp(const std::string& name) {
  DescribePerf perf;
  perf.app = name;

  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  std::unique_ptr<gsim::Application> scratch = MakeApp(name);
  ripper::GuiRipper rip(*scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip();
  std::unique_ptr<gsim::Application> app = MakeApp(name);
  dmi::DmiSession session(*app, std::move(graph), options);
  const desc::TopologyCatalog& catalog = session.catalog();
  perf.forest_nodes = catalog.forest().total_nodes();

  // Correctness first: the cached artifacts must reproduce the uncached
  // reference byte-for-byte, and the segment-summed token count must equal
  // the monolithic count of the assembled prompt. The warm prompt path is the
  // two-segment PromptView (static on the shared model, dynamic cached on the
  // session); its assembly must match the uncached reference too.
  perf.identical = catalog.FullText() == catalog.FullTextUncached() &&
                   catalog.FullTokens() == textutil::CountTokens(catalog.FullTextUncached()) &&
                   session.Prompt().Assemble() == session.BuildPromptContextUncached() &&
                   session.BuildPromptContext() == session.BuildPromptContextUncached() &&
                   session.PromptTokens() ==
                       textutil::CountTokens(session.BuildPromptContextUncached());
  perf.full_tokens = catalog.FullTokens();

  constexpr int kSlowIters = 40;    // full serialization / assembly + re-count
  constexpr int kFastIters = 4000;  // cached-path operations

  {
    bench::WallTimer t;
    for (int i = 0; i < kSlowIters; ++i) {
      std::string full = catalog.FullTextUncached();
      size_t tokens = textutil::CountTokens(full);
      if (tokens != perf.full_tokens) {
        std::abort();
      }
    }
    perf.uncached_full_ms = t.ElapsedMs() / kSlowIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kFastIters; ++i) {
      if (catalog.FullText().empty() || catalog.FullTokens() != perf.full_tokens) {
        std::abort();
      }
    }
    perf.warm_full_ms = t.ElapsedMs() / kFastIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kSlowIters; ++i) {
      std::string prompt = session.BuildPromptContextUncached();
      if (textutil::CountTokens(prompt) == 0) {
        std::abort();
      }
    }
    perf.uncached_prompt_ms = t.ElapsedMs() / kSlowIters;
  }
  {
    bench::WallTimer t;
    for (int i = 0; i < kFastIters; ++i) {
      // The warm turn: zero-copy two-segment view plus the cached count. No
      // assembly — callers consume the segments directly.
      const dmi::PromptView view = session.Prompt();
      if (view.tokens == 0 || view.static_text->empty() ||
          session.PromptTokens() != view.tokens) {
        std::abort();
      }
    }
    perf.warm_prompt_ms = t.ElapsedMs() / kFastIters;
  }
  perf.full_speedup =
      perf.warm_full_ms > 0 ? perf.uncached_full_ms / perf.warm_full_ms : 1e9;
  perf.prompt_speedup =
      perf.warm_prompt_ms > 0 ? perf.uncached_prompt_ms / perf.warm_prompt_ms : 1e9;
  return perf;
}

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: describe/query path, uncached vs cached");
  bench::PerfRecorder recorder;

  const char* kApps[] = {"WordSim", "ExcelSim", "PpointSim"};

  std::printf("  %-10s %7s %7s | %11s %10s %8s | %11s %10s %8s | %9s\n", "app", "nodes",
              "tokens", "full-uncach", "full-warm", "speedup", "prompt-unc", "prompt-warm",
              "speedup", "identical");
  std::printf("  %-10s %7s %7s | %11s %10s %8s | %11s %10s %8s | %9s\n", "", "", "",
              "(ms)", "(ms)", "(x)", "(ms)", "(ms)", "(x)", "");
  bench::PrintRule();

  bool gate_ok = true;
  bool match_ok = true;
  jsonv::Array rows;
  for (const char* name : kApps) {
    DescribePerf p = BenchApp(name);
    gate_ok = gate_ok && p.full_speedup >= 5.0 && p.prompt_speedup >= 5.0;
    match_ok = match_ok && p.identical;
    std::printf("  %-10s %7zu %7zu | %11.4f %10.5f %7.0fx | %11.4f %10.5f %7.0fx | %9s\n",
                p.app.c_str(), p.forest_nodes, p.full_tokens, p.uncached_full_ms,
                p.warm_full_ms, p.full_speedup, p.uncached_prompt_ms, p.warm_prompt_ms,
                p.prompt_speedup, p.identical ? "yes" : "NO");
    jsonv::Object row;
    row["app"] = p.app;
    row["forest_nodes"] = jsonv::Value(static_cast<int64_t>(p.forest_nodes));
    row["full_tokens"] = jsonv::Value(static_cast<int64_t>(p.full_tokens));
    row["uncached_full_ms"] = jsonv::Value(p.uncached_full_ms);
    row["warm_full_ms"] = jsonv::Value(p.warm_full_ms);
    row["warm_full_speedup"] = jsonv::Value(p.full_speedup);
    row["uncached_prompt_ms"] = jsonv::Value(p.uncached_prompt_ms);
    row["warm_prompt_ms"] = jsonv::Value(p.warm_prompt_ms);
    row["warm_prompt_speedup"] = jsonv::Value(p.prompt_speedup);
    row["identical"] = jsonv::Value(p.identical);
    rows.push_back(jsonv::Value(std::move(row)));
  }

  jsonv::Object section;
  section["describe"] = jsonv::Value(std::move(rows));
  section["warm_speedup_gate"] = jsonv::Value(5.0);
  section["gate_passed"] = jsonv::Value(gate_ok && match_ok);
  recorder.Set("micro_describe", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\ncached == uncached outputs: %s\n", match_ok ? "PASS" : "FAIL");
  std::printf(">=5x warm FullText+PromptTokens gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return (gate_ok && match_ok) ? 0 : 1;
}
