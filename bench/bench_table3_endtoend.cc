// Table 3 reproduction: end-to-end results across interfaces and models.
//
// Eight settings: {GUI-only, GUI-only+forest, GUI+DMI} x {GPT-5 medium} plus
// {GUI-only, GUI+DMI} x {GPT-5 minimal} plus {GUI-only, GUI-only+forest,
// GUI+DMI} x {GPT-5-mini medium}. 27 tasks, 3 trials each, metrics averaged
// over successful runs (the paper's convention).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  // Optional worker count for the suite fan-out: `bench_table3_endtoend [N]`
  // (0 = one worker per hardware thread). Results are identical for any N;
  // only the wall clock changes.
  int workers = 1;
  if (argc > 1) {
    workers = std::atoi(argv[1]);
  }
  bench::PrintHeader("Table 3: results across interfaces and models");
  std::printf("  suite workers: %d%s\n", workers, workers == 0 ? " (hardware)" : "");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  struct PaperRow {
    double sr, steps, time;
  };
  const PaperRow paper[] = {
      {44.4, 8.16, 392}, {42.0, 8.41, 353}, {74.1, 4.61, 239},
      {23.5, 8.42, 251}, {40.7, 5.52, 140},
      {17.3, 7.14, 171}, {23.5, 6.32, 150}, {43.2, 4.43, 167},
  };

  std::printf("  %-10s %-11s %-10s %-9s | %6s %6s %8s | %6s %6s %8s\n", "interface",
              "knowledge", "model", "reasoning", "SR%", "steps", "time(s)", "SR%*",
              "steps*", "time(s)*");
  std::printf("  %74s (* = paper)\n", "");
  bench::PrintRule();

  auto settings = bench::Table3Settings();
  bench::WallTimer suite_timer;
  jsonv::Array setting_rows;
  for (size_t i = 0; i < settings.size(); ++i) {
    const bench::Setting& s = settings[i];
    agentsim::RunConfig config;
    config.mode = s.mode;
    config.profile = s.profile;
    config.repeats = 3;
    config.workers = workers;
    bench::WallTimer t;
    agentsim::SuiteResult r = runner.RunSuite(tasks, config);
    const double wall_ms = t.ElapsedMs();
    std::printf("  %-10s %-11s %-10s %-9s | %6.1f %6.2f %8.0f | %6.1f %6.2f %8.0f\n",
                s.label, s.knowledge, s.profile.model.c_str(),
                s.profile.reasoning.c_str(), 100.0 * r.SuccessRate(),
                r.AvgStepsSuccessful(), r.AvgTimeSuccessful(), paper[i].sr,
                paper[i].steps, paper[i].time);
    if (i == 2 || i == 4) {
      bench::PrintRule();
    }
    jsonv::Object row;
    row["interface"] = std::string(s.label);
    row["model"] = s.profile.model;
    row["reasoning"] = s.profile.reasoning;
    row["success_rate"] = jsonv::Value(r.SuccessRate());
    row["avg_steps"] = jsonv::Value(r.AvgStepsSuccessful());
    row["avg_time_s"] = jsonv::Value(r.AvgTimeSuccessful());
    row["wall_ms"] = jsonv::Value(wall_ms);
    setting_rows.push_back(jsonv::Value(std::move(row)));
  }

  {
    bench::PerfRecorder recorder;
    jsonv::Object section;
    section["workers"] = jsonv::Value(static_cast<int64_t>(workers));
    section["pool_apps"] = jsonv::Value(agentsim::RunConfig{}.pool_apps);
    section["total_wall_ms"] = jsonv::Value(suite_timer.ElapsedMs());
    section["settings"] = jsonv::Value(std::move(setting_rows));
    jsonv::Object rips;
    for (workload::AppKind kind : {workload::AppKind::kWord, workload::AppKind::kExcel,
                                   workload::AppKind::kPpoint}) {
      rips[workload::AppKindName(kind)] =
          bench::PerfRecorder::RipStatsJson(runner.rip_stats(kind));
    }
    section["rip"] = jsonv::Value(std::move(rips));
    recorder.Set("table3_endtoend", jsonv::Value(std::move(section)));
    recorder.SetMetricsSnapshot();
    recorder.Write();
  }

  std::printf("\nshape check: within each model tier, GUI+DMI raises SR (paper: 1.67x for\n"
              "GPT-5 medium), cuts steps by ~40%% and completion time by ~35-45%%; the\n"
              "forest-as-knowledge row changes little for the strong model but helps the\n"
              "small one.\n");
  return 0;
}
