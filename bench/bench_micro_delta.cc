// Microbenchmark: delta ripping + incremental recompile (DESIGN.md §15).
//
// An app update typically touches a handful of UI partitions; re-modeling it
// from scratch re-rips >4K controls anyway. The delta path diffs per-subtree
// structural checksums against the baseline model and re-rips only the
// changed partitions, splicing the rest of the baseline graph through.
//
// Two ways to obtain the updated build's CompiledModel:
//   full_remodel   checksum walk + full GuiRipper rip + canonicalize +
//                  Compile (what every version bump previously cost)
//   delta_remodel  DeltaRip against the baseline table + RecompileDelta
//                  (carrying memoized subtree serializations over)
//
// Mutations are renames spread round-robin over WordSim's main-tree
// partitions (k renames touch min(k, partitions) subtrees), sweeping
// {1, 4, 16}. Gate: the delta path must be at least 5x faster than the full
// remodel for the 1-subtree update, and every delta model must serialize
// byte-identically to its full-remodel reference. Each timing is the minimum
// over its iterations. Results land in the "micro_delta" section of
// BENCH_perf.json; tools/check_bench_regression.py holds the floors from
// bench/BENCH_baseline.json.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/session.h"
#include "src/ripper/delta.h"
#include "src/ripper/ripper.h"

namespace {

gsim::Control* FindControl(gsim::Control& root, const std::string& name) {
  gsim::Control* found = nullptr;
  root.WalkStatic([&](gsim::Control& c) {
    if (found == nullptr && c.TrueName() == name) {
      found = &c;
    }
  });
  return found;
}

// One stable anchor name per main-tree partition (root children and expanded
// ribbon tabs), derived from the pristine checksum table so the bench tracks
// the partition scheme instead of hardcoding the WordSim layout. The tab
// strip's residual partition is skipped: renaming the strip would rename
// every tab partition key at once.
std::vector<std::string> PartitionAnchors() {
  apps::WordSim app;
  std::vector<std::string> names;
  for (const ripper::SubtreeChecksum& entry : ripper::ComputeSubtreeChecksums(app)) {
    constexpr const char kMain[] = "main:";
    if (entry.key.rfind(kMain, 0) != 0) {
      continue;
    }
    std::string name = entry.key.substr(sizeof(kMain) - 1);
    const size_t slash = name.rfind('/');
    if (slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    gsim::Control* control = FindControl(app.main_window().root(), name);
    if (control == nullptr || control->Type() == uia::ControlType::kTab) {
      continue;
    }
    names.push_back(std::move(name));
  }
  return names;
}

// Renames the first proper descendant of each of `count` partition anchors
// (round-robin), modeling an update that touches that many subtrees. Falls
// back to renaming the anchor itself for leaf partitions.
void MutateRoundRobin(gsim::Application& app, const std::vector<std::string>& anchors,
                      int count) {
  // Resolve every anchor before the first rename: a leaf partition's rename
  // targets the anchor itself, which a wrapped round-robin pass could no
  // longer find by its pristine name.
  std::vector<gsim::Control*> resolved;
  resolved.reserve(anchors.size());
  for (const std::string& name : anchors) {
    gsim::Control* control = FindControl(app.main_window().root(), name);
    if (control == nullptr) {
      std::abort();
    }
    resolved.push_back(control);
  }
  for (int k = 0; k < count; ++k) {
    gsim::Control* anchor = resolved[static_cast<size_t>(k) % resolved.size()];
    gsim::Control* target = nullptr;
    anchor->WalkStatic([&](gsim::Control& c) {
      if (target == nullptr && &c != anchor) {
        target = &c;
      }
    });
    if (target == nullptr) {
      target = anchor;
    }
    target->RenameTo(target->TrueName() + " v" + std::to_string(k + 1));
  }
}

struct DeltaPerf {
  int mutations = 0;
  size_t changed_partitions = 0;
  size_t nodes_reused = 0;
  double full_ms = 0;
  double delta_ms = 0;
  double delta_speedup = 0;
  bool identical = false;
};

}  // namespace

int main() {
  bench::PrintHeader("Micro-bench: delta rip + incremental recompile vs full remodel");
  bench::PerfRecorder recorder;

  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  const std::vector<std::string> anchors = PartitionAnchors();
  if (anchors.empty()) {
    std::fprintf(stderr, "no partition anchors found\n");
    return 1;
  }

  // Baseline (version N): the pipeline every process already ran once.
  apps::WordSim baseline_app;
  const ripper::ChecksumTable baseline_checksums =
      ripper::ComputeSubtreeChecksums(baseline_app);
  ripper::GuiRipper baseline_rip(baseline_app, options.ripper_config);
  const topo::NavGraph baseline_graph = baseline_rip.Rip(options.contexts).Canonicalized();
  const std::shared_ptr<const dmi::CompiledModel> baseline_model =
      dmi::CompiledModel::Compile(baseline_graph, options, &baseline_rip.stats(),
                                  &baseline_checksums);

  auto min_iter_ms = [](int iters, auto&& body) {
    double best = 1e18;
    for (int i = 0; i < iters; ++i) {
      bench::WallTimer t;
      body();
      best = std::min(best, t.ElapsedMs());
    }
    return best;
  };

  constexpr int kIters = 3;
  const int kMutationSweep[] = {1, 4, 16};

  std::printf("  %-10s | %10s %10s | %8s | %8s %8s | %9s\n", "mutations", "full", "delta",
              "speedup", "changed", "reused", "identical");
  std::printf("  %-10s | %10s %10s | %8s | %8s %8s | %9s\n", "", "(ms)", "(ms)", "(x)",
              "(parts)", "(nodes)", "");
  bench::PrintRule();

  bool gate_ok = true;
  bool match_ok = true;
  jsonv::Array rows;
  for (const int mutations : kMutationSweep) {
    auto factory = [&]() -> std::unique_ptr<gsim::Application> {
      auto app = std::make_unique<apps::WordSim>();
      MutateRoundRobin(*app, anchors, mutations);
      return app;
    };

    DeltaPerf perf;
    perf.mutations = mutations;

    std::shared_ptr<const dmi::CompiledModel> full_model;
    std::shared_ptr<const dmi::CompiledModel> delta_model;
    // full and delta alternate per round so both sides of the gated ratio
    // sample the same machine-speed window.
    for (int round = 0; round < kIters; ++round) {
      const double full_ms = min_iter_ms(1, [&] {
        std::unique_ptr<gsim::Application> scratch = factory();
        const ripper::ChecksumTable checksums = ripper::ComputeSubtreeChecksums(*scratch);
        ripper::GuiRipper rip(*scratch, options.ripper_config);
        const topo::NavGraph graph = rip.Rip(options.contexts).Canonicalized();
        full_model = dmi::CompiledModel::Compile(graph, options, &rip.stats(), &checksums);
      });
      perf.full_ms = std::min(perf.full_ms > 0 ? perf.full_ms : 1e18, full_ms);

      const double delta_ms = min_iter_ms(1, [&] {
        ripper::DeltaRipOptions delta_options;
        delta_options.config = options.ripper_config;
        delta_options.extra_contexts = options.contexts;
        delta_options.app_factory = factory;
        auto delta = ripper::DeltaRip(delta_options, baseline_graph, baseline_checksums);
        if (!delta.ok() || delta->full_fallback) {
          std::fprintf(stderr, "delta rip failed or fell back\n");
          std::abort();
        }
        delta_model = dmi::CompiledModel::RecompileDelta(*baseline_model, delta->graph,
                                                         options, &delta->stats,
                                                         &delta->checksums);
        perf.changed_partitions = delta->diff.changed.size() + delta->diff.added.size() +
                                  delta->diff.removed.size();
        perf.nodes_reused = delta->nodes_reused;
      });
      perf.delta_ms = std::min(perf.delta_ms > 0 ? perf.delta_ms : 1e18, delta_ms);
    }
    perf.delta_speedup = perf.delta_ms > 0 ? perf.full_ms / perf.delta_ms : 1e9;
    perf.identical = delta_model->catalog().FullText() == full_model->catalog().FullText() &&
                     delta_model->static_prompt() == full_model->static_prompt();

    if (mutations == 1) {
      gate_ok = gate_ok && perf.delta_speedup >= 5.0;
    }
    match_ok = match_ok && perf.identical;
    std::printf("  %-10d | %10.2f %10.2f | %7.1fx | %8zu %8zu | %9s\n", perf.mutations,
                perf.full_ms, perf.delta_ms, perf.delta_speedup, perf.changed_partitions,
                perf.nodes_reused, perf.identical ? "yes" : "NO");

    jsonv::Object row;
    row["mutations"] = jsonv::Value(static_cast<double>(perf.mutations));
    row["full_ms"] = jsonv::Value(perf.full_ms);
    row["delta_ms"] = jsonv::Value(perf.delta_ms);
    row["delta_speedup"] = jsonv::Value(perf.delta_speedup);
    row["changed_partitions"] = jsonv::Value(static_cast<double>(perf.changed_partitions));
    row["nodes_reused"] = jsonv::Value(static_cast<double>(perf.nodes_reused));
    row["identical"] = jsonv::Value(perf.identical);
    rows.push_back(jsonv::Value(std::move(row)));
  }

  jsonv::Object section;
  section["delta"] = jsonv::Value(std::move(rows));
  section["delta_speedup_gate"] = jsonv::Value(5.0);
  section["gate_passed"] = jsonv::Value(gate_ok && match_ok);
  recorder.Set("micro_delta", jsonv::Value(std::move(section)));
  recorder.SetMetricsSnapshot();
  recorder.Write();

  std::printf("\ndelta model == full remodel outputs: %s\n", match_ok ? "PASS" : "FAIL");
  std::printf(">=5x delta vs full remodel gate (1-subtree update): %s\n",
              gate_ok ? "PASS" : "FAIL");
  return (gate_ok && match_ok) ? 0 : 1;
}
