// §5.5 reproduction: ablation — declarative interface vs static knowledge.
//
// Providing the DMI navigation forest in the prompt while disabling the
// declarative interface (UFO2-as + forest) isolates the knowledge effect:
// the paper finds no significant change for GPT-5 (SR 42% vs 44.4%) but a
// modest gain for GPT-5-mini (23.5% vs 17.3%), while full DMI yields much
// larger gains for both — the interface, not the knowledge, drives the win.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Row(agentsim::TaskRunner& runner, const std::vector<workload::Task>& tasks,
         const char* label, agentsim::InterfaceMode mode,
         const agentsim::LlmProfile& profile, double paper_sr, double paper_steps) {
  agentsim::RunConfig config;
  config.mode = mode;
  config.profile = profile;
  config.repeats = 3;
  agentsim::SuiteResult r = runner.RunSuite(tasks, config);
  std::printf("  %-22s %6.1f%% %7.2f   | paper: %5.1f%% %6.2f\n", label,
              100.0 * r.SuccessRate(), r.AvgStepsSuccessful(), paper_sr, paper_steps);
}

}  // namespace

int main() {
  bench::PrintHeader("Section 5.5: ablation — interface vs static knowledge");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  std::printf("GPT-5 (medium reasoning):\n");
  std::printf("  %-22s %7s %7s\n", "setting", "SR", "steps");
  bench::PrintRule();
  Row(runner, tasks, "GUI-only", agentsim::InterfaceMode::kGuiOnly,
      agentsim::LlmProfile::Gpt5Medium(), 44.4, 8.16);
  Row(runner, tasks, "GUI-only + forest", agentsim::InterfaceMode::kGuiOnlyForest,
      agentsim::LlmProfile::Gpt5Medium(), 42.0, 8.41);
  Row(runner, tasks, "GUI+DMI (full)", agentsim::InterfaceMode::kGuiPlusDmi,
      agentsim::LlmProfile::Gpt5Medium(), 74.1, 4.61);

  std::printf("\nGPT-5-mini (medium reasoning):\n");
  std::printf("  %-22s %7s %7s\n", "setting", "SR", "steps");
  bench::PrintRule();
  Row(runner, tasks, "GUI-only", agentsim::InterfaceMode::kGuiOnly,
      agentsim::LlmProfile::Gpt5MiniMedium(), 17.3, 7.14);
  Row(runner, tasks, "GUI-only + forest", agentsim::InterfaceMode::kGuiOnlyForest,
      agentsim::LlmProfile::Gpt5MiniMedium(), 23.5, 6.32);
  Row(runner, tasks, "GUI+DMI (full)", agentsim::InterfaceMode::kGuiPlusDmi,
      agentsim::LlmProfile::Gpt5MiniMedium(), 43.2, 4.43);

  std::printf("\nshape check: forest-as-knowledge barely moves the strong model but helps\n"
              "the small one; the full declarative interface dominates both — the\n"
              "interface design, not the static knowledge, is the performance driver.\n");
  return 0;
}
