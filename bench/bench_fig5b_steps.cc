// Figure 5b reproduction: step analysis.
//
//   (1) normalized steps on the intersection of tasks solved by all three
//       GPT-5-medium methods (GUI-only, Ablation = GUI-only+forest, GUI+DMI);
//   (2) core-step distribution for GUI+DMI (core = calls minus the fixed
//       3-step framework overhead);
//   (3) one-shot completion: share of successful DMI trials finishing the
//       user intent in a single core call (<= 4 total steps; paper: >61%).
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_common.h"

int main() {
  bench::PrintHeader("Figure 5b: steps, normalized steps, one-shot completion");
  agentsim::TaskRunner runner;
  auto tasks = workload::BuildOsworldWSuite();

  agentsim::RunConfig gui;
  gui.mode = agentsim::InterfaceMode::kGuiOnly;
  gui.profile = agentsim::LlmProfile::Gpt5Medium();
  gui.repeats = 3;
  agentsim::RunConfig ablation = gui;
  ablation.mode = agentsim::InterfaceMode::kGuiOnlyForest;
  agentsim::RunConfig dmi = gui;
  dmi.mode = agentsim::InterfaceMode::kGuiPlusDmi;

  agentsim::SuiteResult r_gui = runner.RunSuite(tasks, gui);
  agentsim::SuiteResult r_abl = runner.RunSuite(tasks, ablation);
  agentsim::SuiteResult r_dmi = runner.RunSuite(tasks, dmi);

  // Intersection of tasks solved (majority of trials) by all three methods.
  std::set<std::string> common;
  for (const std::string& id : r_gui.SolvedTasks()) {
    if (r_abl.SolvedTasks().count(id) > 0 && r_dmi.SolvedTasks().count(id) > 0) {
      common.insert(id);
    }
  }
  std::printf("Normalized steps on the %zu-task intersection (paper: 7.94 / 8.58 / 4.60):\n",
              common.size());
  bench::PrintRule();
  std::printf("  %-18s %6.2f\n", "GUI-only", r_gui.AvgStepsOnTasks(common));
  std::printf("  %-18s %6.2f\n", "Ablation(forest)", r_abl.AvgStepsOnTasks(common));
  std::printf("  %-18s %6.2f\n", "GUI+DMI", r_dmi.AvgStepsOnTasks(common));

  // Core-step distribution for DMI successes.
  std::map<int, int> dist;
  int successes = 0;
  for (const auto& rec : r_dmi.records) {
    for (const auto& run : rec.runs) {
      if (run.success) {
        ++dist[run.core_calls];
        ++successes;
      }
    }
  }
  std::printf("\nGUI+DMI core-call distribution over %d successful trials:\n", successes);
  bench::PrintRule();
  for (const auto& [core, n] : dist) {
    std::printf("  %d core call%s (= %d total steps): %3d trials  %s\n", core,
                core == 1 ? " " : "s", core + agentsim::kFrameworkOverheadSteps, n,
                std::string(static_cast<size_t>(n), '#').c_str());
  }
  std::printf("\nOne-shot completion (<= 4 steps): %.1f%% of successful DMI trials "
              "(paper: > 61%%)\n", 100.0 * r_dmi.OneShotShare());
  std::printf("\nAlso: every task solvable by GUI-only remains solvable with GUI+DMI: ");
  bool remain = true;
  for (const std::string& id : r_gui.SolvableTasks()) {
    remain &= r_dmi.SolvableTasks().count(id) > 0;
  }
  std::printf("%s (paper: holds)\n", remain ? "holds" : "VIOLATED");
  return 0;
}
