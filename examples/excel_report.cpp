// Scenario: building a spreadsheet report in ExcelSim through DMI.
//
//   - jump to a cell via the Name Box (access-and-input + the ENTER commit
//     the control's rich description documents, §5.7);
//   - add a SUM formula through the Formula Bar;
//   - select the data region and apply a Greater-Than conditional rule
//     through the dialog in a single visit call;
//   - sort by a column and read the grid back via passive get_texts.
//
// Build & run:  cmake --build build && ./build/examples/excel_report
#include <cstdio>

#include "src/apps/excel_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

dmi::VisitCommand Access(const dmi::ResolvedTarget& t, const std::string& text = "",
                         const std::string& shortcut = "") {
  dmi::VisitCommand c;
  c.kind = text.empty() ? dmi::VisitCommand::Kind::kAccess
                        : dmi::VisitCommand::Kind::kAccessInput;
  c.target_id = t.id;
  c.entry_ref_ids = t.entry_ref_ids;
  c.text = text;
  (void)shortcut;
  return c;
}

dmi::VisitCommand Key(const std::string& chord) {
  dmi::VisitCommand c;
  c.kind = dmi::VisitCommand::Kind::kShortcut;
  c.shortcut_key = chord;
  return c;
}

}  // namespace

int main() {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account"};
  apps::ExcelSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip();

  apps::ExcelSim app;
  dmi::DmiSession session(app, std::move(graph), options);
  std::printf("modeled ExcelSim: %zu controls, core %zu tokens\n\n",
              session.stats().raw.nodes, session.stats().core_tokens);

  // ----- 1. Name Box jump + value entry, one visit call -------------------------
  auto name_box = session.ResolveTargetByNames({"Name Box"});
  auto formula_bar = session.ResolveTargetByNames({"Formula Bar"});
  dmi::VisitReport jump = session.VisitParsed({Access(*name_box, "F2"), Key("ENTER"),
                                               Access(*formula_bar, "Projected"),
                                               Key("ENTER")});
  std::printf("name-box jump + entry: %s", jump.Render().c_str());

  // ----- 2. SUM formula under the Q1 column -------------------------------------
  auto b14 = session.ResolveTargetByNames({"B14"});
  dmi::VisitReport sum = session.VisitParsed(
      {Access(*b14), Access(*formula_bar, "=SUM(B2:B13)"), Key("ENTER")});
  std::printf("sum formula: %sB14 = %s\n", sum.Render().c_str(),
              app.find_cell(13, 1)->value.c_str());

  // ----- 3. conditional formatting over B2:C13 -----------------------------------
  session.screen().Refresh();
  std::vector<std::string> labels;
  for (int r = 1; r <= 12; ++r) {
    for (int c = 1; c <= 2; ++c) {
      labels.push_back(session.screen().LabelOf(*app.CellControl(r, c)));
    }
  }
  (void)session.interaction().SelectControls(labels);
  auto cf_value = session.ResolveTargetByNames(
      {"Greater Than", "Format cells that are Greater Than"});
  auto cf_ok = session.ResolveTargetByNames({"Greater Than", "OK"});
  dmi::VisitReport cf =
      session.VisitParsed({Access(*cf_value, "120"), Access(*cf_ok)});
  std::printf("conditional rule: %s", cf.Render().c_str());
  if (!app.cf_rules().empty()) {
    const apps::CfRule& rule = app.cf_rules().back();
    std::printf("rule %s>%g over rows %d-%d cols %d-%d (blanks included!)\n",
                rule.kind.c_str(), rule.threshold, rule.row0 + 1, rule.row1 + 1,
                rule.col0 + 1, rule.col1 + 1);
  }

  // ----- 4. sort ascending by Q1 --------------------------------------------------
  auto b2 = session.ResolveTargetByNames({"B2"});
  auto asc = session.ResolveTargetByNames({"Sort and Filter", "Sort A to Z"});
  dmi::VisitReport sort = session.VisitParsed({Access(*b2), Access(*asc)});
  std::printf("sort: %s", sort.Render().c_str());

  // ----- 5. observation: the passive data payload ---------------------------------
  session.screen().Refresh();
  std::printf("\npassive get_texts payload (first lines):\n");
  std::string payload = session.interaction().GetTextsPassive();
  size_t lines = 0;
  size_t pos = 0;
  while (lines < 10 && pos < payload.size()) {
    size_t nl = payload.find('\n', pos);
    std::printf("  %s\n", payload.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++lines;
  }
  return 0;
}
