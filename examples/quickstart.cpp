// Quickstart: model a small GUI application and drive it through DMI.
//
// This walks the whole public API surface end to end:
//   1. build (or bring) a gsim::Application — here, a tiny settings app;
//   2. rip it into a UI Navigation Graph (offline phase, once per app build);
//   3. construct a DmiSession: decycle -> forest -> catalog -> executor;
//   4. read the serialized core topology (what an LLM would see);
//   5. access controls declaratively with visit();
//   6. set control state and observe content with the interaction interfaces.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "src/apps/office_common.h"
#include "src/dmi/session.h"
#include "src/gui/application.h"
#include "src/ripper/ripper.h"

namespace {

// A miniature application: a toolbar with a theme menu (whose palette is a
// shared subtree reachable from two places — a merge node), a settings dialog,
// and a scrollable log pane.
class TinyApp : public gsim::Application {
 public:
  TinyApp() : gsim::Application("TinyApp") {
    gsim::Control& root = main_window().root();

    // A shared palette referenced from two menus: "Accent Color" and
    // "Highlight Color" — DMI will externalize it as a shared subtree.
    gsim::Control* palette = RegisterSharedSubtree(
        std::make_unique<gsim::Control>("Swatch List", uia::ControlType::kList));
    for (const char* color : {"Red", "Green", "Blue", "Violet"}) {
      palette->NewChild(color, uia::ControlType::kListItem)->SetCommand("pick_color");
    }

    gsim::Control* bar = root.NewChild("Toolbar", uia::ControlType::kToolBar);
    gsim::Control* accent = bar->NewChild("Accent Color", uia::ControlType::kMenuItem);
    accent->SetSharedPopup(palette);
    gsim::Control* highlight = bar->NewChild("Highlight Color", uia::ControlType::kMenuItem);
    highlight->SetSharedPopup(palette);
    bar->NewChild("Open Settings", uia::ControlType::kButton)->SetDialogId("settings");

    // A scrollable log pane exposing ScrollPattern.
    gsim::Control* log = root.NewChild("Log Pane", uia::ControlType::kPane);
    log->AttachPattern(std::make_unique<apps::SurfaceScroll>(
        false, true, [this](double, double v) { log_scroll = v; }));

    auto dialog = std::make_unique<gsim::Window>("Settings", /*modal=*/true);
    gsim::Control* verbose = dialog->root().NewChild("Verbose Logging",
                                                     uia::ControlType::kCheckBox);
    verbose->SetClickEffect(gsim::ClickEffect::kToggle);
    verbose->SetCommand("toggle_verbose");
    gsim::Control* ok = dialog->root().NewChild("OK", uia::ControlType::kButton);
    ok->SetCloseDisposition(gsim::CloseDisposition::kCommit);
    RegisterDialog("settings", std::move(dialog));
  }

  support::Status ExecuteCommand(gsim::Control& source, const std::string& cmd) override {
    if (cmd == "pick_color") {
      // Path-dependent semantics: the same palette cell means different
      // things depending on which menu hosted it.
      const auto chain = OpenAncestorNames(source);
      const bool is_accent =
          std::find(chain.begin(), chain.end(), "Accent Color") != chain.end();
      (is_accent ? accent_color : highlight_color) = source.TrueName();
    } else if (cmd == "toggle_verbose") {
      verbose_logging = source.toggled();
    }
    return support::Status::Ok();
  }

  std::string accent_color = "none";
  std::string highlight_color = "none";
  bool verbose_logging = false;
  double log_scroll = 0.0;
};

}  // namespace

int main() {
  // ----- offline phase: model the application once per build -----------------
  TinyApp scratch;  // ripping clicks everything; model on a scratch instance
  ripper::RipperConfig rip_config;  // no blocklist needed for this tiny app
  ripper::GuiRipper ripper(scratch, rip_config);
  topo::NavGraph graph = ripper.Rip();
  std::printf("ripped %zu controls, %zu edges (%llu clicks simulated)\n",
              graph.node_count(), graph.edge_count(),
              static_cast<unsigned long long>(ripper.stats().clicks));

  // ----- online phase: bind the model to a live instance -----------------------
  TinyApp app;
  dmi::ModelingOptions options;
  // The default cost threshold (24) would just clone this tiny palette; lower
  // it so the example demonstrates shared subtrees and entry references.
  options.externalize_threshold = 4;
  dmi::DmiSession session(app, std::move(graph), options);
  std::printf("forest: %zu nodes, %zu shared subtrees, %zu references\n",
              session.stats().forest_nodes, session.stats().shared_subtrees,
              session.stats().references);

  // What the LLM sees: the compact serialized topology + screen + data.
  std::printf("\n--- prompt context (%zu tokens) ---\n%s\n", session.PromptTokens(),
              session.BuildPromptContext().c_str());

  // ----- access declaration: one visit call, three declarative targets ---------
  // Pick Blue via Accent Color, Violet via Highlight Color (same palette,
  // different entry references!), then toggle the dialog checkbox.
  auto blue = session.ResolveTargetByNames({"Accent Color", "Blue"});
  auto violet = session.ResolveTargetByNames({"Highlight Color", "Violet"});
  auto verbose = session.ResolveTargetByNames({"Settings", "Verbose Logging"});
  if (!blue.ok() || !violet.ok() || !verbose.ok()) {
    std::printf("resolution failed\n");
    return 1;
  }
  auto access = [](const dmi::ResolvedTarget& t) {
    dmi::VisitCommand c;
    c.target_id = t.id;
    c.entry_ref_ids = t.entry_ref_ids;
    return c;
  };
  dmi::VisitReport report =
      session.VisitParsed({access(*blue), access(*violet), access(*verbose)});
  std::printf("--- visit report ---\n%s", report.Render().c_str());
  std::printf("accent=%s highlight=%s verbose=%s\n", app.accent_color.c_str(),
              app.highlight_color.c_str(), app.verbose_logging ? "on" : "off");

  // ----- state declaration: set the log scrollbar to 75% -----------------------
  session.screen().Refresh();
  std::string label;
  for (const auto& lc : session.screen().labeled()) {
    if (lc.control->TrueName() == "Log Pane") {
      label = lc.label;
    }
  }
  auto scroll = session.interaction().SetScrollbarPos(label, -1.0, 75.0);
  if (scroll.ok()) {
    std::printf("log pane scrolled: %s (app reports %.0f%%)\n",
                scroll->ToString().c_str(), app.log_scroll);
  }

  // The visit interface also accepts raw JSON, exactly as an LLM emits it:
  dmi::VisitReport q = session.Visit(R"([{"further_query": -1}])");
  std::printf("\nfurther_query(-1) returned %zu bytes of topology\n",
              q.further_query_text.size());
  return 0;
}
