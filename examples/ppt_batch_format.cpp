// Scenario: deck-wide formatting in PpointSim through DMI.
//
// The paper's Table 1 examples plus contextual-tab work:
//   - background blue on all slides: one visit call, three declared ids
//     (vs six imperative clicks);
//   - set_scrollbar_pos(80%) on the slide view (vs iterative drag-observe);
//   - theme + transition across all slides;
//   - the context-dependent Picture Format tab: select the image on slide 3
//     (enforced access, §5.7) and apply a correction preset.
//
// Build & run:  cmake --build build && ./build/examples/ppt_batch_format
#include <cstdio>

#include "src/agent/task_runner.h"
#include "src/apps/ppoint_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

dmi::VisitCommand Access(const dmi::ResolvedTarget& t, bool enforced = false) {
  dmi::VisitCommand c;
  c.target_id = t.id;
  c.entry_ref_ids = t.entry_ref_ids;
  c.enforced = enforced;
  return c;
}

}  // namespace

int main() {
  // Model with the image-selected context so the Picture Format tab exists in
  // the topology (context-aware exploration, §4.1).
  dmi::ModelingOptions options =
      agentsim::TaskRunner::DefaultModelingOptions(workload::AppKind::kPpoint);
  apps::PpointSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);

  apps::PpointSim app;
  dmi::DmiSession session(app, std::move(graph), options);
  std::printf("modeled PpointSim: %zu controls (%zu contexts), core %zu tokens\n\n",
              session.stats().raw.nodes, options.contexts.size() + 1,
              session.stats().core_tokens);

  // ----- Table 1 Task 1: background blue everywhere, one call --------------------
  auto solid = session.ResolveTargetByNames({"Format Background Pane", "Solid fill"});
  auto blue = session.ResolveTargetByNames({"Fill Color", "Blue"});
  auto apply = session.ResolveTargetByNames({"Format Background Pane", "Apply to All"});
  dmi::VisitReport bg = session.VisitParsed({Access(*solid), Access(*blue), Access(*apply)});
  std::printf("background: %s", bg.Render().c_str());
  std::printf("slide backgrounds: all %s\n\n", app.slides()[7].background_color.c_str());

  // ----- Table 1 Task 2: scroll to ~80%, one state declaration --------------------
  session.screen().Refresh();
  auto scroll = session.interaction().SetScrollbarPos(
      session.screen().LabelOf(*app.slide_view_control()), -1.0, 80.0);
  std::printf("slide view: %s\n\n", scroll.ok() ? scroll->ToString().c_str() : "failed");

  // ----- theme + transitions across the deck --------------------------------------
  auto theme = session.ResolveTargetByNames({"Themes Gallery", "Theme 12"});
  auto transition = session.ResolveTargetByNames({"Transition Gallery", "Transition 7"});
  auto everywhere = session.ResolveTargetByNames({"Timing", "Apply To All Slides"});
  dmi::VisitReport deck =
      session.VisitParsed({Access(*theme), Access(*transition), Access(*everywhere)});
  std::printf("deck formatting: %s", deck.Render().c_str());
  std::printf("theme=%s, slide 12 transition=%s\n\n", app.theme().c_str(),
              app.slides()[11].transition.c_str());

  // ----- contextual Picture Format tab ----------------------------------------------
  // Thumbnails and shapes are navigation nodes that are genuinely functional:
  // declare them with enforced access (§5.7's enforced parameter).
  auto slide3 = session.ResolveTargetByNames({"Slide Thumbnails", "Slide 3"});
  auto image = session.ResolveTargetByNames(
      {"Slide 3 Canvas", "Image: Quarterly chart screenshot"});
  auto preset = session.ResolveTargetByNames({"Corrections", "Correction Preset 3"});
  dmi::VisitReport pic = session.VisitParsed(
      {Access(*slide3, /*enforced=*/true), Access(*image, /*enforced=*/true),
       Access(*preset)});
  std::printf("picture correction: %s", pic.Render().c_str());
  std::printf("applied: %s\n",
              app.HasEffect("pic.correction:Correction Preset 3") ? "yes" : "no");
  return 0;
}
