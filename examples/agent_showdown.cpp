// Scenario: the same task through both interfaces, side by side.
//
// Runs one OSWorld-W-like task (default P1, the paper's Table 1 Task 1) with
// the GUI-only baseline agent and the GUI+DMI agent under the same simulated
// LLM profile and instability level, printing the step/time/token contrast —
// a miniature of the Table 3 experiment you can point at any task:
//
//   ./build/examples/agent_showdown [task-id] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/agent/task_runner.h"

int main(int argc, char** argv) {
  const std::string task_id = argc > 1 ? argv[1] : "P1";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  agentsim::TaskRunner runner;
  const workload::Task* task = nullptr;
  auto tasks = workload::BuildOsworldWSuite();
  for (const auto& t : tasks) {
    if (t.id == task_id) {
      task = &t;
    }
  }
  if (task == nullptr) {
    std::printf("unknown task '%s'; available:", task_id.c_str());
    for (const auto& t : tasks) {
      std::printf(" %s", t.id.c_str());
    }
    std::printf("\n");
    return 2;
  }

  std::printf("task %s (%s): \"%s\"\n", task->id.c_str(),
              workload::AppKindName(task->app), task->description.c_str());
  std::printf("  ground truth: %zu imperative GUI actions vs %zu declarative DMI steps\n\n",
              task->gui_plan.size(), task->dmi_plan.size());

  for (auto mode : {agentsim::InterfaceMode::kGuiOnly, agentsim::InterfaceMode::kGuiPlusDmi}) {
    agentsim::RunConfig config;
    config.mode = mode;
    config.profile = agentsim::LlmProfile::Gpt5Medium();
    agentsim::RunResult r = runner.RunOnce(*task, config, seed);
    std::printf("%-10s  %s | llm calls %2d (core %d) | %5.0f s simulated | "
                "%6zu prompt tokens | %3zu UI actions",
                agentsim::InterfaceModeName(mode), r.success ? "SUCCESS" : "FAILED ",
                r.llm_calls, r.core_calls, r.sim_time_s, r.prompt_tokens, r.ui_actions);
    if (!r.success) {
      std::printf(" | cause: %s",
                  std::string(agentsim::FailureCauseName(r.cause)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n(The GUI agent clicks through visibility-limited action sequences with\n"
              "grounding noise; the DMI agent declares topology ids in one visit call\n"
              "and lets the executor navigate. Change the seed to watch the error\n"
              "modes move around.)\n");
  return 0;
}
