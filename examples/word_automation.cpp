// Scenario: document automation in WordSim through DMI.
//
// The workload the paper's introduction motivates: batch formatting and
// find-and-replace that would take a dozen fragile GUI clicks, expressed as a
// handful of declarative calls:
//   - select paragraphs 1-3 (state declaration) and make them bold + blue;
//   - set Standard Red underline on paragraph 5 (path-dependent palette!);
//   - replace "committee" with "board" everywhere (dialog driven, one visit);
//   - read back the result with get_texts (observation declaration).
//
// Build & run:  cmake --build build && ./build/examples/word_automation
#include <cstdio>

#include "src/apps/word_sim.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

dmi::VisitCommand Access(const dmi::ResolvedTarget& t, const std::string& text = "") {
  dmi::VisitCommand c;
  c.kind = text.empty() ? dmi::VisitCommand::Kind::kAccess
                        : dmi::VisitCommand::Kind::kAccessInput;
  c.target_id = t.id;
  c.entry_ref_ids = t.entry_ref_ids;
  c.text = text;
  return c;
}

}  // namespace

int main() {
  // Offline: model WordSim (cacheable per app build).
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  apps::WordSim scratch;
  ripper::GuiRipper rip(scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip();

  apps::WordSim app;
  dmi::DmiSession session(app, std::move(graph), options);
  std::printf("modeled WordSim: %zu controls -> %zu-node forest, core %zu tokens\n\n",
              session.stats().raw.nodes, session.stats().forest_nodes,
              session.stats().core_tokens);

  // ----- 1. select paragraphs 1-3 and format them -----------------------------
  session.screen().Refresh();
  const std::string doc = session.screen().LabelOf(*app.document_control());
  auto sel = session.interaction().SelectParagraphs(doc, 0, 2);
  if (!sel.ok()) {
    std::printf("selection failed: %s\n", sel.status().ToString().c_str());
    return 1;
  }
  std::printf("selected paragraphs 1-3:\n%s\n", sel->selected_text.c_str());

  auto bold = session.ResolveTargetByNames({"Font", "Bold"});
  auto blue = session.ResolveTargetByNames({"Font Color", "Blue"});
  dmi::VisitReport fmt = session.VisitParsed({Access(*bold), Access(*blue)});
  std::printf("formatting: %s", fmt.Render().c_str());

  // ----- 2. path-dependent palette: underline color on paragraph 5 -------------
  (void)session.interaction().SelectParagraphs(doc, 4, 4);
  auto underline_red = session.ResolveTargetByNames({"Underline Color", "Standard Red"});
  dmi::VisitReport ur = session.VisitParsed({Access(*underline_red)});
  std::printf("underline color: %s", ur.Render().c_str());

  // ----- 3. find & replace, one declarative call --------------------------------
  auto find_what = session.ResolveTargetByNames({"Find and Replace", "Find what"});
  auto replace_with = session.ResolveTargetByNames({"Find and Replace", "Replace with"});
  auto replace_all = session.ResolveTargetByNames({"Find and Replace", "Replace All"});
  dmi::VisitReport fr = session.VisitParsed({Access(*find_what, "committee"),
                                             Access(*replace_with, "board"),
                                             Access(*replace_all)});
  std::printf("find&replace: %sreplacements: %d\n", fr.Render().c_str(),
              app.replace_count());

  // ----- 4. observation: read the document back ---------------------------------
  session.screen().Refresh();
  auto text = session.interaction().GetTextsActive(
      session.screen().LabelOf(*app.document_control()));
  if (text.ok()) {
    std::printf("\ndocument head after automation:\n");
    size_t shown = 0;
    for (const auto& p : app.paragraphs()) {
      if (shown++ == 5) {
        break;
      }
      std::printf("  [%s%s%s] %s\n", p.fmt.bold ? "B" : "-",
                  p.fmt.color == "Blue" ? "blue" : "----",
                  p.fmt.underline ? (":" + p.fmt.underline_color).c_str() : "",
                  p.text.c_str());
    }
  }
  return 0;
}
