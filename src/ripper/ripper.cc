#include "src/ripper/ripper.h"

#include <deque>

#include "src/ripper/identifier.h"
#include "src/support/logging.h"
#include "src/uia/tree.h"

namespace ripper {
namespace {

// Simulated real-world latencies (milliseconds) for cost accounting; see
// RipStats::simulated_ms.
constexpr double kClickMs = 120.0;
constexpr double kCaptureMs = 80.0;
constexpr double kExternalRecoveryMs = 30000.0;

// One DFS work item: a control to explore and the click path that reveals it.
struct WorkItem {
  std::string control_id;
  std::vector<std::string> path;  // control ids to click, in order
};

}  // namespace

GuiRipper::GuiRipper(gsim::Application& app, RipperConfig config)
    : app_(&app), config_(std::move(config)) {
  // Window listener (§4.1): new top-level/modal windows are surfaced as
  // events; the explorer counts them (captures pick up their contents).
  app_->AddWindowListener([this](gsim::Window&, bool) { ++stats_.window_events; });
}

std::vector<GuiRipper::VisibleEntry> GuiRipper::CaptureVisible() {
  ++stats_.captures;
  stats_.simulated_ms += kCaptureMs;
  std::vector<VisibleEntry> out;
  uia::Walk(app_->AccessibilityRoot(), [&](uia::Element& e, int) {
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() == 0) {
      return true;  // the synthetic desktop root itself
    }
    out.push_back(VisibleEntry{SynthesizeControlId(e), static_cast<gsim::Control*>(&e)});
    return true;
  });
  return out;
}

bool GuiRipper::IsExplorable(const gsim::Control& control) const {
  if (config_.blocklist.count(control.TrueName()) > 0) {
    return false;
  }
  switch (control.Type()) {
    case uia::ControlType::kButton:
    case uia::ControlType::kMenuItem:
    case uia::ControlType::kTabItem:
    case uia::ControlType::kSplitButton:
    case uia::ControlType::kListItem:
    case uia::ControlType::kCheckBox:
    case uia::ControlType::kComboBox:
    case uia::ControlType::kRadioButton:
    case uia::ControlType::kHyperlink:
      return true;
    default:
      return false;  // content (DataItem, Text, Edit, ...) is not navigation
  }
}

topo::NodeInfo GuiRipper::MakeNodeInfo(const gsim::Control& control) const {
  topo::NodeInfo info;
  info.control_id = SynthesizeControlId(control);
  info.name = control.TrueName();
  info.type = control.Type();
  info.description = control.HelpText();
  info.automation_id = control.AutomationId();
  return info;
}

gsim::Control* GuiRipper::FindVisibleById(const std::string& control_id) {
  gsim::Control* found = nullptr;
  uia::Walk(app_->AccessibilityRoot(), [&](uia::Element& e, int) {
    if (found != nullptr) {
      return false;
    }
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() != 0 && SynthesizeControlId(e) == control_id) {
      found = static_cast<gsim::Control*>(&e);
      return false;
    }
    return true;
  });
  return found;
}

void GuiRipper::AddRevealedEdges(topo::NavGraph& graph, int from_node,
                                 const std::vector<VisibleEntry>& fresh,
                                 const std::set<std::string>& prior_ids) {
  // Index the fresh set by element pointer so containment can be checked.
  std::set<const gsim::Control*> fresh_controls;
  for (const auto& e : fresh) {
    fresh_controls.insert(e.control);
  }
  // First materialize all nodes, then wire edges.
  for (const auto& e : fresh) {
    graph.AddNode(MakeNodeInfo(*e.control));
  }
  (void)prior_ids;
  for (const auto& e : fresh) {
    const int node = graph.FindNode(e.control_id);
    // Walk up the accessibility parent chain to the nearest *also fresh*
    // ancestor; containment edge from it. Without one, this element roots a
    // revealed subtree: the click points at it.
    const gsim::Control* parent = nullptr;
    for (const uia::Element* p = e.control->Parent(); p != nullptr; p = p->Parent()) {
      const auto* pc = static_cast<const gsim::Control*>(p);
      if (fresh_controls.count(pc) > 0) {
        parent = pc;
        break;
      }
    }
    if (parent != nullptr) {
      graph.AddEdge(graph.FindNode(SynthesizeControlId(*parent)), node);
    } else {
      graph.AddEdge(from_node, node);
    }
  }
}

bool GuiRipper::ReplayPath(const std::vector<std::string>& path, const RipContext& context) {
  app_->ResetUiState();
  if (context.setup) {
    context.setup(*app_);
  }
  for (const std::string& step : path) {
    gsim::Control* control = FindVisibleById(step);
    if (control == nullptr) {
      return false;
    }
    ++stats_.clicks;
    stats_.simulated_ms += kClickMs;
    if (!app_->Click(*control).ok()) {
      return false;
    }
    if (app_->in_external_state()) {
      // A blocklist miss: the app left; recover expensively.
      ++stats_.external_recoveries;
      stats_.simulated_ms += kExternalRecoveryMs;
      app_->ResetUiState();
      return false;
    }
  }
  return true;
}

void GuiRipper::RipContextInternal(topo::NavGraph& graph, const RipContext& context) {
  ++stats_.contexts;
  app_->ResetUiState();
  if (context.setup) {
    context.setup(*app_);
  }

  // Root-node initialization (§4.1): the initial screen attaches beneath the
  // virtual root. Edges follow the revealed hierarchy — the click (here: the
  // virtual root) points at the roots of newly revealed subtrees; within a
  // revealed subtree, parent-child containment forms the edges. This
  // reconstructs the deep navigation structure (Figure 4's merge-node
  // substructures) instead of a flat fan-out; controls under the active tab's
  // panel automatically scope beneath that TabItem via containment.
  std::vector<VisibleEntry> initial = CaptureVisible();
  std::deque<WorkItem> work;
  AddRevealedEdges(graph, topo::NavGraph::kRootIndex, initial, /*prior_ids=*/{});
  for (const auto& entry : initial) {
    if (IsExplorable(*entry.control) && explored_.count(entry.control_id) == 0) {
      work.push_back(WorkItem{entry.control_id, {}});
    }
  }

  // DFS (stack discipline via front-insertion).
  while (!work.empty() && explored_.size() < config_.max_explored) {
    WorkItem item = work.front();
    work.pop_front();
    if (explored_.count(item.control_id) > 0) {
      continue;
    }
    explored_.insert(item.control_id);
    ++stats_.explored;

    if (!ReplayPath(item.path, context)) {
      continue;  // state drifted; skip this branch
    }
    gsim::Control* target = FindVisibleById(item.control_id);
    if (target == nullptr) {
      continue;
    }
    std::vector<VisibleEntry> before = CaptureVisible();
    ++stats_.clicks;
    stats_.simulated_ms += kClickMs;
    if (!app_->Click(*target).ok()) {
      continue;
    }
    if (app_->in_external_state()) {
      ++stats_.external_recoveries;
      stats_.simulated_ms += kExternalRecoveryMs;
      app_->ResetUiState();
      continue;
    }
    std::vector<VisibleEntry> after = CaptureVisible();

    std::set<std::string> before_ids;
    for (const auto& e : before) {
      before_ids.insert(e.control_id);
    }
    const int from_node = graph.FindNode(item.control_id);
    if (from_node < 0) {
      continue;  // should not happen: node added when first seen
    }
    std::vector<std::string> next_path = item.path;
    next_path.push_back(item.control_id);
    const int next_depth = static_cast<int>(next_path.size());

    std::vector<VisibleEntry> fresh;
    for (const auto& e : after) {
      if (before_ids.count(e.control_id) == 0) {
        fresh.push_back(e);
      }
    }
    AddRevealedEdges(graph, from_node, fresh, before_ids);
    for (const auto& e : fresh) {
      if (next_depth <= config_.max_depth && IsExplorable(*e.control) &&
          explored_.count(e.control_id) == 0) {
        work.push_front(WorkItem{e.control_id, next_path});
      }
    }
  }
  app_->ResetUiState();
}

topo::NavGraph GuiRipper::Rip(const std::vector<RipContext>& extra_contexts) {
  topo::NavGraph graph;
  RipContext default_context;
  default_context.name = "default";
  RipContextInternal(graph, default_context);
  for (const RipContext& context : extra_contexts) {
    RipContextInternal(graph, context);
  }
  DMI_LOG(kInfo) << "ripped " << graph.node_count() << " controls, " << graph.edge_count()
                 << " edges in " << stats_.explored << " explorations";
  return graph;
}

}  // namespace ripper
