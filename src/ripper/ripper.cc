#include "src/ripper/ripper.h"

#include <deque>
#include <future>
#include <unordered_map>
#include <utility>

#include "src/ripper/identifier.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/uia/tree.h"

namespace ripper {
namespace {

// Simulated real-world latencies (milliseconds) for cost accounting; see
// RipStats::simulated_ms.
constexpr double kClickMs = 120.0;
constexpr double kCaptureMs = 80.0;
constexpr double kExternalRecoveryMs = 30000.0;

// One DFS work item: a control to explore and the click path that reveals it.
struct WorkItem {
  std::string control_id;
  std::vector<std::string> path;  // control ids to click, in order
};

}  // namespace

void RipStats::Accumulate(const RipStats& other) {
  clicks += other.clicks;
  captures += other.captures;
  explored += other.explored;
  external_recoveries += other.external_recoveries;
  window_events += other.window_events;
  contexts += other.contexts;
  capture_rebuilds += other.capture_rebuilds;
  capture_cache_hits += other.capture_cache_hits;
  indexed_lookups += other.indexed_lookups;
  simulated_ms += other.simulated_ms;
}

GuiRipper::GuiRipper(gsim::Application& app, RipperConfig config)
    : app_(&app), config_(std::move(config)), index_(app) {
  // Window listener (§4.1): new top-level/modal windows are surfaced as
  // events; the explorer counts them (captures pick up their contents).
  app_->AddWindowListener([this](gsim::Window&, bool) { ++stats_.window_events; });
}

GuiRipper::~GuiRipper() {
  if (stats_.clicks != 0) {
    support::CountMetric("rip.clicks", stats_.clicks);
  }
  if (stats_.captures != 0) {
    support::CountMetric("rip.captures", stats_.captures);
  }
  if (stats_.explored != 0) {
    support::CountMetric("rip.explored", stats_.explored);
  }
  if (stats_.external_recoveries != 0) {
    support::CountMetric("rip.external_recoveries", stats_.external_recoveries);
  }
  if (stats_.capture_rebuilds != 0) {
    support::CountMetric("rip.capture_rebuilds", stats_.capture_rebuilds);
  }
  if (stats_.capture_cache_hits != 0) {
    support::CountMetric("rip.capture_cache_hits", stats_.capture_cache_hits);
  }
  if (stats_.indexed_lookups != 0) {
    support::CountMetric("rip.indexed_lookups", stats_.indexed_lookups);
  }
}

const std::vector<VisibleEntry>& GuiRipper::CaptureVisible() {
  ++stats_.captures;
  stats_.simulated_ms += kCaptureMs;
  if (config_.use_visible_index) {
    bool rebuilt = false;
    const std::vector<VisibleEntry>& entries = index_.Visible(&rebuilt);
    if (rebuilt) {
      ++stats_.capture_rebuilds;
    } else {
      ++stats_.capture_cache_hits;
    }
    return entries;
  }
  ++stats_.capture_rebuilds;
  scratch_entries_.clear();
  uia::Walk(app_->AccessibilityRoot(), [&](uia::Element& e, int) {
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() == 0) {
      return true;  // the synthetic desktop root itself
    }
    scratch_entries_.push_back(
        VisibleEntry{SynthesizeControlId(e), static_cast<gsim::Control*>(&e)});
    return true;
  });
  return scratch_entries_;
}

bool GuiRipper::IsExplorable(const gsim::Control& control) const {
  if (config_.blocklist.count(control.TrueName()) > 0) {
    return false;
  }
  switch (control.Type()) {
    case uia::ControlType::kButton:
    case uia::ControlType::kMenuItem:
    case uia::ControlType::kTabItem:
    case uia::ControlType::kSplitButton:
    case uia::ControlType::kListItem:
    case uia::ControlType::kCheckBox:
    case uia::ControlType::kComboBox:
    case uia::ControlType::kRadioButton:
    case uia::ControlType::kHyperlink:
      return true;
    default:
      return false;  // content (DataItem, Text, Edit, ...) is not navigation
  }
}

topo::NodeInfo GuiRipper::MakeNodeInfo(const VisibleEntry& entry) const {
  const gsim::Control& control = *entry.control;
  topo::NodeInfo info;
  info.control_id = entry.control_id;  // already synthesized at capture time
  info.name = control.TrueName();
  info.type = control.Type();
  info.description = control.HelpText();
  info.automation_id = control.AutomationId();
  return info;
}

gsim::Control* GuiRipper::FindVisibleById(const std::string& control_id, bool ensure_fresh) {
  if (config_.use_visible_index) {
    ++stats_.indexed_lookups;
    if (ensure_fresh) {
      bool rebuilt = false;
      gsim::Control* found = index_.FindByIdEnsureFresh(control_id, &rebuilt);
      if (rebuilt) {
        ++stats_.capture_rebuilds;
      }
      return found;
    }
    // FindById never rebuilds: warm generations probe, stale ones cold-walk.
    return index_.FindById(control_id);
  }
  gsim::Control* found = nullptr;
  uia::Walk(app_->AccessibilityRoot(), [&](uia::Element& e, int) {
    if (found != nullptr) {
      return false;
    }
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() != 0 && SynthesizeControlId(e) == control_id) {
      found = static_cast<gsim::Control*>(&e);
      return false;
    }
    return true;
  });
  return found;
}

void GuiRipper::AddRevealedEdges(topo::NavGraph& graph, int from_node,
                                 const std::vector<VisibleEntry>& fresh) {
  // Index the fresh set by element pointer so containment can be checked and
  // the already-synthesized id of a fresh ancestor can be reused.
  std::unordered_map<const gsim::Control*, const std::string*> fresh_ids;
  fresh_ids.reserve(fresh.size());
  for (const auto& e : fresh) {
    fresh_ids.emplace(e.control, &e.control_id);
  }
  // First materialize all nodes, then wire edges.
  for (const auto& e : fresh) {
    graph.AddNode(MakeNodeInfo(e));
  }
  for (const auto& e : fresh) {
    const int node = graph.FindNode(e.control_id);
    // Walk up the accessibility parent chain to the nearest *also fresh*
    // ancestor; containment edge from it. Without one, this element roots a
    // revealed subtree: the click points at it.
    const std::string* parent_id = nullptr;
    for (const uia::Element* p = e.control->Parent(); p != nullptr; p = p->Parent()) {
      auto it = fresh_ids.find(static_cast<const gsim::Control*>(p));
      if (it != fresh_ids.end()) {
        parent_id = it->second;
        break;
      }
    }
    if (parent_id != nullptr) {
      graph.AddEdge(graph.FindNode(*parent_id), node);
    } else {
      graph.AddEdge(from_node, node);
    }
  }
}

bool GuiRipper::ReplayPath(const std::vector<std::string>& path, const RipContext& context) {
  app_->ResetUiState();
  if (context.setup) {
    context.setup(*app_);
  }
  for (const std::string& step : path) {
    gsim::Control* control = FindVisibleById(step);
    if (control == nullptr) {
      return false;
    }
    ++stats_.clicks;
    stats_.simulated_ms += kClickMs;
    if (!app_->Click(*control).ok()) {
      return false;
    }
    if (app_->in_external_state()) {
      // A blocklist miss: the app left; recover expensively.
      ++stats_.external_recoveries;
      stats_.simulated_ms += kExternalRecoveryMs;
      app_->ResetUiState();
      return false;
    }
  }
  return true;
}

void GuiRipper::RipContextInternal(topo::NavGraph& graph, const RipContext& context) {
  support::TraceSpan span("rip.context", "rip");
  span.AddArg("context", context.name);
  const int64_t context_start_us = support::TraceNowUs();
  ++stats_.contexts;
  app_->ResetUiState();
  if (context.setup) {
    context.setup(*app_);
  }

  // Root-node initialization (§4.1): the initial screen attaches beneath the
  // virtual root. Edges follow the revealed hierarchy — the click (here: the
  // virtual root) points at the roots of newly revealed subtrees; within a
  // revealed subtree, parent-child containment forms the edges. This
  // reconstructs the deep navigation structure (Figure 4's merge-node
  // substructures) instead of a flat fan-out; controls under the active tab's
  // panel automatically scope beneath that TabItem via containment.
  // The capture reference stays valid here: nothing mutates the UI between
  // the capture and its uses.
  const std::vector<VisibleEntry>& initial = CaptureVisible();
  std::deque<WorkItem> work;
  AddRevealedEdges(graph, topo::NavGraph::kRootIndex, initial);
  for (const auto& entry : initial) {
    if (!IsExplorable(*entry.control) || explored_.count(entry.control_id) > 0) {
      continue;
    }
    if (config_.seed_filter && !config_.seed_filter(*entry.control, entry.control_id)) {
      continue;  // out-of-scope region (delta rip); never entered
    }
    work.push_back(WorkItem{entry.control_id, {}});
  }

  // DFS (stack discipline via front-insertion).
  while (!work.empty() && explored_.size() < config_.max_explored) {
    WorkItem item = work.front();
    work.pop_front();
    if (explored_.count(item.control_id) > 0) {
      continue;
    }
    explored_.insert(item.control_id);
    ++stats_.explored;

    if (!ReplayPath(item.path, context)) {
      continue;  // state drifted; skip this branch
    }
    // The pre-click capture of this same state follows immediately, so let
    // this lookup rebuild the index and the capture comes for free.
    gsim::Control* target = FindVisibleById(item.control_id, /*ensure_fresh=*/true);
    if (target == nullptr) {
      continue;
    }
    // Snapshot only the id *set* of the pre-click capture — the entry buffer
    // itself is recycled by the post-click capture.
    std::set<std::string> before_ids;
    for (const auto& e : CaptureVisible()) {
      before_ids.insert(e.control_id);
    }
    ++stats_.clicks;
    stats_.simulated_ms += kClickMs;
    if (!app_->Click(*target).ok()) {
      continue;
    }
    if (app_->in_external_state()) {
      ++stats_.external_recoveries;
      stats_.simulated_ms += kExternalRecoveryMs;
      app_->ResetUiState();
      continue;
    }
    const std::vector<VisibleEntry>& after = CaptureVisible();

    const int from_node = graph.FindNode(item.control_id);
    if (from_node < 0) {
      continue;  // should not happen: node added when first seen
    }
    std::vector<std::string> next_path = item.path;
    next_path.push_back(item.control_id);
    const int next_depth = static_cast<int>(next_path.size());

    std::vector<VisibleEntry> fresh;
    for (const auto& e : after) {
      if (before_ids.count(e.control_id) == 0) {
        fresh.push_back(e);
      }
    }
    AddRevealedEdges(graph, from_node, fresh);
    for (const auto& e : fresh) {
      if (next_depth <= config_.max_depth && IsExplorable(*e.control) &&
          explored_.count(e.control_id) == 0) {
        work.push_front(WorkItem{e.control_id, next_path});
      }
    }
  }
  app_->ResetUiState();
  support::ObserveMetric("rip.context_ms",
                         static_cast<double>(support::TraceNowUs() - context_start_us) / 1000.0);
}

topo::NavGraph GuiRipper::Rip(const std::vector<RipContext>& extra_contexts) {
  support::TraceSpan span("rip.rip", "rip");
  span.AddArg("contexts", static_cast<int64_t>(extra_contexts.size() + 1));
  topo::NavGraph graph;
  RipContext default_context;
  default_context.name = "default";
  RipContextInternal(graph, default_context);
  for (const RipContext& context : extra_contexts) {
    RipContextInternal(graph, context);
  }
  DMI_LOG(kInfo) << "ripped " << graph.node_count() << " controls, " << graph.edge_count()
                 << " edges in " << stats_.explored << " explorations";
  return graph;
}

topo::NavGraph GuiRipper::RipSingleContext(const RipContext& context) {
  explored_.clear();
  topo::NavGraph graph;
  RipContextInternal(graph, context);
  return graph;
}

RipResult RipAppContexts(const RipperConfig& config,
                         const std::vector<RipContext>& extra_contexts,
                         const ParallelRipOptions& options) {
  support::TraceSpan span("rip.app_contexts", "rip");
  span.AddArg("parallel", options.pool != nullptr ? int64_t{1} : int64_t{0});
  std::vector<RipContext> contexts;
  contexts.reserve(extra_contexts.size() + 1);
  RipContext default_context;
  default_context.name = "default";
  contexts.push_back(default_context);
  for (const RipContext& context : extra_contexts) {
    contexts.push_back(context);
  }

  // One fresh app + ripper per context; contexts never share state, so each
  // per-context result is a pure function of (config, context).
  auto rip_one = [&config, &options](const RipContext& context) {
    std::unique_ptr<gsim::Application> app = options.app_factory();
    GuiRipper ripper(*app, config);
    RipResult result;
    result.graph = ripper.RipSingleContext(context);
    result.stats = ripper.stats();
    return result;
  };

  std::vector<RipResult> per_context(contexts.size());
  if (options.pool != nullptr) {
    std::vector<std::future<RipResult>> futures;
    futures.reserve(contexts.size());
    for (const RipContext& context : contexts) {
      futures.push_back(options.pool->Submit([&rip_one, &context] { return rip_one(context); }));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      per_context[i] = futures[i].get();
    }
  } else {
    for (size_t i = 0; i < contexts.size(); ++i) {
      per_context[i] = rip_one(contexts[i]);
    }
  }

  // Merge in fixed context order, then canonicalize by control id; the
  // combination makes the output independent of execution interleaving.
  RipResult merged;
  for (RipResult& result : per_context) {
    merged.graph.MergeFrom(result.graph);
    merged.stats.Accumulate(result.stats);
  }
  merged.graph = merged.graph.Canonicalized();
  DMI_LOG(kInfo) << "parallel-ripped " << contexts.size() << " contexts into "
                 << merged.graph.node_count() << " controls, " << merged.graph.edge_count()
                 << " edges";
  return merged;
}

}  // namespace ripper
