#include "src/ripper/delta.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/ripper/identifier.h"

namespace ripper {
namespace {

// Field-class markers keep adjacent variable-length fields from aliasing
// (same guard the UiaStateChecksum walk uses).
constexpr uint64_t kMarkOwn = 0x01;
constexpr uint64_t kMarkChildren = 0x02;
constexpr uint64_t kMarkOwnedPopup = 0x03;
constexpr uint64_t kMarkSharedPopup = 0x04;
constexpr uint64_t kMarkDialog = 0x05;
constexpr uint64_t kMarkReveal = 0x06;
constexpr uint64_t kMarkCycle = 0x07;
constexpr uint64_t kMarkAbsent = 0x08;

constexpr std::string_view kWindowPrefix = "window:";
constexpr std::string_view kMainPrefix = "main:";
constexpr std::string_view kDialogPrefix = "dialog:";
constexpr std::string_view kSharedPrefix = "shared:";

bool HasPrefix(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() && std::string_view(s).substr(0, prefix.size()) == prefix;
}

// Mixes the control's own static fields (never children/popups — those are
// closure concerns handled by the walker). Runtime ids and generations are
// deliberately excluded: digests must be equal across app instances.
void MixOwnFields(gsim::StateHash& h, const gsim::Control& c) {
  h.MixU64(kMarkOwn);
  h.Mix(c.TrueName());
  h.MixU64(static_cast<uint64_t>(c.Type()));
  h.Mix(c.AutomationId());
  h.Mix(c.HelpText());
  h.MixBool(c.IsEnabled());
  h.MixBool(c.forced_offscreen());
  h.MixU64(static_cast<uint64_t>(c.click_effect()));
  h.Mix(c.command());
  h.Mix(c.dialog_id());
  h.MixU64(static_cast<uint64_t>(c.close_disposition()));
  h.MixBool(c.popup_persistent());
  h.MixBool(c.floating());
  h.MixBool(c.popup_open());
  h.MixBool(c.toggled());
  h.MixBool(c.selected());
  h.Mix(c.text_value());
  h.MixDouble(c.range_value());
  h.MixDouble(c.range_min());
  h.MixDouble(c.range_max());
  const gsim::Rect r = c.rect();
  h.MixU64(static_cast<uint64_t>(static_cast<int64_t>(r.x)));
  h.MixU64(static_cast<uint64_t>(static_cast<int64_t>(r.y)));
  h.MixU64(static_cast<uint64_t>(static_cast<int64_t>(r.width)));
  h.MixU64(static_cast<uint64_t>(static_cast<int64_t>(r.height)));
}

// Closure digest walker. DigestOf(c) is a pure function of the static
// structure reachable from `c` (children, owned popups, shared popups,
// dialog targets, reveal targets); memoized per control. Digests computed
// inside a reference cycle are entry-point dependent, so they are marked
// tainted and never memoized — every caller then recomputes from its own
// root, keeping results deterministic.
class DigestWalker {
 public:
  explicit DigestWalker(gsim::Application& app) : app_(&app) {}

  uint64_t DigestOf(const gsim::Control& c) {
    bool tainted = false;
    return Walk(c, &tainted);
  }

 private:
  uint64_t Walk(const gsim::Control& c, bool* tainted) {
    auto memo_it = memo_.find(&c);
    if (memo_it != memo_.end()) {
      return memo_it->second;
    }
    if (in_progress_.count(&c) > 0) {
      *tainted = true;
      gsim::StateHash cycle;
      cycle.MixU64(kMarkCycle);
      cycle.Mix(c.TrueName());
      return cycle.digest();
    }
    in_progress_.insert(&c);
    bool local_taint = false;
    gsim::StateHash h;
    MixOwnFields(h, c);

    const std::vector<gsim::Control*>& children = c.StaticChildren();
    h.MixU64(kMarkChildren);
    h.MixU64(children.size());
    for (const gsim::Control* child : children) {
      h.MixU64(Walk(*child, &local_taint));
    }

    if (const gsim::Control* popup = c.popup()) {
      // Shared subtrees are registered floating; owned popups are not.
      h.MixU64(popup->floating() ? kMarkSharedPopup : kMarkOwnedPopup);
      h.MixU64(Walk(*popup, &local_taint));
    }
    if (!c.dialog_id().empty()) {
      h.MixU64(kMarkDialog);
      h.Mix(c.dialog_id());
      if (const gsim::Window* dialog = app_->FindDialog(c.dialog_id())) {
        h.MixU64(Walk(dialog->root(), &local_taint));
      } else {
        h.MixU64(kMarkAbsent);
      }
    }
    if (const gsim::Control* target = c.reveal_target()) {
      h.MixU64(kMarkReveal);
      h.MixU64(Walk(*target, &local_taint));
    }

    in_progress_.erase(&c);
    const uint64_t digest = h.digest();
    if (!local_taint) {
      memo_.emplace(&c, digest);
    } else {
      *tainted = true;
    }
    return digest;
  }

  gsim::Application* app_;
  std::unordered_map<const gsim::Control*, uint64_t> memo_;
  std::unordered_set<const gsim::Control*> in_progress_;
};

// Inserts key->digest; duplicate keys (two dialogs sharing a root name)
// fold together deterministically in insertion order.
void Insert(std::map<std::string, uint64_t>& table, const std::string& key, uint64_t digest) {
  auto [it, inserted] = table.emplace(key, digest);
  if (!inserted) {
    gsim::StateHash h;
    h.MixU64(it->second);
    h.MixU64(digest);
    it->second = h.digest();
  }
}

// ----- region mapping --------------------------------------------------------
//
// Maps a graph node (or a live seed control) onto the checksum key of the
// partition that owns it, using its ancestor path. Nodes of an expanded tab
// strip scope under "main:<strip>/<tab>"; dialog and shared-subtree interiors
// scope under their root's satellite key.

struct RegionScheme {
  std::string window_name;
  std::set<std::string> strips;        // tab-strip child names (expanded)
  std::set<std::string> dialog_roots;  // dialog root control names
  std::set<std::string> shared_roots;  // shared subtree root names
};

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= path.size() && !path.empty()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      parts.push_back(path.substr(start));
      break;
    }
    parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return parts;
}

RegionScheme BuildScheme(const ChecksumTable& baseline, const ChecksumTable& fresh) {
  RegionScheme scheme;
  auto absorb = [&scheme](const ChecksumTable& table) {
    for (const SubtreeChecksum& entry : table) {
      if (HasPrefix(entry.key, kWindowPrefix)) {
        scheme.window_name = entry.key.substr(kWindowPrefix.size());
      } else if (HasPrefix(entry.key, kMainPrefix)) {
        const std::string suffix = entry.key.substr(kMainPrefix.size());
        const size_t slash = suffix.find('/');
        if (slash != std::string::npos) {
          scheme.strips.insert(suffix.substr(0, slash));
        }
      } else if (HasPrefix(entry.key, kDialogPrefix)) {
        scheme.dialog_roots.insert(entry.key.substr(kDialogPrefix.size()));
      } else if (HasPrefix(entry.key, kSharedPrefix)) {
        scheme.shared_roots.insert(entry.key.substr(kSharedPrefix.size()));
      }
    }
  };
  absorb(baseline);
  absorb(fresh);
  return scheme;
}

std::optional<std::string> MapToRegion(const RegionScheme& scheme,
                                       const std::string& ancestor_path,
                                       const std::string& name, uia::ControlType type) {
  const std::vector<std::string> parts = SplitPath(ancestor_path);
  if (parts.empty()) {
    // A root: the main window, a dialog window, or a floating shared subtree.
    if (name == scheme.window_name) {
      return std::string(kWindowPrefix) + name;
    }
    if (scheme.dialog_roots.count(name) > 0) {
      return std::string(kDialogPrefix) + name;
    }
    if (scheme.shared_roots.count(name) > 0) {
      return std::string(kSharedPrefix) + name;
    }
    return std::nullopt;
  }
  if (parts[0] == scheme.window_name) {
    if (parts.size() == 1) {
      // Direct child of the window root: a partition root (or the strip
      // itself, which scopes under its residual key).
      return std::string(kMainPrefix) + name;
    }
    const std::string& child = parts[1];
    if (scheme.strips.count(child) > 0) {
      if (parts.size() >= 3) {
        return std::string(kMainPrefix) + child + "/" + parts[2];
      }
      // Child of the strip: tab items own their per-tab partition, anything
      // else belongs to the strip residual.
      if (type == uia::ControlType::kTabItem) {
        return std::string(kMainPrefix) + child + "/" + name;
      }
      return std::string(kMainPrefix) + child;
    }
    return std::string(kMainPrefix) + child;
  }
  if (scheme.dialog_roots.count(parts[0]) > 0) {
    return std::string(kDialogPrefix) + parts[0];
  }
  if (scheme.shared_roots.count(parts[0]) > 0) {
    return std::string(kSharedPrefix) + parts[0];
  }
  return std::nullopt;
}

}  // namespace

ChecksumTable ComputeSubtreeChecksums(gsim::Application& app) {
  DigestWalker walker(app);
  std::map<std::string, uint64_t> table;

  const gsim::Control& root = app.main_window().root();
  {
    gsim::StateHash h;
    MixOwnFields(h, root);
    Insert(table, std::string(kWindowPrefix) + root.TrueName(), h.digest());
  }
  for (const gsim::Control* child : root.StaticChildren()) {
    if (child->Type() == uia::ControlType::kTab) {
      // Expanded strip: each tab item is its own partition; the residual key
      // covers the strip control and its non-tab children. Tab items are
      // deliberately excluded from the residual so retitling one tab only
      // invalidates that tab's partition.
      gsim::StateHash residual;
      MixOwnFields(residual, *child);
      residual.MixU64(kMarkChildren);
      for (const gsim::Control* grandchild : child->StaticChildren()) {
        if (grandchild->Type() == uia::ControlType::kTabItem) {
          Insert(table,
                 std::string(kMainPrefix) + child->TrueName() + "/" + grandchild->TrueName(),
                 walker.DigestOf(*grandchild));
        } else {
          residual.MixU64(walker.DigestOf(*grandchild));
        }
      }
      Insert(table, std::string(kMainPrefix) + child->TrueName(), residual.digest());
    } else {
      Insert(table, std::string(kMainPrefix) + child->TrueName(), walker.DigestOf(*child));
    }
  }
  for (const auto& [dialog_id, dialog] : app.DialogEntries()) {
    Insert(table, std::string(kDialogPrefix) + dialog->root().TrueName(),
           walker.DigestOf(dialog->root()));
  }
  for (const gsim::Control* shared : app.SharedSubtreeRoots()) {
    Insert(table, std::string(kSharedPrefix) + shared->TrueName(), walker.DigestOf(*shared));
  }

  ChecksumTable out;
  out.reserve(table.size());
  for (auto& [key, digest] : table) {
    out.push_back(SubtreeChecksum{key, digest});
  }
  return out;
}

ChecksumDiff DiffChecksumTables(const ChecksumTable& baseline, const ChecksumTable& fresh) {
  ChecksumDiff diff;
  size_t b = 0;
  size_t f = 0;
  while (b < baseline.size() || f < fresh.size()) {
    if (b >= baseline.size()) {
      diff.added.push_back(fresh[f++].key);
    } else if (f >= fresh.size()) {
      diff.removed.push_back(baseline[b++].key);
    } else if (baseline[b].key < fresh[f].key) {
      diff.removed.push_back(baseline[b++].key);
    } else if (fresh[f].key < baseline[b].key) {
      diff.added.push_back(fresh[f++].key);
    } else {
      if (baseline[b].checksum != fresh[f].checksum) {
        diff.changed.push_back(baseline[b].key);
      }
      ++b;
      ++f;
    }
  }
  return diff;
}

support::Result<DeltaRipResult> DeltaRip(const DeltaRipOptions& options,
                                         const topo::NavGraph& baseline,
                                         const ChecksumTable& baseline_checksums) {
  if (!options.app_factory) {
    return support::InvalidArgumentError("DeltaRip requires an app_factory");
  }
  DeltaRipResult out;
  {
    std::unique_ptr<gsim::Application> probe = options.app_factory();
    if (probe == nullptr) {
      return support::InvalidArgumentError("DeltaRip app_factory returned null");
    }
    out.checksums = ComputeSubtreeChecksums(*probe);
  }
  out.partitions_total = out.checksums.size();

  auto full_rip = [&]() -> support::Result<DeltaRipResult> {
    RipResult full = RipAppContexts(options.config, options.extra_contexts,
                                    ParallelRipOptions{options.app_factory, options.pool});
    out.graph = std::move(full.graph);
    out.stats = full.stats;
    out.full_fallback = true;
    out.nodes_reused = 0;
    out.nodes_reripped = out.graph.node_count() > 0 ? out.graph.node_count() - 1 : 0;
    return std::move(out);
  };

  // No baseline table (pre-v2 artifact, or never saved): nothing to diff
  // against — degrade to a full rip rather than erroring.
  if (baseline_checksums.empty()) {
    return full_rip();
  }

  out.diff = DiffChecksumTables(baseline_checksums, out.checksums);

  // The window root's identity prefixes every ancestor path; if it changed,
  // no baseline control id is comparable and splicing is meaningless.
  for (const std::vector<std::string>* keys :
       {&out.diff.changed, &out.diff.added, &out.diff.removed}) {
    for (const std::string& key : *keys) {
      if (HasPrefix(key, kWindowPrefix)) {
        return full_rip();
      }
    }
  }

  if (out.diff.Empty()) {
    // Identical build: the baseline graph *is* the answer (it is already
    // canonical — both the compile and the artifact-load path store
    // canonicalized graphs).
    out.graph = baseline;
    out.nodes_reused = baseline.node_count() > 0 ? baseline.node_count() - 1 : 0;
    return std::move(out);
  }

  const RegionScheme scheme = BuildScheme(baseline_checksums, out.checksums);

  // Baseline nodes survive the splice only when their region's digest is
  // certified unchanged (same key, same digest, in both tables). Everything
  // else is dropped and — for main partitions — re-ripped.
  std::set<std::string> keep;
  {
    size_t b = 0;
    size_t f = 0;
    while (b < baseline_checksums.size() && f < out.checksums.size()) {
      if (baseline_checksums[b].key < out.checksums[f].key) {
        ++b;
      } else if (out.checksums[f].key < baseline_checksums[b].key) {
        ++f;
      } else {
        if (baseline_checksums[b].checksum == out.checksums[f].checksum) {
          keep.insert(baseline_checksums[b].key);
        }
        ++b;
        ++f;
      }
    }
  }
  std::set<std::string> scope;  // main:* regions whose seeds the rip enters
  for (const std::vector<std::string>* keys :
       {&out.diff.changed, &out.diff.added, &out.diff.removed}) {
    for (const std::string& key : *keys) {
      if (HasPrefix(key, kMainPrefix)) {
        scope.insert(key);
      }
    }
  }

  // Scoped rip of the updated app: only seeds inside changed/added partitions
  // enter exploration. Unknown regions explore conservatively — re-ripping an
  // unchanged region is harmless (the merge dedups it against the baseline
  // splice), only *skipping* a changed one would be unsound.
  RipperConfig scoped_config = options.config;
  scoped_config.seed_filter = [scheme, scope](const gsim::Control& control,
                                              const std::string& control_id) {
    const ParsedControlId parsed = ParseControlId(control_id);
    const std::optional<std::string> region =
        MapToRegion(scheme, parsed.ancestor_path, control.TrueName(), control.Type());
    if (!region.has_value() || !HasPrefix(*region, kMainPrefix)) {
      return true;
    }
    return scope.count(*region) > 0;
  };
  RipResult scoped = RipAppContexts(scoped_config, options.extra_contexts,
                                    ParallelRipOptions{options.app_factory, options.pool});
  out.stats = scoped.stats;

  // Splice: copy certified-unchanged baseline regions, merge the scoped rip
  // over them, canonicalize. AddNode/AddEdge dedup overlaps (the scoped rip
  // re-contributes every initially-visible node).
  topo::NavGraph spliced;
  std::vector<int> remap(baseline.node_count(), -1);
  remap[topo::NavGraph::kRootIndex] = topo::NavGraph::kRootIndex;
  for (size_t i = 1; i < baseline.node_count(); ++i) {
    const topo::NodeInfo& info = baseline.node(static_cast<int>(i));
    const ParsedControlId parsed = ParseControlId(info.control_id);
    const std::optional<std::string> region =
        MapToRegion(scheme, parsed.ancestor_path, info.name, info.type);
    if (!region.has_value()) {
      // A baseline node the partition scheme cannot place: splicing could
      // silently keep stale structure, so give up on the delta.
      return full_rip();
    }
    if (keep.count(*region) == 0) {
      continue;
    }
    remap[i] = spliced.AddNode(info);
  }
  for (size_t from = 0; from < baseline.node_count(); ++from) {
    if (remap[from] < 0) {
      continue;
    }
    for (int to : baseline.successors(static_cast<int>(from))) {
      if (remap[static_cast<size_t>(to)] >= 0) {
        spliced.AddEdge(remap[from], remap[static_cast<size_t>(to)]);
      }
    }
  }
  out.nodes_reused = spliced.node_count() > 0 ? spliced.node_count() - 1 : 0;
  out.nodes_reripped = scoped.graph.node_count() > 0 ? scoped.graph.node_count() - 1 : 0;
  spliced.MergeFrom(scoped.graph);
  out.graph = spliced.Canonicalized();
  return std::move(out);
}

}  // namespace ripper
