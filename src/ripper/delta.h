// Delta ripping (DESIGN.md §15): checksum-guided incremental re-modeling.
//
// Apps update continuously; re-ripping >4K controls from scratch per version
// does not scale. The delta path walks the *static* control tree of a live
// application, computes one structural checksum per top-level UI partition
// (window-root children, with tab strips expanded so each tab is its own
// partition, plus registered dialogs and shared subtrees as satellites),
// diffs the table against the one stored in a baseline model artifact, and
// re-rips only the partitions whose closure changed. Unchanged regions of the
// baseline UI Navigation Graph are spliced through verbatim; the result
// canonicalizes to the exact graph a from-scratch rip of the updated app
// would produce (the mutation-injection tests assert byte identity).
//
// The checksum of a partition covers its *closure*: the static subtree plus
// everything its exploration can reach — owned popups, shared popup subtrees,
// dialogs opened via dialog ids, and reveal targets. That closure rule is
// what makes splicing sound: any partition whose rip output could be affected
// by a change necessarily has a changed checksum and is re-ripped.
#ifndef SRC_RIPPER_DELTA_H_
#define SRC_RIPPER_DELTA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/ripper/ripper.h"
#include "src/support/status.h"
#include "src/support/thread_pool.h"
#include "src/topology/nav_graph.h"

namespace ripper {

// One partition/satellite checksum. Keys are namespaced:
//   "window:<name>"        window-root identity (change => full-rip fallback)
//   "main:<child>"         partition rooted at a window-root child
//   "main:<strip>/<tab>"   per-tab partition of an expanded tab strip
//   "dialog:<root name>"   registered dialog window (satellite)
//   "shared:<root name>"   registered shared subtree (satellite)
struct SubtreeChecksum {
  std::string key;
  uint64_t checksum = 0;
};

// Sorted by key (strcmp order); unique keys.
using ChecksumTable = std::vector<SubtreeChecksum>;

// Computes the checksum table of a live application by walking static
// structure only (TrueName, types, automation ids, effects, wiring — never
// runtime ids or generations), so the digest is stable across instances and
// across pool resets.
ChecksumTable ComputeSubtreeChecksums(gsim::Application& app);

// Set difference of two tables, by key and digest.
struct ChecksumDiff {
  std::vector<std::string> changed;  // key in both, digest differs
  std::vector<std::string> added;    // key only in fresh
  std::vector<std::string> removed;  // key only in baseline
  bool Empty() const { return changed.empty() && added.empty() && removed.empty(); }
};
ChecksumDiff DiffChecksumTables(const ChecksumTable& baseline, const ChecksumTable& fresh);

struct DeltaRipOptions {
  RipperConfig config;
  std::vector<RipContext> extra_contexts;
  // Builds one fresh instance of the *updated* application per ripped
  // context (same contract as ParallelRipOptions::app_factory). Required.
  std::function<std::unique_ptr<gsim::Application>()> app_factory;
  // Workers for parallel per-context rips; nullptr rips serially.
  support::ThreadPool* pool = nullptr;
};

struct DeltaRipResult {
  // Canonicalized graph of the updated app — identical to a from-scratch
  // RipAppContexts() of the same build.
  topo::NavGraph graph;
  // Rip counters actually spent (scoped rip, or the full rip on fallback).
  RipStats stats;
  // Fresh checksum table of the updated app (goes into the new artifact).
  ChecksumTable checksums;
  // Diff against the baseline table (empty on fallback with no baseline).
  ChecksumDiff diff;
  size_t partitions_total = 0;    // partitions + satellites in the fresh table
  size_t nodes_reused = 0;        // baseline nodes spliced through (excl. root)
  size_t nodes_reripped = 0;      // nodes contributed by the scoped rip (excl. root)
  // True when the delta path could not be used (no baseline checksums, the
  // window-root identity changed, or an unmappable node) and a full rip ran.
  bool full_fallback = false;
};

// Incrementally re-rips the updated application described by
// `options.app_factory` against `baseline` (the previous version's graph) and
// `baseline_checksums` (from the previous version's artifact). An empty
// baseline table triggers the full-rip fallback rather than an error, so v1
// artifacts written before the checksum section degrade gracefully.
support::Result<DeltaRipResult> DeltaRip(const DeltaRipOptions& options,
                                         const topo::NavGraph& baseline,
                                         const ChecksumTable& baseline_checksums);

}  // namespace ripper

#endif  // SRC_RIPPER_DELTA_H_
