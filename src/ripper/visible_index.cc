#include "src/ripper/visible_index.h"

#include <functional>

#include "src/ripper/identifier.h"
#include "src/support/metrics.h"
#include "src/uia/element.h"

namespace ripper {
namespace {

// Mirrors identifier.cc's Primary(): AutomationId > Name > "[Unnamed]".
const std::string& PrimaryOf(const std::string& automation_id, const std::string& name) {
  static const std::string kUnnamed = "[Unnamed]";
  if (!automation_id.empty()) {
    return automation_id;
  }
  if (!name.empty()) {
    return name;
  }
  return kUnnamed;
}

}  // namespace

VisibleIndex::~VisibleIndex() {
  // One registry touch per index lifetime; zero tallies stay off the registry
  // so unused indexes don't mint counters.
  if (rebuilds_ != 0) {
    support::CountMetric("visible_index.rebuilds", rebuilds_);
  }
  if (capture_hits_ != 0) {
    support::CountMetric("visible_index.capture_hits", capture_hits_);
  }
  if (lookups_ != 0) {
    support::CountMetric("visible_index.lookups", lookups_);
  }
  if (cold_walks_ != 0) {
    support::CountMetric("visible_index.cold_walks", cold_walks_);
  }
}

bool VisibleIndex::Refresh() {
  const uint64_t generation = app_->ui_generation();
  if (valid_ && generation == cached_generation_) {
    return false;
  }
  // by_id_ holds views into entries_; drop it before touching the strings.
  by_id_.clear();
  const size_t last_size = entries_.size();
  entries_.clear();
  entries_.reserve(last_size);

  // One pre-order walk with incremental ancestor-path synthesis. The visit
  // order, pruning and id strings are identical to the legacy
  // Walk + SynthesizeControlId capture; only the cost differs.
  std::function<void(uia::Element&, const std::string&)> descend =
      [&](uia::Element& e, const std::string& ancestor_path) {
        if (e.IsOffscreen()) {
          return;  // prune, exactly as the legacy capture walk does
        }
        std::string name = e.Name();
        if (e.RuntimeId() != 0) {  // the synthetic desktop root is skipped
          VisibleEntry entry;
          entry.control_id = PrimaryOf(e.AutomationId(), name) + "|" +
                             std::string(uia::ControlTypeName(e.Type())) + "|" +
                             ancestor_path;
          entry.control = static_cast<gsim::Control*>(&e);
          entries_.push_back(std::move(entry));
        }
        // A child whose public Parent() is null (window roots, floating
        // shared surfaces) restarts its path at "" — matching
        // uia::AncestorPath, which stops at the first null parent.
        std::string child_path;
        bool child_path_built = false;
        for (uia::Element* child : e.Children()) {
          const std::string* path = &child_path;
          if (child->Parent() == nullptr) {
            static const std::string kEmpty;
            path = &kEmpty;
          } else if (!child_path_built) {
            child_path = ancestor_path;
            if (!child_path.empty()) {
              child_path += '/';
            }
            child_path += name.empty() ? "[Unnamed]" : name;
            child_path_built = true;
          }
          descend(*child, *path);
        }
      };
  // The desktop root itself has a null Parent(), so its windows' paths start
  // empty; the root's own path argument is unused.
  descend(app_->AccessibilityRoot(), "");

  // Second pass: entries_ no longer reallocates, so views into its id
  // strings are stable for the lifetime of this generation.
  by_id_.reserve(entries_.size());
  for (VisibleEntry& entry : entries_) {
    by_id_[std::string_view(entry.control_id)].push_back(entry.control);
  }

  valid_ = true;
  cached_generation_ = generation;
  ++rebuilds_;
  return true;
}

const std::vector<VisibleEntry>& VisibleIndex::Visible(bool* rebuilt) {
  const bool did = Refresh();
  if (!did) {
    ++capture_hits_;
  }
  if (rebuilt != nullptr) {
    *rebuilt = did;
  }
  return entries_;
}

gsim::Control* VisibleIndex::FindById(const std::string& control_id) {
  ++lookups_;
  const uint64_t generation = app_->ui_generation();
  if (valid_ && generation == cached_generation_) {
    ++capture_hits_;
    auto it = by_id_.find(std::string_view(control_id));
    if (it == by_id_.end() || it->second.empty()) {
      return nullptr;
    }
    return it->second.front();
  }
  // Cold single lookup: an early-terminating walk beats paying for a full
  // rebuild that the next mutation would discard anyway (replay-heavy rip
  // loops look up exactly once per UI state). The cache stays stale; the
  // next capture rebuilds it.
  ++cold_walks_;
  gsim::Control* found = nullptr;
  std::function<void(uia::Element&, const std::string&)> descend =
      [&](uia::Element& e, const std::string& ancestor_path) {
        if (found != nullptr || e.IsOffscreen()) {
          return;
        }
        std::string name = e.Name();
        if (e.RuntimeId() != 0) {
          std::string id = PrimaryOf(e.AutomationId(), name) + "|" +
                           std::string(uia::ControlTypeName(e.Type())) + "|" + ancestor_path;
          if (id == control_id) {
            found = static_cast<gsim::Control*>(&e);
            return;
          }
        }
        std::string child_path;
        bool child_path_built = false;
        for (uia::Element* child : e.Children()) {
          if (found != nullptr) {
            return;
          }
          const std::string* path = &child_path;
          if (child->Parent() == nullptr) {
            static const std::string kEmpty;
            path = &kEmpty;
          } else if (!child_path_built) {
            child_path = ancestor_path;
            if (!child_path.empty()) {
              child_path += '/';
            }
            child_path += name.empty() ? "[Unnamed]" : name;
            child_path_built = true;
          }
          descend(*child, *path);
        }
      };
  descend(app_->AccessibilityRoot(), "");
  return found;
}

gsim::Control* VisibleIndex::FindByIdEnsureFresh(const std::string& control_id,
                                                 bool* rebuilt) {
  const bool did = Refresh();
  if (!did) {
    ++capture_hits_;
  }
  if (rebuilt != nullptr) {
    *rebuilt = did;
  }
  ++lookups_;
  auto it = by_id_.find(std::string_view(control_id));
  if (it == by_id_.end() || it->second.empty()) {
    return nullptr;
  }
  return it->second.front();
}

gsim::Control* VisibleIndex::FindByIdInWindow(const std::string& control_id,
                                              const gsim::Window* window) {
  if (!Refresh()) {
    ++capture_hits_;
  }
  ++lookups_;
  auto it = by_id_.find(std::string_view(control_id));
  if (it == by_id_.end()) {
    return nullptr;
  }
  for (gsim::Control* control : it->second) {
    if (control->window() == window) {
      return control;
    }
  }
  return nullptr;
}

}  // namespace ripper
