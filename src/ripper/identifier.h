// Control identifier synthesis (paper §4.1).
//
// UIA gives no globally unique id, so nodes in the UI Navigation Graph are
// labeled with an XPath-like identifier:
//     primary_id|control_type|ancestor_path
// primary_id is the AutomationId, falling back to the control name, falling
// back to "[Unnamed]". Index-based addressing is deliberately avoided —
// dynamic menus shift indices unpredictably.
#ifndef SRC_RIPPER_IDENTIFIER_H_
#define SRC_RIPPER_IDENTIFIER_H_

#include <string>

#include "src/uia/tree.h"

namespace ripper {

struct ParsedControlId {
  std::string primary_id;
  std::string control_type;
  std::string ancestor_path;
};

// Builds the identifier from a snapshot entry.
std::string SynthesizeControlId(const uia::SnapshotEntry& entry);

// Builds the identifier directly from a live element.
std::string SynthesizeControlId(const uia::Element& element);

// Splits an identifier back into its three fields. Robust to '|' inside
// control names: among the separator pairs, the pair delimiting a valid UIA
// control type name (rightmost such pair) wins; without one, the last two
// separators are used. Degenerate one-field / two-field forms parse as
// primary-only / primary+type.
ParsedControlId ParseControlId(const std::string& control_id);

}  // namespace ripper

#endif  // SRC_RIPPER_IDENTIFIER_H_
