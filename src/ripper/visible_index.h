// Generation-stamped visible-capture index (the rip/visit hot-path cache).
//
// CaptureVisible() and FindVisibleById() used to re-walk the whole
// accessibility tree and re-synthesize every XPath-like control id on every
// call — O(tree x string-build) per lookup, the dominant cost of both the
// ripper's DFS and the visit executor's path navigation. The index memoizes
// exactly one capture walk per gsim::Application UI-state generation (see
// Application::ui_generation()): while the generation is unchanged, captures
// are served from the cache and id lookups are one hash probe.
//
// The capture walk itself is also cheaper than the legacy one: ancestor paths
// are synthesized incrementally during the descent (O(1) amortized per
// element) instead of re-walking the parent chain per element (O(depth)).
//
// Invalidation: any mutation that can change the visible tree or an id bumps
// the application generation (clicks, popups, window open/close, renames,
// scroll occlusion, reveal ticks, logical ticks); the next access rebuilds.
// Not thread-safe — an index is confined to its application's thread.
#ifndef SRC_RIPPER_VISIBLE_INDEX_H_
#define SRC_RIPPER_VISIBLE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/gui/application.h"

namespace ripper {

// One visible (attached, on-screen) control and its synthesized identifier.
struct VisibleEntry {
  std::string control_id;
  gsim::Control* control = nullptr;
};

class VisibleIndex {
 public:
  explicit VisibleIndex(gsim::Application& app) : app_(&app) {}

  // Flushes the lifetime tallies (rebuilds / capture hits / lookups / cold
  // walks) onto the global MetricsRegistry as visible_index.* counters. The
  // hot path keeps plain (non-atomic) fields; the one-time flush here is what
  // keeps warm lookups free of clocks and atomics.
  ~VisibleIndex();

  // All visible controls in desktop pre-order (identical order and content to
  // the legacy uncached capture). `rebuilt`, when non-null, reports whether
  // this call performed an actual capture walk.
  const std::vector<VisibleEntry>& Visible(bool* rebuilt = nullptr);

  // First visible control (desktop pre-order) with this id, or nullptr.
  // Warm generation: one hash probe. Stale: an early-terminating tree walk
  // (no rebuild — a single cold lookup doesn't justify indexing a state the
  // next mutation will discard).
  gsim::Control* FindById(const std::string& control_id);

  // Like FindById, but on a stale generation performs the full rebuild and
  // probes the fresh index. Use when a capture of the same UI state follows
  // immediately (the rip loop's pre-click target lookup): the rebuild is paid
  // once and the capture is then served warm. `rebuilt`, when non-null,
  // reports whether this call performed the capture walk.
  gsim::Control* FindByIdEnsureFresh(const std::string& control_id,
                                     bool* rebuilt = nullptr);

  // First visible control with this id whose containing window is `window`
  // (the visit executor searches only the topmost valid window), or nullptr.
  gsim::Control* FindByIdInWindow(const std::string& control_id,
                                  const gsim::Window* window);

  // Drops the cache; the next access rebuilds regardless of generation.
  void Invalidate() { valid_ = false; }

 private:
  // Rebuilds if the cached generation is stale; returns true if it rebuilt.
  bool Refresh();

  gsim::Application* app_;
  bool valid_ = false;
  uint64_t cached_generation_ = 0;
  std::vector<VisibleEntry> entries_;
  // id -> visible controls carrying it, in pre-order (ids are not guaranteed
  // globally unique: non-unique AutomationIds, paper §5.7). Keys are views
  // into entries_' id strings, built in a second pass once entries_ is
  // final — no per-rebuild key copies.
  std::unordered_map<std::string_view, std::vector<gsim::Control*>> by_id_;
  // Lifetime tallies, flushed to the metrics registry by the destructor.
  // Plain fields on purpose: the warm lookup path must stay atomics-free.
  uint64_t rebuilds_ = 0;      // capture walks actually performed
  uint64_t capture_hits_ = 0;  // captures/lookups served from a warm generation
  uint64_t lookups_ = 0;       // FindById / FindByIdInWindow / EnsureFresh calls
  uint64_t cold_walks_ = 0;    // stale FindById early-exit walks (no rebuild)
};

}  // namespace ripper

#endif  // SRC_RIPPER_VISIBLE_INDEX_H_
