// GUI ripping: automated construction of the UI Navigation Graph (paper §4.1).
//
// Differential capture with DFS exploration: capture the visible accessibility
// set, click a candidate control, capture again; newly visible controls define
// navigation edges. State is restored between explorations by resetting the UI
// and replaying the recorded access path (cheap for an in-process app; the
// paper avoids full restarts the same way via Esc/Close).
//
// Semi-automation mirrors the paper:
//   - an access *blocklist* for controls that leave the application or wedge
//     it (e.g. "Account" opening a browser); hitting one without the
//     blocklist costs an expensive recovery, which the stats record;
//   - *context-aware exploration*: some controls only exist in specific
//     contexts (an image selected); contexts are small setup callbacks and the
//     per-context graphs merge by control id.
#ifndef SRC_RIPPER_RIPPER_H_
#define SRC_RIPPER_RIPPER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/topology/nav_graph.h"

namespace ripper {

struct RipperConfig {
  // Control names never clicked during exploration (§4.1 "Access blocklist").
  std::set<std::string> blocklist;
  // Exploration depth cap (root's children are depth 1).
  int max_depth = 14;
  // Safety cap on distinct explored controls.
  size_t max_explored = 50000;
};

struct RipContext {
  std::string name;
  // Puts the application into the context (e.g. select an image). Replayed
  // after every state reset while exploring this context.
  std::function<void(gsim::Application&)> setup;
};

struct RipStats {
  uint64_t clicks = 0;
  uint64_t captures = 0;
  uint64_t explored = 0;
  uint64_t external_recoveries = 0;  // blocklist misses: expensive restarts
  uint64_t window_events = 0;        // dialog open/close events observed
  uint64_t contexts = 0;
  // Simulated wall-time cost in milliseconds: clicks and captures have
  // real-world latency on a live UI even though the simulator is instant.
  // Calibrated to UIA costs: ~120 ms per click, ~80 ms per capture, 30 s per
  // external recovery (app restart).
  double simulated_ms = 0.0;
};

class GuiRipper {
 public:
  GuiRipper(gsim::Application& app, RipperConfig config);

  // Rips the default context plus each extra context; returns the merged UNG.
  topo::NavGraph Rip(const std::vector<RipContext>& extra_contexts = {});

  const RipStats& stats() const { return stats_; }

 private:
  struct VisibleEntry {
    std::string control_id;
    gsim::Control* control;
  };

  // All currently visible (attached, on-screen) controls, by identifier.
  std::vector<VisibleEntry> CaptureVisible();

  // Whether exploration should click this control.
  bool IsExplorable(const gsim::Control& control) const;

  void RipContextInternal(topo::NavGraph& graph, const RipContext& context);

  // Adds nodes and edges for a set of newly revealed controls: the click
  // (from_node) points at subtree roots; containment wires the rest.
  void AddRevealedEdges(topo::NavGraph& graph, int from_node,
                        const std::vector<VisibleEntry>& fresh,
                        const std::set<std::string>& prior_ids);

  // Navigates to the state where `path` (control ids) has been clicked.
  // Returns false if replay failed (UI changed under us).
  bool ReplayPath(const std::vector<std::string>& path, const RipContext& context);

  gsim::Control* FindVisibleById(const std::string& control_id);

  topo::NodeInfo MakeNodeInfo(const gsim::Control& control) const;

  gsim::Application* app_;
  RipperConfig config_;
  RipStats stats_;
  std::set<std::string> explored_;
};

}  // namespace ripper

#endif  // SRC_RIPPER_RIPPER_H_
