// GUI ripping: automated construction of the UI Navigation Graph (paper §4.1).
//
// Differential capture with DFS exploration: capture the visible accessibility
// set, click a candidate control, capture again; newly visible controls define
// navigation edges. State is restored between explorations by resetting the UI
// and replaying the recorded access path (cheap for an in-process app; the
// paper avoids full restarts the same way via Esc/Close).
//
// Semi-automation mirrors the paper:
//   - an access *blocklist* for controls that leave the application or wedge
//     it (e.g. "Account" opening a browser); hitting one without the
//     blocklist costs an expensive recovery, which the stats record;
//   - *context-aware exploration*: some controls only exist in specific
//     contexts (an image selected); contexts are small setup callbacks and the
//     per-context graphs merge by control id.
//
// Performance: captures and id lookups run through a generation-stamped
// ripper::VisibleIndex (one tree walk per UI-state generation, O(1) lookups) —
// see visible_index.h. RipAppContexts() additionally rips independent contexts
// in parallel on separate app instances and merges the graphs
// deterministically.
#ifndef SRC_RIPPER_RIPPER_H_
#define SRC_RIPPER_RIPPER_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/ripper/visible_index.h"
#include "src/support/thread_pool.h"
#include "src/topology/nav_graph.h"

namespace ripper {

struct RipperConfig {
  // Control names never clicked during exploration (§4.1 "Access blocklist").
  std::set<std::string> blocklist;
  // Exploration depth cap (root's children are depth 1).
  int max_depth = 14;
  // Safety cap on distinct explored controls.
  size_t max_explored = 50000;
  // Serve captures/lookups from the generation-stamped VisibleIndex. Off
  // reproduces the uncached full-walk behaviour (the determinism tests assert
  // both modes rip identical graphs).
  bool use_visible_index = true;
  // Optional scope filter over *initial* exploration seeds (DESIGN.md §15,
  // delta rip): an initially-visible explorable control only seeds the DFS
  // when the filter accepts its control id. Everything *revealed* while
  // exploring an accepted seed is explored normally — the filter scopes
  // which top-level regions are entered, not what exploration may touch.
  // Null means "explore everything" (full rip). May be invoked concurrently
  // from parallel per-context rips; implementations must be pure.
  std::function<bool(const gsim::Control& control, const std::string& control_id)>
      seed_filter;
};

struct RipContext {
  std::string name;
  // Puts the application into the context (e.g. select an image). Replayed
  // after every state reset while exploring this context.
  std::function<void(gsim::Application&)> setup;
};

struct RipStats {
  uint64_t clicks = 0;
  uint64_t captures = 0;  // logical captures requested (cached or not)
  uint64_t explored = 0;
  uint64_t external_recoveries = 0;  // blocklist misses: expensive restarts
  uint64_t window_events = 0;        // dialog open/close events observed
  uint64_t contexts = 0;
  // Index effectiveness: tree walks actually performed vs. served warm, and
  // O(1) id lookups that replaced full-tree searches.
  uint64_t capture_rebuilds = 0;
  uint64_t capture_cache_hits = 0;
  uint64_t indexed_lookups = 0;
  // Simulated wall-time cost in milliseconds: clicks and captures have
  // real-world latency on a live UI even though the simulator is instant.
  // Calibrated to UIA costs: ~120 ms per click, ~80 ms per capture, 30 s per
  // external recovery (app restart). Charged per *logical* capture, so the
  // metric is comparable across cached and uncached rips (the index speeds up
  // the real wall-clock, which the micro-bench measures separately).
  double simulated_ms = 0.0;

  // Cache hit-rate over logical captures, in [0,1].
  double CaptureHitRate() const {
    const uint64_t total = capture_rebuilds + capture_cache_hits;
    return total == 0 ? 0.0 : static_cast<double>(capture_cache_hits) / total;
  }

  // Elementwise sum (used when merging per-context parallel rips).
  void Accumulate(const RipStats& other);
};

class GuiRipper {
 public:
  GuiRipper(gsim::Application& app, RipperConfig config);

  // Publishes the lifetime RipStats onto the global MetricsRegistry as rip.*
  // counters (one registry touch per ripper, off the exploration hot path).
  ~GuiRipper();

  // Rips the default context plus each extra context; returns the merged UNG.
  topo::NavGraph Rip(const std::vector<RipContext>& extra_contexts = {});

  // Rips exactly one context into a fresh graph. Unlike Rip(), no exploration
  // state is shared with other contexts, so the result depends only on
  // (app build, config, context) — the unit of work for parallel ripping.
  topo::NavGraph RipSingleContext(const RipContext& context);

  const RipStats& stats() const { return stats_; }

 private:
  // All currently visible (attached, on-screen) controls, by identifier.
  // The reference stays valid only until the next capture or UI mutation.
  const std::vector<VisibleEntry>& CaptureVisible();

  // Whether exploration should click this control.
  bool IsExplorable(const gsim::Control& control) const;

  void RipContextInternal(topo::NavGraph& graph, const RipContext& context);

  // Adds nodes and edges for a set of newly revealed controls: the click
  // (from_node) points at subtree roots; containment wires the rest.
  void AddRevealedEdges(topo::NavGraph& graph, int from_node,
                        const std::vector<VisibleEntry>& fresh);

  // Navigates to the state where `path` (control ids) has been clicked.
  // Returns false if replay failed (UI changed under us).
  bool ReplayPath(const std::vector<std::string>& path, const RipContext& context);

  // `ensure_fresh` forces an index rebuild on a stale generation — worth it
  // only when a capture of the same state follows immediately.
  gsim::Control* FindVisibleById(const std::string& control_id, bool ensure_fresh = false);

  topo::NodeInfo MakeNodeInfo(const VisibleEntry& entry) const;

  gsim::Application* app_;
  RipperConfig config_;
  RipStats stats_;
  std::set<std::string> explored_;
  VisibleIndex index_;
  // Backing storage for uncached captures (mirrors the index's entry buffer).
  std::vector<VisibleEntry> scratch_entries_;
};

// ----- parallel multi-context ripping ---------------------------------------

struct ParallelRipOptions {
  // Builds one fresh application instance per context. Applications are
  // procedurally generated, so independent instances expose identical UIs;
  // each instance is confined to the worker that rips it (one app per thread,
  // never shared).
  std::function<std::unique_ptr<gsim::Application>()> app_factory;
  // Workers to rip on; nullptr rips the contexts serially (same output).
  support::ThreadPool* pool = nullptr;
};

struct RipResult {
  topo::NavGraph graph;
  RipStats stats;
};

// Rips the default context plus each extra context *independently* (each on
// its own app instance with its own exploration state) and merges the
// per-context graphs in context order, then canonicalizes node ordering by
// control id. Because every per-context rip is deterministic and the merge
// order is fixed, the result is bit-identical whether contexts run serially
// or on a thread pool.
RipResult RipAppContexts(const RipperConfig& config,
                         const std::vector<RipContext>& extra_contexts,
                         const ParallelRipOptions& options);

}  // namespace ripper

#endif  // SRC_RIPPER_RIPPER_H_
