#include "src/ripper/identifier.h"

#include <vector>

#include "src/uia/control_type.h"

namespace ripper {
namespace {

std::string Primary(const std::string& automation_id, const std::string& name) {
  if (!automation_id.empty()) {
    return automation_id;
  }
  if (!name.empty()) {
    return name;
  }
  return "[Unnamed]";
}

}  // namespace

std::string SynthesizeControlId(const uia::SnapshotEntry& entry) {
  return Primary(entry.automation_id, entry.name) + "|" +
         std::string(uia::ControlTypeName(entry.type)) + "|" + entry.ancestor_path;
}

std::string SynthesizeControlId(const uia::Element& element) {
  return Primary(element.AutomationId(), element.Name()) + "|" +
         std::string(uia::ControlTypeName(element.Type())) + "|" +
         uia::AncestorPath(element);
}

ParsedControlId ParseControlId(const std::string& control_id) {
  ParsedControlId parsed;
  std::vector<size_t> seps;
  for (size_t pos = control_id.find('|'); pos != std::string::npos;
       pos = control_id.find('|', pos + 1)) {
    seps.push_back(pos);
  }
  if (seps.empty()) {
    parsed.primary_id = control_id;
    return parsed;
  }
  if (seps.size() == 1) {
    parsed.primary_id = control_id.substr(0, seps[0]);
    parsed.control_type = control_id.substr(seps[0] + 1);
    return parsed;
  }
  // Control names may themselves contain '|' (they are user data), so with
  // more than two separators the field boundaries are ambiguous. The type
  // field, however, is always one of the known UIA control type names and
  // never contains '|': pick the *rightmost* consecutive separator pair whose
  // middle text is a valid type name (rightmost, because a '|' inside the
  // primary id shifts the true pair right, whereas a spurious type-looking
  // token inside the primary would sit to its left). If no pair validates,
  // the '|'s most plausibly belong to the primary id: fall back to the last
  // two separators.
  size_t lo = seps[seps.size() - 2];
  size_t hi = seps[seps.size() - 1];
  for (size_t k = seps.size() - 1; k-- > 0;) {
    const std::string middle = control_id.substr(seps[k] + 1, seps[k + 1] - seps[k] - 1);
    if (uia::ControlTypeFromName(middle).has_value()) {
      lo = seps[k];
      hi = seps[k + 1];
      break;
    }
  }
  parsed.primary_id = control_id.substr(0, lo);
  parsed.control_type = control_id.substr(lo + 1, hi - lo - 1);
  parsed.ancestor_path = control_id.substr(hi + 1);
  return parsed;
}

}  // namespace ripper
