#include "src/ripper/identifier.h"

namespace ripper {
namespace {

std::string Primary(const std::string& automation_id, const std::string& name) {
  if (!automation_id.empty()) {
    return automation_id;
  }
  if (!name.empty()) {
    return name;
  }
  return "[Unnamed]";
}

}  // namespace

std::string SynthesizeControlId(const uia::SnapshotEntry& entry) {
  return Primary(entry.automation_id, entry.name) + "|" +
         std::string(uia::ControlTypeName(entry.type)) + "|" + entry.ancestor_path;
}

std::string SynthesizeControlId(const uia::Element& element) {
  return Primary(element.AutomationId(), element.Name()) + "|" +
         std::string(uia::ControlTypeName(element.Type())) + "|" +
         uia::AncestorPath(element);
}

ParsedControlId ParseControlId(const std::string& control_id) {
  ParsedControlId parsed;
  const size_t first = control_id.find('|');
  if (first == std::string::npos) {
    parsed.primary_id = control_id;
    return parsed;
  }
  parsed.primary_id = control_id.substr(0, first);
  const size_t second = control_id.find('|', first + 1);
  if (second == std::string::npos) {
    parsed.control_type = control_id.substr(first + 1);
    return parsed;
  }
  parsed.control_type = control_id.substr(first + 1, second - first - 1);
  parsed.ancestor_path = control_id.substr(second + 1);
  return parsed;
}

}  // namespace ripper
