// PpointSim: a synthetic presentation editor with Office-scale UI.
//
// Reproduces the structures the paper's PowerPoint case study depends on:
//   - the Format Background pane (Design -> Format Background -> Solid fill
//     -> Fill Color -> palette -> Apply to All): the paper's Task 1 example
//     of a five-step imperative chain vs a single declarative visit call;
//   - a context-dependent "Picture Format" ribbon tab that exists only while
//     an image shape is selected (context-aware exploration, §4.1);
//   - a slide-thumbnail list and a scrollable slide view (Task 2's
//     set_scrollbar_pos example);
//   - a pane-switching "Fill Options"/"Back" pair inside the background pane
//     (navigation-graph cycle).
#ifndef SRC_APPS_PPOINT_SIM_H_
#define SRC_APPS_PPOINT_SIM_H_

#include <set>
#include <string>
#include <vector>

#include "src/apps/office_common.h"
#include "src/gui/application.h"

namespace apps {

struct Shape {
  std::string kind;   // "TextBox", "Rectangle", "Image", ...
  std::string text;
  std::string fill_color = "White";
  std::string font_color = "Black";
  bool bold = false;
  int font_size = 18;
};

struct Slide {
  std::string background_color = "White";
  bool background_solid = false;   // true once "Solid fill" was chosen
  std::string layout = "Title and Content";
  std::string transition = "None";
  std::vector<Shape> shapes;
};

class PpointSim final : public gsim::Application {
 public:
  explicit PpointSim(const OfficeScale& scale = OfficeScale{});

  // ----- model ----------------------------------------------------------------
  std::vector<Slide>& slides() { return slides_; }
  const std::vector<Slide>& slides() const { return slides_; }

  int current_slide() const { return current_slide_; }
  void SetCurrentSlide(int index);

  // Index of the selected shape on the current slide; -1 = none.
  int selected_shape() const { return selected_shape_; }
  void SelectShape(int index);

  double view_scroll_percent() const { return view_scroll_; }
  const std::string& theme() const { return theme_; }
  bool HasEffect(const std::string& effect) const { return effects_.count(effect) > 0; }

  gsim::Control* slide_view_control() const { return slide_view_; }
  gsim::Control* picture_format_tab() const { return picture_tab_item_; }

  // ----- Application overrides -------------------------------------------------
  support::Status ExecuteCommand(gsim::Control& source, const std::string& command) override;
  support::Status OnKeyChord(const std::string& chord) override;
  void OnSelectionChanged(gsim::Control& control) override;
  void OnUiReset() override;
  void OnFactoryReset() override;
  void AppStateDigest(gsim::StateHash& hash) const override;

 private:
  // Seeds the 12-slide sample deck (constructor and factory reset).
  void SeedSlides();
  void BuildUi(const OfficeScale& scale);
  void BuildHomeTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildInsertTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildDesignTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildTransitionsTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildAnimationsTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildPictureFormatTab(gsim::Control& tab_strip, const OfficeScale& scale);
  void BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale);
  void BuildSlideArea();
  void BuildBackgroundPane();
  void BuildDialogs(const OfficeScale& scale);
  void RefreshThumbnails();
  void UpdatePictureTabVisibility();

  support::Status ApplyToSelectedShape(const std::function<void(Shape&)>& fn);
  support::Status ApplyColor(gsim::Control& source);

  std::vector<Slide> slides_;
  int current_slide_ = 0;
  int selected_shape_ = -1;
  double view_scroll_ = 0.0;
  std::string theme_ = "Office Theme";
  std::set<std::string> effects_;

  // Pending state of the Format Background pane.
  std::string pending_bg_color_ = "White";
  bool pending_bg_solid_ = false;

  gsim::Control* shared_palette_ = nullptr;
  gsim::Control* slide_view_ = nullptr;
  SurfaceScroll* view_scroll_pattern_ = nullptr;  // borrowed; owned by slide_view_
  gsim::Control* thumbnail_list_ = nullptr;
  gsim::Control* picture_tab_item_ = nullptr;
  gsim::Control* bg_pane_ = nullptr;
  gsim::Control* bg_basic_pane_ = nullptr;
  gsim::Control* bg_advanced_pane_ = nullptr;
  std::vector<gsim::Control*> shape_ctrls_;  // controls for current slide's shapes
};

}  // namespace apps

#endif  // SRC_APPS_PPOINT_SIM_H_
