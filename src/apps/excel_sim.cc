#include "src/apps/excel_sim.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "src/support/strings.h"

namespace apps {
namespace {

// GridPattern over the ExcelSim cell controls.
class ExcelGridPattern : public uia::GridPattern {
 public:
  explicit ExcelGridPattern(ExcelSim* app) : app_(app) {}
  int RowCount() const override { return ExcelSim::kRows; }
  int ColumnCount() const override { return ExcelSim::kCols; }
  uia::Element* GetItem(int row, int column) const override {
    return app_->CellControl(row, column);
  }

 private:
  ExcelSim* app_;
};

bool IsNumeric(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return false;
  }
  if (out != nullptr) {
    *out = v;
  }
  return true;
}

std::string FormatNumber(double v) {
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return support::Format("%g", v);
}

}  // namespace

ExcelSim::ExcelSim(const OfficeScale& scale) : gsim::Application("ExcelSim") {
  BuildUi(scale);
  SeedData();
  UpdateViewport();
  FinalizeMainWindow();
}

bool ExcelSim::ParseRef(const std::string& ref, int* row, int* col) {
  if (ref.empty()) {
    return false;
  }
  size_t i = 0;
  int c = 0;
  while (i < ref.size() && std::isalpha(static_cast<unsigned char>(ref[i]))) {
    c = c * 26 + (std::toupper(static_cast<unsigned char>(ref[i])) - 'A' + 1);
    ++i;
  }
  if (i == 0 || i >= ref.size()) {
    return false;
  }
  int r = 0;
  for (; i < ref.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(ref[i]))) {
      return false;
    }
    r = r * 10 + (ref[i] - '0');
  }
  if (r < 1 || r > kRows || c < 1 || c > kCols) {
    return false;
  }
  *row = r - 1;
  *col = c - 1;
  return true;
}

std::string ExcelSim::MakeRef(int row, int col) {
  std::string letters;
  int c = col + 1;
  while (c > 0) {
    letters.insert(letters.begin(), static_cast<char>('A' + (c - 1) % 26));
    c = (c - 1) / 26;
  }
  return letters + std::to_string(row + 1);
}

ExcelCell& ExcelSim::cell(int row, int col) { return cells_[{row, col}]; }

const ExcelCell* ExcelSim::find_cell(int row, int col) const {
  auto it = cells_.find({row, col});
  return it == cells_.end() ? nullptr : &it->second;
}

void ExcelSim::SetCellValue(int row, int col, const std::string& value) {
  ExcelCell& c = cell(row, col);
  if (support::StartsWith(value, "=")) {
    c.formula = value;
    c.value = Evaluate(value);
  } else {
    c.formula.clear();
    c.value = value;
  }
  SyncCellControl(row, col);
  ReapplyConditionalRules();
}

void ExcelSim::SetActiveCell(int row, int col) {
  active_row_ = std::clamp(row, 0, kRows - 1);
  active_col_ = std::clamp(col, 0, kCols - 1);
  gsim::Control* cc = CellControl(active_row_, active_col_);
  if (cc != nullptr) {
    SelectControl(*cc, /*additive=*/false);
  }
  if (name_box_ != nullptr) {
    name_box_->set_text_value(MakeRef(active_row_, active_col_));
  }
  if (formula_bar_ != nullptr) {
    const ExcelCell* c = find_cell(active_row_, active_col_);
    formula_bar_->set_text_value(
        c == nullptr ? "" : (c->formula.empty() ? c->value : c->formula));
  }
}

gsim::Control* ExcelSim::CellControl(int row, int col) const {
  if (row < 0 || row >= kRows || col < 0 || col >= kCols) {
    return nullptr;
  }
  return cell_ctrls_[static_cast<size_t>(row)][static_cast<size_t>(col)];
}

bool ExcelSim::SelectionBounds(int* row0, int* col0, int* row1, int* col1) const {
  bool any = false;
  int r0 = kRows, c0 = kCols, r1 = -1, c1 = -1;
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      const gsim::Control* cc = cell_ctrls_[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (cc != nullptr && cc->selected()) {
        any = true;
        r0 = std::min(r0, r);
        c0 = std::min(c0, c);
        r1 = std::max(r1, r);
        c1 = std::max(c1, c);
      }
    }
  }
  if (!any) {
    return false;
  }
  *row0 = r0;
  *col0 = c0;
  *row1 = r1;
  *col1 = c1;
  return true;
}

std::string ExcelSim::Evaluate(const std::string& input) const {
  // "=FUNC(REF:REF)" with FUNC in SUM/AVERAGE/COUNT/MIN/MAX.
  char func[16] = {0};
  char a[16] = {0};
  char b[16] = {0};
  if (std::sscanf(input.c_str(), "=%15[A-Za-z](%15[A-Za-z0-9]:%15[A-Za-z0-9])", func, a, b) !=
      3) {
    return input;  // unsupported expression: display as typed
  }
  int r0, c0, r1, c1;
  if (!ParseRef(a, &r0, &c0) || !ParseRef(b, &r1, &c1)) {
    return "#REF!";
  }
  if (r1 < r0) {
    std::swap(r0, r1);
  }
  if (c1 < c0) {
    std::swap(c0, c1);
  }
  const std::string f = support::ToLower(func);
  double sum = 0.0, mn = 0.0, mx = 0.0;
  int count = 0;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      const ExcelCell* cellp = find_cell(r, c);
      double v = 0.0;
      if (cellp == nullptr || !IsNumeric(cellp->value, &v)) {
        continue;
      }
      if (count == 0) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      sum += v;
      ++count;
    }
  }
  if (f == "sum") {
    return FormatNumber(sum);
  }
  if (f == "average") {
    return count == 0 ? "#DIV/0!" : FormatNumber(sum / count);
  }
  if (f == "count") {
    return FormatNumber(count);
  }
  if (f == "min") {
    return count == 0 ? "0" : FormatNumber(mn);
  }
  if (f == "max") {
    return count == 0 ? "0" : FormatNumber(mx);
  }
  return input;
}

void ExcelSim::SeedData() {
  // A small sales table: headers + 12 rows x 4 cols, plus sparse values.
  const char* headers[] = {"Region", "Q1", "Q2", "Total"};
  for (int c = 0; c < 4; ++c) {
    SetCellValue(0, c, headers[c]);
    cell(0, c).bold = true;
  }
  const char* regions[] = {"North", "South", "East", "West", "Central", "Coast"};
  for (int r = 1; r <= 12; ++r) {
    SetCellValue(r, 0, std::string(regions[(r - 1) % 6]) + " " + std::to_string(1 + (r - 1) / 6));
    SetCellValue(r, 1, std::to_string(40 + (r * 37) % 160));
    SetCellValue(r, 2, std::to_string(55 + (r * 53) % 140));
  }
  SetActiveCell(0, 0);
}

void ExcelSim::BuildUi(const OfficeScale& scale) {
  gsim::Control& root = main_window().root();

  shared_palette_ = RegisterSharedSubtree(BuildColorPalette("color.pick", "more_colors_dialog"));

  gsim::Control* qat = root.NewChild("Quick Access Toolbar", uia::ControlType::kToolBar);
  AddButton(*qat, "Save", "file.save");
  AddButton(*qat, "Undo", "edit.undo");

  gsim::Control* file_menu = AddMenuButton(root, "File", uia::ControlType::kMenuItem);
  AddButton(*file_menu, "New Workbook", "file.new");
  AddButton(*file_menu, "Open", "file.open");
  file_menu->NewChild("Account", uia::ControlType::kButton)
      ->SetClickEffect(gsim::ClickEffect::kExternal);

  gsim::Control* tab_strip = root.NewChild("Ribbon Tabs", uia::ControlType::kTab);
  BuildHomeTab(*AddRibbonTab(*tab_strip, "Home", /*active=*/true), scale);
  BuildInsertTab(*AddRibbonTab(*tab_strip, "Insert", false), scale);
  BuildFormulasTab(*AddRibbonTab(*tab_strip, "Formulas", false), scale);
  BuildDataTab(*AddRibbonTab(*tab_strip, "Data", false), scale);
  BuildBulkTabs(*tab_strip, scale);

  // Formula bar strip: Name Box + formula editor.
  gsim::Control* bar = root.NewChild("Formula Bar Strip", uia::ControlType::kPane);
  name_box_ = bar->NewChild("Name Box", uia::ControlType::kEdit);
  name_box_->SetAutomationId("name_box");
  name_box_->SetHelpText(
      "Cell reference box. Type a reference like C7 and press ENTER to jump; "
      "input does not commit until ENTER.");
  formula_bar_ = bar->NewChild("Formula Bar", uia::ControlType::kEdit);
  formula_bar_->SetAutomationId("formula_bar");
  formula_bar_->SetHelpText(
      "Edit the active cell's contents. Press ENTER to commit the value.");

  BuildGridArea();
  BuildDialogs(scale);

  // Sheet tabs + status bar.
  gsim::Control* sheets = root.NewChild("Sheet Tabs", uia::ControlType::kTab);
  for (int i = 1; i <= 3; ++i) {
    gsim::Control* t = sheets->NewChild("Sheet" + std::to_string(i), uia::ControlType::kTabItem);
    t->SetClickEffect(gsim::ClickEffect::kSelect);
    if (i == 1) {
      t->set_selected(true);
    }
  }
  AddButton(*sheets, "New Sheet", "sheet.add");
  gsim::Control* status = root.NewChild("Status Bar", uia::ControlType::kStatusBar);
  status->NewChild("Ready", uia::ControlType::kText);
  status->NewChild("Sum: 0", uia::ControlType::kText);
}

void ExcelSim::BuildHomeTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* clipboard = AddGroup(panel, "Clipboard");
  AddButton(*clipboard, "Paste", "edit.paste");
  AddButton(*clipboard, "Cut", "edit.cut");
  AddButton(*clipboard, "Copy", "edit.copy");

  gsim::Control* font = AddGroup(panel, "Font");
  gsim::Control* font_combo = AddMenuButton(*font, "Font Family", uia::ControlType::kComboBox);
  const int font_count = scale.Scaled(220);
  for (int i = 0; i < font_count; ++i) {
    font_combo->NewChild("Sheet Font " + std::to_string(i + 1), uia::ControlType::kListItem)
        ->SetCommand("fmt.font_family");
  }
  AddToggle(*font, "Bold", "fmt.bold");
  AddToggle(*font, "Italic", "fmt.italic");
  AddToggle(*font, "Underline", "fmt.underline");
  gsim::Control* borders = AddMenuButton(*font, "Cell Borders", uia::ControlType::kSplitButton);
  AddGalleryItems(*borders, "Border Kind", 13, "fmt.border");
  AddSharedPaletteButton(*font, "Fill Color", shared_palette_);
  AddSharedPaletteButton(*font, "Font Color", shared_palette_);

  gsim::Control* align = AddGroup(panel, "Alignment");
  AddButton(*align, "Top Align", "fmt.valign_top");
  AddButton(*align, "Middle Align", "fmt.valign_middle");
  AddButton(*align, "Bottom Align", "fmt.valign_bottom");
  AddButton(*align, "Align Text Left", "fmt.halign_left");
  AddButton(*align, "Center Text", "fmt.halign_center");
  AddButton(*align, "Align Text Right", "fmt.halign_right");
  AddToggle(*align, "Wrap Text", "fmt.wrap");
  gsim::Control* merge = AddMenuButton(*align, "Merge and Center", uia::ControlType::kSplitButton);
  AddButton(*merge, "Merge Center", "fmt.merge_center");
  AddButton(*merge, "Merge Across", "fmt.merge_across");
  AddButton(*merge, "Merge Cells", "fmt.merge");
  AddButton(*merge, "Unmerge Cells", "fmt.unmerge");

  gsim::Control* number = AddGroup(panel, "Number");
  gsim::Control* numfmt = AddMenuButton(*number, "Number Format", uia::ControlType::kComboBox);
  static const char* kFormats[] = {"General",    "Number",   "Currency", "Accounting",
                                   "Short Date", "Long Date", "Time",     "Percentage",
                                   "Fraction",   "Scientific", "Text"};
  for (const char* f : kFormats) {
    numfmt->NewChild(f, uia::ControlType::kListItem)->SetCommand("fmt.number_format");
  }
  AddButton(*number, "Increase Decimal", "fmt.decimal_inc");
  AddButton(*number, "Decrease Decimal", "fmt.decimal_dec");

  gsim::Control* styles = AddGroup(panel, "Styles");
  gsim::Control* cf = AddMenuButton(*styles, "Conditional Formatting",
                                    uia::ControlType::kMenuItem);
  gsim::Control* hcr = AddMenuButton(*cf, "Highlight Cells Rules", uia::ControlType::kMenuItem);
  for (const char* kind : {"Greater Than...", "Less Than...", "Between...", "Equal To...",
                           "Text that Contains...", "Duplicate Values..."}) {
    std::string id = std::string("cf_dialog_") + kind;
    AddDialogLauncher(*hcr, kind, id);
  }
  gsim::Control* tbr = AddMenuButton(*cf, "Top Bottom Rules", uia::ControlType::kMenuItem);
  for (const char* kind : {"Top 10 Items...", "Top 10 Percent...", "Bottom 10 Items...",
                           "Above Average...", "Below Average..."}) {
    AddButton(*tbr, kind, "cf.quick_rule");
  }
  gsim::Control* dbars = AddMenuButton(*cf, "Data Bars", uia::ControlType::kMenuItem);
  AddGalleryItems(*dbars, "Data Bar Style", scale.Scaled(24), "cf.data_bars");
  gsim::Control* cscales = AddMenuButton(*cf, "Color Scales", uia::ControlType::kMenuItem);
  AddGalleryItems(*cscales, "Color Scale", scale.Scaled(24), "cf.color_scale");
  gsim::Control* isets = AddMenuButton(*cf, "Icon Sets", uia::ControlType::kMenuItem);
  AddGalleryItems(*isets, "Icon Set", scale.Scaled(40), "cf.icon_set");
  AddDialogLauncher(*cf, "New Rule...", "cf_new_rule_dialog");
  gsim::Control* clear_rules = AddMenuButton(*cf, "Clear Rules", uia::ControlType::kMenuItem);
  AddButton(*clear_rules, "Clear Rules from Selected Cells", "cf.clear_selected");
  AddButton(*clear_rules, "Clear Rules from Entire Sheet", "cf.clear_all");
  gsim::Control* fmt_table = AddMenuButton(*styles, "Format as Table", uia::ControlType::kMenuItem);
  AddGalleryItems(*fmt_table, "Table Style", scale.Scaled(120), "fmt.as_table");
  gsim::Control* cell_styles = AddMenuButton(*styles, "Cell Styles", uia::ControlType::kMenuItem);
  AddGalleryItems(*cell_styles, "Cell Style", scale.Scaled(100), "fmt.cell_style");

  gsim::Control* cells_grp = AddGroup(panel, "Cells");
  gsim::Control* ins = AddMenuButton(*cells_grp, "Insert Cells", uia::ControlType::kMenuItem);
  AddButton(*ins, "Insert Sheet Rows", "cells.insert_rows");
  AddButton(*ins, "Insert Sheet Columns", "cells.insert_cols");
  gsim::Control* del = AddMenuButton(*cells_grp, "Delete Cells", uia::ControlType::kMenuItem);
  AddButton(*del, "Delete Sheet Rows", "cells.delete_rows");
  AddButton(*del, "Delete Sheet Columns", "cells.delete_cols");
  gsim::Control* fmt_menu = AddMenuButton(*cells_grp, "Format", uia::ControlType::kMenuItem);
  AddButton(*fmt_menu, "Row Height", "cells.row_height");
  AddButton(*fmt_menu, "Column Width", "cells.col_width");
  AddButton(*fmt_menu, "Hide Rows", "cells.hide_rows");
  AddButton(*fmt_menu, "Rename Sheet", "sheet.rename");

  gsim::Control* editing = AddGroup(panel, "Editing");
  gsim::Control* autosum = AddMenuButton(*editing, "AutoSum", uia::ControlType::kSplitButton);
  for (const char* f : {"Sum", "Average", "Count Numbers", "Max", "Min"}) {
    AddButton(*autosum, f, "formula.autosum");
  }
  gsim::Control* fill = AddMenuButton(*editing, "Fill", uia::ControlType::kMenuItem);
  AddGalleryItems(*fill, "Fill Direction", 6, "edit.fill");
  gsim::Control* clear = AddMenuButton(*editing, "Clear", uia::ControlType::kMenuItem);
  AddButton(*clear, "Clear All", "edit.clear_all");
  AddButton(*clear, "Clear Formats", "edit.clear_formats");
  AddButton(*clear, "Clear Contents", "edit.clear_contents");
  gsim::Control* sort = AddMenuButton(*editing, "Sort and Filter", uia::ControlType::kMenuItem);
  AddButton(*sort, "Sort A to Z", "data.sort_asc");
  AddButton(*sort, "Sort Z to A", "data.sort_desc");
  AddDialogLauncher(*sort, "Custom Sort...", "sort_dialog");
  AddToggle(*sort, "Filter", "data.filter");
  gsim::Control* find_sel = AddMenuButton(*editing, "Find and Select", uia::ControlType::kMenuItem);
  AddButton(*find_sel, "Find...", "edit.find");
  AddButton(*find_sel, "Replace...", "edit.replace");
  AddButton(*find_sel, "Go To...", "edit.goto");
}

void ExcelSim::BuildFormulasTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* lib = AddGroup(panel, "Function Library");
  static const char* kCategories[] = {"Financial",      "Logical",  "Text Functions",
                                      "Date and Time",  "Lookup",   "Math and Trig",
                                      "Statistical",    "Engineering"};
  for (const char* cat : kCategories) {
    gsim::Control* menu = AddMenuButton(*lib, cat, uia::ControlType::kMenuItem);
    AddGalleryItems(*menu, std::string(cat) + " Function", scale.Scaled(90), "formula.insert");
  }
  gsim::Control* names = AddGroup(panel, "Defined Names");
  AddDialogLauncher(*names, "Name Manager", "name_manager_dialog");
  AddButton(*names, "Define Name", "names.define");
  gsim::Control* audit = AddGroup(panel, "Formula Auditing");
  AddButton(*audit, "Trace Precedents", "audit.precedents");
  AddButton(*audit, "Trace Dependents", "audit.dependents");
  AddButton(*audit, "Show Formulas", "audit.show_formulas");
  AddButton(*audit, "Evaluate Formula", "audit.evaluate");
}

void ExcelSim::BuildInsertTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* tables = AddGroup(panel, "Tables");
  AddDialogLauncher(*tables, "PivotTable", "pivot_dialog");
  AddButton(*tables, "Table", "insert.table");
  gsim::Control* charts = AddGroup(panel, "Charts");
  static const char* kChartKinds[] = {"Column Chart", "Line Chart", "Pie Chart",
                                      "Bar Chart",    "Area Chart", "Scatter Chart",
                                      "Map Chart",    "Stock Chart", "Radar Chart",
                                      "Combo Chart"};
  for (const char* kind : kChartKinds) {
    gsim::Control* menu = AddMenuButton(*charts, kind, uia::ControlType::kMenuItem);
    AddGalleryItems(*menu, std::string(kind) + " Subtype", scale.Scaled(20), "chart.insert");
  }
  gsim::Control* spark = AddGroup(panel, "Sparklines");
  AddDialogLauncher(*spark, "Line Sparkline", "sparkline_dialog");
  AddDialogLauncher(*spark, "Column Sparkline", "sparkline_dialog");
  gsim::Control* text_grp = AddGroup(panel, "Text");
  gsim::Control* header = AddMenuButton(*text_grp, "Header and Footer", uia::ControlType::kMenuItem);
  AddGalleryItems(*header, "Header Layout", scale.Scaled(40), "insert.header");
  AddButton(*text_grp, "Text Box", "insert.textbox");
}

void ExcelSim::BuildDataTab(gsim::Control& panel, const OfficeScale& scale) {
  (void)scale;
  gsim::Control* get_data = AddGroup(panel, "Get and Transform");
  gsim::Control* from = AddMenuButton(*get_data, "Get Data", uia::ControlType::kMenuItem);
  AddGalleryItems(*from, "Data Source", scale.Scaled(40), "data.import");
  AddButton(*get_data, "Refresh All", "data.refresh");
  gsim::Control* sort_grp = AddGroup(panel, "Sort and Filter");
  AddButton(*sort_grp, "Sort Ascending", "data.sort_asc");
  AddButton(*sort_grp, "Sort Descending", "data.sort_desc");
  AddDialogLauncher(*sort_grp, "Sort", "sort_dialog");
  AddToggle(*sort_grp, "Filter Toggle", "data.filter");
  gsim::Control* tools = AddGroup(panel, "Data Tools");
  AddDialogLauncher(*tools, "Text to Columns", "text_columns_dialog");
  AddDialogLauncher(*tools, "Remove Duplicates", "remove_dup_dialog");
  AddDialogLauncher(*tools, "Data Validation", "validation_dialog");
  gsim::Control* outline = AddGroup(panel, "Outline");
  AddButton(*outline, "Group Rows", "outline.group");
  AddButton(*outline, "Ungroup Rows", "outline.ungroup");
  AddButton(*outline, "Subtotal", "outline.subtotal");
}

void ExcelSim::BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale) {
  for (const char* tab_name : {"Page Layout", "Review", "View"}) {
    gsim::Control* panel = AddRibbonTab(tab_strip, tab_name, false);
    for (int g = 1; g <= 4; ++g) {
      gsim::Control* group =
          AddGroup(*panel, std::string(tab_name) + " Group " + std::to_string(g));
      gsim::Control* menu = AddMenuButton(*group, std::string(tab_name) + " Menu " +
                                          std::to_string(g), uia::ControlType::kMenuItem);
      AddGalleryItems(*menu, std::string(tab_name) + " Choice " + std::to_string(g),
                      scale.Scaled(40), "bulk.apply");
      AddButton(*group, std::string(tab_name) + " Action " + std::to_string(g), "bulk.action");
    }
  }
}

void ExcelSim::BuildGridArea() {
  gsim::Control& root = main_window().root();
  grid_ = root.NewChild("Sheet Grid", uia::ControlType::kDataGrid);
  grid_->SetHelpText("The worksheet cell grid");
  grid_->AttachPattern(std::make_unique<ExcelGridPattern>(this));
  auto grid_scroll = std::make_unique<SurfaceScroll>(
      /*horizontal=*/true, /*vertical=*/true, [this](double h, double v) {
        h_scroll_ = h;
        v_scroll_ = v;
        UpdateViewport();
      });
  grid_scroll_ = grid_scroll.get();
  grid_->AttachPattern(std::move(grid_scroll));
  cell_ctrls_.resize(kRows);
  row_panes_.resize(kRows);
  for (int r = 0; r < kRows; ++r) {
    gsim::Control* row_pane =
        grid_->NewChild("Row " + std::to_string(r + 1), uia::ControlType::kPane);
    row_panes_[static_cast<size_t>(r)] = row_pane;
    cell_ctrls_[static_cast<size_t>(r)].resize(kCols);
    for (int c = 0; c < kCols; ++c) {
      gsim::Control* cc = row_pane->NewChild(MakeRef(r, c), uia::ControlType::kDataItem);
      cc->SetAutomationId(MakeRef(r, c));
      cc->SetClickEffect(gsim::ClickEffect::kSelect);
      cell_ctrls_[static_cast<size_t>(r)][static_cast<size_t>(c)] = cc;
    }
  }
  gsim::Control* vbar = root.NewChild("Vertical Scroll Bar", uia::ControlType::kScrollBar);
  vbar->NewChild("Vertical Thumb", uia::ControlType::kThumb);
  gsim::Control* hbar = root.NewChild("Horizontal Scroll Bar", uia::ControlType::kScrollBar);
  hbar->NewChild("Horizontal Thumb", uia::ControlType::kThumb);
}

void ExcelSim::BuildDialogs(const OfficeScale& scale) {
  // Conditional-formatting dialogs share a shape: a value edit, a format
  // preset combo, and OK applying the rule to the selection.
  for (const char* kind : {"Greater Than...", "Less Than...", "Between...", "Equal To...",
                           "Text that Contains...", "Duplicate Values..."}) {
    std::string kind_str(kind);
    std::string bare = kind_str.substr(0, kind_str.size() - 3);  // strip "..."
    std::string compact = support::ReplaceAll(bare, " ", "");
    auto dialog = MakeDialog(bare, "cf.apply:" + compact);
    gsim::Control& r = dialog->root();
    gsim::Control* v = r.NewChild("Format cells that are " + bare, uia::ControlType::kEdit);
    v->SetAutomationId("cf_value");
    if (bare == "Between") {
      r.NewChild("and", uia::ControlType::kEdit)->SetAutomationId("cf_value2");
    }
    gsim::Control* with = AddMenuButton(r, "with format", uia::ControlType::kComboBox);
    for (const char* preset : {"Light Red Fill", "Yellow Fill", "Green Fill",
                               "Red Text Format", "Red Border Format"}) {
      with->NewChild(preset, uia::ControlType::kListItem)->SetCommand("cf.format_choice");
    }
    RegisterDialog("cf_dialog_" + kind_str, std::move(dialog));
  }

  for (const auto& [id, title, ok_cmd] :
       std::vector<std::tuple<std::string, std::string, std::string>>{
           {"cf_new_rule_dialog", "New Formatting Rule", "cf.apply:Custom"},
           {"sort_dialog", "Sort", "data.sort_custom"},
           {"name_manager_dialog", "Name Manager", ""},
           {"pivot_dialog", "Create PivotTable", "insert.pivot"},
           {"sparkline_dialog", "Create Sparklines", "insert.sparkline"},
           {"text_columns_dialog", "Convert Text to Columns", "data.text_to_columns"},
           {"remove_dup_dialog", "Remove Duplicates", "data.remove_duplicates"},
           {"validation_dialog", "Data Validation", "data.validation"},
           {"more_colors_dialog", "Colors", ""},
       }) {
    auto dialog = MakeDialog(title, ok_cmd);
    gsim::Control& r = dialog->root();
    if (id == "more_colors_dialog") {
      gsim::Control* honeycomb = r.NewChild("Custom Color Grid", uia::ControlType::kList);
      for (int i = 0; i < scale.Scaled(216); ++i) {
        honeycomb->NewChild("Custom Color " + std::to_string(i), uia::ControlType::kListItem)
            ->SetCommand("color.pick");
      }
    } else {
      for (int i = 1; i <= 6; ++i) {
        gsim::Control* opt =
            r.NewChild(title + " Option " + std::to_string(i), uia::ControlType::kCheckBox);
        opt->SetClickEffect(gsim::ClickEffect::kToggle);
      }
      r.NewChild(title + " Value", uia::ControlType::kEdit);
    }
    RegisterDialog(id, std::move(dialog));
  }
}

void ExcelSim::UpdateViewport() {
  const int top = static_cast<int>(v_scroll_ / 100.0 * (kRows - kViewRows) + 0.5);
  const int left = static_cast<int>(h_scroll_ / 100.0 * (kCols - kViewCols) + 0.5);
  for (int r = 0; r < kRows; ++r) {
    const bool row_visible = r >= top && r < top + kViewRows;
    row_panes_[static_cast<size_t>(r)]->SetForcedOffscreen(!row_visible);
    for (int c = 0; c < kCols; ++c) {
      const bool col_visible = c >= left && c < left + kViewCols;
      cell_ctrls_[static_cast<size_t>(r)][static_cast<size_t>(c)]->SetForcedOffscreen(
          !row_visible || !col_visible);
    }
  }
}

void ExcelSim::SyncCellControl(int row, int col) {
  gsim::Control* cc = CellControl(row, col);
  if (cc == nullptr) {
    return;
  }
  const ExcelCell* c = find_cell(row, col);
  cc->set_text_value(c == nullptr ? "" : c->value);
}

void ExcelSim::ReapplyConditionalRules() {
  for (auto& [key, c] : cells_) {
    c.cf_highlighted = false;
  }
  for (const CfRule& rule : cf_rules_) {
    for (int r = rule.row0; r <= rule.row1; ++r) {
      for (int c = rule.col0; c <= rule.col1; ++c) {
        // Note: the rule applies to every cell in the region, including
        // blanks — blank cells compare as 0 (the §5.6 gotcha).
        ExcelCell& cellv = cell(r, c);
        double v = 0.0;
        IsNumeric(cellv.value, &v);
        bool hit = false;
        if (rule.kind == "GreaterThan") {
          hit = v > rule.threshold;
        } else if (rule.kind == "LessThan") {
          hit = v < rule.threshold;
        } else if (rule.kind == "Between") {
          hit = v >= rule.threshold && v <= rule.threshold2;
        } else if (rule.kind == "EqualTo") {
          hit = v == rule.threshold;
        } else if (rule.kind == "TextthatContains") {
          hit = !cf_pending_value_.empty() &&
                cellv.value.find(cf_pending_value_) != std::string::npos;
        } else {
          hit = !cellv.value.empty();
        }
        if (hit) {
          cellv.cf_highlighted = true;
        }
      }
    }
  }
}

support::Status ExcelSim::ApplySelectedCells(const std::function<void(ExcelCell&)>& fn) {
  int r0, c0, r1, c1;
  if (!SelectionBounds(&r0, &c0, &r1, &c1)) {
    return support::FailedPreconditionError("no cells are selected");
  }
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      fn(cell(r, c));
    }
  }
  return support::Status::Ok();
}

support::Status ExcelSim::ApplyConditionalRule(const std::string& kind) {
  int r0, c0, r1, c1;
  if (!SelectionBounds(&r0, &c0, &r1, &c1)) {
    return support::FailedPreconditionError(
        "select a cell range before applying a conditional rule");
  }
  CfRule rule;
  rule.kind = kind;
  rule.threshold = std::atof(cf_pending_value_.c_str());
  rule.threshold2 = std::atof(cf_pending_value2_.c_str());
  rule.format = cf_pending_format_;
  rule.row0 = r0;
  rule.col0 = c0;
  rule.row1 = r1;
  rule.col1 = c1;
  cf_rules_.push_back(rule);
  ReapplyConditionalRules();
  return support::Status::Ok();
}

support::Status ExcelSim::ExecuteCommand(gsim::Control& source, const std::string& command) {
  const std::string name = source.TrueName();

  if (command == "color.pick") {
    const std::vector<std::string> chain = OpenAncestorNames(source);
    const bool fill = std::find(chain.begin(), chain.end(), "Fill Color") != chain.end();
    return ApplySelectedCells([&](ExcelCell& c) {
      if (fill) {
        c.fill_color = name;
      } else {
        c.font_color = name;
      }
    });
  }
  if (command == "fmt.bold") {
    return ApplySelectedCells([&](ExcelCell& c) { c.bold = source.toggled(); });
  }
  if (command == "fmt.italic") {
    return ApplySelectedCells([&](ExcelCell& c) { c.italic = source.toggled(); });
  }
  if (command == "fmt.number_format") {
    return ApplySelectedCells([&](ExcelCell& c) { c.number_format = name; });
  }
  if (support::StartsWith(command, "cf.apply:")) {
    return ApplyConditionalRule(command.substr(std::string("cf.apply:").size()));
  }
  if (command == "cf.format_choice") {
    cf_pending_format_ = name;
    return support::Status::Ok();
  }
  if (command == "cf.clear_all") {
    cf_rules_.clear();
    ReapplyConditionalRules();
    return support::Status::Ok();
  }
  if (command == "data.sort_asc" || command == "data.sort_desc") {
    // Sorts the used data rows (1..N) by the active cell's column.
    const bool asc = command == "data.sort_asc";
    int last_row = 0;
    for (const auto& [key, c] : cells_) {
      if (!c.value.empty()) {
        last_row = std::max(last_row, key.first);
      }
    }
    std::vector<std::vector<ExcelCell>> rows;
    for (int r = 1; r <= last_row; ++r) {
      std::vector<ExcelCell> row;
      for (int c = 0; c < kCols; ++c) {
        const ExcelCell* p = find_cell(r, c);
        row.push_back(p == nullptr ? ExcelCell{} : *p);
      }
      rows.push_back(std::move(row));
    }
    const int key_col = active_col_;
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<ExcelCell>& a, const std::vector<ExcelCell>& b) {
                       double va = 0.0, vb = 0.0;
                       const bool na = IsNumeric(a[static_cast<size_t>(key_col)].value, &va);
                       const bool nb = IsNumeric(b[static_cast<size_t>(key_col)].value, &vb);
                       if (na && nb) {
                         return asc ? va < vb : va > vb;
                       }
                       return asc ? a[static_cast<size_t>(key_col)].value <
                                        b[static_cast<size_t>(key_col)].value
                                  : a[static_cast<size_t>(key_col)].value >
                                        b[static_cast<size_t>(key_col)].value;
                     });
    for (int r = 1; r <= last_row; ++r) {
      for (int c = 0; c < kCols; ++c) {
        cells_[{r, c}] = rows[static_cast<size_t>(r - 1)][static_cast<size_t>(c)];
        SyncCellControl(r, c);
      }
    }
    sorted_ascending_ = asc;
    return support::Status::Ok();
  }
  if (command == "data.filter") {
    filter_enabled_ = source.toggled();
    return support::Status::Ok();
  }
  if (command == "formula.autosum") {
    // Sums the contiguous numeric run above the active cell.
    int r = active_row_ - 1;
    while (r >= 0) {
      const ExcelCell* p = find_cell(r, active_col_);
      if (p == nullptr || !IsNumeric(p->value, nullptr)) {
        break;
      }
      --r;
    }
    const int first = r + 1;
    if (first >= active_row_) {
      return support::FailedPreconditionError("no numeric run above the active cell to sum");
    }
    SetCellValue(active_row_, active_col_,
                 "=SUM(" + MakeRef(first, active_col_) + ":" +
                     MakeRef(active_row_ - 1, active_col_) + ")");
    return support::Status::Ok();
  }

  effects_.insert(command + ":" + name);
  return support::Status::Ok();
}

support::Status ExcelSim::OnKeyChord(const std::string& chord) {
  if (chord != "ENTER") {
    return support::Status::Ok();
  }
  gsim::Control* f = focused();
  if (f == nullptr) {
    return support::Status::Ok();
  }
  if (f == name_box_) {
    int r, c;
    if (!ParseRef(support::Trim(f->text_value()), &r, &c)) {
      return support::InvalidArgumentError("Name Box does not contain a valid cell reference");
    }
    SetActiveCell(r, c);
    // Jumping scrolls the viewport to show the target cell.
    auto* scroll = uia::PatternCast<uia::ScrollPattern>(*grid_);
    if (scroll != nullptr && (r < static_cast<int>(v_scroll_ / 100.0 * (kRows - kViewRows)) ||
                              r >= static_cast<int>(v_scroll_ / 100.0 * (kRows - kViewRows)) +
                                       kViewRows)) {
      const double pct = 100.0 * r / (kRows - kViewRows);
      scroll->SetScrollPercent(uia::ScrollPattern::kNoScroll, std::clamp(pct, 0.0, 100.0));
    }
    return support::Status::Ok();
  }
  if (f == formula_bar_) {
    SetCellValue(active_row_, active_col_, f->text_value());
    return support::Status::Ok();
  }
  if (f->Type() == uia::ControlType::kDataItem) {
    // Typing directly into a cell then pressing ENTER.
    int r, c;
    if (ParseRef(f->AutomationId(), &r, &c)) {
      SetCellValue(r, c, f->text_value());
    }
    return support::Status::Ok();
  }
  return support::Status::Ok();
}

void ExcelSim::OnValueChanged(gsim::Control& control) {
  if (control.AutomationId() == "cf_value") {
    cf_pending_value_ = control.text_value();
  } else if (control.AutomationId() == "cf_value2") {
    cf_pending_value2_ = control.text_value();
  }
  // Name Box and Formula Bar deliberately do NOT commit here: they commit on
  // ENTER only (see OnKeyChord) — the instruction-description lesson of §5.7.
}

void ExcelSim::OnSelectionChanged(gsim::Control& control) {
  if (control.Type() == uia::ControlType::kDataItem && control.selected()) {
    int r, c;
    if (ParseRef(control.AutomationId(), &r, &c)) {
      active_row_ = r;
      active_col_ = c;
      if (name_box_ != nullptr) {
        name_box_->set_text_value(MakeRef(r, c));
      }
      if (formula_bar_ != nullptr) {
        const ExcelCell* cellp = find_cell(r, c);
        formula_bar_->set_text_value(
            cellp == nullptr ? "" : (cellp->formula.empty() ? cellp->value : cellp->formula));
      }
    }
  }
}

void ExcelSim::OnFactoryReset() {
  cells_.clear();
  cf_rules_.clear();
  sorted_ascending_ = false;
  filter_enabled_ = false;
  effects_.clear();
  cf_pending_value_.clear();
  cf_pending_value2_.clear();
  cf_pending_format_ = "Light Red Fill";
  if (grid_scroll_ != nullptr) {
    grid_scroll_->ResetPosition();  // zeroes h_/v_scroll_ and re-derives the viewport
  } else {
    h_scroll_ = 0.0;
    v_scroll_ = 0.0;
  }
  // Same order as the constructor: seed the sales table, then lay out.
  SeedData();
  UpdateViewport();
}

void ExcelSim::AppStateDigest(gsim::StateHash& hash) const {
  hash.MixU64(cells_.size());
  for (const auto& [key, c] : cells_) {
    hash.MixU64(static_cast<uint64_t>(key.first));
    hash.MixU64(static_cast<uint64_t>(key.second));
    hash.Mix(c.value);
    hash.Mix(c.formula);
    hash.MixBool(c.bold);
    hash.MixBool(c.italic);
    hash.Mix(c.fill_color);
    hash.Mix(c.font_color);
    hash.Mix(c.number_format);
    hash.MixBool(c.cf_highlighted);
  }
  hash.MixU64(static_cast<uint64_t>(active_row_));
  hash.MixU64(static_cast<uint64_t>(active_col_));
  hash.MixU64(cf_rules_.size());
  for (const CfRule& r : cf_rules_) {
    hash.Mix(r.kind);
    hash.MixDouble(r.threshold);
    hash.MixDouble(r.threshold2);
    hash.Mix(r.format);
    hash.MixU64(static_cast<uint64_t>(r.row0));
    hash.MixU64(static_cast<uint64_t>(r.col0));
    hash.MixU64(static_cast<uint64_t>(r.row1));
    hash.MixU64(static_cast<uint64_t>(r.col1));
  }
  hash.MixBool(sorted_ascending_);
  hash.MixBool(filter_enabled_);
  hash.MixU64(effects_.size());
  for (const std::string& e : effects_) {
    hash.Mix(e);
  }
  hash.MixDouble(v_scroll_);
  hash.MixDouble(h_scroll_);
  hash.Mix(cf_pending_value_);
  hash.Mix(cf_pending_value2_);
  hash.Mix(cf_pending_format_);
}

}  // namespace apps
