#include "src/apps/ppoint_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "src/support/strings.h"

namespace apps {
namespace {

constexpr int kSlideCount = 12;

}  // namespace

PpointSim::PpointSim(const OfficeScale& scale) : gsim::Application("PpointSim") {
  SeedSlides();
  BuildUi(scale);
  RefreshThumbnails();
  FinalizeMainWindow();
}

void PpointSim::SeedSlides() {
  // Twelve slides; slide 3 carries an image (the context that reveals the
  // Picture Format tab), slide 5 a chart placeholder.
  slides_.clear();
  for (int i = 0; i < kSlideCount; ++i) {
    Slide s;
    s.shapes.push_back(Shape{"Title", "Slide " + std::to_string(i + 1) + " Title"});
    s.shapes.push_back(Shape{"TextBox", "Body text for slide " + std::to_string(i + 1)});
    if (i == 2) {
      s.shapes.push_back(Shape{"Image", "Quarterly chart screenshot"});
    }
    if (i == 4) {
      s.shapes.push_back(Shape{"Chart", "Revenue by region"});
    }
    slides_.push_back(std::move(s));
  }
}

void PpointSim::SetCurrentSlide(int index) {
  current_slide_ = std::clamp(index, 0, static_cast<int>(slides_.size()) - 1);
  selected_shape_ = -1;
  RefreshThumbnails();
  UpdatePictureTabVisibility();
}

void PpointSim::SelectShape(int index) {
  selected_shape_ = index;
  UpdatePictureTabVisibility();
}

void PpointSim::BuildUi(const OfficeScale& scale) {
  gsim::Control& root = main_window().root();

  shared_palette_ = RegisterSharedSubtree(BuildColorPalette("color.pick", "more_colors_dialog"));

  gsim::Control* qat = root.NewChild("Quick Access Toolbar", uia::ControlType::kToolBar);
  AddButton(*qat, "Save", "file.save");
  AddButton(*qat, "Undo", "edit.undo");
  AddButton(*qat, "Start Slideshow", "show.start");

  gsim::Control* file_menu = AddMenuButton(root, "File", uia::ControlType::kMenuItem);
  AddButton(*file_menu, "New Presentation", "file.new");
  AddButton(*file_menu, "Open", "file.open");
  file_menu->NewChild("Account", uia::ControlType::kButton)
      ->SetClickEffect(gsim::ClickEffect::kExternal);

  gsim::Control* tab_strip = root.NewChild("Ribbon Tabs", uia::ControlType::kTab);
  BuildHomeTab(*AddRibbonTab(*tab_strip, "Home", /*active=*/true), scale);
  BuildInsertTab(*AddRibbonTab(*tab_strip, "Insert", false), scale);
  BuildDesignTab(*AddRibbonTab(*tab_strip, "Design", false), scale);
  BuildTransitionsTab(*AddRibbonTab(*tab_strip, "Transitions", false), scale);
  BuildAnimationsTab(*AddRibbonTab(*tab_strip, "Animations", false), scale);
  BuildBulkTabs(*tab_strip, scale);
  BuildPictureFormatTab(*tab_strip, scale);

  BuildSlideArea();
  BuildDialogs(scale);

  gsim::Control* status = root.NewChild("Status Bar", uia::ControlType::kStatusBar);
  status->NewChild("Slide 1 of 12", uia::ControlType::kText);
  AddButton(*status, "Notes", "view.notes");
  AddButton(*status, "Slideshow View", "view.slideshow");
}

void PpointSim::BuildHomeTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* slides_grp = AddGroup(panel, "Slides");
  gsim::Control* new_slide = AddMenuButton(*slides_grp, "New Slide", uia::ControlType::kSplitButton);
  AddGalleryItems(*new_slide, "New Slide Layout", scale.Scaled(30), "slide.new");
  gsim::Control* layout = AddMenuButton(*slides_grp, "Layout", uia::ControlType::kMenuItem);
  AddGalleryItems(*layout, "Layout Preset", scale.Scaled(30), "layout.apply");
  AddButton(*slides_grp, "Reset Slide", "slide.reset");
  gsim::Control* reuse = AddMenuButton(*slides_grp, "Reuse Slides", uia::ControlType::kMenuItem);
  AddGalleryItems(*reuse, "Library Slide", scale.Scaled(260), "slide.reuse");

  gsim::Control* font = AddGroup(panel, "Font");
  gsim::Control* font_combo = AddMenuButton(*font, "Font Family", uia::ControlType::kComboBox);
  for (int i = 0; i < scale.Scaled(220); ++i) {
    font_combo->NewChild("Deck Font " + std::to_string(i + 1), uia::ControlType::kListItem)
        ->SetCommand("font.set_family");
  }
  gsim::Control* size_combo = AddMenuButton(*font, "Font Size", uia::ControlType::kComboBox);
  for (int s = 8; s <= 96; s += 2) {
    size_combo->NewChild(std::to_string(s), uia::ControlType::kListItem)
        ->SetCommand("font.set_size");
  }
  AddToggle(*font, "Bold", "font.bold");
  AddToggle(*font, "Italic", "font.italic");
  AddToggle(*font, "Underline", "font.underline");
  AddToggle(*font, "Text Shadow", "font.shadow");
  AddSharedPaletteButton(*font, "Font Color", shared_palette_);

  gsim::Control* para = AddGroup(panel, "Paragraph");
  AddButton(*para, "Bullets", "para.bullets");
  AddButton(*para, "Numbering", "para.numbering");
  AddButton(*para, "Align Left", "para.align:Left");
  AddButton(*para, "Center", "para.align:Center");
  AddButton(*para, "Align Right", "para.align:Right");
  gsim::Control* dir = AddMenuButton(*para, "Text Direction", uia::ControlType::kMenuItem);
  AddGalleryItems(*dir, "Direction", 5, "para.direction");

  gsim::Control* drawing = AddGroup(panel, "Drawing");
  gsim::Control* shapes = AddMenuButton(*drawing, "Shapes", uia::ControlType::kMenuItem);
  AddGalleryItems(*shapes, "Shape", scale.Scaled(260), "shape.insert");
  gsim::Control* arrange = AddMenuButton(*drawing, "Arrange", uia::ControlType::kMenuItem);
  AddGalleryItems(*arrange, "Arrange Action", 12, "shape.arrange");
  gsim::Control* quick = AddMenuButton(*drawing, "Quick Styles", uia::ControlType::kMenuItem);
  AddGalleryItems(*quick, "Quick Style", scale.Scaled(150), "shape.quick_style");
  AddSharedPaletteButton(*drawing, "Shape Fill", shared_palette_);
  AddSharedPaletteButton(*drawing, "Shape Outline", shared_palette_);

  gsim::Control* editing = AddGroup(panel, "Editing");
  AddButton(*editing, "Find", "edit.find");
  AddButton(*editing, "Replace", "edit.replace");
  gsim::Control* select = AddMenuButton(*editing, "Select", uia::ControlType::kMenuItem);
  AddButton(*select, "Select All", "edit.select_all");
  AddButton(*select, "Selection Pane", "view.selection_pane");
}

void PpointSim::BuildInsertTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* slides_grp = AddGroup(panel, "Slides Insert");
  AddButton(*slides_grp, "New Slide Insert", "slide.new");
  gsim::Control* tables = AddGroup(panel, "Tables");
  gsim::Control* table_menu = AddMenuButton(*tables, "Table", uia::ControlType::kMenuItem);
  for (int r = 1; r <= 8; ++r) {
    for (int c = 1; c <= 10; ++c) {
      table_menu
          ->NewChild("Table " + std::to_string(r) + " x " + std::to_string(c),
                     uia::ControlType::kListItem)
          ->SetCommand("table.insert_grid");
    }
  }
  gsim::Control* images = AddGroup(panel, "Images");
  AddButton(*images, "Pictures", "pic.insert");
  AddButton(*images, "Screenshot", "pic.screenshot");
  gsim::Control* album = AddMenuButton(*images, "Photo Album", uia::ControlType::kMenuItem);
  AddGalleryItems(*album, "Album Layout", 8, "pic.album");
  gsim::Control* illus = AddGroup(panel, "Illustrations");
  gsim::Control* shapes = AddMenuButton(*illus, "Insert Shapes", uia::ControlType::kMenuItem);
  AddGalleryItems(*shapes, "Insertable Shape", scale.Scaled(260), "shape.insert");
  gsim::Control* icons = AddMenuButton(*illus, "Icons", uia::ControlType::kMenuItem);
  AddGalleryItems(*icons, "Icon", scale.Scaled(220), "shape.icon");
  AddDialogLauncher(*illus, "SmartArt", "smartart_dialog");
  AddDialogLauncher(*illus, "Chart", "chart_dialog");
  gsim::Control* media = AddGroup(panel, "Media");
  gsim::Control* video = AddMenuButton(*media, "Video", uia::ControlType::kMenuItem);
  AddGalleryItems(*video, "Video Source", scale.Scaled(60), "media.video");
  gsim::Control* audio = AddMenuButton(*media, "Audio", uia::ControlType::kMenuItem);
  AddGalleryItems(*audio, "Audio Source", scale.Scaled(20), "media.audio");
  gsim::Control* text_grp = AddGroup(panel, "Text Insert");
  AddButton(*text_grp, "Text Box", "shape.textbox");
  AddDialogLauncher(*text_grp, "Header and Footer", "header_footer_dialog");
  gsim::Control* wordart = AddMenuButton(*text_grp, "WordArt", uia::ControlType::kMenuItem);
  AddGalleryItems(*wordart, "WordArt Style", scale.Scaled(30), "shape.wordart");
  gsim::Control* symbols = AddGroup(panel, "Symbols Insert");
  AddDialogLauncher(*symbols, "Symbol", "symbol_dialog");
  gsim::Control* equation = AddMenuButton(*symbols, "Equation", uia::ControlType::kSplitButton);
  AddGalleryItems(*equation, "Equation Template", scale.Scaled(20), "shape.equation");
}

void PpointSim::BuildDesignTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* themes_grp = AddGroup(panel, "Themes");
  gsim::Control* themes = AddMenuButton(*themes_grp, "Themes Gallery", uia::ControlType::kMenuItem);
  AddGalleryItems(*themes, "Theme", scale.Scaled(170), "theme.apply");
  gsim::Control* variants = AddMenuButton(*themes_grp, "Variants", uia::ControlType::kMenuItem);
  AddGalleryItems(*variants, "Variant", scale.Scaled(40), "theme.variant");

  gsim::Control* customize = AddGroup(panel, "Customize");
  gsim::Control* size_menu = AddMenuButton(*customize, "Slide Size", uia::ControlType::kMenuItem);
  AddButton(*size_menu, "Standard (4:3)", "slide.size");
  AddButton(*size_menu, "Widescreen (16:9)", "slide.size");
  AddDialogLauncher(*size_menu, "Custom Slide Size...", "slide_size_dialog");

  // The Format Background task pane: persistent, with nested palette access
  // and a pane-switching cycle.
  gsim::Control* fmt_bg = customize->NewChild("Format Background", uia::ControlType::kButton);
  fmt_bg->SetPopupPersistent(true);
  bg_pane_ = fmt_bg->SetPopup(
      std::make_unique<gsim::Control>("Format Background Pane", uia::ControlType::kPane));
  BuildBackgroundPane();

  gsim::Control* ideas = AddGroup(panel, "Designer");
  gsim::Control* design_ideas = AddMenuButton(*ideas, "Design Ideas", uia::ControlType::kMenuItem);
  AddGalleryItems(*design_ideas, "Design Idea", scale.Scaled(320), "theme.design_idea");
}

void PpointSim::BuildBackgroundPane() {
  gsim::Control& pane = *bg_pane_;
  bg_basic_pane_ = pane.NewChild("Fill Options Basic", uia::ControlType::kGroup);
  for (const char* fill : {"Solid fill", "Gradient fill", "Picture or texture fill",
                           "Pattern fill"}) {
    gsim::Control* rb = bg_basic_pane_->NewChild(fill, uia::ControlType::kRadioButton);
    rb->SetCommand("bg.fill_kind");
  }
  AddSharedPaletteButton(*bg_basic_pane_, "Fill Color", shared_palette_);
  AddButton(*bg_basic_pane_, "More Fill Options", "pane.show:bg_advanced");
  bg_advanced_pane_ = pane.NewChild("Fill Options Advanced", uia::ControlType::kGroup);
  bg_advanced_pane_->SetForcedOffscreen(true);
  bg_advanced_pane_->NewChild("Transparency", uia::ControlType::kSlider)
      ->SetCommand("bg.transparency");
  bg_advanced_pane_->NewChild("Offset X", uia::ControlType::kSpinner);
  bg_advanced_pane_->NewChild("Offset Y", uia::ControlType::kSpinner);
  AddButton(*bg_advanced_pane_, "Back to Fill Options", "pane.show:bg_basic");
  AddButton(pane, "Apply to All", "bg.apply_all")
      ->SetHelpText("Applies the current background to every slide");
  AddButton(pane, "Reset Background", "bg.reset");
  gsim::Control* close = pane.NewChild("Close Pane", uia::ControlType::kButton);
  close->SetClickEffect(gsim::ClickEffect::kClosePane);
}

void PpointSim::BuildTransitionsTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* preview = AddGroup(panel, "Preview");
  AddButton(*preview, "Preview Transition", "transition.preview");
  gsim::Control* gallery_grp = AddGroup(panel, "Transition to This Slide");
  gsim::Control* gallery = AddMenuButton(*gallery_grp, "Transition Gallery",
                                         uia::ControlType::kMenuItem);
  AddGalleryItems(*gallery, "Transition", scale.Scaled(170), "transition.apply");
  gsim::Control* options = AddMenuButton(*gallery_grp, "Effect Options",
                                         uia::ControlType::kMenuItem);
  AddGalleryItems(*options, "Effect Option", scale.Scaled(20), "transition.option");
  gsim::Control* timing = AddGroup(panel, "Timing");
  timing->NewChild("Duration", uia::ControlType::kSpinner)->SetCommand("transition.duration");
  AddToggle(*timing, "On Mouse Click", "transition.on_click");
  AddButton(*timing, "Apply To All Slides", "transition.apply_all");
}

void PpointSim::BuildAnimationsTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* gallery_grp = AddGroup(panel, "Animation");
  gsim::Control* gallery = AddMenuButton(*gallery_grp, "Animation Gallery",
                                         uia::ControlType::kMenuItem);
  AddGalleryItems(*gallery, "Animation", scale.Scaled(260), "anim.apply");
  gsim::Control* adv = AddGroup(panel, "Advanced Animation");
  AddButton(*adv, "Add Animation", "anim.add");
  AddButton(*adv, "Animation Pane", "view.animation_pane");
  gsim::Control* trigger = AddMenuButton(*adv, "Trigger", uia::ControlType::kMenuItem);
  AddGalleryItems(*trigger, "Trigger Source", 10, "anim.trigger");
  gsim::Control* timing = AddGroup(panel, "Animation Timing");
  timing->NewChild("Animation Duration", uia::ControlType::kSpinner);
  timing->NewChild("Animation Delay", uia::ControlType::kSpinner);
}

void PpointSim::BuildPictureFormatTab(gsim::Control& tab_strip, const OfficeScale& scale) {
  gsim::Control* panel = AddRibbonTab(tab_strip, "Picture Format", false);
  picture_tab_item_ = panel->parent_control();
  picture_tab_item_->SetHelpText("Contextual tab: visible while an image is selected");
  picture_tab_item_->SetForcedOffscreen(true);  // no image selected initially

  gsim::Control* adjust = AddGroup(*panel, "Adjust");
  gsim::Control* corrections = AddMenuButton(*adjust, "Corrections", uia::ControlType::kMenuItem);
  AddGalleryItems(*corrections, "Correction Preset", scale.Scaled(60), "pic.correction");
  gsim::Control* color = AddMenuButton(*adjust, "Picture Color", uia::ControlType::kMenuItem);
  AddGalleryItems(*color, "Color Preset", scale.Scaled(60), "pic.color");
  gsim::Control* artistic = AddMenuButton(*adjust, "Artistic Effects", uia::ControlType::kMenuItem);
  AddGalleryItems(*artistic, "Artistic Effect", scale.Scaled(40), "pic.artistic");
  AddButton(*adjust, "Compress Pictures", "pic.compress");
  AddButton(*adjust, "Reset Picture", "pic.reset");

  gsim::Control* styles = AddGroup(*panel, "Picture Styles");
  gsim::Control* style_gallery = AddMenuButton(*styles, "Picture Style Gallery",
                                               uia::ControlType::kMenuItem);
  AddGalleryItems(*style_gallery, "Picture Style", scale.Scaled(60), "pic.style");
  AddSharedPaletteButton(*styles, "Picture Border", shared_palette_);
  gsim::Control* pic_effects = AddMenuButton(*styles, "Picture Effects",
                                             uia::ControlType::kMenuItem);
  AddGalleryItems(*pic_effects, "Picture Effect", scale.Scaled(40), "pic.effect");

  gsim::Control* size_grp = AddGroup(*panel, "Picture Size");
  gsim::Control* crop = AddMenuButton(*size_grp, "Crop", uia::ControlType::kSplitButton);
  AddGalleryItems(*crop, "Crop Mode", 8, "pic.crop");
  size_grp->NewChild("Picture Width", uia::ControlType::kSpinner);
  size_grp->NewChild("Picture Height", uia::ControlType::kSpinner);
}

void PpointSim::BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale) {
  for (const char* tab_name : {"Slide Show", "Review", "View"}) {
    gsim::Control* panel = AddRibbonTab(tab_strip, tab_name, false);
    for (int g = 1; g <= 4; ++g) {
      gsim::Control* group =
          AddGroup(*panel, std::string(tab_name) + " Group " + std::to_string(g));
      gsim::Control* menu = AddMenuButton(*group, std::string(tab_name) + " Menu " +
                                          std::to_string(g), uia::ControlType::kMenuItem);
      AddGalleryItems(*menu, std::string(tab_name) + " Choice " + std::to_string(g),
                      scale.Scaled(18), "bulk.apply");
      AddButton(*group, std::string(tab_name) + " Action " + std::to_string(g), "bulk.action");
    }
  }
}

void PpointSim::BuildSlideArea() {
  gsim::Control& root = main_window().root();

  thumbnail_list_ = root.NewChild("Slide Thumbnails", uia::ControlType::kList);
  for (int i = 0; i < kSlideCount; ++i) {
    gsim::Control* thumb = thumbnail_list_->NewChild("Slide " + std::to_string(i + 1),
                                                     uia::ControlType::kListItem);
    thumb->SetAutomationId("thumb_" + std::to_string(i));
    thumb->SetClickEffect(gsim::ClickEffect::kSelect);
  }

  slide_view_ = root.NewChild("Slide View", uia::ControlType::kPane);
  slide_view_->SetHelpText("The slide editing canvas");
  auto view_scroll = std::make_unique<SurfaceScroll>(
      /*horizontal=*/false, /*vertical=*/true,
      [this](double, double v) { view_scroll_ = v; });
  view_scroll_pattern_ = view_scroll.get();
  slide_view_->AttachPattern(std::move(view_scroll));
  // One canvas per slide; only the current slide's canvas is on-screen.
  for (int i = 0; i < kSlideCount; ++i) {
    gsim::Control* canvas = slide_view_->NewChild(
        "Slide " + std::to_string(i + 1) + " Canvas", uia::ControlType::kPane);
    canvas->SetForcedOffscreen(i != 0);
    const Slide& s = slides_[static_cast<size_t>(i)];
    for (size_t j = 0; j < s.shapes.size(); ++j) {
      const Shape& shape = s.shapes[j];
      uia::ControlType type = shape.kind == "Image" ? uia::ControlType::kImage
                                                    : uia::ControlType::kText;
      gsim::Control* sc = canvas->NewChild(shape.kind + ": " + shape.text, type);
      sc->SetAutomationId("shape_" + std::to_string(i) + "_" + std::to_string(j));
      sc->SetClickEffect(gsim::ClickEffect::kSelect);
    }
  }

  gsim::Control* vbar = root.NewChild("Vertical Scroll Bar", uia::ControlType::kScrollBar);
  vbar->NewChild("Scroll Thumb", uia::ControlType::kThumb);
}

void PpointSim::BuildDialogs(const OfficeScale& scale) {
  {
    auto dialog = MakeDialog("Symbol", "");
    gsim::Control* grid = dialog->root().NewChild("Symbol Grid", uia::ControlType::kList);
    for (int i = 0; i < scale.Scaled(380); ++i) {
      grid->NewChild("Symbol U+" + std::to_string(0x2500 + i), uia::ControlType::kListItem)
          ->SetCommand("shape.symbol");
    }
    RegisterDialog("symbol_dialog", std::move(dialog));
  }
  {
    auto dialog = MakeDialog("Colors", "");
    gsim::Control* honeycomb =
        dialog->root().NewChild("Custom Color Grid", uia::ControlType::kList);
    for (int i = 0; i < scale.Scaled(216); ++i) {
      honeycomb->NewChild("Custom Color " + std::to_string(i), uia::ControlType::kListItem)
          ->SetCommand("color.pick");
    }
    RegisterDialog("more_colors_dialog", std::move(dialog));
  }
  for (const auto& [id, title, ok_cmd] :
       std::vector<std::tuple<std::string, std::string, std::string>>{
           {"slide_size_dialog", "Slide Size", "slide.size_custom"},
           {"header_footer_dialog", "Header and Footer", "slide.header_footer"},
           {"smartart_dialog", "Choose a SmartArt Graphic", "shape.smartart"},
           {"chart_dialog", "Insert Chart", "shape.chart"},
       }) {
    auto dialog = MakeDialog(title, ok_cmd);
    gsim::Control& r = dialog->root();
    for (int i = 1; i <= 6; ++i) {
      gsim::Control* opt =
          r.NewChild(title + " Option " + std::to_string(i), uia::ControlType::kCheckBox);
      opt->SetClickEffect(gsim::ClickEffect::kToggle);
    }
    r.NewChild(title + " Value", uia::ControlType::kEdit);
    RegisterDialog(id, std::move(dialog));
  }
}

void PpointSim::RefreshThumbnails() {
  if (thumbnail_list_ == nullptr || slide_view_ == nullptr) {
    return;
  }
  int idx = 0;
  for (gsim::Control* thumb : thumbnail_list_->StaticChildren()) {
    thumb->set_selected(idx == current_slide_);
    ++idx;
  }
  idx = 0;
  for (gsim::Control* canvas : slide_view_->StaticChildren()) {
    canvas->SetForcedOffscreen(idx != current_slide_);
    ++idx;
  }
}

void PpointSim::UpdatePictureTabVisibility() {
  if (picture_tab_item_ == nullptr) {
    return;
  }
  bool image_selected = false;
  if (selected_shape_ >= 0 && current_slide_ < static_cast<int>(slides_.size())) {
    const Slide& s = slides_[static_cast<size_t>(current_slide_)];
    if (selected_shape_ < static_cast<int>(s.shapes.size())) {
      image_selected = s.shapes[static_cast<size_t>(selected_shape_)].kind == "Image";
    }
  }
  picture_tab_item_->SetForcedOffscreen(!image_selected);
  if (!image_selected && picture_tab_item_->popup_open()) {
    picture_tab_item_->SetPopupOpen(false);
  }
}

support::Status PpointSim::ApplyToSelectedShape(const std::function<void(Shape&)>& fn) {
  if (selected_shape_ < 0) {
    return support::FailedPreconditionError("no shape is selected on the current slide");
  }
  Slide& s = slides_[static_cast<size_t>(current_slide_)];
  if (selected_shape_ >= static_cast<int>(s.shapes.size())) {
    return support::InternalError("selected shape index out of range");
  }
  fn(s.shapes[static_cast<size_t>(selected_shape_)]);
  return support::Status::Ok();
}

support::Status PpointSim::ApplyColor(gsim::Control& source) {
  const std::string color = source.TrueName();
  const std::vector<std::string> chain = OpenAncestorNames(source);
  auto chain_has = [&](const std::string& name) {
    return std::find(chain.begin(), chain.end(), name) != chain.end();
  };
  if (chain_has("Fill Color") && chain_has("Format Background Pane")) {
    pending_bg_color_ = color;
    Slide& s = slides_[static_cast<size_t>(current_slide_)];
    s.background_color = color;
    s.background_solid = pending_bg_solid_ || s.background_solid;
    return support::Status::Ok();
  }
  if (chain_has("Shape Fill")) {
    return ApplyToSelectedShape([&](Shape& sh) { sh.fill_color = color; });
  }
  if (chain_has("Shape Outline") || chain_has("Picture Border")) {
    effects_.insert("shape.outline_color:" + color);
    return support::Status::Ok();
  }
  return ApplyToSelectedShape([&](Shape& sh) { sh.font_color = color; });
}

support::Status PpointSim::ExecuteCommand(gsim::Control& source, const std::string& command) {
  const std::string name = source.TrueName();

  if (command == "color.pick") {
    return ApplyColor(source);
  }
  if (command == "bg.fill_kind") {
    pending_bg_solid_ = (name == "Solid fill");
    if (pending_bg_solid_) {
      slides_[static_cast<size_t>(current_slide_)].background_solid = true;
    }
    return support::Status::Ok();
  }
  if (command == "bg.apply_all") {
    const Slide& cur = slides_[static_cast<size_t>(current_slide_)];
    for (Slide& s : slides_) {
      s.background_color = cur.background_color;
      s.background_solid = cur.background_solid;
    }
    return support::Status::Ok();
  }
  if (command == "bg.reset") {
    Slide& s = slides_[static_cast<size_t>(current_slide_)];
    s.background_color = "White";
    s.background_solid = false;
    return support::Status::Ok();
  }
  if (support::StartsWith(command, "pane.show:")) {
    const std::string pane = command.substr(std::string("pane.show:").size());
    if (bg_basic_pane_ != nullptr && bg_advanced_pane_ != nullptr) {
      bg_basic_pane_->SetForcedOffscreen(pane != "bg_basic");
      bg_advanced_pane_->SetForcedOffscreen(pane != "bg_advanced");
    }
    return support::Status::Ok();
  }
  if (command == "theme.apply") {
    theme_ = name;
    return support::Status::Ok();
  }
  if (command == "layout.apply") {
    slides_[static_cast<size_t>(current_slide_)].layout = name;
    return support::Status::Ok();
  }
  if (command == "transition.apply") {
    slides_[static_cast<size_t>(current_slide_)].transition = name;
    return support::Status::Ok();
  }
  if (command == "transition.apply_all") {
    const std::string t = slides_[static_cast<size_t>(current_slide_)].transition;
    for (Slide& s : slides_) {
      s.transition = t;
    }
    return support::Status::Ok();
  }
  if (command == "slide.new") {
    Slide s;
    s.layout = name;
    slides_.push_back(std::move(s));
    effects_.insert(command + ":" + name);
    return support::Status::Ok();
  }
  if (command == "shape.insert") {
    slides_[static_cast<size_t>(current_slide_)].shapes.push_back(Shape{"Shape", name});
    effects_.insert(command + ":" + name);
    return support::Status::Ok();
  }
  if (command == "shape.textbox") {
    slides_[static_cast<size_t>(current_slide_)].shapes.push_back(Shape{"TextBox", ""});
    return support::Status::Ok();
  }
  if (command == "pic.insert") {
    slides_[static_cast<size_t>(current_slide_)].shapes.push_back(
        Shape{"Image", "Inserted picture"});
    effects_.insert("pic.insert:" + name);
    return support::Status::Ok();
  }
  if (command == "font.bold") {
    return ApplyToSelectedShape([&](Shape& sh) { sh.bold = source.toggled(); });
  }
  if (command == "font.set_size") {
    const int size = std::atoi(name.c_str());
    return ApplyToSelectedShape([&](Shape& sh) { sh.font_size = size; });
  }
  if (support::StartsWith(command, "pic.")) {
    // Picture Format commands require an image selection (enforced by tab
    // visibility, but commands double-check).
    if (selected_shape_ < 0) {
      return support::FailedPreconditionError("no picture is selected");
    }
    effects_.insert(command + ":" + name);
    return support::Status::Ok();
  }

  effects_.insert(command + ":" + name);
  return support::Status::Ok();
}

support::Status PpointSim::OnKeyChord(const std::string& chord) {
  (void)chord;
  return support::Status::Ok();
}

void PpointSim::OnSelectionChanged(gsim::Control& control) {
  if (!control.selected()) {
    if (support::StartsWith(control.AutomationId(), "shape_")) {
      selected_shape_ = -1;
      UpdatePictureTabVisibility();
    }
    return;
  }
  const std::string& aid = control.AutomationId();
  if (support::StartsWith(aid, "thumb_")) {
    SetCurrentSlide(std::atoi(aid.c_str() + 6));
    return;
  }
  if (support::StartsWith(aid, "shape_")) {
    int slide = 0;
    int shape = 0;
    if (std::sscanf(aid.c_str(), "shape_%d_%d", &slide, &shape) == 2 &&
        slide == current_slide_) {
      SelectShape(shape);
    }
  }
}

void PpointSim::OnUiReset() {
  if (bg_basic_pane_ != nullptr && bg_advanced_pane_ != nullptr) {
    bg_basic_pane_->SetForcedOffscreen(false);
    bg_advanced_pane_->SetForcedOffscreen(true);
  }
}

void PpointSim::OnFactoryReset() {
  SeedSlides();
  current_slide_ = 0;
  selected_shape_ = -1;
  theme_ = "Office Theme";
  effects_.clear();
  pending_bg_color_ = "White";
  pending_bg_solid_ = false;
  if (view_scroll_pattern_ != nullptr) {
    view_scroll_pattern_->ResetPosition();  // zeroes view_scroll_ via the hook
  } else {
    view_scroll_ = 0.0;
  }
  // Same derived-state passes as the constructor path.
  RefreshThumbnails();
  UpdatePictureTabVisibility();
  OnUiReset();  // default background-pane visibility
}

void PpointSim::AppStateDigest(gsim::StateHash& hash) const {
  hash.MixU64(slides_.size());
  for (const Slide& s : slides_) {
    hash.Mix(s.background_color);
    hash.MixBool(s.background_solid);
    hash.Mix(s.layout);
    hash.Mix(s.transition);
    hash.MixU64(s.shapes.size());
    for (const Shape& sh : s.shapes) {
      hash.Mix(sh.kind);
      hash.Mix(sh.text);
      hash.Mix(sh.fill_color);
      hash.Mix(sh.font_color);
      hash.MixBool(sh.bold);
      hash.MixU64(static_cast<uint64_t>(sh.font_size));
    }
  }
  hash.MixU64(static_cast<uint64_t>(current_slide_));
  hash.MixU64(static_cast<uint64_t>(selected_shape_));
  hash.MixDouble(view_scroll_);
  hash.Mix(theme_);
  hash.MixU64(effects_.size());
  for (const std::string& e : effects_) {
    hash.Mix(e);
  }
  hash.Mix(pending_bg_color_);
  hash.MixBool(pending_bg_solid_);
}

}  // namespace apps
