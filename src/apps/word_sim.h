// WordSim: a synthetic word processor with Office-scale UI.
//
// Reproduces the structures the paper's Word case study depends on:
//   - a ribbon with 8 tabs, nested menus and galleries (>4K controls total);
//   - the path-dependent color picker: Font Color, Underline Color and Text
//     Outline all open the SAME shared palette subtree (merge node), and the
//     picked cell's meaning is resolved from the access path;
//   - a Find & Replace dialog whose Subscript option applies to the whole
//     "Find what" field, not the document selection (the §5.6 gotcha);
//   - a scrollable document implementing TextPattern (lines/paragraphs) and
//     ScrollPattern (declarative scroll).
#ifndef SRC_APPS_WORD_SIM_H_
#define SRC_APPS_WORD_SIM_H_

#include <set>
#include <string>
#include <vector>

#include "src/apps/office_common.h"
#include "src/gui/application.h"

namespace apps {

struct CharFormat {
  bool bold = false;
  bool italic = false;
  bool underline = false;
  bool strikethrough = false;
  bool subscript = false;
  bool superscript = false;
  std::string color = "Black";
  std::string underline_color = "Black";
  std::string outline_color = "None";
  std::string highlight = "None";
  std::string font = "Calibri";
  int size = 11;
};

struct WordParagraph {
  std::string text;
  CharFormat fmt;
  std::string alignment = "Left";
  double line_spacing = 1.0;
  std::string style = "Normal";
};

class WordSim final : public gsim::Application {
 public:
  explicit WordSim(const OfficeScale& scale = OfficeScale{});

  // ----- document model -------------------------------------------------------
  std::vector<WordParagraph>& paragraphs() { return paragraphs_; }
  const std::vector<WordParagraph>& paragraphs() const { return paragraphs_; }

  // Selection is a paragraph range [start, end], inclusive; (-1,-1) = none.
  void SetSelection(int start, int end);
  int selection_start() const { return sel_start_; }
  int selection_end() const { return sel_end_; }

  double scroll_percent() const { return scroll_percent_; }

  const std::string& page_color() const { return page_color_; }
  const std::string& page_orientation() const { return page_orientation_; }
  int table_rows() const { return table_rows_; }
  int table_cols() const { return table_cols_; }

  // Generic effects applied through bulk galleries ("theme.apply:Theme 12").
  bool HasEffect(const std::string& effect) const { return effects_.count(effect) > 0; }
  const std::set<std::string>& effects() const { return effects_; }

  // Find & Replace state.
  const std::string& find_text() const { return find_text_; }
  const std::string& replace_text() const { return replace_text_; }
  int replace_count() const { return replace_count_; }

  // ----- key controls (borrowed) ----------------------------------------------
  gsim::Control* document_control() const { return document_; }

  // ----- Application overrides -------------------------------------------------
  support::Status ExecuteCommand(gsim::Control& source, const std::string& command) override;
  support::Status OnKeyChord(const std::string& chord) override;
  void OnValueChanged(gsim::Control& control) override;
  void OnUiReset() override;
  void OnFactoryReset() override;
  void AppStateDigest(gsim::StateHash& hash) const override;

 private:
  // Seeds the 50-paragraph sample document (constructor and factory reset).
  void SeedDocument();
  void BuildUi(const OfficeScale& scale);
  void BuildHomeTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildInsertTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildDesignTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildLayoutTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale);
  void BuildDialogs(const OfficeScale& scale);
  void BuildDocumentArea();

  // Applies `fn` to every selected paragraph; errors if nothing is selected.
  support::Status ApplyToSelection(const std::function<void(WordParagraph&)>& fn);

  // Resolves which color property a palette click sets, from the open
  // ancestor chain of the clicked cell.
  support::Status ApplyColor(gsim::Control& source);

  // Reads the pending row/col values typed into the Insert Table dialog.
  int table_rows_pending_();
  int table_cols_pending_();

  std::vector<WordParagraph> paragraphs_;
  int sel_start_ = -1;
  int sel_end_ = -1;
  double scroll_percent_ = 0.0;
  std::string page_color_ = "None";
  std::string page_orientation_ = "Portrait";
  int table_rows_ = 0;
  int table_cols_ = 0;
  std::set<std::string> effects_;

  std::string find_text_;
  std::string replace_text_;
  bool fr_subscript_ = false;  // the Find&Replace subscript option
  bool fr_match_case_ = false;
  int replace_count_ = 0;

  gsim::Control* shared_palette_ = nullptr;
  gsim::Control* document_ = nullptr;
  gsim::Control* find_next_button_ = nullptr;
  SurfaceScroll* doc_scroll_ = nullptr;
};

}  // namespace apps

#endif  // SRC_APPS_WORD_SIM_H_
