#include "src/apps/office_common.h"

#include <algorithm>

#include "src/support/strings.h"

namespace apps {

const std::vector<std::string>& StandardColors() {
  static const std::vector<std::string> kColors = [] {
    std::vector<std::string> colors;
    // Theme color columns with five shades each (6 x 10 grid), then the ten
    // standard colors. 70 cells, matching Office's palette footprint.
    const std::vector<std::string> themes = {"White", "Black", "Gray",   "Blue",  "Orange",
                                             "Green", "Gold",  "Purple", "Teal",  "Red"};
    for (const auto& base : themes) {
      colors.push_back(base);
      for (int shade = 1; shade <= 5; ++shade) {
        colors.push_back(base + ", Shade " + std::to_string(shade));
      }
    }
    const std::vector<std::string> standard = {
        "Dark Red",  "Standard Red",  "Standard Orange", "Yellow",        "Light Green",
        "Sea Green", "Light Blue",    "Standard Blue",   "Dark Blue",     "Standard Purple"};
    colors.insert(colors.end(), standard.begin(), standard.end());
    return colors;
  }();
  return kColors;
}

std::unique_ptr<gsim::Control> MakeMenuRoot(const std::string& name) {
  auto root = std::make_unique<gsim::Control>(name, uia::ControlType::kMenu);
  return root;
}

gsim::Control* AddRibbonTab(gsim::Control& tab_strip, const std::string& name, bool active) {
  gsim::Control* item = tab_strip.NewChild(name, uia::ControlType::kTabItem);
  item->SetClickEffect(gsim::ClickEffect::kSwitchTab);
  item->SetHelpText(name + " ribbon tab");
  auto panel = std::make_unique<gsim::Control>(name + " Ribbon", uia::ControlType::kPane);
  gsim::Control* panel_raw = item->SetPopup(std::move(panel));
  // SetPopup defaults the effect to kRevealPopup; tabs switch exclusively.
  item->SetClickEffect(gsim::ClickEffect::kSwitchTab);
  if (active) {
    item->set_selected(true);
    item->SetPopupOpen(true);
  }
  return panel_raw;
}

gsim::Control* AddGroup(gsim::Control& panel, const std::string& name) {
  gsim::Control* group = panel.NewChild(name, uia::ControlType::kGroup);
  group->SetHelpText(name + " group");
  return group;
}

gsim::Control* AddButton(gsim::Control& parent, const std::string& name,
                         const std::string& command) {
  gsim::Control* b = parent.NewChild(name, uia::ControlType::kButton);
  b->SetCommand(command);
  return b;
}

gsim::Control* AddToggle(gsim::Control& parent, const std::string& name,
                         const std::string& command) {
  gsim::Control* b = parent.NewChild(name, uia::ControlType::kButton);
  b->SetCommand(command);
  b->SetClickEffect(gsim::ClickEffect::kToggle);
  return b;
}

gsim::Control* AddMenuButton(gsim::Control& parent, const std::string& name,
                             uia::ControlType type) {
  gsim::Control* host = parent.NewChild(name, type);
  return host->SetPopup(MakeMenuRoot(name + " Menu"));
}

gsim::Control* AddSharedPaletteButton(gsim::Control& parent, const std::string& name,
                                      gsim::Control* shared_palette) {
  gsim::Control* host = parent.NewChild(name, uia::ControlType::kSplitButton);
  host->SetSharedPopup(shared_palette);
  host->SetHelpText(name + ": opens the color palette");
  return host;
}

void AddGalleryItems(gsim::Control& popup, const std::string& prefix, int count,
                     const std::string& command) {
  for (int i = 1; i <= count; ++i) {
    gsim::Control* item =
        popup.NewChild(prefix + " " + std::to_string(i), uia::ControlType::kListItem);
    item->SetCommand(command);
  }
}

gsim::Control* AddDialogLauncher(gsim::Control& parent, const std::string& name,
                                 const std::string& dialog_id) {
  gsim::Control* b = parent.NewChild(name, uia::ControlType::kButton);
  b->SetDialogId(dialog_id);
  b->SetHelpText("Opens the " + name + " dialog");
  return b;
}

std::unique_ptr<gsim::Control> BuildColorPalette(const std::string& command,
                                                 const std::string& more_dialog_id) {
  auto palette = std::make_unique<gsim::Control>("Color Palette", uia::ControlType::kList);
  for (const auto& color : StandardColors()) {
    gsim::Control* cell = palette->NewChild(color, uia::ControlType::kListItem);
    cell->SetCommand(command);
    cell->SetHelpText("Color cell " + color);
  }
  if (!more_dialog_id.empty()) {
    AddDialogLauncher(*palette, "More Colors...", more_dialog_id);
  }
  return palette;
}

std::unique_ptr<gsim::Window> MakeDialog(const std::string& title,
                                         const std::string& ok_command) {
  auto dialog = std::make_unique<gsim::Window>(title, /*modal=*/true);
  gsim::Control& root = dialog->root();
  gsim::Control* ok = root.NewChild("OK", uia::ControlType::kButton);
  ok->SetCloseDisposition(gsim::CloseDisposition::kCommit);
  if (!ok_command.empty()) {
    ok->SetCommand(ok_command);
    ok->SetClickEffect(gsim::ClickEffect::kCloseWindow);
  }
  gsim::Control* cancel = root.NewChild("Cancel", uia::ControlType::kButton);
  cancel->SetCloseDisposition(gsim::CloseDisposition::kCancel);
  return dialog;
}

support::Status SurfaceScroll::SetScrollPercent(double horizontal, double vertical) {
  if (horizontal != kNoScroll) {
    if (!horizontal_) {
      return support::FailedPreconditionError("surface is not horizontally scrollable");
    }
    h_ = std::clamp(horizontal, 0.0, 100.0);
  }
  if (vertical != kNoScroll) {
    if (!vertical_) {
      return support::FailedPreconditionError("surface is not vertically scrollable");
    }
    v_ = std::clamp(vertical, 0.0, 100.0);
  }
  if (on_change_) {
    on_change_(h_, v_);
  }
  return support::Status::Ok();
}

support::Status SurfaceScroll::ScrollIncrement(double horizontal_delta, double vertical_delta) {
  if (horizontal_delta != 0.0 && !horizontal_) {
    return support::FailedPreconditionError("surface is not horizontally scrollable");
  }
  if (vertical_delta != 0.0 && !vertical_) {
    return support::FailedPreconditionError("surface is not vertically scrollable");
  }
  h_ = std::clamp(h_ + horizontal_delta, 0.0, 100.0);
  v_ = std::clamp(v_ + vertical_delta, 0.0, 100.0);
  if (on_change_) {
    on_change_(h_, v_);
  }
  return support::Status::Ok();
}

}  // namespace apps
