// ExcelSim: a synthetic spreadsheet with Office-scale UI.
//
// Reproduces the structures the paper's Excel case study depends on:
//   - a large cell grid exposed as DataItem controls (the passive get_texts
//     payload source), with a scroll-dependent viewport;
//   - the Name Box whose input only commits on ENTER (the §5.7 "rich control
//     descriptions" lesson);
//   - conditional-formatting rules that apply to ALL cells of the selected
//     region, including blanks (the §5.6 policy-failure gotcha);
//   - a small formula evaluator (SUM/AVERAGE/COUNT/MIN/MAX) so data tasks
//     have verifiable semantics.
#ifndef SRC_APPS_EXCEL_SIM_H_
#define SRC_APPS_EXCEL_SIM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/apps/office_common.h"
#include "src/gui/application.h"

namespace apps {

struct ExcelCell {
  std::string value;            // displayed value (result for formulas)
  std::string formula;          // original "=..." text, empty if literal
  bool bold = false;
  bool italic = false;
  std::string fill_color = "None";
  std::string font_color = "Black";
  std::string number_format = "General";
  bool cf_highlighted = false;  // set when a conditional rule matched
};

struct CfRule {
  std::string kind;       // "GreaterThan", "LessThan", "Between", "DuplicateValues", ...
  double threshold = 0.0;
  double threshold2 = 0.0;
  std::string format = "Light Red Fill";
  // Applied region (inclusive bounding box of the selection at apply time).
  int row0 = 0, col0 = 0, row1 = 0, col1 = 0;
};

class ExcelSim final : public gsim::Application {
 public:
  static constexpr int kRows = 150;      // logical rows
  static constexpr int kCols = 16;       // logical columns (A..P)
  static constexpr int kViewRows = 24;   // rows visible at once
  static constexpr int kViewCols = 10;   // columns visible at once

  explicit ExcelSim(const OfficeScale& scale = OfficeScale{});

  // ----- model ----------------------------------------------------------------
  // row/col are zero-based; "A1" is (0,0).
  ExcelCell& cell(int row, int col);
  const ExcelCell* find_cell(int row, int col) const;
  void SetCellValue(int row, int col, const std::string& value);

  int active_row() const { return active_row_; }
  int active_col() const { return active_col_; }
  void SetActiveCell(int row, int col);

  // Bounding box of currently selected cells; false if nothing selected.
  bool SelectionBounds(int* row0, int* col0, int* row1, int* col1) const;

  const std::vector<CfRule>& cf_rules() const { return cf_rules_; }
  bool sorted_ascending() const { return sorted_ascending_; }
  bool filter_enabled() const { return filter_enabled_; }
  double v_scroll_percent() const { return v_scroll_; }

  bool HasEffect(const std::string& effect) const { return effects_.count(effect) > 0; }

  // "A1"-style reference parsing; returns false on malformed refs.
  static bool ParseRef(const std::string& ref, int* row, int* col);
  static std::string MakeRef(int row, int col);

  gsim::Control* grid_control() const { return grid_; }
  gsim::Control* CellControl(int row, int col) const;
  gsim::Control* name_box() const { return name_box_; }
  gsim::Control* formula_bar() const { return formula_bar_; }

  // ----- Application overrides -------------------------------------------------
  support::Status ExecuteCommand(gsim::Control& source, const std::string& command) override;
  support::Status OnKeyChord(const std::string& chord) override;
  void OnValueChanged(gsim::Control& control) override;
  void OnSelectionChanged(gsim::Control& control) override;
  void OnFactoryReset() override;
  void AppStateDigest(gsim::StateHash& hash) const override;

 private:
  void BuildUi(const OfficeScale& scale);
  void BuildHomeTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildFormulasTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildInsertTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildDataTab(gsim::Control& panel, const OfficeScale& scale);
  void BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale);
  void BuildGridArea();
  void BuildDialogs(const OfficeScale& scale);
  void SeedData();

  void UpdateViewport();
  void SyncCellControl(int row, int col);
  void ReapplyConditionalRules();

  // Evaluates a committed input; returns the display value.
  std::string Evaluate(const std::string& input) const;

  support::Status ApplySelectedCells(const std::function<void(ExcelCell&)>& fn);
  support::Status ApplyConditionalRule(const std::string& kind);

  std::map<std::pair<int, int>, ExcelCell> cells_;
  int active_row_ = 0;
  int active_col_ = 0;
  std::vector<CfRule> cf_rules_;
  bool sorted_ascending_ = false;
  bool filter_enabled_ = false;
  std::set<std::string> effects_;

  double v_scroll_ = 0.0;
  double h_scroll_ = 0.0;

  std::string cf_pending_value_;
  std::string cf_pending_value2_;
  std::string cf_pending_format_ = "Light Red Fill";

  gsim::Control* shared_palette_ = nullptr;
  gsim::Control* grid_ = nullptr;
  SurfaceScroll* grid_scroll_ = nullptr;  // borrowed; owned by grid_'s patterns
  gsim::Control* name_box_ = nullptr;
  gsim::Control* formula_bar_ = nullptr;
  std::vector<gsim::Control*> row_panes_;                // index = row
  std::vector<std::vector<gsim::Control*>> cell_ctrls_;  // [row][col]
};

}  // namespace apps

#endif  // SRC_APPS_EXCEL_SIM_H_
