#include "src/apps/word_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "src/support/strings.h"

namespace apps {
namespace {

// TextPattern over the WordSim paragraph model. In WordSim one paragraph
// renders as one line, so kLine and kParagraph coincide (documented).
class WordTextPattern : public uia::TextPattern {
 public:
  explicit WordTextPattern(WordSim* app) : app_(app) {}

  std::string GetText() const override {
    std::string out;
    for (const auto& p : app_->paragraphs()) {
      out += p.text;
      out += '\n';
    }
    return out;
  }

  int UnitCount(uia::TextUnit unit) const override {
    (void)unit;
    return static_cast<int>(app_->paragraphs().size());
  }

  std::string GetUnitText(uia::TextUnit unit, int index) const override {
    (void)unit;
    const auto& paras = app_->paragraphs();
    if (index < 0 || index >= static_cast<int>(paras.size())) {
      return "";
    }
    return paras[static_cast<size_t>(index)].text;
  }

  support::Status SelectRange(uia::TextUnit unit, int start, int end) override {
    (void)unit;
    const int n = static_cast<int>(app_->paragraphs().size());
    if (start < 0 || end < start || end >= n) {
      return support::InvalidArgumentError(
          support::Format("selection range [%d, %d] out of bounds (document has %d "
                          "paragraphs)", start, end, n));
    }
    app_->SetSelection(start, end);
    return support::Status::Ok();
  }

  std::string GetSelectedText() const override {
    std::string out;
    const auto& paras = app_->paragraphs();
    const int s = app_->selection_start();
    const int e = app_->selection_end();
    if (s < 0) {
      return out;
    }
    for (int i = s; i <= e && i < static_cast<int>(paras.size()); ++i) {
      out += paras[static_cast<size_t>(i)].text;
      out += '\n';
    }
    return out;
  }

 private:
  WordSim* app_;
};

std::string SampleParagraph(int index) {
  static const char* kSentences[] = {
      "The quarterly report outlines revenue growth across all regions.",
      "Our team delivered the milestone two weeks ahead of schedule.",
      "Customer feedback highlighted the need for clearer documentation.",
      "The committee will reconvene to review the draft proposal.",
      "Energy consumption fell by twelve percent after the retrofit.",
  };
  return "Paragraph " + std::to_string(index + 1) + ": " +
         kSentences[static_cast<size_t>(index) % 5];
}

}  // namespace

WordSim::WordSim(const OfficeScale& scale) : gsim::Application("WordSim") {
  SeedDocument();
  BuildUi(scale);
  FinalizeMainWindow();
}

void WordSim::SeedDocument() {
  paragraphs_.clear();
  for (int i = 0; i < 50; ++i) {
    WordParagraph p;
    p.text = SampleParagraph(i);
    paragraphs_.push_back(std::move(p));
  }
}

void WordSim::SetSelection(int start, int end) {
  sel_start_ = start;
  sel_end_ = end;
}

void WordSim::BuildUi(const OfficeScale& scale) {
  gsim::Control& root = main_window().root();

  // Shared color palette: referenced by Font Color, Underline Color, Text
  // Outline and Page Color — four in-edges to one subtree (merge node).
  shared_palette_ = RegisterSharedSubtree(BuildColorPalette("color.pick", "more_colors_dialog"));

  // Quick Access Toolbar.
  gsim::Control* qat = root.NewChild("Quick Access Toolbar", uia::ControlType::kToolBar);
  AddButton(*qat, "Save", "file.save");
  AddButton(*qat, "Undo", "edit.undo");
  AddButton(*qat, "Redo", "edit.redo");

  // File backstage as a menu; "Account" leaves the app (blocklist target).
  gsim::Control* file_menu = AddMenuButton(root, "File", uia::ControlType::kMenuItem);
  AddButton(*file_menu, "New Document", "file.new");
  AddButton(*file_menu, "Open", "file.open");
  AddButton(*file_menu, "Save As", "file.save_as");
  AddButton(*file_menu, "Print", "file.print");
  file_menu->NewChild("Account", uia::ControlType::kButton)
      ->SetClickEffect(gsim::ClickEffect::kExternal);
  file_menu->NewChild("Feedback", uia::ControlType::kButton)
      ->SetClickEffect(gsim::ClickEffect::kExternal);

  // Ribbon.
  gsim::Control* tab_strip = root.NewChild("Ribbon Tabs", uia::ControlType::kTab);
  BuildHomeTab(*AddRibbonTab(*tab_strip, "Home", /*active=*/true), scale);
  BuildInsertTab(*AddRibbonTab(*tab_strip, "Insert", false), scale);
  BuildDesignTab(*AddRibbonTab(*tab_strip, "Design", false), scale);
  BuildLayoutTab(*AddRibbonTab(*tab_strip, "Layout", false), scale);
  BuildBulkTabs(*tab_strip, scale);

  BuildDocumentArea();
  BuildDialogs(scale);

  // Status bar.
  gsim::Control* status = root.NewChild("Status Bar", uia::ControlType::kStatusBar);
  status->NewChild("Page 1 of 3", uia::ControlType::kText);
  status->NewChild("Words: 1,254", uia::ControlType::kText);
  AddButton(*status, "Zoom In", "view.zoom_in");
  AddButton(*status, "Zoom Out", "view.zoom_out");
}

void WordSim::BuildHomeTab(gsim::Control& panel, const OfficeScale& scale) {
  // Clipboard.
  gsim::Control* clipboard = AddGroup(panel, "Clipboard");
  gsim::Control* paste = AddMenuButton(*clipboard, "Paste", uia::ControlType::kSplitButton);
  AddButton(*paste, "Paste Default", "edit.paste");
  AddButton(*paste, "Keep Text Only", "edit.paste_text");
  AddButton(*paste, "Paste Special", "edit.paste_special");
  AddButton(*clipboard, "Cut", "edit.cut");
  AddButton(*clipboard, "Copy", "edit.copy");
  AddButton(*clipboard, "Format Painter", "edit.format_painter");

  // Font.
  gsim::Control* font = AddGroup(panel, "Font");
  gsim::Control* font_combo = AddMenuButton(*font, "Font Family", uia::ControlType::kComboBox);
  font_combo->parent_control();  // (combo popup holds the large enumeration)
  static const char* kFontSeeds[] = {"Calibri", "Arial",  "Cambria", "Georgia",
                                     "Verdana", "Tahoma", "Garamond", "Consolas"};
  const int font_count = scale.Scaled(420);
  for (int i = 0; i < font_count; ++i) {
    std::string name = std::string(kFontSeeds[i % 8]) +
                       (i < 8 ? "" : " Variant " + std::to_string(i / 8));
    font_combo->NewChild(name, uia::ControlType::kListItem)->SetCommand("font.set_family");
  }
  gsim::Control* size_combo = AddMenuButton(*font, "Font Size", uia::ControlType::kComboBox);
  for (int s = 8; s <= 72; s += 2) {
    size_combo->NewChild(std::to_string(s), uia::ControlType::kListItem)
        ->SetCommand("font.set_size");
  }
  AddToggle(*font, "Bold", "font.bold")->SetHelpText("Toggle bold on the selection");
  AddToggle(*font, "Italic", "font.italic");
  gsim::Control* underline = AddMenuButton(*font, "Underline", uia::ControlType::kSplitButton);
  static const char* kUnderlineStyles[] = {"Single Underline", "Double Underline",
                                           "Thick Underline",  "Dotted Underline",
                                           "Dashed Underline", "Wavy Underline"};
  for (const char* style : kUnderlineStyles) {
    AddButton(*underline, style, "font.underline_style");
  }
  AddSharedPaletteButton(*underline, "Underline Color", shared_palette_);
  AddToggle(*font, "Strikethrough", "font.strikethrough");
  AddToggle(*font, "Subscript", "font.subscript");
  AddToggle(*font, "Superscript", "font.superscript");
  gsim::Control* effects = AddMenuButton(*font, "Text Effects", uia::ControlType::kMenuItem);
  AddGalleryItems(*effects, "Effect Preset", scale.Scaled(20), "font.effect_preset");
  AddSharedPaletteButton(*effects, "Text Outline", shared_palette_);
  gsim::Control* shadow = AddMenuButton(*effects, "Shadow", uia::ControlType::kMenuItem);
  AddGalleryItems(*shadow, "Shadow Style", 9, "font.shadow");
  gsim::Control* glow = AddMenuButton(*effects, "Glow", uia::ControlType::kMenuItem);
  AddGalleryItems(*glow, "Glow Style", 12, "font.glow");
  gsim::Control* highlight =
      AddMenuButton(*font, "Text Highlight Color", uia::ControlType::kSplitButton);
  static const char* kHighlights[] = {"Yellow Highlight", "Green Highlight",
                                      "Cyan Highlight",   "Pink Highlight",
                                      "Gray Highlight",   "No Highlight"};
  for (const char* h : kHighlights) {
    AddButton(*highlight, h, "color.highlight");
  }
  AddSharedPaletteButton(*font, "Font Color", shared_palette_);
  AddButton(*font, "Clear All Formatting", "font.clear");
  AddDialogLauncher(*font, "Font Settings", "font_dialog");

  // Paragraph.
  gsim::Control* para = AddGroup(panel, "Paragraph");
  gsim::Control* bullets = AddMenuButton(*para, "Bullets", uia::ControlType::kSplitButton);
  AddGalleryItems(*bullets, "Bullet Style", 12, "para.bullets");
  gsim::Control* numbering = AddMenuButton(*para, "Numbering", uia::ControlType::kSplitButton);
  AddGalleryItems(*numbering, "Numbering Style", 12, "para.numbering");
  gsim::Control* multilevel = AddMenuButton(*para, "Multilevel List", uia::ControlType::kSplitButton);
  AddGalleryItems(*multilevel, "List Level Style", 9, "para.multilevel");
  AddButton(*para, "Decrease Indent", "para.indent_dec");
  AddButton(*para, "Increase Indent", "para.indent_inc");
  AddButton(*para, "Sort", "para.sort");
  AddToggle(*para, "Show Formatting Marks", "view.marks");
  AddButton(*para, "Align Left", "para.align:Left");
  AddButton(*para, "Center", "para.align:Center");
  AddButton(*para, "Align Right", "para.align:Right");
  AddButton(*para, "Justify", "para.align:Justify");
  gsim::Control* spacing = AddMenuButton(*para, "Line and Paragraph Spacing",
                                         uia::ControlType::kMenuItem);
  static const char* kSpacings[] = {"1.0", "1.15", "1.5", "2.0", "2.5", "3.0"};
  for (const char* s : kSpacings) {
    AddButton(*spacing, s, "para.line_spacing");
  }
  AddDialogLauncher(*spacing, "Line Spacing Options...", "paragraph_dialog");
  gsim::Control* borders = AddMenuButton(*para, "Borders", uia::ControlType::kSplitButton);
  static const char* kBorders[] = {"Bottom Border",  "Top Border",     "Left Border",
                                   "Right Border",   "No Border",      "All Borders",
                                   "Outside Borders","Inside Borders", "Horizontal Line"};
  for (const char* b : kBorders) {
    AddButton(*borders, b, "para.border");
  }
  AddDialogLauncher(*borders, "Borders and Shading...", "page_borders_dialog");

  // Styles.
  gsim::Control* styles = AddGroup(panel, "Styles");
  gsim::Control* style_gallery = AddMenuButton(*styles, "Styles Gallery",
                                               uia::ControlType::kMenuItem);
  static const char* kStyleSeeds[] = {"Normal", "No Spacing", "Heading 1", "Heading 2",
                                      "Title",  "Subtitle",   "Quote",     "Emphasis"};
  const int style_count = scale.Scaled(120);
  for (int i = 0; i < style_count; ++i) {
    std::string name = i < 8 ? kStyleSeeds[i] : "Style " + std::to_string(i);
    style_gallery->NewChild(name, uia::ControlType::kListItem)->SetCommand("style.apply");
  }
  AddButton(*styles, "Create a Style", "style.create");

  // Editing.
  gsim::Control* editing = AddGroup(panel, "Editing");
  gsim::Control* find = AddMenuButton(*editing, "Find", uia::ControlType::kSplitButton);
  AddButton(*find, "Find in Document", "edit.find_pane");
  AddDialogLauncher(*find, "Advanced Find...", "find_replace_dialog");
  AddDialogLauncher(*find, "Go To...", "find_replace_dialog");
  AddDialogLauncher(*editing, "Replace", "find_replace_dialog");
  gsim::Control* select = AddMenuButton(*editing, "Select", uia::ControlType::kMenuItem);
  AddButton(*select, "Select All", "edit.select_all");
  AddButton(*select, "Select Objects", "edit.select_objects");
  AddButton(*select, "Selection Pane", "view.selection_pane");
}

void WordSim::BuildInsertTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* pages = AddGroup(panel, "Pages");
  gsim::Control* cover = AddMenuButton(*pages, "Cover Page", uia::ControlType::kMenuItem);
  AddGalleryItems(*cover, "Cover Design", scale.Scaled(60), "doc.cover_page");
  AddButton(*pages, "Blank Page", "doc.blank_page");
  AddButton(*pages, "Page Break", "doc.page_break");

  gsim::Control* tables = AddGroup(panel, "Tables");
  gsim::Control* table_menu = AddMenuButton(*tables, "Table", uia::ControlType::kMenuItem);
  for (int r = 1; r <= 8; ++r) {
    for (int c = 1; c <= 10; ++c) {
      gsim::Control* cell = table_menu->NewChild(
          "Table " + std::to_string(r) + " x " + std::to_string(c),
          uia::ControlType::kListItem);
      cell->SetCommand("table.insert_grid");
    }
  }
  AddDialogLauncher(*table_menu, "Insert Table...", "insert_table_dialog");

  gsim::Control* illus = AddGroup(panel, "Illustrations");
  AddButton(*illus, "Pictures", "doc.insert_picture");
  gsim::Control* shapes = AddMenuButton(*illus, "Shapes", uia::ControlType::kMenuItem);
  AddGalleryItems(*shapes, "Shape", scale.Scaled(300), "doc.insert_shape");
  gsim::Control* icons = AddMenuButton(*illus, "Icons", uia::ControlType::kMenuItem);
  AddGalleryItems(*icons, "Icon", scale.Scaled(250), "doc.insert_icon");
  AddDialogLauncher(*illus, "Chart", "chart_dialog");
  AddDialogLauncher(*illus, "SmartArt", "smartart_dialog");

  gsim::Control* hf = AddGroup(panel, "Header & Footer");
  gsim::Control* header = AddMenuButton(*hf, "Header", uia::ControlType::kMenuItem);
  AddGalleryItems(*header, "Header Design", scale.Scaled(20), "doc.header");
  gsim::Control* footer = AddMenuButton(*hf, "Footer", uia::ControlType::kMenuItem);
  AddGalleryItems(*footer, "Footer Design", scale.Scaled(20), "doc.footer");
  gsim::Control* pagenum = AddMenuButton(*hf, "Page Number", uia::ControlType::kMenuItem);
  static const char* kPageNumPlaces[] = {"Top of Page", "Bottom of Page", "Page Margins",
                                         "Current Position"};
  for (const char* place : kPageNumPlaces) {
    gsim::Control* sub = AddMenuButton(*pagenum, place, uia::ControlType::kMenuItem);
    AddGalleryItems(*sub, std::string(place) + " Number Style", 10, "doc.page_number");
  }

  gsim::Control* text = AddGroup(panel, "Text");
  gsim::Control* textbox = AddMenuButton(*text, "Text Box", uia::ControlType::kMenuItem);
  AddGalleryItems(*textbox, "Text Box Design", scale.Scaled(60), "doc.insert_textbox");
  gsim::Control* quick_parts = AddMenuButton(*text, "Quick Parts", uia::ControlType::kMenuItem);
  AddGalleryItems(*quick_parts, "Building Block", scale.Scaled(400), "doc.building_block");
  gsim::Control* wordart = AddMenuButton(*text, "WordArt", uia::ControlType::kMenuItem);
  AddGalleryItems(*wordart, "WordArt Style", scale.Scaled(30), "doc.wordart");
  gsim::Control* dropcap = AddMenuButton(*text, "Drop Cap", uia::ControlType::kMenuItem);
  AddButton(*dropcap, "Dropped", "doc.dropcap");
  AddButton(*dropcap, "In Margin", "doc.dropcap");
  AddButton(*dropcap, "None", "doc.dropcap_none");

  gsim::Control* symbols = AddGroup(panel, "Symbols");
  gsim::Control* equation = AddMenuButton(*symbols, "Equation", uia::ControlType::kSplitButton);
  AddGalleryItems(*equation, "Equation Template", scale.Scaled(20), "doc.equation");
  gsim::Control* symbol = AddMenuButton(*symbols, "Symbol", uia::ControlType::kMenuItem);
  AddGalleryItems(*symbol, "Recent Symbol", 20, "doc.insert_symbol");
  AddDialogLauncher(*symbol, "More Symbols...", "symbol_dialog");
}

void WordSim::BuildDesignTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* fmt = AddGroup(panel, "Document Formatting");
  gsim::Control* themes = AddMenuButton(*fmt, "Themes", uia::ControlType::kMenuItem);
  AddGalleryItems(*themes, "Theme", scale.Scaled(80), "theme.apply");
  gsim::Control* doc_fmt = AddMenuButton(*fmt, "Style Sets", uia::ControlType::kMenuItem);
  AddGalleryItems(*doc_fmt, "Style Set", scale.Scaled(30), "theme.style_set");
  gsim::Control* colors = AddMenuButton(*fmt, "Theme Colors", uia::ControlType::kMenuItem);
  AddGalleryItems(*colors, "Color Scheme", scale.Scaled(25), "theme.colors");
  gsim::Control* fonts = AddMenuButton(*fmt, "Theme Fonts", uia::ControlType::kMenuItem);
  AddGalleryItems(*fonts, "Font Scheme", scale.Scaled(25), "theme.fonts");
  gsim::Control* para_sp = AddMenuButton(*fmt, "Paragraph Spacing", uia::ControlType::kMenuItem);
  AddGalleryItems(*para_sp, "Spacing Preset", 6, "theme.paragraph_spacing");
  gsim::Control* eff = AddMenuButton(*fmt, "Theme Effects", uia::ControlType::kMenuItem);
  AddGalleryItems(*eff, "Effect Scheme", scale.Scaled(15), "theme.effects");

  gsim::Control* bg = AddGroup(panel, "Page Background");
  gsim::Control* watermark = AddMenuButton(*bg, "Watermark", uia::ControlType::kMenuItem);
  AddGalleryItems(*watermark, "Watermark Design", 12, "page.watermark");
  AddDialogLauncher(*watermark, "Custom Watermark...", "watermark_dialog");
  AddSharedPaletteButton(*bg, "Page Color", shared_palette_);
  AddDialogLauncher(*bg, "Page Borders", "page_borders_dialog");
}

void WordSim::BuildLayoutTab(gsim::Control& panel, const OfficeScale& scale) {
  gsim::Control* setup = AddGroup(panel, "Page Setup");
  gsim::Control* margins = AddMenuButton(*setup, "Margins", uia::ControlType::kMenuItem);
  static const char* kMargins[] = {"Normal Margins", "Narrow Margins", "Moderate Margins",
                                   "Wide Margins",   "Mirrored Margins"};
  for (const char* m : kMargins) {
    AddButton(*margins, m, "page.margins");
  }
  AddDialogLauncher(*margins, "Custom Margins...", "page_setup_dialog");
  gsim::Control* orient = AddMenuButton(*setup, "Orientation", uia::ControlType::kMenuItem);
  AddButton(*orient, "Portrait", "page.orientation");
  AddButton(*orient, "Landscape", "page.orientation");
  gsim::Control* size = AddMenuButton(*setup, "Size", uia::ControlType::kMenuItem);
  AddGalleryItems(*size, "Paper Size", scale.Scaled(18), "page.size");
  gsim::Control* cols = AddMenuButton(*setup, "Columns", uia::ControlType::kMenuItem);
  static const char* kCols[] = {"One Column", "Two Columns", "Three Columns",
                                "Left Column", "Right Column"};
  for (const char* c : kCols) {
    AddButton(*cols, c, "page.columns");
  }
  gsim::Control* breaks = AddMenuButton(*setup, "Breaks", uia::ControlType::kMenuItem);
  AddGalleryItems(*breaks, "Break Kind", 10, "page.break");
  gsim::Control* linenum = AddMenuButton(*setup, "Line Numbers", uia::ControlType::kMenuItem);
  AddGalleryItems(*linenum, "Line Number Mode", 5, "page.line_numbers");
  gsim::Control* hyphen = AddMenuButton(*setup, "Hyphenation", uia::ControlType::kMenuItem);
  AddGalleryItems(*hyphen, "Hyphenation Mode", 4, "page.hyphenation");

  gsim::Control* para_grp = AddGroup(panel, "Paragraph Layout");
  para_grp->NewChild("Indent Left", uia::ControlType::kSpinner)->SetCommand("para.indent_left");
  para_grp->NewChild("Indent Right", uia::ControlType::kSpinner)->SetCommand("para.indent_right");
  para_grp->NewChild("Spacing Before", uia::ControlType::kSpinner)->SetCommand("para.space_before");
  para_grp->NewChild("Spacing After", uia::ControlType::kSpinner)->SetCommand("para.space_after");

  gsim::Control* arrange = AddGroup(panel, "Arrange");
  gsim::Control* position = AddMenuButton(*arrange, "Position", uia::ControlType::kMenuItem);
  AddGalleryItems(*position, "Position Preset", 9, "obj.position");
  gsim::Control* wrap = AddMenuButton(*arrange, "Wrap Text", uia::ControlType::kMenuItem);
  AddGalleryItems(*wrap, "Wrap Mode", 7, "obj.wrap");
  AddButton(*arrange, "Bring Forward", "obj.forward");
  AddButton(*arrange, "Send Backward", "obj.backward");
  AddButton(*arrange, "Group Objects", "obj.group");
  AddButton(*arrange, "Rotate Objects", "obj.rotate");
}

void WordSim::BuildBulkTabs(gsim::Control& tab_strip, const OfficeScale& scale) {
  struct BulkTab {
    const char* name;
    std::vector<std::pair<const char*, std::vector<const char*>>> groups;
  };
  const std::vector<BulkTab> bulk = {
      {"References",
       {{"Table of Contents", {"Contents Style", "Update Table"}},
        {"Footnotes", {"Footnote Kind", "Next Footnote"}},
        {"Citations", {"Citation Style", "Manage Sources"}},
        {"Captions", {"Caption Kind", "Cross-reference"}},
        {"Index", {"Index Format", "Mark Entry"}}}},
      {"Mailings",
       {{"Create", {"Envelope Size", "Label Kind"}},
        {"Mail Merge", {"Merge Mode", "Recipient List"}},
        {"Fields", {"Merge Field", "Rules"}},
        {"Finish", {"Finish Mode", "Preview Results"}}}},
      {"Review",
       {{"Proofing", {"Proofing Tool", "Word Count"}},
        {"Language", {"Language Choice", "Translate Mode"}},
        {"Comments", {"Comment Action", "Show Comments"}},
        {"Tracking", {"Markup View", "Accept Mode"}},
        {"Protect", {"Protection Kind", "Restrict Editing"}}}},
      {"View",
       {{"Views", {"View Mode", "Focus"}},
        {"Show", {"Show Item", "Gridlines"}},
        {"Zoom", {"Zoom Preset", "Page Width"}},
        {"Window", {"Window Action", "Split"}},
        {"Macros", {"Macro Action", "Record Macro"}}}},
  };
  for (const auto& tab : bulk) {
    gsim::Control* panel = AddRibbonTab(tab_strip, tab.name, false);
    for (const auto& [group_name, kinds] : tab.groups) {
      gsim::Control* group = AddGroup(*panel, group_name);
      // First kind becomes a gallery menu; second a pair of plain buttons.
      gsim::Control* menu = AddMenuButton(*group, kinds[0], uia::ControlType::kMenuItem);
      AddGalleryItems(*menu, kinds[0], scale.Scaled(32), "bulk.apply");
      AddButton(*group, kinds[1], "bulk.action");
      AddButton(*group, std::string(group_name) + " Options", "bulk.options");
    }
  }
}

void WordSim::BuildDocumentArea() {
  gsim::Control& root = main_window().root();
  document_ = root.NewChild("Document", uia::ControlType::kDocument);
  document_->SetHelpText("The document editing surface");
  document_->AttachPattern(std::make_unique<WordTextPattern>(this));
  auto scroll = std::make_unique<SurfaceScroll>(
      /*horizontal=*/false, /*vertical=*/true,
      [this](double, double v) { scroll_percent_ = v; });
  doc_scroll_ = scroll.get();
  document_->AttachPattern(std::move(scroll));
  gsim::Control* vbar = root.NewChild("Vertical Scroll Bar", uia::ControlType::kScrollBar);
  vbar->NewChild("Scroll Thumb", uia::ControlType::kThumb);
}

void WordSim::BuildDialogs(const OfficeScale& scale) {
  // Font dialog.
  {
    auto dialog = MakeDialog("Font", "");
    gsim::Control& r = dialog->root();
    gsim::Control* effects_group = r.NewChild("Effects", uia::ControlType::kGroup);
    for (const char* opt : {"Strikethrough", "Double Strikethrough", "Superscript",
                            "Subscript", "Small Caps", "All Caps", "Hidden"}) {
      gsim::Control* cb = effects_group->NewChild(opt, uia::ControlType::kCheckBox);
      cb->SetClickEffect(gsim::ClickEffect::kToggle);
      cb->SetCommand("font.dialog_effect");
    }
    gsim::Control* style_list = r.NewChild("Font Style", uia::ControlType::kList);
    for (const char* s : {"Regular", "Italic Style", "Bold Style", "Bold Italic Style"}) {
      style_list->NewChild(s, uia::ControlType::kListItem)->SetCommand("font.dialog_style");
    }
    // Nested dialog with a pane-switching cycle inside.
    AddDialogLauncher(r, "Text Effects...", "text_effects_dialog");
    RegisterDialog("font_dialog", std::move(dialog));
  }

  // Text Effects dialog: two exclusive panes — the "Back" button re-reveals
  // pane one, creating a genuine cycle in the navigation graph.
  {
    auto dialog = MakeDialog("Format Text Effects", "");
    gsim::Control& r = dialog->root();
    gsim::Control* fill_pane = r.NewChild("Text Fill Pane", uia::ControlType::kGroup);
    for (const char* opt : {"No Text Fill", "Solid Text Fill", "Gradient Text Fill"}) {
      gsim::Control* rb = fill_pane->NewChild(opt, uia::ControlType::kRadioButton);
      rb->SetCommand("font.text_fill");
    }
    AddButton(*fill_pane, "Outline Options", "pane.show:te_outline");
    gsim::Control* outline_pane = r.NewChild("Text Outline Pane", uia::ControlType::kGroup);
    outline_pane->SetForcedOffscreen(true);
    for (const char* opt : {"No Outline Line", "Solid Outline Line", "Gradient Outline Line"}) {
      gsim::Control* rb = outline_pane->NewChild(opt, uia::ControlType::kRadioButton);
      rb->SetCommand("font.text_outline");
    }
    AddButton(*outline_pane, "Back to Fill Options", "pane.show:te_fill");
    RegisterDialog("text_effects_dialog", std::move(dialog));
  }

  // Find & Replace dialog.
  {
    auto dialog = MakeDialog("Find and Replace", "");
    gsim::Control& r = dialog->root();
    gsim::Control* find_edit = r.NewChild("Find what", uia::ControlType::kEdit);
    find_edit->SetAutomationId("fr_find");
    gsim::Control* replace_edit = r.NewChild("Replace with", uia::ControlType::kEdit);
    replace_edit->SetAutomationId("fr_replace");
    gsim::Control* find_next = AddButton(r, "Find Next", "edit.find_next");
    find_next_button_ = find_next;
    AddButton(r, "Replace One", "edit.replace_one");
    AddButton(r, "Replace All", "edit.replace_all");
    gsim::Control* more = AddMenuButton(r, "More Options", uia::ControlType::kButton);
    gsim::Control* mc = more->NewChild("Match Case", uia::ControlType::kCheckBox);
    mc->SetClickEffect(gsim::ClickEffect::kToggle);
    mc->SetCommand("fr.match_case");
    // The gotcha control: formats the whole "Find what" criterion, not the
    // current document selection (§5.6 failure example).
    gsim::Control* sub = more->NewChild("Subscript", uia::ControlType::kCheckBox);
    sub->SetClickEffect(gsim::ClickEffect::kToggle);
    sub->SetCommand("fr.subscript");
    sub->SetHelpText("Search criterion: match subscript-formatted text of the Find field");
    gsim::Control* special = AddMenuButton(*more, "Special", uia::ControlType::kMenuItem);
    AddGalleryItems(*special, "Special Mark", 20, "fr.special");
    RegisterDialog("find_replace_dialog", std::move(dialog));
  }

  // Insert Table dialog.
  {
    auto dialog = MakeDialog("Insert Table", "table.insert_dialog");
    gsim::Control& r = dialog->root();
    r.NewChild("Number of columns", uia::ControlType::kEdit)->SetAutomationId("tbl_cols");
    r.NewChild("Number of rows", uia::ControlType::kEdit)->SetAutomationId("tbl_rows");
    RegisterDialog("insert_table_dialog", std::move(dialog));
  }

  // Symbol dialog: large grid.
  {
    auto dialog = MakeDialog("Symbol", "");
    gsim::Control& r = dialog->root();
    gsim::Control* grid = r.NewChild("Symbol Grid", uia::ControlType::kList);
    const int symbol_count = scale.Scaled(600);
    for (int i = 0; i < symbol_count; ++i) {
      grid->NewChild("Symbol U+" + std::to_string(0x2200 + i), uia::ControlType::kListItem)
          ->SetCommand("doc.insert_symbol");
    }
    RegisterDialog("symbol_dialog", std::move(dialog));
  }

  // More Colors dialog (reached from the shared palette).
  {
    auto dialog = MakeDialog("Colors", "");
    gsim::Control& r = dialog->root();
    gsim::Control* honeycomb = r.NewChild("Custom Color Grid", uia::ControlType::kList);
    const int cells = scale.Scaled(216);
    for (int i = 0; i < cells; ++i) {
      honeycomb->NewChild("Custom Color " + std::to_string(i), uia::ControlType::kListItem)
          ->SetCommand("color.pick");
    }
    RegisterDialog("more_colors_dialog", std::move(dialog));
  }

  // Remaining simple dialogs.
  for (const auto& [id, title, ok_cmd] :
       std::vector<std::tuple<std::string, std::string, std::string>>{
           {"paragraph_dialog", "Paragraph", "para.dialog_apply"},
           {"page_setup_dialog", "Page Setup", "page.setup_apply"},
           {"page_borders_dialog", "Borders and Shading", "page.borders_apply"},
           {"chart_dialog", "Insert Chart", "doc.insert_chart"},
           {"smartart_dialog", "Choose a SmartArt Graphic", "doc.insert_smartart"},
           {"watermark_dialog", "Printed Watermark", "page.watermark_custom"},
       }) {
    auto dialog = MakeDialog(title, ok_cmd);
    gsim::Control& r = dialog->root();
    for (int i = 1; i <= 8; ++i) {
      gsim::Control* opt = r.NewChild(title + " Option " + std::to_string(i),
                                      uia::ControlType::kCheckBox);
      opt->SetClickEffect(gsim::ClickEffect::kToggle);
    }
    r.NewChild(title + " Value", uia::ControlType::kEdit);
    RegisterDialog(id, std::move(dialog));
  }
}

support::Status WordSim::ApplyToSelection(const std::function<void(WordParagraph&)>& fn) {
  if (sel_start_ < 0 || sel_end_ < sel_start_) {
    return support::FailedPreconditionError("no text is selected");
  }
  const int hi = std::min(sel_end_, static_cast<int>(paragraphs_.size()) - 1);
  for (int i = sel_start_; i <= hi; ++i) {
    fn(paragraphs_[static_cast<size_t>(i)]);
  }
  return support::Status::Ok();
}

support::Status WordSim::ApplyColor(gsim::Control& source) {
  const std::string color = source.TrueName();
  const std::vector<std::string> chain = OpenAncestorNames(source);
  auto chain_has = [&](const std::string& name) {
    return std::find(chain.begin(), chain.end(), name) != chain.end();
  };
  if (chain_has("Page Color")) {
    page_color_ = color;
    return support::Status::Ok();
  }
  if (chain_has("Underline Color")) {
    return ApplyToSelection([&](WordParagraph& p) {
      p.fmt.underline = true;
      p.fmt.underline_color = color;
    });
  }
  if (chain_has("Text Outline")) {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.outline_color = color; });
  }
  // Font Color hosts (and the More Colors dialog fallback).
  return ApplyToSelection([&](WordParagraph& p) { p.fmt.color = color; });
}

support::Status WordSim::ExecuteCommand(gsim::Control& source, const std::string& command) {
  const std::string name = source.TrueName();

  if (command == "color.pick") {
    return ApplyColor(source);
  }
  if (command == "color.highlight") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.highlight = name; });
  }
  if (command == "font.bold") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.bold = source.toggled(); });
  }
  if (command == "font.italic") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.italic = source.toggled(); });
  }
  if (command == "font.strikethrough") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.strikethrough = source.toggled(); });
  }
  if (command == "font.subscript") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.subscript = source.toggled(); });
  }
  if (command == "font.superscript") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.superscript = source.toggled(); });
  }
  if (command == "font.underline_style") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.underline = true; });
  }
  if (command == "font.set_family") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.font = name; });
  }
  if (command == "font.set_size") {
    const int size = std::atoi(name.c_str());
    return ApplyToSelection([&](WordParagraph& p) { p.fmt.size = size; });
  }
  if (command == "font.clear") {
    return ApplyToSelection([&](WordParagraph& p) { p.fmt = CharFormat{}; });
  }
  if (command == "font.dialog_effect") {
    // Font-dialog checkboxes mirror the ribbon toggles.
    if (name == "Subscript") {
      return ApplyToSelection([&](WordParagraph& p) { p.fmt.subscript = source.toggled(); });
    }
    if (name == "Superscript") {
      return ApplyToSelection([&](WordParagraph& p) { p.fmt.superscript = source.toggled(); });
    }
    if (name == "Strikethrough") {
      return ApplyToSelection(
          [&](WordParagraph& p) { p.fmt.strikethrough = source.toggled(); });
    }
    effects_.insert(command + ":" + name);
    return support::Status::Ok();
  }
  if (support::StartsWith(command, "para.align:")) {
    const std::string align = command.substr(std::string("para.align:").size());
    return ApplyToSelection([&](WordParagraph& p) { p.alignment = align; });
  }
  if (command == "para.line_spacing") {
    const double spacing = std::atof(name.c_str());
    return ApplyToSelection([&](WordParagraph& p) { p.line_spacing = spacing; });
  }
  if (command == "style.apply") {
    return ApplyToSelection([&](WordParagraph& p) { p.style = name; });
  }
  if (command == "page.orientation") {
    page_orientation_ = name;
    return support::Status::Ok();
  }
  if (command == "table.insert_grid") {
    // "Table R x C"
    int r = 0;
    int c = 0;
    if (std::sscanf(name.c_str(), "Table %d x %d", &r, &c) == 2) {
      table_rows_ = r;
      table_cols_ = c;
      return support::Status::Ok();
    }
    return support::InvalidArgumentError("malformed table grid cell name: " + name);
  }
  if (command == "table.insert_dialog") {
    table_rows_ = std::max(1, table_rows_pending_());
    table_cols_ = std::max(1, table_cols_pending_());
    return support::Status::Ok();
  }
  if (command == "edit.select_all") {
    SetSelection(0, static_cast<int>(paragraphs_.size()) - 1);
    return support::Status::Ok();
  }
  if (command == "edit.find_next") {
    return support::Status::Ok();
  }
  if (command == "edit.replace_one" || command == "edit.replace_all") {
    if (find_text_.empty()) {
      return support::FailedPreconditionError("'Find what' is empty");
    }
    int replaced = 0;
    for (auto& p : paragraphs_) {
      std::string target = find_text_;
      std::string hay = p.text;
      if (!fr_match_case_) {
        target = support::ToLower(target);
        hay = support::ToLower(hay);
      }
      const bool contains = hay.find(target) != std::string::npos;
      if (!contains) {
        continue;
      }
      if (fr_subscript_) {
        // Gotcha semantics: the Subscript option constrains/acts on the whole
        // matched run as a criterion — modeled as applying subscript to the
        // matched paragraph rather than replacing within the selection.
        p.fmt.subscript = true;
      } else {
        p.text = support::ReplaceAll(p.text, find_text_, replace_text_);
      }
      ++replaced;
      if (command == "edit.replace_one") {
        break;
      }
    }
    replace_count_ += replaced;
    return support::Status::Ok();
  }
  if (command == "fr.match_case") {
    fr_match_case_ = source.toggled();
    return support::Status::Ok();
  }
  if (command == "fr.subscript") {
    fr_subscript_ = source.toggled();
    return support::Status::Ok();
  }
  if (support::StartsWith(command, "pane.show:")) {
    const std::string pane = command.substr(std::string("pane.show:").size());
    gsim::Window* te = FindDialog("text_effects_dialog");
    if (te != nullptr) {
      gsim::Control* fill = nullptr;
      gsim::Control* outline = nullptr;
      te->root().WalkStatic([&](gsim::Control& c) {
        if (c.TrueName() == "Text Fill Pane") {
          fill = &c;
        } else if (c.TrueName() == "Text Outline Pane") {
          outline = &c;
        }
      });
      if (fill != nullptr && outline != nullptr) {
        fill->SetForcedOffscreen(pane != "te_fill");
        outline->SetForcedOffscreen(pane != "te_outline");
      }
    }
    return support::Status::Ok();
  }

  // Everything else (bulk galleries, themes, inserts, ...) records a generic
  // effect keyed by command and source name, which task verifiers can query.
  effects_.insert(command + ":" + name);
  return support::Status::Ok();
}

int WordSim::table_rows_pending_() {
  gsim::Window* d = FindDialog("insert_table_dialog");
  if (d == nullptr) {
    return 0;
  }
  int rows = 0;
  d->root().WalkStatic([&](gsim::Control& c) {
    if (c.AutomationId() == "tbl_rows") {
      rows = std::atoi(c.text_value().c_str());
    }
  });
  return rows;
}

int WordSim::table_cols_pending_() {
  gsim::Window* d = FindDialog("insert_table_dialog");
  if (d == nullptr) {
    return 0;
  }
  int cols = 0;
  d->root().WalkStatic([&](gsim::Control& c) {
    if (c.AutomationId() == "tbl_cols") {
      cols = std::atoi(c.text_value().c_str());
    }
  });
  return cols;
}

support::Status WordSim::OnKeyChord(const std::string& chord) {
  if (chord == "CTRL+A") {
    SetSelection(0, static_cast<int>(paragraphs_.size()) - 1);
    return support::Status::Ok();
  }
  if (chord == "ENTER") {
    return support::Status::Ok();  // edits commit eagerly in WordSim
  }
  return support::Status::Ok();
}

void WordSim::OnValueChanged(gsim::Control& control) {
  if (control.AutomationId() == "fr_find") {
    find_text_ = control.text_value();
    // The §6 modeling hazard: entering special go-to codes (+1, +2, ...)
    // dynamically renames the "Find Next" button to "Go To" — a conditional
    // UI change no DFS exploration captures offline.
    if (find_next_button_ != nullptr) {
      const bool special = !find_text_.empty() && find_text_[0] == '+';
      find_next_button_->RenameTo(special ? "Go To" : "Find Next");
    }
  } else if (control.AutomationId() == "fr_replace") {
    replace_text_ = control.text_value();
  }
}

void WordSim::OnFactoryReset() {
  SeedDocument();
  sel_start_ = -1;
  sel_end_ = -1;
  scroll_percent_ = 0.0;
  page_color_ = "None";
  page_orientation_ = "Portrait";
  table_rows_ = 0;
  table_cols_ = 0;
  effects_.clear();
  find_text_.clear();
  replace_text_.clear();
  fr_subscript_ = false;
  fr_match_case_ = false;
  replace_count_ = 0;
  if (doc_scroll_ != nullptr) {
    doc_scroll_->ResetPosition();
  }
  OnUiReset();  // default pane visibility (Text Effects dialog)
}

void WordSim::AppStateDigest(gsim::StateHash& hash) const {
  hash.MixU64(paragraphs_.size());
  for (const WordParagraph& p : paragraphs_) {
    hash.Mix(p.text);
    hash.MixBool(p.fmt.bold);
    hash.MixBool(p.fmt.italic);
    hash.MixBool(p.fmt.underline);
    hash.MixBool(p.fmt.strikethrough);
    hash.MixBool(p.fmt.subscript);
    hash.MixBool(p.fmt.superscript);
    hash.Mix(p.fmt.color);
    hash.Mix(p.fmt.underline_color);
    hash.Mix(p.fmt.outline_color);
    hash.Mix(p.fmt.highlight);
    hash.Mix(p.fmt.font);
    hash.MixU64(static_cast<uint64_t>(p.fmt.size));
    hash.Mix(p.alignment);
    hash.MixDouble(p.line_spacing);
    hash.Mix(p.style);
  }
  hash.MixU64(static_cast<uint64_t>(sel_start_));
  hash.MixU64(static_cast<uint64_t>(sel_end_));
  hash.MixDouble(scroll_percent_);
  hash.Mix(page_color_);
  hash.Mix(page_orientation_);
  hash.MixU64(static_cast<uint64_t>(table_rows_));
  hash.MixU64(static_cast<uint64_t>(table_cols_));
  hash.MixU64(effects_.size());
  for (const std::string& e : effects_) {
    hash.Mix(e);
  }
  hash.Mix(find_text_);
  hash.Mix(replace_text_);
  hash.MixBool(fr_subscript_);
  hash.MixBool(fr_match_case_);
  hash.MixU64(static_cast<uint64_t>(replace_count_));
}

void WordSim::OnUiReset() {
  gsim::Window* te = FindDialog("text_effects_dialog");
  if (te != nullptr) {
    te->root().WalkStatic([&](gsim::Control& c) {
      if (c.TrueName() == "Text Fill Pane") {
        c.SetForcedOffscreen(false);
      } else if (c.TrueName() == "Text Outline Pane") {
        c.SetForcedOffscreen(true);
      }
    });
  }
}

}  // namespace apps
