// Shared scaffolding for the synthetic Office-scale applications.
//
// The three case-study apps (WordSim, ExcelSim, PpointSim) are procedurally
// generated so each exposes >4,000 controls with the structural pathologies
// the paper leans on: deep ribbon->menu->dialog nesting (depth > 10), large
// enumerations (font lists, symbol galleries), shared palettes referenced
// from several menus (merge nodes), and back/reset controls (cycles).
#ifndef SRC_APPS_OFFICE_COMMON_H_
#define SRC_APPS_OFFICE_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/gui/control.h"
#include "src/gui/window.h"

namespace apps {

// Scales the bulk galleries; 1.0 yields app control counts in the 4-6K range
// the paper reports for Office (§5.2).
struct OfficeScale {
  double gallery_multiplier = 1.0;

  int Scaled(int n) const {
    int v = static_cast<int>(n * gallery_multiplier);
    return v < 1 ? 1 : v;
  }
};

// The standard 10x6 theme-color grid plus the ten "standard colors" — the
// shared palette that Font Color / Underline Color / Text Outline etc. all
// reference (the canonical merge-node example from the paper).
const std::vector<std::string>& StandardColors();

// Builder helpers. All helpers return borrowed pointers owned by the tree.

// A popup root of Menu type ("<name>" is the menu's accessible name).
std::unique_ptr<gsim::Control> MakeMenuRoot(const std::string& name);

// Adds a ribbon tab item (TabItem with a Pane popup panel). Returns the
// *panel* so callers can fill it. The tab item itself is panel->parent.
gsim::Control* AddRibbonTab(gsim::Control& tab_strip, const std::string& name, bool active);

// Adds a labeled group (Group) inside a ribbon panel.
gsim::Control* AddGroup(gsim::Control& panel, const std::string& name);

// Adds a plain command button.
gsim::Control* AddButton(gsim::Control& parent, const std::string& name,
                         const std::string& command);

// Adds a toggle (checkbox-like button).
gsim::Control* AddToggle(gsim::Control& parent, const std::string& name,
                         const std::string& command);

// Adds a menu-hosting button; returns the popup root to be filled.
gsim::Control* AddMenuButton(gsim::Control& parent, const std::string& name,
                             uia::ControlType type = uia::ControlType::kMenuItem);

// Adds a SplitButton that opens the given shared palette subtree.
gsim::Control* AddSharedPaletteButton(gsim::Control& parent, const std::string& name,
                                      gsim::Control* shared_palette);

// Adds `count` homogeneous gallery items ("<prefix> 1..N") to a popup,
// each a ListItem dispatching "<command>" (source name disambiguates).
void AddGalleryItems(gsim::Control& popup, const std::string& prefix, int count,
                     const std::string& command);

// Adds a dialog-launcher button.
gsim::Control* AddDialogLauncher(gsim::Control& parent, const std::string& name,
                                 const std::string& dialog_id);

// Builds the shared color palette subtree (List of color cells + a
// "More Colors..." launcher). Every cell dispatches `command`; the app
// resolves the *role* (font vs underline vs outline vs fill) from the open
// ancestor chain — the path-dependent semantics of §2.4.
std::unique_ptr<gsim::Control> BuildColorPalette(const std::string& command,
                                                 const std::string& more_dialog_id);

// Creates a dialog window with OK / Cancel buttons appended after `fill`
// runs. `ok_command` (optional) dispatches when OK commits.
std::unique_ptr<gsim::Window> MakeDialog(const std::string& title,
                                         const std::string& ok_command);

// A generic ScrollPattern implementation backed by two doubles; concrete apps
// hook `on_change` to update their viewport.
class SurfaceScroll : public uia::ScrollPattern {
 public:
  using ChangeHook = std::function<void(double h, double v)>;

  SurfaceScroll(bool horizontal, bool vertical, ChangeHook on_change)
      : horizontal_(horizontal), vertical_(vertical), on_change_(std::move(on_change)) {}

  double HorizontalPercent() const override { return horizontal_ ? h_ : kNoScroll; }
  double VerticalPercent() const override { return vertical_ ? v_ : kNoScroll; }
  bool HorizontallyScrollable() const override { return horizontal_; }
  bool VerticallyScrollable() const override { return vertical_; }

  support::Status SetScrollPercent(double horizontal, double vertical) override;
  support::Status ScrollIncrement(double horizontal_delta, double vertical_delta) override;

  // Factory-reset support: jumps back to the origin and fires `on_change` so
  // the app re-derives its viewport (used by Application::ResetToFreshState).
  void ResetPosition() {
    h_ = 0.0;
    v_ = 0.0;
    if (on_change_) {
      on_change_(h_, v_);
    }
  }

 private:
  bool horizontal_;
  bool vertical_;
  double h_ = 0.0;
  double v_ = 0.0;
  ChangeHook on_change_;
};

}  // namespace apps

#endif  // SRC_APPS_OFFICE_COMMON_H_
