// Fuzzy string similarity used by the visit executor's fuzzy control matcher
// (paper §3.4 "Handling unstable UI interaction"): when exact matching fails
// because of name variations, DMI matches by control type, ancestor hierarchy
// and name similarity.
#ifndef SRC_TEXT_SIMILARITY_H_
#define SRC_TEXT_SIMILARITY_H_

#include <cstddef>
#include <string_view>

namespace textutil {

// Classic Levenshtein edit distance.
size_t EditDistance(std::string_view a, std::string_view b);

// 1 - normalized edit distance, in [0,1]; 1.0 means identical.
double NameSimilarity(std::string_view a, std::string_view b);

// Token-set ratio: similarity of the sets of lowercase words, robust to word
// reordering and decorations ("Bold (Ctrl+B)" vs "Bold"). In [0,1].
double TokenSetRatio(std::string_view a, std::string_view b);

// Combined score used by the fuzzy matcher: max of character-level and
// token-set similarity, plus a symmetric whole-word-prefix decoration rule.
double FuzzyScore(std::string_view a, std::string_view b);

// Directional variant for control matching: name variations *decorate* (i.e.
// lengthen) the on-screen name, so the prefix rule applies only when the
// modeled name is a whole-word prefix of the screen name — never the
// reverse. Prevents "Underline Color" (modeled) from matching a visible
// "Underline" button.
double DecorationAwareScore(std::string_view model_name, std::string_view screen_name);

}  // namespace textutil

#endif  // SRC_TEXT_SIMILARITY_H_
