#include "src/text/tokens.h"

#include <algorithm>
#include <cctype>

namespace textutil {
namespace {

bool IsWordChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '\'';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Splits a long word into ~4-character BPE-like chunks.
void EmitWordPieces(std::string_view word, std::vector<std::string>& out) {
  constexpr size_t kChunk = 4;
  if (word.size() <= 6) {  // common short words: one token
    out.emplace_back(word);
    return;
  }
  for (size_t i = 0; i < word.size(); i += kChunk) {
    out.emplace_back(word.substr(i, kChunk));
  }
}

}  // namespace

std::vector<std::string> TokenizePieces(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      // Whitespace fuses into the following word in BPE; it is free here.
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t j = i;
      while (j < n && IsWordChar(text[j])) {
        ++j;
      }
      EmitWordPieces(text.substr(i, j - i), pieces);
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      // o200k groups digit runs roughly in threes.
      size_t j = i;
      while (j < n && IsDigit(text[j])) {
        ++j;
      }
      for (size_t k = i; k < j; k += 3) {
        pieces.emplace_back(text.substr(k, std::min<size_t>(3, j - k)));
      }
      i = j;
      continue;
    }
    // Punctuation / symbol: one token each, but runs of identical separators
    // (e.g. "----") compress into chunks of up to 4.
    size_t j = i;
    while (j < n && text[j] == c) {
      ++j;
    }
    for (size_t k = i; k < j; k += 4) {
      pieces.emplace_back(text.substr(k, std::min<size_t>(4, j - k)));
    }
    i = j;
  }
  return pieces;
}

size_t CountTokens(std::string_view text) {
  size_t total = 0;
  return CountTokensAppend(text, &total);
}

size_t CountTokensAppend(std::string_view segment, size_t* total) {
  // Mirrors TokenizePieces' segmentation, summing piece counts instead of
  // materializing pieces: word runs cost 1 (<=6 chars) or ceil(len/4), digit
  // runs ceil(len/3), same-character separator runs ceil(len/4).
  size_t count = 0;
  size_t i = 0;
  const size_t n = segment.size();
  while (i < n) {
    const char c = segment[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t j = i;
    if (IsWordChar(c)) {
      while (j < n && IsWordChar(segment[j])) {
        ++j;
      }
      const size_t len = j - i;
      count += len <= 6 ? 1 : (len + 3) / 4;
    } else if (IsDigit(c)) {
      while (j < n && IsDigit(segment[j])) {
        ++j;
      }
      count += (j - i + 2) / 3;
    } else {
      while (j < n && segment[j] == c) {
        ++j;
      }
      count += (j - i + 3) / 4;
    }
    i = j;
  }
  *total += count;
  return count;
}

std::string TruncateToTokens(std::string_view text, size_t max_tokens) {
  if (max_tokens == 0) {
    return "";
  }
  std::vector<std::string> pieces;
  size_t used = 0;
  size_t end_offset = 0;
  size_t i = 0;
  const size_t n = text.size();
  // Re-run the segmentation, tracking byte offsets, so we can cut at a
  // token boundary.
  while (i < n && used < max_tokens) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t j = i;
    if (IsWordChar(c)) {
      while (j < n && IsWordChar(text[j])) {
        ++j;
      }
      const size_t len = j - i;
      const size_t cost = len <= 6 ? 1 : (len + 3) / 4;
      if (used + cost > max_tokens) {
        break;
      }
      used += cost;
    } else if (IsDigit(c)) {
      while (j < n && IsDigit(text[j])) {
        ++j;
      }
      const size_t cost = (j - i + 2) / 3;
      if (used + cost > max_tokens) {
        break;
      }
      used += cost;
    } else {
      while (j < n && text[j] == c) {
        ++j;
      }
      const size_t cost = (j - i + 3) / 4;
      if (used + cost > max_tokens) {
        break;
      }
      used += cost;
    }
    end_offset = j;
    i = j;
  }
  if (end_offset >= n) {
    return std::string(text);
  }
  return std::string(text.substr(0, end_offset)) + "…";
}

}  // namespace textutil
