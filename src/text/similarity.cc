#include "src/text/similarity.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

namespace textutil {
namespace {

std::string ToLowerCopy(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::set<std::string> WordSet(std::string_view text) {
  std::set<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.insert(current);
      current.clear();
    }
  }
  if (!current.empty()) {
    words.insert(current);
  }
  return words;
}

}  // namespace

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) {
    std::swap(a, b);
  }
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double NameSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  const size_t longest = std::max(a.size(), b.size());
  const size_t dist = EditDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

double TokenSetRatio(std::string_view a, std::string_view b) {
  const auto wa = WordSet(a);
  const auto wb = WordSet(b);
  if (wa.empty() && wb.empty()) {
    return 1.0;
  }
  if (wa.empty() || wb.empty()) {
    return 0.0;
  }
  size_t inter = 0;
  for (const auto& w : wa) {
    if (wb.count(w) > 0) {
      ++inter;
    }
  }
  const size_t uni = wa.size() + wb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

// True if `prefix` is a whole-word prefix of `full` (case-insensitive).
bool IsWholeWordPrefix(std::string_view prefix, std::string_view full) {
  const std::string lo = ToLowerCopy(prefix);
  const std::string hi = ToLowerCopy(full);
  if (lo.empty() || hi.size() <= lo.size() || hi.compare(0, lo.size(), lo) != 0) {
    return false;
  }
  return std::isalnum(static_cast<unsigned char>(hi[lo.size()])) == 0;
}

}  // namespace

double FuzzyScore(std::string_view a, std::string_view b) {
  double score = std::max(NameSimilarity(a, b), TokenSetRatio(a, b));
  // Decoration rule: UI name variations are nearly always suffix decorations
  // ("Bold" -> "Bold (Ctrl+B)", "Bold...", "Bold ").
  if (IsWholeWordPrefix(a, b) || IsWholeWordPrefix(b, a)) {
    score = std::max(score, 0.93);
  }
  return score;
}

double DecorationAwareScore(std::string_view model_name, std::string_view screen_name) {
  double score = std::max(NameSimilarity(model_name, screen_name),
                          TokenSetRatio(model_name, screen_name));
  if (IsWholeWordPrefix(model_name, screen_name)) {
    score = std::max(score, 0.93);
  }
  return score;
}

}  // namespace textutil
