// Approximate token accounting.
//
// The paper reports context overhead in tokens under OpenAI's o200k_base
// encoding (≈15 tokens per serialized control, §5.4). We do not ship a BPE
// vocabulary; instead we approximate with a word/punctuation segmenter whose
// statistics track o200k_base closely on UI-description text: common short
// words are one token, long words cost ceil(len/4) tokens, digits group in
// threes, punctuation is one token each.
#ifndef SRC_TEXT_TOKENS_H_
#define SRC_TEXT_TOKENS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace textutil {

// Approximate token count of `text`. Single streaming pass, no allocation;
// always equal to TokenizePieces(text).size().
size_t CountTokens(std::string_view text);

// Streaming segment counting: adds CountTokens(segment) to `*total` and
// returns the segment's own count. Segment sums equal the count of the
// concatenation whenever the split points fall on whitespace (the segmenter
// resets its run state there) — which is how prompt assembly splits its
// static and dynamic segments (DESIGN.md §9).
size_t CountTokensAppend(std::string_view segment, size_t* total);

// Splits text into the approximate token-sized pieces counted by CountTokens.
// Materializes every piece — the reference (and pre-streaming) implementation,
// kept for tests and token-budget truncation.
std::vector<std::string> TokenizePieces(std::string_view text);

// Truncates `text` to at most `max_tokens` approximate tokens, appending an
// ellipsis marker when content was dropped.
std::string TruncateToTokens(std::string_view text, size_t max_tokens);

}  // namespace textutil

#endif  // SRC_TEXT_TOKENS_H_
