#include "src/gui/control.h"

#include <atomic>
#include <cassert>

#include "src/support/strings.h"

#include "src/gui/application.h"
#include "src/gui/window.h"

namespace gsim {
namespace {

// ----- Generic pattern adapters --------------------------------------------
// These glue UIA pattern calls to the control's click semantics, so that any
// clickable control is also drivable through patterns (as UIA providers do).

class InvokeAdapter : public uia::InvokePattern {
 public:
  explicit InvokeAdapter(Control* control) : control_(control) {}
  support::Status Invoke() override {
    Application* app = control_->application();
    if (app == nullptr) {
      return support::InternalError("control is not attached to an application");
    }
    return app->Click(*control_);
  }

 private:
  Control* control_;
};

class ToggleAdapter : public uia::TogglePattern {
 public:
  explicit ToggleAdapter(Control* control) : control_(control) {}
  uia::ToggleState State() const override {
    return control_->toggled() ? uia::ToggleState::kOn : uia::ToggleState::kOff;
  }
  support::Status Toggle() override {
    Application* app = control_->application();
    if (app == nullptr) {
      return support::InternalError("control is not attached to an application");
    }
    return app->Click(*control_);
  }

 private:
  Control* control_;
};

class ExpandCollapseAdapter : public uia::ExpandCollapsePattern {
 public:
  explicit ExpandCollapseAdapter(Control* control) : control_(control) {}
  uia::ExpandCollapseState State() const override {
    if (control_->popup() == nullptr) {
      return uia::ExpandCollapseState::kLeafNode;
    }
    return control_->popup_open() ? uia::ExpandCollapseState::kExpanded
                                  : uia::ExpandCollapseState::kCollapsed;
  }
  support::Status Expand() override {
    if (control_->popup() == nullptr) {
      return support::FailedPreconditionError("control has no expandable content");
    }
    if (control_->popup_open()) {
      return support::Status::Ok();
    }
    return control_->application()->Click(*control_);
  }
  support::Status Collapse() override {
    if (!control_->popup_open()) {
      return support::Status::Ok();
    }
    control_->application()->ClosePopupsFrom(*control_);
    return support::Status::Ok();
  }

 private:
  Control* control_;
};

class SelectionItemAdapter : public uia::SelectionItemPattern {
 public:
  explicit SelectionItemAdapter(Control* control) : control_(control) {}
  bool IsSelected() const override { return control_->selected(); }
  support::Status Select() override { return control_->application()->SelectControl(*control_, /*additive=*/false); }
  support::Status AddToSelection() override {
    return control_->application()->SelectControl(*control_, /*additive=*/true);
  }
  support::Status RemoveFromSelection() override {
    return control_->application()->DeselectControl(*control_);
  }

 private:
  Control* control_;
};

class SelectionAdapter : public uia::SelectionPattern {
 public:
  explicit SelectionAdapter(Control* control) : control_(control) {}
  bool CanSelectMultiple() const override {
    // Grids and lists allow multi-select; tab strips are exclusive.
    return control_->Type() != uia::ControlType::kTab;
  }
  std::vector<uia::Element*> GetSelection() const override {
    std::vector<uia::Element*> out;
    const_cast<Control*>(control_)->WalkStatic([&out](Control& c) {
      if (c.selected()) {
        out.push_back(&c);
      }
    });
    return out;
  }

 private:
  Control* control_;
};

class ValueAdapter : public uia::ValuePattern {
 public:
  explicit ValueAdapter(Control* control) : control_(control) {}
  std::string GetValue() const override { return control_->text_value(); }
  bool IsReadOnly() const override { return !control_->IsEnabled(); }
  support::Status SetValue(const std::string& value) override {
    if (!control_->IsEnabled()) {
      return support::FailedPreconditionError("edit control '" + control_->TrueName() +
                                              "' is disabled");
    }
    control_->set_text_value(value);
    control_->application()->OnValueChanged(*control_);
    return support::Status::Ok();
  }

 private:
  Control* control_;
};

class RangeValueAdapter : public uia::RangeValuePattern {
 public:
  explicit RangeValueAdapter(Control* control) : control_(control) {}
  double Value() const override { return control_->range_value(); }
  double Minimum() const override { return control_->range_min(); }
  double Maximum() const override { return control_->range_max(); }
  support::Status SetValue(double value) override {
    if (!control_->IsEnabled()) {
      return support::FailedPreconditionError("range control '" + control_->TrueName() +
                                              "' is disabled");
    }
    if (value < control_->range_min() || value > control_->range_max()) {
      return support::InvalidArgumentError(support::Format(
          "value %.2f outside [%.2f, %.2f] for '%s'", value, control_->range_min(),
          control_->range_max(), control_->TrueName().c_str()));
    }
    control_->set_range_value(value);
    control_->application()->OnValueChanged(*control_);
    return support::Status::Ok();
  }

 private:
  Control* control_;
};

}  // namespace

uint64_t Control::NextRuntimeId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Control::Control(std::string name, uia::ControlType type)
    : name_(std::move(name)), type_(type), runtime_id_(NextRuntimeId()) {}

Control::~Control() = default;

std::string Control::Name() const {
  if (app_ != nullptr) {
    return app_->DecorateName(*this);
  }
  return name_;
}

bool Control::IsOffscreen() const {
  // Forced-offscreen is inherited: a hidden pane hides its whole subtree.
  for (const Control* node = this; node != nullptr; node = node->parent_) {
    if (node->forced_offscreen_) {
      return true;
    }
  }
  // Slow-loading popups stay offscreen until their reveal tick passes.
  if (app_ != nullptr && app_->IsPendingReveal(*this)) {
    return true;
  }
  // Otherwise: attachment (Children()) already encodes popup visibility, so
  // anything reachable from an open window's root is on-screen.
  return false;
}

std::vector<uia::Element*> Control::Children() const {
  std::vector<uia::Element*> out;
  out.reserve(child_ptrs_.size() + 1);
  for (Control* c : child_ptrs_) {
    out.push_back(c);
  }
  if (popup_open_) {
    Control* p = popup();
    if (p != nullptr) {
      out.push_back(p);
    }
  }
  return out;
}

uia::Element* Control::Parent() const {
  // Floating surfaces present as top-level popups (see SetFloating).
  return floating_ ? nullptr : parent_;
}

uia::Pattern* Control::GetPattern(uia::PatternId id) {
  auto it = patterns_.find(id);
  if (it != patterns_.end()) {
    return it->second.get();
  }
  // Lazily materialize generic adapters appropriate to this control.
  std::unique_ptr<uia::Pattern> adapter;
  switch (id) {
    case uia::PatternId::kInvoke:
      if (click_effect_ != ClickEffect::kNone) {
        adapter = std::make_unique<InvokeAdapter>(this);
      }
      break;
    case uia::PatternId::kToggle:
      if (click_effect_ == ClickEffect::kToggle || type_ == uia::ControlType::kCheckBox) {
        adapter = std::make_unique<ToggleAdapter>(this);
      }
      break;
    case uia::PatternId::kExpandCollapse:
      if (popup() != nullptr) {
        adapter = std::make_unique<ExpandCollapseAdapter>(this);
      }
      break;
    case uia::PatternId::kSelectionItem:
      if (click_effect_ == ClickEffect::kSelect ||
          type_ == uia::ControlType::kListItem || type_ == uia::ControlType::kTabItem ||
          type_ == uia::ControlType::kRadioButton || type_ == uia::ControlType::kDataItem ||
          type_ == uia::ControlType::kTreeItem) {
        adapter = std::make_unique<SelectionItemAdapter>(this);
      }
      break;
    case uia::PatternId::kValue:
      if (type_ == uia::ControlType::kEdit || type_ == uia::ControlType::kComboBox ||
          type_ == uia::ControlType::kDataItem) {
        adapter = std::make_unique<ValueAdapter>(this);
      }
      break;
    case uia::PatternId::kRangeValue:
      if (type_ == uia::ControlType::kSlider || type_ == uia::ControlType::kSpinner ||
          type_ == uia::ControlType::kProgressBar) {
        adapter = std::make_unique<RangeValueAdapter>(this);
      }
      break;
    case uia::PatternId::kSelection:
      if (type_ == uia::ControlType::kList || type_ == uia::ControlType::kDataGrid ||
          type_ == uia::ControlType::kTab || type_ == uia::ControlType::kTree ||
          type_ == uia::ControlType::kTable) {
        adapter = std::make_unique<SelectionAdapter>(this);
      }
      break;
    default:
      break;
  }
  if (adapter == nullptr) {
    return nullptr;
  }
  uia::Pattern* raw = adapter.get();
  patterns_[id] = std::move(adapter);
  return raw;
}

Control* Control::AddChild(std::unique_ptr<Control> child) {
  assert(child != nullptr);
  child->parent_ = this;
  if (window_ != nullptr || app_ != nullptr) {
    child->PropagateContext(window_, app_);
  }
  Control* raw = child.get();
  children_.push_back(std::move(child));
  child_ptrs_.push_back(raw);
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // dynamic structure growth
  }
  return raw;
}

Control* Control::NewChild(std::string name, uia::ControlType type) {
  return AddChild(std::make_unique<Control>(std::move(name), type));
}

std::unique_ptr<Control> Control::RemoveChild(Control* child) {
  assert(app_ == nullptr || !app_->fresh_state_captured());
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() != child) {
      continue;
    }
    std::unique_ptr<Control> removed = std::move(children_[i]);
    children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
    child_ptrs_.erase(child_ptrs_.begin() + static_cast<ptrdiff_t>(i));
    removed->parent_ = nullptr;
    if (app_ != nullptr) {
      app_->BumpUiGeneration();
    }
    return removed;
  }
  return nullptr;
}

Control* Control::SetPopup(std::unique_ptr<Control> popup_root) {
  assert(popup_root != nullptr);
  popup_root->parent_ = this;
  if (window_ != nullptr || app_ != nullptr) {
    popup_root->PropagateContext(window_, app_);
  }
  if (click_effect_ == ClickEffect::kNone) {
    click_effect_ = ClickEffect::kRevealPopup;
  }
  owned_popup_ = std::move(popup_root);
  return owned_popup_.get();
}

void Control::SetSharedPopup(Control* shared_root) {
  assert(shared_root != nullptr);
  shared_popup_ = shared_root;
  if (click_effect_ == ClickEffect::kNone) {
    click_effect_ = ClickEffect::kRevealPopup;
  }
}

Control* Control::SetPopupPersistent(bool persistent) {
  popup_persistent_ = persistent;
  return this;
}

Control* Control::SetAutomationId(std::string id) {
  automation_id_ = std::move(id);
  return this;
}
Control* Control::SetHelpText(std::string text) {
  help_text_ = std::move(text);
  return this;
}
Control* Control::SetEnabled(bool enabled) {
  if (enabled_ != enabled) {
    enabled_ = enabled;
    if (app_ != nullptr) {
      app_->BumpUiGeneration();  // [disabled] markers feed the screen listing
    }
  }
  return this;
}
Control* Control::SetClickEffect(ClickEffect effect) {
  click_effect_ = effect;
  return this;
}
Control* Control::SetCommand(std::string command) {
  command_ = std::move(command);
  if (click_effect_ == ClickEffect::kNone) {
    click_effect_ = ClickEffect::kCommand;
  }
  return this;
}
Control* Control::SetDialogId(std::string dialog_id) {
  dialog_id_ = std::move(dialog_id);
  click_effect_ = ClickEffect::kOpenDialog;
  return this;
}
Control* Control::SetCloseDisposition(CloseDisposition d) {
  close_disposition_ = d;
  click_effect_ = ClickEffect::kCloseWindow;
  return this;
}
Control* Control::SetRevealTarget(Control* target) {
  reveal_target_ = target;
  click_effect_ = ClickEffect::kRevealExisting;
  return this;
}
Control* Control::SetRect(Rect rect) {
  rect_ = rect;
  return this;
}

void Control::AttachPattern(std::unique_ptr<uia::Pattern> pattern) {
  assert(pattern != nullptr);
  patterns_[pattern->id()] = std::move(pattern);
}

void Control::SetPopupOpen(bool open) {
  popup_open_ = open;
  if (app_ != nullptr) {
    app_->BumpUiGeneration();
  }
  Control* p = popup();
  if (p == nullptr) {
    return;
  }
  if (open) {
    // A shared subtree adopts the opening host as its parent so ancestor
    // paths reflect the actual access path.
    p->parent_ = this;
    p->PropagateContext(window_, app_);
  }
}

void Control::SetForcedOffscreen(bool offscreen) {
  forced_offscreen_ = offscreen;
  if (app_ != nullptr) {
    app_->BumpUiGeneration();
  }
}

void Control::RenameTo(std::string new_name) {
  name_ = std::move(new_name);
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // names feed synthesized control ids
  }
}

void Control::set_toggled(bool t) {
  if (toggled_ == t) {
    return;
  }
  toggled_ = t;
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // [on] markers feed the screen listing
  }
}

void Control::set_selected(bool s) {
  if (selected_ == s) {
    return;
  }
  selected_ = s;
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // [selected] markers feed the screen listing
  }
}

void Control::set_text_value(std::string v) {
  if (text_value_ == v) {
    return;
  }
  text_value_ = std::move(v);
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // edit values feed the passive data payload
  }
}

void Control::set_range_value(double v) {
  if (range_value_ == v) {
    return;
  }
  range_value_ = v;
  if (app_ != nullptr) {
    app_->BumpUiGeneration();  // range values feed the passive data payload
  }
}

Control::FreshState Control::CaptureFreshState() const {
  FreshState s;
  s.name = name_;
  s.enabled = enabled_;
  s.forced_offscreen = forced_offscreen_;
  s.popup_open = popup_open_;
  s.toggled = toggled_;
  s.selected = selected_;
  s.text_value = text_value_;
  s.range_value = range_value_;
  s.child_count = children_.size();
  s.parent = parent_;
  s.window = window_;
  return s;
}

void Control::RestoreFreshState(const FreshState& s) {
  name_ = s.name;
  enabled_ = s.enabled;
  forced_offscreen_ = s.forced_offscreen;
  popup_open_ = s.popup_open;
  toggled_ = s.toggled;
  selected_ = s.selected;
  text_value_ = s.text_value;
  range_value_ = s.range_value;
  // Children added after capture (dynamic structure growth) are dropped so
  // the static tree matches a freshly built one.
  if (children_.size() > s.child_count) {
    children_.resize(s.child_count);
    child_ptrs_.resize(s.child_count);
  }
  parent_ = s.parent;
  window_ = s.window;
}

void Control::SetWindow(Window* window) { window_ = window; }

void Control::SetApplication(Application* app) { app_ = app; }

void Control::PropagateContext(Window* window, Application* app) {
  window_ = window;
  app_ = app;
  for (auto& child : children_) {
    child->PropagateContext(window, app);
  }
  if (owned_popup_ != nullptr) {
    owned_popup_->PropagateContext(window, app);
  }
}

void Control::WalkStatic(const std::function<void(Control&)>& fn) {
  fn(*this);
  for (auto& child : children_) {
    child->WalkStatic(fn);
  }
  if (owned_popup_ != nullptr) {
    owned_popup_->WalkStatic(fn);
  }
}

}  // namespace gsim
