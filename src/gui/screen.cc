#include "src/gui/screen.h"

#include "src/support/strings.h"
#include "src/uia/tree.h"

namespace gsim {

std::string IndexToLabel(size_t index) {
  std::string label;
  size_t n = index;
  while (true) {
    label.insert(label.begin(), static_cast<char>('A' + n % 26));
    if (n < 26) {
      break;
    }
    n = n / 26 - 1;
  }
  return label;
}

void ScreenView::Refresh() {
  labeled_.clear();
  // Collect all visible (attached, onscreen) controls across open windows,
  // topmost window last so hit-testing prefers it.
  std::vector<Control*> visible;
  for (Window* w : app_->OpenWindows()) {
    uia::Walk(w->root(), [&](uia::Element& e, int) {
      if (e.IsOffscreen()) {
        return false;  // offscreen subtree is invisible entirely
      }
      visible.push_back(static_cast<Control*>(&e));
      return true;
    });
  }
  // Deterministic grid layout: 14 columns x 28 rows across the desktop.
  constexpr int kCellWidth = kDesktopWidth / 14;
  constexpr int kCellHeight = 26;
  labeled_.reserve(visible.size());
  for (size_t i = 0; i < visible.size(); ++i) {
    Control* c = visible[i];
    const int col = static_cast<int>(i % 14);
    const int row = static_cast<int>((i / 14) % 28);
    c->SetRect(Rect{col * kCellWidth, row * kCellHeight, kCellWidth - 4, kCellHeight - 4});
    labeled_.push_back(LabeledControl{IndexToLabel(i), c});
  }
}

Control* ScreenView::FindByLabel(const std::string& label) const {
  for (const auto& lc : labeled_) {
    if (lc.label == label) {
      return lc.control;
    }
  }
  return nullptr;
}

std::string ScreenView::LabelOf(const Control& control) const {
  for (const auto& lc : labeled_) {
    if (lc.control == &control) {
      return lc.label;
    }
  }
  return "";
}

Control* ScreenView::HitTest(Point p) const {
  // Later entries belong to windows higher in the z-order; scan backward.
  for (auto it = labeled_.rbegin(); it != labeled_.rend(); ++it) {
    if (it->control->rect().Contains(p)) {
      return it->control;
    }
  }
  return nullptr;
}

std::string ScreenView::RenderListing(size_t max_entries) const {
  std::string out;
  size_t n = labeled_.size();
  if (max_entries > 0 && max_entries < n) {
    n = max_entries;
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& lc = labeled_[i];
    out += lc.label;
    out += ' ';
    out += lc.control->Name();
    out += " (";
    out += uia::ControlTypeName(lc.control->Type());
    out += ")";
    if (!lc.control->IsEnabled()) {
      out += " [disabled]";
    }
    if (lc.control->selected()) {
      out += " [selected]";
    }
    if (lc.control->toggled()) {
      out += " [on]";
    }
    out += '\n';
  }
  if (n < labeled_.size()) {
    out += support::Format("... (%zu more controls)\n", labeled_.size() - n);
  }
  return out;
}

}  // namespace gsim
