// Screen geometry for the GUI simulator. Coordinates are virtual pixels in a
// fixed 1280x800 desktop; the imperative input path (used by the GUI-only
// baseline) addresses controls by these coordinates and is therefore exposed
// to grounding noise, exactly like a vision-based agent.
#ifndef SRC_GUI_GEOMETRY_H_
#define SRC_GUI_GEOMETRY_H_

namespace gsim {

struct Point {
  int x = 0;
  int y = 0;
};

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  bool Contains(Point p) const {
    return p.x >= x && p.x < x + width && p.y >= y && p.y < y + height;
  }
  Point Center() const { return Point{x + width / 2, y + height / 2}; }
  bool Empty() const { return width <= 0 || height <= 0; }
};

inline constexpr int kDesktopWidth = 1280;
inline constexpr int kDesktopHeight = 800;

}  // namespace gsim

#endif  // SRC_GUI_GEOMETRY_H_
