#include "src/gui/window.h"

#include "src/gui/application.h"

namespace gsim {

Window::Window(std::string title, bool modal)
    : title_(std::move(title)),
      modal_(modal),
      root_(std::make_unique<Control>(title_, uia::ControlType::kWindow)) {
  root_->SetWindow(this);
}

void Window::SetApplication(Application* app) { root_->PropagateContext(this, app); }

Control* Window::FindButton(CloseDisposition disposition) {
  Control* found = nullptr;
  root_->WalkStatic([&](Control& c) {
    if (found == nullptr && c.click_effect() == ClickEffect::kCloseWindow &&
        c.close_disposition() == disposition) {
      found = &c;
    }
  });
  return found;
}

Control* Window::FindDisposeButton() {
  // OK (commit) first, then Close (dismiss), then Cancel.
  if (Control* ok = FindButton(CloseDisposition::kCommit)) {
    return ok;
  }
  if (Control* close = FindButton(CloseDisposition::kDismiss)) {
    return close;
  }
  return FindButton(CloseDisposition::kCancel);
}

}  // namespace gsim
