// Window: a top-level surface (main window, dialog, child window) owning a
// control tree. Dialog windows are created eagerly at application build time
// and toggled open/closed, so control runtime ids are stable across openings —
// matching how UIA elements persist for the life of a dialog instance.
#ifndef SRC_GUI_WINDOW_H_
#define SRC_GUI_WINDOW_H_

#include <memory>
#include <string>

#include "src/gui/control.h"

namespace gsim {

class Application;

class Window {
 public:
  // Creates a window whose root control has type kWindow and the given title.
  Window(std::string title, bool modal);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  Control& root() { return *root_; }
  const Control& root() const { return *root_; }

  const std::string& title() const { return title_; }
  bool modal() const { return modal_; }
  bool is_open() const { return open_; }

  // Open/close bookkeeping is driven by Application; these only flip state.
  void SetOpen(bool open) { open_ = open; }

  void SetApplication(Application* app);

  // Finds the button the executor should press to dispose of this window,
  // honoring the paper's priority OK > Close > Cancel (§4.3), "favoring the
  // saving of modifications". Returns nullptr if the window has none.
  Control* FindDisposeButton();

  // Finds a close button with the given disposition, or nullptr.
  Control* FindButton(CloseDisposition disposition);

 private:
  std::string title_;
  bool modal_;
  bool open_ = false;
  std::unique_ptr<Control> root_;
};

}  // namespace gsim

#endif  // SRC_GUI_WINDOW_H_
