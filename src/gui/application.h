// Application: the simulated desktop application runtime.
//
// Owns the main window, eagerly-registered dialog windows, and shared popup
// subtrees (e.g. a color palette referenced from several menus — the source of
// merge nodes in the UI Navigation Graph). Interprets clicks, key chords and
// text input; dispatches functional commands to the concrete app subclass
// (WordSim / ExcelSim / PpointSim), which mutates its document model.
#ifndef SRC_GUI_APPLICATION_H_
#define SRC_GUI_APPLICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/gui/control.h"
#include "src/gui/window.h"
#include "src/support/status.h"
#include "src/uia/element.h"

namespace gsim {

class InstabilityInjector;

// Interaction statistics, used for modeling-cost and step accounting.
struct ActionStats {
  uint64_t clicks = 0;
  uint64_t key_chords = 0;
  uint64_t text_inputs = 0;
  uint64_t drags = 0;
  uint64_t commands = 0;
};

// FNV-1a accumulator used for UIA-tree state checksums (pool reset
// verification, DESIGN.md §10). Deliberately excludes runtime ids, which
// differ between instances of the same application.
class StateHash {
 public:
  void MixU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>(v >> (i * 8)));
    }
  }
  void MixBool(bool b) { MixByte(b ? 1 : 0); }
  void MixDouble(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
    __builtin_memcpy(&bits, &d, sizeof(bits));
    MixU64(bits);
  }
  void Mix(const std::string& s) {
    MixU64(s.size());
    for (char c : s) {
      MixByte(static_cast<uint8_t>(c));
    }
  }
  // Bulk variant for large payloads (model-artifact checksums, DESIGN.md
  // §14): FNV-1a over 8-byte words with a byte-FNV tail. The per-byte chain
  // is inherently serial (each multiply depends on the last), so word-sized
  // steps are what make checksumming a multi-megabyte artifact cheap enough
  // for the cold-load path. Not interchangeable with Mix() — word-FNV and
  // byte-FNV digests differ by construction.
  void MixBytes(const char* data, size_t n) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      uint64_t word = 0;
      __builtin_memcpy(&word, data + i, 8);
      h_ ^= word;
      h_ *= 1099511628211ull;
    }
    for (; i < n; ++i) {
      MixByte(static_cast<uint8_t>(data[i]));
    }
  }
  uint64_t digest() const { return h_; }

 private:
  void MixByte(uint8_t b) {
    h_ ^= b;
    h_ *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
  uint64_t h_ = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
};

class Application {
 public:
  explicit Application(std::string name);
  virtual ~Application();

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  const std::string& name() const { return name_; }

  // ----- structure -----------------------------------------------------------
  Window& main_window() { return *main_window_; }

  // Registers a dialog window under `dialog_id`; controls with
  // SetDialogId(dialog_id) open it. The window is owned by the application.
  Window* RegisterDialog(const std::string& dialog_id, std::unique_ptr<Window> window);
  Window* FindDialog(const std::string& dialog_id);

  // Registers a subtree shared between several popup hosts (merge node).
  Control* RegisterSharedSubtree(std::unique_ptr<Control> root);

  // Stable enumeration of registered dialogs (sorted by dialog id) and shared
  // subtrees (registration order). Read-only structural views used by the
  // delta ripper's checksum walk (DESIGN.md §15).
  std::vector<std::pair<std::string, const Window*>> DialogEntries() const;
  std::vector<const Control*> SharedSubtreeRoots() const;

  // ----- accessibility --------------------------------------------------------
  // The desktop root: its children are the roots of all open windows, topmost
  // last. This is what the ripper, the DMI executor and the baseline labeler
  // capture.
  uia::Element& AccessibilityRoot();

  // Topmost open window (modal dialogs stack above the main window).
  Window* TopWindow();
  std::vector<Window*> OpenWindows();

  // True if the control sits on an open window with every popup host on its
  // ancestor chain open (i.e. it can actually be clicked right now).
  bool IsAttached(const Control& control) const;

  // ----- interaction (the imperative mechanism) -------------------------------
  // Interprets one click on `control` per its ClickEffect.
  support::Status Click(Control& control);

  // Key chord: "ESC", "ENTER", "CTRL+A", ... ESC is handled generically
  // (closes the top transient popup, else cancels the top dialog); everything
  // else goes to OnKeyChord.
  support::Status PressKey(const std::string& chord);

  // Replaces the focused edit control's value (a keyboard "type-over").
  support::Status TypeText(const std::string& text);

  // Transient pattern-failure gate (Hostile instability, DESIGN.md §11):
  // kUnavailable (retryable, with ErrorDetail naming `pattern_name`) while
  // `control` sits inside an open failure window; OK otherwise. Click()
  // applies it to Invoke/Toggle itself; pattern adapters that bypass Click()
  // (ScrollPattern) call it explicitly.
  support::Status CheckPatternAvailable(Control& control, const char* pattern_name);

  // Selection plumbing used by SelectionItem adapters and by Click(kSelect).
  support::Status SelectControl(Control& control, bool additive);
  support::Status DeselectControl(Control& control);

  // Closes the popup opened from `host` and everything above it.
  void ClosePopupsFrom(Control& host);
  void CloseAllPopups();

  // Closes `window` (dialogs only; the main window stays). `commit` tells
  // whether OK-semantics were used.
  void CloseWindow(Window& window, bool commit);

  // Restores the initial UI state: closes dialogs and popups, clears focus
  // and the external-state flag. (The ripper uses this as its cheap
  // "restart"; it does not reset the document model.)
  void ResetUiState();

  // ----- factory reset / application pooling (DESIGN.md §10) -----------------
  // Snapshots every control's mutable state right after construction so a
  // pooled instance can later be recycled to an as-constructed state.
  // Idempotent: only the first call records.
  void CaptureFreshState();
  bool fresh_state_captured() const { return fresh_captured_; }

  // Full factory reset: detaches the instability injector, runs
  // ResetUiState(), restores every captured control snapshot, clears the
  // logical clock / reveal schedule / action stats, and asks the concrete app
  // to rebuild its document model (OnFactoryReset). Requires a prior
  // CaptureFreshState(). The UI generation stays monotonic (it is bumped, not
  // reset) so generation-keyed caches never alias across leases.
  void ResetToFreshState();

  // Checksum of everything behavior-relevant: the full static control tree
  // (names, values, toggle/selection/popup state), open windows, focus,
  // external flag, logical clock, action stats, and the concrete app's
  // document model (AppStateDigest). Runtime ids and the UI generation are
  // excluded — they differ between a fresh and a pooled-and-reset instance by
  // construction. "reset == fresh" means equal checksums.
  uint64_t UiaStateChecksum();

  // ----- state ---------------------------------------------------------------
  Control* focused() const { return focused_; }
  void SetFocus(Control* control);

  // True after a kExternal control was clicked; every further interaction
  // fails until ResetUiState() (the app "left" to a browser).
  bool in_external_state() const { return external_state_; }

  const ActionStats& stats() const { return stats_; }
  ActionStats& mutable_stats() { return stats_; }

  // Logical clock advanced by event-loop turns; slow-loading popups become
  // visible only at a later tick.
  uint64_t current_tick() const { return tick_; }
  void Tick() {
    ++tick_;
    BumpUiGeneration();  // reveal ticks change what is on screen
  }

  // ----- UI-state generation -----------------------------------------------
  // Monotonic counter bumped by every mutation that can change the visible
  // accessibility tree or any synthesized control identifier (clicks, key
  // chords, popup/window open/close, renames, scroll-driven occlusion, logical
  // ticks). Capture caches (ripper::VisibleIndex) are valid exactly while the
  // generation is unchanged. Not thread-safe: an Application instance is
  // confined to one thread (see DESIGN.md "Performance architecture").
  uint64_t ui_generation() const { return ui_generation_; }
  void BumpUiGeneration() { ++ui_generation_; }

  // ----- window events ---------------------------------------------------------
  // UIA-style window listeners (§4.1: "New top-level or modal windows are
  // detected via process_id and window listeners"). Fired on dialog open and
  // close; the main window never fires.
  using WindowListener = std::function<void(Window&, bool opened)>;
  void AddWindowListener(WindowListener listener) {
    window_listeners_.push_back(std::move(listener));
  }

  // ----- instability -----------------------------------------------------------
  // The injector is borrowed; pass nullptr to disable (default).
  void SetInstability(InstabilityInjector* injector) {
    instability_ = injector;
    BumpUiGeneration();  // decoration changes every accessibility name
  }
  InstabilityInjector* instability() const { return instability_; }

  // Name as seen through the accessibility API right now (may be decorated
  // by the injector: suffixes, shortcut hints, ellipses).
  std::string DecorateName(const Control& control) const;

  // ----- hooks for concrete applications --------------------------------------
  // Functional endpoint dispatch. `source` is the clicked control; concrete
  // apps use its open ancestor chain for path-dependent semantics.
  virtual support::Status ExecuteCommand(Control& source, const std::string& command);

  // Non-ESC key chords (ENTER commits, shortcuts, ...).
  virtual support::Status OnKeyChord(const std::string& chord);

  // An edit control's value changed (typing or ValuePattern::SetValue).
  virtual void OnValueChanged(Control& control);

  // A control was (de)selected; apps use this for context-dependent UI
  // (e.g. PowerPoint's Picture Format tab appears when an image is selected).
  virtual void OnSelectionChanged(Control& control);

  // Called at the end of ResetUiState(); apps restore default pane
  // visibility and other app-managed UI state here.
  virtual void OnUiReset();

  // Called at the end of ResetToFreshState(); concrete apps rebuild their
  // document model to the freshly-constructed state here.
  virtual void OnFactoryReset();

  // Mixes the concrete app's document model into UiaStateChecksum(), so reset
  // verification also covers state that is not visible through control fields
  // (cells, paragraphs, slides, pending dialog values, ...).
  virtual void AppStateDigest(StateHash& hash) const;

  // Names of open popup hosts / windows containing `control`, outermost
  // first. Lets commands resolve path-dependent meaning ("Font Color" vs
  // "Underline Color" hosting the same palette).
  std::vector<std::string> OpenAncestorNames(const Control& control) const;

  // Slow-load support: the control is invisible until this tick.
  void SetRevealTick(Control& control, uint64_t tick);
  bool IsPendingReveal(const Control& control) const;

 protected:
  // Subclasses call this once their main window tree is built.
  void FinalizeMainWindow();

 private:
  class DesktopRoot;

  // Visits every statically owned control: main window, all registered
  // dialogs (open or not), and all shared subtrees. Deterministic order.
  void WalkAllControls(const std::function<void(Control&)>& fn);

  // Closes transient popups that do not contain `keep`; pass nullptr to
  // close all.
  void ClosePopupsNotContaining(const Control* keep);
  bool PopupChainContains(Control* host, const Control& c) const;

  support::Status ClickImpl(Control& control);

  std::string name_;
  std::unique_ptr<Window> main_window_;
  std::map<std::string, std::unique_ptr<Window>> dialogs_;
  std::vector<std::unique_ptr<Control>> shared_subtrees_;
  std::vector<Window*> open_window_stack_;  // main window first
  std::vector<Control*> open_popup_hosts_;  // transient menus, innermost last

  std::unique_ptr<DesktopRoot> desktop_root_;
  Control* focused_ = nullptr;
  bool external_state_ = false;
  uint64_t tick_ = 0;
  uint64_t ui_generation_ = 0;
  ActionStats stats_;
  InstabilityInjector* instability_ = nullptr;
  std::vector<WindowListener> window_listeners_;
  std::map<uint64_t, uint64_t> reveal_ticks_;  // runtime id -> visible-at tick

  // Factory-reset snapshots (CaptureFreshState). Controls are never removed
  // once captured, so the raw pointers stay valid for the app's lifetime.
  std::vector<std::pair<Control*, Control::FreshState>> fresh_controls_;
  size_t fresh_listener_count_ = 0;
  bool fresh_captured_ = false;
};

}  // namespace gsim

#endif  // SRC_GUI_APPLICATION_H_
