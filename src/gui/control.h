// Control: one UI widget in the simulated application.
//
// A Control implements the uia::Element contract and carries imperative GUI
// semantics: what a click does (reveal a menu, switch a tab, open a dialog,
// invoke an application command, ...), whether it hosts a popup subtree, and
// which UIA patterns it supports. Applications (src/apps) are trees of these.
#ifndef SRC_GUI_CONTROL_H_
#define SRC_GUI_CONTROL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gui/geometry.h"
#include "src/uia/element.h"

namespace gsim {

class Application;
class Window;

// What clicking a control does. This is the *mechanism* the paper talks
// about: in an imperative GUI the user must trigger these effects step by
// step; DMI drives them deterministically.
enum class ClickEffect {
  kNone = 0,       // inert (static text, separators)
  kRevealPopup,    // opens this control's popup subtree (menu, dropdown, gallery)
  kSwitchTab,      // activates this tab item, swapping visible panels
  kOpenDialog,     // opens the dialog window registered under dialog_id
  kCloseWindow,    // closes the containing window (OK / Cancel / Close)
  kToggle,         // flips toggle state, then runs command (if any)
  kSelect,         // selects this item within its selection container
  kCommand,        // functional endpoint: dispatches command_ to the app
  kExternal,       // leaves the application (web link, account page)
  kRevealExisting, // re-reveals an existing subtree (creates UNG back-edges)
  kClosePane,      // closes the nearest enclosing persistent pane
};

// How an OK/Close/Cancel button disposes of its window.
enum class CloseDisposition { kCommit = 0, kDismiss = 1, kCancel = 2 };

class Control final : public uia::Element {
 public:
  Control(std::string name, uia::ControlType type);
  ~Control() override;

  Control(const Control&) = delete;
  Control& operator=(const Control&) = delete;

  // ----- uia::Element ------------------------------------------------------
  std::string Name() const override;
  std::string AutomationId() const override { return automation_id_; }
  uia::ControlType Type() const override { return type_; }
  std::string HelpText() const override { return help_text_; }
  bool IsEnabled() const override { return enabled_; }
  bool IsOffscreen() const override;
  std::vector<uia::Element*> Children() const override;
  uia::Element* Parent() const override;
  uint64_t RuntimeId() const override { return runtime_id_; }
  uia::Pattern* GetPattern(uia::PatternId id) override;

  // ----- structure ----------------------------------------------------------
  // Adds a static child (always attached while this control is attached).
  Control* AddChild(std::unique_ptr<Control> child);
  // Convenience: creates and adds a child.
  Control* NewChild(std::string name, uia::ControlType type);

  // Detaches and returns a static child subtree (nullptr if `child` is not a
  // direct child). Models an app update deleting a feature group. Only legal
  // before the application captures fresh state — the pooling snapshot keeps
  // raw pointers into the tree, so post-capture removal would dangle.
  std::unique_ptr<Control> RemoveChild(Control* child);

  // Attaches an owned popup subtree revealed by clicking this control.
  Control* SetPopup(std::unique_ptr<Control> popup_root);
  // Attaches a *shared* popup subtree owned by the application. Multiple
  // controls may share one subtree — this is how merge nodes arise in the
  // UI Navigation Graph (paper §2.4 Challenge #1).
  void SetSharedPopup(Control* shared_root);

  Control* popup() const { return owned_popup_ ? owned_popup_.get() : shared_popup_; }
  bool popup_open() const { return popup_open_; }

  // Persistent popups (task panes like PowerPoint's Format Background) stay
  // open across unrelated clicks; transient menus close. Default: transient.
  Control* SetPopupPersistent(bool persistent);
  bool popup_persistent() const { return popup_persistent_; }

  // Floating surfaces (shared palettes, flyouts) report a null public
  // Parent() — like UIA popup windows parented to the desktop — so their
  // descendants' ancestor paths are independent of which host opened them.
  // This is what makes a shared palette a single merge node in the UNG.
  void SetFloating(bool floating) { floating_ = floating; }
  bool floating() const { return floating_; }
  const std::vector<Control*>& StaticChildren() const { return child_ptrs_; }

  // The true (structural) name, unaffected by instability injection.
  const std::string& TrueName() const { return name_; }

  // Dynamic renaming: some applications relabel controls at runtime in ways
  // no offline model can predict (paper §6 "(In)accurate navigation
  // topology", e.g. Word's Find-and-Replace "Next" becoming "Go To").
  void RenameTo(std::string new_name);

  Control* parent_control() const { return parent_; }

  // ----- configuration (used by app builders) -------------------------------
  Control* SetAutomationId(std::string id);
  Control* SetHelpText(std::string text);
  Control* SetEnabled(bool enabled);
  Control* SetClickEffect(ClickEffect effect);
  Control* SetCommand(std::string command);
  Control* SetDialogId(std::string dialog_id);
  Control* SetCloseDisposition(CloseDisposition d);
  Control* SetRevealTarget(Control* target);
  // Marks the control as functional even though clicks route through the app
  // (used by cells, gallery items).
  Control* SetRect(Rect rect);

  ClickEffect click_effect() const { return click_effect_; }
  const std::string& command() const { return command_; }
  const std::string& dialog_id() const { return dialog_id_; }
  CloseDisposition close_disposition() const { return close_disposition_; }
  Control* reveal_target() const { return reveal_target_; }

  // Attaches a custom pattern implementation (e.g. a TextPattern over the
  // Word document model). The control takes ownership.
  void AttachPattern(std::unique_ptr<uia::Pattern> pattern);

  // ----- runtime state (driven by Application) -------------------------------
  void SetPopupOpen(bool open);
  void SetWindow(Window* window);
  Window* window() const { return window_; }
  void SetApplication(Application* app);
  Application* application() const { return app_; }

  // Selection / toggle value used by generic pattern adapters. Setters bump
  // the application's UI-state generation on an actual change: [on]/[selected]
  // states feed the screen listing, so generation-keyed caches of the prompt
  // context must invalidate (DESIGN.md §9).
  bool toggled() const { return toggled_; }
  void set_toggled(bool t);
  bool selected() const { return selected_; }
  void set_selected(bool s);

  // Current on-screen rectangle (synthetic layout).
  Rect rect() const { return rect_; }

  // Explicit offscreen override (e.g. rows scrolled out of a viewport).
  void SetForcedOffscreen(bool offscreen);
  bool forced_offscreen() const { return forced_offscreen_; }

  // Text value for Edit-type controls (backs the generic ValuePattern).
  // Value changes feed the passive data payload; the setter bumps the UI
  // generation when the value actually changes.
  const std::string& text_value() const { return text_value_; }
  void set_text_value(std::string v);

  // Numeric range for Slider/Spinner/ProgressBar (backs RangeValuePattern).
  double range_value() const { return range_value_; }
  void set_range_value(double v);
  Control* SetRange(double min, double max) {
    range_min_ = min;
    range_max_ = max;
    return this;
  }
  double range_min() const { return range_min_; }
  double range_max() const { return range_max_; }

  // ----- factory-reset support (Application::ResetToFreshState) --------------
  // Snapshot of every field a run can mutate, including parent/window wiring
  // (a shared popup adopts its opening host as parent, see SetPopupOpen).
  // Captured right after construction; restored wholesale when a pooled
  // application instance is recycled. Restore writes fields directly — the
  // application bumps the UI generation once for the whole reset.
  struct FreshState {
    std::string name;
    bool enabled = true;
    bool forced_offscreen = false;
    bool popup_open = false;
    bool toggled = false;
    bool selected = false;
    std::string text_value;
    double range_value = 0.0;
    size_t child_count = 0;
    Control* parent = nullptr;
    Window* window = nullptr;
  };
  FreshState CaptureFreshState() const;
  void RestoreFreshState(const FreshState& state);

  // Recursively wires window/app pointers through a subtree (called when a
  // subtree is attached to a window or application).
  void PropagateContext(Window* window, Application* app);

  // Walks the *static* subtree (children + owned popups, regardless of open
  // state). Used by builders and by eager dialog registration.
  void WalkStatic(const std::function<void(Control&)>& fn);

 private:
  friend class Application;

  static uint64_t NextRuntimeId();

  std::string name_;
  uia::ControlType type_;
  std::string automation_id_;
  std::string help_text_;
  bool enabled_ = true;
  bool forced_offscreen_ = false;
  uint64_t runtime_id_;

  Control* parent_ = nullptr;
  std::vector<std::unique_ptr<Control>> children_;
  std::vector<Control*> child_ptrs_;  // cached raw view of children_

  std::unique_ptr<Control> owned_popup_;
  Control* shared_popup_ = nullptr;
  bool popup_open_ = false;
  bool popup_persistent_ = false;
  bool floating_ = false;

  ClickEffect click_effect_ = ClickEffect::kNone;
  std::string command_;
  std::string dialog_id_;
  CloseDisposition close_disposition_ = CloseDisposition::kDismiss;
  Control* reveal_target_ = nullptr;

  bool toggled_ = false;
  bool selected_ = false;
  std::string text_value_;
  double range_value_ = 0.0;
  double range_min_ = 0.0;
  double range_max_ = 100.0;

  Rect rect_;
  Window* window_ = nullptr;
  Application* app_ = nullptr;

  std::map<uia::PatternId, std::unique_ptr<uia::Pattern>> patterns_;
};

}  // namespace gsim

#endif  // SRC_GUI_CONTROL_H_
