#include "src/gui/instability.h"

#include <array>
#include <cmath>
#include <functional>

#include "src/gui/control.h"

namespace gsim {
namespace {

// Stable 64-bit mix for per-control deterministic decisions.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

InstabilityConfig InstabilityConfig::Typical() {
  InstabilityConfig c;
  c.name_variation_rate = 0.06;
  c.click_fail_rate = 0.01;
  c.slow_load_rate = 0.08;
  c.slow_load_ticks = 2;
  c.misclick_sigma_px = 6.0;
  return c;
}

InstabilityConfig InstabilityConfig::Harsh() {
  InstabilityConfig c;
  c.name_variation_rate = 0.20;
  c.click_fail_rate = 0.05;
  c.slow_load_rate = 0.25;
  c.slow_load_ticks = 4;
  c.misclick_sigma_px = 14.0;
  return c;
}

InstabilityConfig InstabilityConfig::Hostile() {
  InstabilityConfig c = Harsh();
  c.stale_ref_rate = 0.06;
  c.pattern_fail_rate = 0.08;
  c.pattern_fail_ticks = 3;
  c.event_drop_rate = 0.10;
  c.freeze_rate = 0.03;
  c.freeze_ticks = 5;
  return c;
}

InstabilityInjector::InstabilityInjector(const InstabilityConfig& config, uint64_t seed)
    : config_(config), seed_(seed), rng_(seed ^ 0xabcdef1234567890ULL) {}

std::string InstabilityInjector::DecorateName(const Control& control) const {
  const std::string& base = control.TrueName();
  if (base.empty() || config_.name_variation_rate <= 0.0) {
    return base;
  }
  // Keyed on the stable name (not the per-instance runtime id) so identical
  // app builds decorate identically — runs are reproducible per seed.
  const uint64_t h = Mix(seed_, std::hash<std::string>{}(base));
  const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (u >= config_.name_variation_rate) {
    return base;
  }
  // Pick a deterministic decoration variant.
  switch ((h >> 3) % 4) {
    case 0:
      return base + "...";          // truncation marker variant
    case 1:
      return base + " ";            // stray trailing whitespace
    case 2:
      return base + " (Ctrl+" + static_cast<char>('A' + (h % 26)) + std::string(")");
    default:
      return base + " control";     // verbose accessibility phrasing
  }
}

bool InstabilityInjector::ClickSilentlyFails(const Control& control) {
  (void)control;
  return rng_.Bernoulli(config_.click_fail_rate);
}

uint64_t InstabilityInjector::PopupRevealDelay(const Control& control) {
  (void)control;
  if (!rng_.Bernoulli(config_.slow_load_rate)) {
    return 0;
  }
  return 1 + rng_.NextBelow(config_.slow_load_ticks);
}

bool InstabilityInjector::ElementReferenceStale(const Control& control) {
  (void)control;
  if (config_.stale_ref_rate <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.stale_ref_rate);
}

bool InstabilityInjector::PatternTransientlyUnavailable(const Control& control,
                                                        uint64_t now_tick) {
  if (config_.pattern_fail_rate <= 0.0) {
    return false;
  }
  auto it = pattern_fail_until_.find(&control);
  if (it != pattern_fail_until_.end()) {
    if (now_tick < it->second) {
      return true;  // still inside the open window — no fresh draw
    }
    pattern_fail_until_.erase(it);
  }
  if (!rng_.Bernoulli(config_.pattern_fail_rate)) {
    return false;
  }
  pattern_fail_until_[&control] = now_tick + config_.pattern_fail_ticks;
  return true;
}

bool InstabilityInjector::DropsWindowEvent() {
  if (config_.event_drop_rate <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.event_drop_rate);
}

bool InstabilityInjector::CallHitsFreeze(uint64_t now_tick) {
  if (config_.freeze_rate <= 0.0) {
    return false;
  }
  if (now_tick < freeze_until_) {
    return true;  // inside an open freeze window — no fresh draw
  }
  if (!rng_.Bernoulli(config_.freeze_rate)) {
    return false;
  }
  freeze_until_ = now_tick + config_.freeze_ticks;
  return true;
}

Point InstabilityInjector::PerturbPoint(Point p) {
  if (config_.misclick_sigma_px <= 0.0) {
    return p;
  }
  p.x += static_cast<int>(std::lround(rng_.Gaussian(0.0, config_.misclick_sigma_px)));
  p.y += static_cast<int>(std::lround(rng_.Gaussian(0.0, config_.misclick_sigma_px)));
  return p;
}

}  // namespace gsim
