#include "src/gui/input.h"

#include "src/uia/element.h"

namespace gsim {

support::Status InputDriver::ClickControl(Control& control) {
  support::Status s = app_->Click(control);
  screen_->Refresh();
  return s;
}

support::Status InputDriver::ClickAt(Point target) {
  Point actual = injector_ != nullptr ? injector_->PerturbPoint(target) : target;
  Control* hit = screen_->HitTest(actual);
  if (hit == nullptr) {
    screen_->Refresh();
    return support::NotFoundError("click landed on empty space");
  }
  support::Status s = app_->Click(*hit);
  screen_->Refresh();
  return s;
}

support::Status InputDriver::ClickControlByCoordinates(Control& control) {
  return ClickAt(control.rect().Center());
}

support::Status InputDriver::DragScrollThumb(Control& scroll_surface, bool vertical,
                                             double delta_percent) {
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(scroll_surface);
  if (scroll == nullptr) {
    return support::FailedPreconditionError("control '" + scroll_surface.TrueName() +
                                            "' is not scrollable");
  }
  app_->mutable_stats().drags++;
  double applied = delta_percent;
  if (injector_ != nullptr && injector_->config().misclick_sigma_px > 0.0) {
    // Proportional noise: drags overshoot/undershoot by up to ~20%.
    Point noise = injector_->PerturbPoint(Point{0, 0});
    applied *= 1.0 + 0.03 * noise.y;
  }
  support::Status s = vertical ? scroll->ScrollIncrement(0.0, applied)
                               : scroll->ScrollIncrement(applied, 0.0);
  screen_->Refresh();
  return s;
}

support::Status InputDriver::TypeText(const std::string& text) {
  support::Status s = app_->TypeText(text);
  screen_->Refresh();
  return s;
}

support::Status InputDriver::KeyChord(const std::string& chord) {
  support::Status s = app_->PressKey(chord);
  screen_->Refresh();
  return s;
}

}  // namespace gsim
