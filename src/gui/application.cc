#include "src/gui/application.h"

#include <algorithm>
#include <cassert>

#include "src/gui/instability.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"

namespace gsim {

// Desktop root element: children are the roots of open windows, bottom-most
// first. Window roots report a null Parent(), so upward walks stop at the
// window — matching UIA, where top-level windows are desktop children.
class Application::DesktopRoot final : public uia::Element {
 public:
  explicit DesktopRoot(Application* app) : app_(app) {}

  std::string Name() const override { return app_->name() + " Desktop"; }
  std::string AutomationId() const override { return "desktop"; }
  uia::ControlType Type() const override { return uia::ControlType::kPane; }
  std::string HelpText() const override { return ""; }
  bool IsEnabled() const override { return true; }
  bool IsOffscreen() const override { return false; }
  std::vector<uia::Element*> Children() const override {
    std::vector<uia::Element*> out;
    for (Window* w : app_->open_window_stack_) {
      out.push_back(&w->root());
    }
    return out;
  }
  uia::Element* Parent() const override { return nullptr; }
  uint64_t RuntimeId() const override { return 0; }
  uia::Pattern* GetPattern(uia::PatternId) override { return nullptr; }

 private:
  Application* app_;
};

Application::Application(std::string name)
    : name_(std::move(name)),
      main_window_(std::make_unique<Window>(name_, /*modal=*/false)),
      desktop_root_(std::make_unique<DesktopRoot>(this)) {
  main_window_->SetOpen(true);
  main_window_->SetApplication(this);
  open_window_stack_.push_back(main_window_.get());
}

Application::~Application() = default;

void Application::FinalizeMainWindow() { main_window_->SetApplication(this); }

Window* Application::RegisterDialog(const std::string& dialog_id,
                                    std::unique_ptr<Window> window) {
  assert(window != nullptr);
  Window* raw = window.get();
  raw->SetApplication(this);
  dialogs_[dialog_id] = std::move(window);
  return raw;
}

Window* Application::FindDialog(const std::string& dialog_id) {
  auto it = dialogs_.find(dialog_id);
  return it == dialogs_.end() ? nullptr : it->second.get();
}

Control* Application::RegisterSharedSubtree(std::unique_ptr<Control> root) {
  assert(root != nullptr);
  Control* raw = root.get();
  raw->SetFloating(true);
  raw->PropagateContext(nullptr, this);
  shared_subtrees_.push_back(std::move(root));
  return raw;
}

std::vector<std::pair<std::string, const Window*>> Application::DialogEntries() const {
  std::vector<std::pair<std::string, const Window*>> out;
  out.reserve(dialogs_.size());
  for (const auto& [id, dialog] : dialogs_) {
    out.emplace_back(id, dialog.get());
  }
  return out;
}

std::vector<const Control*> Application::SharedSubtreeRoots() const {
  std::vector<const Control*> out;
  out.reserve(shared_subtrees_.size());
  for (const auto& shared : shared_subtrees_) {
    out.push_back(shared.get());
  }
  return out;
}

uia::Element& Application::AccessibilityRoot() { return *desktop_root_; }

Window* Application::TopWindow() {
  if (open_window_stack_.empty()) {
    return nullptr;
  }
  return open_window_stack_.back();
}

std::vector<Window*> Application::OpenWindows() { return open_window_stack_; }

bool Application::IsAttached(const Control& control) const {
  const Control* node = &control;
  while (true) {
    Control* parent = node->parent_control();
    if (parent == nullptr) {
      // Reached a root; it must be the root of an open window.
      Window* w = node->window();
      return w != nullptr && w->is_open() && node == &w->root();
    }
    // If we are the parent's popup subtree root, the popup must be open and
    // must currently point at us (shared popups can be re-parented).
    if (parent->popup() == node) {
      if (!parent->popup_open()) {
        return false;
      }
    } else {
      // Must be a static child.
      const auto& kids = parent->StaticChildren();
      if (std::find(kids.begin(), kids.end(), node) == kids.end()) {
        return false;
      }
    }
    node = parent;
  }
}

bool Application::PopupChainContains(Control* host, const Control& c) const {
  // True if `c` is the host itself or lives inside the host's popup subtree
  // (following nested popups).
  if (host == &c) {
    return true;
  }
  for (const Control* node = &c; node != nullptr; node = node->parent_control()) {
    if (node == host) {
      return true;
    }
  }
  return false;
}

void Application::ClosePopupsNotContaining(const Control* keep) {
  while (!open_popup_hosts_.empty()) {
    Control* top = open_popup_hosts_.back();
    if (keep != nullptr && PopupChainContains(top, *keep)) {
      break;
    }
    top->SetPopupOpen(false);
    open_popup_hosts_.pop_back();
  }
}

void Application::ClosePopupsFrom(Control& host) {
  // Close popups from the innermost down to (and including) host's popup.
  while (!open_popup_hosts_.empty()) {
    Control* top = open_popup_hosts_.back();
    top->SetPopupOpen(false);
    open_popup_hosts_.pop_back();
    if (top == &host) {
      break;
    }
  }
}

void Application::CloseAllPopups() { ClosePopupsNotContaining(nullptr); }

void Application::CloseWindow(Window& window, bool commit) {
  (void)commit;  // command side effects ran from the button's command_ already
  if (&window == main_window_.get()) {
    return;  // the main window never closes in our scenarios
  }
  auto it = std::find(open_window_stack_.begin(), open_window_stack_.end(), &window);
  if (it == open_window_stack_.end()) {
    return;
  }
  window.SetOpen(false);
  open_window_stack_.erase(it);
  BumpUiGeneration();
  if (focused_ != nullptr && focused_->window() == &window) {
    focused_ = nullptr;
  }
  if (instability_ != nullptr && instability_->DropsWindowEvent()) {
    // Dropped UIA event: listeners never hear the window closed; callers must
    // recover by re-capturing the tree.
    support::CountMetric("robust.fault_event_drop");
    support::CountMetric("robust.fault_event_drop", {{"app", name_}});
    return;
  }
  for (const WindowListener& listener : window_listeners_) {
    listener(window, /*opened=*/false);
  }
}

void Application::ResetUiState() {
  CloseAllPopups();
  // Persistent panes are not on the transient stack; close them explicitly.
  main_window_->root().WalkStatic([](Control& c) {
    if (c.popup_persistent() && c.popup_open()) {
      c.SetPopupOpen(false);
    }
  });
  while (open_window_stack_.size() > 1) {
    Window* top = open_window_stack_.back();
    top->SetOpen(false);
    open_window_stack_.pop_back();
  }
  focused_ = nullptr;
  external_state_ = false;
  BumpUiGeneration();
  OnUiReset();
}

void Application::WalkAllControls(const std::function<void(Control&)>& fn) {
  main_window_->root().WalkStatic(fn);
  for (auto& [id, dialog] : dialogs_) {
    (void)id;
    dialog->root().WalkStatic(fn);
  }
  for (auto& shared : shared_subtrees_) {
    shared->WalkStatic(fn);
  }
}

void Application::CaptureFreshState() {
  if (fresh_captured_) {
    return;
  }
  WalkAllControls(
      [this](Control& c) { fresh_controls_.emplace_back(&c, c.CaptureFreshState()); });
  fresh_listener_count_ = window_listeners_.size();
  fresh_captured_ = true;
}

void Application::ResetToFreshState() {
  assert(fresh_captured_ && "CaptureFreshState() must run before ResetToFreshState()");
  SetInstability(nullptr);
  ResetUiState();
  for (auto& [control, state] : fresh_controls_) {
    control->RestoreFreshState(state);
  }
  // Restoring popup_open_ = false wholesale makes the transient stack stale.
  open_popup_hosts_.clear();
  reveal_ticks_.clear();
  tick_ = 0;
  stats_ = ActionStats{};
  // Listeners registered during a run (the ripper is the only producer) are
  // dropped; construction-time listeners survive.
  if (window_listeners_.size() > fresh_listener_count_) {
    window_listeners_.resize(fresh_listener_count_);
  }
  OnFactoryReset();
  BumpUiGeneration();
}

uint64_t Application::UiaStateChecksum() {
  StateHash h;
  WalkAllControls([&h](Control& c) {
    h.MixU64(0x9e3779b97f4a7c15ull);  // per-control boundary
    h.Mix(c.TrueName());
    h.Mix(c.AutomationId());
    h.MixU64(static_cast<uint64_t>(c.Type()));
    h.MixBool(c.enabled_);
    h.MixBool(c.forced_offscreen_);
    h.MixBool(c.popup_open());
    h.MixBool(c.toggled());
    h.MixBool(c.selected());
    h.Mix(c.text_value());
    h.MixDouble(c.range_value());
    h.MixU64(c.StaticChildren().size());
  });
  h.MixU64(open_window_stack_.size());
  for (Window* w : open_window_stack_) {
    h.Mix(w->title());
  }
  h.MixU64(open_popup_hosts_.size());
  h.MixBool(focused_ != nullptr);
  if (focused_ != nullptr) {
    h.Mix(focused_->TrueName());
  }
  h.MixBool(external_state_);
  h.MixU64(tick_);
  h.MixU64(reveal_ticks_.size());
  h.MixU64(stats_.clicks);
  h.MixU64(stats_.key_chords);
  h.MixU64(stats_.text_inputs);
  h.MixU64(stats_.drags);
  h.MixU64(stats_.commands);
  h.MixBool(instability_ != nullptr);
  AppStateDigest(h);
  return h.digest();
}

void Application::SetFocus(Control* control) { focused_ = control; }

std::string Application::DecorateName(const Control& control) const {
  if (instability_ == nullptr) {
    return control.TrueName();
  }
  return instability_->DecorateName(control);
}

namespace {

support::ErrorDetail TransientDetail(const Control& control,
                                     const char* pattern_name) {
  support::ErrorDetail d;
  d.control_name = control.TrueName();
  if (pattern_name != nullptr) {
    d.required_pattern = pattern_name;
  }
  d.retryable = true;
  return d;
}

}  // namespace

support::Status Application::CheckPatternAvailable(Control& control,
                                                   const char* pattern_name) {
  if (instability_ == nullptr) {
    return support::Status::Ok();
  }
  if (!instability_->PatternTransientlyUnavailable(control, tick_)) {
    return support::Status::Ok();
  }
  support::CountMetric("robust.fault_pattern");
  support::CountMetric("robust.fault_pattern", {{"app", name_}});
  return support::UnavailableError("control '" + control.TrueName() + "' " +
                                   pattern_name + " call failed transiently")
      .WithDetail(TransientDetail(control, pattern_name));
}

support::Status Application::Click(Control& control) {
  if (instability_ != nullptr && instability_->CallHitsFreeze(tick_)) {
    support::CountMetric("robust.fault_freeze");
    support::CountMetric("robust.fault_freeze", {{"app", name_}});
    return support::UnavailableError("application is not responding")
        .WithDetail(TransientDetail(control, nullptr));
  }
  if (external_state_) {
    return support::FailedPreconditionError(
        "application is in an external state (a previous click left the app)");
  }
  if (!IsAttached(control)) {
    return support::NotFoundError("control '" + control.TrueName() +
                                  "' is not currently visible");
  }
  // Modal dialogs block interaction with lower windows (Windows semantics).
  Window* top = TopWindow();
  if (top != nullptr && top->modal() && control.window() != top) {
    return support::FailedPreconditionError(
        "control '" + control.TrueName() + "' is blocked by the modal dialog '" +
        top->title() + "'");
  }
  if (IsPendingReveal(control)) {
    return support::UnavailableError("control '" + control.TrueName() +
                                     "' is still loading");
  }
  if (!control.IsEnabled()) {
    return support::FailedPreconditionError(
        "control '" + control.TrueName() + "' (" +
        std::string(uia::ControlTypeName(control.Type())) + ") is disabled");
  }
  if (instability_ != nullptr && instability_->ElementReferenceStale(control)) {
    // The interaction raced a UI mutation: the generation bump invalidates
    // every captured synthesized id, so the caller must re-capture and
    // re-locate before retrying.
    BumpUiGeneration();
    support::CountMetric("robust.fault_stale_ref");
    support::CountMetric("robust.fault_stale_ref", {{"app", name_}});
    return support::UnavailableError("element reference for '" + control.TrueName() +
                                     "' is stale (the UI changed underneath it)")
        .WithDetail(TransientDetail(control, nullptr));
  }
  {
    support::Status pattern = CheckPatternAvailable(
        control, control.click_effect() == ClickEffect::kToggle ? "TogglePattern"
                                                                : "InvokePattern");
    if (!pattern.ok()) {
      return pattern;
    }
  }
  if (instability_ != nullptr && instability_->ClickSilentlyFails(control)) {
    ++stats_.clicks;
    return support::Status::Ok();  // the hazard: click "succeeds" but does nothing
  }
  ++stats_.clicks;
  return ClickImpl(control);
}

support::Status Application::ClickImpl(Control& control) {
  switch (control.click_effect()) {
    case ClickEffect::kNone: {
      ClosePopupsNotContaining(&control);
      if (control.Type() == uia::ControlType::kEdit ||
          control.Type() == uia::ControlType::kComboBox) {
        SetFocus(&control);
      }
      return support::Status::Ok();
    }
    case ClickEffect::kRevealPopup: {
      ClosePopupsNotContaining(&control);
      if (control.popup_open()) {
        return support::Status::Ok();
      }
      control.SetPopupOpen(true);
      // Persistent panes survive unrelated clicks; only transient menus go
      // on the auto-close stack.
      if (!control.popup_persistent()) {
        open_popup_hosts_.push_back(&control);
      }
      if (instability_ != nullptr) {
        uint64_t delay = instability_->PopupRevealDelay(control);
        if (delay > 0 && control.popup() != nullptr) {
          SetRevealTick(*control.popup(), tick_ + delay);
        }
      }
      return support::Status::Ok();
    }
    case ClickEffect::kSwitchTab: {
      ClosePopupsNotContaining(nullptr);
      Control* parent = control.parent_control();
      if (parent != nullptr) {
        for (Control* sib : parent->StaticChildren()) {
          if (sib != &control && sib->Type() == uia::ControlType::kTabItem) {
            sib->set_selected(false);
            sib->SetPopupOpen(false);
          }
        }
      }
      control.set_selected(true);
      control.SetPopupOpen(true);
      return support::Status::Ok();
    }
    case ClickEffect::kOpenDialog: {
      CloseAllPopups();
      Window* dialog = FindDialog(control.dialog_id());
      if (dialog == nullptr) {
        return support::InternalError("no dialog registered under id '" +
                                      control.dialog_id() + "'");
      }
      if (!dialog->is_open()) {
        dialog->SetOpen(true);
        open_window_stack_.push_back(dialog);
        BumpUiGeneration();
        if (instability_ != nullptr && instability_->DropsWindowEvent()) {
          support::CountMetric("robust.fault_event_drop");
          support::CountMetric("robust.fault_event_drop", {{"app", name_}});
        } else {
          for (const WindowListener& listener : window_listeners_) {
            listener(*dialog, /*opened=*/true);
          }
        }
      }
      return support::Status::Ok();
    }
    case ClickEffect::kCloseWindow: {
      Window* w = control.window();
      if (w == nullptr) {
        return support::InternalError("close button outside any window");
      }
      support::Status status = support::Status::Ok();
      if (!control.command().empty()) {
        ++stats_.commands;
        status = ExecuteCommand(control, control.command());
      }
      CloseWindow(*w, control.close_disposition() == CloseDisposition::kCommit);
      return status;
    }
    case ClickEffect::kToggle: {
      control.set_toggled(!control.toggled());
      if (!control.command().empty()) {
        ++stats_.commands;
        return ExecuteCommand(control, control.command());
      }
      return support::Status::Ok();
    }
    case ClickEffect::kSelect: {
      return SelectControl(control, /*additive=*/false);
    }
    case ClickEffect::kCommand: {
      ++stats_.commands;
      support::Status status = ExecuteCommand(control, control.command());
      // Menu semantics: invoking a functional item dismisses transient menus.
      ClosePopupsNotContaining(nullptr);
      return status;
    }
    case ClickEffect::kExternal: {
      external_state_ = true;
      return support::Status::Ok();
    }
    case ClickEffect::kClosePane: {
      // Close the nearest enclosing persistent pane.
      for (Control* node = control.parent_control(); node != nullptr;
           node = node->parent_control()) {
        Control* host = node->parent_control();
        if (host != nullptr && host->popup() == node && host->popup_persistent()) {
          host->SetPopupOpen(false);
          return support::Status::Ok();
        }
      }
      return support::FailedPreconditionError("no enclosing pane to close");
    }
    case ClickEffect::kRevealExisting: {
      Control* target = control.reveal_target();
      if (target == nullptr) {
        return support::InternalError("reveal target missing");
      }
      // Open every popup host on the target's ancestor chain.
      std::vector<Control*> chain;
      for (Control* node = target; node != nullptr; node = node->parent_control()) {
        chain.push_back(node);
      }
      std::reverse(chain.begin(), chain.end());
      for (size_t i = 0; i + 1 < chain.size(); ++i) {
        Control* parent = chain[i];
        Control* child = chain[i + 1];
        if (parent->popup() == child && !parent->popup_open()) {
          parent->SetPopupOpen(true);
          open_popup_hosts_.push_back(parent);
        }
      }
      return support::Status::Ok();
    }
  }
  return support::InternalError("unhandled click effect");
}

support::Status Application::SelectControl(Control& control, bool additive) {
  if (!IsAttached(control)) {
    return support::NotFoundError("control '" + control.TrueName() +
                                  "' is not currently visible");
  }
  if (!additive) {
    // Exclusive selection clears every same-type item within the nearest
    // selection container (List / DataGrid / Tab / Tree / Table), so a grid
    // click deselects cells in other rows too. Falls back to the parent.
    auto is_selection_container = [](uia::ControlType t) {
      return t == uia::ControlType::kList || t == uia::ControlType::kDataGrid ||
             t == uia::ControlType::kTable || t == uia::ControlType::kTree ||
             t == uia::ControlType::kTab;
    };
    Control* scope = control.parent_control();
    while (scope != nullptr && !is_selection_container(scope->Type())) {
      scope = scope->parent_control();
    }
    if (scope == nullptr) {
      scope = control.parent_control();
    }
    if (scope != nullptr) {
      scope->WalkStatic([&](Control& c) {
        if (&c != &control && c.Type() == control.Type()) {
          c.set_selected(false);
        }
      });
    }
  }
  control.set_selected(true);
  OnSelectionChanged(control);
  return support::Status::Ok();
}

support::Status Application::DeselectControl(Control& control) {
  control.set_selected(false);
  OnSelectionChanged(control);
  return support::Status::Ok();
}

support::Status Application::PressKey(const std::string& chord) {
  if (instability_ != nullptr && instability_->CallHitsFreeze(tick_)) {
    support::CountMetric("robust.fault_freeze");
    support::CountMetric("robust.fault_freeze", {{"app", name_}});
    support::ErrorDetail d;
    d.retryable = true;
    return support::UnavailableError("application is not responding")
        .WithDetail(std::move(d));
  }
  if (external_state_) {
    return support::FailedPreconditionError("application is in an external state");
  }
  ++stats_.key_chords;
  if (chord == "ESC") {
    if (!open_popup_hosts_.empty()) {
      Control* top = open_popup_hosts_.back();
      top->SetPopupOpen(false);
      open_popup_hosts_.pop_back();
      return support::Status::Ok();
    }
    if (open_window_stack_.size() > 1) {
      CloseWindow(*open_window_stack_.back(), /*commit=*/false);
      return support::Status::Ok();
    }
    return support::Status::Ok();
  }
  return OnKeyChord(chord);
}

support::Status Application::TypeText(const std::string& text) {
  if (instability_ != nullptr && instability_->CallHitsFreeze(tick_)) {
    support::CountMetric("robust.fault_freeze");
    support::CountMetric("robust.fault_freeze", {{"app", name_}});
    support::ErrorDetail d;
    d.retryable = true;
    return support::UnavailableError("application is not responding")
        .WithDetail(std::move(d));
  }
  if (external_state_) {
    return support::FailedPreconditionError("application is in an external state");
  }
  if (focused_ == nullptr) {
    return support::FailedPreconditionError("no edit control is focused");
  }
  ++stats_.text_inputs;
  focused_->set_text_value(text);
  OnValueChanged(*focused_);
  return support::Status::Ok();
}

std::vector<std::string> Application::OpenAncestorNames(const Control& control) const {
  std::vector<std::string> names;
  for (const Control* node = control.parent_control(); node != nullptr;
       node = node->parent_control()) {
    names.push_back(node->TrueName());
  }
  std::reverse(names.begin(), names.end());
  return names;
}

void Application::SetRevealTick(Control& control, uint64_t tick) {
  reveal_ticks_[control.RuntimeId()] = tick;
  BumpUiGeneration();  // the control is offscreen until the tick passes
}

bool Application::IsPendingReveal(const Control& control) const {
  // A control is pending if it or any ancestor popup root is still loading.
  for (const Control* node = &control; node != nullptr; node = node->parent_control()) {
    auto it = reveal_ticks_.find(node->RuntimeId());
    if (it != reveal_ticks_.end() && tick_ < it->second) {
      return true;
    }
  }
  return false;
}

support::Status Application::ExecuteCommand(Control& source, const std::string& command) {
  (void)source;
  DMI_LOG(kDebug) << "unhandled command: " << command;
  return support::Status::Ok();
}

support::Status Application::OnKeyChord(const std::string& chord) {
  (void)chord;
  return support::Status::Ok();
}

void Application::OnValueChanged(Control& control) { (void)control; }

void Application::OnSelectionChanged(Control& control) { (void)control; }

void Application::OnUiReset() {}

void Application::OnFactoryReset() {}

void Application::AppStateDigest(StateHash& hash) const { (void)hash; }

}  // namespace gsim
