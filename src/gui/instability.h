// Instability injection: the real-world GUI hazards that make imperative
// interaction fragile (paper §2.4 Challenge #3 and §3.4 "Handling unstable UI
// interaction"):
//   - name variation: the accessibility name differs from the modeled name
//     (localization suffixes, shortcut hints, trailing whitespace);
//   - silent click failure: a click lands but the app drops it;
//   - slow loading: popup content appears only after a delay;
//   - coordinate noise: imperative clicks at coordinates drift.
// The offline modeling phase runs with injection disabled (a controlled
// environment); the online phase runs with it enabled, so both the baseline
// and DMI face the same hazards. DMI's fuzzy matcher and retry machinery are
// exercised by exactly these.
#ifndef SRC_GUI_INSTABILITY_H_
#define SRC_GUI_INSTABILITY_H_

#include <cstdint>
#include <string>

#include "src/gui/geometry.h"
#include "src/support/rng.h"

namespace gsim {

class Control;

struct InstabilityConfig {
  // Fraction of controls whose accessibility name is decorated.
  double name_variation_rate = 0.0;
  // Probability a click is silently dropped by the application.
  double click_fail_rate = 0.0;
  // Probability an opened popup loads slowly.
  double slow_load_rate = 0.0;
  // How many ticks a slow popup takes to materialize.
  uint64_t slow_load_ticks = 2;
  // Stddev (virtual pixels) of imperative click-coordinate noise.
  double misclick_sigma_px = 0.0;

  static InstabilityConfig None() { return {}; }
  // A calibrated "typical desktop" hazard level used by the end-to-end runs.
  static InstabilityConfig Typical();
  // A harsher level used by the robustness ablation sweep.
  static InstabilityConfig Harsh();
};

class InstabilityInjector {
 public:
  InstabilityInjector(const InstabilityConfig& config, uint64_t seed);

  const InstabilityConfig& config() const { return config_; }

  // Deterministic per control: a control either always or never carries a
  // decorated name within one run (names are unstable across *builds*, not
  // across frames).
  std::string DecorateName(const Control& control) const;

  // Stochastic per call.
  bool ClickSilentlyFails(const Control& control);
  uint64_t PopupRevealDelay(const Control& control);
  Point PerturbPoint(Point p);

 private:
  InstabilityConfig config_;
  uint64_t seed_;
  support::Rng rng_;
};

}  // namespace gsim

#endif  // SRC_GUI_INSTABILITY_H_
