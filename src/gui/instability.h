// Instability injection: the real-world GUI hazards that make imperative
// interaction fragile (paper §2.4 Challenge #3 and §3.4 "Handling unstable UI
// interaction"):
//   - name variation: the accessibility name differs from the modeled name
//     (localization suffixes, shortcut hints, trailing whitespace);
//   - silent click failure: a click lands but the app drops it;
//   - slow loading: popup content appears only after a delay;
//   - coordinate noise: imperative clicks at coordinates drift;
//   - stale element references: a captured control id is invalidated by a
//     UI-generation bump mid-visit and must be re-located;
//   - transient pattern failures: Invoke/Toggle/Scroll returns kUnavailable
//     for a window of N ticks before recovering;
//   - dropped UIA event notifications: a window open/close event is never
//     delivered to listeners;
//   - app-freeze windows: every call times out for K ticks.
// The offline modeling phase runs with injection disabled (a controlled
// environment); the online phase runs with it enabled, so both the baseline
// and DMI face the same hazards. DMI's fuzzy matcher and retry machinery are
// exercised by exactly these.
#ifndef SRC_GUI_INSTABILITY_H_
#define SRC_GUI_INSTABILITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/gui/geometry.h"
#include "src/support/rng.h"

namespace gsim {

class Control;

struct InstabilityConfig {
  // Fraction of controls whose accessibility name is decorated.
  double name_variation_rate = 0.0;
  // Probability a click is silently dropped by the application.
  double click_fail_rate = 0.0;
  // Probability an opened popup loads slowly.
  double slow_load_rate = 0.0;
  // How many ticks a slow popup takes to materialize.
  uint64_t slow_load_ticks = 2;
  // Stddev (virtual pixels) of imperative click-coordinate noise.
  double misclick_sigma_px = 0.0;

  // ---- Extended fault domains (all default-off; only Hostile() enables
  // them, so Typical()/Harsh() RNG streams stay byte-identical). ----

  // Probability an interaction invalidates the captured element reference
  // (the app bumps its UI generation mid-visit; the caller must re-locate).
  double stale_ref_rate = 0.0;
  // Probability a pattern call (Invoke/Toggle/Scroll) opens a transient
  // failure window on its control, and that window's length in ticks.
  double pattern_fail_rate = 0.0;
  uint64_t pattern_fail_ticks = 3;
  // Probability a window open/close event notification is dropped (listeners
  // never hear about it).
  double event_drop_rate = 0.0;
  // Probability an interaction call starts an app-freeze window, and the
  // freeze length in ticks (every call during the window times out).
  double freeze_rate = 0.0;
  uint64_t freeze_ticks = 5;

  static InstabilityConfig None() { return {}; }
  // A calibrated "typical desktop" hazard level used by the end-to-end runs.
  static InstabilityConfig Typical();
  // A harsher level used by the robustness ablation sweep.
  static InstabilityConfig Harsh();
  // Harsh plus the extended fault domains: stale references, transient
  // pattern failures, dropped events, freeze windows.
  static InstabilityConfig Hostile();
};

class InstabilityInjector {
 public:
  InstabilityInjector(const InstabilityConfig& config, uint64_t seed);

  const InstabilityConfig& config() const { return config_; }

  // Deterministic per control: a control either always or never carries a
  // decorated name within one run (names are unstable across *builds*, not
  // across frames).
  std::string DecorateName(const Control& control) const;

  // Stochastic per call.
  bool ClickSilentlyFails(const Control& control);
  uint64_t PopupRevealDelay(const Control& control);
  Point PerturbPoint(Point p);

  // ---- Extended fault domains. Each guards its RNG draw behind a rate
  // check, so configs with the domain off consume no randomness and legacy
  // seed streams stay byte-identical. ----

  // True when this interaction invalidates captured element references (the
  // app should bump its UI generation and report kUnavailable).
  bool ElementReferenceStale(const Control& control);

  // True while `control` sits inside a transient pattern-failure window at
  // `now_tick`. A fresh draw may open a new window (of pattern_fail_ticks)
  // whose calls all fail until it lapses.
  bool PatternTransientlyUnavailable(const Control& control, uint64_t now_tick);

  // True when a window open/close event notification should be dropped.
  bool DropsWindowEvent();

  // True when the call at `now_tick` lands inside an app-freeze window. A
  // fresh draw may start a new freeze (of freeze_ticks); the triggering call
  // itself times out, making the window observable.
  bool CallHitsFreeze(uint64_t now_tick);

  // Exposed for tests: end of the current freeze window (0 = none started).
  uint64_t freeze_until_tick() const { return freeze_until_; }

 private:
  InstabilityConfig config_;
  uint64_t seed_;
  support::Rng rng_;
  uint64_t freeze_until_ = 0;
  // Per-control transient pattern-failure windows, keyed by control identity.
  // Lookup-only (never iterated), so pointer keys keep runs deterministic.
  std::unordered_map<const Control*, uint64_t> pattern_fail_until_;
};

}  // namespace gsim

#endif  // SRC_GUI_INSTABILITY_H_
