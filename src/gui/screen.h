// Screen view: synthetic layout, hit-testing and control labeling.
//
// The baseline agent (UFO-2-like) perceives the UI as a labeled list of the
// controls currently visible on screen — alphabetic labels ("A", "B", ...,
// "HF") exactly as the paper's baseline does (§5.1), distinct from DMI's
// numeric topology ids. The layout engine assigns deterministic rectangles so
// the imperative input path can click by coordinate (with grounding noise).
#ifndef SRC_GUI_SCREEN_H_
#define SRC_GUI_SCREEN_H_

#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/gui/control.h"

namespace gsim {

struct LabeledControl {
  std::string label;   // "A", "B", ..., "Z", "AA", ...
  Control* control = nullptr;
};

// Converts 0 -> "A", 25 -> "Z", 26 -> "AA", ...
std::string IndexToLabel(size_t index);

class ScreenView {
 public:
  explicit ScreenView(Application& app) : app_(&app) {}

  // Re-derives the visible control set, assigns labels and lays out rects.
  // Call after every UI mutation before reading labels or hit-testing.
  void Refresh();

  const std::vector<LabeledControl>& labeled() const { return labeled_; }

  // Control carrying the given label, or nullptr.
  Control* FindByLabel(const std::string& label) const;

  // Label of the control, or "" if not visible.
  std::string LabelOf(const Control& control) const;

  // Topmost visible control whose rect contains p, or nullptr.
  Control* HitTest(Point p) const;

  // Textual listing passed to the (simulated) LLM as the screen observation:
  // one line per control, "label name (type) [state]".
  std::string RenderListing(size_t max_entries = 0) const;

  size_t VisibleCount() const { return labeled_.size(); }

 private:
  Application* app_;
  std::vector<LabeledControl> labeled_;
};

}  // namespace gsim

#endif  // SRC_GUI_SCREEN_H_
