// InputDriver: the imperative input path — mouse clicks by coordinate, drags,
// keyboard chords and typing. This is what the GUI-only baseline agent uses.
// Coordinate-addressed actions pass through the instability injector's
// grounding noise, so a "click the control at (x, y)" can land on a neighbor,
// reproducing the visual-grounding fragility of vision-based agents
// (paper §2.1 Mismatch #2). DMI never uses coordinates.
#ifndef SRC_GUI_INPUT_H_
#define SRC_GUI_INPUT_H_

#include <string>

#include "src/gui/application.h"
#include "src/gui/instability.h"
#include "src/gui/screen.h"
#include "src/support/status.h"

namespace gsim {

class InputDriver {
 public:
  // `screen` and `injector` are borrowed; injector may be nullptr.
  InputDriver(Application& app, ScreenView& screen, InstabilityInjector* injector)
      : app_(&app), screen_(&screen), injector_(injector) {}

  // Clicks the control directly (used when the actor has resolved an exact
  // element, e.g. via an accessibility label). No coordinate noise.
  support::Status ClickControl(Control& control);

  // Clicks at a screen coordinate: perturbs the point, hit-tests, clicks
  // whatever is actually under the (noisy) cursor. May hit a neighbor or
  // nothing at all.
  support::Status ClickAt(Point target);

  // Clicks the center of the control's rect *by coordinate* — the composite
  // "locate visually, then click" a GUI agent performs.
  support::Status ClickControlByCoordinates(Control& control);

  // One drag step on a scroll thumb: moves the owning surface by
  // `delta_percent` on the given axis, with proportional noise on the amount.
  // The baseline must iterate drag-observe cycles to reach a target; DMI sets
  // the scroll position in one declarative call instead.
  support::Status DragScrollThumb(Control& scroll_surface, bool vertical, double delta_percent);

  support::Status TypeText(const std::string& text);
  support::Status KeyChord(const std::string& chord);

 private:
  Application* app_;
  ScreenView* screen_;
  InstabilityInjector* injector_;
};

}  // namespace gsim

#endif  // SRC_GUI_INPUT_H_
