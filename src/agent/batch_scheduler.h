// BatchScheduler: fleet-scale inference batching in front of SimLlm
// (DESIGN.md §12).
//
// At fleet scale, concurrent sessions of one app kind issue describe/plan
// calls whose prompts share the model's static prefix (usage hint + core
// topology — exactly the segment PR 6 hoisted onto dmi::CompiledModel). A
// real serving stack coalesces such calls into continuous batches: the shared
// prefix is prefilled once per batch, per-call unique segments are prefilled
// back to back, and decoding streams for the whole batch concurrently, so the
// amortized per-call cost is a strictly decreasing function of batch size.
//
// This scheduler simulates those serving economics *observationally*: every
// simulated LLM call is also submitted here (SimLlm::AttachBatchSink), calls
// are coalesced per prefix key (the CompiledModel identity) until
// max_batch_size accumulate, and each flushed batch is costed with a
// deterministic continuous-batching latency model (pure arithmetic on token
// counts and the LlmProfile rates — no RNG, so attaching the scheduler can
// never perturb a run's seeded decision stream). Per-run RunResults keep the
// canonical single-session latency; the scheduler's Stats and the batch.*
// metrics report what the same call stream costs a batching fleet.
#ifndef SRC_AGENT_BATCH_SCHEDULER_H_
#define SRC_AGENT_BATCH_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/agent/llm_profile.h"

namespace agentsim {

struct BatchOptions {
  // When false the runner never attaches the scheduler (RunConfig::batch).
  bool enabled = false;
  // Calls coalesced per batch before a flush; clamped to >= 1.
  size_t max_batch_size = 16;
};

class BatchScheduler {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t batches = 0;
    // Token traffic: shared prefix tokens are counted once per batch under
    // `prefix_tokens`; `prefix_tokens_saved` is the prefill the batch avoided
    // versus per-call private prefixes ((batch_size - 1) * prefix per batch).
    uint64_t unique_prompt_tokens = 0;
    uint64_t prefix_tokens = 0;
    uint64_t prefix_tokens_saved = 0;
    uint64_t output_tokens = 0;
    // As-if-serial cost of the same calls (deterministic median latency, one
    // call at a time) vs the summed batch wall times.
    double serial_latency_s = 0;
    double batched_latency_s = 0;

    double AmortizedCallLatencyS() const {
      return calls > 0 ? batched_latency_s / static_cast<double>(calls) : 0.0;
    }
    double AmortizedSpeedup() const {
      return batched_latency_s > 0 ? serial_latency_s / batched_latency_s : 0.0;
    }
    // Effective served tokens per simulated second: every call is credited
    // its full logical prompt (prefix + unique) plus output, so prefix
    // sharing shows up as throughput above the raw ingest rate.
    double TokensPerSec() const {
      const double served = static_cast<double>(unique_prompt_tokens + output_tokens) +
                            static_cast<double>(prefix_tokens + prefix_tokens_saved);
      return batched_latency_s > 0 ? served / batched_latency_s : 0.0;
    }
  };

  BatchScheduler() = default;
  explicit BatchScheduler(BatchOptions options) : options_(options) {}

  // Reconfigures the flush threshold (thread-safe). Pending calls and stats
  // are kept; Reset() discards both.
  void Configure(BatchOptions options);
  void Reset(BatchOptions options);

  // Submits one LLM call. `prefix_key` identifies the shared prompt prefix
  // (the CompiledModel address for DMI describe/plan calls; nullptr for
  // prefix-less calls, which still amortize the per-batch overhead).
  // `shared_prefix_tokens` must be identical for every call under one key.
  // `app_label` (optional) labels the per-call batch.* metrics by app kind.
  // Thread-safe: concurrent sessions submit from suite workers.
  //
  // Returns the id of the batch the call joined (1-based, process-unique per
  // scheduler) so callers can record batch membership in a run's flight
  // recorder. The submitting thread's trace context is captured here: the
  // eventual batch.flush span links every member call's submitting span and
  // lists the distinct member run ids, which is how one coalesced flush
  // attributes back to the many runs that paid for it.
  uint64_t Submit(const LlmProfile& profile, const void* prefix_key,
                  size_t shared_prefix_tokens, size_t unique_prompt_tokens,
                  size_t output_tokens, const std::string& app_label = {});

  // Flushes every pending partial batch (end of a suite / drain point).
  void FlushAll();

  Stats stats() const;

  // ----- the deterministic continuous-batching latency model -----------------
  // Wall time of one batch: per-batch scheduling overhead + one reasoning
  // window (decodes stream concurrently) + shared prefix prefilled once +
  // per-call unique prefill + the longest decode. Pure arithmetic — no RNG.
  static double BatchWallTimeS(const LlmProfile& profile, size_t batch_size,
                               size_t shared_prefix_tokens, size_t sum_unique_prompt_tokens,
                               size_t max_output_tokens);
  // Deterministic (median) serial cost of one call — SimLlm::CallLatency with
  // the lognormal reasoning draw pinned to its median.
  static double SerialCallTimeS(const LlmProfile& profile, size_t prompt_tokens,
                                size_t output_tokens);

 private:
  // Per-call rates copied out of the profile: a pending batch may outlive the
  // run (and SimLlm) that submitted into it.
  struct PendingCall {
    size_t unique_prompt_tokens = 0;
    size_t output_tokens = 0;
    double serial_s = 0;
    // Causal attribution, captured at submit time on the submitting thread.
    uint64_t submit_span_id = 0;
    uint64_t run_id = 0;
    std::string app_label;
  };
  struct PendingBatch {
    uint64_t id = 0;  // assigned when the batch opens (first call)
    size_t shared_prefix_tokens = 0;
    LlmProfile profile;  // rates of the first call in the batch
    std::vector<PendingCall> calls;
  };

  void FlushLocked(const void* key, PendingBatch& batch);

  mutable std::mutex mu_;
  BatchOptions options_;
  std::map<const void*, PendingBatch> pending_;
  uint64_t next_batch_id_ = 1;
  Stats stats_;
};

}  // namespace agentsim

#endif  // SRC_AGENT_BATCH_SCHEDULER_H_
