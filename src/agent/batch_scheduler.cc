#include "src/agent/batch_scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace agentsim {

void BatchScheduler::Configure(BatchOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
}

void BatchScheduler::Reset(BatchOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  pending_.clear();
  stats_ = Stats{};
}

double BatchScheduler::SerialCallTimeS(const LlmProfile& profile, size_t prompt_tokens,
                                       size_t output_tokens) {
  return profile.reasoning_latency_s +
         static_cast<double>(prompt_tokens) / profile.input_tok_per_s +
         static_cast<double>(output_tokens) / profile.output_tok_per_s;
}

double BatchScheduler::BatchWallTimeS(const LlmProfile& profile, size_t batch_size,
                                      size_t shared_prefix_tokens,
                                      size_t sum_unique_prompt_tokens,
                                      size_t max_output_tokens) {
  (void)batch_size;  // the batch dimension is carried by the summed uniques
  const double prefill_s =
      static_cast<double>(shared_prefix_tokens + sum_unique_prompt_tokens) /
      profile.input_tok_per_s;
  const double decode_s = static_cast<double>(max_output_tokens) / profile.output_tok_per_s;
  return profile.batch_overhead_s + profile.reasoning_latency_s + prefill_s + decode_s;
}

uint64_t BatchScheduler::Submit(const LlmProfile& profile, const void* prefix_key,
                                size_t shared_prefix_tokens, size_t unique_prompt_tokens,
                                size_t output_tokens, const std::string& app_label) {
  PendingCall call;
  call.unique_prompt_tokens = unique_prompt_tokens;
  call.output_tokens = output_tokens;
  call.serial_s =
      SerialCallTimeS(profile, shared_prefix_tokens + unique_prompt_tokens, output_tokens);
  // Capture the submitter's causal coordinates before taking the scheduler
  // lock: this runs on the run's worker thread, inside the run's span tree.
  const support::TraceContext ctx = support::CurrentTraceContext();
  call.submit_span_id = ctx.span_id;
  call.run_id = ctx.run_id;
  call.app_label = app_label;

  std::lock_guard<std::mutex> lock(mu_);
  PendingBatch& batch = pending_[prefix_key];
  if (batch.calls.empty()) {
    batch.id = next_batch_id_++;
    batch.shared_prefix_tokens = shared_prefix_tokens;
    batch.profile = profile;
  }
  const uint64_t batch_id = batch.id;
  batch.calls.push_back(std::move(call));
  const size_t cap = std::max<size_t>(options_.max_batch_size, 1);
  if (batch.calls.size() >= cap) {
    FlushLocked(prefix_key, batch);
    pending_.erase(prefix_key);
  }
  return batch_id;
}

void BatchScheduler::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, batch] : pending_) {
    if (!batch.calls.empty()) {
      FlushLocked(key, batch);
    }
  }
  pending_.clear();
}

void BatchScheduler::FlushLocked(const void* key, PendingBatch& batch) {
  support::TraceSpan span("batch.flush", "batch");
  const size_t batch_size = batch.calls.size();
  size_t sum_unique = 0;
  size_t sum_output = 0;
  size_t max_output = 0;
  double serial_s = 0;
  std::vector<uint64_t> member_runs;  // distinct member run ids, submit order
  for (const PendingCall& call : batch.calls) {
    sum_unique += call.unique_prompt_tokens;
    sum_output += call.output_tokens;
    max_output = std::max(max_output, call.output_tokens);
    serial_s += call.serial_s;
    // Fan-in: this flush serves many runs; link every member's submitting
    // span rather than picking a single parent.
    span.AddLink(call.submit_span_id);
    if (call.run_id != 0 &&
        std::find(member_runs.begin(), member_runs.end(), call.run_id) == member_runs.end()) {
      member_runs.push_back(call.run_id);
    }
    if (!call.app_label.empty()) {
      support::CountMetric("batch.calls", {{"app", call.app_label}});
    }
  }
  const double wall_s = BatchWallTimeS(batch.profile, batch_size, batch.shared_prefix_tokens,
                                       sum_unique, max_output);
  const uint64_t saved = static_cast<uint64_t>(batch.shared_prefix_tokens) *
                         static_cast<uint64_t>(batch_size - 1);

  stats_.calls += batch_size;
  stats_.batches += 1;
  stats_.unique_prompt_tokens += sum_unique;
  stats_.prefix_tokens += batch.shared_prefix_tokens;
  stats_.prefix_tokens_saved += saved;
  stats_.output_tokens += sum_output;
  stats_.serial_latency_s += serial_s;
  stats_.batched_latency_s += wall_s;

  support::CountMetric("batch.batches");
  support::CountMetric("batch.calls", batch_size);
  support::CountMetric("batch.prefix_tokens_saved", saved);
  support::ObserveMetric("batch.size", static_cast<double>(batch_size));
  support::ObserveMetric("batch.wall_s", wall_s);
  support::ObserveMetric("batch.amortized_call_s", wall_s / static_cast<double>(batch_size));
  span.AddArg("key", static_cast<int64_t>(reinterpret_cast<uintptr_t>(key)));
  span.AddArg("size", static_cast<int64_t>(batch_size));
  span.AddArg("prefix_tokens", static_cast<int64_t>(batch.shared_prefix_tokens));
  span.AddArg("batch_id", static_cast<int64_t>(batch.id));
  if (!member_runs.empty() && span.armed()) {
    std::string runs;
    for (uint64_t run : member_runs) {
      if (!runs.empty()) {
        runs += ',';
      }
      runs += std::to_string(run);
    }
    span.AddArg("runs", std::move(runs));
  }
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace agentsim
