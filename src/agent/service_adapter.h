// The legacy-RunConfig adapter for dmi::ServiceConfig (DESIGN.md §16).
//
// ServiceConfig is the one validated configuration surface; RunConfig is the
// agent layer's working view of it. Front ends (dmi_run, dmi_serve) parse
// into a ServiceConfig, Validate() it once, and call RunConfigFromService to
// project the per-run view out — mode/model names become enums, the policy
// preset is applied wholesale (ApplyPolicy), and the instability override is
// layered on top, exactly the order dmi_run's historical flag handling used.
#ifndef SRC_AGENT_SERVICE_ADAPTER_H_
#define SRC_AGENT_SERVICE_ADAPTER_H_

#include "src/agent/task_runner.h"
#include "src/dmi/service_config.h"

namespace agentsim {

// Precondition: config.Validate().ok(). Every name has been vetted, so the
// mapping is total and cannot fail.
RunConfig RunConfigFromService(const dmi::ServiceConfig& config);

}  // namespace agentsim

#endif  // SRC_AGENT_SERVICE_ADAPTER_H_
