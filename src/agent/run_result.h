// The outcome of one task run (one trial of one task under one setting).
#ifndef SRC_AGENT_RUN_RESULT_H_
#define SRC_AGENT_RUN_RESULT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/agent/failure.h"
#include "src/support/flight_recorder.h"
#include "src/support/status.h"

namespace agentsim {

// The UFO-2-like framework overhead: HostAgent decompose/open, AppAgent
// verify-and-handoff, HostAgent final verification (paper §5.3
// "One-shot task completion": 3 fixed steps around the core calls).
inline constexpr int kFrameworkOverheadSteps = 3;

struct RunResult {
  bool success = false;
  int llm_calls = 0;        // total, including the 3 framework steps
  int core_calls = 0;       // application-task calls only
  double sim_time_s = 0.0;  // simulated wall time (latencies + UI actions)
  size_t prompt_tokens = 0;
  size_t output_tokens = 0;
  size_t ui_actions = 0;  // concrete UI operations executed (clicks/keys/...)
  FailureCause cause = FailureCause::kNone;
  // Structured terminal status (DESIGN.md §11): Ok on success; on failure,
  // the status that killed the run, carrying its ErrorDetail payload
  // (offending control, required pattern, retryable flag, attempts consumed).
  support::Status final_status;
  // RenderJson() of the last visit report, captured only when the harness
  // asks for it (dmi_run --report-json). Empty otherwise.
  std::string report_json;
  // Causal telemetry (DESIGN.md §13). `run_id` keys this run's trace spans
  // and flight recorder; `flight` is the run's bounded event ring (commands,
  // statuses, retries, token counts, batch membership), null when recording
  // was disabled (RunConfig::flight_recorder_events == 0) or the result
  // predates the runner. Neither participates in run-equivalence comparisons.
  uint64_t run_id = 0;
  std::shared_ptr<const support::FlightRecorder> flight;
};

}  // namespace agentsim

#endif  // SRC_AGENT_RUN_RESULT_H_
