// The GUI-only baseline agent — a UFO-2-like AppAgent (paper §5.1 Baseline).
//
// Perceives the UI as labeled visible controls, emits *action sequences*
// constrained to currently visible controls (the "UFO2-as" configuration),
// and interacts imperatively: coordinate clicks (exposed to grounding noise),
// typed text, key chords, and iterative drag-observe loops for composite
// interactions. Optionally receives the DMI navigation forest as *static
// knowledge* in the prompt (the §5.5 ablation) — text only, no interface.
#ifndef SRC_AGENT_BASELINE_AGENT_H_
#define SRC_AGENT_BASELINE_AGENT_H_

#include <string>

#include "src/agent/run_result.h"
#include "src/agent/sim_llm.h"
#include "src/gui/application.h"
#include "src/gui/input.h"
#include "src/gui/instability.h"
#include "src/gui/screen.h"
#include "src/workload/tasks.h"

namespace agentsim {

struct BaselineConfig {
  // Total LLM-call cap per task (paper: 30 steps).
  int step_cap = 30;
  // Provide the serialized navigation forest as prompt knowledge (§5.5).
  bool forest_knowledge = false;
  // Token size of that knowledge blob (counted into every call's prompt).
  size_t forest_knowledge_tokens = 0;
  // Composite-interaction iteration cap before giving up.
  int max_drag_iterations = 8;
  int max_recoveries = 3;
};

class BaselineGuiAgent {
 public:
  BaselineGuiAgent(BaselineConfig config) : config_(config) {}

  // Runs one task on a fresh application. `injector` may be nullptr.
  RunResult Run(const workload::Task& task, gsim::Application& app, SimLlm& llm,
                gsim::InstabilityInjector* injector);

 private:
  BaselineConfig config_;
};

}  // namespace agentsim

#endif  // SRC_AGENT_BASELINE_AGENT_H_
