// Failure taxonomy for the Figure 6 reproduction (paper §5.6).
//
// Policy-level causes (semantic planning): the LLM decided wrongly.
// Mechanism-level causes (navigation/interaction): the decision was right but
// executing it through the interface went wrong.
#ifndef SRC_AGENT_FAILURE_H_
#define SRC_AGENT_FAILURE_H_

#include <string_view>

namespace agentsim {

enum class FailureCause {
  kNone = 0,
  // ----- policy ------------------------------------------------------------
  kAmbiguousTask,           // under-specified instruction misread
  kControlSemanticsMisread, // picked a semantically wrong control/parameter
  kVisualSemanticWeak,      // misunderstood on-screen content meaning
  kSubtleSemantics,         // missed a subtle requirement (e.g. ENTER commit)
  kTopologyInaccuracy,      // the offline model was wrong/incomplete
  // ----- mechanism -----------------------------------------------------------
  kNavigationError,         // control localization / navigation went wrong
  kCompositeInteractionError, // drag / multi-step interaction failed
  kVisualRecognitionError,  // grounding: clicked the wrong thing
  kStepBudgetExhausted,     // 30-step cap (counted as navigation-class)
  kDeadlineExceeded,        // per-run tick budget exhausted (DESIGN.md §11)
};

std::string_view FailureCauseName(FailureCause cause);

// Policy vs mechanism classification.
bool IsPolicyFailure(FailureCause cause);
bool IsMechanismFailure(FailureCause cause);

}  // namespace agentsim

#endif  // SRC_AGENT_FAILURE_H_
