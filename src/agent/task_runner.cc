#include "src/agent/task_runner.h"

#include <algorithm>
#include <future>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace agentsim {
namespace {

std::unique_ptr<gsim::Application> MakeScratch(workload::AppKind kind) {
  switch (kind) {
    case workload::AppKind::kWord:
      return std::make_unique<apps::WordSim>();
    case workload::AppKind::kExcel:
      return std::make_unique<apps::ExcelSim>();
    case workload::AppKind::kPpoint:
      return std::make_unique<apps::PpointSim>();
  }
  return nullptr;
}

// "control localization / navigation error" -> control_localization_navigation_error
std::string FailureSlug(FailureCause cause) {
  std::string slug;
  bool pending_sep = false;
  for (char c : FailureCauseName(cause)) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      if (pending_sep && !slug.empty()) {
        slug += '_';
      }
      pending_sep = false;
      slug += c;
    } else {
      pending_sep = true;
    }
  }
  return slug;
}

std::string FailureMetricName(FailureCause cause) { return "agent.failure." + FailureSlug(cause); }

}  // namespace

const char* InterfaceModeName(InterfaceMode mode) {
  switch (mode) {
    case InterfaceMode::kGuiOnly:
      return "GUI-only";
    case InterfaceMode::kGuiOnlyForest:
      return "GUI-only+forest";
    case InterfaceMode::kGuiPlusDmi:
      return "GUI+DMI";
  }
  return "?";
}

TaskRunner::TaskRunner() = default;

dmi::ModelingOptions TaskRunner::DefaultModelingOptions(workload::AppKind kind) {
  dmi::ModelingOptions options;
  options.ripper_config.blocklist = {"Account", "Feedback"};
  if (kind == workload::AppKind::kPpoint) {
    ripper::RipContext image_context;
    image_context.name = "image-selected";
    image_context.setup = [](gsim::Application& a) {
      auto& pp = static_cast<apps::PpointSim&>(a);
      pp.SetCurrentSlide(2);
      gsim::Control* image = nullptr;
      pp.main_window().root().WalkStatic([&](gsim::Control& c) {
        if (image == nullptr && c.Type() == uia::ControlType::kImage && !c.IsOffscreen()) {
          image = &c;
        }
      });
      if (image != nullptr) {
        (void)a.Click(*image);
      }
    };
    options.contexts = {image_context};
  }
  if (kind == workload::AppKind::kExcel) {
    // Scrolled-viewport contexts: cells below/right of the initial viewport
    // only exist on screen after scrolling, so the modeler visits the grid at
    // several scroll positions (context-aware exploration, §4.1).
    for (double v : {45.0, 90.0}) {
      ripper::RipContext scrolled;
      scrolled.name = "scrolled-" + std::to_string(static_cast<int>(v));
      scrolled.setup = [v](gsim::Application& a) {
        auto& excel = static_cast<apps::ExcelSim&>(a);
        auto* scroll = uia::PatternCast<uia::ScrollPattern>(*excel.grid_control());
        if (scroll != nullptr) {
          (void)scroll->SetScrollPercent(100.0, v);
        }
      };
      options.contexts.push_back(scrolled);
    }
  }
  return options;
}

void TaskRunner::SetModelDir(std::string dir, std::string app_version) {
  std::lock_guard<std::mutex> lock(models_mutex_);
  registry_ = dir.empty() ? nullptr : std::make_unique<dmi::ModelRegistry>(std::move(dir));
  model_app_version_ = std::move(app_version);
}

std::shared_ptr<const TaskRunner::AppModel> TaskRunner::ModelFor(workload::AppKind kind) {
  // Coarse lock: concurrent callers of an already-built model pay one probe;
  // a cold build holds the lock (RunSuite prebuilds before fanning out, so
  // workers never build).
  std::lock_guard<std::mutex> lock(models_mutex_);
  auto it = models_.find(kind);
  if (it != models_.end()) {
    return it->second;
  }
  auto model = std::make_shared<AppModel>();
  dmi::ModelingOptions options = DefaultModelingOptions(kind);
  // The full offline pipeline (rip + compile). Compile folds the rip stats
  // and the app's subtree-checksum table in, so a compiled model is the same
  // self-contained record an artifact load produces — and a valid delta-rip
  // baseline.
  auto pipeline = [&]() -> support::Result<std::shared_ptr<const dmi::CompiledModel>> {
    DMI_LOG(kInfo) << "modeling " << workload::AppKindName(kind) << " (offline phase)";
    std::unique_ptr<gsim::Application> scratch = MakeScratch(kind);
    // Checksums are taken on the pristine instance, before the ripper drives
    // it (the table is a pure function of static structure either way).
    const ripper::ChecksumTable checksums = ripper::ComputeSubtreeChecksums(*scratch);
    ripper::GuiRipper rip(*scratch, options.ripper_config);
    // Canonical layout is the modeling norm (same contract as the factory
    // rip entry points): delta splices and incremental recompiles line node
    // ids up against the baseline only when both sides are canonical.
    auto ripped =
        std::make_shared<topo::NavGraph>(rip.Rip(options.contexts).Canonicalized());
    auto compiled = dmi::CompiledModel::Compile(*ripped, options, &rip.stats(), &checksums);
    model->ripped = std::move(ripped);
    return compiled;
  };
  const auto vit = model_versions_.find(kind);
  const std::string& version = vit != model_versions_.end() ? vit->second : model_app_version_;
  if (registry_ != nullptr) {
    // Artifact store attached: cold-load when possible, compile (with
    // save-through) when not. The registry's fallback makes a corrupt or
    // missing artifact a perf event, never a failure, so the non-Result
    // ModelFor contract holds.
    auto acquired =
        registry_->Acquire(workload::AppKindName(kind), version, options, pipeline);
    model->compiled = *acquired;
  } else {
    model->compiled = *pipeline();
  }
  model->stats = model->compiled->stats();
  model->rip = model->stats.rip;
  model->core_tokens = model->stats.core_tokens;
  models_[kind] = model;
  return model;
}

support::Status TaskRunner::RefreshModel(workload::AppKind kind, const std::string& new_version,
                                         workload::AppPool::Factory factory) {
  support::TraceSpan span("model.refresh", "model");
  span.AddArg("app", workload::AppKindName(kind));
  span.AddArg("version", new_version);
  // Snapshot the baseline outside the remodel (the delta rip is long; the
  // models lock must not be held across it — workers keep resolving the old
  // model meanwhile, which is the whole point).
  std::shared_ptr<const AppModel> baseline;
  std::string old_version;
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    if (auto it = models_.find(kind); it != models_.end()) {
      baseline = it->second;
    }
    const auto vit = model_versions_.find(kind);
    old_version = vit != model_versions_.end() ? vit->second : model_app_version_;
  }
  dmi::ModelingOptions options = DefaultModelingOptions(kind);
  auto next = std::make_shared<AppModel>();
  auto remodel = [&](const std::shared_ptr<const dmi::CompiledModel>& registry_baseline)
      -> support::Result<dmi::ModelRegistry::Remodeled> {
    // The in-process baseline carries the raw ripped graph (the splice
    // source); a registry-resolved artifact baseline has only the decycled
    // DAG, so the delta ripper full-falls-back on it (empty baseline graph).
    std::shared_ptr<const dmi::CompiledModel> base_model =
        baseline != nullptr ? baseline->compiled : registry_baseline;
    ripper::DeltaRipOptions delta_options;
    delta_options.config = options.ripper_config;
    delta_options.extra_contexts = options.contexts;
    delta_options.app_factory = factory;
    const topo::NavGraph empty_graph;
    const ripper::ChecksumTable empty_table;
    const topo::NavGraph* base_graph =
        baseline != nullptr && baseline->ripped != nullptr ? baseline->ripped.get()
                                                           : &empty_graph;
    const ripper::ChecksumTable* base_checksums =
        base_model != nullptr && base_graph != &empty_graph ? &base_model->subtree_checksums()
                                                            : &empty_table;
    support::Result<ripper::DeltaRipResult> delta =
        ripper::DeltaRip(delta_options, *base_graph, *base_checksums);
    if (!delta.ok()) {
      return delta.status();
    }
    std::shared_ptr<const dmi::CompiledModel> compiled;
    if (base_model != nullptr) {
      dmi::CompiledModel::RecompileCounters counters;
      compiled = dmi::CompiledModel::RecompileDelta(*base_model, delta->graph, options,
                                                    &delta->stats, &delta->checksums, &counters);
    } else {
      compiled = dmi::CompiledModel::Compile(delta->graph, options, &delta->stats,
                                             &delta->checksums);
    }
    next->ripped = std::make_shared<topo::NavGraph>(std::move(delta->graph));
    return dmi::ModelRegistry::Remodeled{std::move(compiled), delta->nodes_reused};
  };
  support::Result<std::shared_ptr<const dmi::CompiledModel>> compiled =
      support::InvalidArgumentError("unreachable");
  if (registry_ != nullptr) {
    compiled = registry_->Refresh(workload::AppKindName(kind), old_version, new_version,
                                  options, remodel);
  } else {
    support::Result<dmi::ModelRegistry::Remodeled> remodeled = remodel(nullptr);
    if (!remodeled.ok()) {
      return remodeled.status();
    }
    compiled = std::move(remodeled->model);
  }
  if (!compiled.ok()) {
    return compiled.status();
  }
  next->compiled = *compiled;
  next->stats = next->compiled->stats();
  next->rip = next->stats.rip;
  next->core_tokens = next->stats.core_tokens;
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    models_[kind] = std::move(next);
    model_versions_[kind] = new_version;
  }
  // Publish the new app build to the pool last: from here on, new leases
  // construct the updated app and stale old-build instances are discarded on
  // return. A worker that raced ModelFor before the publish above still pairs
  // the old model with an old-build instance only if it also acquired its
  // lease before this line — both orders are internally consistent.
  app_pool_.SetFactory(kind, std::move(factory));
  return support::Status::Ok();
}

const dmi::ModelingStats& TaskRunner::modeling_stats(workload::AppKind kind) {
  // The returned reference stays valid while the runner holds the model in
  // its map; a RefreshModel of the same kind invalidates it.
  return ModelFor(kind)->stats;
}

const ripper::RipStats& TaskRunner::rip_stats(workload::AppKind kind) {
  return ModelFor(kind)->rip;
}

size_t TaskRunner::CoreTopologyTokens(workload::AppKind kind) {
  return ModelFor(kind)->core_tokens;
}

RunResult TaskRunner::RunOnce(const workload::Task& task, const RunConfig& config,
                              uint64_t seed) {
  // Allocate the run id unconditionally (one relaxed fetch_add): it keys the
  // flight recorder and the report entry even when tracing is off. The scope
  // installs {run_id, current span} so every span the run opens — including
  // spans opened on other threads via ThreadPool submission — carries it.
  const uint64_t run_id = support::AllocateTraceRunId();
  support::TraceContextScope run_scope(
      support::TraceContext{run_id, support::CurrentTraceContext().span_id});
  support::TraceSpan span("agent.run", "agent");
  span.AddArg("task", task.id);
  span.AddArg("mode", InterfaceModeName(config.mode));
  span.AddArg("seed", static_cast<int64_t>(seed));
  const int64_t run_start_us = support::TraceNowUs();
  RunResult result = RunOnceInternal(task, config, seed, run_id);
  result.run_id = run_id;
  span.AddArg("success", result.success ? int64_t{1} : int64_t{0});
  // The counters are straight sums over runs, so suite totals equal the
  // SuiteResult aggregates regardless of worker count or interleaving.
  support::CountMetric("agent.runs");
  support::CountMetric(result.success ? "agent.successes" : "agent.failures");
  support::CountMetric("agent.llm_calls", static_cast<uint64_t>(result.llm_calls));
  support::CountMetric("agent.core_calls", static_cast<uint64_t>(result.core_calls));
  support::CountMetric("agent.prompt_tokens", result.prompt_tokens);
  support::CountMetric("agent.output_tokens", result.output_tokens);
  support::CountMetric("agent.ui_actions", result.ui_actions);
  if (!result.success) {
    support::CountMetric(FailureMetricName(result.cause));
  }
  // Labeled series ride alongside the unlabeled totals above (the
  // total + per-label pattern), slicing the fleet by app kind, policy
  // preset, and failure class.
  {
    support::MetricLabels labels{{"app", workload::AppKindName(task.app)}};
    if (!config.policy_label.empty()) {
      labels.emplace_back("policy", config.policy_label);
    }
    support::CountMetric("agent.runs", labels);
    support::CountMetric(result.success ? "agent.successes" : "agent.failures", labels);
    support::CountMetric("agent.llm_calls", labels, static_cast<uint64_t>(result.llm_calls));
    support::CountMetric("agent.prompt_tokens", labels, result.prompt_tokens);
    if (!result.success) {
      labels.emplace_back("class", FailureSlug(result.cause));
      support::CountMetric("agent.failure", std::move(labels));
    }
  }
  support::ObserveMetric("agent.run_ms",
                         static_cast<double>(support::TraceNowUs() - run_start_us) / 1000.0);
  return result;
}

RunResult TaskRunner::RunOnceInternal(const workload::Task& task, const RunConfig& config,
                                      uint64_t seed, uint64_t run_id) {
  // Shared-ownership copy: if a RefreshModel publishes a new model for this
  // kind mid-run, this run keeps the build it started on (zero-downtime
  // swap, DESIGN.md §15).
  const std::shared_ptr<const AppModel> model = ModelFor(task.app);
  // The injector is declared before the lease on purpose: the lease destructor
  // factory-resets the pooled app, which detaches the injector pointer, and
  // only afterwards does the injector itself go out of scope.
  gsim::InstabilityInjector injector(config.instability, seed ^ 0x5eedf00dULL);
  SimLlm llm(config.profile, seed);
  // The run's flight recorder (DESIGN.md §13): LLM calls and batch
  // memberships stream in via the SimLlm hook, executed commands via the
  // session's visit executor. Shared so the RunResult can carry it out.
  std::shared_ptr<support::FlightRecorder> flight;
  if (config.flight_recorder_events > 0) {
    flight = std::make_shared<support::FlightRecorder>(run_id, config.flight_recorder_events);
    llm.AttachFlightRecorder(flight.get());
  }
  workload::AppPool::Lease lease = app_pool_.Acquire(task, config.pool_apps);
  gsim::Application& app = *lease;
  app.SetInstability(&injector);
  if (config.batch.enabled) {
    // Fleet accounting: DMI calls batch under the shared model's prefix key,
    // GUI-mode calls batch prefix-less. Observational only — the sink draws
    // no RNG and never feeds back into the run.
    const dmi::CompiledModel* prefix = config.mode == InterfaceMode::kGuiPlusDmi
                                           ? model->compiled.get()
                                           : nullptr;
    llm.AttachBatchSink(&batch_scheduler_, prefix,
                        prefix != nullptr ? prefix->static_prompt_tokens() : 0,
                        workload::AppKindName(task.app));
  }

  RunResult result;
  if (config.mode == InterfaceMode::kGuiPlusDmi) {
    dmi::SessionOptions session_options;
    session_options.visit = config.visit;
    session_options.interaction = model->compiled->options().interaction;
    session_options.interaction.retry = config.interaction_retry;
    dmi::DmiSession session(app, model->compiled, session_options);
    // Backoff jitter is seeded per trial: deterministic for a given seed,
    // decorrelated across trials.
    session.SeedRetryRng(seed);
    if (config.run_deadline_ticks > 0) {
      session.SetRunDeadline(
          support::Deadline::AtTicks(app.current_tick(), config.run_deadline_ticks));
    }
    session.SetFlightRecorder(flight.get());
    DmiAgentConfig agent_config;
    agent_config.step_cap = config.step_cap;
    agent_config.capture_report_json = config.capture_report_json;
    DmiAgent agent(agent_config);
    result = agent.Run(task, session, llm);
  } else {
    BaselineConfig agent_config;
    agent_config.step_cap = config.step_cap;
    agent_config.forest_knowledge = config.mode == InterfaceMode::kGuiOnlyForest;
    agent_config.forest_knowledge_tokens = model->core_tokens;
    BaselineGuiAgent agent(agent_config);
    result = agent.Run(task, app, llm, &injector);
  }
  if (flight != nullptr && !result.success) {
    flight->RecordNote("run failed: " + std::string(FailureCauseName(result.cause)));
  }
  result.flight = std::move(flight);
  return result;
}

SuiteResult TaskRunner::RunSuite(const std::vector<workload::Task>& tasks,
                                 const RunConfig& config) {
  support::TraceSpan span("agent.suite", "agent");
  span.AddArg("tasks", static_cast<int64_t>(tasks.size()));
  span.AddArg("repeats", static_cast<int64_t>(config.repeats));
  span.AddArg("mode", InterfaceModeName(config.mode));
  // Trial seeds depend only on (suite seed, task id, trial index), never on
  // execution order, so serial and parallel suites produce identical records.
  auto trial_seed = [&config](const workload::Task& task, int trial) {
    return config.seed * 1000003ULL + std::hash<std::string>{}(task.id) * 31ULL +
           static_cast<uint64_t>(trial) * 7919ULL;
  };

  SuiteResult result;
  result.records.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    result.records[i].task_id = tasks[i].id;
    result.records[i].runs.resize(static_cast<size_t>(config.repeats));
  }

  if (config.batch.enabled) {
    batch_scheduler_.Configure(config.batch);
  }

  const int workers =
      config.workers == 0 ? static_cast<int>(support::ThreadPool::DefaultThreads())
                          : config.workers;
  if (workers <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      for (int trial = 0; trial < config.repeats; ++trial) {
        result.records[i].runs[static_cast<size_t>(trial)] =
            RunOnce(tasks[i], config, trial_seed(tasks[i], trial));
      }
    }
    if (config.batch.enabled) {
      batch_scheduler_.FlushAll();
    }
    return result;
  }

  // Parallel fan-out over (task, trial) cells into preallocated slots. Models
  // are built up front so workers only ever read them; every run owns a fresh
  // app instance confined to its worker. Fleet mode additionally prewarms the
  // app pool so concurrent leases start from reset instances instead of
  // racing through first-touch construction.
  for (const workload::Task& task : tasks) {
    ModelFor(task.app);
  }
  if (config.batch.enabled && config.pool_apps) {
    std::set<workload::AppKind> kinds;
    for (const workload::Task& task : tasks) {
      if (kinds.insert(task.app).second) {
        app_pool_.Prewarm(task, static_cast<size_t>(workers));
      }
    }
  }
  support::ThreadPool pool(static_cast<size_t>(workers));
  std::vector<std::future<void>> pending;
  pending.reserve(tasks.size() * static_cast<size_t>(config.repeats));
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (int trial = 0; trial < config.repeats; ++trial) {
      RunResult* slot = &result.records[i].runs[static_cast<size_t>(trial)];
      const workload::Task* task = &tasks[i];
      const uint64_t seed = trial_seed(*task, trial);
      pending.push_back(pool.Submit(
          [this, slot, task, &config, seed] { *slot = RunOnce(*task, config, seed); }));
    }
  }
  for (std::future<void>& f : pending) {
    f.get();
  }
  if (config.batch.enabled) {
    batch_scheduler_.FlushAll();
  }
  return result;
}

// ----- SuiteResult aggregates -----------------------------------------------------

int SuiteResult::TotalRuns() const {
  int n = 0;
  for (const TaskRecord& r : records) {
    n += static_cast<int>(r.runs.size());
  }
  return n;
}

int SuiteResult::FailedRuns() const {
  int n = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      n += run.success ? 0 : 1;
    }
  }
  return n;
}

double SuiteResult::SuccessRate() const {
  const int total = TotalRuns();
  if (total == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(FailedRuns()) / total;
}

double SuiteResult::AvgStepsSuccessful() const {
  double sum = 0;
  int n = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        sum += run.llm_calls;
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SuiteResult::AvgTimeSuccessful() const {
  double sum = 0;
  int n = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        sum += run.sim_time_s;
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SuiteResult::AvgPromptTokensSuccessful() const {
  double sum = 0;
  int n = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        sum += static_cast<double>(run.prompt_tokens);
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SuiteResult::AvgTotalTokensSuccessful() const {
  double sum = 0;
  int n = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        sum += static_cast<double>(run.prompt_tokens + run.output_tokens);
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SuiteResult::OneShotShare(int core_calls) const {
  int successes = 0;
  int one_shot = 0;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        ++successes;
        if (run.core_calls <= core_calls) {
          ++one_shot;
        }
      }
    }
  }
  return successes == 0 ? 0.0 : static_cast<double>(one_shot) / successes;
}

std::set<std::string> SuiteResult::SolvedTasks() const {
  std::set<std::string> solved;
  for (const TaskRecord& r : records) {
    int wins = 0;
    for (const RunResult& run : r.runs) {
      wins += run.success ? 1 : 0;
    }
    if (wins * 2 > static_cast<int>(r.runs.size())) {
      solved.insert(r.task_id);
    }
  }
  return solved;
}

std::set<std::string> SuiteResult::SolvableTasks() const {
  std::set<std::string> solvable;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (run.success) {
        solvable.insert(r.task_id);
        break;
      }
    }
  }
  return solvable;
}

double SuiteResult::AvgStepsOnTasks(const std::set<std::string>& ids) const {
  double sum = 0;
  int n = 0;
  for (const TaskRecord& r : records) {
    if (ids.count(r.task_id) == 0) {
      continue;
    }
    for (const RunResult& run : r.runs) {
      if (run.success) {
        sum += run.llm_calls;
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

std::map<FailureCause, int> SuiteResult::FailureDistribution() const {
  std::map<FailureCause, int> dist;
  for (const TaskRecord& r : records) {
    for (const RunResult& run : r.runs) {
      if (!run.success) {
        ++dist[run.cause];
      }
    }
  }
  return dist;
}

}  // namespace agentsim
