// SimLlm: a seeded stochastic decision sampler driven by a capability
// profile. Both agents draw every "LLM decision" from here, so an experiment
// is exactly reproducible from (profile, seed).
#ifndef SRC_AGENT_SIM_LLM_H_
#define SRC_AGENT_SIM_LLM_H_

#include <cstdint>

#include "src/agent/failure.h"
#include "src/agent/llm_profile.h"
#include "src/support/rng.h"
#include "src/workload/tasks.h"

namespace agentsim {

class SimLlm {
 public:
  SimLlm(const LlmProfile& profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  const LlmProfile& profile() const { return profile_; }
  support::Rng& rng() { return rng_; }

  // Task-level policy outcome, sampled once per run. Returns kNone or the
  // policy failure that will doom the run (the agent doesn't know yet).
  FailureCause SampleTaskPolicy(const workload::Task& task, bool gui_mode,
                                bool forest_knowledge);

  // Per-decision samples.
  bool WrongControlChoice(bool gui_mode, bool forest_knowledge);
  bool GroundingError();
  bool DetectsWrongClick();
  bool NavPlanError(bool forest_knowledge);
  bool SlipsNavigationNodes();
  bool CompositeCollapses();
  bool SelectionOffByOne();
  bool VerifyCatches();
  bool TopologyInaccuracy();
  bool ResidualMechanismFailure();

  // Misperceived scroll position (GUI observe-act loops read the screen).
  double PerceiveScroll(double actual);

  // Per-call latency in seconds given prompt/output token counts.
  double CallLatency(size_t prompt_tokens, size_t output_tokens);

 private:
  LlmProfile profile_;
  support::Rng rng_;
};

}  // namespace agentsim

#endif  // SRC_AGENT_SIM_LLM_H_
