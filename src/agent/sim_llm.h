// SimLlm: a seeded stochastic decision sampler driven by a capability
// profile. Both agents draw every "LLM decision" from here, so an experiment
// is exactly reproducible from (profile, seed).
#ifndef SRC_AGENT_SIM_LLM_H_
#define SRC_AGENT_SIM_LLM_H_

#include <cstdint>

#include <cstddef>
#include <string>

#include "src/agent/failure.h"
#include "src/agent/llm_profile.h"
#include "src/support/flight_recorder.h"
#include "src/support/rng.h"
#include "src/workload/tasks.h"

namespace agentsim {

class BatchScheduler;

class SimLlm {
 public:
  SimLlm(const LlmProfile& profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  const LlmProfile& profile() const { return profile_; }
  support::Rng& rng() { return rng_; }

  // Task-level policy outcome, sampled once per run. Returns kNone or the
  // policy failure that will doom the run (the agent doesn't know yet).
  FailureCause SampleTaskPolicy(const workload::Task& task, bool gui_mode,
                                bool forest_knowledge);

  // Per-decision samples.
  bool WrongControlChoice(bool gui_mode, bool forest_knowledge);
  bool GroundingError();
  bool DetectsWrongClick();
  bool NavPlanError(bool forest_knowledge);
  bool SlipsNavigationNodes();
  bool CompositeCollapses();
  bool SelectionOffByOne();
  bool VerifyCatches();
  bool TopologyInaccuracy();
  bool ResidualMechanismFailure();

  // Misperceived scroll position (GUI observe-act loops read the screen).
  double PerceiveScroll(double actual);

  // Per-call latency in seconds given prompt/output token counts. When a
  // batch sink is attached, the call is also submitted to it for fleet-scale
  // batching accounting; the returned (seeded, per-session) latency is
  // unaffected, so attaching a sink never perturbs determinism.
  double CallLatency(size_t prompt_tokens, size_t output_tokens);

  // Routes every subsequent CallLatency into `scheduler` (observational; see
  // batch_scheduler.h). `prefix_key` identifies the shared prompt prefix
  // (the CompiledModel address in DMI mode, nullptr otherwise) and
  // `shared_prefix_tokens` its length; calls whose prompts are shorter than
  // the prefix (framework steps) are submitted prefix-less. `app_label`
  // labels the per-call batch.* metrics by app kind ("" = unlabeled).
  void AttachBatchSink(BatchScheduler* scheduler, const void* prefix_key,
                       size_t shared_prefix_tokens, std::string app_label = {});

  // Routes every subsequent CallLatency into the run's flight recorder
  // (token counts + batch membership). Borrowed pointer; the runner owns the
  // recorder and detaches by attaching nullptr.
  void AttachFlightRecorder(support::FlightRecorder* recorder) { flight_ = recorder; }

 private:
  LlmProfile profile_;
  support::Rng rng_;
  BatchScheduler* batch_sink_ = nullptr;
  const void* batch_prefix_key_ = nullptr;
  size_t batch_prefix_tokens_ = 0;
  std::string batch_app_label_;
  support::FlightRecorder* flight_ = nullptr;
};

}  // namespace agentsim

#endif  // SRC_AGENT_SIM_LLM_H_
