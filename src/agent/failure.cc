#include "src/agent/failure.h"

namespace agentsim {

std::string_view FailureCauseName(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kAmbiguousTask:
      return "ambiguous task description";
    case FailureCause::kControlSemanticsMisread:
      return "misinterpretation of control semantics";
    case FailureCause::kVisualSemanticWeak:
      return "weak visual-semantic understanding";
    case FailureCause::kSubtleSemantics:
      return "misunderstanding of subtle task semantics";
    case FailureCause::kTopologyInaccuracy:
      return "topology/modeling inaccuracy";
    case FailureCause::kNavigationError:
      return "control localization / navigation error";
    case FailureCause::kCompositeInteractionError:
      return "composite interaction error";
    case FailureCause::kVisualRecognitionError:
      return "visual recognition error";
    case FailureCause::kStepBudgetExhausted:
      return "step budget exhausted";
    case FailureCause::kDeadlineExceeded:
      return "run deadline exceeded";
  }
  return "?";
}

bool IsPolicyFailure(FailureCause cause) {
  switch (cause) {
    case FailureCause::kAmbiguousTask:
    case FailureCause::kControlSemanticsMisread:
    case FailureCause::kVisualSemanticWeak:
    case FailureCause::kSubtleSemantics:
    case FailureCause::kTopologyInaccuracy:
      return true;
    default:
      return false;
  }
}

bool IsMechanismFailure(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNavigationError:
    case FailureCause::kCompositeInteractionError:
    case FailureCause::kVisualRecognitionError:
    case FailureCause::kStepBudgetExhausted:
    case FailureCause::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

}  // namespace agentsim
