// TaskRunner: the experiment harness behind every end-to-end table/figure.
//
// Models each application once (offline phase, cached), then runs tasks under
// a setting = (interface mode, LLM profile, instability level, robustness
// toggles), repeating each task and aggregating the paper's metrics: SR,
// Steps (LLM calls), Time (simulated), tokens, one-shot share, and the
// failure-cause distribution.
#ifndef SRC_AGENT_TASK_RUNNER_H_
#define SRC_AGENT_TASK_RUNNER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/agent/baseline_agent.h"
#include "src/agent/batch_scheduler.h"
#include "src/agent/dmi_agent.h"
#include "src/agent/llm_profile.h"
#include "src/agent/run_result.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/model_registry.h"
#include "src/dmi/policy.h"
#include "src/dmi/session.h"
#include "src/workload/app_pool.h"
#include "src/workload/tasks.h"

namespace agentsim {

enum class InterfaceMode {
  kGuiOnly,        // UFO2-as baseline
  kGuiOnlyForest,  // baseline + navigation forest as prompt knowledge (§5.5)
  kGuiPlusDmi,     // UFO2-as + DMI (our approach)
};

const char* InterfaceModeName(InterfaceMode mode);

struct RunConfig {
  InterfaceMode mode = InterfaceMode::kGuiOnly;
  LlmProfile profile = LlmProfile::Gpt5Medium();
  uint64_t seed = 1;
  int repeats = 3;  // paper: each task run three times, averaged
  int step_cap = 30;
  gsim::InstabilityConfig instability = gsim::InstabilityConfig::Typical();
  dmi::VisitConfig visit;  // robustness toggles (ablation bench)
  // Worker threads for RunSuite: 1 = serial (default), 0 = one per hardware
  // thread, N = exactly N. Each (task, trial) run is seeded independently of
  // execution order, so the suite result is identical for any worker count.
  int workers = 1;
  // Lease pooled application instances (factory-reset between runs) instead
  // of constructing a fresh app per run. Pooled and unpooled suites produce
  // byte-identical results — the pool's reset-equivalence contract is
  // checksum-verified in debug builds (DESIGN.md §10).
  bool pool_apps = true;
  // Per-run tick budget (DESIGN.md §11). 0 = unlimited. DMI mode only: the
  // session's executor refuses commands past the budget and the agent runs
  // one graceful re-describe pass before reporting kDeadlineExceeded.
  uint64_t run_deadline_ticks = 0;
  // Typed retry schedule for the interaction interfaces (DMI mode). Left
  // unset, transient interaction failures fail fast (legacy behavior).
  support::RetryPolicy interaction_retry;
  // Capture RenderJson() of the last visit report into each RunResult
  // (dmi_run --report-json pays this; everything else leaves it off).
  bool capture_report_json = false;
  // Fleet-scale inference batching (DESIGN.md §12). When enabled, every
  // simulated LLM call is also submitted to the runner's BatchScheduler,
  // which coalesces concurrent sessions' calls per shared prompt prefix and
  // reports the continuous-batching economics on batch.* metrics and
  // TaskRunner::batch_stats(). Observational by construction: RunResults and
  // SuiteResults are field-identical with batching on or off, at any batch
  // size (tested, including under Harsh/Hostile policies).
  BatchOptions batch;
  // `policy` label stamped on the labeled agent.* metrics (DESIGN.md §13);
  // set by ApplyPolicy from the preset name, empty = unlabeled dimension.
  std::string policy_label;
  // Flight-recorder ring capacity per run (DESIGN.md §13). 0 disables the
  // recorder entirely (no allocation, no recording).
  size_t flight_recorder_events = 128;

  // Adopts a robustness preset (dmi::Policy) wholesale: instability level,
  // visit/interaction retry schedules, the per-run deadline, and the metrics
  // policy label.
  void ApplyPolicy(const dmi::Policy& policy) {
    instability = policy.instability;
    visit = policy.visit;
    interaction_retry = policy.interaction.retry;
    run_deadline_ticks = policy.run_deadline_ticks;
    policy_label = policy.name;
  }
};

struct TaskRecord {
  std::string task_id;
  std::vector<RunResult> runs;
};

struct SuiteResult {
  std::vector<TaskRecord> records;

  double SuccessRate() const;
  // Steps/Time averaged over successful runs only (paper Table 3 convention).
  double AvgStepsSuccessful() const;
  double AvgTimeSuccessful() const;
  double AvgPromptTokensSuccessful() const;
  double AvgTotalTokensSuccessful() const;
  // Share of successful runs completed in <= `core_calls` core LLM calls
  // (core 1 == the paper's "4 steps" one-shot completion).
  double OneShotShare(int core_calls = 1) const;
  // Task ids solved in the majority of runs.
  std::set<std::string> SolvedTasks() const;
  // Task ids solved in at least one run ("solvable").
  std::set<std::string> SolvableTasks() const;
  // Average steps over successful runs of the given tasks (for the
  // intersection normalization of Figure 5b).
  double AvgStepsOnTasks(const std::set<std::string>& ids) const;
  std::map<FailureCause, int> FailureDistribution() const;
  int TotalRuns() const;
  int FailedRuns() const;
};

class TaskRunner {
 public:
  TaskRunner();

  // One run of one task under the setting, with an explicit trial seed.
  RunResult RunOnce(const workload::Task& task, const RunConfig& config, uint64_t seed);

  // Full suite, `config.repeats` trials per task. With `config.workers` > 1
  // and `config.batch.enabled`, this is the concurrent multi-session fleet
  // mode: worker threads run sessions that share one CompiledModel per app
  // kind (single static-prompt copy), lease pooled apps, and coalesce their
  // LLM calls in the batch scheduler; partial batches are flushed at suite
  // end.
  SuiteResult RunSuite(const std::vector<workload::Task>& tasks, const RunConfig& config);

  // The fleet batching scheduler (populated by runs with batch.enabled).
  // Reset() it between suites for per-suite accounting; stats() otherwise
  // accumulate across the runner's lifetime.
  BatchScheduler& batch_scheduler() { return batch_scheduler_; }
  BatchScheduler::Stats batch_stats() const { return batch_scheduler_.stats(); }

  // Offline-phase results for §5.2 reporting.
  const dmi::ModelingStats& modeling_stats(workload::AppKind kind);
  const ripper::RipStats& rip_stats(workload::AppKind kind);
  // Serialized core-topology token count (the knowledge blob in the §5.5
  // ablation and the context overhead in §5.4).
  size_t CoreTopologyTokens(workload::AppKind kind);

  // The modeling configuration shared by all settings.
  static dmi::ModelingOptions DefaultModelingOptions(workload::AppKind kind);

  // Attaches a binary artifact store (DESIGN.md §14): ModelFor resolves
  // models through a dmi::ModelRegistry rooted at `dir` — checksum-verified
  // cold load when an artifact exists, full rip+compile with save-through
  // when it doesn't. `app_version` is the store key's second half. Call
  // before the first run; the in-memory model cache is not invalidated.
  void SetModelDir(std::string dir, std::string app_version = "1");

  // The artifact registry, or nullptr when no model dir is attached.
  const dmi::ModelRegistry* model_registry() const { return registry_.get(); }
  // Non-const registry access (tests wire a flight recorder, call Prune).
  dmi::ModelRegistry* mutable_model_registry() { return registry_.get(); }

  // Live model swap (DESIGN.md §15): delta-rips the updated application build
  // produced by `factory` against the current model's checksum table,
  // incrementally recompiles, and atomically publishes the result as `kind`'s
  // model under `new_version`. Zero-downtime: runs already in flight hold a
  // shared_ptr to the old model and finish on it; runs started after this
  // returns see the new model, and pooled app leases construct the new build
  // (old-build instances are destroyed on return, never re-shelved). With an
  // artifact store attached the swap goes through ModelRegistry::Refresh
  // (save-through + registry.delta_* stats).
  support::Status RefreshModel(workload::AppKind kind, const std::string& new_version,
                               workload::AppPool::Factory factory);

  // The shared application pool (tests probe shelf state across swaps).
  workload::AppPool& app_pool() { return app_pool_; }

 private:
  struct AppModel {
    // Immutable compiled pipeline shared read-only by every DMI-mode run
    // (thin per-run sessions attach in O(dynamic state)).
    std::shared_ptr<const dmi::CompiledModel> compiled;
    // The raw ripped NavGraph the model was compiled from — the delta
    // ripper's splice source. Null when the model was cold-loaded from an
    // artifact (the artifact stores the decycled DAG, not the raw graph); a
    // refresh then falls back to a full rip.
    std::shared_ptr<const topo::NavGraph> ripped;
    // Compiled stats with the rip stats folded in (§5.2 reporting).
    dmi::ModelingStats stats;
    ripper::RipStats rip;
    size_t core_tokens = 0;
  };

  // Shared-ownership lookup: callers copy the pointer out and keep using the
  // model even if RefreshModel republishes the kind mid-run.
  std::shared_ptr<const AppModel> ModelFor(workload::AppKind kind);

  // The uninstrumented run body; RunOnce wraps it in the run's trace scope +
  // span and publishes the result onto the agent.* counters/histograms.
  // `run_id` keys the run's flight recorder (and the installed TraceContext).
  RunResult RunOnceInternal(const workload::Task& task, const RunConfig& config,
                            uint64_t seed, uint64_t run_id);

  // Guards models_ when RunSuite fans runs out across workers. Models are
  // immutable once built (RunSuite prebuilds them before the fan-out), so
  // only the map lookup needs the lock.
  std::mutex models_mutex_;
  std::map<workload::AppKind, std::shared_ptr<const AppModel>> models_;
  // Set via SetModelDir; when present, ModelFor goes through it.
  std::unique_ptr<dmi::ModelRegistry> registry_;
  std::string model_app_version_ = "1";
  // Per-kind published version; absent = model_app_version_. Advanced by
  // RefreshModel.
  std::map<workload::AppKind, std::string> model_versions_;
  // Reset-based application pool shared by all runs (thread-safe; see
  // workload::AppPool). Unpooled runs go through it too, as throwaway leases.
  workload::AppPool app_pool_;
  // Fleet batching accounting shared by all concurrent runs (thread-safe).
  BatchScheduler batch_scheduler_;
};

}  // namespace agentsim

#endif  // SRC_AGENT_TASK_RUNNER_H_
