#include "src/agent/service_adapter.h"

#include <cassert>

namespace agentsim {
namespace {

gsim::InstabilityConfig InstabilityByName(const std::string& name) {
  if (name == "none") {
    return gsim::InstabilityConfig::None();
  }
  if (name == "harsh") {
    return gsim::InstabilityConfig::Harsh();
  }
  if (name == "hostile") {
    return gsim::InstabilityConfig::Hostile();
  }
  return gsim::InstabilityConfig::Typical();
}

dmi::Policy PolicyByName(const std::string& name) {
  if (name == "none") {
    return dmi::Policy::None();
  }
  if (name == "harsh") {
    return dmi::Policy::Harsh();
  }
  if (name == "hostile") {
    return dmi::Policy::Hostile();
  }
  return dmi::Policy::Typical();
}

}  // namespace

RunConfig RunConfigFromService(const dmi::ServiceConfig& config) {
  assert(config.Validate().ok() && "RunConfigFromService on unvalidated config");
  RunConfig run;
  if (config.mode == "gui") {
    run.mode = InterfaceMode::kGuiOnly;
  } else if (config.mode == "forest") {
    run.mode = InterfaceMode::kGuiOnlyForest;
  } else {
    run.mode = InterfaceMode::kGuiPlusDmi;
  }
  if (config.model == "gpt5min") {
    run.profile = LlmProfile::Gpt5Minimal();
  } else if (config.model == "mini") {
    run.profile = LlmProfile::Gpt5MiniMedium();
  } else {
    run.profile = LlmProfile::Gpt5Medium();
  }
  run.seed = config.seed;
  run.repeats = config.repeats;
  run.step_cap = config.step_cap;
  run.workers = config.workers;
  run.pool_apps = config.pool_apps;
  run.capture_report_json = config.capture_report_json;
  run.flight_recorder_events = static_cast<size_t>(config.flight_recorder_events);
  if (!config.policy.empty()) {
    run.ApplyPolicy(PolicyByName(config.policy));
  }
  if (!config.instability.empty()) {
    // Hazard-level override layered after the preset, mirroring the CLI
    // contract: --policy adopts the whole posture, --instability afterwards
    // overrides just the injector level.
    run.instability = InstabilityByName(config.instability);
  }
  if (config.batch_size > 0) {
    run.batch.enabled = true;
    run.batch.max_batch_size = static_cast<size_t>(config.batch_size);
  }
  return run;
}

}  // namespace agentsim
