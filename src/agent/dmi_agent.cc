#include "src/agent/dmi_agent.h"

#include <algorithm>

#include "src/apps/excel_sim.h"
#include "src/gui/input.h"
#include "src/support/flight_recorder.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/uia/tree.h"
#include "src/text/tokens.h"

namespace agentsim {
namespace {

using workload::DmiStep;
using workload::VisitTarget;

// Groups consecutive kVisitBatch steps into one LLM turn; every interaction
// step is its own turn (visit and interaction interfaces never mix, §3.4).
std::vector<std::vector<const DmiStep*>> GroupIntoTurns(const std::vector<DmiStep>& plan) {
  std::vector<std::vector<const DmiStep*>> turns;
  for (const DmiStep& step : plan) {
    const bool is_visit = step.kind == DmiStep::Kind::kVisitBatch;
    if (is_visit && !turns.empty() && !turns.back().empty() &&
        turns.back().back()->kind == DmiStep::Kind::kVisitBatch) {
      turns.back().push_back(&step);
    } else {
      turns.push_back({&step});
    }
  }
  return turns;
}

// Accounting for a run doomed by the residual mechanism hazard: the agent
// burns the framework overhead plus two core attempts before giving up.
constexpr int kResidualCoreCalls = 2;
constexpr int kResidualLlmCalls = kFrameworkOverheadSteps + kResidualCoreCalls;
// Per-call prompt = session prompt context + roughly this many tokens of task
// description and framework scaffolding.
constexpr size_t kResidualTaskOverheadTokens = 200;
// Output across the whole run (plans, retries, the giving-up summary)...
constexpr size_t kResidualOutputTokensTotal = 500;
// ...but latency is charged per call at the typical plan-emission size.
constexpr size_t kResidualOutputTokensPerCall = 120;

}  // namespace

RunResult DmiAgent::Run(const workload::Task& task, dmi::DmiSession& session, SimLlm& llm) {
  support::TraceSpan run_span("agent.dmi", "agent");
  run_span.AddArg("task", task.id);
  RunResult rr;
  gsim::Application& app = session.app();

  const FailureCause doom =
      llm.SampleTaskPolicy(task, /*gui_mode=*/false, /*forest_knowledge=*/true);
  const bool topology_doom = llm.TopologyInaccuracy();
  // Residual mechanism hazard (unmodeled real-world UIA flakiness).
  if (llm.ResidualMechanismFailure()) {
    rr.llm_calls = kResidualLlmCalls;
    rr.core_calls = kResidualCoreCalls;
    const size_t per_call_prompt = session.PromptTokens() + kResidualTaskOverheadTokens;
    rr.prompt_tokens = static_cast<size_t>(kResidualLlmCalls) * per_call_prompt;
    rr.output_tokens = kResidualOutputTokensTotal;
    rr.sim_time_s =
        llm.CallLatency(per_call_prompt, kResidualOutputTokensPerCall) * kResidualLlmCalls;
    rr.success = false;
    rr.cause = llm.rng().Bernoulli(0.6) ? FailureCause::kNavigationError
                                        : FailureCause::kCompositeInteractionError;
    support::ErrorDetail residual;
    residual.retryable = false;
    residual.attempts = 1;
    rr.final_status = support::UnavailableError(
                          "residual mechanism failure: " +
                          std::string(FailureCauseName(rr.cause)))
                          .WithDetail(std::move(residual));
    return rr;
  }

  auto spend_call = [&](size_t output_tokens) {
    ++rr.llm_calls;
    const size_t in = session.PromptTokens() + textutil::CountTokens(task.description);
    rr.prompt_tokens += in;
    rr.output_tokens += output_tokens;
    rr.sim_time_s += llm.CallLatency(in, output_tokens);
  };

  // HostAgent decompose (framework step 1). Its prompt is small (no topology).
  ++rr.llm_calls;
  rr.prompt_tokens += 500;
  rr.output_tokens += 80;
  rr.sim_time_s += llm.CallLatency(500, 80);

  std::vector<DmiStep> plan = task.dmi_plan;
  if (doom != FailureCause::kNone) {
    // Misread task: the last functional target never gets declared.
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
      if (it->kind == DmiStep::Kind::kVisitBatch && !it->targets.empty()) {
        it->targets.pop_back();
        if (it->targets.empty()) {
          plan.erase(std::next(it).base());
        }
        break;
      }
      if (it->kind != DmiStep::Kind::kVisitBatch) {
        plan.erase(std::next(it).base());
        break;
      }
    }
  }

  FailureCause pending_cause = FailureCause::kNone;
  // Resume-from-failure bookkeeping: the number of leading commands of the
  // current turn's batch that already executed successfully in an earlier
  // attempt. The executor aborts at the first failure, so everything before
  // it ran for real — a retried turn must not replay that prefix (most
  // critically shortcuts, whose key chords are not idempotent).
  size_t resume_skip = 0;

  // Executes one turn; returns OK or the failure to surface.
  auto run_visit_turn = [&](const std::vector<const DmiStep*>& steps) -> support::Status {
    std::vector<dmi::VisitCommand> commands;
    bool wrong_pick = false;
    for (const DmiStep* step : steps) {
      for (const VisitTarget& vt : step->targets) {
        auto resolved = session.ResolveTargetByNames(vt.name_chain);
        if (!resolved.ok()) {
          // The model lacks this control: topology inaccuracy surfaces here.
          pending_cause = FailureCause::kTopologyInaccuracy;
          return resolved.status();
        }
        dmi::ResolvedTarget target = *resolved;
        if (topology_doom || llm.WrongControlChoice(false, true)) {
          if (topology_doom) {
            pending_cause = FailureCause::kTopologyInaccuracy;
          } else {
            pending_cause = FailureCause::kControlSemanticsMisread;
          }
          // Declare a neighboring id instead (a semantically-wrong control).
          const topo::TreeNode* node = session.catalog().forest().FindById(target.id);
          int wrong = target.id;
          for (int delta : {1, -1, 2, -2}) {
            const topo::TreeNode* cand =
                session.catalog().forest().FindById(target.id + delta);
            if (cand != nullptr && !cand->is_reference && cand->children.empty()) {
              wrong = target.id + delta;
              break;
            }
          }
          (void)node;
          target.id = wrong;
          wrong_pick = true;
        }
        dmi::VisitCommand cmd;
        cmd.kind = vt.input_text.empty() ? dmi::VisitCommand::Kind::kAccess
                                         : dmi::VisitCommand::Kind::kAccessInput;
        cmd.target_id = target.id;
        cmd.entry_ref_ids = target.entry_ref_ids;
        cmd.text = vt.input_text;
        cmd.enforced = vt.enforced;
        commands.push_back(cmd);
        if (!vt.shortcut_after.empty()) {
          dmi::VisitCommand sc;
          sc.kind = dmi::VisitCommand::Kind::kShortcut;
          sc.shortcut_key = vt.shortcut_after;
          commands.push_back(sc);
        }
        // Imperfect instruction following: sometimes the LLM also emits the
        // navigation chain — and its guessed navigation is itself error-prone
        // (that is why DMI's non-leaf filter must absorb it, §3.4). Half the
        // slips name the right parent; half land on some other navigation
        // node, which would derail execution if actually clicked.
        if (llm.SlipsNavigationNodes() && vt.name_chain.size() > 1) {
          auto nav = session.ResolveTargetByNames(
              {vt.name_chain.begin(), vt.name_chain.end() - 1});
          if (nav.ok()) {
            dmi::VisitCommand stray;
            stray.kind = dmi::VisitCommand::Kind::kAccess;
            stray.target_id = nav->id;
            stray.entry_ref_ids = nav->entry_ref_ids;
            if (llm.rng().Bernoulli(0.5)) {
              // A wrong navigation guess: the nearest other non-leaf node.
              const int span = 40;
              const int offset =
                  static_cast<int>(llm.rng().NextInRange(-span, span));
              for (int probe = 0; probe <= span; ++probe) {
                const int cand_id = nav->id + offset + probe;
                const topo::TreeNode* cand =
                    session.catalog().forest().FindById(cand_id);
                if (cand != nullptr && !cand->is_reference &&
                    !cand->children.empty() && cand_id != nav->id) {
                  stray.target_id = cand_id;
                  stray.entry_ref_ids.clear();
                  break;
                }
              }
            }
            // Insert before the real command, as an LLM would.
            commands.insert(commands.end() - (vt.shortcut_after.empty() ? 1 : 2), stray);
          }
        }
      }
    }
    if (resume_skip > 0) {
      const size_t skip = std::min(resume_skip, commands.size());
      commands.erase(commands.begin(),
                     commands.begin() + static_cast<std::ptrdiff_t>(skip));
      support::CountMetric("robust.resume_skipped_commands", skip);
      if (session.flight_recorder() != nullptr) {
        session.flight_recorder()->RecordNote(
            "resumed after failed batch: skipped " + std::to_string(skip) +
            " already-executed command(s)");
      }
    }
    dmi::VisitReport report = session.VisitParsed(std::move(commands));
    rr.sim_time_s += static_cast<double>(report.ui_actions) * 0.15;
    rr.ui_actions += report.ui_actions;
    if (config_.capture_report_json) {
      rr.report_json = report.RenderJson();
    }
    if (!report.overall.ok()) {
      size_t ok_prefix = 0;
      for (const dmi::CommandReport& cr : report.commands) {
        if (cr.filtered || cr.status.ok()) {
          ++ok_prefix;
        } else {
          break;
        }
      }
      resume_skip += ok_prefix;
      if (pending_cause == FailureCause::kNone) {
        pending_cause = FailureCause::kNavigationError;
      }
      return report.overall;
    }
    if (wrong_pick) {
      // Executed cleanly, but on the wrong control: surfaces at verification.
      return support::Status::Ok();
    }
    return support::Status::Ok();
  };

  auto run_interaction_turn = [&](const DmiStep& step) -> support::Status {
    session.screen().Refresh();
    dmi::InteractionInterfaces& ix = session.interaction();
    switch (step.kind) {
      case DmiStep::Kind::kSetScrollbar: {
        gsim::Control* surface = nullptr;
        for (const auto& lc : session.screen().labeled()) {
          if (lc.control->TrueName() == step.surface_name) {
            surface = lc.control;
            break;
          }
        }
        if (surface == nullptr) {
          pending_cause = FailureCause::kNavigationError;
          return support::NotFoundError("surface '" + step.surface_name + "' not visible");
        }
        auto status = ix.SetScrollbarPos(session.screen().LabelOf(*surface), -1.0,
                                         step.scroll_vertical);
        rr.sim_time_s += 0.3;
        return status.ok() ? support::Status::Ok() : status.status();
      }
      case DmiStep::Kind::kSelectParagraphs: {
        gsim::Control* surface = nullptr;
        for (const auto& lc : session.screen().labeled()) {
          if (lc.control->TrueName() == step.surface_name) {
            surface = lc.control;
            break;
          }
        }
        if (surface == nullptr) {
          pending_cause = FailureCause::kNavigationError;
          return support::NotFoundError("surface '" + step.surface_name + "' not visible");
        }
        auto status = ix.SelectParagraphs(session.screen().LabelOf(*surface),
                                          step.range_start, step.range_end);
        rr.sim_time_s += 0.3;
        return status.ok() ? support::Status::Ok() : status.status();
      }
      case DmiStep::Kind::kSelectCells: {
        auto& excel = static_cast<apps::ExcelSim&>(app);
        std::vector<std::string> labels;
        for (int r = step.range_start; r <= step.range_end; ++r) {
          for (int c = step.cell_col_start; c <= step.cell_col_end; ++c) {
            gsim::Control* cell = excel.CellControl(r, c);
            if (cell == nullptr) {
              continue;
            }
            std::string label = session.screen().LabelOf(*cell);
            if (!label.empty()) {
              labels.push_back(label);
            }
          }
        }
        if (labels.empty()) {
          pending_cause = FailureCause::kNavigationError;
          return support::NotFoundError("no cells of the range are on screen");
        }
        support::Status s = ix.SelectControls(labels);
        rr.sim_time_s += 0.3;
        return s;
      }
      case DmiStep::Kind::kObserve: {
        gsim::Control* surface = nullptr;
        for (const auto& lc : session.screen().labeled()) {
          if (lc.control->TrueName() == step.surface_name) {
            surface = lc.control;
            break;
          }
        }
        if (surface == nullptr) {
          return support::NotFoundError("observe target not visible");
        }
        auto text = ix.GetTextsActive(session.screen().LabelOf(*surface));
        rr.sim_time_s += 0.2;
        return text.ok() ? support::Status::Ok() : text.status();
      }
      case DmiStep::Kind::kGuiFallback: {
        // The slow path (§6): interactions outside DMI's coverage fall back
        // to the baseline's imperative GUI primitives. Executes the task's
        // GUI-plan slice [begin, end) with direct clicks/typing.
        gsim::ScreenView& screen = session.screen();
        gsim::InputDriver input(app, screen, app.instability());
        const auto& gui = task.gui_plan;
        const int begin = std::max(step.gui_fallback_begin, 0);
        const int end = std::min<int>(step.gui_fallback_end, static_cast<int>(gui.size()));
        for (int i = begin; i < end; ++i) {
          const workload::GuiAction& a = gui[static_cast<size_t>(i)];
          screen.Refresh();
          support::Status s = support::Status::Ok();
          switch (a.kind) {
            case workload::GuiAction::Kind::kClick: {
              gsim::Control* c = nullptr;
              uia::Walk(app.TopWindow()->root(), [&](uia::Element& e, int) {
                if (c != nullptr || e.IsOffscreen()) {
                  return false;
                }
                if (static_cast<gsim::Control&>(e).TrueName() == a.target) {
                  c = static_cast<gsim::Control*>(&e);
                  return false;
                }
                return true;
              });
              s = c == nullptr ? support::NotFoundError("fallback target '" + a.target +
                                                        "' not visible")
                               : input.ClickControlByCoordinates(*c);
              break;
            }
            case workload::GuiAction::Kind::kType:
              s = input.TypeText(a.text);
              break;
            case workload::GuiAction::Kind::kKey:
              s = input.KeyChord(a.text);
              break;
            default:
              s = support::UnimplementedError(
                  "composite fallback actions are driven by the baseline agent");
          }
          rr.sim_time_s += llm.profile().ui_action_s;
          ++rr.ui_actions;
          if (!s.ok()) {
            pending_cause = FailureCause::kNavigationError;
            return s;
          }
        }
        return support::Status::Ok();
      }
      default:
        return support::InternalError("unexpected interaction step");
    }
  };

  // ----- the turn loop -------------------------------------------------------------
  const support::Deadline& deadline = session.run_deadline();
  const auto turns = GroupIntoTurns(plan);
  for (const auto& turn : turns) {
    int attempts = 0;
    resume_skip = 0;
    while (true) {
      if (rr.llm_calls >= config_.step_cap - 2) {
        rr.success = false;
        rr.cause = doom != FailureCause::kNone ? doom : FailureCause::kStepBudgetExhausted;
        support::ErrorDetail d;
        d.retryable = false;
        d.attempts = attempts + 1;
        rr.final_status = support::DeadlineExceededError(
                              "step budget exhausted (cap " +
                              std::to_string(config_.step_cap) + ")")
                              .WithDetail(std::move(d));
        spend_call(60);
        return rr;
      }
      if (deadline.Expired(app.current_tick())) {
        // Per-run tick budget exhausted (DESIGN.md §11). Degrade gracefully:
        // one re-describe + re-locate pass — refresh the screen and re-verify,
        // since the work done so far may already satisfy the task (e.g. only
        // the confirming notification was dropped) — before reporting the
        // typed deadline failure.
        support::CountMetric("robust.deadline_degradations");
        if (session.flight_recorder() != nullptr) {
          session.flight_recorder()->RecordNote(
              "deadline degradation: re-describe + re-verify rescue pass at tick " +
              std::to_string(app.current_tick()));
        }
        session.screen().Refresh();
        spend_call(60);
        if (task.verify(app)) {
          rr.success = true;
          return rr;
        }
        rr.success = false;
        rr.cause = FailureCause::kDeadlineExceeded;
        if (rr.final_status.ok()) {
          support::ErrorDetail d;
          d.retryable = false;
          d.attempts = attempts + 1;
          rr.final_status = support::DeadlineExceededError(
                                "run deadline exhausted at tick " +
                                std::to_string(app.current_tick()))
                                .WithDetail(std::move(d));
        }
        return rr;
      }
      app.Tick();
      app.Tick();
      app.Tick();
      spend_call(140);
      ++rr.core_calls;
      support::Status s = turn[0]->kind == DmiStep::Kind::kVisitBatch
                              ? run_visit_turn(turn)
                              : run_interaction_turn(*turn[0]);
      if (s.ok()) {
        break;
      }
      if (s.code() == support::StatusCode::kDeadlineExceeded) {
        // The executor refused (part of) the turn because the run deadline
        // lapsed mid-batch; route to the graceful-degradation gate above
        // keeping the executor's status (it carries the richer ErrorDetail).
        rr.final_status = s;
        continue;
      }
      // Structured error feedback lets the agent re-plan once per turn.
      if (++attempts > config_.max_step_retries) {
        rr.success = false;
        rr.cause = doom != FailureCause::kNone
                       ? doom
                       : (pending_cause != FailureCause::kNone
                              ? pending_cause
                              : FailureCause::kNavigationError);
        if (!s.has_detail()) {
          // Interaction/GUI-fallback turns can surface bare statuses; every
          // terminal failure must still carry an ErrorDetail (DESIGN.md §11).
          support::ErrorDetail d;
          d.retryable = support::IsRetryable(s);
          d.attempts = attempts;
          s = std::move(s).WithDetail(std::move(d));
        }
        rr.final_status = s;
        spend_call(60);
        return rr;
      }
      pending_cause = FailureCause::kNone;
    }
  }

  // AppAgent verification + HostAgent final verification.
  spend_call(90);
  bool verified = task.verify(app);
  if (!verified && pending_cause == FailureCause::kControlSemanticsMisread &&
      llm.VerifyCatches() && rr.llm_calls < config_.step_cap - 1) {
    // Verification caught the wrong declaration: one corrective re-plan of
    // the whole task (declarative plans are cheap to re-emit).
    ++rr.core_calls;
    spend_call(140);
    for (const auto& turn : GroupIntoTurns(task.dmi_plan)) {
      std::vector<dmi::VisitCommand> commands;
      if (turn[0]->kind == DmiStep::Kind::kVisitBatch) {
        for (const DmiStep* step : turn) {
          for (const VisitTarget& vt : step->targets) {
            auto resolved = session.ResolveTargetByNames(vt.name_chain);
            if (!resolved.ok()) {
              continue;
            }
            dmi::VisitCommand cmd;
            cmd.kind = vt.input_text.empty() ? dmi::VisitCommand::Kind::kAccess
                                             : dmi::VisitCommand::Kind::kAccessInput;
            cmd.target_id = resolved->id;
            cmd.entry_ref_ids = resolved->entry_ref_ids;
            cmd.text = vt.input_text;
            cmd.enforced = vt.enforced;
            commands.push_back(cmd);
            if (!vt.shortcut_after.empty()) {
              dmi::VisitCommand sc;
              sc.kind = dmi::VisitCommand::Kind::kShortcut;
              sc.shortcut_key = vt.shortcut_after;
              commands.push_back(sc);
            }
          }
        }
        dmi::VisitReport report = session.VisitParsed(std::move(commands));
        rr.sim_time_s += static_cast<double>(report.ui_actions) * 0.15;
        rr.ui_actions += report.ui_actions;
        if (config_.capture_report_json) {
          rr.report_json = report.RenderJson();
        }
      } else {
        (void)run_interaction_turn(*turn[0]);
      }
    }
    verified = task.verify(app);
  }
  spend_call(50);

  rr.success = verified;
  if (!rr.success) {
    if (doom != FailureCause::kNone) {
      rr.cause = doom;
    } else if (pending_cause != FailureCause::kNone) {
      rr.cause = pending_cause;
    } else {
      rr.cause = FailureCause::kControlSemanticsMisread;
    }
    support::ErrorDetail d;
    d.retryable = false;
    d.attempts = 1;
    rr.final_status = support::FailedPreconditionError(
                          "task verification failed: " +
                          std::string(FailureCauseName(rr.cause)))
                          .WithDetail(std::move(d));
  }
  return rr;
}

}  // namespace agentsim
