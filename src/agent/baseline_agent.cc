#include "src/agent/baseline_agent.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/apps/excel_sim.h"
#include "src/support/trace.h"
#include "src/text/tokens.h"
#include "src/uia/tree.h"

namespace agentsim {
namespace {

using workload::GuiAction;

// Relaxed name match: the screen may show decorated names ("Bold (Ctrl+B)");
// a human-or-LLM reader still binds them to the plan's "Bold".
bool NameMatches(const std::string& shown, const std::string& wanted) {
  if (shown == wanted) {
    return true;
  }
  return shown.size() > wanted.size() && shown.compare(0, wanted.size(), wanted) == 0 &&
         !isalnum(static_cast<unsigned char>(shown[wanted.size()]));
}

}  // namespace

RunResult BaselineGuiAgent::Run(const workload::Task& task, gsim::Application& app,
                                SimLlm& llm, gsim::InstabilityInjector* injector) {
  support::TraceSpan span("agent.baseline", "agent");
  span.AddArg("task", task.id);
  RunResult rr;
  gsim::ScreenView screen(app);
  screen.Refresh();
  gsim::InputDriver input(app, screen, injector);

  // ----- plan preparation -----------------------------------------------------
  std::vector<GuiAction> plan = task.gui_plan;
  const FailureCause doom =
      llm.SampleTaskPolicy(task, /*gui_mode=*/true, config_.forest_knowledge);
  if (doom != FailureCause::kNone) {
    // The (mis)understood task: the agent confidently executes a wrong plan.
    // Modeled as dropping the final functional action / using a wrong one.
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
      if (it->functional) {
        plan.erase(std::next(it).base());
        break;
      }
    }
  }

  std::vector<bool> done(plan.size(), false);
  std::map<size_t, int> drag_iterations;
  FailureCause pending_cause = FailureCause::kNone;
  bool corrupted = false;       // a wrong click happened, not yet noticed
  int recoveries = 0;
  bool need_renav = false;

  // Finds the action's named control among currently visible controls of the
  // topmost window. Exact matches win over prefix-decorated matches: "Formula
  // Bar" must bind to the edit, not the "Formula Bar Strip" pane; the prefix
  // rule exists only for instability-decorated runtime names.
  auto find_visible = [&](const std::string& name) -> gsim::Control* {
    gsim::Window* top = app.TopWindow();
    if (top == nullptr) {
      return nullptr;
    }
    gsim::Control* exact = nullptr;
    gsim::Control* decorated = nullptr;
    uia::Walk(top->root(), [&](uia::Element& e, int) {
      if (exact != nullptr || e.IsOffscreen()) {
        return false;
      }
      auto* c = static_cast<gsim::Control*>(&e);
      if (c->TrueName() == name) {
        exact = c;
        return false;
      }
      if (decorated == nullptr && NameMatches(c->Name(), name)) {
        decorated = c;
      }
      return true;
    });
    return exact != nullptr ? exact : decorated;
  };

  // A plausible wrong neighbor for a grounding slip: the control laid out
  // adjacent in the labeled listing.
  auto neighbor_of = [&](gsim::Control* target) -> gsim::Control* {
    const auto& labeled = screen.labeled();
    for (size_t k = 0; k < labeled.size(); ++k) {
      if (labeled[k].control == target) {
        if (k + 1 < labeled.size()) {
          return labeled[k + 1].control;
        }
        if (k > 0) {
          return labeled[k - 1].control;
        }
      }
    }
    return target;
  };

  auto prompt_tokens = [&]() {
    // UFO-2-style per-call context: an annotated screenshot (vision tokens),
    // the labeled control list with per-control metadata (type, state,
    // rectangle, automation id — roughly 2.2x the bare listing), and the
    // agent scaffold/system prompt.
    constexpr size_t kScreenshotTokens = 1500;
    constexpr size_t kScaffoldTokens = 2200;
    size_t tokens = textutil::CountTokens(task.description) +
                    static_cast<size_t>(
                        2.2 * static_cast<double>(
                                  textutil::CountTokens(screen.RenderListing()))) +
                    kScreenshotTokens + kScaffoldTokens;
    if (config_.forest_knowledge) {
      tokens += config_.forest_knowledge_tokens;
    }
    return tokens;
  };

  auto spend_call = [&](size_t output_tokens) {
    ++rr.llm_calls;
    const size_t in = prompt_tokens();
    rr.prompt_tokens += in;
    rr.output_tokens += output_tokens;
    rr.sim_time_s += llm.CallLatency(in, output_tokens);
  };

  auto fail = [&](FailureCause cause) {
    rr.success = false;
    rr.cause = doom != FailureCause::kNone ? doom : cause;
    support::ErrorDetail d;
    d.retryable = false;
    d.attempts = 1;
    rr.final_status = support::FailedPreconditionError(
                          "run failed: " + std::string(FailureCauseName(rr.cause)))
                          .WithDetail(std::move(d));
    // Framework still runs its final verification step.
    spend_call(60);
    return rr;
  };

  const gsim::ActionStats stats_before = app.stats();

  // HostAgent: decompose the request and activate the app (framework step 1).
  spend_call(80);

  auto next_undone = [&]() -> size_t {
    for (size_t k = 0; k < plan.size(); ++k) {
      if (!done[k]) {
        return k;
      }
    }
    return plan.size();
  };

  // ----- AppAgent observe-act loop ----------------------------------------------
  while (next_undone() < plan.size()) {
    if (rr.llm_calls >= config_.step_cap - 2) {
      return fail(FailureCause::kStepBudgetExhausted);
    }
    // An LLM round-trip takes seconds: slow-loading UI content has appeared
    // by the time the next observation happens.
    app.Tick();
    app.Tick();
    app.Tick();
    screen.Refresh();
    spend_call(120);
    ++rr.core_calls;

    // A mis-planned call: wrong action emitted, error feedback, call wasted.
    if (llm.NavPlanError(config_.forest_knowledge)) {
      continue;
    }

    // Wrong-click follow-up: maybe the agent notices the UI is off.
    if (corrupted || need_renav) {
      const bool noticed = need_renav || llm.DetectsWrongClick();
      if (noticed) {
        if (++recoveries > config_.max_recoveries) {
          return fail(corrupted ? FailureCause::kVisualRecognitionError
                                : FailureCause::kNavigationError);
        }
        // Re-orient: close stray menus/dialogs, then re-run navigation.
        (void)input.KeyChord("ESC");
        (void)input.KeyChord("ESC");
        rr.sim_time_s += 2 * llm.profile().ui_action_s;
        for (size_t k = 0; k < plan.size(); ++k) {
          if (!plan[k].functional) {
            done[k] = false;
          }
        }
        corrupted = false;
        need_renav = false;
        continue;  // this call was spent re-orienting
      }
      // Not noticed: plough on blindly; the stray state usually surfaces as
      // navigation misses below.
    }

    // Record what is visible now: the action sequence may only reference
    // currently visible controls (UFO2-as restriction).
    std::set<std::string> visible_names;
    for (const auto& lc : screen.labeled()) {
      visible_names.insert(lc.control->TrueName());
    }

    int executed = 0;
    while (executed < llm.profile().max_actions_per_call) {
      const size_t i = next_undone();
      if (i >= plan.size()) {
        break;
      }
      GuiAction& a = plan[i];
      bool break_chunk = false;
      switch (a.kind) {
        case GuiAction::Kind::kClick: {
          if (visible_names.count(a.target) == 0) {
            // Target not visible at call time: the sequence must stop here
            // (it will be visible after earlier clicks take effect).
            if (executed == 0) {
              // Nothing executable at all: we are lost (menu closed, wrong
              // pane). Trigger re-navigation next call.
              need_renav = true;
            }
            break_chunk = true;
            break;
          }
          gsim::Control* target = find_visible(a.target);
          if (target == nullptr) {
            need_renav = true;
            break_chunk = true;
            break;
          }
          gsim::Control* actual = target;
          // Semantic slip on functional choices (wrong color, wrong item).
          if (a.functional &&
              llm.WrongControlChoice(/*gui_mode=*/true, config_.forest_knowledge)) {
            actual = neighbor_of(target);
            pending_cause = FailureCause::kControlSemanticsMisread;
          } else if (llm.GroundingError()) {
            actual = neighbor_of(target);
            corrupted = true;
            pending_cause = FailureCause::kVisualRecognitionError;
          }
          support::Status s = input.ClickControlByCoordinates(*actual);
          rr.sim_time_s += llm.profile().ui_action_s;
          ++executed;
          if (!s.ok()) {
            // Click bounced (blocked, disabled, empty space): re-orient.
            need_renav = true;
            break_chunk = true;
            break;
          }
          if (actual != target) {
            // The wrong control was activated; effects are unknown to the
            // agent until it observes.
            if (corrupted) {
              break_chunk = true;
            }
            done[i] = true;  // the agent believes the action happened
            break;
          }
          done[i] = true;
          break;
        }
        case GuiAction::Kind::kType: {
          support::Status s = app.TypeText(a.text);
          rr.sim_time_s += llm.profile().ui_action_s;
          ++executed;
          done[i] = true;
          if (!s.ok()) {
            need_renav = true;
            break_chunk = true;
          }
          break;
        }
        case GuiAction::Kind::kKey: {
          (void)app.PressKey(a.text);
          rr.sim_time_s += llm.profile().ui_action_s;
          ++executed;
          done[i] = true;
          break;
        }
        case GuiAction::Kind::kDragScroll: {
          // One drag-observe iteration per LLM call (Mismatch #2).
          if (drag_iterations[i] == 0 && llm.CompositeCollapses()) {
            return fail(FailureCause::kCompositeInteractionError);
          }
          gsim::Control* surface = find_visible(a.target);
          if (surface == nullptr) {
            need_renav = true;
            break_chunk = true;
            break;
          }
          auto* scroll = uia::PatternCast<uia::ScrollPattern>(*surface);
          if (scroll == nullptr) {
            return fail(FailureCause::kCompositeInteractionError);
          }
          const double perceived = llm.PerceiveScroll(scroll->VerticalPercent());
          const double delta = a.scroll_target - perceived;
          (void)input.DragScrollThumb(*surface, /*vertical=*/true, delta);
          rr.sim_time_s += 2.0 * llm.profile().ui_action_s;  // press-drag-release
          ++executed;
          if (++drag_iterations[i] > config_.max_drag_iterations) {
            return fail(FailureCause::kCompositeInteractionError);
          }
          if (std::abs(scroll->VerticalPercent() - a.scroll_target) <= 8.0) {
            done[i] = true;
          }
          break_chunk = true;  // must observe before continuing
          break;
        }
        case GuiAction::Kind::kSelectText: {
          // Composite visual selection: click start, shift-click end.
          gsim::Control* surface = nullptr;
          for (const auto& lc : screen.labeled()) {
            if (uia::PatternCast<uia::TextPattern>(*lc.control) != nullptr) {
              surface = lc.control;
              break;
            }
          }
          if (surface == nullptr) {
            return fail(FailureCause::kCompositeInteractionError);
          }
          int start = a.range_start;
          int end = a.range_end;
          if (llm.SelectionOffByOne()) {
            // Misjudged line boundary on screen.
            const int shift = llm.rng().Bernoulli(0.5) ? 1 : -1;
            if (llm.rng().Bernoulli(0.5)) {
              start = std::max(0, start + shift);
            } else {
              end = std::max(start, end + shift);
            }
            pending_cause = FailureCause::kCompositeInteractionError;
          }
          auto* text = uia::PatternCast<uia::TextPattern>(*surface);
          (void)text->SelectRange(uia::TextUnit::kParagraph, start, end);
          rr.sim_time_s += 3.0 * llm.profile().ui_action_s;
          ++executed;
          done[i] = true;
          break_chunk = true;  // observe the selection before acting on it
          break;
        }
        case GuiAction::Kind::kSelectCells: {
          // Click the anchor cell, then ctrl-click the far corner.
          int r0 = a.range_start;
          int r1 = a.range_end;
          int c0 = a.col_start;
          int c1 = a.col_end;
          if (llm.SelectionOffByOne()) {
            r1 = std::max(r0, r1 + (llm.rng().Bernoulli(0.5) ? 1 : -1));
            pending_cause = FailureCause::kCompositeInteractionError;
          }
          const std::string anchor = apps::ExcelSim::MakeRef(r0, c0);
          const std::string corner = apps::ExcelSim::MakeRef(r1, c1);
          gsim::Control* a_cell = find_visible(anchor);
          gsim::Control* b_cell = find_visible(corner);
          if (a_cell == nullptr || b_cell == nullptr) {
            need_renav = true;
            break_chunk = true;
            break;
          }
          (void)input.ClickControlByCoordinates(*a_cell);
          auto* sel = uia::PatternCast<uia::SelectionItemPattern>(*b_cell);
          if (sel != nullptr) {
            (void)sel->AddToSelection();
          }
          rr.sim_time_s += 2.0 * llm.profile().ui_action_s;
          ++executed;
          done[i] = true;
          break_chunk = true;
          break;
        }
      }
      if (break_chunk) {
        break;
      }
    }
    screen.Refresh();
  }

  // AppAgent verification + HostAgent final verification (framework steps).
  screen.Refresh();
  spend_call(90);
  bool verified = task.verify(app);
  if (!verified && pending_cause == FailureCause::kControlSemanticsMisread &&
      llm.VerifyCatches() && rr.llm_calls < config_.step_cap - 1) {
    // The agent's verification caught the wrong pick; one corrective retry of
    // the last functional action.
    ++rr.core_calls;
    spend_call(100);
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
      if (it->functional && it->kind == GuiAction::Kind::kClick) {
        gsim::Control* target = find_visible(it->target);
        if (target != nullptr) {
          (void)input.ClickControlByCoordinates(*target);
          rr.sim_time_s += llm.profile().ui_action_s;
        }
        break;
      }
    }
    verified = task.verify(app);
  }
  spend_call(50);

  {
    const gsim::ActionStats stats_after = app.stats();
    rr.ui_actions = (stats_after.clicks - stats_before.clicks) +
                    (stats_after.key_chords - stats_before.key_chords) +
                    (stats_after.text_inputs - stats_before.text_inputs) +
                    (stats_after.drags - stats_before.drags);
  }
  rr.success = verified;
  if (!rr.success) {
    if (doom != FailureCause::kNone) {
      rr.cause = doom;
    } else if (pending_cause != FailureCause::kNone) {
      rr.cause = pending_cause;
    } else if (corrupted) {
      rr.cause = FailureCause::kVisualRecognitionError;
    } else {
      rr.cause = FailureCause::kNavigationError;
    }
    support::ErrorDetail d;
    d.retryable = false;
    d.attempts = 1;
    rr.final_status = support::FailedPreconditionError(
                          "task verification failed: " +
                          std::string(FailureCauseName(rr.cause)))
                          .WithDetail(std::move(d));
  }
  return rr;
}

}  // namespace agentsim
