#include "src/agent/sim_llm.h"

#include <algorithm>
#include <cmath>

#include "src/agent/batch_scheduler.h"

namespace agentsim {

FailureCause SimLlm::SampleTaskPolicy(const workload::Task& task, bool gui_mode,
                                      bool forest_knowledge) {
  // Knowledge-in-prompt softens semantic confusion a little for models that
  // benefit from it (§5.5 ablation).
  const double gain = forest_knowledge ? profile_.forest_knowledge_gain : 1.0;
  if (task.ambiguous) {
    const double p = gui_mode ? profile_.ambiguous_fail_gui : profile_.ambiguous_fail_dmi;
    if (rng_.Bernoulli(p * gain)) {
      return FailureCause::kAmbiguousTask;
    }
  }
  if (task.subtle_semantics) {
    const double p = gui_mode ? profile_.subtle_fail_gui : profile_.subtle_fail_dmi;
    if (rng_.Bernoulli(p * gain)) {
      return FailureCause::kSubtleSemantics;
    }
  }
  if (task.visual_heavy) {
    const double p =
        gui_mode ? profile_.visual_semantic_gui : profile_.visual_semantic_dmi;
    if (rng_.Bernoulli(p)) {
      return FailureCause::kVisualSemanticWeak;
    }
  }
  return FailureCause::kNone;
}

bool SimLlm::WrongControlChoice(bool gui_mode, bool forest_knowledge) {
  const double gain = forest_knowledge ? profile_.forest_knowledge_gain : 1.0;
  const double p = gui_mode ? profile_.semantic_error_gui : profile_.semantic_error_dmi;
  return rng_.Bernoulli(p * gain);
}

bool SimLlm::GroundingError() { return rng_.Bernoulli(profile_.grounding_error); }

bool SimLlm::DetectsWrongClick() { return rng_.Bernoulli(profile_.grounding_detect); }

bool SimLlm::NavPlanError(bool forest_knowledge) {
  const double gain = forest_knowledge ? profile_.forest_knowledge_gain : 1.0;
  return rng_.Bernoulli(profile_.nav_plan_error * gain);
}

bool SimLlm::SlipsNavigationNodes() { return rng_.Bernoulli(profile_.nav_slip); }

bool SimLlm::CompositeCollapses() { return rng_.Bernoulli(profile_.drag_hard_fail); }

bool SimLlm::SelectionOffByOne() { return rng_.Bernoulli(profile_.text_select_offbyone); }

bool SimLlm::VerifyCatches() { return rng_.Bernoulli(profile_.verify_catch); }

bool SimLlm::TopologyInaccuracy() { return rng_.Bernoulli(profile_.topology_fail); }

bool SimLlm::ResidualMechanismFailure() {
  return rng_.Bernoulli(profile_.dmi_residual_mechanism);
}

double SimLlm::PerceiveScroll(double actual) {
  return std::clamp(rng_.Gaussian(actual, profile_.drag_read_sigma), 0.0, 100.0);
}

double SimLlm::CallLatency(size_t prompt_tokens, size_t output_tokens) {
  // Lognormal reasoning time around the profile median, plus token transport.
  const double mu = std::log(profile_.reasoning_latency_s);
  const double reasoning = rng_.LogNormal(mu, profile_.latency_sigma);
  const double ingest = static_cast<double>(prompt_tokens) / profile_.input_tok_per_s;
  const double emit = static_cast<double>(output_tokens) / profile_.output_tok_per_s;
  if (flight_ != nullptr) {
    flight_->RecordLlmCall(static_cast<int64_t>(prompt_tokens),
                           static_cast<int64_t>(output_tokens));
  }
  if (batch_sink_ != nullptr) {
    // Fleet accounting rides along: calls that carry the shared static
    // prefix batch under the model's key; shorter (framework) calls batch
    // prefix-less. No RNG is consumed here, so the sink is invisible to the
    // seeded decision stream.
    const bool carries_prefix =
        batch_prefix_tokens_ > 0 && prompt_tokens >= batch_prefix_tokens_;
    const uint64_t batch_id = batch_sink_->Submit(
        profile_, carries_prefix ? batch_prefix_key_ : nullptr,
        carries_prefix ? batch_prefix_tokens_ : 0,
        carries_prefix ? prompt_tokens - batch_prefix_tokens_ : prompt_tokens, output_tokens,
        batch_app_label_);
    if (flight_ != nullptr) {
      flight_->RecordBatch(batch_id);
    }
  }
  return reasoning + ingest + emit;
}

void SimLlm::AttachBatchSink(BatchScheduler* scheduler, const void* prefix_key,
                             size_t shared_prefix_tokens, std::string app_label) {
  batch_sink_ = scheduler;
  batch_prefix_key_ = prefix_key;
  batch_prefix_tokens_ = shared_prefix_tokens;
  batch_app_label_ = std::move(app_label);
}

}  // namespace agentsim
