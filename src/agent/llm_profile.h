// Capability profiles of the simulated LLMs (paper §5.1 Methodology).
//
// The paper evaluates GPT-5 (medium and minimal reasoning effort) and
// GPT-5-mini (medium). We have no LLM in this reproduction, so each model ×
// effort pair becomes a stochastic capability profile: error probabilities
// for the distinct decision types an agent makes, and a latency model.
//
// Calibration: the GUI-only numbers are fitted toward the paper's baseline
// (Table 3); the GUI+DMI numbers then *emerge* from running the same profile
// through the declarative interface — which is the paper's experimental
// logic (hold the model fixed, change the interface).
#ifndef SRC_AGENT_LLM_PROFILE_H_
#define SRC_AGENT_LLM_PROFILE_H_

#include <string>

namespace agentsim {

struct LlmProfile {
  std::string model;      // "GPT-5", "GPT-5-mini"
  std::string reasoning;  // "Medium", "Minimal"

  // ----- policy-level error rates ------------------------------------------
  // Task-level misreads, sampled once per run. The *_gui variants are higher:
  // splitting attention between policy and mechanism costs semantic accuracy
  // (paper §5.6 "more semantic mistakes appear").
  double ambiguous_fail_dmi = 0.55;
  double ambiguous_fail_gui = 0.66;
  double subtle_fail_dmi = 0.48;
  double subtle_fail_gui = 0.62;
  // Misreading on-screen content on visually-heavy tasks. DMI's structured
  // get_texts largely removes this.
  double visual_semantic_dmi = 0.20;
  double visual_semantic_gui = 0.60;
  // Per-decision wrong-control/parameter selection.
  double semantic_error_dmi = 0.13;  // per visit target
  double semantic_error_gui = 0.11;  // per functional GUI action
  // Probability a policy slip is caught at the verification step (one retry).
  double verify_catch = 0.25;
  // Per-run probability the offline topology was wrong for this task (DMI).
  double topology_fail = 0.04;

  // ----- mechanism-level error rates (GUI path) ------------------------------
  double grounding_error = 0.16;   // per click: visually grounded wrong control
  double grounding_detect = 0.55;  // noticing the wrong click at next observe
  double drag_read_sigma = 9.0;    // % misperception of current scroll position
  double drag_hard_fail = 0.42;    // composite interaction collapses outright
  double text_select_offbyone = 0.40;  // per composite selection
  double nav_plan_error = 0.18;    // per call: wrong navigation plan emitted

  // ----- instruction following (DMI path) --------------------------------------
  double nav_slip = 0.25;  // includes navigation nodes in visit output
  // Residual per-run mechanism failure under DMI: real-world UIA hazards our
  // simulator does not model (focus steals, timing races, window-manager
  // interference). Keeps the DMI failure mix near the paper's ~19% mechanism
  // share (Figure 6).
  double dmi_residual_mechanism = 0.05;

  // ----- ablation: static forest knowledge in a GUI-only prompt ----------------
  // Multiplier (<1 helps) applied to semantic_error_gui / nav_plan_error when
  // the navigation forest is provided as knowledge without the interface.
  double forest_knowledge_gain = 1.0;

  // ----- latency model ------------------------------------------------------------
  double reasoning_latency_s = 44.0;  // median per-call thinking time
  double latency_sigma = 0.35;        // lognormal sigma
  double input_tok_per_s = 5000.0;    // prompt ingestion rate
  double output_tok_per_s = 60.0;     // generation rate
  double ui_action_s = 0.4;           // per executed UI action
  // Fixed per-batch serving cost (scheduling + weight pass) amortized across
  // a continuous batch by BatchScheduler; a batch of one pays it in full.
  double batch_overhead_s = 0.5;

  // Action-sequence capacity per call (baseline's "action sequence").
  int max_actions_per_call = 6;

  static LlmProfile Gpt5Medium();
  static LlmProfile Gpt5Minimal();
  static LlmProfile Gpt5MiniMedium();
};

}  // namespace agentsim

#endif  // SRC_AGENT_LLM_PROFILE_H_
