// The GUI+DMI agent (paper §5.1 "Our approach").
//
// Runs on top of the same UFO-2-like framework, but the AppAgent plans
// globally over the navigation topology: one visit() call can drive controls
// that are not yet visible, so most tasks complete in a single core LLM call.
// State/observation declarations are separate turns (DMI disallows mixing
// visit with interaction interfaces, §3.4). The agent's imperfect instruction
// following — emitting navigation nodes — is absorbed by DMI's filtering.
#ifndef SRC_AGENT_DMI_AGENT_H_
#define SRC_AGENT_DMI_AGENT_H_

#include "src/agent/run_result.h"
#include "src/agent/sim_llm.h"
#include "src/dmi/session.h"
#include "src/workload/tasks.h"

namespace agentsim {

struct DmiAgentConfig {
  int step_cap = 30;
  int max_step_retries = 1;  // re-plan a failed declarative step once
  // Capture RenderJson() of each visit report into RunResult::report_json
  // (the last one wins). Off by default: only dmi_run --report-json pays it.
  bool capture_report_json = false;
};

class DmiAgent {
 public:
  explicit DmiAgent(DmiAgentConfig config) : config_(config) {}

  // Runs one task through an already-modeled session bound to a fresh app.
  RunResult Run(const workload::Task& task, dmi::DmiSession& session, SimLlm& llm);

 private:
  DmiAgentConfig config_;
};

}  // namespace agentsim

#endif  // SRC_AGENT_DMI_AGENT_H_
