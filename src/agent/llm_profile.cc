#include "src/agent/llm_profile.h"

namespace agentsim {

// Calibration notes: the GUI-only paths were fitted toward Table 3's baseline
// rows (44.4% / 23.5% / 17.3% SR); the DMI rows then follow from the same
// profiles through the declarative interface. See EXPERIMENTS.md.

LlmProfile LlmProfile::Gpt5Medium() {
  LlmProfile p;
  p.model = "GPT-5";
  p.reasoning = "Medium";
  // Defaults above describe the strong reasoning model.
  p.reasoning_latency_s = 44.0;
  p.input_tok_per_s = 5000.0;
  p.output_tok_per_s = 64.0;
  return p;
}

LlmProfile LlmProfile::Gpt5Minimal() {
  LlmProfile p;
  p.model = "GPT-5";
  p.reasoning = "Minimal";
  // Minimal effort: markedly worse planning and recovery; fast calls.
  p.ambiguous_fail_dmi = 0.80;
  p.ambiguous_fail_gui = 0.85;
  p.subtle_fail_dmi = 0.72;
  p.subtle_fail_gui = 0.82;
  p.visual_semantic_dmi = 0.45;
  p.visual_semantic_gui = 0.85;
  p.semantic_error_dmi = 0.40;
  p.semantic_error_gui = 0.26;
  p.verify_catch = 0.10;
  p.topology_fail = 0.06;
  p.dmi_residual_mechanism = 0.12;
  p.grounding_error = 0.34;
  p.grounding_detect = 0.35;
  p.drag_read_sigma = 13.0;
  p.drag_hard_fail = 0.70;
  p.text_select_offbyone = 0.65;
  p.nav_plan_error = 0.30;
  p.nav_slip = 0.40;
  p.reasoning_latency_s = 26.0;
  p.latency_sigma = 0.30;
  p.input_tok_per_s = 6000.0;
  p.output_tok_per_s = 90.0;
  return p;
}

LlmProfile LlmProfile::Gpt5MiniMedium() {
  LlmProfile p;
  p.model = "GPT-5-mini";
  p.reasoning = "Medium";
  // Small model: weak general knowledge (so the forest knowledge actually
  // helps it, §5.5), noisy grounding, slow prompt ingestion.
  p.ambiguous_fail_dmi = 0.85;
  p.ambiguous_fail_gui = 0.88;
  p.subtle_fail_dmi = 0.80;
  p.subtle_fail_gui = 0.85;
  p.visual_semantic_dmi = 0.60;
  p.visual_semantic_gui = 0.88;
  p.semantic_error_dmi = 0.60;
  p.semantic_error_gui = 0.30;
  p.verify_catch = 0.10;
  p.topology_fail = 0.09;
  p.dmi_residual_mechanism = 0.16;
  p.grounding_error = 0.38;
  p.grounding_detect = 0.30;
  p.drag_read_sigma = 14.0;
  p.drag_hard_fail = 0.75;
  p.text_select_offbyone = 0.68;
  p.nav_plan_error = 0.22;
  p.nav_slip = 0.45;
  p.forest_knowledge_gain = 0.55;  // supplementary knowledge helps the small model
  p.reasoning_latency_s = 13.0;
  p.latency_sigma = 0.40;
  p.input_tok_per_s = 900.0;  // slow ingestion: big DMI prompts cost latency
  p.output_tok_per_s = 70.0;
  return p;
}

}  // namespace agentsim
