#include "src/uia/tree.h"

#include <unordered_set>

namespace uia {
namespace {

void WalkImpl(Element& node, int depth, const std::function<bool(Element&, int)>& visitor) {
  if (!visitor(node, depth)) {
    return;
  }
  for (Element* child : node.Children()) {
    WalkImpl(*child, depth + 1, visitor);
  }
}

}  // namespace

void Walk(Element& root, const std::function<bool(Element&, int)>& visitor) {
  WalkImpl(root, 1, visitor);
}

std::vector<Element*> FindAll(Element& root, const std::function<bool(Element&)>& pred) {
  std::vector<Element*> out;
  Walk(root, [&](Element& e, int) {
    if (pred(e)) {
      out.push_back(&e);
    }
    return true;
  });
  return out;
}

Element* FindByName(Element& root, const std::string& name) {
  Element* found = nullptr;
  Walk(root, [&](Element& e, int) {
    if (found != nullptr) {
      return false;
    }
    if (e.Name() == name) {
      found = &e;
      return false;
    }
    return true;
  });
  return found;
}

Element* FindByRuntimeId(Element& root, uint64_t runtime_id) {
  Element* found = nullptr;
  Walk(root, [&](Element& e, int) {
    if (found != nullptr) {
      return false;
    }
    if (e.RuntimeId() == runtime_id) {
      found = &e;
      return false;
    }
    return true;
  });
  return found;
}

size_t CountNodes(Element& root) {
  size_t n = 0;
  Walk(root, [&](Element&, int) {
    ++n;
    return true;
  });
  return n;
}

int MaxDepth(Element& root) {
  int max_depth = 0;
  Walk(root, [&](Element&, int depth) {
    if (depth > max_depth) {
      max_depth = depth;
    }
    return true;
  });
  return max_depth;
}

std::string AncestorPath(const Element& element) {
  std::vector<const Element*> chain;
  for (const Element* p = element.Parent(); p != nullptr; p = p->Parent()) {
    chain.push_back(p);
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!path.empty()) {
      path += '/';
    }
    std::string n = (*it)->Name();
    path += n.empty() ? "[Unnamed]" : n;
  }
  return path;
}

Snapshot Capture(Element& root) {
  Snapshot snap;
  Walk(root, [&](Element& e, int) {
    SnapshotEntry entry;
    entry.runtime_id = e.RuntimeId();
    entry.name = e.Name();
    entry.automation_id = e.AutomationId();
    entry.type = e.Type();
    entry.ancestor_path = AncestorPath(e);
    entry.enabled = e.IsEnabled();
    entry.offscreen = e.IsOffscreen();
    snap.entries.push_back(std::move(entry));
    return true;
  });
  return snap;
}

std::vector<SnapshotEntry> NewEntries(const Snapshot& before, const Snapshot& after) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(before.entries.size());
  for (const auto& e : before.entries) {
    seen.insert(e.runtime_id);
  }
  std::vector<SnapshotEntry> fresh;
  for (const auto& e : after.entries) {
    if (seen.count(e.runtime_id) == 0) {
      fresh.push_back(e);
    }
  }
  return fresh;
}

}  // namespace uia
