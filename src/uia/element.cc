#include "src/uia/element.h"

// Element is a pure interface; this translation unit exists so the library has
// a home for future non-inline helpers and to anchor vtable emission.
namespace uia {}  // namespace uia
