// UIA control-pattern interfaces.
//
// A control advertises functionality through a finite set of patterns (paper
// §2.2 Insight #3, §3.5). DMI's state/observation declarations are implemented
// exclusively against these interfaces — never against pixels — which is what
// makes interaction deterministic. The GUI simulator's controls implement the
// subset of patterns appropriate to their type.
#ifndef SRC_UIA_PATTERNS_H_
#define SRC_UIA_PATTERNS_H_

#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/uia/control_type.h"

namespace uia {

class Element;

// Base for all pattern interfaces. Retrieved via Element::GetPattern(id) and
// downcast with PatternCast<T>().
class Pattern {
 public:
  virtual ~Pattern() = default;
  virtual PatternId id() const = 0;
};

// ----- Action patterns --------------------------------------------------

// InvokePattern: single-action controls (Button, MenuItem, ...).
class InvokePattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kInvoke;
  PatternId id() const override { return kId; }
  virtual support::Status Invoke() = 0;
};

enum class ToggleState { kOff = 0, kOn = 1, kIndeterminate = 2 };

// TogglePattern: CheckBox and toggle buttons.
class TogglePattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kToggle;
  PatternId id() const override { return kId; }
  virtual ToggleState State() const = 0;
  virtual support::Status Toggle() = 0;
};

enum class ExpandCollapseState { kCollapsed = 0, kExpanded = 1, kLeafNode = 2 };

// ExpandCollapsePattern: ComboBox, TreeItem, SplitButton drop-downs.
class ExpandCollapsePattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kExpandCollapse;
  PatternId id() const override { return kId; }
  virtual ExpandCollapseState State() const = 0;
  virtual support::Status Expand() = 0;
  virtual support::Status Collapse() = 0;
};

// ----- Scroll patterns ----------------------------------------------------

// ScrollPattern: scrollable containers. Percentages are in [0,100];
// kNoScroll (-1) marks an unscrollable axis.
class ScrollPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kScroll;
  static constexpr double kNoScroll = -1.0;
  PatternId id() const override { return kId; }
  virtual double HorizontalPercent() const = 0;
  virtual double VerticalPercent() const = 0;
  virtual bool HorizontallyScrollable() const = 0;
  virtual bool VerticallyScrollable() const = 0;
  // Declarative: jump straight to a target position.
  virtual support::Status SetScrollPercent(double horizontal, double vertical) = 0;
  // Imperative: one notch of scrolling (what a human drag/wheel step does);
  // the GUI-only baseline must iterate this.
  virtual support::Status ScrollIncrement(double horizontal_delta, double vertical_delta) = 0;
};

// ----- Selection patterns ---------------------------------------------------

// SelectionItemPattern: selectable items (ListItem, TabItem, RadioButton,...).
class SelectionItemPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kSelectionItem;
  PatternId id() const override { return kId; }
  virtual bool IsSelected() const = 0;
  virtual support::Status Select() = 0;            // exclusive select
  virtual support::Status AddToSelection() = 0;    // multi-select add
  virtual support::Status RemoveFromSelection() = 0;
};

// SelectionPattern: containers of selectable items.
class SelectionPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kSelection;
  PatternId id() const override { return kId; }
  virtual bool CanSelectMultiple() const = 0;
  virtual std::vector<Element*> GetSelection() const = 0;
};

// ----- Text / value patterns -----------------------------------------------

enum class TextUnit { kCharacter, kLine, kParagraph };

// TextPattern: documents and rich edit controls. Line/paragraph indices are
// zero-based and inclusive.
class TextPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kText;
  PatternId id() const override { return kId; }
  virtual std::string GetText() const = 0;
  virtual int UnitCount(TextUnit unit) const = 0;
  virtual std::string GetUnitText(TextUnit unit, int index) const = 0;
  // Select [start, end] in the given unit (declarative selection).
  virtual support::Status SelectRange(TextUnit unit, int start, int end) = 0;
  // Currently selected text ("" when nothing is selected).
  virtual std::string GetSelectedText() const = 0;
};

// ValuePattern: single-value controls (Edit, some cells).
class ValuePattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kValue;
  PatternId id() const override { return kId; }
  virtual std::string GetValue() const = 0;
  virtual bool IsReadOnly() const = 0;
  virtual support::Status SetValue(const std::string& value) = 0;
};

// RangeValuePattern: Slider, Spinner, ProgressBar.
class RangeValuePattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kRangeValue;
  PatternId id() const override { return kId; }
  virtual double Value() const = 0;
  virtual double Minimum() const = 0;
  virtual double Maximum() const = 0;
  virtual support::Status SetValue(double value) = 0;
};

// ----- Structure patterns ----------------------------------------------------

// GridPattern: DataGrid / Table containers.
class GridPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kGrid;
  PatternId id() const override { return kId; }
  virtual int RowCount() const = 0;
  virtual int ColumnCount() const = 0;
  virtual Element* GetItem(int row, int column) const = 0;
};

// WindowPattern: top-level windows.
class WindowPattern : public Pattern {
 public:
  static constexpr PatternId kId = PatternId::kWindow;
  PatternId id() const override { return kId; }
  virtual bool IsModal() const = 0;
  virtual support::Status Close() = 0;
};

// Downcast helper: PatternCast<ScrollPattern>(element) -> pattern or nullptr.
template <typename T>
T* PatternCast(Element& element);

}  // namespace uia

#endif  // SRC_UIA_PATTERNS_H_
