// The accessibility element interface — our analogue of IUIAutomationElement.
//
// Everything above the GUI simulator (the ripper, the DMI executor, the
// baseline agent's screen labeler) sees applications exclusively through this
// interface, exactly as the paper's implementation sees Windows apps through
// UIA via pywinauto.
#ifndef SRC_UIA_ELEMENT_H_
#define SRC_UIA_ELEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/uia/control_type.h"
#include "src/uia/patterns.h"

namespace uia {

class Element {
 public:
  virtual ~Element() = default;

  // Visible name ("Bold", "Apply to All"). May vary between captures — UIA
  // gives no stability guarantee, which is why DMI needs fuzzy matching.
  virtual std::string Name() const = 0;

  // AutomationId. Frequently empty and NOT guaranteed globally unique
  // (paper §5.7 "Global unique identifier").
  virtual std::string AutomationId() const = 0;

  virtual ControlType Type() const = 0;

  // Help/description text drawn from application-provided metadata.
  virtual std::string HelpText() const = 0;

  virtual bool IsEnabled() const = 0;

  // True when the control exists in the tree but is not currently shown
  // (collapsed menu content, off-viewport rows, ...).
  virtual bool IsOffscreen() const = 0;

  // Structural navigation. Children are in z/layout order. Pointers are
  // borrowed; they remain valid until the owning application mutates its UI.
  virtual std::vector<Element*> Children() const = 0;
  virtual Element* Parent() const = 0;

  // Per-instance runtime id, unique within one application run.
  virtual uint64_t RuntimeId() const = 0;

  // Pattern access; nullptr when the control does not implement the pattern.
  virtual Pattern* GetPattern(PatternId id) = 0;
};

template <typename T>
T* PatternCast(Element& element) {
  Pattern* p = element.GetPattern(T::kId);
  if (p == nullptr) {
    return nullptr;
  }
  return static_cast<T*>(p);
}

}  // namespace uia

#endif  // SRC_UIA_ELEMENT_H_
