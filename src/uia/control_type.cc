#include "src/uia/control_type.h"

#include <array>

namespace uia {
namespace {

constexpr std::array<std::string_view, kNumControlTypes> kControlTypeNames = {
    "AppBar",      "Button",    "Calendar",  "CheckBox",    "ComboBox",     "Custom",
    "DataGrid",    "DataItem",  "Document",  "Edit",        "Group",        "Header",
    "HeaderItem",  "Hyperlink", "Image",     "List",        "ListItem",     "Menu",
    "MenuBar",     "MenuItem",  "Pane",      "ProgressBar", "RadioButton",  "ScrollBar",
    "SemanticZoom","Separator", "Slider",    "Spinner",     "SplitButton",  "StatusBar",
    "Tab",         "TabItem",   "Table",     "Text",        "Thumb",        "TitleBar",
    "ToolBar",     "ToolTip",   "Tree",      "TreeItem",    "Window",
};

constexpr std::array<std::string_view, kNumPatterns> kPatternNames = {
    "Annotation",     "CustomNavigation", "Dock",          "Drag",         "DropTarget",
    "ExpandCollapse", "GridItem",         "Grid",          "Invoke",       "ItemContainer",
    "LegacyIAccessible", "MultipleView",  "ObjectModel",   "RangeValue",   "ScrollItem",
    "Scroll",         "SelectionItem",    "Selection",     "SpreadsheetItem", "Spreadsheet",
    "Styles",         "SynchronizedInput","TableItem",     "Table",        "TextChild",
    "TextEdit",       "Text",             "Text2",         "Toggle",       "Transform",
    "Transform2",     "Value",            "VirtualizedItem", "Window",
};

}  // namespace

std::string_view ControlTypeName(ControlType type) {
  return kControlTypeNames[static_cast<size_t>(type)];
}

std::optional<ControlType> ControlTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kControlTypeNames.size(); ++i) {
    if (kControlTypeNames[i] == name) {
      return static_cast<ControlType>(i);
    }
  }
  return std::nullopt;
}

bool IsKeyControlType(ControlType type) {
  switch (type) {
    case ControlType::kMenu:
    case ControlType::kMenuBar:
    case ControlType::kMenuItem:
    case ControlType::kTabItem:
    case ControlType::kComboBox:
    case ControlType::kGroup:
    case ControlType::kButton:
    case ControlType::kSplitButton:
      return true;
    default:
      return false;
  }
}

bool IsContainerControlType(ControlType type) {
  switch (type) {
    case ControlType::kMenu:
    case ControlType::kMenuBar:
    case ControlType::kTab:
    case ControlType::kToolBar:
    case ControlType::kPane:
    case ControlType::kGroup:
    case ControlType::kWindow:
    case ControlType::kList:
    case ControlType::kTree:
    case ControlType::kTable:
    case ControlType::kDataGrid:
      return true;
    default:
      return false;
  }
}

std::string_view PatternName(PatternId id) { return kPatternNames[static_cast<size_t>(id)]; }

}  // namespace uia
