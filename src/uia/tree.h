// Accessibility-tree utilities: traversal, search, and lightweight snapshots
// used for differential capture during GUI ripping (paper §4.1).
#ifndef SRC_UIA_TREE_H_
#define SRC_UIA_TREE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/uia/element.h"

namespace uia {

// Pre-order traversal. The visitor returns false to prune the subtree.
void Walk(Element& root, const std::function<bool(Element&, int depth)>& visitor);

// All elements matching the predicate, in pre-order.
std::vector<Element*> FindAll(Element& root, const std::function<bool(Element&)>& pred);

// First element whose Name() equals `name`, or nullptr.
Element* FindByName(Element& root, const std::string& name);

// First element with the given runtime id, or nullptr.
Element* FindByRuntimeId(Element& root, uint64_t runtime_id);

// Number of elements in the subtree (including root).
size_t CountNodes(Element& root);

// Maximum depth (root = 1).
int MaxDepth(Element& root);

// Slash-joined names of ancestors from the root down to (excluding) the
// element itself. Used in XPath-like identifiers.
std::string AncestorPath(const Element& element);

// One captured element: enough to identify a control across captures.
struct SnapshotEntry {
  uint64_t runtime_id = 0;
  std::string name;
  std::string automation_id;
  ControlType type = ControlType::kCustom;
  std::string ancestor_path;
  bool enabled = true;
  bool offscreen = false;
};

// Flattened capture of a tree; order is pre-order.
struct Snapshot {
  std::vector<SnapshotEntry> entries;
};

Snapshot Capture(Element& root);

// Elements present in `after` but not in `before`, keyed by runtime id.
// These define navigation edges during ripping.
std::vector<SnapshotEntry> NewEntries(const Snapshot& before, const Snapshot& after);

}  // namespace uia

#endif  // SRC_UIA_TREE_H_
