// The 41 UI Automation control types (paper §2.2 Insight #3) and the pattern
// taxonomy they support. This mirrors the Windows UIA contract that DMI's
// state/observation declarations are built on.
#ifndef SRC_UIA_CONTROL_TYPE_H_
#define SRC_UIA_CONTROL_TYPE_H_

#include <optional>
#include <string>
#include <string_view>

namespace uia {

// All 41 UIA control types (UIA_*ControlTypeId).
enum class ControlType {
  kAppBar = 0,
  kButton,
  kCalendar,
  kCheckBox,
  kComboBox,
  kCustom,
  kDataGrid,
  kDataItem,
  kDocument,
  kEdit,
  kGroup,
  kHeader,
  kHeaderItem,
  kHyperlink,
  kImage,
  kList,
  kListItem,
  kMenu,
  kMenuBar,
  kMenuItem,
  kPane,
  kProgressBar,
  kRadioButton,
  kScrollBar,
  kSemanticZoom,
  kSeparator,
  kSlider,
  kSpinner,
  kSplitButton,
  kStatusBar,
  kTab,
  kTabItem,
  kTable,
  kText,
  kThumb,
  kTitleBar,
  kToolBar,
  kToolTip,
  kTree,
  kTreeItem,
  kWindow,
};

inline constexpr int kNumControlTypes = 41;

// Canonical UIA-style name ("Button", "TabItem", ...).
std::string_view ControlTypeName(ControlType type);

// Parses a canonical name back to the enum; nullopt if unknown.
std::optional<ControlType> ControlTypeFromName(std::string_view name);

// "Key types" get full descriptions in the serialized topology (paper §4.2):
// Menu, TabItem, ComboBox, Group, Button and their close kin.
bool IsKeyControlType(ControlType type);

// Types that typically act as navigation containers rather than functional
// endpoints (used only for heuristics; real leaf-ness comes from topology).
bool IsContainerControlType(ControlType type);

// The 34 UIA control patterns (UIA_*PatternId). A control advertises the
// subset it implements; the DMI interaction interfaces dispatch on these.
enum class PatternId {
  kAnnotation = 0,
  kCustomNavigation,
  kDock,
  kDrag,
  kDropTarget,
  kExpandCollapse,
  kGridItem,
  kGrid,
  kInvoke,
  kItemContainer,
  kLegacyIAccessible,
  kMultipleView,
  kObjectModel,
  kRangeValue,
  kScrollItem,
  kScroll,
  kSelectionItem,
  kSelection,
  kSpreadsheetItem,
  kSpreadsheet,
  kStyles,
  kSynchronizedInput,
  kTableItem,
  kTable,
  kTextChild,
  kTextEdit,
  kText,
  kText2,
  kToggle,
  kTransform,
  kTransform2,
  kValue,
  kVirtualizedItem,
  kWindow,
};

inline constexpr int kNumPatterns = 34;

std::string_view PatternName(PatternId id);

}  // namespace uia

#endif  // SRC_UIA_CONTROL_TYPE_H_
