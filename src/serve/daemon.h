// serve::ServeLoop — the dmi_serve transport loop (DESIGN.md §16).
//
// Speaks the length-prefixed frame protocol (src/serve/wire.h) over a pair
// of stdio streams: each inbound frame is one serve::Request JSON, each
// outbound frame one serve::Response JSON. Requests are submitted to the
// SessionManager as they arrive, so many sessions are in flight at once and
// responses stream back in completion order — callers correlate by
// request_id, not position.
//
// Error handling is in-band and typed: a frame that fails to parse, or a
// request the manager rejects (unknown task, queue full, quota spent),
// produces a Response frame whose `status` carries the typed error; the loop
// itself only fails on transport damage (truncated frame, write error).
//
// On clean EOF the loop waits for every in-flight session to deliver its
// response before returning — closing the request pipe is the client's
// graceful-drain signal. Tests drive this loop directly over tmpfile()
// streams; dmi_serve wires it to stdin/stdout.
#ifndef SRC_SERVE_DAEMON_H_
#define SRC_SERVE_DAEMON_H_

#include <cstdint>
#include <cstdio>

#include "src/serve/session_manager.h"
#include "src/support/status.h"

namespace serve {

struct ServeLoopStats {
  uint64_t frames_read = 0;       // well-formed frames decoded
  uint64_t parse_errors = 0;      // frames whose payload failed ParseRequest
  uint64_t rejected = 0;          // requests the manager refused (typed)
  uint64_t responses_written = 0; // every frame written back (incl. errors)
};

// Runs the frame loop until EOF on `in` or a transport error. Every response
// the manager owes has been written to `out` when this returns. Returns the
// loop stats, or a typed error on transport damage (after draining what was
// already in flight).
support::Result<ServeLoopStats> ServeLoop(std::FILE* in, std::FILE* out,
                                          SessionManager& manager);

}  // namespace serve

#endif  // SRC_SERVE_DAEMON_H_
