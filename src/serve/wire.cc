#include "src/serve/wire.h"

#include <cstring>

namespace serve {
namespace {

void EncodeLength(uint32_t n, char out[4]) {
  out[0] = static_cast<char>(n & 0xff);
  out[1] = static_cast<char>((n >> 8) & 0xff);
  out[2] = static_cast<char>((n >> 16) & 0xff);
  out[3] = static_cast<char>((n >> 24) & 0xff);
}

uint32_t DecodeLength(const char in[4]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

}  // namespace

void AppendFrame(std::string& out, std::string_view payload) {
  char prefix[4];
  EncodeLength(static_cast<uint32_t>(payload.size()), prefix);
  out.append(prefix, 4);
  out.append(payload.data(), payload.size());
}

support::Result<std::optional<std::string>> DecodeFrame(std::string_view buffer,
                                                        size_t* offset) {
  if (buffer.size() - *offset < 4) {
    return std::optional<std::string>();
  }
  const uint32_t length = DecodeLength(buffer.data() + *offset);
  if (length > kMaxFramePayload) {
    return support::InvalidArgumentError("frame payload length " +
                                         std::to_string(length) + " exceeds limit");
  }
  if (buffer.size() - *offset - 4 < length) {
    return std::optional<std::string>();
  }
  std::string payload(buffer.substr(*offset + 4, length));
  *offset += 4 + static_cast<size_t>(length);
  return std::optional<std::string>(std::move(payload));
}

support::Result<std::optional<std::string>> ReadFrame(std::FILE* in) {
  char prefix[4];
  const size_t got = std::fread(prefix, 1, 4, in);
  if (got == 0 && std::feof(in)) {
    return std::optional<std::string>();  // clean EOF between frames
  }
  if (got < 4) {
    if (std::ferror(in)) {
      return support::UnavailableError("frame read error");
    }
    return support::InvalidArgumentError("truncated frame length prefix");
  }
  const uint32_t length = DecodeLength(prefix);
  if (length > kMaxFramePayload) {
    return support::InvalidArgumentError("frame payload length " +
                                         std::to_string(length) + " exceeds limit");
  }
  std::string payload(length, '\0');
  if (length > 0 && std::fread(payload.data(), 1, length, in) != length) {
    if (std::ferror(in)) {
      return support::UnavailableError("frame read error");
    }
    return support::InvalidArgumentError("truncated frame payload");
  }
  return std::optional<std::string>(std::move(payload));
}

support::Status WriteFrame(std::FILE* out, std::string_view payload) {
  char prefix[4];
  EncodeLength(static_cast<uint32_t>(payload.size()), prefix);
  if (std::fwrite(prefix, 1, 4, out) != 4 ||
      std::fwrite(payload.data(), 1, payload.size(), out) != payload.size() ||
      std::fflush(out) != 0) {
    return support::UnavailableError("frame write error");
  }
  return support::Status::Ok();
}

}  // namespace serve
