#include "src/serve/session_manager.h"

#include <cassert>
#include <future>
#include <set>
#include <utility>

#include "src/agent/service_adapter.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace serve {
namespace {

// Tenant names come off the wire; label values must avoid the metric
// encoding's structural characters ('{', '}', ',', '=').
std::string LabelSafe(const std::string& raw) {
  std::string out = raw;
  for (char& c : out) {
    if (c == '{' || c == '}' || c == ',' || c == '=') {
      c = '_';
    }
  }
  return out;
}

void CountRejected(const std::string& tenant, const char* reason) {
  support::CountMetric("session.rejected");
  support::CountMetric("session.rejected",
                       {{"tenant", LabelSafe(tenant)}, {"reason", reason}});
}

double MsSince(int64_t start_us, int64_t now_us) {
  return static_cast<double>(now_us - start_us) / 1000.0;
}

}  // namespace

SessionManager::Options SessionManager::OptionsFromConfig(
    const dmi::ServiceConfig& config) {
  Options options;
  options.max_in_flight = config.max_in_flight;
  options.queue_capacity = config.queue_capacity;
  options.default_quota.max_concurrent = config.tenant_max_concurrent;
  options.default_quota.token_budget = config.tenant_token_budget;
  return options;
}

SessionManager::SessionManager(const dmi::ServiceConfig& config, Options options)
    : options_(options) {
  assert(config.Validate().ok() && "SessionManager on unvalidated config");
  run_config_ = agentsim::RunConfigFromService(config);
  // The manager is the concurrency layer; each session is one RunOnce on one
  // worker thread, so the suite-level fan-out knobs are inert here.
  run_config_.workers = 1;
  tasks_ = workload::BuildOsworldWSuite();
  for (const workload::Task& task : tasks_) {
    task_by_id_.emplace(task.id, &task);
  }
  if (!config.model_dir.empty()) {
    runner_.SetModelDir(config.model_dir, config.app_version);
  }
  if (run_config_.batch.enabled) {
    runner_.batch_scheduler().Configure(run_config_.batch);
  }
  const int worker_count = options_.max_in_flight > 0 ? options_.max_in_flight : 1;
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

const TenantQuota& SessionManager::QuotaFor(const std::string& tenant) const {
  const auto it = options_.tenant_quotas.find(tenant);
  return it != options_.tenant_quotas.end() ? it->second : options_.default_quota;
}

support::Status SessionManager::Submit(Request request, Callback done) {
  if (done == nullptr) {
    return support::InvalidArgumentError("Submit: null callback");
  }
  if (request.tenant.empty()) {
    request.tenant = "default";
  }
  support::CountMetric("session.submitted");
  const auto task_it = task_by_id_.find(request.task_id);
  if (task_it == task_by_id_.end()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    return support::NotFoundError("no task with id '" + request.task_id + "'");
  }
  const std::string tenant = request.tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected_draining;
      CountRejected(tenant, "draining");
      return support::UnavailableError("session manager is draining");
    }
    // System capacity = sessions running (max_in_flight workers) + sessions
    // waiting (queue_capacity). Everything past that is a typed rejection —
    // the caller sheds load instead of the daemon growing an unbounded queue.
    const size_t capacity = static_cast<size_t>(options_.max_in_flight) +
                            static_cast<size_t>(options_.queue_capacity);
    const size_t outstanding = queue_.size() + running_;
    if (outstanding >= capacity) {
      ++stats_.rejected_queue_full;
      CountRejected(tenant, "queue_full");
      return support::ResourceExhaustedError(
          "admission queue full (" + std::to_string(outstanding) + " outstanding, capacity " +
          std::to_string(capacity) + ")");
    }
    const TenantQuota& quota = QuotaFor(tenant);
    if (quota.max_concurrent > 0 && tenant_active_[tenant] >= quota.max_concurrent) {
      ++stats_.rejected_tenant_concurrent;
      CountRejected(tenant, "tenant_concurrent");
      return support::ResourceExhaustedError(
          "tenant '" + tenant + "' concurrent-session quota (" +
          std::to_string(quota.max_concurrent) + ") exhausted");
    }
    if (quota.token_budget > 0 && tenant_tokens_[tenant] >= quota.token_budget) {
      ++stats_.rejected_tenant_tokens;
      CountRejected(tenant, "tenant_tokens");
      return support::ResourceExhaustedError(
          "tenant '" + tenant + "' token budget (" + std::to_string(quota.token_budget) +
          ") exhausted");
    }
    ++stats_.admitted;
    ++tenant_active_[tenant];
    Queued item;
    item.request = std::move(request);
    item.done = std::move(done);
    item.submit_us = support::TraceNowUs();
    queue_.push_back(std::move(item));
    const uint64_t now_outstanding = static_cast<uint64_t>(queue_.size() + running_);
    if (now_outstanding > stats_.peak_outstanding) {
      stats_.peak_outstanding = now_outstanding;
    }
  }
  support::CountMetric("session.admitted");
  support::CountMetric("session.admitted", {{"tenant", LabelSafe(tenant)}});
  work_cv_.notify_one();
  return support::Status::Ok();
}

Response SessionManager::Run(Request request) {
  auto state = std::make_shared<std::promise<Response>>();
  std::future<Response> pending = state->get_future();
  Request copy = request;
  const support::Status admitted =
      Submit(std::move(request), [state](Response response) {
        state->set_value(std::move(response));
      });
  if (!admitted.ok()) {
    Response response;
    response.request_id = copy.request_id;
    response.tenant = copy.tenant.empty() ? "default" : copy.tenant;
    response.task_id = copy.task_id;
    response.status = admitted;
    return response;
  }
  return pending.get();
}

void SessionManager::WorkerLoop() {
  for (;;) {
    Queued item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    const int64_t dequeue_us = support::TraceNowUs();
    support::ObserveMetric("session.queue_ms", MsSince(item.submit_us, dequeue_us));
    std::function<void(const Request&)> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = before_run_hook_;
    }
    if (hook) {
      hook(item.request);
    }
    Response response = Execute(item, dequeue_us);
    Finish(item, std::move(response));
  }
}

Response SessionManager::Execute(const Queued& item, int64_t dequeue_us) {
  Response response;
  response.request_id = item.request.request_id;
  response.tenant = item.request.tenant;
  response.task_id = item.request.task_id;
  response.queue_ms = MsSince(item.submit_us, dequeue_us);
  response.status = support::Status::Ok();
  const workload::Task* task = task_by_id_.at(item.request.task_id);
  response.result = runner_.RunOnce(*task, run_config_, item.request.seed);
  response.run_id = response.result.run_id;
  return response;
}

void SessionManager::Finish(const Queued& item, Response response) {
  const int64_t now_us = support::TraceNowUs();
  response.total_ms = MsSince(item.submit_us, now_us);
  const int64_t tokens = static_cast<int64_t>(response.result.prompt_tokens) +
                         static_cast<int64_t>(response.result.output_tokens);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    --tenant_active_[item.request.tenant];
    tenant_tokens_[item.request.tenant] += tokens;
    ++stats_.completed;
    stats_.tokens_served += tokens;
    if (!response.result.success) {
      ++stats_.failed_runs;
    }
  }
  support::CountMetric("session.completed");
  support::CountMetric("session.completed", {{"tenant", LabelSafe(item.request.tenant)}});
  support::CountMetric("session.tokens", {{"tenant", LabelSafe(item.request.tenant)}},
                       static_cast<uint64_t>(tokens));
  if (!response.result.success) {
    support::CountMetric("session.failed_runs");
  }
  support::ObserveMetric("session.e2e_ms", response.total_ms);
  // Accounting is closed before the callback runs, so a closed-loop caller
  // re-submitting from inside it never collides with its own finished
  // session's quota slot.
  item.done(std::move(response));
}

void SessionManager::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<Queued> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cancelled.swap(queue_);
    for (const Queued& item : cancelled) {
      --tenant_active_[item.request.tenant];
      ++stats_.cancelled;
    }
  }
  // Typed cancellation for everything that was admitted but never ran. The
  // callbacks fire on this thread, outside the manager lock, while in-flight
  // sessions keep running on their workers.
  const int64_t now_us = support::TraceNowUs();
  for (Queued& item : cancelled) {
    support::CountMetric("session.cancelled");
    support::CountMetric("session.cancelled", {{"tenant", LabelSafe(item.request.tenant)}});
    Response response;
    response.request_id = item.request.request_id;
    response.tenant = item.request.tenant;
    response.task_id = item.request.task_id;
    response.status = support::CancelledError("queued session cancelled by shutdown");
    response.queue_ms = MsSince(item.submit_us, now_us);
    response.total_ms = response.queue_ms;
    item.done(std::move(response));
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  if (run_config_.batch.enabled) {
    runner_.batch_scheduler().FlushAll();
  }
}

void SessionManager::PrewarmModels() {
  std::set<workload::AppKind> kinds;
  for (const workload::Task& task : tasks_) {
    if (kinds.insert(task.app).second) {
      // modeling_stats forces the offline pipeline (rip + compile, or a
      // registry cold load) for the kind; the pool prewarm fills the shelf
      // with reset-verified instances for every worker.
      (void)runner_.modeling_stats(task.app);
      if (run_config_.pool_apps) {
        runner_.app_pool().Prewarm(task, static_cast<size_t>(options_.max_in_flight));
      }
    }
  }
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SessionManager::Outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void SessionManager::SetBeforeRunHookForTest(std::function<void(const Request&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  before_run_hook_ = std::move(hook);
}

}  // namespace serve
