// Length-prefixed framing for the dmi_serve wire protocol (DESIGN.md §16).
//
// One frame = a 4-byte little-endian payload length followed by the payload
// bytes (a UTF-8 JSON document). The framing is transport-agnostic: the
// daemon speaks it over a stdio pipe (drivable from tests and scripts with
// nothing but read/write), and the same codec works over any byte stream.
// 4 bytes bounds a frame at 4 GiB; ReadFrame additionally enforces
// kMaxFramePayload so a corrupt length prefix cannot trigger a giant
// allocation.
#ifndef SRC_SERVE_WIRE_H_
#define SRC_SERVE_WIRE_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

#include "src/support/status.h"

namespace serve {

// Upper bound on a single frame payload (64 MiB) — far above any real
// request/response, far below an OOM.
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

// Appends one encoded frame (length prefix + payload) to `out`.
void AppendFrame(std::string& out, std::string_view payload);

// Decodes the frame starting at `*offset` in `buffer`, advancing *offset past
// it. Returns nullopt when the buffer holds only a partial frame (read more
// and retry); a non-OK status when the prefix is malformed (oversized
// length).
support::Result<std::optional<std::string>> DecodeFrame(std::string_view buffer,
                                                        size_t* offset);

// Blocking stream variants used by the daemon loop. ReadFrame returns
// nullopt on clean EOF (no partial prefix), kInvalidArgument on a truncated
// or oversized frame, kUnavailable on a read error. WriteFrame flushes so a
// pipe peer sees the response without buffering games.
support::Result<std::optional<std::string>> ReadFrame(std::FILE* in);
support::Status WriteFrame(std::FILE* out, std::string_view payload);

}  // namespace serve

#endif  // SRC_SERVE_WIRE_H_
