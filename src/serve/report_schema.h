// serve::ReportSchema — the one versioned JSON contract every DMI front end
// emits (DESIGN.md §16).
//
// Before this layer, `dmi_run --report-json` and the (then hypothetical)
// service responses were two divergent shapes. Now both compose from the
// same building blocks, all stamped `schema_version: 1`:
//
//   StatusJson     — {code, message, error_detail?}; the canonical encoding
//                    of support::Status + ErrorDetail everywhere.
//   RunJson        — one run: success, llm_calls, core_calls, sim_time_s,
//                    prompt/output tokens, ui_actions, run_id, cause,
//                    final_status, flight_recorder (failed runs only),
//                    visit_report (when captured).
//   SuiteReportJson— the dmi_run suite report: header + tasks[] of runs[]
//                    (each a RunJson) + optional fleet_batching block.
//   ResponseJson / ParseRequest — the dmi_serve wire messages; a Response
//                    embeds the same RunJson as the suite report, so a fleet
//                    aggregator can mix both sources without translation.
//
// The suite-report shape is pinned by a golden byte-stability test
// (tests/serve_test.cc) — changing a field name or ordering is a schema
// version bump, not a silent fork.
#ifndef SRC_SERVE_REPORT_SCHEMA_H_
#define SRC_SERVE_REPORT_SCHEMA_H_

#include <cstdint>
#include <string>

#include "src/agent/batch_scheduler.h"
#include "src/agent/run_result.h"
#include "src/agent/task_runner.h"
#include "src/json/json.h"
#include "src/support/status.h"

namespace serve {

// The wire/report schema version. Bump only with a compatibility note in
// DESIGN.md §16; consumers reject versions they do not understand.
inline constexpr int64_t kSchemaVersion = 1;

// ----- requests -------------------------------------------------------------------

// One serving request = one session = one run of one task. Kept deliberately
// small: per-request mode/policy overrides are a non-goal — the daemon's
// ServiceConfig fixes the setting, requests pick a task, tenant, and seed.
struct Request {
  uint64_t request_id = 0;  // caller-chosen correlation id, echoed back
  std::string tenant;       // empty -> "default"
  std::string task_id;      // workload task id ("W3", "E7", ...)
  uint64_t seed = 1;
};

// {"schema_version":1,"request_id":7,"tenant":"acme","task":"W3","seed":42}
jsonv::Value RequestJson(const Request& request);
// Typed parse: kInvalidArgument on malformed JSON, a missing/unsupported
// schema_version, or a missing task.
support::Result<Request> ParseRequest(const std::string& text);

// ----- responses ------------------------------------------------------------------

struct Response {
  uint64_t request_id = 0;
  std::string tenant;
  std::string task_id;
  uint64_t run_id = 0;  // 0 when the session never ran (rejected/cancelled)
  // Ok when the session ran to a verdict (result is valid, whether or not
  // the run itself succeeded); a typed admission/cancellation error
  // otherwise (kResourceExhausted, kCancelled, kNotFound, ...).
  support::Status status;
  agentsim::RunResult result;
  // Wall-clock serving latencies (queue wait, submit-to-response).
  double queue_ms = 0.0;
  double total_ms = 0.0;
};

jsonv::Value ResponseJson(const Response& response);

// ----- shared fragments -----------------------------------------------------------

jsonv::Value StatusJson(const support::Status& status);
jsonv::Value RunJson(const agentsim::RunResult& run);

// The machine-readable suite report (dmi_run --report-json). `batch_stats`
// carries the fleet-mode continuous-batching economics; pass nullptr when
// batching is off.
jsonv::Value SuiteReportJson(const agentsim::RunConfig& config,
                             const agentsim::SuiteResult& result,
                             const agentsim::BatchScheduler::Stats* batch_stats);

}  // namespace serve

#endif  // SRC_SERVE_REPORT_SCHEMA_H_
