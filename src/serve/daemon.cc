#include "src/serve/daemon.h"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "src/serve/report_schema.h"
#include "src/serve/wire.h"

namespace serve {
namespace {

// Shared by the reader thread (inline rejections) and the manager's worker
// threads (completion callbacks): serializes response frames onto `out` and
// counts down the in-flight sessions the loop still owes.
class ResponseWriter {
 public:
  explicit ResponseWriter(std::FILE* out) : out_(out) {}

  support::Status Write(const Response& response) {
    const std::string payload = ResponseJson(response).Dump();
    std::lock_guard<std::mutex> lock(mu_);
    ++written_;
    return WriteFrame(out_, payload);
  }

  void AddPending() {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }

  void FinishPending(const Response& response) {
    const std::string payload = ResponseJson(response).Dump();
    std::lock_guard<std::mutex> lock(mu_);
    ++written_;
    (void)WriteFrame(out_, payload);  // transport loss surfaces at loop exit
    --pending_;
    drained_cv_.notify_all();
  }

  void WaitForDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  uint64_t written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return written_;
  }

 private:
  std::FILE* out_;
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  uint64_t pending_ = 0;
  uint64_t written_ = 0;
};

Response ErrorResponse(const Request& request, support::Status status) {
  Response response;
  response.request_id = request.request_id;
  response.tenant = request.tenant;
  response.task_id = request.task_id;
  response.status = std::move(status);
  return response;
}

}  // namespace

support::Result<ServeLoopStats> ServeLoop(std::FILE* in, std::FILE* out,
                                          SessionManager& manager) {
  ServeLoopStats stats;
  ResponseWriter writer(out);
  support::Status transport = support::Status::Ok();
  for (;;) {
    support::Result<std::optional<std::string>> frame = ReadFrame(in);
    if (!frame.ok()) {
      transport = frame.status();
      break;
    }
    if (!frame->has_value()) {
      break;  // clean EOF: client is done sending
    }
    ++stats.frames_read;
    support::Result<Request> parsed = ParseRequest(**frame);
    if (!parsed.ok()) {
      ++stats.parse_errors;
      const support::Status wrote = writer.Write(ErrorResponse(Request{}, parsed.status()));
      if (!wrote.ok()) {
        transport = wrote;
        break;
      }
      continue;
    }
    Request request = std::move(*parsed);
    const Request echo = request;  // Submit consumes the request
    writer.AddPending();
    const support::Status admitted =
        manager.Submit(std::move(request), [&writer](Response response) {
          writer.FinishPending(std::move(response));
        });
    if (!admitted.ok()) {
      ++stats.rejected;
      // Never admitted, so the callback never fires: settle the pending slot
      // with an in-band rejection frame.
      writer.FinishPending(ErrorResponse(echo, admitted));
    }
  }
  // Every admitted session still owes a response frame; the manager keeps
  // running them while we wait here.
  writer.WaitForDrain();
  stats.responses_written = writer.written();
  if (!transport.ok()) {
    return transport;
  }
  return stats;
}

}  // namespace serve
