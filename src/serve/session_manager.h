// serve::SessionManager — the multi-tenant serving core of dmi_serve
// (DESIGN.md §16).
//
// One resident SessionManager multiplexes thousands of concurrent agent
// sessions over the process's shared substrate: models resolve once per app
// kind through the runner's dmi::ModelRegistry, application instances come
// from the reset-based workload::AppPool, and LLM calls coalesce in the
// fleet BatchScheduler — everything PRs 4–9 made shareable, finally behind a
// service boundary.
//
// Admission pipeline per Submit():
//   1. task lookup        — unknown task id  -> kNotFound
//   2. drain gate         — shutting down    -> kUnavailable
//   3. capacity           — queue full       -> kResourceExhausted
//   4. tenant quotas      — concurrent cap or token budget spent
//                                            -> kResourceExhausted
//   5. enqueue            — a worker thread picks the session up FIFO and
//                           runs it to a verdict; the callback fires exactly
//                           once with the Response.
// Rejections are synchronous, typed, and never throw away an accepted
// session; acceptance means the callback will fire (with a run verdict, or a
// typed kCancelled if the daemon drains first).
//
// Tenant accounting is authoritative inside the manager (mutex-guarded
// maps) and mirrored onto the labeled metrics registry — session.admitted /
// session.rejected{tenant,reason} / session.tokens{tenant} — so a metrics
// scrape reconciles exactly with the typed statuses callers saw
// (tested in tests/serve_test.cc).
//
// Graceful drain (Shutdown): intake closes, queued sessions get typed
// kCancelled responses immediately, in-flight runs finish on their worker
// and deliver normally, then workers join. The destructor drains too, so a
// scoped SessionManager never strands a callback.
#ifndef SRC_SERVE_SESSION_MANAGER_H_
#define SRC_SERVE_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/agent/task_runner.h"
#include "src/dmi/service_config.h"
#include "src/serve/report_schema.h"
#include "src/support/status.h"
#include "src/workload/tasks.h"

namespace serve {

// Per-tenant admission limits. 0 = unlimited.
struct TenantQuota {
  // Sessions a tenant may have in the system at once (queued + running).
  int max_concurrent = 0;
  // Cumulative token budget (prompt + output over all completed sessions).
  // Admission closes once the spend reaches the budget; the session that
  // crosses the line completes (post-paid accounting, like real token
  // billing).
  int64_t token_budget = 0;
};

class SessionManager {
 public:
  struct Options {
    int max_in_flight = 4;     // worker threads = sessions actually running
    int queue_capacity = 256;  // admitted-but-waiting bound
    TenantQuota default_quota;
    std::map<std::string, TenantQuota> tenant_quotas;  // overrides by tenant
  };

  // `config` must be Validate()-ok. The serving knobs (max_in_flight, queue,
  // default tenant quotas) are lifted from it; quota overrides come via
  // `options`. Worker threads start immediately.
  static Options OptionsFromConfig(const dmi::ServiceConfig& config);
  SessionManager(const dmi::ServiceConfig& config, Options options);
  explicit SessionManager(const dmi::ServiceConfig& config)
      : SessionManager(config, OptionsFromConfig(config)) {}
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  using Callback = std::function<void(Response)>;

  // Admits or rejects `request`. On Ok the callback fires exactly once from
  // a worker (or drain) thread; on error the callback never fires and the
  // typed status tells the caller why (kNotFound / kUnavailable /
  // kResourceExhausted). Thread-safe; callbacks may Submit re-entrantly
  // (closed-loop load generators do).
  support::Status Submit(Request request, Callback done);

  // Blocking convenience for tests and simple clients: Submit + wait. A
  // rejection comes back as a Response carrying the typed status.
  Response Run(Request request);

  // Graceful drain: closes intake, delivers typed kCancelled responses to
  // every queued session, lets in-flight sessions finish, joins workers.
  // Idempotent.
  void Shutdown();

  // Resolves models for every app kind in the task table and prewarms the
  // app pool to max_in_flight instances per kind — the daemon's startup
  // phase, so the first thousand sessions don't stampede the offline
  // pipeline.
  void PrewarmModels();

  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_tenant_concurrent = 0;
    uint64_t rejected_tenant_tokens = 0;
    uint64_t rejected_draining = 0;
    uint64_t completed = 0;      // ran to a verdict (success or failure)
    uint64_t failed_runs = 0;    // completed with run.success == false
    uint64_t cancelled = 0;      // queued sessions dropped by drain
    uint64_t peak_outstanding = 0;  // max queued + running ever observed
    int64_t tokens_served = 0;   // prompt + output over completed sessions
  };
  Stats stats() const;

  // Current queued + running sessions (load generators track saturation).
  size_t Outstanding() const;

  // The shared substrate, exposed for tests and the load bench (model
  // registry probes, batch stats, direct-run equivalence checks).
  agentsim::TaskRunner& runner() { return runner_; }
  const agentsim::RunConfig& run_config() const { return run_config_; }

  // Test-only: invoked on the worker thread right before a session runs.
  // Lets admission tests hold workers at a barrier deterministically.
  void SetBeforeRunHookForTest(std::function<void(const Request&)> hook);

 private:
  struct Queued {
    Request request;
    Callback done;
    int64_t submit_us = 0;  // TraceNowUs at admission
  };

  void WorkerLoop();
  // Runs one admitted session to a verdict and builds its response.
  Response Execute(const Queued& item, int64_t dequeue_us);
  const TenantQuota& QuotaFor(const std::string& tenant) const;
  // Fires `done(response)` after closing out the session's accounting.
  void Finish(const Queued& item, Response response);

  const Options options_;
  agentsim::RunConfig run_config_;
  // Task table: id -> suite task (the daemon serves the OSWorld-W suite).
  std::vector<workload::Task> tasks_;
  std::map<std::string, const workload::Task*> task_by_id_;
  agentsim::TaskRunner runner_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Queued> queue_;
  bool stopping_ = false;
  size_t running_ = 0;
  // Per-tenant accounting (authoritative; labeled counters mirror it).
  std::map<std::string, int> tenant_active_;     // queued + running
  std::map<std::string, int64_t> tenant_tokens_; // completed-session spend
  Stats stats_;
  std::function<void(const Request&)> before_run_hook_;
  // Serializes Shutdown (drain + join) so the destructor and an explicit
  // Shutdown from another thread never double-join the workers.
  std::mutex shutdown_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace serve

#endif  // SRC_SERVE_SESSION_MANAGER_H_
