#include "src/serve/report_schema.h"

#include "src/support/trace_export.h"

namespace serve {

jsonv::Value RequestJson(const Request& request) {
  jsonv::Object obj;
  obj["schema_version"] = kSchemaVersion;
  obj["request_id"] = static_cast<int64_t>(request.request_id);
  obj["tenant"] = request.tenant;
  obj["task"] = request.task_id;
  obj["seed"] = static_cast<int64_t>(request.seed);
  return jsonv::Value(std::move(obj));
}

support::Result<Request> ParseRequest(const std::string& text) {
  support::Result<jsonv::Value> parsed = jsonv::Parse(text);
  if (!parsed.ok()) {
    return support::InvalidArgumentError("request: " + parsed.status().message());
  }
  if (!parsed->is_object()) {
    return support::InvalidArgumentError("request: not a JSON object");
  }
  const int64_t version = parsed->GetInt("schema_version", -1);
  if (version != kSchemaVersion) {
    return support::InvalidArgumentError(
        "request: schema_version " + std::to_string(version) + " unsupported (want " +
        std::to_string(kSchemaVersion) + ")");
  }
  Request request;
  request.request_id = static_cast<uint64_t>(parsed->GetInt("request_id", 0));
  request.tenant = parsed->GetString("tenant", "");
  request.task_id = parsed->GetString("task", "");
  request.seed = static_cast<uint64_t>(parsed->GetInt("seed", 1));
  if (request.task_id.empty()) {
    return support::InvalidArgumentError("request: missing 'task'");
  }
  return request;
}

jsonv::Value StatusJson(const support::Status& status) {
  jsonv::Object obj;
  obj["code"] = support::StatusCodeName(status.code());
  obj["message"] = status.message();
  if (status.has_detail()) {
    const support::ErrorDetail& d = status.detail();
    jsonv::Object detail;
    detail["control_id"] = d.control_id;
    detail["control_name"] = d.control_name;
    detail["required_pattern"] = d.required_pattern;
    detail["retryable"] = d.retryable;
    detail["attempts"] = d.attempts;
    detail["backoff_ticks"] = static_cast<int64_t>(d.backoff_ticks);
    obj["error_detail"] = jsonv::Value(std::move(detail));
  }
  return jsonv::Value(std::move(obj));
}

jsonv::Value RunJson(const agentsim::RunResult& run) {
  jsonv::Object r;
  r["success"] = run.success;
  r["llm_calls"] = run.llm_calls;
  r["core_calls"] = run.core_calls;
  r["sim_time_s"] = run.sim_time_s;
  r["prompt_tokens"] = static_cast<int64_t>(run.prompt_tokens);
  r["output_tokens"] = static_cast<int64_t>(run.output_tokens);
  r["ui_actions"] = static_cast<int64_t>(run.ui_actions);
  r["run_id"] = static_cast<int64_t>(run.run_id);
  r["cause"] = std::string(agentsim::FailureCauseName(run.cause));
  r["final_status"] = StatusJson(run.final_status);
  if (!run.success && run.flight != nullptr) {
    // Failed run: render the flight recorder — the failing command with its
    // ErrorDetail, retry/backoff spending, prompt tokens, and batch
    // membership (DESIGN.md §13).
    r["flight_recorder"] = support::FlightRecorderJson(*run.flight);
  }
  if (!run.report_json.empty()) {
    // The per-run visit report is itself RenderJson() output; embed it as a
    // JSON value (round-trips by construction).
    support::Result<jsonv::Value> parsed = jsonv::Parse(run.report_json);
    r["visit_report"] = parsed.ok() ? std::move(*parsed) : jsonv::Value(nullptr);
  }
  return jsonv::Value(std::move(r));
}

jsonv::Value ResponseJson(const Response& response) {
  jsonv::Object root;
  root["schema_version"] = kSchemaVersion;
  root["request_id"] = static_cast<int64_t>(response.request_id);
  root["tenant"] = response.tenant;
  root["task"] = response.task_id;
  root["status"] = StatusJson(response.status);
  root["queue_ms"] = response.queue_ms;
  root["total_ms"] = response.total_ms;
  if (response.status.ok()) {
    root["run"] = RunJson(response.result);
  }
  return jsonv::Value(std::move(root));
}

jsonv::Value SuiteReportJson(const agentsim::RunConfig& config,
                             const agentsim::SuiteResult& result,
                             const agentsim::BatchScheduler::Stats* batch_stats) {
  jsonv::Object root;
  root["schema_version"] = kSchemaVersion;
  root["mode"] = agentsim::InterfaceModeName(config.mode);
  root["model"] = config.profile.model;
  root["seed"] = static_cast<int64_t>(config.seed);
  root["repeats"] = config.repeats;
  if (!config.policy_label.empty()) {
    root["policy"] = config.policy_label;
  }
  root["success_rate"] = result.SuccessRate();
  jsonv::Array task_entries;
  for (const auto& record : result.records) {
    jsonv::Object task;
    task["task"] = record.task_id;
    jsonv::Array runs;
    for (const auto& run : record.runs) {
      runs.push_back(RunJson(run));
    }
    task["runs"] = jsonv::Value(std::move(runs));
    task_entries.push_back(jsonv::Value(std::move(task)));
  }
  root["tasks"] = jsonv::Value(std::move(task_entries));
  if (batch_stats != nullptr) {
    jsonv::Object fleet;
    fleet["workers"] = config.workers;
    fleet["max_batch_size"] = static_cast<int64_t>(config.batch.max_batch_size);
    fleet["calls"] = static_cast<int64_t>(batch_stats->calls);
    fleet["batches"] = static_cast<int64_t>(batch_stats->batches);
    fleet["amortized_call_latency_s"] = batch_stats->AmortizedCallLatencyS();
    fleet["amortized_speedup"] = batch_stats->AmortizedSpeedup();
    fleet["tokens_per_sec"] = batch_stats->TokensPerSec();
    fleet["prefix_tokens_saved"] = static_cast<int64_t>(batch_stats->prefix_tokens_saved);
    root["fleet_batching"] = jsonv::Value(std::move(fleet));
  }
  return jsonv::Value(std::move(root));
}

}  // namespace serve
