// Binary model artifacts: compile once, checksum-verified cold-load
// everywhere (DESIGN.md §14).
//
// A versioned, checksummed, densely packed serialization of the complete
// dmi::CompiledModel — the decycled DAG, the forest with both precomputed
// indexes, the topology catalog with its memoized serializations and token
// counts, and the shared static prompt segment — so a cold load materializes
// a ready-to-attach model by read + index fixup, re-running none of the
// describe/tokenize pipeline.
//
// On-disk layout (all integers native-endian; the header's endianness tag
// rejects foreign-endian artifacts before anything else is interpreted):
//
//   magic[8]            "DMIMODL\0"
//   endian_tag  u32     0x01020304 as written by the producer
//   version     u32     format version (readers accept 1..kArtifactFormatVersion;
//                       v2 added the optional checksums section — a v1 artifact
//                       loads into a model with an empty subtree-checksum table,
//                       which the delta ripper treats as "no baseline": full rip)
//   app_kind    str     producer-declared application kind  ─┐ the registry
//   app_version str     producer-declared application build  ┘ key
//   payload_len u64
//   checksum    u64     FNV-1a (word-bulk StateHash::MixBytes) over payload
//   payload             section stream
//
// Each section: id u32, item_count u64, byte_len u64, body. Unknown section
// ids are skipped (a same-version reader tolerates additive producers); a
// missing required section is a typed error. `str` is u32 length + bytes.
//
// Every failure mode is a distinct typed support::Status (never a crash, and
// never a silently wrong model — the checksum gates all section parsing):
//   missing file        kNotFound
//   short/truncated     kInvalidArgument  ("truncated artifact ...")
//   bad magic           kInvalidArgument  ("not a DMI model artifact ...")
//   foreign endianness  kFailedPrecondition
//   unsupported version kUnimplemented
//   checksum mismatch   kInternal
// with an ErrorDetail payload naming the path (control_id) and what was
// expected (required_pattern).
#ifndef SRC_DMI_MODEL_ARTIFACT_H_
#define SRC_DMI_MODEL_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dmi/compiled_model.h"
#include "src/support/status.h"

namespace dmi {

inline constexpr char kArtifactMagic[8] = {'D', 'M', 'I', 'M', 'O', 'D', 'L', '\0'};
inline constexpr uint32_t kArtifactEndianTag = 0x01020304u;
inline constexpr uint32_t kArtifactFormatVersion = 2;
// Oldest format version the reader still accepts (v1 = no checksums section).
inline constexpr uint32_t kArtifactMinFormatVersion = 1;

// Conventional artifact filename extension ("<kind>-<version>.dmim").
inline constexpr char kArtifactExtension[] = ".dmim";

// Producer-declared identity of the modeled application; the registry keys
// loaded models by it and the loader lets callers assert it.
struct ArtifactMeta {
  std::string app_kind;     // e.g. "WordSim"
  std::string app_version;  // application build version, e.g. "1"
};

// Serializes the complete compiled model (plus identity meta) to `path`.
// The model's lazy caches are forced first (compile-side cost), so the
// artifact always carries every memoized serialization and token count.
support::Status SaveModelArtifact(const CompiledModel& model, const ArtifactMeta& meta,
                                  const std::string& path);

struct LoadedModelArtifact {
  std::shared_ptr<const CompiledModel> model;
  ArtifactMeta meta;
};

// Checksum-verified cold load. Compile-time parameters (threshold, prune,
// describe, augment flag) come from the artifact; runtime parameters
// (ripper config, contexts, visit/interaction configs) are adopted from
// `runtime_options`, mirroring how sessions default their configs from the
// model. `expect` (optional) rejects an artifact whose recorded identity
// differs from the requested (app kind, app version) — the registry's
// wrong-model guard.
support::Result<LoadedModelArtifact> LoadModelArtifact(const std::string& path,
                                                       const ModelingOptions& runtime_options,
                                                       const ArtifactMeta* expect = nullptr);

// Header + section table of an artifact, for `dmi_modeler --inspect`.
struct ArtifactSectionInfo {
  std::string name;  // "dag", "forest", ... or "unknown(<id>)"
  uint64_t items = 0;
  uint64_t bytes = 0;
};

struct ArtifactInfo {
  uint32_t format_version = 0;
  ArtifactMeta meta;
  uint64_t payload_bytes = 0;
  uint64_t stored_checksum = 0;
  bool checksum_ok = false;
  std::vector<ArtifactSectionInfo> sections;
};

// Reads the header and walks the section table without materializing a
// model; verifies (and reports) the payload checksum. Fails on the same
// header-level corruption the loader rejects.
support::Result<ArtifactInfo> InspectModelArtifact(const std::string& path);

}  // namespace dmi

#endif  // SRC_DMI_MODEL_ARTIFACT_H_
