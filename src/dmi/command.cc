#include "src/dmi/command.h"

#include <cstdlib>

#include "src/json/json.h"
#include "src/support/strings.h"

namespace dmi {
namespace {

// Ids may arrive as "42" or 42.
support::Result<int> ReadId(const jsonv::Value& value, const char* field) {
  const jsonv::Value* v = value.Find(field);
  if (v == nullptr) {
    return support::InvalidArgumentError(std::string("missing field '") + field + "'");
  }
  if (v->is_int()) {
    return static_cast<int>(v->as_int());
  }
  if (v->is_string()) {
    const std::string& s = v->as_string();
    char* end = nullptr;
    long parsed = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
      return support::InvalidArgumentError(std::string("field '") + field +
                                           "' is not a numeric id: '" + s + "'");
    }
    return static_cast<int>(parsed);
  }
  return support::InvalidArgumentError(std::string("field '") + field +
                                       "' must be a string or integer id");
}

}  // namespace

std::string VisitCommand::ToString() const {
  switch (kind) {
    case Kind::kAccess: {
      std::string out = "access(id=" + std::to_string(target_id);
      if (!entry_ref_ids.empty()) {
        out += ", refs=[";
        for (size_t i = 0; i < entry_ref_ids.size(); ++i) {
          if (i > 0) {
            out += ",";
          }
          out += std::to_string(entry_ref_ids[i]);
        }
        out += "]";
      }
      if (enforced) {
        out += ", enforced";
      }
      return out + ")";
    }
    case Kind::kAccessInput:
      return "access_input(id=" + std::to_string(target_id) + ", text='" + text + "')";
    case Kind::kShortcut:
      return "shortcut(" + shortcut_key + ")";
    case Kind::kFurtherQuery:
      return "further_query(" + std::to_string(further_query) + ")";
  }
  return "?";
}

support::Result<std::vector<VisitCommand>> ParseVisitCommands(const std::string& json) {
  auto doc = jsonv::Parse(json);
  if (!doc.ok()) {
    return doc.status();
  }
  // Tolerate a single command object instead of an array (LLMs do this).
  jsonv::Array items;
  if (doc->is_array()) {
    items = doc->as_array();
  } else if (doc->is_object()) {
    items.push_back(*doc);
  } else {
    return support::InvalidArgumentError("visit expects a JSON array of command objects");
  }
  if (items.empty()) {
    return support::InvalidArgumentError("visit received an empty command array");
  }

  std::vector<VisitCommand> commands;
  bool has_further_query = false;
  for (size_t i = 0; i < items.size(); ++i) {
    const jsonv::Value& item = items[i];
    if (!item.is_object()) {
      return support::InvalidArgumentError(
          support::Format("command %zu is not an object", i));
    }
    VisitCommand cmd;
    if (item.Find("further_query") != nullptr) {
      auto id = ReadId(item, "further_query");
      if (!id.ok()) {
        return id.status();
      }
      cmd.kind = VisitCommand::Kind::kFurtherQuery;
      cmd.further_query = *id;
      has_further_query = true;
    } else if (item.Find("shortcut_key") != nullptr) {
      cmd.kind = VisitCommand::Kind::kShortcut;
      cmd.shortcut_key = item.GetString("shortcut_key");
      if (cmd.shortcut_key.empty()) {
        return support::InvalidArgumentError(
            support::Format("command %zu: empty shortcut_key", i));
      }
    } else if (item.Find("id") != nullptr) {
      auto id = ReadId(item, "id");
      if (!id.ok()) {
        return id.status();
      }
      cmd.target_id = *id;
      const jsonv::Value* refs = item.Find("entry_ref_id");
      if (refs != nullptr) {
        if (!refs->is_array()) {
          return support::InvalidArgumentError(
              support::Format("command %zu: entry_ref_id must be an array", i));
        }
        for (const jsonv::Value& r : refs->as_array()) {
          if (r.is_int()) {
            cmd.entry_ref_ids.push_back(static_cast<int>(r.as_int()));
          } else if (r.is_string()) {
            cmd.entry_ref_ids.push_back(std::atoi(r.as_string().c_str()));
          } else {
            return support::InvalidArgumentError(
                support::Format("command %zu: bad entry_ref_id element", i));
          }
        }
      }
      cmd.enforced = item.GetBool("enforced", false);
      if (item.Find("text") != nullptr) {
        cmd.kind = VisitCommand::Kind::kAccessInput;
        cmd.text = item.GetString("text");
      } else {
        cmd.kind = VisitCommand::Kind::kAccess;
      }
    } else {
      return support::InvalidArgumentError(support::Format(
          "command %zu has none of 'id', 'shortcut_key', 'further_query'", i));
    }
    commands.push_back(std::move(cmd));
  }

  if (has_further_query && commands.size() > 1) {
    return support::InvalidArgumentError(
        "further_query is exclusive and cannot be mixed with other commands");
  }
  return commands;
}

}  // namespace dmi
